package difftest

import (
	"bytes"
	"io"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README does.
func TestPublicAPIQuickstart(t *testing.T) {
	wl := LinuxBoot()
	wl.TargetInstrs = 20_000
	res, err := Run(Params{
		DUT:      XiangShanDefault(),
		Platform: Palladium(),
		Opt:      FullOptimizations(),
		Workload: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("mismatch: %v", res.Mismatch)
	}
	if !res.Finished || res.TrapCode != 0 {
		t.Fatalf("bad verdict: %v %d", res.Finished, res.TrapCode)
	}
	if res.SpeedHz < res.DUTOnlyHz/2 {
		t.Errorf("full stack at %.0f Hz, far from the %.0f Hz ceiling", res.SpeedHz, res.DUTOnlyHz)
	}
}

func TestPublicAPIBugInjection(t *testing.T) {
	b, ok := BugByID("amo-old-value-corrupt")
	if !ok {
		t.Fatal("bug library missing amo-old-value-corrupt")
	}
	wl := LinuxBoot()
	wl.TargetInstrs = 120_000
	res, err := Run(Params{
		DUT: XiangShanDefault(), Platform: Palladium(),
		Opt: FullOptimizations(), Workload: wl, Seed: 21, Hooks: b.Hooks(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch == nil || res.Replay == nil || res.Replay.Detailed == nil {
		t.Fatalf("bug not localized: %v / %v", res.Mismatch, res.Replay)
	}
}

func TestPublicAPIConfigNames(t *testing.T) {
	if Baseline().Name() != "Z" {
		t.Errorf("Baseline = %s", Baseline().Name())
	}
	if FullOptimizations().Name() != "EBINSD" {
		t.Errorf("FullOptimizations = %s", FullOptimizations().Name())
	}
	if len(DUTConfigs()) != 4 || len(Workloads()) != 6 {
		t.Error("catalogs incomplete")
	}
	if len(BugLibrary()) < 15 {
		t.Error("bug library incomplete")
	}
}

func TestPublicAPITrace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wl := Microbench()
	wl.TargetInstrs = 5_000
	if _, err := Run(Params{
		DUT: NutShell(), Platform: Palladium(), Opt: Baseline(),
		Workload: wl, Trace: w,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, recs, err := r.ReadCycle()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += len(recs)
	}
	if n == 0 {
		t.Error("trace empty")
	}
}

func TestPublicAPIToolkit(t *testing.T) {
	db := OpenDB()
	if _, err := db.CreateTable("t", ColumnDef{Name: "k", Type: TypeText},
		ColumnDef{Name: "b", Type: TypeInteger}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < NumEventKinds; k++ {
		kind := EventKind(k)
		if err := db.Insert("t", kind.String(), EventSize(kind)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec("SELECT SUM(b) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) < 3000 {
		t.Errorf("aggregate interface width = %v", res.Rows[0][0])
	}
	if EstimateArea(XiangShanDefault(), true).OverheadPct() <
		EstimateArea(XiangShanDefault(), false).OverheadPct() {
		t.Error("Batch area not larger")
	}
}
