// Package difftest is a semantic-aware, hardware-accelerated co-simulation
// framework for processor verification — a complete Go implementation of
// DiffTest-H ("DiffTest-H: Toward Semantic-Aware Communication in
// Hardware-Accelerated Processor Verification", MICRO 2025).
//
// A design under test (a simulated RISC-V processor) runs on a modeled
// acceleration platform (Palladium-class emulator, FPGA, or software RTL
// simulation) and is checked instruction-by-instruction against a golden
// reference model. Three semantic-aware communication optimizations remove
// the hardware-software communication bottleneck while preserving
// instruction-level debuggability:
//
//   - Batch packs structurally diverse verification events tightly into
//     fixed-size packets, minimizing communication frequency.
//   - Squash fuses events across instructions with the checking order
//     decoupled from transmission order (NDEs travel ahead with order tags)
//     and differences repetitive state snapshots, minimizing data volume.
//   - Replay buffers the original unfused events in hardware and reverts the
//     reference model via compensation logs, recovering instruction-level
//     detail when a fused check fails.
//
// Quick start:
//
//	params := difftest.Params{
//		DUT:      difftest.XiangShanDefault(),
//		Platform: difftest.Palladium(),
//		Opt:      difftest.FullOptimizations(),
//		Workload: difftest.LinuxBoot(),
//	}
//	res, err := difftest.Run(params)
//	fmt.Println(res.Summary())
//
// The package is a thin facade over the internal packages; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-experiment index.
package difftest

import (
	"repro/internal/arch"
	"repro/internal/area"
	"repro/internal/bugs"
	"repro/internal/checker"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/squash"
	"repro/internal/workload"
)

// Core run types.
type (
	// Params describes one co-simulation run.
	Params = cosim.Params
	// Result reports a run's outcome and performance accounting.
	Result = cosim.Result
	// Options selects the communication optimizations (Batch, NonBlocking,
	// Squash, plus ablation switches).
	Options = cosim.Options
	// Mismatch is a detected DUT/REF divergence.
	Mismatch = checker.Mismatch
	// ReplayReport is Replay's instruction-level bug analysis.
	ReplayReport = replay.Report
	// FusionStats exposes the Squash performance counters.
	FusionStats = squash.Stats
	// ExecMetrics is the wall-clock measurement of an executed
	// (Options.Executed) concurrent run: producer/consumer busy time,
	// overlap, transfers, and backpressure events.
	ExecMetrics = pipeline.Metrics
	// ModeComparison pairs modeled and executed results per configuration.
	ModeComparison = cosim.ModeComparison
)

// Configuration types.
type (
	// DUTConfig describes a design under test.
	DUTConfig = dut.Config
	// Platform is a verification platform cost model.
	Platform = platform.Platform
	// Workload is a benchmark profile.
	Workload = workload.Profile
	// Bug is an injectable microarchitectural defect.
	Bug = bugs.Bug
	// Hooks inject custom defects into the DUT's execution engine.
	Hooks = arch.Hooks
	// AreaEstimate is the verification-hardware gate model (Figure 15).
	AreaEstimate = area.Estimate
)

// Run executes one co-simulation end to end.
func Run(p Params) (*Result, error) { return cosim.Run(p) }

// RunConcurrent executes independent co-simulations on a bounded worker
// pool, returning results in input order (workers ≤ 0 selects GOMAXPROCS).
func RunConcurrent(ps []Params, workers int) ([]*Result, error) {
	return cosim.RunConcurrent(ps, workers)
}

// CompareModes runs every artifact configuration through both the analytic
// model and the executed concurrent pipeline and reports modeled vs
// measured speedups. freshHooks (optional, may be nil) rebuilds stateful
// bug-injection hooks before each of the eight runs.
func CompareModes(p Params, freshHooks func() Hooks) (*ModeComparison, error) {
	return cosim.CompareModes(p, freshHooks)
}

// ParseConfig resolves an artifact configuration name: Z (baseline),
// EB (+Batch), EBIN (+NonBlock), EBINSD (+Squash).
func ParseConfig(name string) (Options, error) { return cosim.ParseConfig(name) }

// FullOptimizations returns the complete DiffTest-H stack (EBINSD).
func FullOptimizations() Options {
	o, _ := cosim.ParseConfig("EBINSD")
	return o
}

// Baseline returns the unoptimized per-event configuration (Z).
func Baseline() Options { return Options{} }

// DUT configurations (paper Table 4).
var (
	// NutShell is the scalar in-order DUT (0.6M gates, 6 event types).
	NutShell = dut.NutShell
	// XiangShanMinimal is the 2-wide out-of-order DUT (39.4M gates).
	XiangShanMinimal = dut.XiangShanMinimal
	// XiangShanDefault is the 6-wide out-of-order DUT (57.6M gates).
	XiangShanDefault = dut.XiangShanDefault
	// XiangShanDefaultDual is the dual-core 6-wide DUT (111.8M gates).
	XiangShanDefaultDual = dut.XiangShanDefaultDual
	// DUTConfigs lists all four evaluation DUTs.
	DUTConfigs = dut.Configs
)

// Platforms (paper Table 2).
var (
	// Palladium models the Cadence Palladium emulator.
	Palladium = platform.Palladium
	// FPGA models a Xilinx VU19P prototyping platform.
	FPGA = platform.FPGA
	// Verilator models software RTL simulation with N host threads.
	Verilator = platform.Verilator
)

// Workload profiles (paper Table 3).
var (
	// LinuxBoot models an OS boot: device-heavy, trap-heavy.
	LinuxBoot = workload.LinuxBoot
	// Microbench models a tight compute kernel.
	Microbench = workload.Microbench
	// SPEC models a SPEC-CPU-like compute workload.
	SPEC = workload.SPEC
	// KVM models a hypervisor workload.
	KVM = workload.KVM
	// XVisor models a second virtualization workload.
	XVisor = workload.XVisor
	// RVVTest models a vector-extension test suite.
	RVVTest = workload.RVVTest
	// Workloads lists all built-in profiles.
	Workloads = workload.Profiles
	// WorkloadByName looks a profile up by name.
	WorkloadByName = workload.ByName
)

// Bug library (paper §6.5 / Table 6).
var (
	// BugLibrary returns all injectable bugs.
	BugLibrary = bugs.Library
	// BugByID looks an injectable bug up by identifier.
	BugByID = bugs.ByID
)

// EstimateArea sizes the verification hardware for a DUT (Figure 15).
func EstimateArea(d DUTConfig, withBatch bool) AreaEstimate {
	cfg := area.DefaultConfig()
	cfg.WithBatch = withBatch
	return area.ForDUT(d, cfg)
}
