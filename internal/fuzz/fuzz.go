// Package fuzz is a coverage-guided workload-fuzzing engine over the
// co-simulation stack: it treats the workload.Profile parameter vector and
// the generator seed as the mutation space, and the checker's semantic
// coverage counters (checker.Coverage — per-kind event populations, NDE
// interleaving pairs, trap/MMIO adjacency, bug-trigger proximity) plus the
// Squash break rate as the feedback signal.
//
// A campaign runs in synchronous generations: each round, a batch of
// candidate (profile, seed) pairs is derived from the campaign RNG — by
// mutating corpus entries under a power schedule biased toward recent
// coverage growth, or from the base profile while the corpus is cold — and
// evaluated in parallel through cosim.RunConcurrentAll (locally, or against a
// difftestd shard or fleet router when Config.RemoteAddr is set). Results
// fold back into the corpus in batch-index order, so a campaign is
// bit-deterministic in Config.Seed regardless of worker count.
//
// This is the paper's verification throughput turned around: once
// hardware-accelerated checking makes runs cheap, the bottleneck becomes
// choosing which workloads to run, and the checker's own order-semantics
// signals are the natural objective function.
package fuzz

import (
	"time"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Config parameterizes one campaign.
type Config struct {
	DUT      dut.Config
	Platform platform.Platform
	Opt      cosim.Options

	// Base is the mutation origin: round 0 of a cold corpus explores seeds
	// and single mutations of it. It must pass workload.Validate.
	Base workload.Profile

	// Seed drives the campaign RNG — the only randomness source, so equal
	// seeds replay equal campaigns.
	Seed int64

	// TargetInstrs overrides the per-run dynamic instruction budget
	// (0 keeps Base.TargetInstrs).
	TargetInstrs uint64

	// BatchSize is the number of candidates per generation (0 = 8).
	BatchSize int
	// MaxCycles bounds each evaluation; a candidate that exceeds it counts
	// as hung (budget spent, no coverage) rather than failing the campaign.
	// 0 derives a tight default from the instruction budget — fuzz runs are
	// short, and a runaway workload must not stall the whole batch.
	MaxCycles uint64
	// Workers bounds parallel evaluations (0 = GOMAXPROCS). The corpus
	// fold is batch-ordered, so Workers never changes the outcome.
	Workers int

	// Budgets: a campaign stops at whichever is exhausted first. Zero
	// disables that budget. WallBudget is checked at round boundaries and
	// makes campaigns timing-dependent — leave it 0 when replaying.
	MaxRuns    int
	MaxInstrs  uint64
	WallBudget time.Duration

	// StopOnMismatch ends the campaign at the first diverging run.
	StopOnMismatch bool

	// Random switches off coverage guidance: candidates are independent
	// random perturbations of Base, never corpus mutations — the control
	// arm for measuring what feedback buys.
	Random bool

	// RemoteAddr fans candidate evaluations out to a difftestd shard or a
	// fleet router instead of checking in-process; the coverage signal
	// comes back in each session's closing verdict. Tenant names the
	// accounting principal for routed campaigns.
	RemoteAddr string
	Tenant     string

	// Hooks, when set, is called once per run to build fresh DUT
	// instrumentation (bug triggers are stateful counters, so hooks must
	// never be shared across runs).
	Hooks func() arch.Hooks

	// Log, when set, receives one line per round.
	Log func(format string, args ...any)
}

// Finding is one diverging run: everything needed to replay it to the same
// verdict.
type Finding struct {
	Round    int               `json:"round"`
	Seed     int64             `json:"seed"`
	Profile  workload.Profile  `json:"profile"`
	Mismatch *checker.Mismatch `json:"mismatch"`
}

// RoundStat is one generation's row in the coverage trajectory.
type RoundStat struct {
	Round       int    `json:"round"`
	Runs        int    `json:"runs"`   // cumulative
	Instrs      uint64 `json:"instrs"` // cumulative
	NewFeatures int    `json:"new_features"`
	Features    int    `json:"features"` // cumulative distinct features
	Corpus      int    `json:"corpus"`   // entries retained
	Findings    int    `json:"findings"` // cumulative mismatches
	Hung        int    `json:"hung"`     // cumulative cycle-limit runs
}

// Report is a finished campaign.
type Report struct {
	Corpus     *Corpus
	Trajectory []RoundStat
	Findings   []Finding
	Rounds     int
	Runs       int
	Instrs     uint64
	Hung       int    // evaluations that hit the cycle limit
	Stopped    string // which budget ended the campaign
}
