package fuzz

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/cosim"
	"repro/internal/workload"
)

// BenchmarkFuzzMutations measures the mutation engine: one operator draw plus
// the validation pass that keeps every child inside the legal profile space.
// The mutator must stay trivially cheap next to an evaluation (a full
// co-simulated run), so the campaign's cost is always the runs, never the
// planning.
func BenchmarkFuzzMutations(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	parent := workload.LinuxBoot()
	parent.Name = fuzzName
	partner := workload.KVM()
	partner.Name = fuzzName
	other := &Entry{Seed: 2, Profile: partner}
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		mutate(rng, parent, 1, other)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "mutations/s")
}

// BenchmarkCorpusMerge measures the sync-point cost of folding a 64-entry
// campaign shard into a fresh master corpus — the fleet fan-out merge path.
func BenchmarkCorpusMerge(b *testing.B) {
	prof := workload.LinuxBoot()
	prof.Name = fuzzName
	rng := rand.New(rand.NewSource(2))
	shard := NewCorpus()
	for i := 0; i < 64; i++ {
		fs := make([]uint32, 0, 40)
		for j := 0; j < 40; j++ {
			fs = append(fs, feature(1+rng.Intn(5), rng.Intn(64), uint64(rng.Intn(1<<16))))
		}
		sortU32(fs)
		shard.Observe(Entry{Seed: int64(i), Profile: prof, Features: fs, Parent: -1, Op: opReseed})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		master := NewCorpus()
		master.Merge(shard)
	}
}

// BenchmarkFeatureExtract measures discretizing one run's coverage snapshot
// into its sorted feature signature.
func BenchmarkFeatureExtract(b *testing.B) {
	cov := &checker.Coverage{}
	rng := rand.New(rand.NewSource(3))
	for i := range cov.Kind {
		cov.Kind[i] = uint64(rng.Intn(1 << 12))
	}
	for i := range cov.Pair {
		cov.Pair[i] = uint64(rng.Intn(1 << 8))
	}
	for i := range cov.Prox {
		cov.Prox[i] = uint64(rng.Intn(1 << 10))
	}
	cov.TrapMMIOAdj = 37
	res := &cosim.Result{Coverage: cov}
	res.Fusion.Windows, res.Fusion.Breaks = 1000, 41
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Features(res)
	}
}
