package fuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cosim"
	"repro/internal/workload"
)

// candidate is one scheduled evaluation.
type candidate struct {
	seed    int64
	profile workload.Profile
	parent  int // corpus ID mutated from, -1 for base-derived
	op      string
}

// Campaign runs a coverage-guided (or, with cfg.Random, uniformly random)
// fuzzing campaign and returns its report. resume, when non-nil, continues
// from a prior checkpoint's corpus and accounting.
//
// Determinism: every candidate is derived from the campaign RNG before the
// batch is evaluated, evaluations are pure in their Params (a cycle-limit
// hang included), and results fold into the corpus at the round's sync
// point strictly in batch-index order — so the corpus, trajectory, and
// findings are byte-identical across runs and worker counts. Only
// WallBudget breaks this, by making the stopping point timing-dependent.
func Campaign(cfg Config, resume *Checkpoint) (*Report, error) {
	base := cfg.Base
	base.Name = fuzzName
	if cfg.TargetInstrs > 0 {
		base.TargetInstrs = cfg.TargetInstrs
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("fuzz: base profile: %w", err)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 8
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := NewCorpus()
	rep := &Report{Corpus: corpus}
	round := 0
	if resume != nil {
		_, c, err := LoadCheckpoint(resume.Marshal())
		if err != nil {
			return nil, err
		}
		corpus, rep.Corpus = c, c
		rep.Runs, rep.Instrs, rep.Hung = resume.Runs, resume.Instrs, resume.Hung
		rep.Trajectory = append(rep.Trajectory, resume.Trajectory...)
		rep.Findings = append(rep.Findings, resume.Findings...)
		round = resume.Rounds
		// Advance the RNG stream past the consumed rounds so a resumed
		// campaign does not replay the same candidates.
		rng = rand.New(rand.NewSource(cfg.Seed + int64(round)*1_000_003))
	}

	start := time.Now()
	for {
		if why := exhausted(cfg, rep, start); why != "" {
			rep.Stopped = why
			return rep, nil
		}
		n := batch
		if cfg.MaxRuns > 0 && rep.Runs+n > cfg.MaxRuns {
			n = cfg.MaxRuns - rep.Runs
		}

		cands := plan(rng, cfg, base, corpus, round, n)
		results, errs := evaluate(cfg, base, cands)
		for i, err := range errs {
			// A cycle-limit abort is a deterministic property of the candidate
			// (a hung workload), so it folds into the accounting like any other
			// outcome. Anything else is an environment failure — stop.
			if err != nil && !errors.Is(err, cosim.ErrCycleLimit) {
				return nil, fmt.Errorf("fuzz: candidate %d (round %d): %w", i, round, err)
			}
		}
		stats := fold(corpus, cands, results, round, rep)
		rep.Rounds = round + 1
		rep.Trajectory = append(rep.Trajectory, stats)
		if cfg.Log != nil {
			cfg.Log("round %d: runs=%d corpus=%d features=%d (+%d) findings=%d",
				round, stats.Runs, stats.Corpus, stats.Features, stats.NewFeatures, stats.Findings)
		}
		round++
		if cfg.StopOnMismatch && len(rep.Findings) > 0 {
			rep.Stopped = "mismatch"
			return rep, nil
		}
	}
}

// exhausted names the budget that ends the campaign, or "".
func exhausted(cfg Config, rep *Report, start time.Time) string {
	switch {
	case cfg.MaxRuns > 0 && rep.Runs >= cfg.MaxRuns:
		return "runs"
	case cfg.MaxInstrs > 0 && rep.Instrs >= cfg.MaxInstrs:
		return "instrs"
	case cfg.WallBudget > 0 && time.Since(start) >= cfg.WallBudget:
		return "wall"
	}
	return ""
}

// plan derives the round's candidate batch from the campaign RNG. With a
// cold corpus (or in the random control arm) candidates are perturbations
// of the base profile under fresh seeds; once entries exist, parents come
// from the power schedule and mutate per operator.
func plan(rng *rand.Rand, cfg Config, base workload.Profile, c *Corpus, round, n int) []candidate {
	cands := make([]candidate, 0, n)
	for i := 0; i < n; i++ {
		if cfg.Random || len(c.Entries) == 0 {
			// Seed exploration of the base, with an occasional profile
			// perturbation so the parameter dimensions are probed too.
			seed := rng.Int63()
			prof := base
			op := opReseed
			if rng.Intn(2) == 0 {
				prof, seed, op = mutate(rng, base, seed, nil)
			}
			cands = append(cands, candidate{seed: seed, profile: prof, parent: -1, op: op})
			continue
		}
		parent := pick(rng, c, round)
		var other *Entry
		if len(c.Entries) > 1 {
			other = &c.Entries[rng.Intn(len(c.Entries))]
		}
		prof, seed, op := mutate(rng, parent.Profile, parent.Seed, other)
		cands = append(cands, candidate{seed: seed, profile: prof, parent: parent.ID, op: op})
	}
	return cands
}

// evaluate runs the batch through the sweep runner (locally or against
// cfg.RemoteAddr) and returns per-index results and errors in batch order.
func evaluate(cfg Config, base workload.Profile, cands []candidate) ([]*cosim.Result, []error) {
	ps := make([]cosim.Params, len(cands))
	for i, cand := range cands {
		ps[i] = cosim.Params{
			DUT: cfg.DUT, Platform: cfg.Platform, Opt: cfg.Opt,
			Workload: cand.profile, Seed: cand.seed,
			RemoteAddr: cfg.RemoteAddr, Tenant: cfg.Tenant,
			MaxCycles: maxCycles(cfg, base),
		}
		if cfg.Hooks != nil {
			// Fresh instrumentation per run: bug triggers are stateful
			// counters and must never be shared between evaluations.
			ps[i].Hooks = cfg.Hooks()
		}
	}
	return cosim.RunConcurrentAll(ps, cfg.Workers)
}

// maxCycles is the per-evaluation cycle bound: the configured one, or a
// default generous enough for any legitimate candidate (interrupt-heavy
// profiles retire well under 100 cycles/instr here) while cutting a hung
// workload off in well under a second.
func maxCycles(cfg Config, base workload.Profile) uint64 {
	if cfg.MaxCycles > 0 {
		return cfg.MaxCycles
	}
	mc := 100 * base.TargetInstrs
	if mc < 1_000_000 {
		mc = 1_000_000
	}
	return mc
}

// fold is the round's sync point: the batch evaluated in parallel (across
// local workers or fleet shards), its results now merge into the corpus
// strictly in batch-index order. Admission order — not evaluation order —
// decides what the corpus retains, which is what makes a campaign
// worker-count-invariant. (Independent campaign shards that each built a
// whole corpus merge the same way, entry order preserved, via
// Corpus.Merge.)
func fold(c *Corpus, cands []candidate, results []*cosim.Result, round int, rep *Report) RoundStat {
	before := c.Features()
	for i, res := range results {
		cand := cands[i]
		rep.Runs++
		if res == nil {
			// Hung candidate (cycle limit — the only error that reaches the
			// fold). It spent its run budget and produced no coverage; that
			// outcome is deterministic, so it never breaks replay.
			rep.Hung++
			continue
		}
		rep.Instrs += res.Instrs
		if res.Mismatch != nil {
			rep.Findings = append(rep.Findings, Finding{
				Round: round, Seed: cand.seed, Profile: cand.profile, Mismatch: res.Mismatch,
			})
		}
		c.Observe(Entry{
			Seed: cand.seed, Profile: cand.profile, Features: Features(res),
			Round: round, Parent: cand.parent, Op: cand.op,
		})
	}

	return RoundStat{
		Round: round, Runs: rep.Runs, Instrs: rep.Instrs,
		NewFeatures: c.Features() - before, Features: c.Features(),
		Corpus: len(c.Entries), Findings: len(rep.Findings), Hung: rep.Hung,
	}
}

// Repro replays one corpus entry (or finding) to a verdict under the
// campaign's environment.
func Repro(cfg Config, prof workload.Profile, seed int64) (*cosim.Result, error) {
	p := cosim.Params{
		DUT: cfg.DUT, Platform: cfg.Platform, Opt: cfg.Opt,
		Workload: prof, Seed: seed,
		RemoteAddr: cfg.RemoteAddr, Tenant: cfg.Tenant,
		MaxCycles: maxCycles(cfg, prof),
	}
	if cfg.Hooks != nil {
		p.Hooks = cfg.Hooks()
	}
	return cosim.Run(p)
}
