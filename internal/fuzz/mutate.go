package fuzz

import (
	"math/rand"

	"repro/internal/workload"
)

// Mutation operators. Every operator takes a parent profile and returns a
// workload.Validate-passing child — the mutation space is exactly the
// validated parameter space, so a campaign can never assemble a degenerate
// program.
const (
	opJitterWeight = "jitter-weight" // ±small step on one instruction-class weight
	opWalkRate     = "walk-rate"     // ±per-mille step on one NDE rate
	opTimerDouble  = "timer-double"  // double the timer interval (or arm it)
	opTimerHalve   = "timer-halve"   // halve the timer interval (or disarm it)
	opReseed       = "reseed"        // fresh generator seed, same profile
	opSplice       = "splice"        // crossover with another corpus entry
)

// mutOps is the operator draw order; the index drawn from the campaign RNG
// picks one, so the list order is part of the deterministic replay surface.
var mutOps = []string{opJitterWeight, opWalkRate, opTimerDouble, opTimerHalve, opReseed, opSplice}

// fuzzName marks mutated profiles. It is deliberately not a built-in
// workload name: cosim's remote handshake ships the full profile whenever
// the name can't be rebuilt server-side, which is exactly what mutated
// vectors need.
const fuzzName = "fuzz"

// mutate derives a child (profile, seed) from parent, drawing all
// randomness from rng. other supplies the splice partner (nil degrades
// splice to reseed). The child always validates.
func mutate(rng *rand.Rand, parent workload.Profile, parentSeed int64, other *Entry) (workload.Profile, int64, string) {
	op := mutOps[rng.Intn(len(mutOps))]
	p := parent
	p.Name = fuzzName
	seed := parentSeed
	switch op {
	case opJitterWeight:
		ws := p.WeightSlots()
		i := rng.Intn(len(ws))
		delta := 1 + rng.Intn(5)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		*ws[i] += delta
		if *ws[i] < 0 {
			*ws[i] = 0
		}
		ensureWeights(&p)
	case opWalkRate:
		rs := p.RateSlots()
		i := rng.Intn(len(rs))
		delta := 1 + rng.Intn(10)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		*rs[i] += delta
		clampRates(&p)
	case opTimerDouble:
		switch {
		case p.TimerInterval == 0:
			p.TimerInterval = 500
		case p.TimerInterval*2 > workload.MaxTimerInterval:
			p.TimerInterval = workload.MaxTimerInterval
		default:
			p.TimerInterval *= 2
		}
	case opTimerHalve:
		p.TimerInterval /= 2 // 0 disarms the timer, which is valid
	case opReseed:
		seed = rng.Int63()
	case opSplice:
		if other == nil {
			seed = rng.Int63()
			op = opReseed
			break
		}
		// One-point crossover over the weight vector, rates and timer from
		// the partner, seed from either side.
		ows := other.Profile.WeightSlots()
		cut := 1 + rng.Intn(len(ows)-1)
		for i, w := range p.WeightSlots() {
			if i >= cut {
				*w = *ows[i]
			}
		}
		or := other.Profile.RateSlots()
		for i, r := range p.RateSlots() {
			*r = *or[i]
		}
		p.TimerInterval = other.Profile.TimerInterval
		if rng.Intn(2) == 0 {
			seed = other.Seed
		}
		ensureWeights(&p)
		clampRates(&p)
	}
	if err := p.Validate(); err != nil {
		// The clamps above make every operator closed over valid profiles;
		// reaching here is a programmer error in a new operator.
		panic(err)
	}
	return p, seed, op
}

// ensureWeights keeps the weight vector drawable (not all zero).
func ensureWeights(p *workload.Profile) {
	for _, w := range p.WeightSlots() {
		if *w > 0 {
			return
		}
	}
	*p.WeightSlots()[0] = 1
}

// clampRates forces each rate into [0, MaxPerMille] and scales the vector
// down when the sum overflows the per-mille budget.
func clampRates(p *workload.Profile) {
	sum := 0
	for _, r := range p.RateSlots() {
		if *r < 0 {
			*r = 0
		}
		if *r > workload.MaxPerMille {
			*r = workload.MaxPerMille
		}
		sum += *r
	}
	if sum <= workload.MaxPerMille {
		return
	}
	for _, r := range p.RateSlots() {
		*r = *r * workload.MaxPerMille / sum
	}
}

// pick selects a mutation parent under the power schedule: energy grows
// with admission gain and decays with age, so mutation pressure follows
// wherever coverage most recently grew.
func pick(rng *rand.Rand, c *Corpus, round int) *Entry {
	if len(c.Entries) == 0 {
		return nil
	}
	total := 0
	for i := range c.Entries {
		total += energy(&c.Entries[i], round)
	}
	r := rng.Intn(total)
	for i := range c.Entries {
		r -= energy(&c.Entries[i], round)
		if r < 0 {
			return &c.Entries[i]
		}
	}
	return &c.Entries[len(c.Entries)-1]
}

// energy is an entry's share of the mutation budget: 1 baseline, +gain for
// how much coverage it added, ×4 boost while it is at most two rounds old.
func energy(e *Entry, round int) int {
	n := 1 + e.Gain
	if round-e.Round <= 2 {
		n *= 4
	}
	return n
}
