package fuzz

import (
	"testing"

	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestExitSequenceSurvivesTimerInterrupt pins an event-ordering corner the
// fuzzer surfaced: with a short timer interval, an interrupt used to land in
// the one-instruction window between the epilogue's LUI and the exit store.
// The trap handler clobbers x27 while re-arming the timer, so the store went
// to the CLINT instead of the exit device, the program never signalled
// completion, WFI woke on the still-pending interrupt, and execution fell off
// the end of the code into zeroed memory — where the handler's mepc+=4
// exception path marched forever (cycle-limit hang). The generator now
// clears mstatus.MIE before the exit sequence; this test drives the exact
// profiles that hung (timer-halve mutations of LinuxBoot down to interval 5)
// and requires every one to finish.
func TestExitSequenceSurvivesTimerInterrupt(t *testing.T) {
	opt, err := cosim.ParseConfig("EBINSD")
	if err != nil {
		t.Fatal(err)
	}
	for _, interval := range []uint64{1, 2, 5, 7, 13} {
		wl := workload.LinuxBoot()
		wl.Name = fuzzName
		wl.TargetInstrs = 3000
		wl.TimerInterval = interval
		res, err := cosim.Run(cosim.Params{
			DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: opt,
			Workload: wl, Seed: 11, MaxCycles: 5_000_000,
		})
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if !res.Finished {
			t.Fatalf("interval %d: run did not reach the exit store", interval)
		}
		if res.Mismatch != nil {
			t.Fatalf("interval %d: unexpected mismatch: %v", interval, res.Mismatch)
		}
	}
}
