package fuzz

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

func testOpt(t *testing.T) cosim.Options {
	t.Helper()
	opt, err := cosim.ParseConfig("EBINSD")
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

// bugBase pairs each library bug with the built-in profile whose instruction
// mix can reach its trigger (vector bugs need vector traffic, hypervisor
// bugs need guest accesses).
func bugBase(b *bugs.Bug) workload.Profile {
	switch b.ID {
	case "mtval-wrong-guest-fault", "hyp-load-stale":
		return workload.KVM()
	case "vstart-not-reset", "vadd-lane-drop", "vsetvli-overshoot", "vec-exception-tracking":
		return workload.RVVTest()
	default:
		return workload.LinuxBoot()
	}
}

func bugCampaign(b *bugs.Bug, base workload.Profile, threshold int, random bool, seed int64, maxRuns int) Config {
	return Config{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
		Base: base, Seed: seed, TargetInstrs: 3000,
		BatchSize: 8, Workers: 4, MaxRuns: maxRuns,
		StopOnMismatch: true, Random: random,
		Hooks: func() arch.Hooks { return b.Hooks(threshold) },
	}
}

// TestFuzzRediscoversBugLibrary is the headline gate: for every bug in the
// library, a cold-corpus campaign under the CI budget must trigger it, and
// replaying the finding must reproduce the identical mismatch diagnosis.
func TestFuzzRediscoversBugLibrary(t *testing.T) {
	opt := testOpt(t)
	for _, b := range bugs.Library() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			cfg := bugCampaign(b, bugBase(b), 2, false, 1, 64)
			cfg.Opt = opt
			rep, err := Campaign(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Stopped != "mismatch" || len(rep.Findings) == 0 {
				t.Fatalf("campaign did not rediscover the bug: stopped=%q runs=%d findings=%d",
					rep.Stopped, rep.Runs, len(rep.Findings))
			}
			f := rep.Findings[0]
			res, err := Repro(cfg, f.Profile, f.Seed)
			if err != nil {
				t.Fatalf("repro: %v", err)
			}
			if res.Mismatch == nil {
				t.Fatalf("finding did not reproduce (seed %d)", f.Seed)
			}
			if *res.Mismatch != *f.Mismatch {
				t.Fatalf("diagnosis drifted between campaign and replay:\n campaign: %v\n   replay: %v",
					f.Mismatch, res.Mismatch)
			}
		})
	}
}

// TestFuzzBeatsRandomControl is the paired control arm: under a hardened
// trigger threshold the coverage-guided campaign must find the bug in
// strictly fewer runs than uniform random sampling of the same mutation
// space, same budget, same RNG seed.
func TestFuzzBeatsRandomControl(t *testing.T) {
	opt := testOpt(t)
	b, ok := bugs.ByID("mtval-wrong-guest-fault")
	if !ok {
		t.Fatal("bug library lost mtval-wrong-guest-fault")
	}
	// LinuxBoot barely produces guest faults, so a threshold-8 trigger needs
	// the campaign to steer the profile toward hypervisor traffic — exactly
	// what coverage feedback rewards and blind sampling only stumbles into.
	run := func(random bool) *Report {
		cfg := bugCampaign(b, workload.LinuxBoot(), 8, random, 11, 200)
		cfg.Opt = opt
		rep, err := Campaign(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	guided, control := run(false), run(true)
	if guided.Stopped != "mismatch" {
		t.Fatalf("guided campaign missed the bug: stopped=%q runs=%d", guided.Stopped, guided.Runs)
	}
	controlRuns := control.Runs
	if control.Stopped != "mismatch" {
		// Random exhausted the budget without finding it: its budget is
		// effectively larger than anything the guided arm needed.
		controlRuns = control.Runs + 1
	}
	if guided.Runs >= controlRuns {
		t.Fatalf("guidance bought nothing: guided=%d runs, random=%d runs (stopped=%q)",
			guided.Runs, control.Runs, control.Stopped)
	}
	t.Logf("guided=%d runs, random=%d runs (stopped=%q)", guided.Runs, control.Runs, control.Stopped)
}

// TestCampaignDeterministicAcrossWorkers pins the replay contract: one seed
// yields a byte-identical corpus checkpoint and coverage trajectory across
// repeated runs and across worker counts.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	opt := testOpt(t)
	run := func(workers int) []byte {
		cfg := Config{
			DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: opt,
			Base: workload.LinuxBoot(), Seed: 7, TargetInstrs: 2000,
			BatchSize: 8, Workers: workers, MaxRuns: 24,
		}
		rep, err := Campaign(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Checkpoint(cfg.Seed).Marshal()
	}
	serial := run(1)
	if again := run(1); !bytes.Equal(serial, again) {
		t.Fatal("same seed, same workers: checkpoints differ across runs")
	}
	if par := run(4); !bytes.Equal(serial, par) {
		t.Fatal("worker count changed the campaign outcome")
	}
}

// TestCampaignHungCandidatesAreData: a candidate that exceeds the cycle
// budget folds into the accounting as a hung evaluation — deterministically,
// never as a campaign failure.
func TestCampaignHungCandidatesAreData(t *testing.T) {
	opt := testOpt(t)
	cfg := Config{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: opt,
		Base: workload.LinuxBoot(), Seed: 3, TargetInstrs: 2000,
		BatchSize: 4, Workers: 2, MaxRuns: 8,
		MaxCycles: 500, // no workload finishes in 500 cycles
	}
	rep, err := Campaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hung != rep.Runs || rep.Runs != 8 {
		t.Fatalf("hung accounting: runs=%d hung=%d, want 8, 8", rep.Runs, rep.Hung)
	}
	if len(rep.Corpus.Entries) != 0 {
		t.Fatalf("hung runs grew the corpus: %d entries", len(rep.Corpus.Entries))
	}
	last := rep.Trajectory[len(rep.Trajectory)-1]
	if last.Hung != 8 {
		t.Fatalf("trajectory lost the hung count: %+v", last)
	}
	rep2, err := Campaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Checkpoint(cfg.Seed).Marshal(), rep2.Checkpoint(cfg.Seed).Marshal()) {
		t.Fatal("hung evaluations broke campaign determinism")
	}
}

// TestCampaignResume: a campaign continued from a checkpoint keeps the
// corpus and accounting and spends only the remaining budget.
func TestCampaignResume(t *testing.T) {
	opt := testOpt(t)
	cfg := Config{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: opt,
		Base: workload.LinuxBoot(), Seed: 5, TargetInstrs: 2000,
		BatchSize: 8, Workers: 4, MaxRuns: 16,
	}
	first, err := Campaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := LoadCheckpoint(first.Checkpoint(cfg.Seed).Marshal())
	if err != nil {
		t.Fatal(err)
	}

	cfg.MaxRuns = 32
	resumed, err := Campaign(cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Runs != 32 {
		t.Fatalf("resumed campaign ran %d total runs, want 32", resumed.Runs)
	}
	if resumed.Rounds <= first.Rounds {
		t.Fatalf("resume did not advance rounds: %d -> %d", first.Rounds, resumed.Rounds)
	}
	if resumed.Corpus.Features() < first.Corpus.Features() {
		t.Fatalf("resume lost coverage: %d -> %d features",
			first.Corpus.Features(), resumed.Corpus.Features())
	}
	// The trajectory must contain the pre-resume rows verbatim.
	for i, row := range first.Trajectory {
		if resumed.Trajectory[i] != row {
			t.Fatalf("resume rewrote trajectory row %d: %+v vs %+v", i, resumed.Trajectory[i], row)
		}
	}
}
