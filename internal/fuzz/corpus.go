package fuzz

import (
	"encoding/json"
	"fmt"

	"repro/internal/workload"
)

// Entry is one retained (seed, profile) pair: a workload whose run added
// coverage the corpus had not seen when it was admitted.
type Entry struct {
	ID      int              `json:"id"`
	Seed    int64            `json:"seed"`
	Profile workload.Profile `json:"profile"`

	// Features is the run's full discretized signature (sorted); Gain is
	// how many of them were new at admission — the power schedule's energy.
	Features []uint32 `json:"features"`
	Gain     int      `json:"gain"`

	// Round is the generation that admitted the entry; Parent the corpus ID
	// it was mutated from (-1 for base-derived roots); Op the mutation
	// operator — the campaign's lineage record.
	Round  int    `json:"round"`
	Parent int    `json:"parent"`
	Op     string `json:"op"`
}

// Corpus is the set of coverage-adding entries plus the union of every
// feature any evaluated run produced (admitted or not — a rejected
// candidate's features are still "seen", so the next identical signature
// doesn't get in either).
type Corpus struct {
	Entries []Entry
	seen    map[uint32]struct{}
}

// NewCorpus returns an empty (cold) corpus.
func NewCorpus() *Corpus {
	return &Corpus{seen: make(map[uint32]struct{})}
}

// Gain counts the features of fs the corpus has not seen.
func (c *Corpus) Gain(fs []uint32) int {
	n := 0
	for _, f := range fs {
		if _, ok := c.seen[f]; !ok {
			n++
		}
	}
	return n
}

// Observe folds a run's signature into the seen set and, when it adds
// coverage, retains the entry. Returns the gain and whether the entry was
// admitted. The caller fixes the fold order (batch index), which makes the
// corpus deterministic.
func (c *Corpus) Observe(e Entry) (int, bool) {
	gain := c.Gain(e.Features)
	for _, f := range e.Features {
		c.seen[f] = struct{}{}
	}
	if gain == 0 {
		return 0, false
	}
	e.ID = len(c.Entries)
	e.Gain = gain
	c.Entries = append(c.Entries, e)
	return gain, true
}

// Features counts distinct features seen so far.
func (c *Corpus) Features() int { return len(c.seen) }

// Merge folds another corpus's entries into c in their admission order,
// re-admitting only those that still add coverage — the sync-point merge
// for per-worker corpus shards. Returns how many entries survived.
func (c *Corpus) Merge(o *Corpus) int {
	kept := 0
	for _, e := range o.Entries {
		if _, ok := c.Observe(e); ok {
			kept++
		}
	}
	return kept
}

// Minimize returns the greedy minimal subcorpus: entries walked in
// admission order, kept only while they contribute features no earlier
// kept entry covered. Admission order is the natural greedy order — each
// entry was admitted precisely because it added coverage at that point, so
// the pass only drops entries later ones made redundant in aggregate.
func (c *Corpus) Minimize() *Corpus {
	m := NewCorpus()
	for _, e := range c.Entries {
		m.Observe(e)
	}
	return m
}

// Checkpoint is the JSON-serialized campaign state: enough to resume a
// budgeted campaign or replay any entry. It contains only slices of plain
// structs, so marshaling is byte-deterministic — the determinism regression
// compares checkpoint bytes across runs and worker counts.
type Checkpoint struct {
	Version int    `json:"version"`
	Seed    int64  `json:"seed"` // campaign seed the corpus grew under
	Rounds  int    `json:"rounds"`
	Runs    int    `json:"runs"`
	Instrs  uint64 `json:"instrs"`
	Hung    int    `json:"hung,omitempty"`

	Entries    []Entry     `json:"entries"`
	Trajectory []RoundStat `json:"trajectory,omitempty"`
	Findings   []Finding   `json:"findings,omitempty"`

	// Seen is the full feature set, including features contributed by
	// rejected candidates — without it a resumed campaign would re-admit
	// signatures the original run had already turned away.
	Seen []uint32 `json:"seen"`
}

// checkpointVersion guards the JSON layout.
const checkpointVersion = 1

// Checkpoint snapshots a finished campaign for the corpus file.
func (r *Report) Checkpoint(campaignSeed int64) *Checkpoint {
	return &Checkpoint{
		Version: checkpointVersion, Seed: campaignSeed,
		Rounds: r.Rounds, Runs: r.Runs, Instrs: r.Instrs, Hung: r.Hung,
		Entries: r.Corpus.Entries, Trajectory: r.Trajectory, Findings: r.Findings,
		Seen: r.Corpus.SeenFeatures(),
	}
}

// SeenFeatures returns the sorted full feature set (checkpoint payload).
func (c *Corpus) SeenFeatures() []uint32 {
	fs := make([]uint32, 0, len(c.seen))
	for f := range c.seen {
		fs = append(fs, f)
	}
	sortU32(fs)
	return fs
}

// Marshal renders the checkpoint as indented JSON (stable bytes).
func (ck *Checkpoint) Marshal() []byte {
	b, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		// Plain structs only; a marshal failure is a programming error.
		panic(fmt.Sprintf("fuzz: marshal checkpoint: %v", err))
	}
	return append(b, '\n')
}

// LoadCheckpoint parses a checkpoint and rebuilds the corpus it describes.
func LoadCheckpoint(data []byte) (*Checkpoint, *Corpus, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, nil, fmt.Errorf("fuzz: corrupt checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("fuzz: checkpoint version %d (want %d)", ck.Version, checkpointVersion)
	}
	c := NewCorpus()
	for _, e := range ck.Entries {
		if err := e.Profile.Validate(); err != nil {
			return nil, nil, fmt.Errorf("fuzz: checkpoint entry %d: %w", e.ID, err)
		}
		// Entries were admitted with gain > 0 in this exact order, so
		// Observe re-admits each one and preserves IDs and gains.
		c.Observe(e)
	}
	// Restore features contributed by rejected candidates too.
	for _, f := range ck.Seen {
		c.seen[f] = struct{}{}
	}
	return &ck, c, nil
}
