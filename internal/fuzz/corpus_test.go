package fuzz

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

func entry(seed int64, fs ...uint32) Entry {
	p := workload.Microbench()
	p.Name = fuzzName
	return Entry{Seed: seed, Profile: p, Features: fs, Parent: -1, Op: opReseed}
}

func TestCorpusAdmission(t *testing.T) {
	c := NewCorpus()
	gain, ok := c.Observe(entry(1, 10, 20, 30))
	if !ok || gain != 3 {
		t.Fatalf("first entry: gain=%d admitted=%v, want 3,true", gain, ok)
	}
	// Identical signature: rejected, but its features were already seen.
	if gain, ok := c.Observe(entry(2, 10, 20, 30)); ok || gain != 0 {
		t.Fatalf("duplicate signature admitted (gain=%d)", gain)
	}
	// Partial overlap: admitted with the marginal gain only.
	gain, ok = c.Observe(entry(3, 20, 30, 40))
	if !ok || gain != 1 {
		t.Fatalf("overlapping entry: gain=%d admitted=%v, want 1,true", gain, ok)
	}
	if len(c.Entries) != 2 || c.Features() != 4 {
		t.Fatalf("corpus: %d entries %d features, want 2, 4", len(c.Entries), c.Features())
	}
	if c.Entries[0].ID != 0 || c.Entries[1].ID != 1 {
		t.Fatalf("IDs not sequential: %d %d", c.Entries[0].ID, c.Entries[1].ID)
	}
}

// TestCorpusRejectedFeaturesStaySeen pins the seen-set semantics: a
// rejected candidate's novel-free signature still blocks later identical
// ones, and a rejected candidate never resurrects through Merge.
func TestCorpusRejectedFeaturesStaySeen(t *testing.T) {
	c := NewCorpus()
	c.Observe(entry(1, 10))
	c.Observe(entry(2, 10)) // rejected
	if g := c.Gain([]uint32{10}); g != 0 {
		t.Fatalf("feature 10 forgotten after rejection: gain %d", g)
	}
}

func TestCorpusMerge(t *testing.T) {
	a, b := NewCorpus(), NewCorpus()
	a.Observe(entry(1, 10, 20))
	b.Observe(entry(2, 20, 30))
	b.Observe(entry(3, 40))
	kept := a.Merge(b)
	if kept != 2 {
		t.Fatalf("merge kept %d entries, want 2", kept)
	}
	if a.Features() != 4 || len(a.Entries) != 3 {
		t.Fatalf("merged corpus: %d features %d entries", a.Features(), len(a.Entries))
	}
	// A shard whose coverage is fully subsumed contributes nothing.
	sub := NewCorpus()
	sub.Observe(entry(4, 10, 30))
	if kept := a.Merge(sub); kept != 0 {
		t.Fatalf("subsumed shard kept %d entries", kept)
	}
}

func TestCorpusMinimize(t *testing.T) {
	c := NewCorpus()
	c.Observe(entry(1, 10))
	c.Observe(entry(2, 10, 20))
	c.Observe(entry(3, 10, 20, 30))
	m := c.Minimize()
	// Admission-order greedy keeps all three here (each added coverage),
	// but must drop nothing-new entries injected out of band.
	if len(m.Entries) != 3 {
		t.Fatalf("minimized to %d entries, want 3", len(m.Entries))
	}
	// A corpus where a later entry covers an earlier pair collapses.
	c2 := NewCorpus()
	c2.Observe(entry(1, 10))
	c2.Observe(entry(2, 20))
	big := entry(3, 10, 20, 30)
	c2.Observe(big)
	c2.Entries = []Entry{big, c2.Entries[0], c2.Entries[1]} // reorder: big first
	m2 := c2.Minimize()
	if len(m2.Entries) != 1 {
		t.Fatalf("reordered corpus minimized to %d entries, want 1", len(m2.Entries))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := NewCorpus()
	c.Observe(entry(7, 10, 20))
	c.Observe(entry(8, 30))
	c.seen[99] = struct{}{} // a rejected candidate's feature
	rep := &Report{Corpus: c, Rounds: 2, Runs: 5, Instrs: 12345,
		Trajectory: []RoundStat{{Round: 0, Runs: 3}, {Round: 1, Runs: 5}}}
	ck := rep.Checkpoint(42)
	data := ck.Marshal()

	ck2, c2, err := LoadCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Seed != 42 || ck2.Runs != 5 || ck2.Instrs != 12345 {
		t.Fatalf("accounting lost: %+v", ck2)
	}
	if len(c2.Entries) != 2 || c2.Features() != 4 {
		t.Fatalf("rebuilt corpus: %d entries %d features, want 2, 4", len(c2.Entries), c2.Features())
	}
	if g := c2.Gain([]uint32{99}); g != 0 {
		t.Fatal("rejected-candidate feature lost across checkpoint")
	}
	// Marshal is byte-stable.
	if !bytes.Equal(data, ck2.Marshal()) {
		t.Fatal("checkpoint marshal is not byte-stable")
	}
}

func TestLoadCheckpointRejectsCorrupt(t *testing.T) {
	if _, _, err := LoadCheckpoint([]byte("{")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	if _, _, err := LoadCheckpoint([]byte(`{"version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	bad := NewCorpus()
	e := entry(1, 10)
	e.Profile.TargetInstrs = 0
	bad.Entries = append(bad.Entries, e)
	ck := (&Report{Corpus: bad}).Checkpoint(1)
	if _, _, err := LoadCheckpoint(ck.Marshal()); err == nil {
		t.Fatal("checkpoint with invalid profile accepted")
	}
}
