package fuzz

import (
	"math/bits"
	"sort"

	"repro/internal/cosim"
)

// A feature is one discretized cell of the coverage signal, encoded
// domain<<24 | index<<8 | bucket. Counters are bucketed log-scale
// (bits.Len64), so a counter must roughly double to mint a new feature —
// the corpus grows on orders of magnitude, not noise.
const (
	domKind  = 1 // per-kind event populations
	domPair  = 2 // sync-class interleaving pairs
	domAdj   = 3 // trap/MMIO adjacency
	domProx  = 4 // bug-trigger proximity counters
	domBreak = 5 // squash break-rate band
)

func feature(dom, idx int, count uint64) uint32 {
	return uint32(dom)<<24 | uint32(idx)<<8 | uint32(bits.Len64(count))
}

// Features discretizes one run's coverage signal into a sorted, deduplicated
// feature list. Runs without a coverage snapshot (a pre-coverage remote
// server) yield nil — they can still surface findings, just never grow the
// corpus.
func Features(res *cosim.Result) []uint32 {
	if res == nil || res.Coverage == nil {
		return nil
	}
	cov := res.Coverage
	fs := make([]uint32, 0, 64)
	add := func(dom, idx int, n uint64) {
		if n > 0 {
			fs = append(fs, feature(dom, idx, n))
		}
	}
	for i, n := range cov.Kind {
		add(domKind, i, n)
	}
	for i, n := range cov.Pair {
		add(domPair, i, n)
	}
	add(domAdj, 0, cov.TrapMMIOAdj)
	for i, n := range cov.Prox {
		add(domProx, i, n)
	}
	if res.Fusion.Windows > 0 {
		// Per-mille break rate of the Squash fuser: how often an NDE forced
		// a fusion window open — the client-side half of the signal, present
		// in remote runs too (fusion happens on the hardware side).
		add(domBreak, 0, res.Fusion.Breaks*1000/res.Fusion.Windows)
	}
	sortU32(fs)
	return fs
}

func sortU32(fs []uint32) {
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
}

// FeatureDomains names the encoding for reports and tests.
func FeatureDomains() map[int]string {
	return map[int]string{
		domKind: "kind", domPair: "pair", domAdj: "adjacency",
		domProx: "proximity", domBreak: "break-rate",
	}
}

// proxFeature is a test hook: the feature a given proximity counter value
// maps to (Prox indexing mirrors checker's Prox* constants).
func proxFeature(idx int, count uint64) uint32 { return feature(domProx, idx, count) }
