// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seeded fault injection: the network chaos a long-lived FPGA-to-host
// verification link actually sees — delayed and partially flushed writes,
// short reads, corrupted bytes, mid-frame connection resets, and silent
// stalls — reproduced on demand so the transport's resume and verdict
// machinery can be tested against it.
//
// Determinism is the point. Every connection draws its faults from
// rand.PCG streams seeded by Plan.Seed, one stream per direction, and each
// write (or read) consumes a fixed number of draws whether or not a fault
// fires, so the fault sequence is a pure function of (seed, operation
// index). A failing run therefore replays from its seed alone, and every
// injected fault is recorded in the connection's Journal, which the test
// harness prints on failure.
//
// Two modes:
//
//   - Scripted: Plan.Script lists exact (operation index, fault, offset)
//     triples. Used by regression tests that pin one precise failure, e.g.
//     "reset the connection 7 bytes into the 3rd write".
//   - Probabilistic: per-operation fault probabilities, still fully
//     deterministic given the seed. Used by the fault-matrix sweep.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/event"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// Delay sleeps before delivering a write (link latency spike).
	Delay Kind = iota + 1
	// PartialWrite splits one write into two underlying writes with a
	// pause between them, exercising the peer's mid-frame ReadFull paths.
	PartialWrite
	// ShortRead delivers inbound bytes in 1..8-byte slivers, exercising
	// the reader's buffered refill paths.
	ShortRead
	// Corrupt flips one byte of a write; the frame checksum must catch it.
	Corrupt
	// Reset delivers a prefix of a write and then closes the connection,
	// dropping the tail — the mid-frame reset case.
	Reset
	// Stall silently discards a write and everything after it: the local
	// side sees successful writes while the peer sees a dead link.
	Stall
)

// String names the fault for journals and test output.
func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case PartialWrite:
		return "partial-write"
	case ShortRead:
		return "short-read"
	case Corrupt:
		return "corrupt"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjectedReset is returned by a write interrupted by a Reset fault;
// every later operation on the connection fails with it too.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Op is one scripted fault: Index is the 0-based operation counter in the
// fault's direction (writes for Delay/PartialWrite/Corrupt/Reset/Stall,
// reads for ShortRead); Offset parameterizes the byte position — the split
// point for PartialWrite, the flipped byte for Corrupt, the delivered
// prefix length for Reset.
type Op struct {
	Index  int
	Kind   Kind
	Offset int
}

// Plan configures one connection's fault injection. A nil/zero Plan
// injects nothing.
type Plan struct {
	// Seed drives every probabilistic draw and random offset.
	Seed int64

	// Script, when non-empty, selects scripted mode: exactly these ops
	// fire, and the probabilities below are ignored.
	Script []Op

	// Probabilistic mode: per-write fault probabilities, drawn in a fixed
	// order (Delay, PartialWrite, Corrupt, Reset, Stall) so the draw
	// stream stays aligned across runs. PShortRead is per-read.
	PDelay     float64
	PPartial   float64
	PCorrupt   float64
	PReset     float64
	PStall     float64
	PShortRead float64

	// MaxDelay bounds injected sleeps (0 = 2ms).
	MaxDelay time.Duration
}

func (p Plan) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Millisecond
	}
	return p.MaxDelay
}

// Event is one journal entry: an injected fault, located by direction and
// operation index.
type Event struct {
	Dir    string // "write" or "read"
	Index  int    // operation index within Dir
	Kind   Kind
	Detail string
}

// String renders one entry for failure output.
func (e Event) String() string {
	return fmt.Sprintf("%s#%d %s: %s", e.Dir, e.Index, e.Kind, e.Detail)
}

// Journal records every fault a connection injected, plus pooled snapshots
// of the frames a fault touched, so a failing run's output is enough to
// replay and diagnose it. Safe for concurrent use (reads and writes run on
// different goroutines).
type Journal struct {
	mu     sync.Mutex
	seed   int64
	events []Event
	bufs   [][]byte // pooled snapshots adopted via AdoptFrame
}

// NewJournal starts an empty journal tagged with the plan seed it belongs
// to, so String output always names the seed that reproduces the run.
func NewJournal(seed int64) *Journal {
	return &Journal{seed: seed}
}

func (j *Journal) record(ev Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.mu.Unlock()
}

// AdoptFrame takes ownership of a pooled buffer (event.GetBuf) holding a
// snapshot of the bytes a fault touched; the journal releases every
// adopted buffer in Release. difftestlint's poolcheck knows faultnet's
// Adopt* methods transfer ownership, so callers need no release of their
// own.
func (j *Journal) AdoptFrame(dir string, index int, buf []byte) {
	if j == nil {
		event.PutBuf(buf)
		return
	}
	j.mu.Lock()
	j.bufs = append(j.bufs, buf)
	j.events = append(j.events, Event{Dir: dir, Index: index, Kind: Corrupt,
		Detail: fmt.Sprintf("original %d bytes captured", len(buf))})
	j.mu.Unlock()
}

// Release returns every adopted snapshot to the buffer pool. Call once the
// journal's output has been consumed (test cleanup), so the pool-balance
// gates hold.
func (j *Journal) Release() {
	if j == nil {
		return
	}
	j.mu.Lock()
	bufs := j.bufs
	j.bufs = nil
	j.mu.Unlock()
	for _, b := range bufs {
		event.PutBuf(b)
	}
}

// Events returns a copy of the recorded fault sequence.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// String renders the journal as one replayable block: the seed line, then
// one line per injected fault.
func (j *Journal) String() string {
	if j == nil {
		return "faultnet: no journal"
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "faultnet seed %d, %d fault(s)", j.seed, len(j.events))
	for _, e := range j.events {
		b.WriteString("\n  ")
		b.WriteString(e.String())
	}
	return b.String()
}

// Conn injects the plan's faults into one wrapped connection. The write
// path assumes one writer at a time (transport.Conn already serializes
// writers); the read path assumes one reader. Reads and writes may run
// concurrently with each other and with Close.
type Conn struct {
	nc   net.Conn
	plan Plan
	j    *Journal

	wmu      sync.Mutex
	wrng     *rand.Rand
	writes   int
	stalled  bool
	resetErr error

	rmu   sync.Mutex
	rrng  *rand.Rand
	reads int
}

// New wraps nc with the plan's fault injection, recording into j (which
// may be nil for fire-and-forget chaos).
func New(nc net.Conn, plan Plan, j *Journal) *Conn {
	seed := uint64(plan.Seed)
	return &Conn{
		nc:   nc,
		plan: plan,
		j:    j,
		// Independent per-direction streams: read faults cannot shift the
		// write-fault sequence, so each direction replays from the seed no
		// matter how the goroutines interleave.
		wrng: rand.New(rand.NewPCG(seed, 0x77726974655f6469)), // "write_di"
		rrng: rand.New(rand.NewPCG(seed, 0x726561645f646972)), // "read_dir"
	}
}

// scripted returns the scripted op for (dir-appropriate kind, index), if any.
func (c *Conn) scripted(index int, read bool) (Op, bool) {
	for _, op := range c.plan.Script {
		if op.Index != index {
			continue
		}
		if read == (op.Kind == ShortRead) {
			return op, true
		}
	}
	return Op{}, false
}

// writeFault decides the fault for write #index over n bytes. In
// probabilistic mode it always consumes the same number of draws, keeping
// the stream aligned with the operation index.
func (c *Conn) writeFault(index, n int) (Op, bool) {
	if len(c.plan.Script) > 0 {
		return c.scripted(index, false)
	}
	// Fixed draw order; first hit wins but every probability is drawn.
	var hit Kind
	for _, f := range [...]struct {
		k Kind
		p float64
	}{
		{Delay, c.plan.PDelay},
		{PartialWrite, c.plan.PPartial},
		{Corrupt, c.plan.PCorrupt},
		{Reset, c.plan.PReset},
		{Stall, c.plan.PStall},
	} {
		if v := c.wrng.Float64(); hit == 0 && v < f.p {
			hit = f.k
		}
	}
	off := c.wrng.IntN(maxInt(n, 1))
	if hit == 0 {
		return Op{}, false
	}
	return Op{Index: index, Kind: hit, Offset: off}, true
}

// readFault decides the fault for read #index.
func (c *Conn) readFault(index int) (Op, bool) {
	if len(c.plan.Script) > 0 {
		return c.scripted(index, true)
	}
	v := c.rrng.Float64()
	if v < c.plan.PShortRead {
		return Op{Index: index, Kind: ShortRead}, true
	}
	return Op{}, false
}

// sleep pauses for a seeded duration bounded by the plan's MaxDelay.
func (c *Conn) sleep() time.Duration {
	d := time.Duration(c.wrng.Int64N(int64(c.plan.maxDelay()) + 1))
	time.Sleep(d)
	return d
}

// Write applies at most one fault, then delivers (or drops, or truncates)
// the bytes.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.resetErr != nil {
		return 0, c.resetErr
	}
	index := c.writes
	c.writes++
	if c.stalled {
		// The stall swallows everything: the caller believes the write
		// succeeded, the peer never sees it.
		return len(p), nil
	}
	op, ok := c.writeFault(index, len(p))
	if !ok {
		return c.nc.Write(p)
	}
	switch op.Kind {
	case Delay:
		d := c.sleep()
		c.j.record(Event{Dir: "write", Index: index, Kind: Delay,
			Detail: fmt.Sprintf("%v before %d bytes", d, len(p))})
		return c.nc.Write(p)

	case PartialWrite:
		k := clamp(op.Offset, 1, len(p)-1)
		if len(p) < 2 {
			return c.nc.Write(p)
		}
		c.j.record(Event{Dir: "write", Index: index, Kind: PartialWrite,
			Detail: fmt.Sprintf("%d bytes split at %d", len(p), k)})
		n1, err := c.nc.Write(p[:k])
		if err != nil {
			return n1, err
		}
		c.sleep()
		n2, err := c.nc.Write(p[k:])
		return n1 + n2, err

	case Corrupt:
		if len(p) == 0 {
			return c.nc.Write(p)
		}
		k := op.Offset % len(p)
		// Snapshot the original bytes for the journal's replay output; the
		// journal adopts the pooled buffer and releases it.
		snap := event.GetBuf(len(p))
		snap = append(snap, p...)
		c.j.AdoptFrame("write", index, snap)
		tmp := make([]byte, len(p))
		copy(tmp, p)
		tmp[k] ^= 0xa5
		c.j.record(Event{Dir: "write", Index: index, Kind: Corrupt,
			Detail: fmt.Sprintf("byte %d of %d flipped", k, len(p))})
		return c.nc.Write(tmp)

	case Reset:
		k := clamp(op.Offset, 0, len(p))
		n, _ := c.nc.Write(p[:k])
		c.nc.Close()
		c.resetErr = ErrInjectedReset
		c.j.record(Event{Dir: "write", Index: index, Kind: Reset,
			Detail: fmt.Sprintf("%d of %d bytes delivered, connection closed", n, len(p))})
		return n, ErrInjectedReset

	case Stall:
		c.stalled = true
		c.j.record(Event{Dir: "write", Index: index, Kind: Stall,
			Detail: fmt.Sprintf("this write (%d bytes) and all later writes discarded", len(p))})
		return len(p), nil
	}
	return c.nc.Write(p)
}

// Read applies the short-read fault, otherwise delegates.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	index := c.reads
	c.reads++
	op, ok := c.readFault(index)
	var sliver int
	if ok && op.Kind == ShortRead && len(p) > 1 {
		sliver = 1 + c.rrng.IntN(minInt(len(p)-1, 7))
	}
	c.rmu.Unlock()
	if sliver > 0 {
		n, err := c.nc.Read(p[:sliver])
		c.j.record(Event{Dir: "read", Index: index, Kind: ShortRead,
			Detail: fmt.Sprintf("%d of up to %d bytes delivered", n, len(p))})
		return n, err
	}
	return c.nc.Read(p)
}

// Close closes the wrapped connection.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr delegates.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr delegates.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline delegates.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetReadDeadline delegates.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// SetWriteDeadline delegates.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Listener wraps an accept loop: each accepted connection is wrapped with
// the plan NewPlan returns for its 0-based accept index (nil NewPlan or a
// nil-returning call passes the connection through unwrapped).
type Listener struct {
	net.Listener
	// NewPlan builds the plan and journal for accepted connection i.
	NewPlan func(i int) (Plan, *Journal)

	mu sync.Mutex
	n  int
}

// Accept wraps the next connection per NewPlan.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if l.NewPlan == nil {
		return nc, nil
	}
	plan, j := l.NewPlan(i)
	return New(nc, plan, j), nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
