package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

// pipePair returns a faultnet-wrapped writer side and the raw reader side
// of an in-memory connection.
func pipePair(t *testing.T, plan Plan, j *Journal) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return New(a, plan, j), b
}

// readAll drains the raw side until EOF/reset on a helper goroutine.
func readAll(c net.Conn) <-chan []byte {
	out := make(chan []byte, 1)
	go func() {
		var got []byte
		buf := make([]byte, 256)
		for {
			n, err := c.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				out <- got
				return
			}
		}
	}()
	return out
}

func TestScriptedCorruptFlipsOneByte(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	j := NewJournal(42)
	fc, raw := pipePair(t, Plan{Seed: 42, Script: []Op{{Index: 1, Kind: Corrupt, Offset: 3}}}, j)
	got := readAll(raw)

	msg0 := []byte("clean-frame")
	msg1 := []byte("dirty-frame")
	if _, err := fc.Write(msg0); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write(msg1); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	rx := <-got

	want := append(append([]byte(nil), msg0...), msg1...)
	if bytes.Equal(rx, want) {
		t.Fatal("scripted corruption did not change the stream")
	}
	diffs := 0
	for i := range want {
		if rx[i] != want[i] {
			diffs++
			if i != len(msg0)+3 {
				t.Errorf("byte %d corrupted, want only byte %d", i, len(msg0)+3)
			}
		}
	}
	if diffs != 1 {
		t.Errorf("%d bytes corrupted, want exactly 1", diffs)
	}
	evs := j.Events()
	if len(evs) == 0 {
		t.Fatal("journal recorded nothing")
	}
	j.Release()
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("journal leaked pooled snapshots: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

func TestScriptedResetTruncatesAndCloses(t *testing.T) {
	j := NewJournal(7)
	fc, raw := pipePair(t, Plan{Seed: 7, Script: []Op{{Index: 0, Kind: Reset, Offset: 4}}}, j)
	got := readAll(raw)

	n, err := fc.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("reset write: n=%d err=%v, want ErrInjectedReset", n, err)
	}
	if n != 4 {
		t.Fatalf("reset delivered %d bytes, want 4", n)
	}
	if _, err := fc.Write([]byte("more")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write after reset: %v, want ErrInjectedReset", err)
	}
	if rx := <-got; !bytes.Equal(rx, []byte("0123")) {
		t.Fatalf("peer received %q, want the 4-byte prefix", rx)
	}
}

func TestScriptedStallSwallowsSilently(t *testing.T) {
	j := NewJournal(7)
	fc, raw := pipePair(t, Plan{Seed: 7, Script: []Op{{Index: 1, Kind: Stall}}}, j)
	got := readAll(raw)

	if _, err := fc.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	// The stalled writes must report success while delivering nothing.
	for i := 0; i < 3; i++ {
		n, err := fc.Write([]byte("lost"))
		if err != nil || n != 4 {
			t.Fatalf("stalled write %d: n=%d err=%v, want silent success", i, n, err)
		}
	}
	fc.Close()
	if rx := <-got; !bytes.Equal(rx, []byte("before")) {
		t.Fatalf("peer received %q, want only the pre-stall bytes", rx)
	}
	evs := j.Events()
	if len(evs) != 1 || evs[0].Kind != Stall {
		t.Fatalf("journal %v, want exactly one stall event", evs)
	}
}

func TestShortReadsDeliverEverything(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	j := NewJournal(11)
	fr := New(b, Plan{Seed: 11, PShortRead: 1.0}, j)

	payload := bytes.Repeat([]byte{0xcd}, 300)
	go func() {
		a.Write(payload)
		a.Close()
	}()
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("short reads changed the stream: %d bytes, want %d", len(got), len(payload))
	}
	if len(j.Events()) == 0 {
		t.Fatal("no short-read events journaled at probability 1.0")
	}
}

// TestProbabilisticDeterminism: the same seed must produce the identical
// fault sequence; a different seed must (for this configuration) differ.
func TestProbabilisticDeterminism(t *testing.T) {
	runOnce := func(seed int64) []Event {
		j := NewJournal(seed)
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		fc := New(a, Plan{Seed: seed, PDelay: 0.3, PPartial: 0.3, MaxDelay: time.Microsecond}, j)
		done := readAll(b)
		for i := 0; i < 40; i++ {
			if _, err := fc.Write([]byte("deterministic-chaos")); err != nil {
				t.Fatal(err)
			}
		}
		fc.Close()
		<-done
		return j.Events()
	}
	first := runOnce(123)
	second := runOnce(123)
	if len(first) == 0 {
		t.Fatal("no faults fired at 30% probabilities over 40 writes")
	}
	if len(first) != len(second) {
		t.Fatalf("same seed produced %d then %d faults", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("fault %d differs across identical seeds:\n  %v\n  %v", i, first[i], second[i])
		}
	}
	other := runOnce(124)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault sequence")
	}
}

func TestListenerWrapsPerConnection(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	journals := map[int]*Journal{}
	l := &Listener{Listener: inner, NewPlan: func(i int) (Plan, *Journal) {
		j := NewJournal(int64(i))
		mu.Lock()
		journals[i] = j
		mu.Unlock()
		return Plan{Seed: int64(i), Script: []Op{{Index: 0, Kind: Stall}}}, j
	}}
	t.Cleanup(func() { l.Close() })

	srvGot := make(chan []byte, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { srvGot <- <-readAll(c) }()
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		// The server-side wrapper stalls on its first write; the client's
		// writes still arrive (faults are injected on the wrapped side).
		if _, err := c.Write([]byte("hello")); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	for i := 0; i < 2; i++ {
		if rx := <-srvGot; !bytes.Equal(rx, []byte("hello")) {
			t.Fatalf("server read %q, want %q", rx, "hello")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(journals) != 2 {
		t.Fatalf("%d journals, want one per accepted connection", len(journals))
	}
}

func TestJournalStringNamesSeed(t *testing.T) {
	j := NewJournal(9001)
	j.record(Event{Dir: "write", Index: 3, Kind: Corrupt, Detail: "x"})
	s := j.String()
	if !bytes.Contains([]byte(s), []byte("9001")) {
		t.Fatalf("journal output %q does not name its seed", s)
	}
}
