package faultnet

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		Delay:        "delay",
		PartialWrite: "partial-write",
		ShortRead:    "short-read",
		Corrupt:      "corrupt",
		Reset:        "reset",
		Stall:        "stall",
		Kind(250):    "kind(250)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

// TestConnDelegation pins the pass-through half of the net.Conn surface:
// addresses and deadlines must reach the wrapped connection untouched, or
// the transport's stall detection silently stops working under faultnet.
func TestConnDelegation(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := New(a, Plan{Seed: 1}, NewJournal(1))
	defer c.Close()

	if c.LocalAddr() == nil || c.RemoteAddr() == nil {
		t.Fatal("addresses must delegate to the wrapped connection")
	}
	if err := c.SetDeadline(time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("SetDeadline: %v", err)
	}
	if err := c.SetReadDeadline(time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	if err := c.SetWriteDeadline(time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("SetWriteDeadline: %v", err)
	}
}

// TestJournalAdoptAndString pins the failure-output contract: a journal with
// adopted snapshots renders the seed line plus one line per fault, releases
// every pooled snapshot exactly once, and a nil journal stays inert.
func TestJournalAdoptAndString(t *testing.T) {
	gets0, puts0 := event.PoolStats()

	j := NewJournal(77)
	snap := event.GetBuf(16)
	snap = append(snap, []byte("original bytes")...)
	j.AdoptFrame("write", 3, snap)
	j.record(Event{Dir: "read", Index: 9, Kind: ShortRead, Detail: "slivered"})

	s := j.String()
	if !strings.Contains(s, "faultnet seed 77") || !strings.Contains(s, "2 fault(s)") {
		t.Fatalf("journal header wrong: %q", s)
	}
	if !strings.Contains(s, "corrupt") || !strings.Contains(s, "short-read") {
		t.Fatalf("journal body missing fault lines: %q", s)
	}
	if n := len(j.Events()); n != 2 {
		t.Fatalf("Events() = %d entries, want 2", n)
	}
	j.Release()
	j.Release() // idempotent: second release must not double-put

	var nilJ *Journal
	nilJ.record(Event{})
	nilJ.Release()
	if nilJ.Events() != nil {
		t.Fatal("nil journal must have no events")
	}
	if got := nilJ.String(); got != "faultnet: no journal" {
		t.Fatalf("nil journal String() = %q", got)
	}
	// A nil journal still honors the Adopt* ownership transfer by returning
	// the buffer itself.
	nilJ.AdoptFrame("write", 0, event.GetBuf(8))

	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}
