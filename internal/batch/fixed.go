package batch

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/wire"
)

// Fixed-offset packing: the existing scheme the paper compares Batch against
// (Figure 5). Every event kind gets a fixed-size region per cycle, sized for
// the worst-case instance count; invalid entries are padded with bubbles to
// preserve the offsets of subsequent kinds. Evaluation on DiffTest shows
// >60% of such packets are bubbles, costing ~1.67× more communications for
// the same valid events (paper §4.2.1).

// LayoutEntry reserves worst-case space for one event kind per cycle frame.
type LayoutEntry struct {
	Kind event.Kind
	Max  int // maximum instances per cycle
}

// FixedLayout is the static per-cycle frame layout.
type FixedLayout struct {
	Entries   []LayoutEntry
	FrameSize int
	index     map[event.Kind]int
	offsets   []int // frame offset of each entry's region (fixed by layout)
}

// NewFixedLayout builds a layout for the monitored kinds with the given
// worst-case per-commit burst width.
func NewFixedLayout(kinds []event.Kind, burst int) *FixedLayout {
	if len(kinds) == 0 {
		for k := event.Kind(0); k < event.NumKinds; k++ {
			kinds = append(kinds, k)
		}
	}
	sorted := append([]event.Kind(nil), kinds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	l := &FixedLayout{index: make(map[event.Kind]int)}
	for _, k := range sorted {
		max := 1
		switch k {
		case event.KindInstrCommit, event.KindLoad, event.KindStore, event.KindAtomic,
			event.KindVecMem, event.KindHLoad, event.KindLrSc, event.KindRefill,
			event.KindCMO, event.KindL1TLB, event.KindL2TLB, event.KindSbuffer,
			event.KindVecCommit, event.KindVecWriteback, event.KindVstartUpdate,
			event.KindRedirect:
			max = burst
		default:
			// State snapshots and traps: at most one slot per frame.
		}
		l.index[k] = len(l.Entries)
		l.Entries = append(l.Entries, LayoutEntry{Kind: k, Max: max})
		l.offsets = append(l.offsets, l.FrameSize)
		// 1 count byte + max × (1 slot byte + payload).
		l.FrameSize += 1 + max*(1+event.SizeOf(k))
	}
	return l
}

// FixedPacker packs cycle frames with fixed offsets into fixed-size packets.
type FixedPacker struct {
	Layout      *FixedLayout
	PacketBytes int

	stream []byte // frame bytes not yet emitted as packets

	frame  []byte // per-cycle frame scratch, reused across AddCycle calls
	counts []int  // per-entry instance counts, reused across AddCycle calls

	// Stats.
	Frames     uint64
	ValidBytes uint64
	TotalBytes uint64
	Packets    uint64

	pendEvents int
	pendInstrs int
}

// NewFixedPacker returns a fixed-offset packer.
func NewFixedPacker(layout *FixedLayout, packetBytes int) *FixedPacker {
	return &FixedPacker{Layout: layout, PacketBytes: packetBytes}
}

// AddCycle lays one cycle's items into a fixed-offset frame and returns any
// full packets.
func (f *FixedPacker) AddCycle(items []wire.Item) ([]Packet, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if f.frame == nil {
		f.frame = make([]byte, f.Layout.FrameSize)
		f.counts = make([]int, len(f.Layout.Entries))
	}
	frame, counts, offsets := f.frame, f.counts, f.Layout.offsets
	clear(frame) // bubbles must read as zero padding even on a reused frame
	clear(counts)

	events, instrs, valid := 0, 0, 0
	for _, it := range items {
		k, ok := it.Kind()
		if !ok || it.Type >= wire.TypeNDEBase {
			return nil, fmt.Errorf("batch: fixed-offset packing supports raw events only (type %d)", it.Type)
		}
		idx, ok := f.Layout.index[k]
		if !ok {
			return nil, fmt.Errorf("batch: kind %v not in fixed layout", k)
		}
		e := f.Layout.Entries[idx]
		n := counts[idx]
		if n >= e.Max {
			return nil, fmt.Errorf("batch: cycle exceeds fixed layout capacity for %v (%d)", k, e.Max)
		}
		slotOff := offsets[idx] + 1 + n*(1+event.SizeOf(k))
		frame[slotOff] = it.Slot
		copy(frame[slotOff+1:], it.Payload)
		counts[idx] = n + 1
		events++
		instrs += it.InstrCount()
		valid += it.WireSize()
	}
	for i := range counts {
		frame[offsets[i]] = byte(counts[i])
	}

	f.Frames++
	f.ValidBytes += uint64(valid)
	f.TotalBytes += uint64(len(frame))
	f.pendEvents += events
	f.pendInstrs += instrs
	f.stream = append(f.stream, frame...)
	return f.drain(false), nil
}

// Flush emits the remaining partial packet.
func (f *FixedPacker) Flush() []Packet {
	return f.drain(true)
}

func (f *FixedPacker) drain(all bool) []Packet {
	var out []Packet
	for len(f.stream) >= f.PacketBytes || (all && len(f.stream) > 0) {
		n := f.PacketBytes
		if n > len(f.stream) {
			n = len(f.stream)
		}
		buf := event.GetBuf(f.PacketBytes)[:f.PacketBytes]
		copy(buf, f.stream[:n])
		clear(buf[n:]) // pooled buffer: pad a short final packet with zeros
		// Compact instead of re-slicing so the stream's backing array is
		// reused rather than leaked behind an advancing slice base.
		f.stream = f.stream[:copy(f.stream, f.stream[n:])]
		// Attribute pending event/instr counts to the packet that completes
		// the stream flow; apportioning exactly is unnecessary for cost
		// accounting because every packet costs the same to transmit.
		pkt := Packet{Buf: buf, Used: n, Events: f.pendEvents, Instrs: f.pendInstrs}
		f.pendEvents, f.pendInstrs = 0, 0
		f.Packets++
		out = append(out, pkt)
	}
	return out
}

// BubbleRatio reports the fraction of frame bytes that are padding — the
// paper measures >60% for fixed-offset packing on DiffTest.
func (f *FixedPacker) BubbleRatio() float64 {
	if f.TotalBytes == 0 {
		return 0
	}
	return 1 - float64(f.ValidBytes)/float64(f.TotalBytes)
}

// UnpackFixedStream parses a contiguous stream of fixed-offset frames,
// returning the valid items per frame in restored checking order. It is the
// software-side counterpart of FixedPacker for the ablation benchmarks.
func UnpackFixedStream(layout *FixedLayout, stream []byte) ([][]wire.Item, error) {
	var frames [][]wire.Item
	for len(stream) >= layout.FrameSize {
		frame := stream[:layout.FrameSize]
		stream = stream[layout.FrameSize:]
		// Counting pass sizes the frame's item slice and payload arena so the
		// valid items cost two allocations per frame instead of one each.
		nItems, nBytes := 0, 0
		for ei, e := range layout.Entries {
			count := int(frame[layout.offsets[ei]])
			if count > e.Max {
				count = e.Max
			}
			nItems += count
			nBytes += count * event.SizeOf(e.Kind)
		}
		items := make([]wire.Item, 0, nItems)
		arena := make([]byte, 0, nBytes)
		for ei, e := range layout.Entries {
			off := layout.offsets[ei]
			count := int(frame[off])
			if count > e.Max {
				count = e.Max
			}
			off++
			size := event.SizeOf(e.Kind)
			for i := 0; i < count; i++ {
				slotOff := off + i*(1+size)
				start := len(arena)
				arena = append(arena, frame[slotOff+1:slotOff+1+size]...)
				items = append(items, wire.Item{
					Type: uint8(e.Kind), Core: 0, Slot: frame[slotOff],
					Payload: arena[start:len(arena):len(arena)],
				})
			}
		}
		sort.SliceStable(items, func(i, j int) bool { return items[i].SortKey() < items[j].SortKey() })
		frames = append(frames, items)
	}
	return frames, nil
}
