package batch

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/wire"
)

// Mixed-item transport property: the packer/unpacker must round-trip every
// wire item class Squash emits — raw events, order-tagged NDEs, fused commit
// summaries, window digests, and variable-length diffs — across arbitrary
// packet boundaries, preserving per-cycle content exactly.

func randomMixedCycle(r *rand.Rand, seqBase uint64) []wire.Item {
	var items []wire.Item
	slot := uint8(0)
	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		slot++
		switch r.Intn(5) {
		case 0:
			items = append(items, wire.RawItem(0, slot, &event.InstrCommit{PC: r.Uint64()}))
		case 1:
			items = append(items, wire.NDEItem(0, slot, seqBase+uint64(i),
				&event.Interrupt{Cause: 7, PC: r.Uint64()}))
		case 2:
			items = append(items, wire.NDEItem(0, slot, seqBase+uint64(i),
				&event.Refill{Addr: r.Uint64()}))
		case 3:
			prev := &event.CSRState{Mstatus: r.Uint64()}
			cur := &event.CSRState{Mstatus: r.Uint64(), Mepc: r.Uint64()}
			items = append(items, wire.DiffItem(0, slot, seqBase, prev, cur))
		case 4:
			items = append(items, wire.FusedItem(0, slot, wire.FusedCommit{
				LastSeq: seqBase, Count: uint64(r.Intn(64)), LastPC: r.Uint64(),
				PCDigest: r.Uint64(), WDigest: r.Uint64(), StartToken: r.Uint64(),
			}))
			items = append(items, wire.DigestItem(0, slot, uint32(r.Intn(100)), r.Uint64()))
		}
	}
	return items
}

func itemsEqual(a, b wire.Item) bool {
	if a.Type != b.Type || a.Core != b.Core || a.Slot != b.Slot || len(a.Payload) != len(b.Payload) {
		return false
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			return false
		}
	}
	return true
}

func TestMixedItemRoundTrip(t *testing.T) {
	for _, pktSize := range []int{MinPacketBytes, 4096, 16384} {
		r := rand.New(rand.NewSource(int64(pktSize) + 99))
		p := NewPacker(pktSize)
		var u Unpacker
		var sent, got []wire.Item

		for c := 0; c < 400; c++ {
			cycle := randomMixedCycle(r, uint64(c)*10)
			sent = append(sent, cycle...)
			for _, pkt := range p.AddCycle(cycle) {
				rx, err := u.AddPacket(pkt.Buf)
				if err != nil {
					t.Fatalf("pkt %d: %v", pktSize, err)
				}
				got = append(got, rx...)
			}
		}
		for _, pkt := range p.Flush() {
			rx, err := u.AddPacket(pkt.Buf)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rx...)
		}
		got = append(got, u.Flush()...)

		if len(got) != len(sent) {
			t.Fatalf("pkt %d: %d items in, %d out", pktSize, len(sent), len(got))
		}
		// Compare as per-cycle multisets: within a cycle the unpacker
		// restores (slot, priority) order, which may differ from emission
		// order for same-slot mixed classes; content must be identical.
		// Since randomMixedCycle uses strictly increasing slots, order is
		// in fact fully preserved.
		for i := range sent {
			if !itemsEqual(sent[i], got[i]) {
				t.Fatalf("pkt %d: item %d differs: %+v vs %+v", pktSize, i, sent[i], got[i])
			}
		}
	}
}

func TestMixedItemsFuzzDoNotPanic(t *testing.T) {
	// Corrupted packets must produce errors, never panics or silent junk
	// acceptance of impossible structure.
	r := rand.New(rand.NewSource(77))
	p := NewPacker(4096)
	var pkts []Packet
	for c := 0; c < 50; c++ {
		pkts = append(pkts, p.AddCycle(randomMixedCycle(r, uint64(c)))...)
	}
	pkts = append(pkts, p.Flush()...)
	for _, pkt := range pkts {
		for trial := 0; trial < 20; trial++ {
			buf := append([]byte(nil), pkt.Buf...)
			// Flip a few random bytes.
			for j := 0; j < 3; j++ {
				buf[r.Intn(len(buf))] ^= byte(1 + r.Intn(255))
			}
			var u Unpacker
			_, err := u.AddPacket(buf) // error or success both fine; no panic
			_ = err
			u.Flush()
		}
	}
}
