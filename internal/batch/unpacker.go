package batch

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/wire"
)

// Unpacker performs meta-guided dynamic unpacking (paper §4.2.2): it reads
// each packet's metadata table, computes segment offsets as running length
// sums, reconstructs items with their per-kind structure, and restores the
// per-core checking order within each cycle group.
//
// Because transmission-level packing may split a cycle across packets, the
// unpacker holds the most recent cycle group until a newer cycle tag (or
// Flush) proves it complete.
type Unpacker struct {
	pending   []wire.Item
	pendingID uint8
	havePend  bool

	// Stats.
	Items   uint64
	Packets uint64
}

// AddPacket parses one packet and returns all items of cycles that are now
// complete, in restored checking order.
func (u *Unpacker) AddPacket(buf []byte) ([]wire.Item, error) {
	u.Packets++
	if len(buf) < packetHeader {
		return nil, fmt.Errorf("batch: packet shorter than header")
	}
	segCount := int(binary.LittleEndian.Uint16(buf[0:]))
	pos := int(binary.LittleEndian.Uint16(buf[2:]))
	if packetHeader+segCount*metaSize > len(buf) || pos > len(buf) {
		return nil, fmt.Errorf("batch: corrupt packet header (%d segments)", segCount)
	}

	var done []wire.Item
	for s := 0; s < segCount; s++ {
		m := buf[packetHeader+s*metaSize:]
		typ, core, cycle := m[0], m[1], m[2]
		count := int(binary.LittleEndian.Uint16(m[4:]))
		segBytes := int(binary.LittleEndian.Uint16(m[6:]))
		if pos+segBytes > len(buf) {
			return nil, fmt.Errorf("batch: segment overruns packet")
		}

		if !u.havePend || cycle != u.pendingID {
			done = append(done, u.release()...)
			u.pendingID, u.havePend = cycle, true
		}

		seg := buf[pos : pos+segBytes]
		items, err := parseSegment(typ, core, count, seg)
		if err != nil {
			return nil, err
		}
		u.pending = append(u.pending, items...)
		pos += segBytes
	}
	return done, nil
}

// Flush releases the final pending cycle group.
func (u *Unpacker) Flush() []wire.Item {
	return u.release()
}

func (u *Unpacker) release() []wire.Item {
	if len(u.pending) == 0 {
		return nil
	}
	out := append([]wire.Item(nil), u.pending...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].SortKey() < out[j].SortKey() })
	u.pending = u.pending[:0]
	u.Items += uint64(len(out))
	return out
}

// parseSegment slices a segment payload into items using the per-kind
// structural metadata: fixed sizes for raw/NDE/fused items, mask-derived
// lengths for diff items.
func parseSegment(typ, core uint8, count int, seg []byte) ([]wire.Item, error) {
	items := make([]wire.Item, 0, count)
	pos := 0
	for i := 0; i < count; i++ {
		if pos >= len(seg) {
			return nil, fmt.Errorf("batch: segment truncated at item %d/%d", i, count)
		}
		slot := seg[pos]
		pos++
		var n int
		switch {
		case typ < wire.TypeNDEBase:
			n = event.SizeOf(event.Kind(typ))
		case typ < wire.TypeFused:
			n = 8 + event.SizeOf(event.Kind(typ-wire.TypeNDEBase))
		case typ == wire.TypeFused:
			n = wire.FusedPayloadSize
		case typ == wire.TypeDigest:
			n = 16
		case typ >= wire.TypeDiffBase && typ < wire.TypeInvalid:
			var err error
			n, err = wire.ParseDiffLen(event.Kind(typ-wire.TypeDiffBase), seg[pos:])
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("batch: unknown item type %d", typ)
		}
		if pos+n > len(seg) {
			return nil, fmt.Errorf("batch: item %d overruns segment (type %d)", i, typ)
		}
		items = append(items, wire.Item{
			Type: typ, Core: core, Slot: slot,
			Payload: append([]byte(nil), seg[pos:pos+n]...),
		})
		pos += n
	}
	if pos != len(seg) {
		return nil, fmt.Errorf("batch: %d trailing segment bytes", len(seg)-pos)
	}
	return items, nil
}
