package batch

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/wire"
)

// Unpacker performs meta-guided dynamic unpacking (paper §4.2.2): it reads
// each packet's metadata table, computes segment offsets as running length
// sums, reconstructs items with their per-kind structure, and restores the
// per-core checking order within each cycle group.
//
// Because transmission-level packing may split a cycle across packets, the
// unpacker holds the most recent cycle group until a newer cycle tag (or
// Flush) proves it complete.
type Unpacker struct {
	pending   []wire.Item
	pendingID uint8
	havePend  bool

	// Stats.
	Items   uint64
	Packets uint64
}

// AddPacket parses one packet and returns all items of cycles that are now
// complete, in restored checking order.
//
// Item payloads are copied out of buf into one arena allocation per packet,
// so the caller may release or reuse buf (batch.Packet.Release) as soon as
// AddPacket returns. Failed parses are reported with the packet index and
// segment/item position, wrapping the codec's typed *event.DecodeError where
// an event payload is at fault.
func (u *Unpacker) AddPacket(buf []byte) ([]wire.Item, error) {
	pktIdx := u.Packets
	u.Packets++
	if len(buf) < packetHeader {
		return nil, fmt.Errorf("batch: packet %d shorter than header", pktIdx)
	}
	segCount := int(binary.LittleEndian.Uint16(buf[0:]))
	pos := int(binary.LittleEndian.Uint16(buf[2:]))
	if packetHeader+segCount*metaSize > len(buf) || pos > len(buf) {
		return nil, fmt.Errorf("batch: packet %d: corrupt header (%d segments)", pktIdx, segCount)
	}

	// Size the payload arena: each item spends one slot byte of its segment,
	// the rest of the segment bytes are payload.
	total := 0
	for s := 0; s < segCount; s++ {
		m := buf[packetHeader+s*metaSize:]
		if n := int(binary.LittleEndian.Uint16(m[6:])) - int(binary.LittleEndian.Uint16(m[4:])); n > 0 {
			total += n
		}
	}
	if total > len(buf) {
		total = len(buf) // corrupt meta cannot demand more than the packet holds
	}
	arena := make([]byte, 0, total)

	var done []wire.Item
	for s := 0; s < segCount; s++ {
		m := buf[packetHeader+s*metaSize:]
		typ, core, cycle := m[0], m[1], m[2]
		count := int(binary.LittleEndian.Uint16(m[4:]))
		segBytes := int(binary.LittleEndian.Uint16(m[6:]))
		if pos+segBytes > len(buf) {
			return nil, fmt.Errorf("batch: packet %d segment %d overruns packet", pktIdx, s)
		}

		if !u.havePend || cycle != u.pendingID {
			done = append(done, u.release()...)
			u.pendingID, u.havePend = cycle, true
		}

		seg := buf[pos : pos+segBytes]
		var err error
		arena, err = u.parseSegment(typ, core, count, seg, arena)
		if err != nil {
			return nil, fmt.Errorf("batch: packet %d segment %d: %w", pktIdx, s, err)
		}
		pos += segBytes
	}
	return done, nil
}

// Flush releases the final pending cycle group.
func (u *Unpacker) Flush() []wire.Item {
	return u.release()
}

func (u *Unpacker) release() []wire.Item {
	if len(u.pending) == 0 {
		return nil
	}
	out := append([]wire.Item(nil), u.pending...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].SortKey() < out[j].SortKey() })
	u.pending = u.pending[:0]
	u.Items += uint64(len(out))
	return out
}

// parseSegment slices a segment payload into items using the per-kind
// structural metadata: fixed sizes for raw/NDE/fused items, mask-derived
// lengths for diff items. Parsed items go to u.pending; payload bytes are
// copied into arena (capacity-clamped sub-slices) and the grown arena is
// returned. Truncated event payloads surface as typed *event.DecodeError.
func (u *Unpacker) parseSegment(typ, core uint8, count int, seg, arena []byte) ([]byte, error) {
	itemKind := func() (event.Kind, bool) {
		return wire.Item{Type: typ}.Kind()
	}
	pos := 0
	for i := 0; i < count; i++ {
		if pos >= len(seg) {
			err := error(fmt.Errorf("segment truncated"))
			if k, ok := itemKind(); ok {
				err = &event.DecodeError{Kind: k, Len: 0, Err: event.ErrShortPayload}
			}
			return arena, fmt.Errorf("item %d/%d: %w", i, count, err)
		}
		slot := seg[pos]
		pos++
		var n int
		switch {
		case typ < wire.TypeNDEBase:
			n = event.SizeOf(event.Kind(typ))
		case typ < wire.TypeFused:
			n = 8 + event.SizeOf(event.Kind(typ-wire.TypeNDEBase))
		case typ == wire.TypeFused:
			n = wire.FusedPayloadSize
		case typ == wire.TypeDigest:
			n = 16
		case typ >= wire.TypeDiffBase && typ < wire.TypeInvalid:
			var err error
			n, err = wire.ParseDiffLen(event.Kind(typ-wire.TypeDiffBase), seg[pos:])
			if err != nil {
				return arena, fmt.Errorf("item %d/%d: %w", i, count, err)
			}
		default:
			return arena, fmt.Errorf("item %d/%d: unknown item type %d", i, count, typ)
		}
		if pos+n > len(seg) {
			err := error(fmt.Errorf("type %d payload overruns segment", typ))
			if k, ok := itemKind(); ok {
				err = &event.DecodeError{Kind: k, Len: len(seg) - pos, Err: event.ErrShortPayload}
			}
			return arena, fmt.Errorf("item %d/%d: %w", i, count, err)
		}
		start := len(arena)
		arena = append(arena, seg[pos:pos+n]...)
		u.pending = append(u.pending, wire.Item{
			Type: typ, Core: core, Slot: slot,
			Payload: arena[start:len(arena):len(arena)],
		})
		pos += n
	}
	if pos != len(seg) {
		return arena, fmt.Errorf("%d trailing segment bytes", len(seg)-pos)
	}
	return arena, nil
}
