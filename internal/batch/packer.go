// Package batch implements the Batch mechanism (paper §4.2): minimizing
// communication frequency by tightly packing structurally diverse
// verification events into fixed-size transmission packets.
//
// Packing is three-level, mirroring Figure 6 of the paper:
//
//  1. Type-level: same-type events within a cycle are collected into a
//     segment (the hardware analogue is a prefix-counter mux-tree,
//     Figure 7; in software an order-preserving group-by).
//  2. Cycle-level: a cycle's segments are concatenated, each segment's
//     offset being the sum of the preceding segments' lengths.
//  3. Transmission-level: cycle data is appended to fixed-size packets,
//     splitting segments at event boundaries so the residual space of a
//     packet is filled instead of wasted.
//
// Each packet carries a metadata table (event type, core, cycle tag, count,
// byte length per segment) that guides the software parser's dynamic
// unpacking. The package also provides the fixed-offset packing baseline the
// paper compares against (fixed.go), which pads invalid event slots with
// bubbles.
package batch

import (
	"encoding/binary"

	"repro/internal/event"
	"repro/internal/wire"
)

const (
	packetHeader = 4 // segment count (2B) + payload offset (2B)
	metaSize     = 8 // per-segment metadata entry
)

// Packet is one fixed-size transmission unit. Buf comes from the shared
// event buffer pool: the receiver owns it and should call Release once the
// bytes have been consumed (e.g. after Unpacker.AddPacket). Packets that are
// kept alive simply never release.
type Packet struct {
	Buf    []byte // exactly PacketBytes long
	Used   int    // content bytes (header + meta + payloads)
	Events int    // verification events carried
	Instrs int    // retired instructions covered (for software cost)
}

// Release returns the packet's buffer to the pool. The buffer (and any slice
// of it still held elsewhere) must not be used afterwards.
func (p *Packet) Release() {
	if p.Buf != nil {
		event.PutBuf(p.Buf)
		p.Buf = nil
	}
}

// segment is a run of same-type, same-core items from one cycle.
type segment struct {
	typ, core, cycle uint8
	items            []wire.Item
	count            int // grouping pass: items expected in this segment
	bytes            int
}

// Packer assembles wire items into fixed-size packets.
//
// All intermediate state is reused across cycles: grouping scratch, the
// open-packet item arena, and (via the event buffer pool) the packet buffers
// themselves. Steady-state packing allocates only when a packet closes.
type Packer struct {
	PacketBytes int

	cycleTag uint8
	open     []segment
	openUsed int

	// openItems is the stable arena backing p.open's item runs. Segments in
	// p.open must not alias caller-owned or per-cycle scratch storage because
	// an open packet outlives the AddCycle call that fed it.
	openItems []wire.Item

	// gsegs/gitems are groupByType scratch, valid only within one AddCycle.
	gsegs  []segment
	gitems []wire.Item

	// Stats.
	Packets      uint64
	ContentBytes uint64
	ItemCount    uint64
}

// MinPacketBytes is the smallest usable packet: it must hold the largest
// single wire item (an order-tagged ArchVecRegState) plus framing.
var MinPacketBytes = packetHeader + metaSize + 1 + 8 + maxEventSize()

func maxEventSize() int {
	max := 0
	for k := event.Kind(0); k < event.NumKinds; k++ {
		if s := event.SizeOf(k); s > max {
			max = s
		}
	}
	return max
}

// NewPacker returns a packer emitting packets of the given size, clamped up
// to MinPacketBytes so every item fits in an empty packet.
func NewPacker(packetBytes int) *Packer {
	if packetBytes < MinPacketBytes {
		packetBytes = MinPacketBytes
	}
	return &Packer{PacketBytes: packetBytes, openUsed: packetHeader}
}

// AddCycle performs type- and cycle-level packing of one cycle's items and
// appends them to the open packet, returning any packets that filled up.
func (p *Packer) AddCycle(items []wire.Item) []Packet {
	if len(items) == 0 {
		return nil
	}
	p.cycleTag++
	segs := p.groupByType(items, p.cycleTag)

	var out []Packet
	for _, seg := range segs {
		out = append(out, p.appendSegment(seg)...)
	}
	return out
}

// groupByType collects same-(type,core) items into segments in first-seen
// order — the software analogue of the prefix-counter mux-tree (Fig. 7).
//
// It reuses the packer's scratch: a counting pass sizes contiguous windows
// of p.gitems per segment, a placement pass fills them. A cycle holds few
// distinct (type,core) pairs, so the linear key scan beats a map.
func (p *Packer) groupByType(items []wire.Item, cycle uint8) []segment {
	segs := p.gsegs[:0]
	find := func(typ, core uint8) int {
		for i := range segs {
			if segs[i].typ == typ && segs[i].core == core {
				return i
			}
		}
		segs = append(segs, segment{typ: typ, core: core, cycle: cycle})
		return len(segs) - 1
	}
	for _, it := range items {
		s := &segs[find(it.Type, it.Core)]
		s.count++
		s.bytes += it.WireSize()
	}

	if cap(p.gitems) < len(items) {
		p.gitems = make([]wire.Item, len(items))
	}
	arena, start := p.gitems[:len(items)], 0
	for i := range segs {
		segs[i].items = arena[start : start : start+segs[i].count]
		start += segs[i].count
	}
	for _, it := range items {
		i := find(it.Type, it.Core)
		segs[i].items = append(segs[i].items, it)
	}
	p.gsegs = segs
	return segs
}

// appendSegment performs transmission-level packing: the segment fills the
// open packet's residual space and splits at item boundaries when needed.
func (p *Packer) appendSegment(seg segment) []Packet {
	var out []Packet
	for len(seg.items) > 0 {
		free := p.PacketBytes - p.openUsed - metaSize*(len(p.open)+1)
		if free < seg.items[0].WireSize() {
			if len(p.open) == 0 {
				// Cannot happen with a clamped packet size; avoid looping.
				panic("batch: item larger than packet")
			}
			// Not even one item fits: close this packet.
			out = append(out, p.closePacket())
			continue
		}
		// Take as many items as fit.
		take, bytes := 0, 0
		for _, it := range seg.items {
			if bytes+it.WireSize() > free {
				break
			}
			bytes += it.WireSize()
			take++
		}
		// Copy the taken run into the open-packet arena: seg.items is
		// per-cycle scratch that the next AddCycle will overwrite, while the
		// open packet can stay open across cycles.
		start := len(p.openItems)
		p.openItems = append(p.openItems, seg.items[:take]...)
		part := segment{typ: seg.typ, core: seg.core, cycle: seg.cycle,
			items: p.openItems[start:len(p.openItems)], bytes: bytes}
		p.open = append(p.open, part)
		p.openUsed += bytes
		seg.items = seg.items[take:]
		seg.bytes -= bytes
	}
	return out
}

// Flush closes the open packet, if any.
func (p *Packer) Flush() []Packet {
	if len(p.open) == 0 {
		return nil
	}
	return []Packet{p.closePacket()}
}

func (p *Packer) closePacket() Packet {
	// Pooled buffers carry stale bytes: every position a fresh make() would
	// zero is cleared explicitly so packets stay byte-identical either way.
	buf := event.GetBuf(p.PacketBytes)[:p.PacketBytes]
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(p.open)))
	payloadOff := packetHeader + metaSize*len(p.open)
	binary.LittleEndian.PutUint16(buf[2:], uint16(payloadOff))

	pkt := Packet{Buf: buf}
	pos := payloadOff
	for i, seg := range p.open {
		m := buf[packetHeader+i*metaSize:]
		m[0], m[1], m[2], m[3] = seg.typ, seg.core, seg.cycle, 0
		binary.LittleEndian.PutUint16(m[4:], uint16(len(seg.items)))
		binary.LittleEndian.PutUint16(m[6:], uint16(seg.bytes))
		for _, it := range seg.items {
			buf[pos] = it.Slot
			pos++
			pos += copy(buf[pos:], it.Payload)
			pkt.Events++
			pkt.Instrs += it.InstrCount()
		}
		p.ItemCount += uint64(len(seg.items))
	}
	clear(buf[pos:])
	pkt.Used = pos
	p.ContentBytes += uint64(pos)
	p.Packets++
	p.open = p.open[:0]
	p.openItems = p.openItems[:0]
	p.openUsed = packetHeader
	return pkt
}

// Utilization reports the mean fraction of packet space carrying content —
// the Batch packet-utilization performance counter (paper §5).
func (p *Packer) Utilization() float64 {
	if p.Packets == 0 {
		return 0
	}
	return float64(p.ContentBytes) / float64(p.Packets*uint64(p.PacketBytes))
}
