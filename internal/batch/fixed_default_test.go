package batch

import (
	"testing"

	"repro/internal/event"
)

// TestFixedLayoutScalarSlots pins the default arm added for kindswitch
// exhaustiveness: state-snapshot and trap kinds get exactly one frame slot,
// bursty per-commit kinds get the full burst width.
func TestFixedLayoutScalarSlots(t *testing.T) {
	l := NewFixedLayout([]event.Kind{event.KindCSRState, event.KindTrap, event.KindLoad}, 4)
	wantMax := map[event.Kind]int{
		event.KindCSRState: 1,
		event.KindTrap:     1,
		event.KindLoad:     4,
	}
	if len(l.Entries) != len(wantMax) {
		t.Fatalf("layout has %d entries, want %d", len(l.Entries), len(wantMax))
	}
	for _, e := range l.Entries {
		if e.Max != wantMax[e.Kind] {
			t.Errorf("layout slot count for %v = %d, want %d", e.Kind, e.Max, wantMax[e.Kind])
		}
	}
}
