package batch

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/wire"
)

// randomCycle builds a plausible monitor cycle: commits with attached events
// plus trailing snapshots, in canonical order.
func randomCycle(r *rand.Rand, core uint8) []event.Record {
	var recs []event.Record
	if r.Intn(10) == 0 {
		recs = append(recs, event.Record{Core: core, Ev: &event.Interrupt{Cause: 7, PC: r.Uint64()}})
		recs = append(recs, event.Record{Core: core, Ev: &event.ArchIntRegState{}})
		return recs
	}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		recs = append(recs, event.Record{Core: core, Ev: &event.InstrCommit{PC: r.Uint64(), Instr: uint32(r.Uint32())}})
		if r.Intn(3) == 0 {
			recs = append(recs, event.Record{Core: core, Ev: &event.Load{PAddr: r.Uint64(), Data: r.Uint64()}})
		}
		if r.Intn(4) == 0 {
			recs = append(recs, event.Record{Core: core, Ev: &event.Store{Addr: r.Uint64(), Data: r.Uint64()}})
		}
		if r.Intn(8) == 0 {
			rf := &event.Refill{Addr: r.Uint64()}
			for j := range rf.Data {
				rf.Data[j] = r.Uint64()
			}
			recs = append(recs, event.Record{Core: core, Ev: rf})
		}
	}
	recs = append(recs, event.Record{Core: core, Ev: &event.ArchIntRegState{GPR: [32]uint64{1: r.Uint64()}}})
	recs = append(recs, event.Record{Core: core, Ev: &event.CSRState{Mstatus: r.Uint64()}})
	if r.Intn(6) == 0 {
		big := &event.ArchVecRegState{}
		big.VReg[3][1] = r.Uint64()
		recs = append(recs, event.Record{Core: core, Ev: big})
	}
	return recs
}

func eventsEqual(t *testing.T, want []event.Record, got []wire.Item) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("item count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		ev, err := wire.DecodeRaw(got[i])
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got[i].Core != want[i].Core {
			t.Fatalf("item %d core: got %d, want %d (kind %v)", i, got[i].Core, want[i].Core, ev.Kind())
		}
		if !event.Equal(ev, want[i].Ev) {
			t.Fatalf("item %d (%v) payload mismatch", i, ev.Kind())
		}
	}
}

// TestPackUnpackRoundTrip is the central Batch property: packing N cycles
// and unpacking yields exactly the original events in the original per-core
// checking order.
func TestPackUnpackRoundTrip(t *testing.T) {
	for _, pktSize := range []int{2048, 4096, 16384} {
		r := rand.New(rand.NewSource(int64(pktSize)))
		p := NewPacker(pktSize)
		var u Unpacker
		var want []event.Record
		var got []wire.Item

		feed := func(pkts []Packet) {
			for _, pkt := range pkts {
				items, err := u.AddPacket(pkt.Buf)
				if err != nil {
					t.Fatalf("pkt %d: unpack: %v", pktSize, err)
				}
				got = append(got, items...)
			}
		}

		for c := 0; c < 300; c++ {
			cycle := randomCycle(r, 0)
			if r.Intn(3) == 0 { // dual-core cycles
				cycle = append(cycle, randomCycle(r, 1)...)
			}
			want = append(want, cycle...)
			feed(p.AddCycle(wire.FromRecords(cycle)))
		}
		feed(p.Flush())
		got = append(got, u.Flush()...)
		eventsEqual(t, want, got)

		if p.Utilization() < 0.85 {
			t.Errorf("pkt %d: utilization %.2f, tight packing should exceed 0.85", pktSize, p.Utilization())
		}
	}
}

// TestPackingReducesInvocations: the headline Batch effect — packets are far
// fewer than events.
func TestPackingReducesInvocations(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := NewPacker(4096)
	events, packets := 0, 0
	for c := 0; c < 500; c++ {
		cycle := randomCycle(r, 0)
		events += len(cycle)
		packets += len(p.AddCycle(wire.FromRecords(cycle)))
	}
	packets += len(p.Flush())
	if packets == 0 || events/packets < 10 {
		t.Errorf("packing ratio too low: %d events in %d packets", events, packets)
	}
}

func TestSegmentSplitAcrossPackets(t *testing.T) {
	// A cycle with one huge event relative to the packet forces
	// transmission-level splitting.
	p := NewPacker(MinPacketBytes)
	var u Unpacker
	var cycle []event.Record
	for i := 0; i < 4; i++ {
		big := &event.ArchVecRegState{}
		big.VReg[0][0] = uint64(i)
		cycle = append(cycle, event.Record{Core: 0, Ev: &event.InstrCommit{PC: uint64(i)}})
		cycle = append(cycle, event.Record{Core: 0, Ev: big})
	}
	var got []wire.Item
	for _, pkt := range append(p.AddCycle(wire.FromRecords(cycle)), p.Flush()...) {
		items, err := u.AddPacket(pkt.Buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, items...)
	}
	got = append(got, u.Flush()...)
	eventsEqual(t, cycle, got)
	if p.Packets < 4 {
		t.Errorf("expected the cycle split across several packets, got %d", p.Packets)
	}
}

func TestUnpackerRejectsCorruptPacket(t *testing.T) {
	var u Unpacker
	if _, err := u.AddPacket([]byte{1}); err == nil {
		t.Error("short packet accepted")
	}
	bad := make([]byte, 64)
	bad[0] = 200 // absurd segment count
	if _, err := u.AddPacket(bad); err == nil {
		t.Error("corrupt segment count accepted")
	}
}

func TestFixedOffsetBubbles(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	layout := NewFixedLayout(nil, 4)
	fp := NewFixedPacker(layout, 4096)
	tight := NewPacker(4096)

	fixedPkts, tightPkts := 0, 0
	for c := 0; c < 300; c++ {
		items := wire.FromRecords(randomCycle(r, 0))
		pkts, err := fp.AddCycle(items)
		if err != nil {
			t.Fatal(err)
		}
		fixedPkts += len(pkts)
		tightPkts += len(tight.AddCycle(items))
	}
	fixedPkts += len(fp.Flush())
	tightPkts += len(tight.Flush())

	if br := fp.BubbleRatio(); br < 0.6 {
		t.Errorf("fixed-offset bubble ratio %.2f, paper reports >0.6", br)
	}
	ratio := float64(fixedPkts) / float64(tightPkts)
	if ratio < 1.5 {
		t.Errorf("fixed-offset needs %.2f× the packets of tight packing, expected ≥1.5×", ratio)
	}
	t.Logf("bubbles %.1f%%, packet ratio %.2f×", fp.BubbleRatio()*100, ratio)
}

func TestFixedStreamRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	layout := NewFixedLayout(nil, 4)
	fp := NewFixedPacker(layout, 1<<20) // one giant packet: keep the stream whole
	var want [][]event.Record
	for c := 0; c < 50; c++ {
		cycle := randomCycle(r, 0)
		want = append(want, cycle)
		if _, err := fp.AddCycle(wire.FromRecords(cycle)); err != nil {
			t.Fatal(err)
		}
	}
	pkts := fp.Flush()
	if len(pkts) != 1 {
		t.Fatalf("expected single packet, got %d", len(pkts))
	}
	frames, err := UnpackFixedStream(layout, pkts[0].Buf[:pkts[0].Used])
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(want) {
		t.Fatalf("frames: got %d, want %d", len(frames), len(want))
	}
	for i := range frames {
		eventsEqual(t, want[i], frames[i])
	}
}

func BenchmarkPackCycle(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	cycles := make([][]wire.Item, 64)
	for i := range cycles {
		cycles[i] = wire.FromRecords(randomCycle(r, 0))
	}
	p := NewPacker(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddCycle(cycles[i%len(cycles)])
	}
}
