package batch

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/wire"
)

// benchCycles builds n representative monitor cycles: a commit burst with
// the memory and bookkeeping events a XiangShan-class core emits alongside.
func benchCycles(n int) [][]wire.Item {
	r := rand.New(rand.NewSource(7))
	cycles := make([][]wire.Item, n)
	for i := range cycles {
		var recs []event.Record
		commits := 1 + r.Intn(4)
		for c := 0; c < commits; c++ {
			recs = append(recs, event.Record{Ev: &event.InstrCommit{
				PC: 0x80000000 + uint64(i*16+c*4), Instr: 0x13, Flags: event.CommitRfWen,
				Wdest: uint8(r.Intn(32)), Wdata: r.Uint64(),
			}})
			if r.Intn(3) == 0 {
				recs = append(recs, event.Record{Ev: &event.Load{
					PAddr: r.Uint64(), Data: r.Uint64(), OpType: 3,
				}})
			}
			if r.Intn(4) == 0 {
				recs = append(recs, event.Record{Ev: &event.Store{
					Addr: r.Uint64(), Data: r.Uint64(), Mask: 0xFF,
				}})
			}
		}
		if r.Intn(8) == 0 {
			recs = append(recs, event.Record{Ev: &event.L1TLB{VPN: r.Uint64(), PPN: r.Uint64()}})
		}
		cycles[i] = wire.FromRecords(recs)
	}
	return cycles
}

// BenchmarkBatchPack measures steady-state packing: one AddCycle per op,
// closed packets released back to the buffer pool. This is the ≥10x
// allocs/op headline number the ISSUE records in DESIGN.md.
func BenchmarkBatchPack(b *testing.B) {
	cycles := benchCycles(256)
	p := NewPacker(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkt := range p.AddCycle(cycles[i%len(cycles)]) {
			pkt.Release()
		}
	}
}

// BenchmarkBatchUnpack measures meta-guided unpacking with per-packet
// payload arenas, releasing each packet buffer after parse.
func BenchmarkBatchUnpack(b *testing.B) {
	cycles := benchCycles(256)
	p := NewPacker(4096)
	var pkts []Packet
	for _, c := range cycles {
		pkts = append(pkts, p.AddCycle(c)...)
	}
	pkts = append(pkts, p.Flush()...)
	var u Unpacker
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.AddPacket(pkts[i%len(pkts)].Buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAllocBudgetBatchPack enforces the checked-in allocs/op ceiling for
// steady-state packing (see testdata/alloc_budget.txt; the pre-refactor
// packer spent 14 allocs/op on this workload).
func TestAllocBudgetBatchPack(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "alloc_budget.txt"))
	if err != nil {
		t.Fatalf("alloc budget missing: %v", err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(data)), 64)
	if err != nil {
		t.Fatal(err)
	}

	cycles := benchCycles(256)
	p := NewPacker(4096)
	// Warm the buffer pool and the packer's scratch to measure steady state.
	for _, c := range cycles {
		for _, pkt := range p.AddCycle(c) {
			pkt.Release()
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		for _, pkt := range p.AddCycle(cycles[i%len(cycles)]) {
			pkt.Release()
		}
		i++
	})
	if allocs > budget {
		t.Fatalf("batch pack allocates %.2f/op, budget %s (testdata/alloc_budget.txt)",
			allocs, strings.TrimSpace(string(data)))
	}
}
