// Package platform models the verification platforms of the paper (Table 2):
// the Cadence Palladium emulator, a Xilinx VU19P FPGA, and software RTL
// simulation (Verilator). Each platform is a calibrated cost model for the
// three phases of hardware-software communication (paper §3, Equation 1):
// communication startup, data transmission, and software processing.
//
// Real bytes flow through the transport (internal/comm); the platform only
// assigns simulated time to them. Constants are calibrated so the paper's
// baseline and DUT-only operating points are met (Table 5, Figure 13); the
// optimized speeds then emerge from the actual Batch/Squash/NonBlock
// mechanisms reducing invocations and bytes.
package platform

import "math"

// Platform is one verification platform's calibrated cost model.
type Platform struct {
	Name string

	// Communication startup (paper §3.1): per-invocation synchronization.
	TSyncBlocking float64 // blocking handshake per transfer (s)
	TSyncNonBlock float64 // non-blocking link cost per transfer (s)
	HWPostCost    float64 // hardware-side enqueue cost per transfer (s)

	// Data transmission.
	BandwidthBps float64

	// Software processing.
	SWPerEvent float64 // parse + compare per verification event (s)
	SWPerByte  float64 // per transmitted byte (s)
	SWPerInstr float64 // reference-model execution per instruction (s)

	// PerCycleHW is extra hardware time per DUT cycle while verification
	// streaming is active (e.g. FPGA credit/backpressure handshakes).
	PerCycleHW float64

	// Transport shape.
	PacketBytes int // transmission packet size for Batch
	QueueDepth  int // in-flight packets before backpressure (non-blocking)
	// ShmRingBytes is the per-direction ring capacity the platform's
	// same-host shared-memory operating point uses (the shm:// transport).
	// Sized to hold several in-flight packets beyond QueueDepth so the ring
	// itself never becomes the window; 0 means the platform has no same-host
	// fast path (software simulation checks in process).
	ShmRingBytes int

	// DUT-only speed model: Hz = BaseHz * (BaseGatesM/gates)^ScaleExp,
	// anchored at XiangShan-default (57.6M gates).
	BaseHz   float64
	ScaleExp float64

	// CosimEff is the co-simulation efficiency for same-process platforms
	// (Verilator): fraction of DUT-only speed retained with DiffTest
	// attached. 0 means cross-platform (costs modeled explicitly).
	CosimEff float64
}

const baseGatesM = 57.6 // XiangShan (Default)

// DUTOnlyHz returns the DUT-only simulation speed for a design of the given
// size in millions of gates.
func (p Platform) DUTOnlyHz(gatesM float64) float64 {
	if gatesM <= 0 {
		gatesM = baseGatesM
	}
	f := p.BaseHz
	if p.ScaleExp != 0 {
		f *= math.Pow(baseGatesM/gatesM, p.ScaleExp)
	}
	return f
}

// Palladium returns the Cadence Palladium emulator model. Calibration
// anchors (paper): XiangShan-default DUT-only 480 KHz; baseline co-sim
// 6 KHz with ~15 DPI invocations and ~1.2 KB per cycle.
func Palladium() Platform {
	return Platform{
		Name:          "Palladium",
		TSyncBlocking: 15e-6,
		TSyncNonBlock: 2.0e-6,
		HWPostCost:    0.2e-6,
		BandwidthBps:  100e6,
		SWPerEvent:    0.35e-6,
		SWPerByte:     9e-9,
		SWPerInstr:    0.3e-6,
		PerCycleHW:    0,
		PacketBytes:   4096,
		QueueDepth:    16,
		ShmRingBytes:  1 << 20, // 256 packets/direction, ≫ QueueDepth
		BaseHz:        480e3,
		ScaleExp:      0.167,
	}
}

// FPGA returns the Xilinx VU19P model. Calibration anchors: XiangShan
// DUT-only 50 MHz; baseline co-sim 0.1 MHz; optimized 7.8 MHz with ~84%
// residual communication overhead (paper Table 7).
func FPGA() Platform {
	return Platform{
		Name:          "FPGA",
		TSyncBlocking: 1.15e-6,
		TSyncNonBlock: 0.35e-6,
		HWPostCost:    0.02e-6,
		BandwidthBps:  4e9,
		SWPerEvent:    0.012e-6,
		SWPerByte:     0.2e-9,
		SWPerInstr:    0.05e-6,
		PerCycleHW:    0.1e-6,
		PacketBytes:   16384,
		QueueDepth:    64,
		ShmRingBytes:  4 << 20, // 256 packets/direction, ≫ QueueDepth
		BaseHz:        50e6,
		ScaleExp:      0.15,
	}
}

// Verilator returns the software RTL simulation model with the given host
// thread count. 16-thread Verilator simulates XiangShan-default at ~4 KHz
// (the paper's 119×/1945× comparisons imply exactly this operating point).
func Verilator(threads int) Platform {
	speedup := 1.0
	if threads > 1 {
		// Parallel RTL simulation scales sublinearly (paper §7).
		speedup = math.Pow(float64(threads), 0.55)
	}
	return Platform{
		Name:     "Verilator",
		BaseHz:   870 * speedup, // 16 threads → ~4 KHz on XiangShan-default
		ScaleExp: 1.0,           // software simulation scales ~linearly with gates
		CosimEff: 0.85,
	}
}

// IsSoftware reports whether the platform runs the DUT in the same process
// as the checker (no cross-platform communication costs).
func (p Platform) IsSoftware() bool { return p.CosimEff > 0 }
