package platform

import "testing"

func TestDUTOnlyCalibrationAnchors(t *testing.T) {
	// Table 7 / §6.1 anchors: Palladium runs XiangShan-default DUT-only at
	// 480 KHz; the FPGA at 50 MHz; 16-thread Verilator at ~4 KHz.
	if got := Palladium().DUTOnlyHz(57.6); got != 480e3 {
		t.Errorf("Palladium XiangShan = %.0f Hz, want 480 KHz", got)
	}
	if got := FPGA().DUTOnlyHz(57.6); got != 50e6 {
		t.Errorf("FPGA XiangShan = %.0f Hz, want 50 MHz", got)
	}
	v := Verilator(16).DUTOnlyHz(57.6)
	if v < 3.5e3 || v > 4.5e3 {
		t.Errorf("Verilator-16t XiangShan = %.0f Hz, want ~4 KHz", v)
	}
}

func TestScalingDirections(t *testing.T) {
	p := Palladium()
	if p.DUTOnlyHz(0.6) <= p.DUTOnlyHz(57.6) {
		t.Error("smaller designs should emulate faster")
	}
	if p.DUTOnlyHz(111.8) >= p.DUTOnlyHz(57.6) {
		t.Error("larger designs should emulate slower")
	}
	// Verilator scales ~linearly with design size (Table 2: RTL sim ~KHz).
	v := Verilator(16)
	ratio := v.DUTOnlyHz(0.6) / v.DUTOnlyHz(57.6)
	if ratio < 50 || ratio > 150 {
		t.Errorf("Verilator gate scaling ratio = %.1f, want ~96", ratio)
	}
}

func TestVerilatorThreadScalingIsSublinear(t *testing.T) {
	one := Verilator(1).DUTOnlyHz(57.6)
	sixteen := Verilator(16).DUTOnlyHz(57.6)
	speedup := sixteen / one
	if speedup <= 1 || speedup >= 16 {
		t.Errorf("16-thread speedup = %.1f, want sublinear parallel scaling", speedup)
	}
}

func TestSoftwarePlatformFlag(t *testing.T) {
	if Palladium().IsSoftware() || FPGA().IsSoftware() {
		t.Error("hardware platforms misflagged as software")
	}
	if !Verilator(8).IsSoftware() {
		t.Error("Verilator not flagged as software")
	}
}

func TestDefaultGates(t *testing.T) {
	p := Palladium()
	if p.DUTOnlyHz(0) != p.DUTOnlyHz(57.6) {
		t.Error("zero gates should default to the anchor design")
	}
}
