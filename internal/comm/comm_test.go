package comm

import (
	"testing"

	"repro/internal/platform"
)

func testPlatform() platform.Platform {
	return platform.Platform{
		Name:          "test",
		TSyncBlocking: 10e-6,
		TSyncNonBlock: 1e-6,
		HWPostCost:    0.1e-6,
		BandwidthBps:  1e6, // 1 B/µs: easy arithmetic
		SWPerEvent:    1e-6,
		QueueDepth:    2,
	}
}

func TestBlockingAddsAllPhases(t *testing.T) {
	l := NewLink(testPlatform(), 1e6, false) // 1 µs per cycle
	l.AdvanceCycle()
	l.Send(100, 1, 0) // sync 10µs + trans 100µs + sw 1µs
	want := 1e-6 + 10e-6 + 100e-6 + 1e-6
	if got := l.Elapsed(); !close(got, want) {
		t.Errorf("blocking elapsed = %g, want %g", got, want)
	}
	if l.Invokes != 1 || l.Bytes != 100 {
		t.Errorf("counters: %d invokes %d bytes", l.Invokes, l.Bytes)
	}
}

func TestNonBlockingHidesSoftware(t *testing.T) {
	l := NewLink(testPlatform(), 1e6, true)
	l.Send(10, 1, 0) // sync 1µs + trans 10µs + sw 1µs, all off the hw clock
	// Hardware pays only the post cost and keeps running.
	if !close(l.HWTime, 0.1e-6) {
		t.Errorf("hw time = %g, want just the post cost", l.HWTime)
	}
	for i := 0; i < 50; i++ {
		l.AdvanceCycle() // the DUT speculatively runs ahead (paper §4.5)
	}
	// Transfer and software processing finished long ago: total is pure
	// hardware time.
	wantHW := 0.1e-6 + 50e-6
	if total := l.Drain(); !close(total, wantHW) {
		t.Errorf("total = %g, want %g (software latency hidden)", total, wantHW)
	}
}

func TestNonBlockingBackpressure(t *testing.T) {
	p := testPlatform()
	p.SWPerEvent = 100e-6 // slow software
	l := NewLink(p, 1e9, true)
	for i := 0; i < 10; i++ {
		l.Send(1, 1, 0)
	}
	// Queue depth 2: the hardware must have stalled waiting for software.
	if l.StallTime == 0 {
		t.Error("no backpressure stall recorded")
	}
	if total := l.Drain(); total < 10*100e-6 {
		t.Errorf("total %g shorter than software's serial work", total)
	}
}

func TestSWCost(t *testing.T) {
	p := testPlatform()
	p.SWPerByte = 2e-9
	p.SWPerInstr = 5e-7
	l := NewLink(p, 1e6, false)
	got := l.SWCost(3, 100, 4)
	want := 3*1e-6 + 100*2e-9 + 4*5e-7
	if !close(got, want) {
		t.Errorf("swcost = %g, want %g", got, want)
	}
}

func TestDrainIdempotent(t *testing.T) {
	l := NewLink(testPlatform(), 1e6, true)
	l.Send(10, 1, 0)
	a := l.Drain()
	if b := l.Drain(); b != a {
		t.Errorf("drain changed: %g vs %g", a, b)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
