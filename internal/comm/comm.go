// Package comm implements the hardware-software communication unit: a
// byte-accurate transport whose simulated time follows the platform's LogGP
// cost model (paper §3, §4.5).
//
// In blocking mode (the traditional step-and-compare strategy) the hardware
// clock stalls until the software finishes processing each transfer. In
// non-blocking mode the DUT speculatively runs ahead while transfers stream
// through a bounded queue with backpressure; software latency is hidden
// unless the queue fills.
package comm

import (
	"fmt"

	"repro/internal/platform"
)

// Link is the communication channel between the hardware side (DUT +
// acceleration unit) and the software side (unpacker + checker).
type Link struct {
	P           platform.Platform
	NonBlocking bool

	// CycleTime is the hardware time consumed per DUT cycle (1/F plus the
	// platform's per-cycle streaming cost).
	CycleTime float64

	// Virtual timelines (seconds).
	HWTime   float64 // hardware (DUT) clock
	LinkFree float64 // when the physical link is next idle
	SWFree   float64 // when the software side is next idle

	// inflight holds software completion times of outstanding transfers.
	inflight []float64

	// Counters.
	Invokes   uint64
	Bytes     uint64
	SWTime    float64 // accumulated software processing time
	StallTime float64 // hardware time lost to backpressure
}

// NewLink builds a link for a platform and DUT-only frequency.
func NewLink(p platform.Platform, dutHz float64, nonBlocking bool) *Link {
	return &Link{
		P:           p,
		NonBlocking: nonBlocking,
		CycleTime:   1.0/dutHz + p.PerCycleHW,
	}
}

// AdvanceCycle accounts one DUT cycle of hardware time.
func (l *Link) AdvanceCycle() { l.HWTime += l.CycleTime }

// SWCost returns the software processing cost for a transfer carrying the
// given number of verification events, payload bytes, and covered
// instructions (reference-model execution).
func (l *Link) SWCost(events, bytes, instrs int) float64 {
	return l.P.SWPerEvent*float64(events) +
		l.P.SWPerByte*float64(bytes) +
		l.P.SWPerInstr*float64(instrs)
}

// Send transmits one transfer of the given size. events/instrs determine the
// software processing cost attributed to the transfer.
func (l *Link) Send(bytes, events, instrs int) {
	l.Invokes++
	l.Bytes += uint64(bytes)
	swCost := l.SWCost(events, bytes, instrs)
	l.SWTime += swCost
	trans := float64(bytes) / l.P.BandwidthBps

	if !l.NonBlocking {
		// Step-and-compare: the emulator pauses its clock until the
		// software finishes (paper §3.1).
		l.HWTime += l.P.TSyncBlocking + trans + swCost
		l.LinkFree, l.SWFree = l.HWTime, l.HWTime
		return
	}

	// Non-blocking: enqueue and continue. Backpressure when the queue of
	// unprocessed transfers is full (paper §4.5).
	l.HWTime += l.P.HWPostCost
	depth := l.P.QueueDepth
	if depth <= 0 {
		depth = 1
	}
	if len(l.inflight) >= depth {
		head := l.inflight[0]
		l.inflight = l.inflight[1:]
		if head > l.HWTime {
			l.StallTime += head - l.HWTime
			l.HWTime = head
		}
	}
	start := l.HWTime
	if l.LinkFree > start {
		start = l.LinkFree
	}
	l.LinkFree = start + l.P.TSyncNonBlock + trans
	done := l.LinkFree
	if l.SWFree > done {
		done = l.SWFree
	}
	l.SWFree = done + swCost
	l.inflight = append(l.inflight, l.SWFree)
}

// Drain completes all outstanding transfers and returns the total elapsed
// co-simulation time.
func (l *Link) Drain() float64 {
	l.inflight = l.inflight[:0]
	if l.SWFree > l.HWTime {
		return l.SWFree
	}
	return l.HWTime
}

// Elapsed returns the co-simulation time so far without draining.
func (l *Link) Elapsed() float64 {
	if l.SWFree > l.HWTime {
		return l.SWFree
	}
	return l.HWTime
}

// String summarizes link activity.
func (l *Link) String() string {
	mode := "blocking"
	if l.NonBlocking {
		mode = "non-blocking"
	}
	return fmt.Sprintf("link[%s %s]: %d invokes, %d bytes, sw %.3gs, stall %.3gs",
		l.P.Name, mode, l.Invokes, l.Bytes, l.SWTime, l.StallTime)
}
