package benchjson

import (
	"fmt"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/event
cpu: Intel(R) Xeon(R) CPU @ 2.70GHz
BenchmarkCodecRoundTrip-8   	    2000	         4.40 ns/op	       0 B/op	       0 allocs/op
BenchmarkCodecRoundTrip-8   	    2000	         4.60 ns/op	       0 B/op	       0 allocs/op
BenchmarkCodecRoundTrip-8   	    2000	         4.50 ns/op	       0 B/op	       0 allocs/op
BenchmarkExecutedBatchEB-8  	       3	  12000000 ns/op	  123456 instrs/s	    4096 B/op	      12 allocs/op
BenchmarkPipelineNonBlocking 	     500	      2100 ns/op	  476190 transfers/s	       0 B/op	       0 allocs/op
--- BENCH: BenchmarkCodecRoundTrip-8
    codec_test.go:10: Benchmark log line that must be skipped
PASS
ok  	repro/internal/event	1.234s
`

func TestParseBench(t *testing.T) {
	samples, err := ParseBench([]byte(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkCodecRoundTrip"]); got != 3 {
		t.Fatalf("round-trip samples = %d, want 3", got)
	}
	eb := samples["BenchmarkExecutedBatchEB"]
	if len(eb) != 1 || eb[0].metrics["instrs/s"] != 123456 {
		t.Fatalf("executed sample lost its instrs/s metric: %+v", eb)
	}
	// The GOMAXPROCS suffix is stripped; a name without one parses too.
	if _, ok := samples["BenchmarkPipelineNonBlocking"]; !ok {
		t.Fatalf("suffix-less benchmark missing: %v", keys(samples))
	}
}

func keys(m map[string][]sample) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestParseBenchBadValue(t *testing.T) {
	if _, err := ParseBench([]byte("BenchmarkX-8 100 oops ns/op\n")); err == nil {
		t.Fatal("malformed value parsed without error")
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
		"BenchmarkFoo-bar-16": "BenchmarkFoo-bar",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedianAndSpread(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
	if got := spread([]float64{10, 12, 11}); got < 0.18 || got > 0.19 {
		t.Errorf("spread = %v, want ~0.1818", got)
	}
	if got := spread([]float64{5}); got != 0 {
		t.Errorf("single-sample spread = %v, want 0", got)
	}
}

func TestReduce(t *testing.T) {
	samples, err := ParseBench([]byte(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	benches := Reduce(samples)
	if len(benches) != 3 {
		t.Fatalf("reduced to %d benchmarks, want 3", len(benches))
	}
	// Sorted by name, Benchmark prefix stripped.
	if benches[0].Name != "CodecRoundTrip" || benches[1].Name != "ExecutedBatchEB" {
		t.Fatalf("order: %s, %s", benches[0].Name, benches[1].Name)
	}
	rt := benches[0]
	if rt.NsPerOp != 4.5 || rt.Runs != 3 || rt.AllocsPerOp != 0 {
		t.Fatalf("round-trip medians wrong: %+v", rt)
	}
	if rt.Spread == 0 {
		t.Fatal("round-trip spread not recorded")
	}
	if benches[1].InstrsPerSec != 123456 {
		t.Fatalf("instrs/s not taken from the canonical metric: %+v", benches[1])
	}
	if benches[2].Metrics["transfers/s"] != 476190 {
		t.Fatalf("custom metric lost: %+v", benches[2])
	}
}

func doc(area string, benches ...Bench) *Doc {
	d := NewDoc(Area{Name: area, Benchtime: "100x"}, 4)
	d.Benchmarks = benches
	return d
}

func TestCompareCleanPass(t *testing.T) {
	old := doc("codec", Bench{Name: "X", NsPerOp: 100, BPerOp: 32, AllocsPerOp: 1, InstrsPerSec: 1e6})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 105, BPerOp: 33, AllocsPerOp: 1, InstrsPerSec: 0.99e6})
	if regs := Regressions(Compare(old, fresh, DefaultThreshold())); len(regs) != 0 {
		t.Fatalf("5%% drift regressed: %v", regs)
	}
}

func TestCompareTwentyPercentSlowdownFails(t *testing.T) {
	// The acceptance bar: a deliberate 20% slowdown must fail the gate. A
	// real slowdown shifts the whole distribution, so both the median and
	// the run-to-run floor move.
	old := doc("codec", Bench{Name: "X", NsPerOp: 100, MinNsPerOp: 95})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 120, MinNsPerOp: 114})
	regs := Regressions(Compare(old, fresh, DefaultThreshold()))
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("20%% slowdown not caught: %v", regs)
	}
}

func TestCompareSlowdownWithoutFloorStillFails(t *testing.T) {
	// Baselines written before MinNsPerOp existed gate on the median alone.
	old := doc("codec", Bench{Name: "X", NsPerOp: 100})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 120})
	regs := Regressions(Compare(old, fresh, DefaultThreshold()))
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("20%% median slowdown without floors not caught: %v", regs)
	}
}

func TestCompareNoisyMedianWithSteadyFloorPasses(t *testing.T) {
	// Host noise only inflates the upper tail: the median drifts +20% but
	// the fastest run holds — not a regression.
	old := doc("codec", Bench{Name: "X", NsPerOp: 100, MinNsPerOp: 95})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 120, MinNsPerOp: 96})
	if regs := Regressions(Compare(old, fresh, DefaultThreshold())); len(regs) != 0 {
		t.Fatalf("noise (steady floor) failed the gate: %v", regs)
	}
}

func TestCompareThroughputDropFails(t *testing.T) {
	old := doc("pipeline", Bench{Name: "X", NsPerOp: 100, InstrsPerSec: 1e6})
	fresh := doc("pipeline", Bench{Name: "X", NsPerOp: 100, InstrsPerSec: 0.8e6})
	regs := Regressions(Compare(old, fresh, DefaultThreshold()))
	if len(regs) != 1 || regs[0].Metric != "instrs/s" {
		t.Fatalf("20%% throughput drop not caught: %v", regs)
	}
}

func TestCompareZeroAllocStaysPinned(t *testing.T) {
	old := doc("codec", Bench{Name: "X", NsPerOp: 100, AllocsPerOp: 0, BPerOp: 0})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 100, AllocsPerOp: 1, BPerOp: 64})
	regs := Regressions(Compare(old, fresh, DefaultThreshold()))
	if len(regs) != 2 {
		t.Fatalf("zero-alloc path grew an alloc and bytes, caught %v", regs)
	}
}

func TestCompareAllocHeavyGetsProportionalSlack(t *testing.T) {
	// A session benchmark with ~34k allocs/op jitters by whole allocations
	// run to run; the allowance scales with the baseline instead of failing
	// on +1%.
	old := doc("remote", Bench{Name: "X", NsPerOp: 100, AllocsPerOp: 34000})
	fresh := doc("remote", Bench{Name: "X", NsPerOp: 100, AllocsPerOp: 34350})
	if regs := Regressions(Compare(old, fresh, DefaultThreshold())); len(regs) != 0 {
		t.Fatalf("1%% alloc jitter on a 34k baseline failed the gate: %v", regs)
	}
	blown := doc("remote", Bench{Name: "X", NsPerOp: 100, AllocsPerOp: 34000 * 1.30})
	regs := Regressions(Compare(old, blown, DefaultThreshold()))
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("30%% alloc growth not caught: %v", regs)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := doc("codec", Bench{Name: "X", NsPerOp: 100}, Bench{Name: "Y", NsPerOp: 50})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 100})
	regs := Regressions(Compare(old, fresh, DefaultThreshold()))
	if len(regs) != 1 || regs[0].Bench != "Y" || regs[0].Note == "" {
		t.Fatalf("disappeared benchmark not flagged: %v", regs)
	}
}

func TestCompareNewBenchmarkInformational(t *testing.T) {
	old := doc("codec", Bench{Name: "X", NsPerOp: 100})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 100}, Bench{Name: "Z", NsPerOp: 7})
	deltas := Compare(old, fresh, DefaultThreshold())
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("new benchmark failed the gate: %v", regs)
	}
	var found bool
	for _, d := range deltas {
		if d.Bench == "Z" && strings.Contains(d.Note, "new benchmark") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new benchmark not reported: %v", deltas)
	}
}

func TestFormatAndSummarize(t *testing.T) {
	old := doc("codec", Bench{Name: "X", NsPerOp: 100})
	fresh := doc("codec", Bench{Name: "X", NsPerOp: 150})
	th := DefaultThreshold()
	deltas := Compare(old, fresh, th)
	out := SummarizeGate(deltas, th)
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "REGRESSED") {
		t.Fatalf("summary lacks failure markers:\n%s", out)
	}
	pass := SummarizeGate(Compare(old, old, th), th)
	if !strings.Contains(pass, "PASS") {
		t.Fatalf("clean summary lacks PASS:\n%s", pass)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := doc("codec", Bench{Name: "X", NsPerOp: 4.4, Metrics: map[string]float64{"MB/s": 12}})
	if err := d.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(dir, "codec")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := got.Bench("X")
	if !ok || b.NsPerOp != 4.4 || b.Metrics["MB/s"] != 12 {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	if _, err := ReadFile(dir, "batch"); err == nil {
		t.Fatal("missing area read succeeded")
	}
}

func TestReadFileRejectsDrift(t *testing.T) {
	dir := t.TempDir()
	d := doc("codec", Bench{Name: "X"})
	d.Schema = Schema + 1
	if err := d.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(dir, "codec"); err == nil {
		t.Fatal("schema drift accepted")
	}

	d2 := doc("batch", Bench{Name: "X"})
	d2.Area = "codec" // file name batch, payload codec
	if err := d2.WriteFile(dir); err == nil {
		// WriteFile names the file after d2.Area, so fake the mismatch the
		// other way: write codec content under the batch name.
		d3 := doc("codec", Bench{Name: "X"})
		d3.Schema = Schema
		_ = d3
	}
	// Write a codec-labelled doc and try to read it as transport.
	d4 := doc("codec", Bench{Name: "X"})
	if err := d4.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(dir, "transport"); err == nil {
		t.Fatal("area mismatch accepted")
	}
}

func TestGateOverDirectories(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	for _, a := range Areas() {
		base := doc(a.Name, Bench{Name: "X", NsPerOp: 100})
		if err := base.WriteFile(oldDir); err != nil {
			t.Fatal(err)
		}
		f := doc(a.Name, Bench{Name: "X", NsPerOp: 100})
		if a.Name == "batch" {
			f.Benchmarks[0].NsPerOp = 130 // inject a 30% slowdown in one area
		}
		if err := f.WriteFile(newDir); err != nil {
			t.Fatal(err)
		}
	}
	deltas, err := Gate(oldDir, newDir, nil, DefaultThreshold())
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Area != "batch" {
		t.Fatalf("gate regressions = %v, want one in batch", regs)
	}
	if _, err := Gate(oldDir, t.TempDir(), []string{"codec"}, DefaultThreshold()); err == nil {
		t.Fatal("gate with missing fresh files succeeded")
	}
}

func TestAreaRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Areas() {
		if seen[a.Name] {
			t.Fatalf("duplicate area %s", a.Name)
		}
		seen[a.Name] = true
		if len(a.Packages) == 0 || a.Pattern == "" || a.Benchtime == "" {
			t.Fatalf("area %s underspecified: %+v", a.Name, a)
		}
	}
	for _, want := range []string{"codec", "batch", "transport", "pipeline", "remote", "shm", "fleet"} {
		if _, ok := AreaByName(want); !ok {
			t.Fatalf("canonical area %s missing", want)
		}
	}
	if _, ok := AreaByName("nope"); ok {
		t.Fatal("unknown area resolved")
	}
}

// stubExec fabricates go test output so Runner logic is testable without
// spawning real benchmarks.
func stubExec(lines ...string) func(dir, name string, args ...string) ([]byte, error) {
	return func(dir, name string, args ...string) ([]byte, error) {
		return []byte(strings.Join(lines, "\n") + "\n"), nil
	}
}

func TestRunnerMediansAndDoc(t *testing.T) {
	r := &Runner{
		Exec: stubExec(
			"BenchmarkCodecRoundTrip-8 100 5.0 ns/op 0 B/op 0 allocs/op",
			"BenchmarkCodecRoundTrip-8 100 4.0 ns/op 0 B/op 0 allocs/op",
			"BenchmarkCodecRoundTrip-8 100 4.5 ns/op 0 B/op 0 allocs/op",
		),
	}
	a, _ := AreaByName("codec")
	d, err := r.RunArea(a)
	if err != nil {
		t.Fatal(err)
	}
	if d.Area != "codec" || d.Schema != Schema || d.Count != 4 {
		t.Fatalf("doc header wrong: %+v", d)
	}
	b, ok := d.Bench("CodecRoundTrip")
	if !ok || b.NsPerOp != 4.5 {
		t.Fatalf("median wrong: %+v", b)
	}
}

func TestRunnerVarianceGuardRetries(t *testing.T) {
	calls := 0
	r := &Runner{
		Exec: func(dir, name string, args ...string) ([]byte, error) {
			calls++
			if calls == 1 {
				// First round: 2x dispersion, trips the 40% guard.
				return []byte("BenchmarkX-8 100 10 ns/op\nBenchmarkX-8 100 20 ns/op\n"), nil
			}
			return []byte("BenchmarkX-8 100 15 ns/op\nBenchmarkX-8 100 15 ns/op\n"), nil
		},
	}
	d, err := r.RunArea(Area{Name: "codec", Packages: []string{"./x"}, Pattern: "X", Benchtime: "100x"})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("variance guard ran %d rounds, want 2", calls)
	}
	b, _ := d.Bench("X")
	if b.Runs != 4 {
		t.Fatalf("retry samples not merged: %+v", b)
	}
}

func TestRunnerEmptyAreaFails(t *testing.T) {
	r := &Runner{Exec: stubExec("PASS", "ok repro/internal/event 0.1s")}
	a, _ := AreaByName("codec")
	if _, err := r.RunArea(a); err == nil {
		t.Fatal("empty benchmark surface accepted")
	}
}

func TestRunnerExecFailure(t *testing.T) {
	r := &Runner{Exec: func(dir, name string, args ...string) ([]byte, error) {
		return nil, fmt.Errorf("build failed")
	}}
	a, _ := AreaByName("codec")
	if _, err := r.RunArea(a); err == nil {
		t.Fatal("exec failure swallowed")
	}
}

func TestRunAreas(t *testing.T) {
	r := &Runner{Exec: stubExec("BenchmarkX-8 100 10 ns/op")}
	docs, err := r.RunAreas([]string{"codec", "batch"})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].Area != "codec" || docs[1].Area != "batch" {
		t.Fatalf("docs: %+v", docs)
	}
	if _, err := r.RunAreas([]string{"nope"}); err == nil {
		t.Fatal("unknown area accepted")
	}
	all, err := r.RunAreas(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Areas()) {
		t.Fatalf("nil names ran %d areas, want %d", len(all), len(Areas()))
	}
}

func TestExecCommand(t *testing.T) {
	out, err := execCommand(t.TempDir(), "sh", "-c", "echo BenchmarkX-8 100 10 ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "BenchmarkX") {
		t.Fatalf("output lost: %q", out)
	}
	if _, err := execCommand(t.TempDir(), "sh", "-c", "echo broken >&2; exit 3"); err == nil {
		t.Fatal("failing command reported success")
	} else if !strings.Contains(err.Error(), "broken") {
		t.Fatalf("stderr not surfaced in error: %v", err)
	}
}
