package benchjson

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// sample is one raw benchmark output line, before median reduction.
type sample struct {
	iters   int64
	metrics map[string]float64 // unit → value, e.g. "ns/op" → 4.42
}

// ParseBench extracts benchmark samples from `go test -bench` output. Repeat
// runs (-count) of the same benchmark accumulate as separate samples under
// one name; the trailing -P GOMAXPROCS suffix is stripped so names stay
// stable across machines.
//
// A benchmark output line looks like:
//
//	BenchmarkCodecRoundTrip-8   2000   4.42 ns/op   0 B/op   0 allocs/op   12345 instrs/s
//
// Unknown units land in the sample's metric map untouched; non-benchmark
// lines (pkg headers, ok/PASS, b.Log output) are skipped.
func ParseBench(out []byte) (map[string][]sample, error) {
	samples := make(map[string][]sample)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs: at least "Name N v ns/op".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := trimProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		s := sample{iters: iters, metrics: make(map[string]float64, (len(fields)-2)/2)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			s.metrics[fields[i+1]] = v
		}
		if _, ok := s.metrics["ns/op"]; !ok {
			continue
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// trimProcs strips go test's -GOMAXPROCS suffix ("BenchmarkFoo-8" → the
// portable "BenchmarkFoo") without touching dashes inside the name itself.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Reduce folds raw samples into per-benchmark medians, sorted by name.
func Reduce(samples map[string][]sample) []Bench {
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	// Deterministic output order keeps BENCH_*.json diffs readable.
	sort.Strings(names)

	benches := make([]Bench, 0, len(names))
	for _, name := range names {
		ss := samples[name]
		unit := func(u string) []float64 {
			var vs []float64
			for _, s := range ss {
				if v, ok := s.metrics[u]; ok {
					vs = append(vs, v)
				}
			}
			return vs
		}
		ns := unit("ns/op")
		b := Bench{
			Name:         strings.TrimPrefix(name, "Benchmark"),
			Runs:         len(ss),
			NsPerOp:      median(ns),
			MinNsPerOp:   minOf(ns),
			BPerOp:       median(unit("B/op")),
			AllocsPerOp:  median(unit("allocs/op")),
			InstrsPerSec: median(unit("instrs/s")),
			Spread:       spread(ns),
		}
		var iters []float64
		for _, s := range ss {
			iters = append(iters, float64(s.iters))
		}
		b.Iters = int64(median(iters))
		for u := range collectUnits(ss) {
			switch u {
			case "ns/op", "B/op", "allocs/op", "instrs/s":
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[u] = median(unit(u))
		}
		benches = append(benches, b)
	}
	return benches
}

// collectUnits returns every unit any sample reported.
func collectUnits(ss []sample) map[string]struct{} {
	units := make(map[string]struct{})
	for _, s := range ss {
		for u := range s.metrics {
			units[u] = struct{}{}
		}
	}
	return units
}
