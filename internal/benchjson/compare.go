package benchjson

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Threshold is the regression policy one gate run applies.
type Threshold struct {
	// Time is the relative ns/op regression allowance (0.15 = fail beyond
	// +15%). Applied symmetrically to throughput metrics (instrs/s drops).
	Time float64
	// Bytes is the relative B/op allowance. A zero-B/op baseline uses
	// ZeroBytesSlack instead (relative growth from zero is undefined).
	Bytes float64
	// Allocs is the absolute allocs/op allowance above the baseline, on top
	// of a relative Bytes-fraction allowance. The codec work pinned several
	// paths at 0 allocs/op; the default 0.5 keeps them pinned (0.5 + 25% of
	// zero is still 0.5) while an allocation-heavy session benchmark with a
	// ~34k allocs/op baseline is allowed proportional jitter instead of
	// failing on +1%.
	Allocs float64
	// ZeroBytesSlack is the absolute B/op allowance when the baseline is 0.
	ZeroBytesSlack float64
}

// DefaultThreshold fails a gate on >15% ns/op or throughput regression, >25%
// B/op growth, or any new allocation on a pinned-zero path. The ISSUE's
// acceptance bar — a deliberate 20% slowdown must fail the gate — is why
// Time sits below 0.20.
func DefaultThreshold() Threshold {
	return Threshold{Time: 0.15, Bytes: 0.25, Allocs: 0.5, ZeroBytesSlack: 16}
}

// Delta is one benchmark metric's baseline-vs-fresh movement.
type Delta struct {
	Area      string
	Bench     string
	Metric    string // "ns/op", "B/op", "allocs/op", "instrs/s"
	Old, New  float64
	Rel       float64 // (new-old)/old, +worse for costs, computed per metric
	Regressed bool
	Note      string // set for structural failures (missing benchmark)
}

// String renders one delta for gate output.
func (d Delta) String() string {
	if d.Note != "" {
		return fmt.Sprintf("%s/%s: %s", d.Area, d.Bench, d.Note)
	}
	return fmt.Sprintf("%s/%s %s: %.4g -> %.4g (%+.1f%%)",
		d.Area, d.Bench, d.Metric, d.Old, d.New, d.Rel*100)
}

// Compare evaluates a fresh run against a committed baseline. Every
// benchmark in the baseline must still exist — a disappeared benchmark is a
// trajectory hole and fails the gate; fresh-only benchmarks are reported as
// informational zero-old deltas and never fail.
func Compare(old, fresh *Doc, th Threshold) []Delta {
	var deltas []Delta
	for _, ob := range old.Benchmarks {
		nb, ok := fresh.Bench(ob.Name)
		if !ok {
			deltas = append(deltas, Delta{
				Area: old.Area, Bench: ob.Name, Regressed: true,
				Note: "benchmark missing from the fresh run (trajectory hole)",
			})
			continue
		}
		deltas = append(deltas, compareBench(old.Area, ob, nb, th)...)
	}
	for _, nb := range fresh.Benchmarks {
		if _, ok := old.Bench(nb.Name); !ok {
			deltas = append(deltas, Delta{
				Area: old.Area, Bench: nb.Name, Metric: "ns/op",
				New: nb.NsPerOp, Note: "new benchmark (no baseline yet)",
			})
		}
	}
	return deltas
}

// compareBench applies the per-metric policy to one benchmark pair.
func compareBench(area string, ob, nb Bench, th Threshold) []Delta {
	var ds []Delta
	add := func(metric string, old, new, rel float64, regressed bool) {
		ds = append(ds, Delta{Area: area, Bench: ob.Name, Metric: metric,
			Old: old, New: new, Rel: rel, Regressed: regressed})
	}

	// ns/op: relative, higher is worse. A regression must show in both the
	// median AND the run-to-run floor: host noise only inflates the upper
	// tail (it never makes code faster), so a median that drifts up while
	// the fastest run holds steady is noise, while a real slowdown lifts the
	// whole distribution including the floor. Baselines written before
	// MinNsPerOp existed (or degenerate zero floors) fall back to
	// median-only gating.
	if ob.NsPerOp > 0 {
		rel := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		regressed := rel > th.Time
		if regressed && ob.MinNsPerOp > 0 && nb.MinNsPerOp > 0 {
			regressed = (nb.MinNsPerOp-ob.MinNsPerOp)/ob.MinNsPerOp > th.Time
		}
		add("ns/op", ob.NsPerOp, nb.NsPerOp, rel, regressed)
	}
	// B/op: relative, with an absolute slack when the baseline is zero.
	switch {
	case ob.BPerOp > 0:
		rel := (nb.BPerOp - ob.BPerOp) / ob.BPerOp
		add("B/op", ob.BPerOp, nb.BPerOp, rel, rel > th.Bytes)
	case nb.BPerOp > th.ZeroBytesSlack:
		add("B/op", 0, nb.BPerOp, 1, true)
	}
	// allocs/op: absolute allowance plus a Bytes-fraction of the baseline,
	// so zero-alloc guarantees stay pinned while allocation-heavy paths get
	// proportional slack.
	if allowance := th.Allocs + th.Bytes*ob.AllocsPerOp; nb.AllocsPerOp > ob.AllocsPerOp+allowance {
		add("allocs/op", ob.AllocsPerOp, nb.AllocsPerOp,
			nb.AllocsPerOp-ob.AllocsPerOp, true)
	}
	// instrs/s: throughput, lower is worse; gated only when both runs
	// report the canonical metric.
	if ob.InstrsPerSec > 0 && nb.InstrsPerSec > 0 {
		rel := (ob.InstrsPerSec - nb.InstrsPerSec) / ob.InstrsPerSec
		add("instrs/s", ob.InstrsPerSec, nb.InstrsPerSec, rel, rel > th.Time)
	}
	return ds
}

// Regressions filters the failing deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// FormatDeltas renders a comparison table (all metrics, regressions marked).
func FormatDeltas(deltas []Delta) string {
	header := []string{"Area", "Benchmark", "Metric", "Old", "New", "Delta", "Verdict"}
	var rows [][]string
	for _, d := range deltas {
		if d.Note != "" {
			rows = append(rows, []string{d.Area, d.Bench, "-", "-", "-", "-", d.Note})
			continue
		}
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		rows = append(rows, []string{
			d.Area, d.Bench, d.Metric,
			fmt.Sprintf("%.4g", d.Old), fmt.Sprintf("%.4g", d.New),
			fmt.Sprintf("%+.1f%%", d.Rel*100), verdict,
		})
	}
	return stats.Table(header, rows)
}

// Gate compares every area's baseline and fresh documents and returns the
// regressions (empty = gate passes). Areas listed in names only; nil = all.
func Gate(baselineDir, freshDir string, names []string, th Threshold) ([]Delta, error) {
	if len(names) == 0 {
		for _, a := range Areas() {
			names = append(names, a.Name)
		}
	}
	var all []Delta
	for _, name := range names {
		old, err := ReadFile(baselineDir, name)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", FileName(name), err)
		}
		fresh, err := ReadFile(freshDir, name)
		if err != nil {
			return nil, fmt.Errorf("fresh %s: %w", FileName(name), err)
		}
		all = append(all, Compare(old, fresh, th)...)
	}
	return all, nil
}

// SummarizeGate renders the gate outcome: the full table plus a verdict line.
func SummarizeGate(deltas []Delta, th Threshold) string {
	var sb strings.Builder
	sb.WriteString(FormatDeltas(deltas))
	regs := Regressions(deltas)
	if len(regs) == 0 {
		fmt.Fprintf(&sb, "gate: PASS (thresholds: time %+.0f%%, bytes %+.0f%%, allocs +%.1f)\n",
			th.Time*100, th.Bytes*100, th.Allocs)
		return sb.String()
	}
	fmt.Fprintf(&sb, "gate: FAIL — %d regression(s):\n", len(regs))
	for _, d := range regs {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}
