// Package benchjson is the machine-readable perf-trajectory harness: it runs
// the repo's benchmark surface area by area, parses `go test -bench` output,
// reduces repeat runs to medians with a variance guard (benchstat's approach,
// without the x/perf dependency), and emits one BENCH_<area>.json per area so
// every PR's speed claims land in a committed, CI-gated time series instead
// of a prose changelog.
//
// The eight canonical areas mirror the layers the paper's speedups live in:
//
//	codec      per-kind wire encode/decode          (internal/event)
//	batch      packet packing and unpacking         (internal/batch)
//	transport  frame round-trip over a real socket  (internal/transport)
//	pipeline   executed concurrent pipeline         (internal/pipeline, internal/cosim)
//	remote     difftestd loopback RTT and sessions  (internal/cosim)
//	shm        shared-memory ring RTT + zero-copy   (internal/transport/shmring)
//	fleet      routed sessions vs direct + forwarding hot path (internal/fleet)
//	fuzz       mutation engine + corpus sync-point merge (internal/fuzz)
//
// cmd/benchjson wraps this package as a CLI with run / compare / gate
// subcommands; `make bench-json` and CI's bench-trajectory job drive it.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// Schema is the BENCH_*.json schema version; bump on incompatible changes.
const Schema = 1

// Area names one benchmark surface: the packages and the benchmark pattern
// that measure it, plus the benchtime its workloads need.
type Area struct {
	// Name keys the output file: BENCH_<Name>.json.
	Name string
	// Packages are the go test package patterns (./internal/... form).
	Packages []string
	// Pattern is the -bench regexp selecting the area's benchmarks.
	Pattern string
	// Benchtime is the -benchtime per run. Iteration-count form ("1000x")
	// keeps runs deterministic in length; wall-time form would let a slower
	// machine quietly measure fewer iterations.
	Benchtime string
}

// Areas returns the canonical benchmark areas in trajectory order.
func Areas() []Area {
	return []Area{
		{
			Name:      "codec",
			Packages:  []string{"./internal/event"},
			Pattern:   "^(BenchmarkCodecRoundTrip|BenchmarkCodecRoundTripLargest|BenchmarkEncodeCommit|BenchmarkDecodeCommit)$",
			Benchtime: "200000x",
		},
		{
			Name:      "batch",
			Packages:  []string{"./internal/batch"},
			Pattern:   "^(BenchmarkBatchPack|BenchmarkBatchUnpack)$",
			Benchtime: "20000x",
		},
		{
			Name:      "transport",
			Packages:  []string{"./internal/transport"},
			Pattern:   "^(BenchmarkFrameRoundTrip|BenchmarkFrameHeaderSum)$",
			Benchtime: "2000x",
		},
		{
			Name:      "pipeline",
			Packages:  []string{"./internal/pipeline", "./internal/cosim"},
			Pattern:   "^(BenchmarkPipelineBlocking|BenchmarkPipelineNonBlocking|BenchmarkExecutedBatchEB|BenchmarkExecutedNonBlockEBIN|BenchmarkExecutedSquashEBINSD)$",
			Benchtime: "3x",
		},
		{
			Name:      "remote",
			Packages:  []string{"./internal/cosim"},
			Pattern:   "^(BenchmarkRemoteLoopbackRTT|BenchmarkRemoteLoopbackSession)$",
			Benchtime: "3x",
		},
		{
			Name:      "shm",
			Packages:  []string{"./internal/transport/shmring", "./internal/transport"},
			Pattern:   "^(BenchmarkShmFrameRoundTrip|BenchmarkShmPackCheckZeroCopy|BenchmarkUnixSocketFrameRoundTrip)$",
			Benchtime: "2000x",
		},
		{
			Name:      "fleet",
			Packages:  []string{"./internal/fleet"},
			Pattern:   "^(BenchmarkFleetRoutedSession|BenchmarkFleetDirectSession|BenchmarkFleetForward1k)$",
			Benchtime: "3x",
		},
		{
			Name:      "fuzz",
			Packages:  []string{"./internal/fuzz"},
			Pattern:   "^(BenchmarkFuzzMutations|BenchmarkCorpusMerge|BenchmarkFeatureExtract)$",
			Benchtime: "2000x",
		},
	}
}

// AreaByName resolves one canonical area.
func AreaByName(name string) (Area, bool) {
	for _, a := range Areas() {
		if a.Name == name {
			return a, true
		}
	}
	return Area{}, false
}

// Bench is one benchmark's reduced measurement: medians across repeat runs.
type Bench struct {
	Name string `json:"name"`
	// Runs is how many samples the medians reduce (≥ the configured count;
	// the variance guard adds runs when the spread is too wide).
	Runs int `json:"runs"`
	// Iters is the median per-run iteration count (go test's N column).
	Iters int64 `json:"iters"`

	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// MinNsPerOp is the fastest run's ns/op. On a noisy host the run-to-run
	// floor is far more stable than the median (noise only ever adds time),
	// so the gate requires both the median and the floor to regress before
	// failing — a real slowdown shifts the whole distribution, noise only
	// the upper tail.
	MinNsPerOp float64 `json:"min_ns_per_op,omitempty"`

	// InstrsPerSec is the derived throughput, taken from the benchmark's own
	// `instrs/s` ReportMetric — the one canonical source — when it reports
	// one, 0 otherwise. benchjson never re-computes it from ns/op.
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`

	// Metrics holds the medians of any other custom b.ReportMetric units
	// (transfers/s, DUTcycles/op, MB/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Spread is (max-min)/median of ns/op across the runs — the variance
	// guard's dispersion measure, recorded so a noisy baseline is visible.
	Spread float64 `json:"spread"`
}

// Doc is one BENCH_<area>.json file.
type Doc struct {
	Schema     int     `json:"schema"`
	Area       string  `json:"area"`
	GoVersion  string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Count      int     `json:"count"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []Bench `json:"benchmarks"`
}

// NewDoc builds an empty document stamped with this binary's environment.
func NewDoc(area Area, count int) *Doc {
	return &Doc{
		Schema:    Schema,
		Area:      area.Name,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Count:     count,
		Benchtime: area.Benchtime,
	}
}

// FileName returns the committed baseline name for an area.
func FileName(area string) string { return "BENCH_" + area + ".json" }

// WriteFile marshals the document to dir/BENCH_<area>.json.
func (d *Doc) WriteFile(dir string) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(filepath.Join(dir, FileName(d.Area)), buf, 0o644)
}

// ReadFile loads dir/BENCH_<area>.json.
func ReadFile(dir, area string) (*Doc, error) {
	buf, err := os.ReadFile(filepath.Join(dir, FileName(area)))
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", FileName(area), err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("benchjson: %s: schema %d (this binary speaks %d)", FileName(area), d.Schema, Schema)
	}
	if d.Area != area {
		return nil, fmt.Errorf("benchjson: %s names area %q", FileName(area), d.Area)
	}
	return &d, nil
}

// Bench looks a benchmark up by name.
func (d *Doc) Bench(name string) (Bench, bool) {
	for _, b := range d.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Bench{}, false
}

// median reduces samples; even-length inputs average the middle pair
// (benchstat's convention). The input is not modified.
func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// spread is the relative dispersion (max-min)/median; 0 for degenerate input.
func spread(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	min, max := samples[0], samples[0]
	for _, v := range samples[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	m := median(samples)
	if m == 0 {
		return 0
	}
	return (max - min) / m
}

// minOf returns the smallest sample (0 when empty).
func minOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	min := samples[0]
	for _, v := range samples[1:] {
		if v < min {
			min = v
		}
	}
	return min
}
