package benchjson

import (
	"fmt"
	"os/exec"
)

// Runner executes an area's benchmarks and reduces them to a Doc.
type Runner struct {
	// Go is the go binary (default "go").
	Go string
	// Dir is the repo root the benchmarks run from (default ".").
	Dir string
	// Count is the repeat count per benchmark (-count; default 4, even so
	// the median averages the middle pair and a single outlier never wins).
	Count int
	// MaxSpread is the variance guard: when a benchmark's ns/op dispersion
	// exceeds it, the area is re-run once and the extra samples join the
	// median (default 0.40). The guard widens the sample set instead of
	// discarding outliers, so a genuinely bimodal benchmark stays visible
	// through its recorded Spread.
	MaxSpread float64
	// Retries bounds the variance-guard re-runs per area (default 1).
	Retries int
	// Exec runs one command and returns its combined output; tests stub it.
	// A benchmark that fails to build or panics must return an error.
	Exec func(dir string, name string, args ...string) ([]byte, error)
	// Logf, when set, narrates runs and variance-guard retries.
	Logf func(format string, args ...any)
}

func (r *Runner) defaults() {
	if r.Go == "" {
		r.Go = "go"
	}
	if r.Dir == "" {
		r.Dir = "."
	}
	if r.Count <= 0 {
		r.Count = 4
	}
	if r.MaxSpread <= 0 {
		r.MaxSpread = 0.40
	}
	if r.Retries < 0 {
		r.Retries = 0
	} else if r.Retries == 0 {
		r.Retries = 1
	}
	if r.Exec == nil {
		r.Exec = execCommand
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// execCommand is the production Exec: run the command in dir, return
// combined output. Benchmarks write results to stdout and failures to
// stderr; both matter for diagnostics.
func execCommand(dir, name string, args ...string) ([]byte, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return out, fmt.Errorf("benchjson: %s %v: %w\n%s", name, args, err, out)
	}
	return out, nil
}

// runOnce performs one `go test -bench` invocation for the area with the
// given repeat count and returns the raw samples.
func (r *Runner) runOnce(a Area, count int) (map[string][]sample, error) {
	args := []string{
		"test", "-run=^$",
		"-bench=" + a.Pattern,
		"-benchmem",
		"-benchtime=" + a.Benchtime,
		fmt.Sprintf("-count=%d", count),
	}
	args = append(args, a.Packages...)
	out, err := r.Exec(r.Dir, r.Go, args...)
	if err != nil {
		return nil, err
	}
	return ParseBench(out)
}

// RunArea measures one area: Count repeats per benchmark, a variance-guard
// re-run when any benchmark's ns/op spread exceeds MaxSpread, medians into a
// Doc. An area whose pattern matches nothing is an error — a silently empty
// trajectory is exactly what this package exists to prevent.
func (r *Runner) RunArea(a Area) (*Doc, error) {
	r.defaults()
	r.logf("area %s: %v -bench=%s -benchtime=%s -count=%d",
		a.Name, a.Packages, a.Pattern, a.Benchtime, r.Count)
	samples, err := r.runOnce(a, r.Count)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("benchjson: area %s matched no benchmarks (pattern %s in %v)",
			a.Name, a.Pattern, a.Packages)
	}
	for retry := 0; retry < r.Retries && r.noisy(samples); retry++ {
		r.logf("area %s: spread above %.0f%%, adding %d more runs",
			a.Name, r.MaxSpread*100, r.Count)
		more, err := r.runOnce(a, r.Count)
		if err != nil {
			return nil, err
		}
		for name, ss := range more {
			samples[name] = append(samples[name], ss...)
		}
	}
	doc := NewDoc(a, r.Count)
	doc.Benchmarks = Reduce(samples)
	return doc, nil
}

// noisy reports whether any benchmark's ns/op dispersion trips the guard.
func (r *Runner) noisy(samples map[string][]sample) bool {
	for _, ss := range samples {
		var ns []float64
		for _, s := range ss {
			if v, ok := s.metrics["ns/op"]; ok {
				ns = append(ns, v)
			}
		}
		if spread(ns) > r.MaxSpread {
			return true
		}
	}
	return false
}

// RunAreas measures every named area (nil = all canonical areas).
func (r *Runner) RunAreas(names []string) ([]*Doc, error) {
	areas := Areas()
	if len(names) > 0 {
		areas = areas[:0:0]
		for _, name := range names {
			a, ok := AreaByName(name)
			if !ok {
				return nil, fmt.Errorf("benchjson: unknown area %q", name)
			}
			areas = append(areas, a)
		}
	}
	docs := make([]*Doc, 0, len(areas))
	for _, a := range areas {
		d, err := r.RunArea(a)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return docs, nil
}
