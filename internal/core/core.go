package core
