package squash

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/wire"
)

// desqHarness builds a fuser+desquasher pair over a straight-line counting
// program, so fused windows step the reference model deterministically.
func desqHarness(t *testing.T, instrs int) (*Fuser, *Desquasher, *checker.Checker) {
	t.Helper()
	img := mem.New()
	addr := mem.RAMBase
	for i := 0; i < instrs; i++ {
		img.Write(addr, 4, uint64(isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1})))
		addr += 4
	}
	chk := checker.New(img, []uint64{mem.RAMBase}, 1)
	var enabled [event.NumKinds]bool
	for i := range enabled {
		enabled[i] = true
	}
	f := NewFuser(Config{MaxFuse: 4, StateFlushAge: 1000}, 0)
	return f, NewDesquasher(chk, enabled), chk
}

// feed runs records through the fuser and desquasher, returning the first
// mismatch.
func feed(t *testing.T, f *Fuser, d *Desquasher, cycles [][]event.Record) *checker.Mismatch {
	t.Helper()
	tok := uint64(0)
	for _, recs := range cycles {
		toks := make([]uint64, len(recs))
		for i := range toks {
			toks[i] = tok
			tok++
		}
		for _, it := range f.Cycle(recs, toks) {
			if m := d.Process(it); m != nil {
				return m
			}
		}
	}
	for _, it := range f.Flush() {
		if m := d.Process(it); m != nil {
			return m
		}
	}
	return d.Flush()
}

func countingCommit(seq uint64) event.Record {
	return event.Record{Seq: seq, Core: 0, Ev: &event.InstrCommit{
		PC:    mem.RAMBase + (seq-1)*4,
		Instr: isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1}),
		Flags: event.CommitRfWen, Wdest: 1, Wdata: seq,
	}}
}

func TestFusedWindowStepsREF(t *testing.T) {
	f, d, chk := desqHarness(t, 64)
	var cycles [][]event.Record
	for s := uint64(1); s <= 8; s += 2 {
		cycles = append(cycles, []event.Record{countingCommit(s), countingCommit(s + 1)})
	}
	if m := feed(t, f, d, cycles); m != nil {
		t.Fatalf("clean fused stream mismatched: %v", m)
	}
	if got := chk.Cores[0].InstrRet(); got != 8 {
		t.Errorf("REF stepped %d instructions, want 8", got)
	}
	if chk.Cores[0].Ref.M.State.GPR[1] != 8 {
		t.Errorf("x1 = %d", chk.Cores[0].Ref.M.State.GPR[1])
	}
}

func TestFusedDetectsWrongPCDigest(t *testing.T) {
	f, d, _ := desqHarness(t, 64)
	bad := countingCommit(2)
	bad.Ev.(*event.InstrCommit).PC += 4 // DUT claims a different PC
	m := feed(t, f, d, [][]event.Record{{countingCommit(1), bad, countingCommit(3), countingCommit(4)}})
	if m == nil || !m.Fused {
		t.Fatalf("PC digest divergence not flagged as fused mismatch: %v", m)
	}
}

func TestFusedDetectsWrongWDigest(t *testing.T) {
	f, d, _ := desqHarness(t, 64)
	bad := countingCommit(3)
	bad.Ev.(*event.InstrCommit).Wdata ^= 8
	m := feed(t, f, d, [][]event.Record{{countingCommit(1), countingCommit(2), bad, countingCommit(4)}})
	if m == nil || !m.Fused {
		t.Fatalf("writeback digest divergence not flagged: %v", m)
	}
}

func TestDigestCountMismatch(t *testing.T) {
	f, d, _ := desqHarness(t, 64)
	// Inject an extra derivable event the REF will not reproduce.
	extra := event.Record{Seq: 2, Core: 0, Ev: &event.Load{PAddr: 0x1000, Data: 1}}
	m := feed(t, f, d, [][]event.Record{
		{countingCommit(1), countingCommit(2), extra, countingCommit(3), countingCommit(4)},
	})
	if m == nil || !m.Fused {
		t.Fatalf("digest count divergence not flagged: %v", m)
	}
}

func TestLateStateDiffIsSkippedNotFatal(t *testing.T) {
	f, d, _ := desqHarness(t, 64)
	// A snapshot whose tag is far behind the REF position by the time it is
	// received (possible around end-of-run flushes): completed, counted,
	// not compared.
	var cycles [][]event.Record
	for s := uint64(1); s <= 8; s++ {
		cycles = append(cycles, []event.Record{countingCommit(s)})
	}
	if m := feed(t, f, d, cycles); m != nil {
		t.Fatalf("setup mismatched: %v", m)
	}
	stale := wire.NDEItem(0, 0, 1, &event.ArchIntRegState{}) // tag 1 << InstrRet 8
	if m := d.Process(stale); m != nil {
		t.Fatalf("late state check was fatal: %v", m)
	}
	if got := d.LateSkipped.Load(); got != 1 {
		t.Errorf("LateSkipped = %d, want 1", got)
	}
}

func TestLastWindowTracked(t *testing.T) {
	f, d, _ := desqHarness(t, 64)
	if m := feed(t, f, d, [][]event.Record{
		{countingCommit(1), countingCommit(2), countingCommit(3), countingCommit(4)},
	}); m != nil {
		t.Fatalf("mismatch: %v", m)
	}
	if fc := d.LastWindow(0); fc.Count != 4 || fc.LastSeq != 4 {
		t.Errorf("last window = %+v", fc)
	}
}

func TestOnWindowCallbackFires(t *testing.T) {
	f, d, _ := desqHarness(t, 64)
	var got []uint64
	d.OnWindow = func(core uint8, fc wire.FusedCommit) {
		got = append(got, fc.LastSeq)
	}
	var cycles [][]event.Record
	for s := uint64(1); s <= 8; s += 2 {
		cycles = append(cycles, []event.Record{countingCommit(s), countingCommit(s + 1)})
	}
	if m := feed(t, f, d, cycles); m != nil {
		t.Fatalf("mismatch: %v", m)
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 8 {
		t.Errorf("OnWindow seqs = %v", got)
	}
}
