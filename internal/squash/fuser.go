// Package squash implements the Squash mechanism (paper §4.3): reducing
// data transmission volume by fusing verification events across instructions
// with the checking order decoupled from the transmission order.
//
// The hardware-side Fuser:
//   - fuses instruction commits into FusedCommit summaries (count, final PC,
//     PC digest);
//   - folds REF-derivable events (loads, stores, exceptions, vector
//     writebacks, ...) into a per-window digest the checker recomputes;
//   - schedules NDEs (interrupts, MMIO accesses) and other DUT-specific
//     events (refills, TLB fills, redirects) ahead with order tags, so they
//     never break fusion (order decoupling);
//   - keeps only the latest architectural-state snapshot per kind per window
//     and transmits it as a tagged difference against the previous
//     transmitted instance (differencing).
//
// The software-side Desquasher (desquash.go) restores the checking order
// from the tags and drives the checker.
//
// The order-coupled baseline (Config.CoupleOrder) reproduces existing
// fusion schemes: every NDE terminates the ongoing fusion window, which the
// paper shows causes frequent fusion breaks and a limited fusion ratio.
package squash

import (
	"repro/internal/derive"
	"repro/internal/event"
	"repro/internal/wire"
)

// Config tunes the fusion unit.
type Config struct {
	// MaxFuse is the fusion window size in commits (the window closes at
	// the end of the cycle in which it fills).
	MaxFuse int
	// CoupleOrder reproduces order-coupled fusion: NDEs break the window.
	CoupleOrder bool
	// StateFlushAge bounds how many cycles a pending state snapshot may
	// wait before being transmitted even without a window flush.
	StateFlushAge int
}

// DefaultConfig returns the paper-calibrated fusion configuration.
func DefaultConfig() Config {
	return Config{MaxFuse: 64, StateFlushAge: 64}
}

// Stats counts fusion behaviour (the Squash performance counters, §5).
type Stats struct {
	Windows      uint64 // fusion windows flushed
	FusedCommits uint64 // commits fused into windows
	Breaks       uint64 // NDE-induced window breaks (order-coupled mode)
	NDEsAhead    uint64 // events transmitted ahead with order tags
	Diffs        uint64 // differenced state events
	DiffBytes    uint64 // bytes transmitted for diffs
	RawState     uint64 // first-instance state events sent whole
}

// FusionRatio returns the mean number of commits per fused transfer.
func (s Stats) FusionRatio() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.FusedCommits) / float64(s.Windows)
}

type pendSnap struct {
	ev  event.Event
	seq uint64
}

// Fuser is the per-core hardware-side fusion unit.
type Fuser struct {
	Cfg   Config
	Core  uint8
	Stats Stats

	fc         wire.FusedCommit
	windowOpen bool
	tokenSet   bool
	dig        derive.Digest

	pendState map[event.Kind]pendSnap
	stateAge  int
	lastSent  map[event.Kind]event.Event

	lastSkipSeq uint64
	haveSkip    bool
}

// NewFuser builds a fusion unit for one core.
func NewFuser(cfg Config, core uint8) *Fuser {
	if cfg.MaxFuse <= 0 {
		cfg.MaxFuse = 64
	}
	if cfg.StateFlushAge <= 0 {
		cfg.StateFlushAge = 64
	}
	return &Fuser{
		Cfg: cfg, Core: core,
		pendState: make(map[event.Kind]pendSnap),
		lastSent:  make(map[event.Kind]event.Event),
	}
}

// stateKind reports whether k is an architectural-state snapshot kind.
func stateKind(k event.Kind) bool {
	return event.CategoryOf(k) == event.CatRegisterUpdate
}

// taggedKind reports whether k is a DUT-specific (non-derivable) event that
// is transmitted ahead with an order tag rather than fused.
func taggedKind(k event.Kind) bool {
	switch k {
	case event.KindRefill, event.KindCMO, event.KindL1TLB, event.KindL2TLB,
		event.KindSbuffer, event.KindRedirect:
		return true
	default:
		// Everything else is either fused state or derivable by the model.
		return false
	}
}

// Cycle processes one cycle's records for this core (with their replay
// tokens) and returns the wire items to transmit this cycle.
func (f *Fuser) Cycle(recs []event.Record, tokens []uint64) []wire.Item {
	var out []wire.Item
	slot := uint8(0)
	wantFlush := false

	for i, rec := range recs {
		ev := rec.Ev
		k := ev.Kind()
		if k == event.KindInstrCommit {
			slot++
		}
		if !f.tokenSet {
			f.fc.StartToken = tokens[i]
			f.tokenSet = true
		}

		switch {
		case k == event.KindInstrCommit:
			ic := ev.(*event.InstrCommit)
			if ic.Flags&event.CommitSkip != 0 {
				// MMIO instruction: NDE — ahead with a pre-apply tag.
				f.lastSkipSeq, f.haveSkip = rec.Seq, true
				out = f.emitNDE(out, slot, rec.Seq-1, ev)
				if f.Cfg.CoupleOrder {
					out = f.breakWindow(out, slot)
				}
				continue
			}
			f.windowOpen = true
			f.fc.Count++
			f.fc.LastSeq = rec.Seq
			f.fc.LastPC = ic.PC
			f.fc.PCDigest ^= ic.PC
			f.fc.WDigest ^= ic.Wdata
			if f.fc.Count >= uint64(f.Cfg.MaxFuse) {
				wantFlush = true
			}

		case event.IsNDE(ev):
			out = f.emitNDE(out, slot, rec.Seq, ev)
			if f.Cfg.CoupleOrder {
				out = f.breakWindow(out, slot)
			}

		case stateKind(k):
			f.pendState[k] = pendSnap{ev: ev, seq: rec.Seq}

		case taggedKind(k):
			out = f.emitNDE(out, slot, rec.Seq, ev)

		case k == event.KindTrap:
			wantFlush = true
			out = append(out, wire.RawItem(f.Core, slot, ev))

		default:
			// Derivable event: fold into the window digest unless it
			// belongs to a skipped (MMIO) instruction.
			if f.haveSkip && rec.Seq == f.lastSkipSeq {
				out = f.emitNDE(out, slot, rec.Seq, ev)
				continue
			}
			f.dig.Add(ev)
		}
	}

	if wantFlush && f.windowOpen {
		out = f.flushWindow(out, 250)
	}
	// State differencing runs on its own cadence, decoupled from window
	// flushes, so fusion policy does not change snapshot traffic.
	f.stateAge++
	if len(f.pendState) > 0 && f.stateAge >= f.Cfg.StateFlushAge {
		out = f.flushState(out, 251)
		f.stateAge = 0
	}
	return out
}

// Flush closes the window and all pending state at end of run.
func (f *Fuser) Flush() []wire.Item {
	var out []wire.Item
	if f.windowOpen {
		out = f.flushWindow(out, 250)
	}
	if len(f.pendState) > 0 {
		out = f.flushState(out, 251)
	}
	return out
}

func (f *Fuser) emitNDE(out []wire.Item, slot uint8, tag uint64, ev event.Event) []wire.Item {
	f.Stats.NDEsAhead++
	return append(out, wire.NDEItem(f.Core, slot, tag, ev))
}

// breakWindow implements order-coupled fusion: transmit the fused-so-far
// window immediately when an NDE appears.
func (f *Fuser) breakWindow(out []wire.Item, slot uint8) []wire.Item {
	if !f.windowOpen {
		return out
	}
	f.Stats.Breaks++
	return f.flushWindow(out, slot)
}

func (f *Fuser) flushWindow(out []wire.Item, slot uint8) []wire.Item {
	f.Stats.Windows++
	f.Stats.FusedCommits += f.fc.Count
	out = append(out, wire.FusedItem(f.Core, slot, f.fc))
	out = append(out, wire.DigestItem(f.Core, slot, f.dig.Count, f.dig.Sum))
	f.fc = wire.FusedCommit{}
	f.dig = derive.Digest{}
	f.windowOpen, f.tokenSet = false, false
	return out
}

// flushState transmits the pending state snapshots: differenced when a
// previous instance exists, whole otherwise, always with an order tag.
func (f *Fuser) flushState(out []wire.Item, slot uint8) []wire.Item {
	for _, k := range orderedStateKinds {
		ps, ok := f.pendState[k]
		if !ok {
			continue
		}
		if prev, sent := f.lastSent[k]; sent {
			it := wire.DiffItem(f.Core, slot, ps.seq, prev, ps.ev)
			f.Stats.Diffs++
			f.Stats.DiffBytes += uint64(len(it.Payload))
			out = append(out, it)
		} else {
			f.Stats.RawState++
			out = append(out, wire.NDEItem(f.Core, slot, ps.seq, ps.ev))
		}
		f.lastSent[k] = ps.ev
		delete(f.pendState, k)
	}
	return out
}

// orderedStateKinds lists snapshot kinds in canonical flush order.
var orderedStateKinds = []event.Kind{
	event.KindArchIntRegState, event.KindCSRState, event.KindFpCSRState,
	event.KindArchFpRegState, event.KindVecCSRState, event.KindArchVecRegState,
	event.KindHCSRState, event.KindDebugCSRState, event.KindTriggerCSRState,
}
