package squash

import (
	"testing"

	"repro/internal/event"
	"repro/internal/wire"
)

func commit(seq uint64, pc uint64) event.Record {
	return event.Record{Seq: seq, Core: 0, Ev: &event.InstrCommit{
		PC: pc, Flags: event.CommitRfWen, Wdest: 1, Wdata: seq,
	}}
}

func tokens(n int, start uint64) []uint64 {
	t := make([]uint64, n)
	for i := range t {
		t[i] = start + uint64(i)
	}
	return t
}

func TestFusionWindowAccumulates(t *testing.T) {
	f := NewFuser(Config{MaxFuse: 4, StateFlushAge: 1000}, 0)
	var out []wire.Item
	seq := uint64(0)
	for c := 0; c < 2; c++ {
		var recs []event.Record
		for i := 0; i < 2; i++ {
			seq++
			recs = append(recs, commit(seq, 0x1000+seq*4))
		}
		out = append(out, f.Cycle(recs, tokens(len(recs), seq*10))...)
	}
	// 4 commits at MaxFuse=4: exactly one flush (FusedCommit + Digest).
	var fused []wire.FusedCommit
	for _, it := range out {
		if it.IsFused() {
			fc, err := wire.DecodeFused(it)
			if err != nil {
				t.Fatal(err)
			}
			fused = append(fused, fc)
		}
	}
	if len(fused) != 1 {
		t.Fatalf("fused items = %d, want 1", len(fused))
	}
	fc := fused[0]
	if fc.Count != 4 || fc.LastSeq != 4 || fc.LastPC != 0x1000+4*4 {
		t.Errorf("fused summary = %+v", fc)
	}
	wantDig := uint64(0x1004 ^ 0x1008 ^ 0x100C ^ 0x1010)
	if fc.PCDigest != wantDig {
		t.Errorf("pc digest = %#x, want %#x", fc.PCDigest, wantDig)
	}
	if fc.WDigest != 1^2^3^4 {
		t.Errorf("wdata digest = %#x", fc.WDigest)
	}
	if f.Stats.FusionRatio() != 4 {
		t.Errorf("fusion ratio = %v", f.Stats.FusionRatio())
	}
}

func TestNDEsGoAheadWithoutBreakingFusion(t *testing.T) {
	f := NewFuser(Config{MaxFuse: 100, StateFlushAge: 1000}, 0)
	recs := []event.Record{
		commit(1, 0x100),
		{Seq: 1, Core: 0, Ev: &event.Interrupt{Cause: 7, PC: 0x104}},
		commit(2, 0x200),
	}
	out := f.Cycle(recs, tokens(len(recs), 0))
	ndes := 0
	for _, it := range out {
		if it.IsNDE() {
			ndes++
			tag, ev, err := wire.DecodeNDE(it)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Kind() != event.KindInterrupt || tag != 1 {
				t.Errorf("NDE = %v tag %d", ev.Kind(), tag)
			}
		}
		if it.IsFused() {
			t.Error("decoupled fusion flushed on an NDE")
		}
	}
	if ndes != 1 {
		t.Errorf("NDEs ahead = %d, want 1", ndes)
	}
	if f.Stats.Breaks != 0 {
		t.Errorf("breaks = %d in decoupled mode", f.Stats.Breaks)
	}

	// Order-coupled mode must break instead.
	fc := NewFuser(Config{MaxFuse: 100, CoupleOrder: true, StateFlushAge: 1000}, 0)
	out = fc.Cycle(recs, tokens(len(recs), 0))
	sawFlush := false
	for _, it := range out {
		if it.IsFused() {
			sawFlush = true
		}
	}
	if !sawFlush || fc.Stats.Breaks != 1 {
		t.Errorf("coupled mode: flush=%v breaks=%d", sawFlush, fc.Stats.Breaks)
	}
}

func TestSkippedCommitGetsPreApplyTag(t *testing.T) {
	f := NewFuser(DefaultConfig(), 0)
	mmio := event.Record{Seq: 5, Core: 0, Ev: &event.InstrCommit{
		PC: 0x500, Flags: event.CommitSkip | event.CommitRfWen, Wdest: 3, Wdata: 9,
	}}
	out := f.Cycle([]event.Record{mmio}, tokens(1, 0))
	if len(out) != 1 || !out[0].IsNDE() {
		t.Fatalf("skip commit items = %v", out)
	}
	tag, _, err := wire.DecodeNDE(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if tag != 4 {
		t.Errorf("skip commit tag = %d, want seq-1 = 4", tag)
	}
}

func TestStateDifferencingChain(t *testing.T) {
	f := NewFuser(Config{MaxFuse: 1000, StateFlushAge: 1}, 0)
	s1 := &event.CSRState{Mstatus: 0x8, Mcycle: 1}
	s2 := &event.CSRState{Mstatus: 0x8, Mcycle: 2}

	out1 := f.Cycle([]event.Record{{Seq: 1, Ev: s1}}, tokens(1, 0))
	if len(out1) != 1 || !out1[0].IsNDE() {
		t.Fatalf("first snapshot should be a whole tagged event, got %v", out1)
	}
	out2 := f.Cycle([]event.Record{{Seq: 2, Ev: s2}}, tokens(1, 1))
	if len(out2) != 1 || out2[0].Type < wire.TypeDiffBase {
		t.Fatalf("second snapshot should be a diff, got %v", out2)
	}
	tag, ev, err := wire.DecodeDiff(out2[0], s1)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 2 || !event.Equal(ev, s2) {
		t.Errorf("diff completion: tag=%d", tag)
	}
	if len(out2[0].Payload) >= event.SizeOf(event.KindCSRState) {
		t.Error("diff did not shrink the snapshot")
	}
	if f.Stats.Diffs != 1 || f.Stats.RawState != 1 {
		t.Errorf("stats = %+v", f.Stats)
	}
}

func TestFlushEmitsOpenWindow(t *testing.T) {
	f := NewFuser(DefaultConfig(), 0)
	f.Cycle([]event.Record{commit(1, 0x100)}, tokens(1, 0))
	out := f.Flush()
	found := false
	for _, it := range out {
		if it.IsFused() {
			fc, _ := wire.DecodeFused(it)
			if fc.Count == 1 && fc.LastPC == 0x100 {
				found = true
			}
		}
	}
	if !found {
		t.Error("Flush did not emit the open window")
	}
}

func TestStartTokenTracksWindow(t *testing.T) {
	f := NewFuser(Config{MaxFuse: 2, StateFlushAge: 1000}, 0)
	out := f.Cycle([]event.Record{commit(1, 4), commit(2, 8)}, []uint64{70, 71})
	for _, it := range out {
		if it.IsFused() {
			fc, _ := wire.DecodeFused(it)
			if fc.StartToken != 70 {
				t.Errorf("start token = %d, want 70", fc.StartToken)
			}
		}
	}
	// Next window starts with the next record's token.
	out = f.Cycle([]event.Record{commit(3, 12), commit(4, 16)}, []uint64{90, 91})
	for _, it := range out {
		if it.IsFused() {
			fc, _ := wire.DecodeFused(it)
			if fc.StartToken != 90 {
				t.Errorf("second window start token = %d, want 90", fc.StartToken)
			}
		}
	}
}
