package squash

import (
	"fmt"
	"sync/atomic"

	"repro/internal/checker"
	"repro/internal/derive"
	"repro/internal/event"
	"repro/internal/wire"
)

// Desquasher is the software-side counterpart of the Fuser: it restores the
// checking order from order tags (paper §4.3 "Reordering"), completes
// differenced events from the last-seen instance, steps the reference model
// through fused commit windows, and verifies the per-window digests.
type Desquasher struct {
	Chk     *checker.Checker
	Enabled [event.NumKinds]bool

	// OnWindow, when set, is invoked before each fused window is processed
	// — the co-simulation uses it to take the Replay checkpoint.
	OnWindow func(core uint8, fc wire.FusedCommit)

	cores []*coreDesq

	// LateSkipped counts tagged checks that arrived after the reference
	// model passed their tag and were completed but not compared (rare;
	// only possible around end-of-run flushes). Atomic so the executed
	// pipeline's per-core consumer goroutines can bump it concurrently —
	// every other Desquasher field is either read-only after construction
	// or owned by exactly one core's stream.
	LateSkipped atomic.Uint64
}

type taggedItem struct {
	tag    uint64
	rec    event.Record
	isSkip bool // a skipped (MMIO) commit: pre-applied at its tag
}

type coreDesq struct {
	cc        *checker.CoreChecker
	lastSeen  [event.NumKinds]event.Event
	queue     []taggedItem
	digestAcc derive.Digest

	// lastWindow tracks the most recent fused window for Replay.
	lastWindow wire.FusedCommit
}

// NewDesquasher wraps a checker.
func NewDesquasher(chk *checker.Checker, enabled [event.NumKinds]bool) *Desquasher {
	d := &Desquasher{Chk: chk, Enabled: enabled}
	for _, cc := range chk.Cores {
		d.cores = append(d.cores, &coreDesq{cc: cc})
	}
	return d
}

// LastWindow returns the most recent fused window processed for a core —
// Replay's range determination input.
func (d *Desquasher) LastWindow(core uint8) wire.FusedCommit {
	return d.cores[core].lastWindow
}

// Process consumes one wire item in stream order.
func (d *Desquasher) Process(it wire.Item) *checker.Mismatch {
	if int(it.Core) >= len(d.cores) {
		return &checker.Mismatch{Core: it.Core, Detail: "item for unknown core"}
	}
	cd := d.cores[it.Core]

	switch {
	case it.IsNDE():
		tag, ev, err := wire.DecodeNDE(it)
		if err != nil {
			return &checker.Mismatch{Core: it.Core, Detail: err.Error()}
		}
		if stateKind(ev.Kind()) {
			// First-instance state snapshot: seed the completion base.
			cd.lastSeen[ev.Kind()] = ev
		}
		return d.handleTagged(cd, taggedItem{tag: tag, rec: event.Record{Seq: tag, Core: it.Core, Ev: ev},
			isSkip: isSkipCommit(ev)})

	case it.Type >= wire.TypeDiffBase && it.Type < wire.TypeInvalid:
		k, _ := it.Kind()
		tag, ev, err := wire.DecodeDiff(it, cd.lastSeen[k])
		if err != nil {
			return &checker.Mismatch{Core: it.Core, Kind: k, Detail: err.Error()}
		}
		cd.lastSeen[k] = ev
		return d.handleTagged(cd, taggedItem{tag: tag, rec: event.Record{Seq: tag, Core: it.Core, Ev: ev}})

	case it.IsFused():
		fc, err := wire.DecodeFused(it)
		if err != nil {
			return &checker.Mismatch{Core: it.Core, Detail: err.Error()}
		}
		cd.lastWindow = fc
		return d.runFused(cd, fc)

	case it.Type == wire.TypeDigest:
		count, sum, err := wire.DecodeDigest(it)
		if err != nil {
			return &checker.Mismatch{Core: it.Core, Detail: err.Error()}
		}
		want := derive.Digest{Count: count, Sum: sum}
		got := cd.digestAcc
		cd.digestAcc = derive.Digest{}
		if !got.Equal(want) {
			return cd.cc.FailFused(cd.cc.InstrRet(),
				fmt.Sprintf("window event digest: DUT (n=%d,%#x) REF (n=%d,%#x)",
					want.Count, want.Sum, got.Count, got.Sum))
		}
		return nil

	default: // raw item (Trap and friends)
		rec, err := wire.ToRecord(it)
		if err != nil {
			return &checker.Mismatch{Core: it.Core, Detail: err.Error()}
		}
		return cd.cc.Process(rec)
	}
}

func isSkipCommit(ev event.Event) bool {
	ic, ok := ev.(*event.InstrCommit)
	return ok && ic.Flags&event.CommitSkip != 0
}

// handleTagged processes a tagged item now if the reference model is at its
// tag, queues it if the tag is ahead, or completes-without-checking if the
// tag was already passed (possible only for state/hierarchy checks around
// end-of-run flushes).
func (d *Desquasher) handleTagged(cd *coreDesq, ti taggedItem) *checker.Mismatch {
	cur := cd.cc.InstrRet()
	switch {
	case ti.tag > cur:
		cd.queue = append(cd.queue, ti)
		return nil
	case ti.tag == cur:
		return d.applyTagged(cd, ti)
	default: // late
		d.LateSkipped.Add(1)
		return nil
	}
}

func (d *Desquasher) applyTagged(cd *coreDesq, ti taggedItem) *checker.Mismatch {
	return cd.cc.Process(ti.rec)
}

// drainAt processes the first queued item whose tag equals the reference
// model's current position; it reports whether anything was processed.
func (d *Desquasher) drainAt(cd *coreDesq) (*checker.Mismatch, bool) {
	cur := cd.cc.InstrRet()
	for i, ti := range cd.queue {
		if ti.tag == cur {
			cd.queue = append(cd.queue[:i], cd.queue[i+1:]...)
			return d.applyTagged(cd, ti), true
		}
	}
	return nil, false
}

// runFused steps the reference model through a fused commit window,
// applying order-tagged events at their exact positions and accumulating
// the derivable-event digest (paper Fig. 9, software side).
func (d *Desquasher) runFused(cd *coreDesq, fc wire.FusedCommit) *checker.Mismatch {
	if d.OnWindow != nil {
		d.OnWindow(cd.cc.Core, fc)
	}
	var pcDig, wDig uint64
	var lastPC uint64
	steps := uint64(0)

	for cd.cc.InstrRet() < fc.LastSeq {
		if m, acted := d.drainAt(cd); m != nil {
			return m
		} else if acted {
			continue
		}
		ex := cd.cc.StepDigest(&d.Enabled, &cd.digestAcc)
		pcDig ^= ex.PC
		if ex.WroteInt || ex.WroteFp {
			// Mirror the monitor's commit wdata rule (zero unless an
			// integer or FP register was written).
			wDig ^= ex.Wdata
		}
		lastPC = ex.PC
		steps++
	}
	// Boundary items tagged exactly at the window end (interrupts, skipped
	// commits, state diffs) apply now; skips may advance the position and
	// unlock further tags.
	for {
		m, acted := d.drainAt(cd)
		if m != nil {
			return m
		}
		if !acted {
			break
		}
	}

	if steps != fc.Count {
		return cd.cc.FailFused(fc.LastSeq,
			fmt.Sprintf("fused window stepped %d instructions, DUT fused %d", steps, fc.Count))
	}
	if pcDig != fc.PCDigest || lastPC != fc.LastPC {
		return cd.cc.FailFused(fc.LastSeq,
			fmt.Sprintf("fused PC check: DUT (last %#x, xor %#x) REF (last %#x, xor %#x)",
				fc.LastPC, fc.PCDigest, lastPC, pcDig))
	}
	if wDig != fc.WDigest {
		return cd.cc.FailFused(fc.LastSeq,
			fmt.Sprintf("fused writeback digest: DUT %#x REF %#x", fc.WDigest, wDig))
	}
	return nil
}

// Flush processes any remaining queued tagged items at end of run. Items
// still ahead of the reference model (events the DUT emitted after the trap)
// are dropped.
func (d *Desquasher) Flush() *checker.Mismatch {
	for _, cd := range d.cores {
		for {
			m, acted := d.drainAt(cd)
			if m != nil {
				return m
			}
			if !acted {
				break
			}
		}
		cd.queue = nil
	}
	return nil
}
