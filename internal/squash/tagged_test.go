package squash

import (
	"testing"

	"repro/internal/event"
)

// TestTaggedKindDefault pins the default arm added for kindswitch
// exhaustiveness: only the six DUT-specific memory-hierarchy/redirect kinds
// are transmitted ahead with an order tag; everything else is fused or
// derivable.
func TestTaggedKindDefault(t *testing.T) {
	tagged := map[event.Kind]bool{
		event.KindRefill: true, event.KindCMO: true, event.KindL1TLB: true,
		event.KindL2TLB: true, event.KindSbuffer: true, event.KindRedirect: true,
	}
	for k := event.Kind(0); k < event.NumKinds; k++ {
		if got := taggedKind(k); got != tagged[k] {
			t.Errorf("taggedKind(%v) = %v, want %v", k, got, tagged[k])
		}
	}
}
