package analyze_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/arch"
	"repro/internal/dut"
	"repro/internal/trace"
	"repro/internal/workload"
)

func dumpedTrace(t *testing.T, cores int) *bytes.Buffer {
	t.Helper()
	prof := workload.LinuxBoot()
	prof.TargetInstrs = 10_000
	prog := workload.Generate(prof, cores, 13)
	cfg := dut.XiangShanDefault()
	cfg.Cores = cores
	d := dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{})

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		recs, done := d.StepCycle()
		if err := w.WriteCycle(d.CycleCount, recs); err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestOfflineStudyFindsLargeReduction(t *testing.T) {
	buf := dumpedTrace(t, 1)
	r, err := trace.NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyze.Trace(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Events == 0 {
		t.Fatal("empty study")
	}
	if res.Reduction() < 5 {
		t.Errorf("offline reduction = %.1fx, expected fusion+differencing to cut volume hard", res.Reduction())
	}
	if res.Fusion.FusionRatio() < 8 {
		t.Errorf("fusion ratio = %.1f", res.Fusion.FusionRatio())
	}
	out := res.String()
	if !strings.Contains(out, "reduction") || !strings.Contains(out, "CSRState") {
		t.Errorf("report:\n%s", out)
	}
}

func TestOfflineStudyDualCore(t *testing.T) {
	buf := dumpedTrace(t, 2)
	r, err := trace.NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyze.Trace(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fusion.Windows == 0 {
		t.Error("no windows fused on dual-core trace")
	}
}
