// Package analyze performs offline what-if analysis over dumped DUT traces
// — the SQL-backend use case of the tuning toolkit (paper §5): "DiffTest-H
// can also simulate order-decoupled fusion and differencing strategy on the
// software, thereby fully exploiting event correlations and reducing data
// transmission volume."
//
// Given a trace, it replays the record stream through a software-side
// Squash fuser and reports the achievable fusion ratio, the differencing
// savings per state-event kind, and the raw/optimized volume comparison —
// without re-running the DUT.
package analyze

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/event"
	"repro/internal/squash"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Result summarizes the what-if study.
type Result struct {
	Cycles uint64
	Events uint64

	RawBytes       uint64 // per-event baseline wire volume
	OptimizedBytes uint64 // volume after order-decoupled fusion + differencing

	Fusion squash.Stats

	// Per-kind accounting.
	RawByKind  [event.NumKinds]uint64
	DiffByKind [event.NumKinds]uint64
}

// Reduction returns the data-volume reduction factor.
func (r *Result) Reduction() float64 {
	if r.OptimizedBytes == 0 {
		return 0
	}
	return float64(r.RawBytes) / float64(r.OptimizedBytes)
}

// String renders the study as a report.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Offline Squash study: %d cycles, %d events ===\n", r.Cycles, r.Events)
	fmt.Fprintf(&sb, "raw per-event volume     : %d bytes\n", r.RawBytes)
	fmt.Fprintf(&sb, "fused+differenced volume : %d bytes (%.1fx reduction)\n",
		r.OptimizedBytes, r.Reduction())
	fmt.Fprintf(&sb, "fusion ratio             : %.1f commits/window (%d windows, %d NDEs ahead)\n",
		r.Fusion.FusionRatio(), r.Fusion.Windows, r.Fusion.NDEsAhead)

	var rows [][]string
	for k := event.Kind(0); k < event.NumKinds; k++ {
		if r.RawByKind[k] == 0 {
			continue
		}
		cell := "fused into digest"
		if r.DiffByKind[k] > 0 {
			cell = fmt.Sprintf("%d B (%.1fx)", r.DiffByKind[k],
				float64(r.RawByKind[k])/float64(r.DiffByKind[k]))
		}
		rows = append(rows, []string{
			k.String(), fmt.Sprint(r.RawByKind[k]), cell,
		})
	}
	sb.WriteString(stats.Table([]string{"Kind", "Raw bytes", "After differencing"}, rows))
	return sb.String()
}

// Trace replays a dumped trace through a software-side fuser (per core) and
// measures the achievable volume reduction.
func Trace(r *trace.Reader) (*Result, error) {
	res := &Result{}
	fusers := map[uint8]*squash.Fuser{}
	tok := uint64(0)

	account := func(items []wire.Item) {
		for _, it := range items {
			res.OptimizedBytes += uint64(it.WireSize())
			if k, ok := it.Kind(); ok && it.Type >= wire.TypeDiffBase {
				res.DiffByKind[k] += uint64(it.WireSize())
			}
		}
	}

	for {
		_, recs, err := r.ReadCycle()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Cycles++
		perCore := map[uint8][]event.Record{}
		perTok := map[uint8][]uint64{}
		for _, rec := range recs {
			res.Events++
			k := rec.Ev.Kind()
			sz := uint64(event.SizeOf(k)) + 4 // per-event transfer header
			res.RawBytes += sz
			res.RawByKind[k] += sz
			perCore[rec.Core] = append(perCore[rec.Core], rec)
			perTok[rec.Core] = append(perTok[rec.Core], tok)
			tok++
		}
		for core, coreRecs := range perCore {
			f := fusers[core]
			if f == nil {
				f = squash.NewFuser(squash.DefaultConfig(), core)
				fusers[core] = f
			}
			account(f.Cycle(coreRecs, perTok[core]))
		}
	}
	for _, f := range fusers {
		account(f.Flush())
		res.Fusion.Windows += f.Stats.Windows
		res.Fusion.FusedCommits += f.Stats.FusedCommits
		res.Fusion.Breaks += f.Stats.Breaks
		res.Fusion.NDEsAhead += f.Stats.NDEsAhead
		res.Fusion.Diffs += f.Stats.Diffs
		res.Fusion.DiffBytes += f.Stats.DiffBytes
		res.Fusion.RawState += f.Stats.RawState
	}
	return res, nil
}
