package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Table is an in-memory relation.
type Table struct {
	Name  string
	Cols  []ColumnDef
	Rows  [][]Value
	index map[string]int
}

// DB is an in-memory SQL database.
type DB struct {
	tables map[string]*Table
}

// Open returns an empty database.
func Open() *DB { return &DB{tables: make(map[string]*Table)} }

// Result is a query result set.
type Result struct {
	Cols []string
	Rows [][]Value
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			switch n := v.(type) {
			case float64:
				cells[j] = fmt.Sprintf("%.3f", n)
			case nil:
				cells[j] = "NULL"
			default:
				cells[j] = fmt.Sprint(v)
			}
		}
		rows[i] = cells
	}
	return stats.Table(r.Cols, rows)
}

// Exec parses and executes one statement.
func (db *DB) Exec(query string) (*Result, error) {
	s, err := parse(query)
	if err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case createStmt:
		return db.execCreate(st)
	case insertStmt:
		return db.execInsert(st)
	case selectStmt:
		return db.execSelect(st)
	}
	return nil, fmt.Errorf("sql: unhandled statement %T", s)
}

// MustExec executes and panics on error (test/tool convenience).
func (db *DB) MustExec(query string) *Result {
	r, err := db.Exec(query)
	if err != nil {
		panic(err)
	}
	return r
}

// CreateTable declares a table programmatically (fast path for recorders).
func (db *DB) CreateTable(name string, cols ...ColumnDef) (*Table, error) {
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("sql: table %q already exists", name)
	}
	t := &Table{Name: name, Cols: cols, index: make(map[string]int)}
	for i, c := range cols {
		t.index[strings.ToLower(c.Name)] = i
	}
	db.tables[key] = t
	return t, nil
}

// Insert appends a row programmatically without SQL parsing — the hot path
// used by transmission-log recording.
func (db *DB) Insert(table string, vals ...Value) error {
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("sql: no table %q", table)
	}
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("sql: table %q wants %d values, got %d", table, len(t.Cols), len(vals))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := coerce(v, t.Cols[i].Type)
		if err != nil {
			return fmt.Errorf("sql: column %q: %w", t.Cols[i].Name, err)
		}
		row[i] = cv
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// Tables lists table names.
func (db *DB) Tables() []string {
	var names []string
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

func coerce(v Value, t ColType) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TypeInteger:
		switch n := v.(type) {
		case int64:
			return n, nil
		case int:
			return int64(n), nil
		case uint64:
			return int64(n), nil
		case float64:
			return int64(n), nil
		}
	case TypeReal:
		switch n := v.(type) {
		case float64:
			return n, nil
		case int64:
			return float64(n), nil
		case int:
			return float64(n), nil
		case uint64:
			return float64(n), nil
		}
	case TypeText:
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("cannot store %T as %v", v, t)
}

func (db *DB) execCreate(st createStmt) (*Result, error) {
	if _, err := db.CreateTable(st.table, st.cols...); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) execInsert(st insertStmt) (*Result, error) {
	t, ok := db.tables[strings.ToLower(st.table)]
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.table)
	}
	env := rowEnv{table: t}
	for _, rowExprs := range st.rows {
		vals := make([]Value, len(rowExprs))
		for i, ex := range rowExprs {
			v, err := eval(ex, &env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := db.Insert(st.table, vals...); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

func (db *DB) execSelect(st selectStmt) (*Result, error) {
	t, ok := db.tables[strings.ToLower(st.table)]
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.table)
	}

	// WHERE filter.
	rows := t.Rows
	if st.where != nil {
		var kept [][]Value
		for _, row := range rows {
			env := rowEnv{table: t, row: row}
			v, err := eval(st.where, &env)
			if err != nil {
				return nil, err
			}
			b, err := truthy(v)
			if err != nil {
				return nil, err
			}
			if b {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	// SELECT * expansion.
	items := st.items
	if st.star {
		for _, c := range t.Cols {
			items = append(items, selectItem{ex: column{name: c.Name}})
		}
	}

	res := &Result{}
	for _, it := range items {
		if it.alias != "" {
			res.Cols = append(res.Cols, it.alias)
		} else {
			res.Cols = append(res.Cols, renderExpr(it.ex))
		}
	}

	// ORDER BY may reference select-item aliases; substitute them.
	aliases := make(map[string]expr)
	for _, it := range items {
		if it.alias != "" {
			aliases[strings.ToLower(it.alias)] = it.ex
		}
	}
	for i, k := range st.orderBy {
		if c, ok := k.ex.(column); ok {
			if sub, found := aliases[strings.ToLower(c.name)]; found {
				st.orderBy[i].ex = sub
			}
		}
	}

	aggregate := len(st.groupBy) > 0
	for _, it := range items {
		if hasAggregate(it.ex) {
			aggregate = true
		}
	}
	for _, k := range st.orderBy {
		if hasAggregate(k.ex) {
			aggregate = true
		}
	}

	type outRow struct {
		vals []Value
		keys []Value
	}
	var out []outRow

	produce := func(env *rowEnv) error {
		or := outRow{}
		for _, it := range items {
			v, err := eval(it.ex, env)
			if err != nil {
				return err
			}
			or.vals = append(or.vals, v)
		}
		for _, k := range st.orderBy {
			v, err := eval(k.ex, env)
			if err != nil {
				return err
			}
			or.keys = append(or.keys, v)
		}
		out = append(out, or)
		return nil
	}

	if aggregate {
		groups, order, err := groupRows(t, rows, st.groupBy)
		if err != nil {
			return nil, err
		}
		for _, key := range order {
			g := groups[key]
			env := rowEnv{table: t, group: g}
			if len(g) > 0 {
				env.row = g[0]
			}
			if err := produce(&env); err != nil {
				return nil, err
			}
		}
	} else {
		for _, row := range rows {
			env := rowEnv{table: t, row: row}
			if err := produce(&env); err != nil {
				return nil, err
			}
		}
	}

	if len(st.orderBy) > 0 {
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			for k := range st.orderBy {
				c, err := compare(out[i].keys[k], out[j].keys[k])
				if err != nil {
					sortErr = err
					return false
				}
				if c == 0 {
					continue
				}
				if st.orderBy[k].desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if st.limit >= 0 && len(out) > st.limit {
		out = out[:st.limit]
	}
	for _, or := range out {
		res.Rows = append(res.Rows, or.vals)
	}
	return res, nil
}

// groupRows partitions rows by the GROUP BY columns, preserving first-seen
// group order. With no GROUP BY it returns a single group of all rows.
func groupRows(t *Table, rows [][]Value, by []string) (map[string][][]Value, []string, error) {
	groups := make(map[string][][]Value)
	var order []string
	if len(by) == 0 {
		groups[""] = rows
		return groups, []string{""}, nil
	}
	idx := make([]int, len(by))
	for i, name := range by {
		j, ok := t.index[strings.ToLower(name)]
		if !ok {
			return nil, nil, fmt.Errorf("sql: unknown GROUP BY column %q", name)
		}
		idx[i] = j
	}
	for _, row := range rows {
		var key strings.Builder
		for _, j := range idx {
			fmt.Fprintf(&key, "%v\x00", row[j])
		}
		k := key.String()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	return groups, order, nil
}
