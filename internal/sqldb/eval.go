package sqldb

import (
	"fmt"
	"strings"
)

// rowEnv resolves column references during evaluation: a single row, or a
// group of rows for aggregate evaluation.
type rowEnv struct {
	table *Table
	row   []Value   // representative row (nil for pure aggregates)
	group [][]Value // rows of the current group (nil outside aggregation)
}

func (e *rowEnv) col(name string) (Value, error) {
	i, ok := e.table.index[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sql: unknown column %q in table %q", name, e.table.Name)
	}
	if e.row == nil {
		return nil, fmt.Errorf("sql: column %q referenced outside GROUP BY", name)
	}
	return e.row[i], nil
}

func eval(ex expr, env *rowEnv) (Value, error) {
	switch x := ex.(type) {
	case literal:
		return x.v, nil
	case column:
		return env.col(x.name)
	case unary:
		v, err := eval(x.x, env)
		if err != nil {
			return nil, err
		}
		switch x.op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("sql: cannot negate %T", v)
		case "NOT":
			b, err := truthy(v)
			if err != nil {
				return nil, err
			}
			return boolVal(!b), nil
		}
	case binary:
		return evalBinary(x, env)
	case call:
		return evalCall(x, env)
	}
	return nil, fmt.Errorf("sql: cannot evaluate %T", ex)
}

func boolVal(b bool) Value {
	if b {
		return int64(1)
	}
	return int64(0)
}

func truthy(v Value) (bool, error) {
	switch n := v.(type) {
	case int64:
		return n != 0, nil
	case float64:
		return n != 0, nil
	case nil:
		return false, nil
	}
	return false, fmt.Errorf("sql: %T is not a boolean", v)
}

func evalBinary(x binary, env *rowEnv) (Value, error) {
	if x.op == "AND" || x.op == "OR" {
		lb, err := eval(x.l, env)
		if err != nil {
			return nil, err
		}
		l, err := truthy(lb)
		if err != nil {
			return nil, err
		}
		if x.op == "AND" && !l {
			return boolVal(false), nil
		}
		if x.op == "OR" && l {
			return boolVal(true), nil
		}
		rb, err := eval(x.r, env)
		if err != nil {
			return nil, err
		}
		r, err := truthy(rb)
		if err != nil {
			return nil, err
		}
		return boolVal(r), nil
	}

	l, err := eval(x.l, env)
	if err != nil {
		return nil, err
	}
	r, err := eval(x.r, env)
	if err != nil {
		return nil, err
	}

	switch x.op {
	case "=", "!=", "<", "<=", ">", ">=":
		c, err := compare(l, r)
		if err != nil {
			return nil, err
		}
		var b bool
		switch x.op {
		case "=":
			b = c == 0
		case "!=":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return boolVal(b), nil
	}
	return arith(x.op, l, r)
}

func compare(l, r Value) (int, error) {
	if ls, ok := l.(string); ok {
		rs, ok := r.(string)
		if !ok {
			return 0, fmt.Errorf("sql: comparing string with %T", r)
		}
		return strings.Compare(ls, rs), nil
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return 0, fmt.Errorf("sql: cannot compare %T with %T", l, r)
	}
	switch {
	case lf < rf:
		return -1, nil
	case lf > rf:
		return 1, nil
	}
	return 0, nil
}

func toFloat(v Value) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}

func arith(op string, l, r Value) (Value, error) {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("sql: division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("sql: modulo by zero")
			}
			return li % ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("sql: arithmetic on %T and %T", l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("sql: division by zero")
		}
		return lf / rf, nil
	case "%":
		return nil, fmt.Errorf("sql: %% needs integers")
	}
	return nil, fmt.Errorf("sql: unknown operator %q", op)
}

func evalCall(x call, env *rowEnv) (Value, error) {
	if x.fn == "ABS" {
		v, err := eval(x.arg, env)
		if err != nil {
			return nil, err
		}
		switch n := v.(type) {
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		}
		return nil, fmt.Errorf("sql: ABS of %T", v)
	}

	if env.group == nil {
		return nil, fmt.Errorf("sql: aggregate %s outside an aggregating query", x.fn)
	}
	if x.fn == "COUNT" && x.star {
		return int64(len(env.group)), nil
	}

	var (
		count   int64
		sum     float64
		intOnly = true
		isum    int64
		minV    Value
		maxV    Value
	)
	for _, row := range env.group {
		sub := rowEnv{table: env.table, row: row}
		v, err := eval(x.arg, &sub)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		count++
		switch n := v.(type) {
		case int64:
			isum += n
			sum += float64(n)
		case float64:
			intOnly = false
			sum += n
		case string:
			intOnly = false
		}
		if minV == nil {
			minV, maxV = v, v
			continue
		}
		if c, err := compare(v, minV); err == nil && c < 0 {
			minV = v
		}
		if c, err := compare(v, maxV); err == nil && c > 0 {
			maxV = v
		}
	}

	switch x.fn {
	case "COUNT":
		return count, nil
	case "SUM":
		if count == 0 {
			return nil, nil
		}
		if intOnly {
			return isum, nil
		}
		return sum, nil
	case "AVG":
		if count == 0 {
			return nil, nil
		}
		return sum / float64(count), nil
	case "MIN":
		return minV, nil
	case "MAX":
		return maxV, nil
	}
	return nil, fmt.Errorf("sql: unknown function %q", x.fn)
}

// hasAggregate reports whether ex contains an aggregate call.
func hasAggregate(ex expr) bool {
	switch x := ex.(type) {
	case call:
		return x.fn != "ABS" || x.arg != nil && hasAggregate(x.arg)
	case unary:
		return hasAggregate(x.x)
	case binary:
		return hasAggregate(x.l) || hasAggregate(x.r)
	}
	return false
}

// renderExpr names an unaliased select item.
func renderExpr(ex expr) string {
	switch x := ex.(type) {
	case literal:
		return fmt.Sprint(x.v)
	case column:
		return x.name
	case unary:
		return x.op + renderExpr(x.x)
	case binary:
		return renderExpr(x.l) + x.op + renderExpr(x.r)
	case call:
		if x.star {
			return x.fn + "(*)"
		}
		return x.fn + "(" + renderExpr(x.arg) + ")"
	}
	return "?"
}
