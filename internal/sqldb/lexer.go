// Package sqldb is a small in-memory SQL engine used by the DiffTest-H
// tuning toolkit for offline analysis of transmission logs (paper §5, "SQL
// analysis support"): co-simulation runs record per-event transmission rows
// into tables, and queries over them expose event correlations that guide
// fusion and differencing strategy.
//
// Supported dialect:
//
//	CREATE TABLE t (col INTEGER|REAL|TEXT, ...)
//	INSERT INTO t VALUES (v, ...), (v, ...)
//	SELECT expr [AS name], ... FROM t
//	       [WHERE expr] [GROUP BY col, ...]
//	       [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//
// with the aggregates COUNT(*), COUNT(x), SUM, AVG, MIN, MAX, integer/real
// arithmetic, comparisons, AND/OR/NOT, and string literals.
package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * + - / % = < > <= >= != <>
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
		} else if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

var twoCharSymbols = []string{"<=", ">=", "!=", "<>"}

func (l *lexer) lexSymbol() error {
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
