package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return s, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// acceptKw consumes an identifier keyword (case-insensitive).
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

// accept consumes a symbol token.
func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return p.errf("expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (stmt, error) {
	switch {
	case p.acceptKw("CREATE"):
		return p.createTable()
	case p.acceptKw("INSERT"):
		return p.insert()
	case p.acceptKw("SELECT"):
		return p.selectStmt()
	}
	return nil, p.errf("expected CREATE, INSERT, or SELECT, found %q", p.peek().text)
}

func (p *parser) createTable() (stmt, error) {
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		var ct ColType
		switch strings.ToUpper(tname) {
		case "INTEGER", "INT", "BIGINT":
			ct = TypeInteger
		case "REAL", "FLOAT", "DOUBLE":
			ct = TypeReal
		case "TEXT", "VARCHAR", "STRING":
			ct = TypeText
		default:
			return nil, p.errf("unknown column type %q", tname)
		}
		cols = append(cols, ColumnDef{Name: cname, Type: ct})
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return createStmt{table: name, cols: cols}, nil
}

func (p *parser) insert() (stmt, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]expr
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []expr
		for {
			ex, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, ex)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(",") {
			continue
		}
		break
	}
	return insertStmt{table: name, rows: rows}, nil
}

func (p *parser) selectStmt() (stmt, error) {
	s := selectStmt{limit: -1}
	if p.accept("*") {
		s.star = true
	} else {
		for {
			ex, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := selectItem{ex: ex}
			if p.acceptKw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.alias = alias
			}
			s.items = append(s.items, item)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.table = name

	if p.acceptKw("WHERE") {
		ex, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.where = ex
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.groupBy = append(s.groupBy, col)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			ex, err := p.expr()
			if err != nil {
				return nil, err
			}
			key := orderKey{ex: ex}
			if p.acceptKw("DESC") {
				key.desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.orderBy = append(s.orderBy, key)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("LIMIT wants a number, found %q", t.text)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		s.limit = n
	}
	return s, nil
}

// Expression grammar (precedence climbing):
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((= != < <= > >=) add)?
//	add  := mul ((+ -) mul)*
//	mul  := un  ((* / %) un)*
//	un   := - un | primary
//	prim := literal | ident | ident '(' args ')' | '(' or ')'
func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = binary{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = binary{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) notExpr() (expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return unary{op: "NOT", x: x}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]string{"=": "=", "!=": "!=", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

func (p *parser) cmpExpr() (expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return binary{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = binary{op: "+", l: l, r: r}
		case p.accept("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = binary{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = binary{op: op, l: l, r: r}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	if p.accept("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return unary{op: "-", x: x}, nil
	}
	return p.primary()
}

var aggFns = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "ABS": true}

func (p *parser) primary() (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return literal{v: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return literal{v: n}, nil

	case tokString:
		p.pos++
		return literal{v: t.text}, nil

	case tokIdent:
		up := strings.ToUpper(t.text)
		if aggFns[up] {
			p.pos++
			if err := p.expect("("); err != nil {
				return nil, err
			}
			c := call{fn: up}
			if p.accept("*") {
				c.star = true
			} else {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.arg = arg
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return c, nil
		}
		p.pos++
		return column{name: t.text}, nil

	case tokSymbol:
		if t.text == "(" {
			p.pos++
			ex, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return ex, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
