package sqldb

import (
	"strings"
	"testing"
)

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	r, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return r
}

func seeded(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, "CREATE TABLE tx (cycle INTEGER, kind TEXT, bytes INTEGER, lat REAL)")
	mustExec(t, db, `INSERT INTO tx VALUES
		(1, 'commit', 32, 0.5), (1, 'load', 40, 0.7), (2, 'commit', 32, 0.4),
		(2, 'csr', 160, 1.2), (3, 'commit', 32, 0.6), (3, 'load', 40, 0.9),
		(4, 'vec', 1360, 4.0)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, "SELECT * FROM tx")
	if len(r.Rows) != 7 || len(r.Cols) != 4 {
		t.Fatalf("got %dx%d", len(r.Rows), len(r.Cols))
	}
}

func TestWhere(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, "SELECT kind, bytes FROM tx WHERE bytes > 40 AND cycle >= 2")
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", len(r.Rows), r)
	}
	r = mustExec(t, db, "SELECT cycle FROM tx WHERE kind = 'load' OR kind = 'vec'")
	if len(r.Rows) != 3 {
		t.Fatalf("or-filter rows = %d", len(r.Rows))
	}
	r = mustExec(t, db, "SELECT cycle FROM tx WHERE NOT (kind = 'commit')")
	if len(r.Rows) != 4 {
		t.Fatalf("not-filter rows = %d", len(r.Rows))
	}
}

func TestAggregates(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, "SELECT COUNT(*), SUM(bytes), AVG(lat), MIN(bytes), MAX(bytes) FROM tx")
	row := r.Rows[0]
	if row[0].(int64) != 7 {
		t.Errorf("count = %v", row[0])
	}
	if row[1].(int64) != 32+40+32+160+32+40+1360 {
		t.Errorf("sum = %v", row[1])
	}
	if row[3].(int64) != 32 || row[4].(int64) != 1360 {
		t.Errorf("min/max = %v/%v", row[3], row[4])
	}
	avg := row[2].(float64)
	if avg < 1.18 || avg > 1.20 {
		t.Errorf("avg = %v", avg)
	}
}

func TestGroupByOrderByLimit(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, `SELECT kind, COUNT(*) AS n, SUM(bytes) AS vol FROM tx
		GROUP BY kind ORDER BY vol DESC LIMIT 2`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(r.Rows), r)
	}
	if r.Rows[0][0].(string) != "vec" || r.Rows[0][2].(int64) != 1360 {
		t.Errorf("top group = %v", r.Rows[0])
	}
	if r.Cols[1] != "n" || r.Cols[2] != "vol" {
		t.Errorf("aliases = %v", r.Cols)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE x (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO x VALUES (10, 3)")
	r := mustExec(t, db, "SELECT a + b * 2, (a + b) * 2, a / b, a % b, -a FROM x")
	row := r.Rows[0]
	want := []int64{16, 26, 3, 1, -10}
	for i, w := range want {
		if row[i].(int64) != w {
			t.Errorf("expr %d = %v, want %d", i, row[i], w)
		}
	}
	r = mustExec(t, db, "SELECT a * 1.5 FROM x")
	if r.Rows[0][0].(float64) != 15 {
		t.Errorf("mixed arith = %v", r.Rows[0][0])
	}
}

func TestStringEscapes(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE s (v TEXT)")
	mustExec(t, db, "INSERT INTO s VALUES ('it''s')")
	r := mustExec(t, db, "SELECT v FROM s")
	if r.Rows[0][0].(string) != "it's" {
		t.Errorf("escaped string = %q", r.Rows[0][0])
	}
}

func TestProgrammaticInsert(t *testing.T) {
	db := Open()
	if _, err := db.CreateTable("log",
		ColumnDef{"cycle", TypeInteger}, ColumnDef{"kind", TypeText}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Insert("log", i, "k"); err != nil {
			t.Fatal(err)
		}
	}
	r := mustExec(t, db, "SELECT COUNT(*) FROM log WHERE cycle % 2 = 0")
	if r.Rows[0][0].(int64) != 50 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
}

func TestErrors(t *testing.T) {
	db := seeded(t)
	bad := []string{
		"SELECT nope FROM tx",
		"SELECT * FROM missing",
		"CREATE TABLE tx (a INTEGER)", // duplicate
		"INSERT INTO tx VALUES (1)",   // arity
		"SELECT * FROM tx WHERE",      // parse
		"SELECT 1/0 FROM tx",          // div by zero
		"FROB tx",                     // unknown statement
		"SELECT bytes FROM tx GROUP BY bogus",
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q did not fail", q)
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, "select Kind, count(*) from TX group by kind order by count(*) desc limit 1")
	if r.Rows[0][0].(string) != "commit" {
		t.Errorf("top kind = %v", r.Rows[0][0])
	}
}

func TestResultRendering(t *testing.T) {
	db := seeded(t)
	out := mustExec(t, db, "SELECT kind, COUNT(*) FROM tx GROUP BY kind").String()
	if !strings.Contains(out, "commit") || !strings.Contains(out, "kind") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestTablesList(t *testing.T) {
	db := seeded(t)
	if got := db.Tables(); len(got) != 1 || got[0] != "tx" {
		t.Errorf("tables = %v", got)
	}
}

func TestMultiKeyOrderBy(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE m (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO m VALUES (1, 2), (1, 1), (0, 9), (1, 0)")
	r := mustExec(t, db, "SELECT a, b FROM m ORDER BY a DESC, b ASC")
	want := [][2]int64{{1, 0}, {1, 1}, {1, 2}, {0, 9}}
	for i, w := range want {
		if r.Rows[i][0].(int64) != w[0] || r.Rows[i][1].(int64) != w[1] {
			t.Fatalf("row %d = %v, want %v", i, r.Rows[i], w)
		}
	}
}

func TestAggregateInExpression(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, "SELECT SUM(bytes) / COUNT(*) FROM tx")
	if r.Rows[0][0].(int64) != (32+40+32+160+32+40+1360)/7 {
		t.Errorf("mean bytes = %v", r.Rows[0][0])
	}
}

func TestLimitZeroAndAbs(t *testing.T) {
	db := seeded(t)
	if r := mustExec(t, db, "SELECT * FROM tx LIMIT 0"); len(r.Rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(r.Rows))
	}
	r := mustExec(t, db, "SELECT ABS(0 - bytes) FROM tx WHERE kind = 'vec'")
	if r.Rows[0][0].(int64) != 1360 {
		t.Errorf("abs = %v", r.Rows[0][0])
	}
}

func TestWhereOnReal(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, "SELECT COUNT(*) FROM tx WHERE lat >= 0.9")
	if r.Rows[0][0].(int64) != 3 {
		t.Errorf("real filter count = %v", r.Rows[0][0])
	}
}

func TestGroupByTwoColumns(t *testing.T) {
	db := seeded(t)
	r := mustExec(t, db, "SELECT cycle, kind, COUNT(*) FROM tx GROUP BY cycle, kind")
	if len(r.Rows) != 7 { // every (cycle,kind) pair is unique in the seed data
		t.Errorf("groups = %d", len(r.Rows))
	}
}
