package sqldb

// Value is a dynamically typed SQL value: int64, float64, string, or nil.
type Value any

// Expressions.

type expr interface{ isExpr() }

type literal struct{ v Value }

type column struct{ name string }

type unary struct {
	op string // "-" or "NOT"
	x  expr
}

type binary struct {
	op   string // + - * / % = != < <= > >= AND OR
	l, r expr
}

type call struct {
	fn   string // COUNT SUM AVG MIN MAX ABS
	star bool   // COUNT(*)
	arg  expr
}

func (literal) isExpr() {}
func (column) isExpr()  {}
func (unary) isExpr()   {}
func (binary) isExpr()  {}
func (call) isExpr()    {}

// Statements.

type stmt interface{ isStmt() }

type createStmt struct {
	table string
	cols  []ColumnDef
}

type insertStmt struct {
	table string
	rows  [][]expr
}

type selectItem struct {
	ex    expr
	alias string
}

type orderKey struct {
	ex   expr
	desc bool
}

type selectStmt struct {
	items   []selectItem
	star    bool
	table   string
	where   expr
	groupBy []string
	orderBy []orderKey
	limit   int // -1 = no limit
}

func (createStmt) isStmt() {}
func (insertStmt) isStmt() {}
func (selectStmt) isStmt() {}

// ColumnDef declares one table column.
type ColumnDef struct {
	Name string
	Type ColType
}

// ColType is a column's declared type.
type ColType uint8

// Column types.
const (
	TypeInteger ColType = iota
	TypeReal
	TypeText
)

// String returns the SQL name of the type.
func (t ColType) String() string {
	switch t {
	case TypeInteger:
		return "INTEGER"
	case TypeReal:
		return "REAL"
	default:
		return "TEXT"
	}
}
