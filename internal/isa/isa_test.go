package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// immRange returns the representable immediate span for op's format.
func immFor(op Opcode, r *rand.Rand) int64 {
	switch op {
	case OpLUI, OpAUIPC:
		return int64(int32(r.Uint32())) &^ 0xFFF
	case OpJAL:
		return (r.Int63n(1<<20) - 1<<19) &^ 1
	case OpSLLI, OpSRLI, OpSRAI:
		return r.Int63n(64)
	case OpSLLIW, OpSRLIW, OpSRAIW:
		return r.Int63n(32)
	default:
		switch ClassOf(op) {
		case ClassBranch:
			return (r.Int63n(1<<12) - 1<<11) &^ 1
		default:
			return r.Int63n(1<<12) - 1<<11
		}
	}
}

func randInst(r *rand.Rand) Inst {
	for {
		op := Opcode(1 + r.Intn(NumOpcodes))
		in := Inst{
			Op:  op,
			Rd:  uint8(r.Intn(32)),
			Rs1: uint8(r.Intn(32)),
			Rs2: uint8(r.Intn(32)),
			Imm: immFor(op, r),
		}
		if ClassOf(op) == ClassCSR {
			in.CSR = KnownCSRs[r.Intn(len(KnownCSRs))]
		}
		return in
	}
}

// normalize zeroes fields that a given format does not encode so that a
// round-trip comparison is meaningful.
func normalize(in Inst) Inst {
	in.Raw = 0
	switch in.Op {
	case OpLUI, OpAUIPC, OpJAL:
		in.Rs1, in.Rs2 = 0, 0
	case OpJALR:
		in.Rs2 = 0
	case OpFENCE, OpECALL, OpEBREAK, OpMRET, OpWFI:
		in.Rd, in.Rs1, in.Rs2, in.Imm = 0, 0, 0, 0
	case OpFLD, OpVLE, OpHLVD, OpVSETVLI:
		in.Rs2 = 0
	case OpFSD, OpVSE, OpHSVD:
		in.Rd = 0
	case OpSLLIW, OpSRLIW, OpSRAIW,
		OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI,
		OpSLLI, OpSRLI, OpSRAI, OpADDIW:
		in.Rs2 = 0
	}
	switch ClassOf(in.Op) {
	case ClassBranch:
		in.Rd = 0
	case ClassLoad:
		in.Rs2 = 0
	case ClassStore:
		in.Rd = 0
	case ClassCSR:
		in.Rs2, in.Imm = 0, 0
	}
	switch in.Op {
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpADDW, OpSUBW, OpSLLW, OpSRLW, OpSRAW,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU,
		OpMULW, OpDIVW, OpDIVUW, OpREMW, OpREMUW,
		OpFADDD, OpFSUBD, OpFMULD, OpFSGNJD, OpFMVXD, OpFMVDX,
		OpVADDVV, OpVXORVV, OpVANDVV, OpVMVVX,
		OpLRD, OpSCD, OpAMOSWAPD, OpAMOADDD, OpAMOXORD, OpAMOANDD, OpAMOORD:
		in.Imm = 0
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		want := normalize(randInst(r))
		w, err := Encode(want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %v (%#08x): %v", want.Op, w, err)
		}
		got = normalize(got)
		if got != want {
			t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v\n  word %#08x", want, got, w)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []uint32{0x00000000, 0xFFFFFFFF, 0x0000007F}
	for _, w := range bad {
		if in, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) = %v, want error", w, in)
		}
	}
}

func TestDecodeKnownEncodings(t *testing.T) {
	// Cross-checked against the RISC-V spec: addi x1, x2, 42.
	in, err := Decode(0x02A10093)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != OpADDI || in.Rd != 1 || in.Rs1 != 2 || in.Imm != 42 {
		t.Errorf("addi decode = %+v", in)
	}
	// beq x5, x6, -8
	w := MustEncode(Inst{Op: OpBEQ, Rs1: 5, Rs2: 6, Imm: -8})
	in, err = Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != -8 {
		t.Errorf("beq imm = %d, want -8", in.Imm)
	}
	// ecall
	in, err = Decode(0x00000073)
	if err != nil || in.Op != OpECALL {
		t.Errorf("ecall decode = %+v, %v", in, err)
	}
	// mret
	in, err = Decode(0x30200073)
	if err != nil || in.Op != OpMRET {
		t.Errorf("mret decode = %+v, %v", in, err)
	}
}

func TestImmediateSignExtension(t *testing.T) {
	w := MustEncode(Inst{Op: OpADDI, Rd: 1, Rs1: 1, Imm: -1})
	in, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != -1 {
		t.Errorf("addi -1 round-trips to %d", in.Imm)
	}
	w = MustEncode(Inst{Op: OpJAL, Rd: 0, Imm: -1 << 19})
	in, err = Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != -1<<19 {
		t.Errorf("jal min imm round-trips to %d", in.Imm)
	}
}

func TestClassPredicatesConsistent(t *testing.T) {
	for op := Opcode(1); int(op) <= NumOpcodes; op++ {
		if IsMemAccess(op) && MemSize(op) == 0 {
			t.Errorf("%v: IsMemAccess but MemSize==0", op)
		}
		if !IsMemAccess(op) && MemSize(op) != 0 {
			t.Errorf("%v: MemSize=%d but not a mem access", op, MemSize(op))
		}
		n := 0
		if WritesIntReg(op) {
			n++
		}
		if WritesFpReg(op) {
			n++
		}
		if WritesVecReg(op) {
			n++
		}
		if n > 1 {
			t.Errorf("%v writes more than one register file", op)
		}
	}
}

func TestEveryOpcodeHasName(t *testing.T) {
	for op := Opcode(1); int(op) <= NumOpcodes; op++ {
		if op.String() == "" || op.String()[0] == 'o' && op.String()[1] == 'p' {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestCSRTableConsistent(t *testing.T) {
	seen := map[uint16]bool{}
	for _, c := range KnownCSRs {
		if seen[c] {
			t.Errorf("duplicate CSR %#x", c)
		}
		seen[c] = true
		if !IsKnownCSR(c) {
			t.Errorf("CSR %#x in KnownCSRs but not named", c)
		}
	}
	if len(KnownCSRs) < 30 {
		t.Errorf("expected a rich CSR set, got %d", len(KnownCSRs))
	}
}

// Property: immediates always round-trip through B-format encodings for any
// even 13-bit-signed value.
func TestQuickBranchImm(t *testing.T) {
	f := func(raw int16) bool {
		imm := int64(raw) &^ 1 // B-format encodes even offsets of 13 signed bits
		if imm < -4096 || imm > 4094 {
			imm %= 4096
			imm &^= 1
		}
		w := MustEncode(Inst{Op: OpBNE, Rs1: 3, Rs2: 4, Imm: imm})
		in, err := Decode(w)
		return err == nil && in.Imm == imm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Rd: 10, Rs1: 0, Imm: 5},
		{Op: OpLD, Rd: 1, Rs1: 2, Imm: 16},
		{Op: OpSD, Rs1: 2, Rs2: 3, Imm: -8},
		{Op: OpCSRRW, Rd: 1, Rs1: 2, CSR: CSRMstatus},
		{Op: OpVADDVV, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpECALL},
	}
	for _, in := range cases {
		if s := Disassemble(in); s == "" {
			t.Errorf("empty disassembly for %+v", in)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	words := make([]uint32, 1024)
	for i := range words {
		words[i] = MustEncode(normalize(randInst(r)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(words[i%len(words)]); err != nil {
			b.Fatal(err)
		}
	}
}
