package isa

import "fmt"

// Control and status register addresses. The subset mirrors the CSRs whose
// state the DiffTest-H verification events compare: machine-mode trap CSRs,
// counters, the floating-point CSR, the vector CSRs, and a hypervisor group.
const (
	CSRFflags   uint16 = 0x001
	CSRFrm      uint16 = 0x002
	CSRFcsr     uint16 = 0x003
	CSRVstart   uint16 = 0x008
	CSRVxsat    uint16 = 0x009
	CSRVxrm     uint16 = 0x00A
	CSRVcsr     uint16 = 0x00F
	CSRSatp     uint16 = 0x180
	CSRVsstatus uint16 = 0x200
	CSRVstvec   uint16 = 0x205
	CSRVsepc    uint16 = 0x241
	CSRVscause  uint16 = 0x242
	CSRMstatus  uint16 = 0x300
	CSRMisa     uint16 = 0x301
	CSRMedeleg  uint16 = 0x302
	CSRMideleg  uint16 = 0x303
	CSRMie      uint16 = 0x304
	CSRMtvec    uint16 = 0x305
	CSRMscratch uint16 = 0x340
	CSRMepc     uint16 = 0x341
	CSRMcause   uint16 = 0x342
	CSRMtval    uint16 = 0x343
	CSRMip      uint16 = 0x344
	CSRHstatus  uint16 = 0x600
	CSRHedeleg  uint16 = 0x602
	CSRHideleg  uint16 = 0x603
	CSRHtval    uint16 = 0x643
	CSRHtinst   uint16 = 0x64A
	CSRHgatp    uint16 = 0x680
	CSRMcycle   uint16 = 0xB00
	CSRMinstret uint16 = 0xB02
	CSRVl       uint16 = 0xC20
	CSRVtype    uint16 = 0xC21
	CSRVlenb    uint16 = 0xC22
	CSRMhartid  uint16 = 0xF14
)

// KnownCSRs lists every CSR the reference model and DUT implement, in
// ascending address order. The order is the canonical layout of the CSRState
// verification event.
var KnownCSRs = []uint16{
	CSRFflags, CSRFrm, CSRFcsr,
	CSRVstart, CSRVxsat, CSRVxrm, CSRVcsr,
	CSRSatp,
	CSRVsstatus, CSRVstvec, CSRVsepc, CSRVscause,
	CSRMstatus, CSRMisa, CSRMedeleg, CSRMideleg, CSRMie, CSRMtvec,
	CSRMscratch, CSRMepc, CSRMcause, CSRMtval, CSRMip,
	CSRHstatus, CSRHedeleg, CSRHideleg, CSRHtval, CSRHtinst, CSRHgatp,
	CSRMcycle, CSRMinstret,
	CSRVl, CSRVtype, CSRVlenb,
	CSRMhartid,
}

var csrNames = map[uint16]string{
	CSRFflags: "fflags", CSRFrm: "frm", CSRFcsr: "fcsr",
	CSRVstart: "vstart", CSRVxsat: "vxsat", CSRVxrm: "vxrm", CSRVcsr: "vcsr",
	CSRSatp:     "satp",
	CSRVsstatus: "vsstatus", CSRVstvec: "vstvec", CSRVsepc: "vsepc", CSRVscause: "vscause",
	CSRMstatus: "mstatus", CSRMisa: "misa", CSRMedeleg: "medeleg", CSRMideleg: "mideleg",
	CSRMie: "mie", CSRMtvec: "mtvec", CSRMscratch: "mscratch", CSRMepc: "mepc",
	CSRMcause: "mcause", CSRMtval: "mtval", CSRMip: "mip",
	CSRHstatus: "hstatus", CSRHedeleg: "hedeleg", CSRHideleg: "hideleg",
	CSRHtval: "htval", CSRHtinst: "htinst", CSRHgatp: "hgatp",
	CSRMcycle: "mcycle", CSRMinstret: "minstret",
	CSRVl: "vl", CSRVtype: "vtype", CSRVlenb: "vlenb",
	CSRMhartid: "mhartid",
}

// CSRName returns the assembler name for a CSR address.
func CSRName(addr uint16) string {
	if n, ok := csrNames[addr]; ok {
		return n
	}
	return fmt.Sprintf("csr(%#x)", addr)
}

// IsKnownCSR reports whether addr is implemented by the models.
func IsKnownCSR(addr uint16) bool {
	_, ok := csrNames[addr]
	return ok
}

// Exception cause codes (mcause values for synchronous exceptions).
const (
	ExcInstrAddrMisaligned uint64 = 0
	ExcIllegalInstr        uint64 = 2
	ExcBreakpoint          uint64 = 3
	ExcLoadAddrMisaligned  uint64 = 4
	ExcLoadAccessFault     uint64 = 5
	ExcStoreAddrMisaligned uint64 = 6
	ExcStoreAccessFault    uint64 = 7
	ExcEcallM              uint64 = 11
	ExcInstrPageFault      uint64 = 12
	ExcLoadPageFault       uint64 = 13
	ExcStorePageFault      uint64 = 15
	ExcGuestLoadPageFault  uint64 = 21
	ExcGuestStorePageFault uint64 = 23
)

// Interrupt cause codes (mcause values with the interrupt bit set).
const (
	IntSoftwareM uint64 = 3
	IntTimerM    uint64 = 7
	IntExternalM uint64 = 11
	IntVirtual   uint64 = 10 // stand-in for a virtual/guest external interrupt
)

// InterruptBit is OR-ed into mcause for interrupt traps.
const InterruptBit uint64 = 1 << 63

// CauseName renders an mcause value for debug reports.
func CauseName(cause uint64) string {
	if cause&InterruptBit != 0 {
		switch cause &^ InterruptBit {
		case IntSoftwareM:
			return "machine software interrupt"
		case IntTimerM:
			return "machine timer interrupt"
		case IntExternalM:
			return "machine external interrupt"
		case IntVirtual:
			return "virtual external interrupt"
		}
		return fmt.Sprintf("interrupt %d", cause&^InterruptBit)
	}
	switch cause {
	case ExcInstrAddrMisaligned:
		return "instruction address misaligned"
	case ExcIllegalInstr:
		return "illegal instruction"
	case ExcBreakpoint:
		return "breakpoint"
	case ExcLoadAddrMisaligned:
		return "load address misaligned"
	case ExcLoadAccessFault:
		return "load access fault"
	case ExcStoreAddrMisaligned:
		return "store address misaligned"
	case ExcStoreAccessFault:
		return "store access fault"
	case ExcEcallM:
		return "ecall from M-mode"
	case ExcInstrPageFault:
		return "instruction page fault"
	case ExcLoadPageFault:
		return "load page fault"
	case ExcStorePageFault:
		return "store page fault"
	case ExcGuestLoadPageFault:
		return "guest load page fault"
	case ExcGuestStorePageFault:
		return "guest store page fault"
	}
	return fmt.Sprintf("exception %d", cause)
}
