package isa

import "fmt"

// Base opcode fields (bits [6:0] of an encoded instruction).
const (
	baseLUI     = 0x37
	baseAUIPC   = 0x17
	baseJAL     = 0x6F
	baseJALR    = 0x67
	baseBranch  = 0x63
	baseLoad    = 0x03
	baseStore   = 0x23
	baseOpImm   = 0x13
	baseOp      = 0x33
	baseOpImm32 = 0x1B
	baseOp32    = 0x3B
	baseMiscMem = 0x0F
	baseSystem  = 0x73
	baseAMO     = 0x2F
	baseLoadFP  = 0x07
	baseStoreFP = 0x27
	baseOpFP    = 0x53
	baseCustom0 = 0x0B // hypervisor subset
	baseCustom1 = 0x2B // vector subset
)

func rType(base, f3, f7 uint32, rd, rs1, rs2 uint8) uint32 {
	return base | uint32(rd)<<7 | f3<<12 | uint32(rs1)<<15 | uint32(rs2)<<20 | f7<<25
}

func iType(base, f3 uint32, rd, rs1 uint8, imm int64) uint32 {
	return base | uint32(rd)<<7 | f3<<12 | uint32(rs1)<<15 | (uint32(imm)&0xFFF)<<20
}

func sType(base, f3 uint32, rs1, rs2 uint8, imm int64) uint32 {
	v := uint32(imm)
	return base | (v&0x1F)<<7 | f3<<12 | uint32(rs1)<<15 | uint32(rs2)<<20 | (v>>5&0x7F)<<25
}

func bType(base, f3 uint32, rs1, rs2 uint8, imm int64) uint32 {
	v := uint32(imm)
	return base | f3<<12 | uint32(rs1)<<15 | uint32(rs2)<<20 |
		(v>>11&1)<<7 | (v>>1&0xF)<<8 | (v>>5&0x3F)<<25 | (v>>12&1)<<31
}

func uType(base uint32, rd uint8, imm int64) uint32 {
	return base | uint32(rd)<<7 | uint32(imm)&0xFFFFF000
}

func jType(base uint32, rd uint8, imm int64) uint32 {
	v := uint32(imm)
	return base | uint32(rd)<<7 |
		(v>>12&0xFF)<<12 | (v>>11&1)<<20 | (v>>1&0x3FF)<<21 | (v>>20&1)<<31
}

// branchFunct3 and loadFunct3 map opcodes to funct3 values within their base
// opcode group.
var branchFunct3 = map[Opcode]uint32{
	OpBEQ: 0, OpBNE: 1, OpBLT: 4, OpBGE: 5, OpBLTU: 6, OpBGEU: 7,
}

var loadFunct3 = map[Opcode]uint32{
	OpLB: 0, OpLH: 1, OpLW: 2, OpLD: 3, OpLBU: 4, OpLHU: 5, OpLWU: 6,
}

var storeFunct3 = map[Opcode]uint32{
	OpSB: 0, OpSH: 1, OpSW: 2, OpSD: 3,
}

var opImmFunct3 = map[Opcode]uint32{
	OpADDI: 0, OpSLTI: 2, OpSLTIU: 3, OpXORI: 4, OpORI: 6, OpANDI: 7,
}

type rSpec struct{ f3, f7 uint32 }

var opRegSpec = map[Opcode]rSpec{
	OpADD: {0, 0x00}, OpSUB: {0, 0x20}, OpSLL: {1, 0x00}, OpSLT: {2, 0x00},
	OpSLTU: {3, 0x00}, OpXOR: {4, 0x00}, OpSRL: {5, 0x00}, OpSRA: {5, 0x20},
	OpOR: {6, 0x00}, OpAND: {7, 0x00},
	OpMUL: {0, 0x01}, OpMULH: {1, 0x01}, OpMULHSU: {2, 0x01}, OpMULHU: {3, 0x01},
	OpDIV: {4, 0x01}, OpDIVU: {5, 0x01}, OpREM: {6, 0x01}, OpREMU: {7, 0x01},
}

var op32RegSpec = map[Opcode]rSpec{
	OpADDW: {0, 0x00}, OpSUBW: {0, 0x20}, OpSLLW: {1, 0x00},
	OpSRLW: {5, 0x00}, OpSRAW: {5, 0x20},
	OpMULW: {0, 0x01}, OpDIVW: {4, 0x01}, OpDIVUW: {5, 0x01},
	OpREMW: {6, 0x01}, OpREMUW: {7, 0x01},
}

var csrFunct3 = map[Opcode]uint32{
	OpCSRRW: 1, OpCSRRS: 2, OpCSRRC: 3, OpCSRRWI: 5, OpCSRRSI: 6, OpCSRRCI: 7,
}

var amoFunct5 = map[Opcode]uint32{
	OpLRD: 0x02, OpSCD: 0x03, OpAMOSWAPD: 0x01, OpAMOADDD: 0x00,
	OpAMOXORD: 0x04, OpAMOANDD: 0x0C, OpAMOORD: 0x08,
}

var fpFunct7 = map[Opcode]uint32{
	OpFADDD: 0x01, OpFSUBD: 0x05, OpFMULD: 0x09, OpFSGNJD: 0x11,
	OpFMVXD: 0x71, OpFMVDX: 0x79,
}

var vecFunct3 = map[Opcode]uint32{
	OpVADDVV: 0, OpVXORVV: 1, OpVANDVV: 2, OpVLE: 3, OpVSE: 4, OpVMVVX: 5, OpVSETVLI: 6,
}

// Encode assembles a decoded instruction into its 32-bit machine encoding.
// It is the inverse of Decode for every valid instruction.
func Encode(in Inst) (uint32, error) {
	switch {
	case in.Op == OpLUI:
		return uType(baseLUI, in.Rd, in.Imm), nil
	case in.Op == OpAUIPC:
		return uType(baseAUIPC, in.Rd, in.Imm), nil
	case in.Op == OpJAL:
		return jType(baseJAL, in.Rd, in.Imm), nil
	case in.Op == OpJALR:
		return iType(baseJALR, 0, in.Rd, in.Rs1, in.Imm), nil
	}
	if f3, ok := branchFunct3[in.Op]; ok {
		return bType(baseBranch, f3, in.Rs1, in.Rs2, in.Imm), nil
	}
	if f3, ok := loadFunct3[in.Op]; ok {
		return iType(baseLoad, f3, in.Rd, in.Rs1, in.Imm), nil
	}
	if f3, ok := storeFunct3[in.Op]; ok {
		return sType(baseStore, f3, in.Rs1, in.Rs2, in.Imm), nil
	}
	if f3, ok := opImmFunct3[in.Op]; ok {
		return iType(baseOpImm, f3, in.Rd, in.Rs1, in.Imm), nil
	}
	switch in.Op {
	case OpSLLI:
		return iType(baseOpImm, 1, in.Rd, in.Rs1, in.Imm&0x3F), nil
	case OpSRLI:
		return iType(baseOpImm, 5, in.Rd, in.Rs1, in.Imm&0x3F), nil
	case OpSRAI:
		return iType(baseOpImm, 5, in.Rd, in.Rs1, in.Imm&0x3F|0x400), nil
	case OpADDIW:
		return iType(baseOpImm32, 0, in.Rd, in.Rs1, in.Imm), nil
	case OpSLLIW:
		return iType(baseOpImm32, 1, in.Rd, in.Rs1, in.Imm&0x1F), nil
	case OpSRLIW:
		return iType(baseOpImm32, 5, in.Rd, in.Rs1, in.Imm&0x1F), nil
	case OpSRAIW:
		return iType(baseOpImm32, 5, in.Rd, in.Rs1, in.Imm&0x1F|0x400), nil
	}
	if s, ok := opRegSpec[in.Op]; ok {
		return rType(baseOp, s.f3, s.f7, in.Rd, in.Rs1, in.Rs2), nil
	}
	if s, ok := op32RegSpec[in.Op]; ok {
		return rType(baseOp32, s.f3, s.f7, in.Rd, in.Rs1, in.Rs2), nil
	}
	if f3, ok := csrFunct3[in.Op]; ok {
		return iType(baseSystem, f3, in.Rd, in.Rs1, int64(in.CSR)), nil
	}
	switch in.Op {
	case OpFENCE:
		return iType(baseMiscMem, 0, 0, 0, 0), nil
	case OpECALL:
		return iType(baseSystem, 0, 0, 0, 0), nil
	case OpEBREAK:
		return iType(baseSystem, 0, 0, 0, 1), nil
	case OpMRET:
		return iType(baseSystem, 0, 0, 0, 0x302), nil
	case OpWFI:
		return iType(baseSystem, 0, 0, 0, 0x105), nil
	}
	if f5, ok := amoFunct5[in.Op]; ok {
		return rType(baseAMO, 3, f5<<2, in.Rd, in.Rs1, in.Rs2), nil
	}
	switch in.Op {
	case OpFLD:
		return iType(baseLoadFP, 3, in.Rd, in.Rs1, in.Imm), nil
	case OpFSD:
		return sType(baseStoreFP, 3, in.Rs1, in.Rs2, in.Imm), nil
	}
	if f7, ok := fpFunct7[in.Op]; ok {
		return rType(baseOpFP, 0, f7, in.Rd, in.Rs1, in.Rs2), nil
	}
	if f3, ok := vecFunct3[in.Op]; ok {
		switch in.Op {
		case OpVSETVLI:
			return iType(baseCustom1, f3, in.Rd, in.Rs1, in.Imm), nil
		case OpVLE:
			return iType(baseCustom1, f3, in.Rd, in.Rs1, in.Imm), nil
		case OpVSE:
			return sType(baseCustom1, f3, in.Rs1, in.Rs2, in.Imm), nil
		default:
			return rType(baseCustom1, f3, 0, in.Rd, in.Rs1, in.Rs2), nil
		}
	}
	switch in.Op {
	case OpHLVD:
		return iType(baseCustom0, 0, in.Rd, in.Rs1, in.Imm), nil
	case OpHSVD:
		return sType(baseCustom0, 1, in.Rs1, in.Rs2, in.Imm), nil
	}
	return 0, fmt.Errorf("isa: cannot encode %v", in.Op)
}

// MustEncode is like Encode but panics on error; it is intended for use by
// generators whose opcode sets are known valid.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
