// Package isa defines the instruction set architecture simulated by both the
// design under test (internal/dut) and the reference model (internal/ref).
//
// The ISA is a practical subset of RV64: the I and M base extensions,
// Zicsr, a minimal D floating-point subset, LR/SC and AMO atomics, and a
// compact custom-encoded vector and hypervisor extension that stand in for
// RVV and the H extension. The subset is chosen so that every one of the 32
// verification event types of the DiffTest-H paper (Table 1) has at least one
// instruction that produces it.
package isa

import "fmt"

// XLen is the register width in bits.
const XLen = 64

// VLenBytes is the vector register width in bytes (VLEN = 256 bits).
const VLenBytes = 32

// NumVRegs is the number of architectural vector registers.
const NumVRegs = 32

// Opcode identifies a decoded instruction operation.
type Opcode uint8

// Operations. Grouped by extension; the order is stable and part of the
// package API (trace files record opcodes numerically).
const (
	OpInvalid Opcode = iota

	// RV64I: upper immediates and jumps.
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR

	// RV64I: conditional branches.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// RV64I: loads.
	OpLB
	OpLH
	OpLW
	OpLD
	OpLBU
	OpLHU
	OpLWU

	// RV64I: stores.
	OpSB
	OpSH
	OpSW
	OpSD

	// RV64I: register-immediate ALU.
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI

	// RV64I: register-register ALU.
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND

	// RV64I: 32-bit word ALU.
	OpADDIW
	OpSLLIW
	OpSRLIW
	OpSRAIW
	OpADDW
	OpSUBW
	OpSLLW
	OpSRLW
	OpSRAW

	// RV64M.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpMULW
	OpDIVW
	OpDIVUW
	OpREMW
	OpREMUW

	// Zicsr.
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI

	// System.
	OpFENCE
	OpECALL
	OpEBREAK
	OpMRET
	OpWFI

	// RV64A: load-reserved / store-conditional and AMOs (D-width only).
	OpLRD
	OpSCD
	OpAMOSWAPD
	OpAMOADDD
	OpAMOXORD
	OpAMOANDD
	OpAMOORD

	// RV64D subset: enough to exercise FP register and FP CSR events.
	OpFLD
	OpFSD
	OpFADDD
	OpFSUBD
	OpFMULD
	OpFMVXD // fmv.x.d
	OpFMVDX // fmv.d.x
	OpFSGNJD

	// Custom vector extension (stands in for RVV; custom-1 opcode space).
	OpVSETVLI
	OpVADDVV
	OpVXORVV
	OpVANDVV
	OpVLE
	OpVSE
	OpVMVVX

	// Custom hypervisor extension (stands in for the H extension).
	OpHLVD // hypervisor load via guest-stage translation
	OpHSVD // hypervisor store via guest-stage translation

	numOpcodes
)

// NumOpcodes is the count of defined opcodes (excluding OpInvalid).
const NumOpcodes = int(numOpcodes) - 1

var opNames = [...]string{
	OpInvalid: "invalid",
	OpLUI:     "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLD: "ld", OpLBU: "lbu", OpLHU: "lhu", OpLWU: "lwu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori", OpORI: "ori", OpANDI: "andi",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpADDIW: "addiw", OpSLLIW: "slliw", OpSRLIW: "srliw", OpSRAIW: "sraiw",
	OpADDW: "addw", OpSUBW: "subw", OpSLLW: "sllw", OpSRLW: "srlw", OpSRAW: "sraw",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpMULW: "mulw", OpDIVW: "divw", OpDIVUW: "divuw", OpREMW: "remw", OpREMUW: "remuw",
	OpCSRRW: "csrrw", OpCSRRS: "csrrs", OpCSRRC: "csrrc",
	OpCSRRWI: "csrrwi", OpCSRRSI: "csrrsi", OpCSRRCI: "csrrci",
	OpFENCE: "fence", OpECALL: "ecall", OpEBREAK: "ebreak", OpMRET: "mret", OpWFI: "wfi",
	OpLRD: "lr.d", OpSCD: "sc.d", OpAMOSWAPD: "amoswap.d", OpAMOADDD: "amoadd.d",
	OpAMOXORD: "amoxor.d", OpAMOANDD: "amoand.d", OpAMOORD: "amoor.d",
	OpFLD: "fld", OpFSD: "fsd", OpFADDD: "fadd.d", OpFSUBD: "fsub.d", OpFMULD: "fmul.d",
	OpFMVXD: "fmv.x.d", OpFMVDX: "fmv.d.x", OpFSGNJD: "fsgnj.d",
	OpVSETVLI: "vsetvli", OpVADDVV: "vadd.vv", OpVXORVV: "vxor.vv", OpVANDVV: "vand.vv",
	OpVLE: "vle64.v", OpVSE: "vse64.v", OpVMVVX: "vmv.v.x",
	OpHLVD: "hlv.d", OpHSVD: "hsv.d",
}

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Inst is a decoded instruction.
type Inst struct {
	Op  Opcode
	Rd  uint8  // destination register (integer, FP, or vector depending on Op)
	Rs1 uint8  // first source register
	Rs2 uint8  // second source register
	Imm int64  // sign-extended immediate
	CSR uint16 // CSR address for Zicsr operations
	Raw uint32 // original encoding
}

func (i Inst) String() string { return Disassemble(i) }

// Class describes the coarse functional class of an opcode, used by the DUT
// timing model and the workload generator.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassBranch
	ClassJump
	ClassLoad
	ClassStore
	ClassMulDiv
	ClassCSR
	ClassSystem
	ClassAtomic
	ClassFP
	ClassFPLoad
	ClassFPStore
	ClassVector
	ClassVecLoad
	ClassVecStore
	ClassHypLoad
	ClassHypStore
)

// ClassOf reports the functional class of op.
func ClassOf(op Opcode) Class {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return ClassBranch
	case OpJAL, OpJALR:
		return ClassJump
	case OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpSD:
		return ClassStore
	case OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU,
		OpMULW, OpDIVW, OpDIVUW, OpREMW, OpREMUW:
		return ClassMulDiv
	case OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
		return ClassCSR
	case OpFENCE, OpECALL, OpEBREAK, OpMRET, OpWFI:
		return ClassSystem
	case OpLRD, OpSCD, OpAMOSWAPD, OpAMOADDD, OpAMOXORD, OpAMOANDD, OpAMOORD:
		return ClassAtomic
	case OpFADDD, OpFSUBD, OpFMULD, OpFMVXD, OpFMVDX, OpFSGNJD:
		return ClassFP
	case OpFLD:
		return ClassFPLoad
	case OpFSD:
		return ClassFPStore
	case OpVSETVLI, OpVADDVV, OpVXORVV, OpVANDVV, OpVMVVX:
		return ClassVector
	case OpVLE:
		return ClassVecLoad
	case OpVSE:
		return ClassVecStore
	case OpHLVD:
		return ClassHypLoad
	case OpHSVD:
		return ClassHypStore
	}
	return ClassALU
}

// IsMemAccess reports whether op reads or writes data memory.
func IsMemAccess(op Opcode) bool {
	switch ClassOf(op) {
	case ClassLoad, ClassStore, ClassAtomic, ClassFPLoad, ClassFPStore,
		ClassVecLoad, ClassVecStore, ClassHypLoad, ClassHypStore:
		return true
	}
	return false
}

// MemSize returns the access width in bytes for memory opcodes, or 0.
func MemSize(op Opcode) int {
	switch op {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpLWU, OpSW:
		return 4
	case OpLD, OpSD, OpFLD, OpFSD, OpLRD, OpSCD,
		OpAMOSWAPD, OpAMOADDD, OpAMOXORD, OpAMOANDD, OpAMOORD, OpHLVD, OpHSVD:
		return 8
	case OpVLE, OpVSE:
		return VLenBytes
	}
	return 0
}

// WritesIntReg reports whether op writes an integer destination register.
func WritesIntReg(op Opcode) bool {
	switch ClassOf(op) {
	case ClassALU, ClassJump, ClassLoad, ClassMulDiv, ClassCSR, ClassAtomic, ClassHypLoad:
		return op != OpFENCE
	case ClassFP:
		return op == OpFMVXD
	}
	return false
}

// WritesFpReg reports whether op writes a floating-point register.
func WritesFpReg(op Opcode) bool {
	switch op {
	case OpFLD, OpFADDD, OpFSUBD, OpFMULD, OpFMVDX, OpFSGNJD:
		return true
	}
	return false
}

// WritesVecReg reports whether op writes a vector register.
func WritesVecReg(op Opcode) bool {
	switch op {
	case OpVADDVV, OpVXORVV, OpVANDVV, OpVLE, OpVMVVX:
		return true
	}
	return false
}

// RegName returns the ABI name of integer register r.
func RegName(r uint8) string {
	names := [...]string{
		"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
		"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
		"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
	}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("x%d", r)
}
