package isa

import "fmt"

func signExtend(v uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

func immI(w uint32) int64 { return signExtend(uint64(w>>20), 12) }

func immS(w uint32) int64 {
	v := uint64(w>>7&0x1F) | uint64(w>>25&0x7F)<<5
	return signExtend(v, 12)
}

func immB(w uint32) int64 {
	v := uint64(w>>8&0xF)<<1 | uint64(w>>25&0x3F)<<5 | uint64(w>>7&1)<<11 | uint64(w>>31&1)<<12
	return signExtend(v, 13)
}

func immU(w uint32) int64 { return int64(int32(w & 0xFFFFF000)) }

func immJ(w uint32) int64 {
	v := uint64(w>>21&0x3FF)<<1 | uint64(w>>20&1)<<11 | uint64(w>>12&0xFF)<<12 | uint64(w>>31&1)<<20
	return signExtend(v, 21)
}

var branchOps = [8]Opcode{OpBEQ, OpBNE, OpInvalid, OpInvalid, OpBLT, OpBGE, OpBLTU, OpBGEU}
var loadOps = [8]Opcode{OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU, OpInvalid}
var storeOps = [8]Opcode{OpSB, OpSH, OpSW, OpSD, OpInvalid, OpInvalid, OpInvalid, OpInvalid}
var csrOps = [8]Opcode{OpInvalid, OpCSRRW, OpCSRRS, OpCSRRC, OpInvalid, OpCSRRWI, OpCSRRSI, OpCSRRCI}

// Decode disassembles a 32-bit machine word into an Inst. An unrecognized
// encoding yields an error; the returned Inst then has Op == OpInvalid and
// retains the raw word for diagnostics.
func Decode(w uint32) (Inst, error) {
	in := Inst{Raw: w}
	rd := uint8(w >> 7 & 0x1F)
	f3 := w >> 12 & 7
	rs1 := uint8(w >> 15 & 0x1F)
	rs2 := uint8(w >> 20 & 0x1F)
	f7 := w >> 25 & 0x7F

	switch w & 0x7F {
	case baseLUI:
		in.Op, in.Rd, in.Imm = OpLUI, rd, immU(w)
	case baseAUIPC:
		in.Op, in.Rd, in.Imm = OpAUIPC, rd, immU(w)
	case baseJAL:
		in.Op, in.Rd, in.Imm = OpJAL, rd, immJ(w)
	case baseJALR:
		in.Op, in.Rd, in.Rs1, in.Imm = OpJALR, rd, rs1, immI(w)
	case baseBranch:
		in.Op, in.Rs1, in.Rs2, in.Imm = branchOps[f3], rs1, rs2, immB(w)
	case baseLoad:
		in.Op, in.Rd, in.Rs1, in.Imm = loadOps[f3], rd, rs1, immI(w)
	case baseStore:
		in.Op, in.Rs1, in.Rs2, in.Imm = storeOps[f3], rs1, rs2, immS(w)
	case baseOpImm:
		in.Rd, in.Rs1 = rd, rs1
		switch f3 {
		case 0:
			in.Op, in.Imm = OpADDI, immI(w)
		case 1:
			in.Op, in.Imm = OpSLLI, int64(w>>20&0x3F)
		case 2:
			in.Op, in.Imm = OpSLTI, immI(w)
		case 3:
			in.Op, in.Imm = OpSLTIU, immI(w)
		case 4:
			in.Op, in.Imm = OpXORI, immI(w)
		case 5:
			if w>>26 == 0x10 {
				in.Op = OpSRAI
			} else {
				in.Op = OpSRLI
			}
			in.Imm = int64(w >> 20 & 0x3F)
		case 6:
			in.Op, in.Imm = OpORI, immI(w)
		case 7:
			in.Op, in.Imm = OpANDI, immI(w)
		}
	case baseOpImm32:
		in.Rd, in.Rs1 = rd, rs1
		switch f3 {
		case 0:
			in.Op, in.Imm = OpADDIW, immI(w)
		case 1:
			in.Op, in.Imm = OpSLLIW, int64(rs2)
		case 5:
			if f7 == 0x20 {
				in.Op = OpSRAIW
			} else {
				in.Op = OpSRLIW
			}
			in.Imm = int64(rs2)
		}
	case baseOp:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		in.Op = lookupR(opRegSpec, f3, f7)
	case baseOp32:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		in.Op = lookupR(op32RegSpec, f3, f7)
	case baseMiscMem:
		in.Op = OpFENCE
	case baseSystem:
		if f3 == 0 {
			switch w >> 20 {
			case 0:
				in.Op = OpECALL
			case 1:
				in.Op = OpEBREAK
			case 0x302:
				in.Op = OpMRET
			case 0x105:
				in.Op = OpWFI
			}
		} else {
			in.Op, in.Rd, in.Rs1, in.CSR = csrOps[f3], rd, rs1, uint16(w>>20)
		}
	case baseAMO:
		if f3 == 3 {
			f5 := f7 >> 2
			for op, v := range amoFunct5 {
				if v == f5 {
					in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
					break
				}
			}
		}
	case baseLoadFP:
		if f3 == 3 {
			in.Op, in.Rd, in.Rs1, in.Imm = OpFLD, rd, rs1, immI(w)
		}
	case baseStoreFP:
		if f3 == 3 {
			in.Op, in.Rs1, in.Rs2, in.Imm = OpFSD, rs1, rs2, immS(w)
		}
	case baseOpFP:
		for op, v := range fpFunct7 {
			if v == f7 {
				in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
				break
			}
		}
	case baseCustom1:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		switch f3 {
		case 0:
			in.Op = OpVADDVV
		case 1:
			in.Op = OpVXORVV
		case 2:
			in.Op = OpVANDVV
		case 3:
			in.Op, in.Imm = OpVLE, immI(w)
		case 4:
			in.Op, in.Imm = OpVSE, immS(w)
		case 5:
			in.Op = OpVMVVX
		case 6:
			in.Op, in.Imm = OpVSETVLI, immI(w)
		}
	case baseCustom0:
		switch f3 {
		case 0:
			in.Op, in.Rd, in.Rs1, in.Imm = OpHLVD, rd, rs1, immI(w)
		case 1:
			in.Op, in.Rs1, in.Rs2, in.Imm = OpHSVD, rs1, rs2, immS(w)
		}
	}

	if in.Op == OpInvalid {
		return in, fmt.Errorf("isa: illegal instruction %#08x", w)
	}
	return in, nil
}

func lookupR(m map[Opcode]rSpec, f3, f7 uint32) Opcode {
	for op, s := range m {
		if s.f3 == f3 && s.f7 == f7 {
			return op
		}
	}
	return OpInvalid
}

// Disassemble renders in as assembler text.
func Disassemble(in Inst) string {
	op := in.Op
	switch {
	case op == OpLUI || op == OpAUIPC:
		return fmt.Sprintf("%s %s, %#x", op, RegName(in.Rd), uint64(in.Imm)>>12&0xFFFFF)
	case op == OpJAL:
		return fmt.Sprintf("%s %s, %d", op, RegName(in.Rd), in.Imm)
	case op == OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
	case ClassOf(op) == ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case ClassOf(op) == ClassLoad || op == OpHLVD:
		return fmt.Sprintf("%s %s, %d(%s)", op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
	case ClassOf(op) == ClassStore || op == OpHSVD:
		return fmt.Sprintf("%s %s, %d(%s)", op, RegName(in.Rs2), in.Imm, RegName(in.Rs1))
	case op == OpFLD:
		return fmt.Sprintf("%s f%d, %d(%s)", op, in.Rd, in.Imm, RegName(in.Rs1))
	case op == OpFSD:
		return fmt.Sprintf("%s f%d, %d(%s)", op, in.Rs2, in.Imm, RegName(in.Rs1))
	case ClassOf(op) == ClassCSR:
		return fmt.Sprintf("%s %s, %s, %s", op, RegName(in.Rd), CSRName(in.CSR), RegName(in.Rs1))
	case ClassOf(op) == ClassSystem:
		return op.String()
	case ClassOf(op) == ClassVector || ClassOf(op) == ClassVecLoad || ClassOf(op) == ClassVecStore:
		return fmt.Sprintf("%s v%d, v%d, v%d", op, in.Rd, in.Rs1, in.Rs2)
	default:
		if _, imm := opImmFunct3[op]; imm || op == OpSLLI || op == OpSRLI || op == OpSRAI ||
			op == OpADDIW || op == OpSLLIW || op == OpSRLIW || op == OpSRAIW {
			return fmt.Sprintf("%s %s, %s, %d", op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", op, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	}
}
