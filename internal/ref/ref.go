// Package ref implements the golden reference model (REF): an instruction
// set simulator in the role NEMU/Spike play for DiffTest (paper §2.2).
//
// The REF executes the same initial memory image as the DUT, is synchronized
// with the DUT's non-deterministic events (MMIO results, interrupts), and
// exposes compensation-log checkpoints so Replay can revert it to re-check
// fused events at instruction granularity (paper §4.4).
package ref

import (
	"repro/internal/arch"
	"repro/internal/mem"
)

// Mark is a checkpoint token. Reverting to a Mark restores the exact
// architectural and memory state the model had when the Mark was taken.
type Mark struct {
	logPos   int
	instrRet uint64
	pc       uint64
}

// InstrRet returns the retired-instruction count at the checkpoint.
func (mk Mark) InstrRet() uint64 { return mk.instrRet }

// Ref is the reference model.
type Ref struct {
	M *arch.Machine

	trimmed int // compensation entries discarded by TrimBefore
}

// New builds a reference model over its own clone of the initial memory
// image, with compensation logging enabled.
func New(image *mem.Memory) *Ref {
	m := arch.NewMachine(image.Clone())
	m.Log.Enable()
	return &Ref{M: m}
}

// Step executes one instruction.
func (r *Ref) Step() arch.Exec { return r.M.Step() }

// Skip retires the next instruction without executing it, forcing the DUT's
// writeback — used for MMIO instructions (the DiffTest "skip" mechanism).
func (r *Ref) Skip(wroteInt bool, wdest uint8, wdata uint64) {
	r.M.SkipInstr(wroteInt, wdest, wdata)
}

// TakeInterrupt forces the interrupt trap the DUT reported.
func (r *Ref) TakeInterrupt(cause uint64) { r.M.TakeInterrupt(cause) }

// InstrRet returns the number of retired instructions.
func (r *Ref) InstrRet() uint64 { return r.M.InstrRet }

// PC returns the current program counter.
func (r *Ref) PC() uint64 { return r.M.State.PC }

// Checkpoint records the current position in the compensation log.
func (r *Ref) Checkpoint() Mark {
	return Mark{logPos: r.M.Log.Mark() + r.trimmed, instrRet: r.M.InstrRet, pc: r.M.State.PC}
}

// Revert rolls the model back to mk by replaying compensation entries in
// reverse — the lightweight alternative to full snapshots (paper §4.4).
func (r *Ref) Revert(mk Mark) {
	r.M.Log.RevertTo(r.M, mk.logPos-r.trimmed)
	r.M.InstrRet = mk.instrRet
}

// TrimBefore discards compensation entries older than mk, bounding memory.
// Marks older than mk become unusable.
func (r *Ref) TrimBefore(mk Mark) {
	r.trimmed += r.M.Log.TrimBefore(mk.logPos - r.trimmed)
}

// LogLen reports the number of buffered compensation entries.
func (r *Ref) LogLen() int { return r.M.Log.Len() }

// Snapshot is a full deep copy of the model — the expensive debugging
// baseline that Replay's compensation strategy replaces (paper Fig. 10).
type Snapshot struct {
	State    arch.State
	Mem      *mem.Memory
	InstrRet uint64
}

// TakeSnapshot deep-copies the model's state and memory.
func (r *Ref) TakeSnapshot() Snapshot {
	return Snapshot{State: r.M.State.Clone(), Mem: r.M.Mem.Clone(), InstrRet: r.M.InstrRet}
}

// RestoreSnapshot reinstates a full snapshot, invalidating the compensation
// log and any outstanding Marks.
func (r *Ref) RestoreSnapshot(s Snapshot) {
	r.M.State = s.State.Clone()
	r.M.Mem = s.Mem.Clone()
	r.M.InstrRet = s.InstrRet
	r.M.Log = arch.CompLog{}
	r.M.Log.Enable()
	r.trimmed = 0
}
