package ref_test

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/ref"
)

func image(t *testing.T, prog []isa.Inst) *mem.Memory {
	t.Helper()
	img := mem.New()
	addr := mem.RAMBase
	for _, in := range prog {
		img.Write(addr, 4, uint64(isa.MustEncode(in)))
		addr += 4
	}
	return img
}

func counting(n int) []isa.Inst {
	prog := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		prog = append(prog, isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1})
	}
	return prog
}

func TestRefDoesNotMutateImage(t *testing.T) {
	img := image(t, []isa.Inst{{Op: isa.OpSD, Rs1: 0, Rs2: 0, Imm: 0}})
	r := ref.New(img)
	r.M.State.GPR[2] = mem.RAMBase + 0x1000
	r.Step()
	if img.Read(mem.RAMBase, 4) == 0 {
		t.Error("image corrupted: REF must execute on a clone")
	}
}

func TestCheckpointRevert(t *testing.T) {
	r := ref.New(image(t, counting(100)))
	for i := 0; i < 30; i++ {
		r.Step()
	}
	mk := r.Checkpoint()
	wantX1 := r.M.State.GPR[1]
	for i := 0; i < 40; i++ {
		r.Step()
	}
	if r.M.State.GPR[1] == wantX1 {
		t.Fatal("no progress after checkpoint")
	}
	r.Revert(mk)
	if got := r.M.State.GPR[1]; got != wantX1 {
		t.Errorf("x1 after revert = %d, want %d", got, wantX1)
	}
	if r.InstrRet() != 30 {
		t.Errorf("instret after revert = %d, want 30", r.InstrRet())
	}
	// Execution resumes identically.
	r.Step()
	if r.M.State.GPR[1] != wantX1+1 {
		t.Error("resumed execution diverged")
	}
}

func TestTrimBeforeKeepsLaterMarks(t *testing.T) {
	r := ref.New(image(t, counting(200)))
	for i := 0; i < 50; i++ {
		r.Step()
	}
	mk1 := r.Checkpoint()
	r.TrimBefore(mk1)
	for i := 0; i < 50; i++ {
		r.Step()
	}
	mk2 := r.Checkpoint()
	r.TrimBefore(mk2)
	for i := 0; i < 50; i++ {
		r.Step()
	}
	r.Revert(mk2)
	if r.InstrRet() != 100 {
		t.Errorf("instret after trimmed revert = %d, want 100", r.InstrRet())
	}
	if r.M.State.GPR[1] != 100 {
		t.Errorf("x1 = %d, want 100", r.M.State.GPR[1])
	}
}

func TestTrimBoundsLogGrowth(t *testing.T) {
	r := ref.New(image(t, counting(1000)))
	maxLen := 0
	for i := 0; i < 900; i++ {
		r.Step()
		if i%50 == 0 {
			mk := r.Checkpoint()
			r.TrimBefore(mk)
		}
		if l := r.LogLen(); l > maxLen {
			maxLen = l
		}
	}
	if maxLen > 400 {
		t.Errorf("compensation log grew to %d entries despite trimming", maxLen)
	}
}

func TestSnapshotRestore(t *testing.T) {
	prog := append(counting(20),
		isa.Inst{Op: isa.OpSD, Rs1: 31, Rs2: 1, Imm: 0})
	r := ref.New(image(t, prog))
	r.M.State.GPR[31] = mem.RAMBase + 0x2000
	for i := 0; i < 10; i++ {
		r.Step()
	}
	snap := r.TakeSnapshot()
	for i := 0; i < 11; i++ {
		r.Step()
	}
	if r.M.Mem.Read(mem.RAMBase+0x2000, 8) != 20 {
		t.Fatalf("store missing: %d", r.M.Mem.Read(mem.RAMBase+0x2000, 8))
	}
	r.RestoreSnapshot(snap)
	if r.InstrRet() != 10 || r.M.State.GPR[1] != 10 {
		t.Errorf("restore: instret=%d x1=%d", r.InstrRet(), r.M.State.GPR[1])
	}
	if r.M.Mem.Read(mem.RAMBase+0x2000, 8) != 0 {
		t.Error("restored memory still has post-snapshot store")
	}
}

func TestSkipSynchronizesMMIOResult(t *testing.T) {
	r := ref.New(image(t, counting(5)))
	pc := r.PC()
	r.Skip(true, 7, 0x1234)
	if r.M.State.GPR[7] != 0x1234 || r.PC() != pc+4 || r.InstrRet() != 1 {
		t.Errorf("skip: x7=%#x pc=%#x ret=%d", r.M.State.GPR[7], r.PC(), r.InstrRet())
	}
}

func TestTakeInterruptMatchesMachineSemantics(t *testing.T) {
	r := ref.New(image(t, counting(5)))
	r.M.SetCSRAddr(isa.CSRMtvec, mem.RAMBase+0x80)
	r.TakeInterrupt(isa.IntExternalM)
	if r.PC() != mem.RAMBase+0x80 {
		t.Errorf("pc = %#x", r.PC())
	}
	if r.M.State.CSRVal(isa.CSRMcause) != isa.IntExternalM|isa.InterruptBit {
		t.Errorf("mcause = %#x", r.M.State.CSRVal(isa.CSRMcause))
	}
}
