package loggp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEquationOne(t *testing.T) {
	// 15 invokes × 8.5µs + 1200B / 100MB/s + 13µs software (the paper's
	// XiangShan-on-Palladium baseline operating point, per cycle).
	b := Model(Inputs{Invokes: 15, Bytes: 1200, TSync: 8.5e-6, BWBps: 100e6, TSw: 13e-6})
	if math.Abs(b.Startup-127.5e-6) > 1e-12 {
		t.Errorf("startup = %g", b.Startup)
	}
	if math.Abs(b.Transmission-12e-6) > 1e-12 {
		t.Errorf("transmission = %g", b.Transmission)
	}
	if math.Abs(b.Total()-(127.5e-6+12e-6+13e-6)) > 1e-12 {
		t.Errorf("total = %g", b.Total())
	}
}

func TestSharesSumToOne(t *testing.T) {
	f := func(inv uint16, bytes uint32, sw uint16) bool {
		b := Model(Inputs{
			Invokes: uint64(inv), Bytes: uint64(bytes),
			TSync: 1e-6, BWBps: 1e8, TSw: float64(sw) * 1e-6,
		})
		if b.Total() == 0 {
			s, tr, sw := b.Shares()
			return s == 0 && tr == 0 && sw == 0
		}
		s, tr, sw2 := b.Shares()
		return math.Abs(s+tr+sw2-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverheadShare(t *testing.T) {
	b := Breakdown{Startup: 98e-6, Transmission: 0, Software: 0}
	if got := b.OverheadShare(2e-6); math.Abs(got-0.98) > 1e-9 {
		t.Errorf("overhead share = %v, want 0.98 (the paper's >98%%)", got)
	}
	var zero Breakdown
	if zero.OverheadShare(0) != 0 {
		t.Error("zero breakdown should have zero share")
	}
}

func TestZeroBandwidth(t *testing.T) {
	b := Model(Inputs{Invokes: 1, Bytes: 100, TSync: 1e-6, BWBps: 0, TSw: 0})
	if b.Transmission != 0 {
		t.Error("zero bandwidth should not divide")
	}
}

func TestStringRendering(t *testing.T) {
	b := Model(Inputs{Invokes: 10, Bytes: 1000, TSync: 1e-6, BWBps: 1e6, TSw: 5e-6})
	s := b.String()
	if !strings.Contains(s, "startup") || !strings.Contains(s, "%") {
		t.Errorf("rendering: %s", s)
	}
}
