// Package loggp implements the analytical communication-overhead model of
// paper §3, inspired by LogGP: the overhead of hardware-accelerated
// co-simulation decomposes into communication startup, data transmission,
// and software processing (Equation 1):
//
//	Overhead = N_invokes × T_sync + N_bytes / BW + T_software
package loggp

import (
	"fmt"
	"strings"
)

// Inputs are the measured quantities the model consumes.
type Inputs struct {
	Invokes uint64  // number of hardware-software communication startups
	Bytes   uint64  // total transmitted payload bytes
	TSync   float64 // per-invocation synchronization latency (s)
	BWBps   float64 // link bandwidth (bytes/s)
	TSw     float64 // total software processing time (s)
}

// Breakdown is the three-phase overhead decomposition (Figure 2).
type Breakdown struct {
	Startup      float64 // N_invokes × T_sync (s)
	Transmission float64 // N_bytes / BW (s)
	Software     float64 // T_software (s)
}

// Model evaluates Equation 1.
func Model(in Inputs) Breakdown {
	b := Breakdown{
		Startup:  float64(in.Invokes) * in.TSync,
		Software: in.TSw,
	}
	if in.BWBps > 0 {
		b.Transmission = float64(in.Bytes) / in.BWBps
	}
	return b
}

// Total returns the summed overhead in seconds.
func (b Breakdown) Total() float64 { return b.Startup + b.Transmission + b.Software }

// Shares returns each phase as a fraction of the total (0 if no overhead).
func (b Breakdown) Shares() (startup, transmission, software float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return b.Startup / t, b.Transmission / t, b.Software / t
}

// OverheadShare returns the fraction of total co-simulation time spent on
// communication, given the pure DUT emulation time.
func (b Breakdown) OverheadShare(dutTime float64) float64 {
	t := b.Total()
	if t+dutTime == 0 {
		return 0
	}
	return t / (t + dutTime)
}

// String renders the breakdown as a Figure-2-style row.
func (b Breakdown) String() string {
	s, tr, sw := b.Shares()
	var sb strings.Builder
	fmt.Fprintf(&sb, "startup %5.1f%%  transmission %5.1f%%  software %5.1f%%  (total %.3g s)",
		s*100, tr*100, sw*100, b.Total())
	return sb.String()
}
