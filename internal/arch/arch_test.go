package arch

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// asm writes a program (as decoded Insts) at addr and returns a machine with
// PC pointing at it.
func asm(t *testing.T, prog []isa.Inst) *Machine {
	t.Helper()
	ram := mem.New()
	addr := mem.RAMBase
	for _, in := range prog {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		ram.Write(addr, 4, uint64(w))
		addr += 4
	}
	return NewMachine(ram)
}

func run(m *Machine, n int) []Exec {
	out := make([]Exec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m.Step())
	}
	return out
}

func TestALUBasics(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 7},
		{Op: isa.OpADD, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OpSUB, Rd: 4, Rs1: 1, Rs2: 2},
		{Op: isa.OpMUL, Rd: 5, Rs1: 1, Rs2: 2},
		{Op: isa.OpSLLI, Rd: 6, Rs1: 1, Imm: 60},
	})
	run(m, 6)
	s := &m.State
	if s.GPR[3] != 12 || int64(s.GPR[4]) != -2 || s.GPR[5] != 35 {
		t.Errorf("alu results: %d %d %d", s.GPR[3], int64(s.GPR[4]), s.GPR[5])
	}
	if s.GPR[6] != 5<<60 {
		t.Errorf("slli = %#x", s.GPR[6])
	}
}

func TestX0IsHardwired(t *testing.T) {
	m := asm(t, []isa.Inst{{Op: isa.OpADDI, Rd: 0, Rs1: 0, Imm: 99}})
	run(m, 1)
	if m.State.GPR[0] != 0 {
		t.Error("x0 was written")
	}
}

func TestBranchesAndJumps(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 1},
		{Op: isa.OpBEQ, Rs1: 1, Rs2: 0, Imm: 8}, // not taken
		{Op: isa.OpBNE, Rs1: 1, Rs2: 0, Imm: 8}, // taken, skips next
		{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 99},
		{Op: isa.OpJAL, Rd: 5, Imm: 8}, // skips next
		{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 98},
		{Op: isa.OpADDI, Rd: 3, Rs1: 0, Imm: 1},
	})
	run(m, 5)
	if m.State.GPR[2] != 0 {
		t.Errorf("branch/jump fell through: x2=%d", m.State.GPR[2])
	}
	if m.State.GPR[3] != 1 {
		t.Errorf("did not reach end: x3=%d", m.State.GPR[3])
	}
	if want := mem.RAMBase + 5*4; m.State.GPR[5] != want {
		t.Errorf("jal link = %#x, want %#x", m.State.GPR[5], want)
	}
}

func TestLoadStore(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpLUI, Rd: 1, Imm: 0x1000 << 12},         // arbitrary
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 0},           // x1=0
		{Op: isa.OpLUI, Rd: 2, Imm: int64(0x80001) << 12}, // x2=0x80001000
		{Op: isa.OpADDI, Rd: 3, Rs1: 0, Imm: -1},          // x3=-1
		{Op: isa.OpSD, Rs1: 2, Rs2: 3, Imm: 0},            // [x2]=-1
		{Op: isa.OpLW, Rd: 4, Rs1: 2, Imm: 0},             // sign extends
		{Op: isa.OpLWU, Rd: 5, Rs1: 2, Imm: 0},            // zero extends
		{Op: isa.OpLB, Rd: 6, Rs1: 2, Imm: 3},             // sign extends
		{Op: isa.OpSH, Rs1: 2, Rs2: 0, Imm: 0},            // clear low half
		{Op: isa.OpLHU, Rd: 7, Rs1: 2, Imm: 0},
	})
	exs := run(m, 10)
	s := &m.State
	if s.GPR[4] != ^uint64(0) {
		t.Errorf("lw = %#x", s.GPR[4])
	}
	if s.GPR[5] != 0xFFFFFFFF {
		t.Errorf("lwu = %#x", s.GPR[5])
	}
	if s.GPR[6] != ^uint64(0) {
		t.Errorf("lb = %#x", s.GPR[6])
	}
	if s.GPR[7] != 0 {
		t.Errorf("lhu after sh = %#x", s.GPR[7])
	}
	if !exs[4].Mem || exs[4].IsLoad || exs[4].MemAddr != 0x80001000 {
		t.Errorf("store exec record wrong: %+v", exs[4])
	}
	if !exs[5].Mem || !exs[5].IsLoad {
		t.Errorf("load exec record wrong: %+v", exs[5])
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 10},
		{Op: isa.OpDIV, Rd: 2, Rs1: 1, Rs2: 0},  // div by zero = -1
		{Op: isa.OpREM, Rd: 3, Rs1: 1, Rs2: 0},  // rem by zero = a
		{Op: isa.OpDIVU, Rd: 4, Rs1: 1, Rs2: 0}, // = all ones
	})
	run(m, 4)
	s := &m.State
	if int64(s.GPR[2]) != -1 || s.GPR[3] != 10 || s.GPR[4] != ^uint64(0) {
		t.Errorf("div edge cases: %d %d %#x", int64(s.GPR[2]), s.GPR[3], s.GPR[4])
	}
}

func TestCSROps(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 0x5A},
		{Op: isa.OpCSRRW, Rd: 2, Rs1: 1, CSR: isa.CSRMscratch},
		{Op: isa.OpCSRRS, Rd: 3, Rs1: 0, CSR: isa.CSRMscratch},  // read only
		{Op: isa.OpCSRRSI, Rd: 4, Rs1: 5, CSR: isa.CSRMscratch}, // set bits 101
		{Op: isa.OpCSRRC, Rd: 5, Rs1: 1, CSR: isa.CSRMscratch},  // clear
	})
	run(m, 5)
	s := &m.State
	if s.GPR[2] != 0 || s.GPR[3] != 0x5A || s.GPR[4] != 0x5A {
		t.Errorf("csr reads: %#x %#x %#x", s.GPR[2], s.GPR[3], s.GPR[4])
	}
	if got := s.CSRVal(isa.CSRMscratch); got != (0x5A|5)&^0x5A {
		t.Errorf("mscratch = %#x", got)
	}
}

func TestEcallAndMret(t *testing.T) {
	// Trap handler at RAMBase+0x100: mepc += 4; mret.
	m := asm(t, []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 0x100},
		{Op: isa.OpLUI, Rd: 2, Imm: int64(0x80000) << 12},
		{Op: isa.OpADD, Rd: 1, Rs1: 1, Rs2: 2},
		{Op: isa.OpCSRRW, Rd: 0, Rs1: 1, CSR: isa.CSRMtvec},
		{Op: isa.OpECALL},
		{Op: isa.OpADDI, Rd: 10, Rs1: 0, Imm: 77}, // after return
	})
	handler := []isa.Inst{
		{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: isa.CSRMepc},
		{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 4},
		{Op: isa.OpCSRRW, Rd: 0, Rs1: 5, CSR: isa.CSRMepc},
		{Op: isa.OpMRET},
	}
	addr := mem.RAMBase + 0x100
	for _, in := range handler {
		m.Mem.Write(addr, 4, uint64(isa.MustEncode(in)))
		addr += 4
	}
	exs := run(m, 10)
	if !exs[4].Exception || exs[4].Cause != isa.ExcEcallM {
		t.Fatalf("ecall not taken: %+v", exs[4])
	}
	if m.State.GPR[10] != 77 {
		t.Errorf("did not resume after mret: x10=%d pc=%#x", m.State.GPR[10], m.State.PC)
	}
	if got := m.State.CSRVal(isa.CSRMcause); got != isa.ExcEcallM {
		t.Errorf("mcause = %d", got)
	}
}

func TestInterruptFlow(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 1},
	})
	m.SetCSRAddr(isa.CSRMtvec, mem.RAMBase+0x40)
	m.SetCSRAddr(isa.CSRMstatus, mstatusMIE)
	m.SetCSRAddr(isa.CSRMie, 1<<isa.IntTimerM)
	m.SetCSRAddr(isa.CSRMip, 1<<isa.IntTimerM)
	cause, ok := m.InterruptPendingEnabled()
	if !ok || cause != isa.IntTimerM {
		t.Fatalf("interrupt not pending: %d %v", cause, ok)
	}
	pc := m.State.PC
	m.TakeInterrupt(cause)
	if m.State.PC != mem.RAMBase+0x40 {
		t.Errorf("pc after interrupt = %#x", m.State.PC)
	}
	if m.State.CSRVal(isa.CSRMepc) != pc {
		t.Errorf("mepc = %#x, want %#x", m.State.CSRVal(isa.CSRMepc), pc)
	}
	if m.State.CSRVal(isa.CSRMcause) != isa.IntTimerM|isa.InterruptBit {
		t.Errorf("mcause = %#x", m.State.CSRVal(isa.CSRMcause))
	}
	if m.InterruptsEnabled() {
		t.Error("MIE not cleared on trap entry")
	}
	if _, ok := m.InterruptPendingEnabled(); ok {
		t.Error("interrupt still deliverable with MIE clear")
	}
}

func TestAtomics(t *testing.T) {
	base := int64(0x80002000)
	m := asm(t, []isa.Inst{
		{Op: isa.OpLUI, Rd: 1, Imm: base},
		{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 9},
		{Op: isa.OpSD, Rs1: 1, Rs2: 2, Imm: 0},
		{Op: isa.OpLRD, Rd: 3, Rs1: 1},
		{Op: isa.OpSCD, Rd: 4, Rs1: 1, Rs2: 2}, // success (same addr)
		{Op: isa.OpSCD, Rd: 5, Rs1: 1, Rs2: 2}, // fail (reservation consumed)
		{Op: isa.OpAMOADDD, Rd: 6, Rs1: 1, Rs2: 2},
	})
	exs := run(m, 7)
	s := &m.State
	if s.GPR[3] != 9 {
		t.Errorf("lr.d = %d", s.GPR[3])
	}
	if s.GPR[4] != 0 {
		t.Errorf("sc.d success flag = %d, want 0", s.GPR[4])
	}
	if s.GPR[5] != 1 {
		t.Errorf("second sc.d = %d, want 1", s.GPR[5])
	}
	if s.GPR[6] != 9 || m.Mem.Read(uint64(base), 8) != 18 {
		t.Errorf("amoadd: old=%d mem=%d", s.GPR[6], m.Mem.Read(uint64(base), 8))
	}
	if !exs[3].LrSc || !exs[4].ScSuccess || exs[5].ScSuccess {
		t.Errorf("lr/sc exec records wrong")
	}
	if !exs[6].Atomic || exs[6].AtomicOld != 9 {
		t.Errorf("amo exec record: %+v", exs[6])
	}
}

func TestVectorOps(t *testing.T) {
	base := int64(0x80003000)
	m := asm(t, []isa.Inst{
		{Op: isa.OpVSETVLI, Rd: 1, Rs1: 0, Imm: 0xD1},
		{Op: isa.OpADDI, Rd: 2, Rs1: 0, Imm: 3},
		{Op: isa.OpVMVVX, Rd: 1, Rs1: 2},          // v1 = {3,3,3,3}
		{Op: isa.OpVADDVV, Rd: 2, Rs1: 1, Rs2: 1}, // v2 = {6,...}
		{Op: isa.OpVXORVV, Rd: 3, Rs1: 2, Rs2: 1}, // v3 = {5,...}
		{Op: isa.OpLUI, Rd: 3, Imm: base},
		{Op: isa.OpVSE, Rs1: 3, Rs2: 2}, // store v2
		{Op: isa.OpVLE, Rd: 4, Rs1: 3},  // load into v4
	})
	run(m, 8)
	s := &m.State
	if s.CSRVal(isa.CSRVl) != 4 {
		t.Errorf("vl = %d", s.CSRVal(isa.CSRVl))
	}
	if s.VReg[2] != [4]uint64{6, 6, 6, 6} {
		t.Errorf("vadd = %v", s.VReg[2])
	}
	if s.VReg[3] != [4]uint64{5, 5, 5, 5} {
		t.Errorf("vxor = %v", s.VReg[3])
	}
	if s.VReg[4] != s.VReg[2] {
		t.Errorf("vle round trip: %v vs %v", s.VReg[4], s.VReg[2])
	}
}

func TestFloatingPoint(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 0x40}, // x1 = 0x40
		{Op: isa.OpSLLI, Rd: 1, Rs1: 1, Imm: 56},   // x1 = bits of 2.0
		{Op: isa.OpFMVDX, Rd: 1, Rs1: 1},           // f1 = 2.0
		{Op: isa.OpFADDD, Rd: 2, Rs1: 1, Rs2: 1},   // f2 = 4.0
		{Op: isa.OpFMULD, Rd: 3, Rs1: 2, Rs2: 2},   // f3 = 16.0
		{Op: isa.OpFMVXD, Rd: 5, Rs1: 3},
	})
	run(m, 6)
	if got := m.State.GPR[5]; got != 0x4030000000000000 { // 16.0
		t.Errorf("fp chain = %#x", got)
	}
}

func TestHypervisorFault(t *testing.T) {
	m := asm(t, []isa.Inst{
		{Op: isa.OpHLVD, Rd: 1, Rs1: 0, Imm: 0}, // hgatp==0 -> guest fault
	})
	m.SetCSRAddr(isa.CSRMtvec, mem.RAMBase+0x80)
	ex := m.Step()
	if !ex.Exception || ex.Cause != isa.ExcGuestLoadPageFault {
		t.Fatalf("expected guest page fault, got %+v", ex)
	}
	if m.State.PC != mem.RAMBase+0x80 {
		t.Errorf("did not vector: pc=%#x", m.State.PC)
	}
}

func TestIllegalInstruction(t *testing.T) {
	ram := mem.New()
	ram.Write(mem.RAMBase, 4, 0xFFFFFFFF)
	m := NewMachine(ram)
	m.SetCSRAddr(isa.CSRMtvec, mem.RAMBase+0x200)
	ex := m.Step()
	if !ex.Exception || ex.Cause != isa.ExcIllegalInstr {
		t.Fatalf("illegal not trapped: %+v", ex)
	}
}

func TestMMIOThroughBus(t *testing.T) {
	ram := mem.New()
	m := NewMachine(ram)
	m.Bus = mem.NewBus(ram)
	// ld x1, 0(x2) with x2 = RNGBase
	m.State.GPR[2] = mem.RNGBase
	ram.Write(mem.RAMBase, 4, uint64(isa.MustEncode(isa.Inst{Op: isa.OpLD, Rd: 1, Rs1: 2})))
	ex := m.Step()
	if !ex.MMIO {
		t.Error("MMIO load not flagged")
	}
	if ex.MemData == 0 {
		t.Error("rng returned zero")
	}
	// Without a bus the same address reads RAM (zero).
	m2 := NewMachine(ram.Clone())
	m2.State.GPR[2] = mem.RNGBase
	ex2 := m2.Step()
	if ex2.MMIO || ex2.MemData != 0 {
		t.Errorf("busless machine touched a device: %+v", ex2)
	}
}

func TestSkipInstr(t *testing.T) {
	m := asm(t, []isa.Inst{{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5}})
	m.SkipInstr(true, 7, 0xABCD)
	if m.State.GPR[7] != 0xABCD || m.State.PC != mem.RAMBase+4 {
		t.Errorf("skip: x7=%#x pc=%#x", m.State.GPR[7], m.State.PC)
	}
	if m.InstrRet != 1 {
		t.Errorf("instret = %d", m.InstrRet)
	}
}

// TestCompensationLogRevert is the core Replay property: executing an
// arbitrary instruction sequence and reverting restores the exact state,
// including memory.
func TestCompensationLogRevert(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ram := mem.New()
	// Random but executable straight-line program: ALU ops, stores, loads,
	// CSR writes, vector ops.
	addr := mem.RAMBase
	ops := []isa.Inst{}
	for i := 0; i < 200; i++ {
		var in isa.Inst
		switch r.Intn(6) {
		case 0:
			in = isa.Inst{Op: isa.OpADDI, Rd: uint8(1 + r.Intn(15)), Rs1: uint8(r.Intn(16)), Imm: r.Int63n(1024)}
		case 1:
			in = isa.Inst{Op: isa.OpADD, Rd: uint8(1 + r.Intn(15)), Rs1: uint8(r.Intn(16)), Rs2: uint8(r.Intn(16))}
		case 2:
			in = isa.Inst{Op: isa.OpSD, Rs1: 31, Rs2: uint8(r.Intn(16)), Imm: int64(r.Intn(128)) * 8}
		case 3:
			in = isa.Inst{Op: isa.OpLD, Rd: uint8(1 + r.Intn(15)), Rs1: 31, Imm: int64(r.Intn(128)) * 8}
		case 4:
			in = isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: uint8(r.Intn(16)), CSR: isa.CSRMscratch}
		case 5:
			in = isa.Inst{Op: isa.OpFMVDX, Rd: uint8(r.Intn(8)), Rs1: uint8(r.Intn(16))}
		}
		ops = append(ops, in)
	}
	for _, in := range ops {
		ram.Write(addr, 4, uint64(isa.MustEncode(in)))
		addr += 4
	}
	m := NewMachine(ram)
	m.State.GPR[31] = 0x80008000 // data region base
	m.Log.Enable()

	// Execute half, checkpoint, execute rest, revert, compare.
	for i := 0; i < 100; i++ {
		m.Step()
	}
	want := m.State.Clone()
	memWant := m.Mem.Clone()
	mark := m.Log.Mark()
	for i := 0; i < 100; i++ {
		m.Step()
	}
	m.Log.RevertTo(m, mark)
	if !m.State.Equal(&want) {
		t.Fatalf("state not restored: %s", m.State.Diff(&want))
	}
	for a := uint64(0x80008000); a < 0x80008000+128*8; a += 8 {
		if m.Mem.Read(a, 8) != memWant.Read(a, 8) {
			t.Fatalf("memory not restored at %#x", a)
		}
	}
}

func TestCompLogTrim(t *testing.T) {
	var l CompLog
	l.Enable()
	for i := 0; i < 10; i++ {
		l.push(compEntry{kind: compGPR, idx: uint32(i)})
	}
	mark := 6
	dropped := l.TrimBefore(mark)
	if dropped != 6 || l.Len() != 4 {
		t.Errorf("trim: dropped=%d len=%d", dropped, l.Len())
	}
}

func BenchmarkStepALU(b *testing.B) {
	ram := mem.New()
	// Tight loop: addi x1,x1,1 ; jal x0, -4
	ram.Write(mem.RAMBase, 4, uint64(isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1})))
	ram.Write(mem.RAMBase+4, 4, uint64(isa.MustEncode(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -4})))
	m := NewMachine(ram)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
