package arch

// The compensation log records the *old* value of every architectural state
// mutation so the reference model can be reverted to a checkpoint without
// full snapshots (paper §4.4, "Revert Reference Model"). Reverting writes
// the logged old values back in reverse order.

type compKind uint8

const (
	compGPR compKind = iota
	compFPR
	compVReg
	compCSR
	compPC
	compMem
	compLr
	compPriv
)

type compEntry struct {
	kind compKind
	idx  uint32 // register index, CSR index, or vreg lane (idx*4+lane)
	addr uint64 // memory address / old PC / old LrAddr
	old  uint64 // old value; for compLr: bit0 = old LrValid
	size uint8  // memory access size
}

// CompLog accumulates compensation entries. The zero value is ready to use
// but disabled; call Enable first.
type CompLog struct {
	entries []compEntry
	enabled bool
}

// Enable turns on logging.
func (l *CompLog) Enable() { l.enabled = true }

// Enabled reports whether mutations are being recorded.
func (l *CompLog) Enabled() bool { return l != nil && l.enabled }

// Mark returns the current log position, usable as a checkpoint token.
func (l *CompLog) Mark() int { return len(l.entries) }

// TrimBefore discards entries older than mark, rebasing later marks by
// returning the number of dropped entries. Callers must subtract the result
// from any retained marks.
func (l *CompLog) TrimBefore(mark int) int {
	if mark <= 0 {
		return 0
	}
	n := copy(l.entries, l.entries[mark:])
	l.entries = l.entries[:n]
	return mark
}

// Len reports the number of buffered entries (for stats/tests).
func (l *CompLog) Len() int { return len(l.entries) }

func (l *CompLog) push(e compEntry) {
	if l.enabled {
		l.entries = append(l.entries, e)
	}
}

// RevertTo rolls the machine back to the state it had at mark by applying
// logged old values in reverse order, then truncates the log.
func (l *CompLog) RevertTo(m *Machine, mark int) {
	for i := len(l.entries) - 1; i >= mark; i-- {
		e := l.entries[i]
		switch e.kind {
		case compGPR:
			m.State.GPR[e.idx] = e.old
		case compFPR:
			m.State.FPR[e.idx] = e.old
		case compVReg:
			m.State.VReg[e.idx/4][e.idx%4] = e.old
		case compCSR:
			m.State.CSR[e.idx] = e.old
		case compPC:
			m.State.PC = e.addr
		case compMem:
			m.Mem.Write(e.addr, int(e.size), e.old)
		case compLr:
			m.State.LrValid = e.old&1 != 0
			m.State.LrAddr = e.addr
		case compPriv:
			m.State.Priv = e.old
		}
	}
	l.entries = l.entries[:mark]
}
