package arch

import (
	"math"
	"math/bits"

	"repro/internal/isa"
)

// Step fetches, decodes, and executes one instruction, returning the Exec
// record. Exceptions are architecturally taken (CSRs updated, PC vectored)
// and reported in the record; Step never returns an error for architectural
// conditions.
func (m *Machine) Step() Exec {
	pc := m.State.PC
	raw := uint32(m.Mem.Read(pc&PhysMask, 4))
	ex := Exec{PC: pc, Instr: raw}

	in, err := isa.Decode(raw)
	ex.Inst = in
	if err != nil {
		m.RaiseException(isa.ExcIllegalInstr, uint64(raw))
		ex.Exception, ex.Cause, ex.Tval = true, isa.ExcIllegalInstr, uint64(raw)
		ex.NextPC = m.State.PC
		m.InstrRet++
		m.runHook(&ex)
		return ex
	}

	next := pc + 4
	s := &m.State
	rs1 := s.GPR[in.Rs1]
	rs2 := s.GPR[in.Rs2]

	writeInt := func(v uint64) {
		m.SetGPR(in.Rd, v)
		ex.WroteInt, ex.Wdest, ex.Wdata = true, in.Rd, v
		if in.Rd == 0 {
			ex.Wdata = 0
		}
	}
	writeFp := func(v uint64) {
		m.SetFPR(in.Rd, v)
		ex.WroteFp, ex.Wdest, ex.Wdata = true, in.Rd, v
	}
	raise := func(cause, tval uint64) {
		m.RaiseException(cause, tval)
		ex.Exception, ex.Cause, ex.Tval = true, cause, tval
	}

	switch in.Op {
	case isa.OpLUI:
		writeInt(uint64(in.Imm))
	case isa.OpAUIPC:
		writeInt(pc + uint64(in.Imm))
	case isa.OpJAL:
		writeInt(pc + 4)
		next = pc + uint64(in.Imm)
	case isa.OpJALR:
		t := (rs1 + uint64(in.Imm)) &^ 1
		writeInt(pc + 4)
		next = t

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		taken := false
		switch in.Op {
		case isa.OpBEQ:
			taken = rs1 == rs2
		case isa.OpBNE:
			taken = rs1 != rs2
		case isa.OpBLT:
			taken = int64(rs1) < int64(rs2)
		case isa.OpBGE:
			taken = int64(rs1) >= int64(rs2)
		case isa.OpBLTU:
			taken = rs1 < rs2
		case isa.OpBGEU:
			taken = rs1 >= rs2
		}
		if taken {
			next = pc + uint64(in.Imm)
		}

	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLD, isa.OpLBU, isa.OpLHU, isa.OpLWU:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		size := isa.MemSize(in.Op)
		v, mmio := m.LoadMem(addr, size)
		switch in.Op {
		case isa.OpLB:
			v = uint64(int64(int8(v)))
		case isa.OpLH:
			v = uint64(int64(int16(v)))
		case isa.OpLW:
			v = uint64(int64(int32(v)))
		}
		writeInt(v)
		ex.Mem, ex.IsLoad, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, true, addr, size, v, mmio

	case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		size := isa.MemSize(in.Op)
		mmio := m.StoreMem(addr, size, rs2)
		ex.Mem, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, addr, size, rs2, mmio

	case isa.OpADDI:
		writeInt(rs1 + uint64(in.Imm))
	case isa.OpSLTI:
		writeInt(b2u(int64(rs1) < in.Imm))
	case isa.OpSLTIU:
		writeInt(b2u(rs1 < uint64(in.Imm)))
	case isa.OpXORI:
		writeInt(rs1 ^ uint64(in.Imm))
	case isa.OpORI:
		writeInt(rs1 | uint64(in.Imm))
	case isa.OpANDI:
		writeInt(rs1 & uint64(in.Imm))
	case isa.OpSLLI:
		writeInt(rs1 << uint64(in.Imm&63))
	case isa.OpSRLI:
		writeInt(rs1 >> uint64(in.Imm&63))
	case isa.OpSRAI:
		writeInt(uint64(int64(rs1) >> uint64(in.Imm&63)))

	case isa.OpADD:
		writeInt(rs1 + rs2)
	case isa.OpSUB:
		writeInt(rs1 - rs2)
	case isa.OpSLL:
		writeInt(rs1 << (rs2 & 63))
	case isa.OpSLT:
		writeInt(b2u(int64(rs1) < int64(rs2)))
	case isa.OpSLTU:
		writeInt(b2u(rs1 < rs2))
	case isa.OpXOR:
		writeInt(rs1 ^ rs2)
	case isa.OpSRL:
		writeInt(rs1 >> (rs2 & 63))
	case isa.OpSRA:
		writeInt(uint64(int64(rs1) >> (rs2 & 63)))
	case isa.OpOR:
		writeInt(rs1 | rs2)
	case isa.OpAND:
		writeInt(rs1 & rs2)

	case isa.OpADDIW:
		writeInt(sext32(uint32(rs1) + uint32(in.Imm)))
	case isa.OpSLLIW:
		writeInt(sext32(uint32(rs1) << uint32(in.Imm&31)))
	case isa.OpSRLIW:
		writeInt(sext32(uint32(rs1) >> uint32(in.Imm&31)))
	case isa.OpSRAIW:
		writeInt(uint64(int64(int32(rs1) >> uint32(in.Imm&31))))
	case isa.OpADDW:
		writeInt(sext32(uint32(rs1) + uint32(rs2)))
	case isa.OpSUBW:
		writeInt(sext32(uint32(rs1) - uint32(rs2)))
	case isa.OpSLLW:
		writeInt(sext32(uint32(rs1) << (rs2 & 31)))
	case isa.OpSRLW:
		writeInt(sext32(uint32(rs1) >> (rs2 & 31)))
	case isa.OpSRAW:
		writeInt(uint64(int64(int32(rs1) >> (rs2 & 31))))

	case isa.OpMUL:
		writeInt(rs1 * rs2)
	case isa.OpMULH:
		writeInt(mulh(rs1, rs2))
	case isa.OpMULHSU:
		writeInt(mulhsu(rs1, rs2))
	case isa.OpMULHU:
		hi, _ := bits.Mul64(rs1, rs2)
		writeInt(hi)
	case isa.OpDIV:
		writeInt(uint64(divS(int64(rs1), int64(rs2))))
	case isa.OpDIVU:
		writeInt(divU(rs1, rs2))
	case isa.OpREM:
		writeInt(uint64(remS(int64(rs1), int64(rs2))))
	case isa.OpREMU:
		writeInt(remU(rs1, rs2))
	case isa.OpMULW:
		writeInt(sext32(uint32(rs1) * uint32(rs2)))
	case isa.OpDIVW:
		writeInt(uint64(int64(int32(divS(int64(int32(rs1)), int64(int32(rs2)))))))
	case isa.OpDIVUW:
		writeInt(sext32(uint32(divU(uint64(uint32(rs1)), uint64(uint32(rs2))))))
	case isa.OpREMW:
		writeInt(uint64(int64(int32(remS(int64(int32(rs1)), int64(int32(rs2)))))))
	case isa.OpREMUW:
		writeInt(sext32(uint32(remU(uint64(uint32(rs1)), uint64(uint32(rs2))))))

	case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC, isa.OpCSRRWI, isa.OpCSRRSI, isa.OpCSRRCI:
		old := s.CSRVal(in.CSR)
		var operand uint64
		switch in.Op {
		case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
			operand = rs1
		default:
			operand = uint64(in.Rs1) // zimm
		}
		switch in.Op {
		case isa.OpCSRRW, isa.OpCSRRWI:
			m.SetCSRAddr(in.CSR, operand)
		case isa.OpCSRRS, isa.OpCSRRSI:
			if in.Rs1 != 0 {
				m.SetCSRAddr(in.CSR, old|operand)
			}
		case isa.OpCSRRC, isa.OpCSRRCI:
			if in.Rs1 != 0 {
				m.SetCSRAddr(in.CSR, old&^operand)
			}
		}
		writeInt(old)

	case isa.OpFENCE:
		ex.Special = true
	case isa.OpECALL:
		raise(isa.ExcEcallM, 0)
		ex.Special = true
		next = m.State.PC
	case isa.OpEBREAK:
		raise(isa.ExcBreakpoint, pc)
		ex.Special = true
		next = m.State.PC
	case isa.OpMRET:
		m.popStatusStack()
		next = s.CSRVal(isa.CSRMepc)
		ex.Special = true
	case isa.OpWFI:
		ex.Special = true

	case isa.OpLRD:
		addr := rs1 & PhysMask
		v, mmio := m.LoadMem(addr, 8)
		m.setLr(true, addr)
		writeInt(v)
		ex.Mem, ex.IsLoad, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, true, addr, 8, v, mmio
		ex.LrSc = true
	case isa.OpSCD:
		addr := rs1 & PhysMask
		ok := s.LrValid && s.LrAddr == addr
		if ok {
			m.StoreMem(addr, 8, rs2)
			ex.Mem, ex.MemAddr, ex.MemSize, ex.MemData = true, addr, 8, rs2
		}
		m.setLr(false, 0)
		writeInt(b2u(!ok))
		ex.LrSc, ex.ScSuccess = true, ok
	case isa.OpAMOSWAPD, isa.OpAMOADDD, isa.OpAMOXORD, isa.OpAMOANDD, isa.OpAMOORD:
		addr := rs1 & PhysMask
		old, mmio := m.LoadMem(addr, 8)
		var nv uint64
		switch in.Op {
		case isa.OpAMOSWAPD:
			nv = rs2
		case isa.OpAMOADDD:
			nv = old + rs2
		case isa.OpAMOXORD:
			nv = old ^ rs2
		case isa.OpAMOANDD:
			nv = old & rs2
		case isa.OpAMOORD:
			nv = old | rs2
		}
		m.StoreMem(addr, 8, nv)
		writeInt(old)
		ex.Mem, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, addr, 8, nv, mmio
		ex.Atomic, ex.AtomicOld = true, old

	case isa.OpFLD:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		v, mmio := m.LoadMem(addr, 8)
		writeFp(v)
		ex.Mem, ex.IsLoad, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, true, addr, 8, v, mmio
	case isa.OpFSD:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		v := s.FPR[in.Rs2]
		mmio := m.StoreMem(addr, 8, v)
		ex.Mem, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, addr, 8, v, mmio
	case isa.OpFADDD, isa.OpFSUBD, isa.OpFMULD:
		a := math.Float64frombits(s.FPR[in.Rs1])
		b := math.Float64frombits(s.FPR[in.Rs2])
		var r float64
		switch in.Op {
		case isa.OpFADDD:
			r = a + b
		case isa.OpFSUBD:
			r = a - b
		default:
			r = a * b
		}
		writeFp(math.Float64bits(r))
	case isa.OpFMVXD:
		writeInt(s.FPR[in.Rs1])
	case isa.OpFMVDX:
		writeFp(rs1)
	case isa.OpFSGNJD:
		writeFp(s.FPR[in.Rs1]&^(1<<63) | s.FPR[in.Rs2]&(1<<63))

	case isa.OpVSETVLI:
		req := rs1
		if in.Rs1 == 0 {
			req = 4
		}
		vl := req
		if vl > 4 {
			vl = 4
		}
		m.SetCSRAddr(isa.CSRVl, vl)
		m.SetCSRAddr(isa.CSRVtype, uint64(in.Imm)&0x7FF)
		writeInt(vl)
		ex.Vec, ex.Vl = true, vl
	case isa.OpVADDVV, isa.OpVXORVV, isa.OpVANDVV:
		vl := s.CSRVal(isa.CSRVl)
		for l := 0; l < int(vl) && l < 4; l++ {
			a, b := s.VReg[in.Rs1][l], s.VReg[in.Rs2][l]
			var r uint64
			switch in.Op {
			case isa.OpVADDVV:
				r = a + b
			case isa.OpVXORVV:
				r = a ^ b
			default:
				r = a & b
			}
			m.SetVRegLane(int(in.Rd), l, r)
		}
		ex.WroteVec, ex.Wdest, ex.VData = true, in.Rd, s.VReg[in.Rd]
		ex.Vec, ex.Vl = true, vl
		m.resetVstart()
	case isa.OpVMVVX:
		vl := s.CSRVal(isa.CSRVl)
		for l := 0; l < int(vl) && l < 4; l++ {
			m.SetVRegLane(int(in.Rd), l, rs1)
		}
		ex.WroteVec, ex.Wdest, ex.VData = true, in.Rd, s.VReg[in.Rd]
		ex.Vec, ex.Vl = true, vl
		m.resetVstart()
	case isa.OpVLE:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		vl := s.CSRVal(isa.CSRVl)
		for l := 0; l < int(vl) && l < 4; l++ {
			v, _ := m.LoadMem(addr+uint64(l)*8, 8)
			m.SetVRegLane(int(in.Rd), l, v)
		}
		ex.WroteVec, ex.Wdest, ex.VData = true, in.Rd, s.VReg[in.Rd]
		ex.Mem, ex.IsLoad, ex.MemAddr, ex.MemSize = true, true, addr, int(vl)*8
		ex.Vec, ex.Vl = true, vl
		m.resetVstart()
	case isa.OpVSE:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		vl := s.CSRVal(isa.CSRVl)
		for l := 0; l < int(vl) && l < 4; l++ {
			m.StoreMem(addr+uint64(l)*8, 8, s.VReg[in.Rs2][l])
		}
		ex.Mem, ex.MemAddr, ex.MemSize = true, addr, int(vl)*8
		ex.VData = s.VReg[in.Rs2]
		ex.Vec, ex.Vl = true, vl
		m.resetVstart()

	case isa.OpHLVD:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		if s.CSRVal(isa.CSRHgatp) == 0 {
			raise(isa.ExcGuestLoadPageFault, addr)
			next = m.State.PC
		} else {
			v, mmio := m.LoadMem(addr, 8)
			writeInt(v)
			ex.Mem, ex.IsLoad, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, true, addr, 8, v, mmio
		}
	case isa.OpHSVD:
		addr := (rs1 + uint64(in.Imm)) & PhysMask
		if s.CSRVal(isa.CSRHgatp) == 0 {
			raise(isa.ExcGuestStorePageFault, addr)
			next = m.State.PC
		} else {
			mmio := m.StoreMem(addr, 8, rs2)
			ex.Mem, ex.MemAddr, ex.MemSize, ex.MemData, ex.MMIO = true, addr, 8, rs2, mmio
		}
	}

	if !ex.Exception {
		m.SetPC(next)
	}
	ex.NextPC = m.State.PC
	m.InstrRet++
	m.runHook(&ex)
	return ex
}

func (m *Machine) resetVstart() {
	if old := m.State.CSRVal(isa.CSRVstart); old != 0 {
		m.SetCSRAddr(isa.CSRVstart, 0)
	}
}

func (m *Machine) runHook(ex *Exec) {
	if m.Hooks.AfterExec != nil {
		m.Hooks.AfterExec(m, ex)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

func mulh(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	if int64(a) < 0 {
		hi -= b
	}
	if int64(b) < 0 {
		hi -= a
	}
	return hi
}

func mulhsu(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	if int64(a) < 0 {
		hi -= b
	}
	return hi
}

func divS(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt64 && b == -1:
		return math.MinInt64
	}
	return a / b
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remS(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt64 && b == -1:
		return 0
	}
	return a % b
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}
