package arch

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// Exec reports everything a single instruction did. The DUT monitor converts
// Exec records into verification events; bug hooks may mutate them (together
// with machine state) to model RTL defects.
type Exec struct {
	PC     uint64
	NextPC uint64
	Instr  uint32
	Inst   isa.Inst

	// Register writeback.
	WroteInt bool
	WroteFp  bool
	WroteVec bool
	Wdest    uint8
	Wdata    uint64
	VData    [4]uint64

	// Memory access.
	Mem     bool
	IsLoad  bool
	MemAddr uint64
	MemSize int
	MemData uint64
	MMIO    bool

	// Atomics.
	Atomic    bool
	AtomicOld uint64
	LrSc      bool
	ScSuccess bool

	// Vector.
	Vec bool
	Vl  uint64

	// Exception taken by this instruction (instead of normal retirement).
	Exception bool
	Cause     uint64
	Tval      uint64

	// Special system instructions (ecall/mret/wfi/fence).
	Special bool
}

// Hooks let the DUT inject microarchitectural bugs: AfterExec runs after an
// instruction fully executes and may corrupt state and the Exec record.
type Hooks struct {
	AfterExec func(m *Machine, ex *Exec)
}

// Machine executes the ISA over a memory. With a Bus attached, MMIO
// addresses reach devices (the DUT configuration); without one, all
// addresses read/write plain memory (the REF configuration, whose MMIO
// results are synchronized externally).
type Machine struct {
	State State
	Mem   *mem.Memory
	Bus   *mem.Bus
	Hooks Hooks
	Log   CompLog

	// InstrRet counts retired instructions (including excepting ones).
	InstrRet uint64
}

// NewMachine returns a machine over m with reset state.
func NewMachine(m *mem.Memory) *Machine {
	return &Machine{State: NewState(), Mem: m}
}

// Logged state mutators.

// SetGPR writes an integer register (x0 stays hardwired to zero).
func (m *Machine) SetGPR(i uint8, v uint64) {
	if i == 0 {
		return
	}
	m.Log.push(compEntry{kind: compGPR, idx: uint32(i), old: m.State.GPR[i]})
	m.State.GPR[i] = v
}

// SetFPR writes a floating-point register.
func (m *Machine) SetFPR(i uint8, v uint64) {
	m.Log.push(compEntry{kind: compFPR, idx: uint32(i), old: m.State.FPR[i]})
	m.State.FPR[i] = v
}

// SetVRegLane writes one 64-bit lane of a vector register.
func (m *Machine) SetVRegLane(reg, lane int, v uint64) {
	m.Log.push(compEntry{kind: compVReg, idx: uint32(reg*4 + lane), old: m.State.VReg[reg][lane]})
	m.State.VReg[reg][lane] = v
}

// SetCSRAddr writes a CSR by address, respecting hardwired registers.
func (m *Machine) SetCSRAddr(addr uint16, v uint64) {
	if addr == isa.CSRMhartid || addr == isa.CSRVlenb || addr == isa.CSRMisa {
		return
	}
	i := CSRIndex(addr)
	if i < 0 {
		return
	}
	m.Log.push(compEntry{kind: compCSR, idx: uint32(i), old: m.State.CSR[i]})
	m.State.CSR[i] = v
}

// SetPC updates the program counter.
func (m *Machine) SetPC(pc uint64) {
	m.Log.push(compEntry{kind: compPC, addr: m.State.PC})
	m.State.PC = pc
}

func (m *Machine) setLr(valid bool, addr uint64) {
	var ov uint64
	if m.State.LrValid {
		ov = 1
	}
	m.Log.push(compEntry{kind: compLr, addr: m.State.LrAddr, old: ov})
	m.State.LrValid, m.State.LrAddr = valid, addr
}

// PhysMask truncates canonical (sign-extended) addresses to the 32-bit
// physical address space where RAM and all devices live, mirroring the DUT's
// physical address width.
const PhysMask = 0xFFFF_FFFF

// LoadMem reads size bytes at addr, honouring the device bus when present.
// The second result reports whether the access was MMIO.
func (m *Machine) LoadMem(addr uint64, size int) (uint64, bool) {
	addr &= PhysMask
	if m.Bus != nil {
		return m.Bus.Load(addr, size)
	}
	return m.Mem.Read(addr, size), false
}

// StoreMem writes size bytes at addr with compensation logging, honouring
// the device bus. The result reports whether the access was MMIO.
func (m *Machine) StoreMem(addr uint64, size int, val uint64) bool {
	addr &= PhysMask
	if m.Bus != nil {
		if d := mem.IsMMIO(addr); d {
			return m.Bus.Store(addr, size, val)
		}
	}
	if m.Log.Enabled() {
		old := m.Mem.Read(addr, size)
		m.Log.push(compEntry{kind: compMem, addr: addr, old: old, size: uint8(size)})
	}
	m.Mem.Write(addr, size, val)
	return false
}

// RaiseException vectors the machine to mtvec, updating the trap CSRs.
func (m *Machine) RaiseException(cause, tval uint64) {
	m.SetCSRAddr(isa.CSRMepc, m.State.PC)
	m.SetCSRAddr(isa.CSRMcause, cause)
	m.SetCSRAddr(isa.CSRMtval, tval)
	m.pushStatusStack()
	m.SetPC(m.State.CSRVal(isa.CSRMtvec) &^ 3)
}

// TakeInterrupt forces an asynchronous interrupt trap before the next
// instruction. The DUT decides when; the REF is told by the checker.
func (m *Machine) TakeInterrupt(cause uint64) {
	m.SetCSRAddr(isa.CSRMepc, m.State.PC)
	m.SetCSRAddr(isa.CSRMcause, cause|isa.InterruptBit)
	m.SetCSRAddr(isa.CSRMtval, 0)
	m.pushStatusStack()
	m.SetPC(m.State.CSRVal(isa.CSRMtvec) &^ 3)
}

// mstatus bit positions.
const (
	mstatusMIE  = 1 << 3
	mstatusMPIE = 1 << 7
	mstatusMPP  = 3 << 11
)

func (m *Machine) pushStatusStack() {
	st := m.State.CSRVal(isa.CSRMstatus)
	st &^= mstatusMPIE
	if st&mstatusMIE != 0 {
		st |= mstatusMPIE
	}
	st &^= mstatusMIE
	st |= mstatusMPP // previous privilege = M
	m.SetCSRAddr(isa.CSRMstatus, st)
}

func (m *Machine) popStatusStack() {
	st := m.State.CSRVal(isa.CSRMstatus)
	st &^= mstatusMIE
	if st&mstatusMPIE != 0 {
		st |= mstatusMIE
	}
	st |= mstatusMPIE
	m.SetCSRAddr(isa.CSRMstatus, st)
}

// InterruptsEnabled reports whether mstatus.MIE is set.
func (m *Machine) InterruptsEnabled() bool {
	return m.State.CSRVal(isa.CSRMstatus)&mstatusMIE != 0
}

// InterruptPendingEnabled returns the highest-priority pending-and-enabled
// interrupt cause, if any, based on mip & mie.
func (m *Machine) InterruptPendingEnabled() (uint64, bool) {
	if !m.InterruptsEnabled() {
		return 0, false
	}
	pending := m.State.CSRVal(isa.CSRMip) & m.State.CSRVal(isa.CSRMie)
	for _, c := range []uint64{isa.IntExternalM, isa.IntSoftwareM, isa.IntTimerM, isa.IntVirtual} {
		if pending&(1<<c) != 0 {
			return c, true
		}
	}
	return 0, false
}

// SkipInstr retires an instruction without executing it, forcing the given
// writeback — the DiffTest "skip" mechanism for MMIO instructions whose
// results are synchronized from the DUT (paper §2.1).
func (m *Machine) SkipInstr(wroteInt bool, wdest uint8, wdata uint64) {
	if wroteInt {
		m.SetGPR(wdest, wdata)
	}
	m.SetPC(m.State.PC + 4)
	m.InstrRet++
}
