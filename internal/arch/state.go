// Package arch implements the architectural execution engine shared by the
// reference model (internal/ref) and the DUT simulator (internal/dut).
//
// A Machine executes one instruction per Step and reports everything that
// happened in an Exec record — the raw material the DUT monitor turns into
// verification events. All architectural state mutations funnel through
// setter methods so that a compensation log (used by Replay to revert the
// reference model, paper §4.4) can record old values.
//
// The DUT attaches a device bus and bug-injection hooks; the reference model
// attaches neither and is instead synchronized with the DUT's
// non-deterministic events by the checker.
package arch

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// NumCSRs is the number of implemented CSRs.
var NumCSRs = len(isa.KnownCSRs)

var csrIndex = func() map[uint16]int {
	m := make(map[uint16]int, len(isa.KnownCSRs))
	for i, a := range isa.KnownCSRs {
		m[a] = i
	}
	return m
}()

// CSRIndex returns the dense index of CSR address addr, or -1.
func CSRIndex(addr uint16) int {
	if i, ok := csrIndex[addr]; ok {
		return i
	}
	return -1
}

// State is the complete architectural state of a hart.
type State struct {
	PC   uint64
	GPR  [32]uint64
	FPR  [32]uint64
	VReg [32][4]uint64 // VLEN=256
	CSR  []uint64      // indexed by CSRIndex; len NumCSRs
	Priv uint64        // privilege level; this model runs in M-mode (3)

	LrValid bool
	LrAddr  uint64
}

// NewState returns a reset state with PC at the RAM base.
func NewState() State {
	s := State{PC: mem.RAMBase, Priv: 3, CSR: make([]uint64, NumCSRs)}
	s.SetCSR(isa.CSRMisa, 1<<63|1<<20|1<<12|1<<8|1<<5|1<<0) // rv64 IMAFV-ish
	s.SetCSR(isa.CSRMhartid, 0)
	s.SetCSR(isa.CSRVlenb, isa.VLenBytes)
	s.SetCSR(isa.CSRMtvec, mem.RAMBase) // sane default trap vector
	return s
}

// CSRVal returns the value of the CSR at address addr (0 if unimplemented).
func (s *State) CSRVal(addr uint16) uint64 {
	if i := CSRIndex(addr); i >= 0 {
		return s.CSR[i]
	}
	return 0
}

// SetCSR stores v into the CSR at address addr, ignoring unimplemented ones.
func (s *State) SetCSR(addr uint16, v uint64) {
	if i := CSRIndex(addr); i >= 0 {
		s.CSR[i] = v
	}
}

// Clone returns a deep copy of the state (used by snapshot-style debugging
// baselines; Replay's compensation log avoids this cost).
func (s *State) Clone() State {
	c := *s
	c.CSR = append([]uint64(nil), s.CSR...)
	return c
}

// Equal reports whether two states match exactly.
func (s *State) Equal(o *State) bool {
	if s.PC != o.PC || s.GPR != o.GPR || s.FPR != o.FPR || s.VReg != o.VReg ||
		s.Priv != o.Priv || s.LrValid != o.LrValid || s.LrAddr != o.LrAddr {
		return false
	}
	for i := range s.CSR {
		if s.CSR[i] != o.CSR[i] {
			return false
		}
	}
	return true
}

// Diff describes the first difference between two states, for bug reports.
func (s *State) Diff(o *State) string {
	if s.PC != o.PC {
		return fmt.Sprintf("PC: %#x vs %#x", s.PC, o.PC)
	}
	for i := range s.GPR {
		if s.GPR[i] != o.GPR[i] {
			return fmt.Sprintf("x%d(%s): %#x vs %#x", i, isa.RegName(uint8(i)), s.GPR[i], o.GPR[i])
		}
	}
	for i := range s.FPR {
		if s.FPR[i] != o.FPR[i] {
			return fmt.Sprintf("f%d: %#x vs %#x", i, s.FPR[i], o.FPR[i])
		}
	}
	for i := range s.VReg {
		if s.VReg[i] != o.VReg[i] {
			return fmt.Sprintf("v%d: %x vs %x", i, s.VReg[i], o.VReg[i])
		}
	}
	for i := range s.CSR {
		if s.CSR[i] != o.CSR[i] {
			return fmt.Sprintf("%s: %#x vs %#x", isa.CSRName(isa.KnownCSRs[i]), s.CSR[i], o.CSR[i])
		}
	}
	return "states equal"
}
