package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/event"
)

// Differencing (paper §4.3, "Differencing"): verification events exhibit
// repetitiveness — e.g. most CSRs are unchanged across long instruction
// sequences. A diff item transmits an 8-byte order tag plus only the 64-bit
// words that changed relative to the previous transmitted instance of the
// same event kind, preceded by a change bitmask. The software side completes
// the event by filling unchanged words from its last-seen copy and compares
// it when the reference model reaches the tagged instruction.

func diffWords(k event.Kind) (nWords, maskWords int) {
	nWords = event.SizeOf(k) / 8
	return nWords, (nWords + 63) / 64
}

// DiffItem encodes ev as a difference against prev (which must be the same
// kind), tagged with the instruction sequence number the snapshot was taken
// at. The result is smaller than a raw item whenever few words changed.
func DiffItem(core, slot uint8, tag uint64, prev, ev event.Event) Item {
	k := ev.Kind()
	if prev == nil || prev.Kind() != k {
		panic("wire: DiffItem base/event kind mismatch")
	}
	oldB := prev.AppendTo(event.GetBuf(prev.EncodedSize()))
	newB := ev.AppendTo(event.GetBuf(ev.EncodedSize()))
	nWords, maskWords := diffWords(k)

	// First pass counts changed words so the payload allocates exact-size;
	// second pass writes masks in place and appends the changed words.
	changed := 0
	for w := 0; w < nWords; w++ {
		if binary.LittleEndian.Uint64(oldB[w*8:]) != binary.LittleEndian.Uint64(newB[w*8:]) {
			changed++
		}
	}
	p := make([]byte, 8+8*maskWords, 8+8*(maskWords+changed))
	binary.LittleEndian.PutUint64(p, tag)
	for w := 0; w < nWords; w++ {
		nv := binary.LittleEndian.Uint64(newB[w*8:])
		if binary.LittleEndian.Uint64(oldB[w*8:]) != nv {
			mo := 8 + (w/64)*8
			binary.LittleEndian.PutUint64(p[mo:], binary.LittleEndian.Uint64(p[mo:])|1<<(w%64))
			p = binary.LittleEndian.AppendUint64(p, nv)
		}
	}
	event.PutBuf(oldB)
	event.PutBuf(newB)
	return Item{Type: TypeDiffBase + uint8(k), Core: core, Slot: slot, Payload: p}
}

// DiffSize returns the wire payload size DiffItem would produce without
// building it (for fusion-benefit accounting).
func DiffSize(prev, ev event.Event) int {
	k := ev.Kind()
	oldB := prev.AppendTo(event.GetBuf(prev.EncodedSize()))
	newB := ev.AppendTo(event.GetBuf(ev.EncodedSize()))
	nWords, maskWords := diffWords(k)
	n := 0
	for w := 0; w < nWords; w++ {
		if binary.LittleEndian.Uint64(oldB[w*8:]) != binary.LittleEndian.Uint64(newB[w*8:]) {
			n++
		}
	}
	event.PutBuf(oldB)
	event.PutBuf(newB)
	return 8 + 8*(maskWords+n)
}

// DecodeDiff completes a diff item using the previous instance of the same
// kind, returning the order tag and the reconstructed event.
func DecodeDiff(it Item, prev event.Event) (tag uint64, ev event.Event, err error) {
	k, ok := it.Kind()
	if !ok || it.Type < TypeDiffBase || it.Type >= TypeInvalid {
		return 0, nil, fmt.Errorf("wire: item type %d is not a diff", it.Type)
	}
	if prev == nil || prev.Kind() != k {
		return 0, nil, fmt.Errorf("wire: diff of %v lacks matching base", k)
	}
	nWords, maskWords := diffWords(k)
	if len(it.Payload) < 8+maskWords*8 {
		return 0, nil, fmt.Errorf("wire: short diff payload for %v", k)
	}
	tag = binary.LittleEndian.Uint64(it.Payload)
	body := it.Payload[8:]
	// Pooled scratch holds the reconstructed encoding; event.Decode copies it
	// into the returned event, so the scratch is safe to recycle after.
	buf := prev.AppendTo(event.GetBuf(prev.EncodedSize()))
	pos := maskWords * 8
	for w := 0; w < nWords; w++ {
		m := binary.LittleEndian.Uint64(body[(w/64)*8:])
		if m&(1<<(w%64)) != 0 {
			if pos+8 > len(body) {
				event.PutBuf(buf)
				return 0, nil, fmt.Errorf("wire: diff payload truncated for %v", k)
			}
			copy(buf[w*8:], body[pos:pos+8])
			pos += 8
		}
	}
	if pos != len(body) {
		event.PutBuf(buf)
		return 0, nil, fmt.Errorf("wire: diff payload for %v has %d trailing bytes", k, len(body)-pos)
	}
	ev, err = event.Decode(k, buf)
	event.PutBuf(buf)
	return tag, ev, err
}

// ParseDiffLen scans a diff payload prefix for kind k starting at buf and
// returns the total payload length (tag + mask words + changed words). Used
// by the unpacker to delimit variable-length diff items inside a segment.
func ParseDiffLen(k event.Kind, buf []byte) (int, error) {
	nWords, maskWords := diffWords(k)
	if len(buf) < 8+maskWords*8 {
		return 0, fmt.Errorf("wire: truncated diff mask for %v", k)
	}
	changed := 0
	for w := 0; w < nWords; w++ {
		m := binary.LittleEndian.Uint64(buf[8+(w/64)*8:])
		if m&(1<<(w%64)) != 0 {
			changed++
		}
	}
	return 8 + 8*(maskWords+changed), nil
}
