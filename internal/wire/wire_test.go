package wire

import (
	"math/rand"
	"testing"

	"repro/internal/event"
)

func TestRawItemRoundTrip(t *testing.T) {
	ev := &event.InstrCommit{PC: 0x80000000, Instr: 0x13, Wdata: 42}
	it := RawItem(1, 3, ev)
	if k, ok := it.Kind(); !ok || k != event.KindInstrCommit {
		t.Fatalf("kind = %v %v", k, ok)
	}
	back, err := DecodeRaw(it)
	if err != nil {
		t.Fatal(err)
	}
	if !event.Equal(ev, back) {
		t.Error("raw round trip mismatch")
	}
	if it.InstrCount() != 1 {
		t.Errorf("commit InstrCount = %d", it.InstrCount())
	}
}

func TestNDEItemRoundTrip(t *testing.T) {
	ev := &event.Interrupt{Cause: 7, PC: 0x80001234}
	it := NDEItem(0, 0, 99887, ev)
	if !it.IsNDE() {
		t.Fatal("not flagged NDE")
	}
	seq, back, err := DecodeNDE(it)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 99887 || !event.Equal(ev, back) {
		t.Errorf("NDE round trip: seq=%d", seq)
	}
}

func TestFusedItemRoundTrip(t *testing.T) {
	fc := FusedCommit{LastSeq: 131, Count: 32, LastPC: 0x80000080, PCDigest: 0xDEAD}
	it := FusedItem(1, 0, fc)
	back, err := DecodeFused(it)
	if err != nil {
		t.Fatal(err)
	}
	if back != fc {
		t.Errorf("fused round trip: %+v vs %+v", back, fc)
	}
	if it.InstrCount() != 32 {
		t.Errorf("fused InstrCount = %d", it.InstrCount())
	}
}

func TestDiffRoundTripAllSnapshotKinds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	kinds := []event.Kind{
		event.KindCSRState, event.KindArchIntRegState, event.KindArchVecRegState,
		event.KindVecCSRState, event.KindFpCSRState, event.KindHCSRState,
	}
	for _, k := range kinds {
		for trial := 0; trial < 50; trial++ {
			oldRaw := make([]byte, event.SizeOf(k))
			r.Read(oldRaw)
			prev, err := event.Decode(k, oldRaw)
			if err != nil {
				t.Fatal(err)
			}
			// Mutate a few words.
			newRaw := append([]byte(nil), event.EncodeValue(prev)...)
			for i := 0; i < r.Intn(4); i++ {
				w := r.Intn(len(newRaw) / 8)
				newRaw[w*8] ^= byte(1 + r.Intn(255))
			}
			cur, err := event.Decode(k, newRaw)
			if err != nil {
				t.Fatal(err)
			}
			it := DiffItem(0, 0, 4242, prev, cur)
			if n, err := ParseDiffLen(k, it.Payload); err != nil || n != len(it.Payload) {
				t.Fatalf("%v: ParseDiffLen = %d,%v want %d", k, n, err, len(it.Payload))
			}
			tag, back, err := DecodeDiff(it, prev)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if tag != 4242 {
				t.Fatalf("%v: diff tag = %d", k, tag)
			}
			if !event.Equal(cur, back) {
				t.Fatalf("%v: diff round trip mismatch", k)
			}
		}
	}
}

func TestDiffSavesBytesWhenUnchanged(t *testing.T) {
	a := &event.CSRState{Mstatus: 0x1888, Mtvec: 0x80000100}
	b := &event.CSRState{Mstatus: 0x1888, Mtvec: 0x80000100, Minstret: 5}
	it := DiffItem(2, 1, 7, a, b)
	if len(it.Payload) >= event.SizeOf(event.KindCSRState) {
		t.Errorf("diff (%dB) not smaller than raw (%dB)", len(it.Payload), event.SizeOf(event.KindCSRState))
	}
	if got := DiffSize(a, b); got != len(it.Payload) {
		t.Errorf("DiffSize = %d, payload %d", got, len(it.Payload))
	}
	_, back, err := DecodeDiff(it, a)
	if err != nil {
		t.Fatal(err)
	}
	if !event.Equal(b, back) {
		t.Error("completion mismatch")
	}
}

func TestFromRecordsSlots(t *testing.T) {
	recs := []event.Record{
		{Core: 0, Ev: &event.Interrupt{}},        // slot 0
		{Core: 0, Ev: &event.InstrCommit{PC: 1}}, // slot 1
		{Core: 0, Ev: &event.Load{PAddr: 8}},     // slot 1
		{Core: 0, Ev: &event.InstrCommit{PC: 2}}, // slot 2
		{Core: 1, Ev: &event.InstrCommit{PC: 3}}, // core1 slot 1
		{Core: 0, Ev: &event.ArchIntRegState{}},  // core0 slot 2
	}
	// Note: core-interleaved input; slots are tracked per core.
	items := FromRecords(recs)
	wantSlots := []uint8{0, 1, 1, 2, 1, 2}
	for i, it := range items {
		if it.Slot != wantSlots[i] {
			t.Errorf("item %d slot = %d, want %d", i, it.Slot, wantSlots[i])
		}
	}
}

func TestSortKeyRestoresOrder(t *testing.T) {
	// A cycle's records in canonical order must be exactly re-sortable
	// from (core, slot, priority).
	recs := []event.Record{
		{Core: 0, Ev: &event.Interrupt{}},
		{Core: 0, Ev: &event.InstrCommit{PC: 1}},
		{Core: 0, Ev: &event.Load{PAddr: 8}},
		{Core: 0, Ev: &event.Refill{Addr: 64}},
		{Core: 0, Ev: &event.InstrCommit{PC: 2}},
		{Core: 0, Ev: &event.Store{Addr: 16}},
		{Core: 0, Ev: &event.ArchIntRegState{}},
		{Core: 0, Ev: &event.CSRState{}},
		{Core: 1, Ev: &event.InstrCommit{PC: 9}},
		{Core: 1, Ev: &event.ArchIntRegState{}},
	}
	items := FromRecords(recs)
	for i := 1; i < len(items); i++ {
		if items[i-1].SortKey() > items[i].SortKey() {
			t.Errorf("sort key not monotone at %d: %#x > %#x (kinds %v then %v)",
				i, items[i-1].SortKey(), items[i].SortKey(),
				kindOf(items[i-1]), kindOf(items[i]))
		}
	}
}

func kindOf(it Item) event.Kind { k, _ := it.Kind(); return k }

func TestPriorityCoversAllKinds(t *testing.T) {
	seen := map[uint8]event.Kind{}
	for k := event.Kind(0); k < event.NumKinds; k++ {
		p := Priority(k)
		if other, dup := seen[p]; dup {
			t.Errorf("kinds %v and %v share priority %d", other, k, p)
		}
		seen[p] = k
	}
}
