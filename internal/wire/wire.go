// Package wire defines the on-the-wire item model shared by the baseline
// per-event transport, the Batch packer, and the Squash fusion unit.
//
// A wire item is one unit of verification traffic: a raw event, an
// order-tagged NDE (transmitted ahead of fused traffic, paper §4.3), a fused
// instruction-commit summary, or a differenced state event. Items carry a
// commit-slot byte so the software side can restore the exact per-core
// checking order after type-level packing regroups a cycle's events
// (paper §4.2: dynamic unpacking with structural metadata).
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/event"
)

// Item type space.
const (
	// TypeRawBase+kind: a plain event; payload is the event encoding.
	TypeRawBase uint8 = 0
	// TypeNDEBase+kind: an order-tagged NDE; payload is an 8-byte sequence
	// tag followed by the event encoding.
	TypeNDEBase uint8 = 32
	// TypeFused: a fused instruction-commit summary (FusedCommit payload).
	TypeFused uint8 = 64
	// TypeDigest: a fusion-window digest over derivable events
	// (derive.Digest payload).
	TypeDigest uint8 = 65
	// TypeDiffBase+kind: a differenced state event; payload is an 8-byte
	// order tag, a changed-word bitmask, and only the changed 64-bit words.
	TypeDiffBase uint8 = 80
	// TypeInvalid marks the end of the usable type space.
	TypeInvalid uint8 = 120
)

// Item is one unit of verification traffic.
type Item struct {
	Type    uint8
	Core    uint8
	Slot    uint8 // commit index within the cycle (0 = before any commit)
	Payload []byte
}

// WireSize returns the item's payload-region footprint in a packet: the
// slot byte plus the payload.
func (it Item) WireSize() int { return 1 + len(it.Payload) }

// BaselineWireSize returns the item's cost as an individual (unpacked)
// transfer: a 4-byte header plus the payload.
func (it Item) BaselineWireSize() int { return 4 + len(it.Payload) }

// Kind returns the event kind encoded by a raw, NDE, or diff item.
func (it Item) Kind() (event.Kind, bool) {
	switch {
	case it.Type < TypeNDEBase:
		return event.Kind(it.Type), true
	case it.Type >= TypeNDEBase && it.Type < TypeFused:
		return event.Kind(it.Type - TypeNDEBase), true
	case it.Type >= TypeDiffBase && it.Type < TypeInvalid:
		return event.Kind(it.Type - TypeDiffBase), true
	}
	return 0, false
}

// IsFused reports whether the item is a fused commit summary.
func (it Item) IsFused() bool { return it.Type == TypeFused }

// IsNDE reports whether the item is an order-tagged NDE.
func (it Item) IsNDE() bool { return it.Type >= TypeNDEBase && it.Type < TypeFused }

// InstrCount returns how many retired instructions the item covers (for
// software-cost accounting): 1 for commits, Count for fused commits.
func (it Item) InstrCount() int {
	if it.Type == TypeFused {
		fc, err := DecodeFused(it)
		if err != nil {
			return 0
		}
		return int(fc.Count)
	}
	if k, ok := it.Kind(); ok && k == event.KindInstrCommit {
		return 1
	}
	return 0
}

// RawItem wraps an event as a plain wire item.
func RawItem(core, slot uint8, ev event.Event) Item {
	return Item{
		Type:    TypeRawBase + uint8(ev.Kind()),
		Core:    core,
		Slot:    slot,
		Payload: event.EncodeValue(ev),
	}
}

// NDEItem wraps an event with its order tag for ahead-of-fusion transmission.
func NDEItem(core, slot uint8, seq uint64, ev event.Event) Item {
	p := make([]byte, 8, 8+ev.EncodedSize())
	binary.LittleEndian.PutUint64(p, seq)
	return Item{
		Type:    TypeNDEBase + uint8(ev.Kind()),
		Core:    core,
		Slot:    slot,
		Payload: ev.AppendTo(p),
	}
}

// DecodeRaw reconstructs a raw item's event.
func DecodeRaw(it Item) (event.Event, error) {
	k, ok := it.Kind()
	if !ok || it.Type >= TypeNDEBase {
		return nil, fmt.Errorf("wire: item type %d is not raw", it.Type)
	}
	return event.Decode(k, it.Payload)
}

// DecodeNDE reconstructs an NDE item's order tag and event.
func DecodeNDE(it Item) (seq uint64, ev event.Event, err error) {
	if !it.IsNDE() {
		return 0, nil, fmt.Errorf("wire: item type %d is not an NDE", it.Type)
	}
	if len(it.Payload) < 8 {
		return 0, nil, fmt.Errorf("wire: short NDE payload")
	}
	k, _ := it.Kind()
	ev, err = event.Decode(k, it.Payload[8:])
	return binary.LittleEndian.Uint64(it.Payload), ev, err
}

// FusedCommit summarizes a fused run of instruction commits (paper §4.3):
// the sequence number and PC of the final fused instruction, the fused
// count, and an XOR digest of the committed PCs as the collective check
// value. The checker steps the reference model to LastSeq, applying
// order-tagged NDEs at their exact positions along the way.
type FusedCommit struct {
	LastSeq  uint64 // sequence number of the final fused instruction
	Count    uint64 // number of fused (non-skipped) commits
	LastPC   uint64 // PC of the final fused instruction
	PCDigest uint64 // XOR of all fused commit PCs
	WDigest  uint64 // XOR of all fused commit writeback values

	// StartToken is the replay-buffer token of the first event buffered for
	// this fusion window — Replay's range-determination handle (paper §4.4).
	StartToken uint64
}

// FusedPayloadSize is the wire size of a FusedCommit payload.
const FusedPayloadSize = 48

// FusedItem encodes a fused commit summary.
func FusedItem(core, slot uint8, fc FusedCommit) Item {
	p := make([]byte, FusedPayloadSize)
	binary.LittleEndian.PutUint64(p[0:], fc.LastSeq)
	binary.LittleEndian.PutUint64(p[8:], fc.Count)
	binary.LittleEndian.PutUint64(p[16:], fc.LastPC)
	binary.LittleEndian.PutUint64(p[24:], fc.PCDigest)
	binary.LittleEndian.PutUint64(p[32:], fc.WDigest)
	binary.LittleEndian.PutUint64(p[40:], fc.StartToken)
	return Item{Type: TypeFused, Core: core, Slot: slot, Payload: p}
}

// DecodeFused reconstructs a fused commit summary.
func DecodeFused(it Item) (FusedCommit, error) {
	if it.Type != TypeFused || len(it.Payload) != FusedPayloadSize {
		return FusedCommit{}, fmt.Errorf("wire: bad fused item (type %d, %dB)", it.Type, len(it.Payload))
	}
	return FusedCommit{
		LastSeq:    binary.LittleEndian.Uint64(it.Payload[0:]),
		Count:      binary.LittleEndian.Uint64(it.Payload[8:]),
		LastPC:     binary.LittleEndian.Uint64(it.Payload[16:]),
		PCDigest:   binary.LittleEndian.Uint64(it.Payload[24:]),
		WDigest:    binary.LittleEndian.Uint64(it.Payload[32:]),
		StartToken: binary.LittleEndian.Uint64(it.Payload[40:]),
	}, nil
}

// DigestItem encodes a fusion-window digest: the count and XOR-combined
// hash of the derivable events the window fused away. The checker
// recomputes the digest from reference-model execution and compares.
func DigestItem(core, slot uint8, count uint32, sum uint64) Item {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint32(p[0:], count)
	binary.LittleEndian.PutUint64(p[8:], sum)
	return Item{Type: TypeDigest, Core: core, Slot: slot, Payload: p}
}

// DecodeDigest reconstructs a digest item.
func DecodeDigest(it Item) (count uint32, sum uint64, err error) {
	if it.Type != TypeDigest || len(it.Payload) != 16 {
		return 0, 0, fmt.Errorf("wire: bad digest item (type %d, %dB)", it.Type, len(it.Payload))
	}
	return binary.LittleEndian.Uint32(it.Payload[0:]), binary.LittleEndian.Uint64(it.Payload[8:]), nil
}

// priority orders event kinds within one commit slot, mirroring the monitor's
// emission order so a (slot, priority) sort restores the checking order.
var priority = [event.NumKinds]uint8{
	event.KindVirtualInterrupt: 0, event.KindInterrupt: 1,
	event.KindInstrCommit: 2, event.KindException: 3,
	event.KindGuestPageFault: 4, event.KindHTrap: 5,
	event.KindAtomic: 6, event.KindVecMem: 7, event.KindHLoad: 8,
	event.KindLoad: 9, event.KindStore: 10, event.KindLrSc: 11,
	event.KindVecCommit: 12, event.KindVecWriteback: 13,
	event.KindVstartUpdate: 14, event.KindVecExceptionTrack: 15,
	event.KindRefill: 16, event.KindCMO: 17,
	event.KindL1TLB: 18, event.KindL2TLB: 19, event.KindSbuffer: 20,
	event.KindRedirect: 21, event.KindTrap: 22,
	event.KindArchIntRegState: 23, event.KindCSRState: 24,
	event.KindFpCSRState: 25, event.KindArchFpRegState: 26,
	event.KindVecCSRState: 27, event.KindArchVecRegState: 28,
	event.KindHCSRState: 29, event.KindDebugCSRState: 30,
	event.KindTriggerCSRState: 31,
}

// Priority returns the within-slot checking priority of kind k.
func Priority(k event.Kind) uint8 { return priority[k] }

// SortKey returns the item's full ordering key within a cycle group.
func (it Item) SortKey() uint32 {
	k, ok := it.Kind()
	p := uint8(255)
	if ok {
		p = priority[k]
	} else if it.IsFused() {
		p = priority[event.KindInstrCommit]
	}
	return uint32(it.Core)<<16 | uint32(it.Slot)<<8 | uint32(p)
}

// FromRecords converts one cycle's monitor records into wire items,
// assigning per-core commit slots. Events before a core's first commit of
// the cycle get slot 0; events belonging to the i-th commit get slot i.
//
// All item payloads share one arena allocation sized from EncodedSize, so a
// cycle costs two allocations regardless of event count. Each payload is a
// capacity-clamped sub-slice, so an append on one cannot clobber the next.
func FromRecords(cycle []event.Record) []Item {
	total := 0
	for _, rec := range cycle {
		total += rec.Ev.EncodedSize()
	}
	arena := make([]byte, 0, total)
	items := make([]Item, 0, len(cycle))
	var slots [256]uint8
	for _, rec := range cycle {
		if rec.Ev.Kind() == event.KindInstrCommit {
			slots[rec.Core]++
		}
		start := len(arena)
		arena = rec.Ev.AppendTo(arena)
		items = append(items, Item{
			Type:    TypeRawBase + uint8(rec.Ev.Kind()),
			Core:    rec.Core,
			Slot:    slots[rec.Core],
			Payload: arena[start:len(arena):len(arena)],
		})
	}
	return items
}

// ToRecord converts a raw item back into a checker-consumable record.
// Sequence numbers are not carried by raw items (the checker reconstructs
// order positionally); NDE items carry explicit tags.
func ToRecord(it Item) (event.Record, error) {
	ev, err := DecodeRaw(it)
	if err != nil {
		return event.Record{}, err
	}
	return event.Record{Core: it.Core, Ev: ev}, nil
}
