package mem

// Device is a memory-mapped peripheral on the DUT's bus. Loads from devices
// are non-deterministic from the reference model's point of view.
type Device interface {
	// Load reads size bytes from the device-relative offset.
	Load(off uint64, size int) uint64
	// Store writes size bytes to the device-relative offset.
	Store(off uint64, size int, val uint64)
}

// CLINT is a core-local interruptor: a cycle-driven timer and software
// interrupt source. Reads of mtime depend on the DUT cycle count, making
// them NDEs.
type CLINT struct {
	MTime    uint64
	MTimeCmp uint64
	MSIP     uint64
}

// CLINT register offsets.
const (
	clintMSIP     = 0x0000
	clintMTimeCmp = 0x4000
	clintMTime    = 0xBFF8
)

// Tick advances the timer by n time units.
func (c *CLINT) Tick(n uint64) { c.MTime += n }

// TimerPending reports whether the timer interrupt condition holds.
func (c *CLINT) TimerPending() bool { return c.MTimeCmp != 0 && c.MTime >= c.MTimeCmp }

// SoftwarePending reports whether a software interrupt is posted.
func (c *CLINT) SoftwarePending() bool { return c.MSIP&1 != 0 }

// Load implements Device.
func (c *CLINT) Load(off uint64, size int) uint64 {
	switch off {
	case clintMSIP:
		return c.MSIP
	case clintMTimeCmp:
		return c.MTimeCmp
	case clintMTime:
		return c.MTime
	}
	return 0
}

// Store implements Device.
func (c *CLINT) Store(off uint64, size int, val uint64) {
	switch off {
	case clintMSIP:
		c.MSIP = val & 1
	case clintMTimeCmp:
		c.MTimeCmp = val
	}
}

// UART is a write-only console with a always-ready status register.
type UART struct {
	Out []byte // captured output
}

// UART register offsets.
const (
	uartData   = 0x0
	uartStatus = 0x5
)

// Load implements Device.
func (u *UART) Load(off uint64, size int) uint64 {
	if off == uartStatus {
		return 0x60 // transmitter empty + holding register empty
	}
	return 0
}

// Store implements Device.
func (u *UART) Store(off uint64, size int, val uint64) {
	if off == uartData {
		u.Out = append(u.Out, byte(val))
	}
}

// RNG is a free-running xorshift generator; every load draws a fresh value.
// It is the canonical non-deterministic device: the reference model has no
// way to predict its values, so each read must be synchronized as an NDE.
type RNG struct {
	State uint64
}

// Load implements Device.
func (r *RNG) Load(off uint64, size int) uint64 {
	if r.State == 0 {
		r.State = 0x9E3779B97F4A7C15
	}
	r.State ^= r.State << 13
	r.State ^= r.State >> 7
	r.State ^= r.State << 17
	return r.State
}

// Store implements Device.
func (r *RNG) Store(off uint64, size int, val uint64) { r.State = val | 1 }

// Exit is an HTIF-like power-off device. A store of 0 signals a good trap
// (workload finished successfully); any other value is a bad trap.
type Exit struct {
	Fired bool
	Code  uint64
}

// Load implements Device.
func (e *Exit) Load(off uint64, size int) uint64 { return 0 }

// Store implements Device.
func (e *Exit) Store(off uint64, size int, val uint64) {
	e.Fired = true
	e.Code = val
}

// Bus routes physical addresses to RAM or devices.
type Bus struct {
	RAM   *Memory
	CLINT *CLINT
	UART  *UART
	RNG   *RNG
	Exit  *Exit
}

// NewBus wraps ram with a fresh device set.
func NewBus(ram *Memory) *Bus {
	return &Bus{RAM: ram, CLINT: &CLINT{}, UART: &UART{}, RNG: &RNG{}, Exit: &Exit{}}
}

func (b *Bus) device(addr uint64) (Device, uint64) {
	switch {
	case addr >= CLINTBase && addr < CLINTBase+CLINTSize:
		return b.CLINT, addr - CLINTBase
	case addr >= UARTBase && addr < UARTBase+UARTSize:
		return b.UART, addr - UARTBase
	case addr >= RNGBase && addr < RNGBase+RNGSize:
		return b.RNG, addr - RNGBase
	case addr >= ExitBase && addr < ExitBase+ExitSize:
		return b.Exit, addr - ExitBase
	}
	return nil, 0
}

// Load reads size bytes at addr, dispatching to a device when addr is MMIO.
// The second result reports whether the access hit a device.
func (b *Bus) Load(addr uint64, size int) (uint64, bool) {
	if d, off := b.device(addr); d != nil {
		return d.Load(off, size), true
	}
	return b.RAM.Read(addr, size), false
}

// Store writes size bytes at addr, dispatching to a device when addr is MMIO.
// The result reports whether the access hit a device.
func (b *Bus) Store(addr uint64, size int, val uint64) bool {
	if d, off := b.device(addr); d != nil {
		d.Store(off, size, val)
		return true
	}
	b.RAM.Write(addr, size, val)
	return false
}
