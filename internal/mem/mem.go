// Package mem provides the sparse physical memory and the MMIO device bus
// shared by the DUT simulator and the reference model.
//
// Both models start from byte-identical memory images. Devices live only on
// the DUT side: device reads are non-deterministic events (NDEs) that the
// co-simulation framework synchronizes into the reference model, exactly as
// DiffTest synchronizes MMIO accesses from hardware (paper §2.1).
package mem

import "fmt"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// RAMBase is the start of simulated DRAM.
const RAMBase uint64 = 0x8000_0000

// MMIO device windows.
const (
	CLINTBase uint64 = 0x0200_0000
	CLINTSize uint64 = 0x10000
	UARTBase  uint64 = 0x1000_0000
	UARTSize  uint64 = 0x1000
	RNGBase   uint64 = 0x1000_1000
	RNGSize   uint64 = 0x1000
	ExitBase  uint64 = 0x1000_2000
	ExitSize  uint64 = 0x1000
)

// IsMMIO reports whether addr falls in a device window. MMIO loads are
// non-deterministic events: the reference model cannot reproduce them and
// must be fed the DUT-observed value.
func IsMMIO(addr uint64) bool {
	switch {
	case addr >= CLINTBase && addr < CLINTBase+CLINTSize:
		return true
	case addr >= UARTBase && addr < ExitBase+ExitSize:
		return true
	}
	return false
}

type page [pageSize]byte

// Memory is a sparse, page-granular physical memory.
// The zero value is an empty memory ready for use.
type Memory struct {
	pages map[uint64]*page
}

// New returns an empty memory.
func New() *Memory { return &Memory{pages: make(map[uint64]*page)} }

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	if m.pages == nil {
		m.pages = make(map[uint64]*page)
	}
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// Byte returns the byte at addr (0 if the page is unmapped).
func (m *Memory) Byte(addr uint64) byte {
	if p := m.pageFor(addr, false); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// SetByte stores one byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.pageFor(addr, true)[addr&pageMask] = v
}

// Read returns size bytes starting at addr as a little-endian value.
// size must be 1, 2, 4 or 8 and the access must not cross a page boundary
// mid-word in a way the fast path cannot handle; arbitrary alignment is
// supported by a byte loop fallback.
func (m *Memory) Read(addr uint64, size int) uint64 {
	var v uint64
	off := addr & pageMask
	if p := m.pageFor(addr, false); p != nil && off+uint64(size) <= pageSize {
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+uint64(i)])
		}
		return v
	}
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.Byte(addr+uint64(i)))
	}
	return v
}

// Write stores size low-order bytes of val at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, val uint64) {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.pageFor(addr, true)
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(val >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(val>>(8*i)))
	}
}

// ReadBytes fills dst with memory contents starting at addr.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := pageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.pageFor(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := range dst[:n] {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := pageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.pageFor(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// Clone returns a deep copy so the DUT and REF can diverge independently.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// PageCount reports the number of mapped 4 KiB pages (for stats/tests).
func (m *Memory) PageCount() int { return len(m.pages) }

// String summarizes the memory for diagnostics.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{%d pages, %d KiB}", len(m.pages), len(m.pages)*4)
}
