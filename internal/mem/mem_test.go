package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write(RAMBase, 8, 0x1122334455667788)
	if got := m.Read(RAMBase, 8); got != 0x1122334455667788 {
		t.Fatalf("read64 = %#x", got)
	}
	if got := m.Read(RAMBase, 4); got != 0x55667788 {
		t.Errorf("read32 = %#x", got)
	}
	if got := m.Read(RAMBase+4, 4); got != 0x11223344 {
		t.Errorf("read32 hi = %#x", got)
	}
	if got := m.Read(RAMBase+7, 1); got != 0x11 {
		t.Errorf("read8 = %#x", got)
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	m := New()
	if got := m.Read(0xDEAD0000, 8); got != 0 {
		t.Errorf("unmapped read = %#x, want 0", got)
	}
	if m.PageCount() != 0 {
		t.Errorf("read allocated %d pages", m.PageCount())
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := RAMBase + pageSize - 3 // 8-byte access straddles a page boundary
	m.Write(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Read(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Fatalf("cross-page read = %#x", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		if len(data) > 16384 {
			data = data[:16384]
		}
		m := New()
		addr := RAMBase + uint64(off)
		m.WriteBytes(addr, data)
		got := make([]byte, len(data))
		m.ReadBytes(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Write(RAMBase, 8, 42)
	c := m.Clone()
	c.Write(RAMBase, 8, 99)
	if m.Read(RAMBase, 8) != 42 {
		t.Error("clone write leaked into original")
	}
	if c.Read(RAMBase, 8) != 99 {
		t.Error("clone write lost")
	}
}

func TestWriteReadAgreesWithBytes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := New()
	for i := 0; i < 1000; i++ {
		addr := RAMBase + uint64(r.Intn(1<<16))
		size := []int{1, 2, 4, 8}[r.Intn(4)]
		val := r.Uint64()
		m.Write(addr, size, val)
		raw := make([]byte, size)
		m.ReadBytes(addr, raw)
		var back uint64
		for j := size - 1; j >= 0; j-- {
			back = back<<8 | uint64(raw[j])
		}
		want := val
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		if back != want {
			t.Fatalf("addr %#x size %d: wrote %#x, bytes say %#x", addr, size, val, back)
		}
	}
}

func TestCLINT(t *testing.T) {
	c := &CLINT{}
	if c.TimerPending() {
		t.Error("timer pending with no mtimecmp")
	}
	c.Store(clintMTimeCmp, 8, 100)
	c.Tick(99)
	if c.TimerPending() {
		t.Error("timer pending early")
	}
	c.Tick(1)
	if !c.TimerPending() {
		t.Error("timer not pending at mtimecmp")
	}
	if got := c.Load(clintMTime, 8); got != 100 {
		t.Errorf("mtime = %d", got)
	}
	c.Store(clintMSIP, 8, 1)
	if !c.SoftwarePending() {
		t.Error("msip not pending")
	}
}

func TestUART(t *testing.T) {
	u := &UART{}
	for _, b := range []byte("hi") {
		u.Store(uartData, 1, uint64(b))
	}
	if string(u.Out) != "hi" {
		t.Errorf("uart captured %q", u.Out)
	}
	if u.Load(uartStatus, 1)&0x20 == 0 {
		t.Error("uart never ready")
	}
}

func TestRNGIsNonRepeating(t *testing.T) {
	r := &RNG{}
	a, b := r.Load(0, 8), r.Load(0, 8)
	if a == b {
		t.Error("rng repeated immediately")
	}
	// Seeded RNGs from the same state produce the same stream (determinism
	// of the simulation as a whole).
	r1, r2 := &RNG{State: 7}, &RNG{State: 7}
	for i := 0; i < 10; i++ {
		if r1.Load(0, 8) != r2.Load(0, 8) {
			t.Fatal("same-seed rng diverged")
		}
	}
}

func TestBusRouting(t *testing.T) {
	b := NewBus(New())
	if _, mmio := b.Load(RAMBase, 8); mmio {
		t.Error("RAM load flagged as MMIO")
	}
	if _, mmio := b.Load(RNGBase, 8); !mmio {
		t.Error("RNG load not flagged as MMIO")
	}
	if !b.Store(ExitBase, 8, 0) {
		t.Error("exit store not routed to device")
	}
	if !b.Exit.Fired || b.Exit.Code != 0 {
		t.Error("exit device did not fire")
	}
	if !IsMMIO(UARTBase) || IsMMIO(RAMBase) {
		t.Error("IsMMIO misclassifies")
	}
}
