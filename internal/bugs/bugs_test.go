package bugs_test

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// profileFor picks a workload that exercises each bug's trigger condition.
func profileFor(b *bugs.Bug) workload.Profile {
	switch b.ID {
	case "mtval-wrong-guest-fault", "hyp-load-stale":
		return workload.KVM()
	case "vstart-not-reset", "vadd-lane-drop", "vsetvli-overshoot", "vec-exception-tracking":
		return workload.RVVTest()
	default:
		return workload.LinuxBoot()
	}
}

func TestLibraryInventory(t *testing.T) {
	lib := bugs.Library()
	if len(lib) < 15 {
		t.Fatalf("library has %d bugs, want a substantial set", len(lib))
	}
	byCat := bugs.ByCategory()
	for c := bugs.Category(0); c < bugs.NumCategories; c++ {
		if len(byCat[c]) < 5 {
			t.Errorf("category %v has only %d bugs", c, len(byCat[c]))
		}
	}
	seen := map[string]bool{}
	for _, b := range lib {
		if seen[b.ID] {
			t.Errorf("duplicate bug id %q", b.ID)
		}
		seen[b.ID] = true
		if b.PR == "" || b.Description == "" || b.DefaultTrigger <= 0 {
			t.Errorf("bug %q is underspecified", b.ID)
		}
		if _, ok := bugs.ByID(b.ID); !ok {
			t.Errorf("ByID(%q) failed", b.ID)
		}
	}
}

// TestEveryBugDetected injects each library bug and verifies the full
// DiffTest-H stack (EBINSD) detects it, and that Replay localizes it to an
// instruction-level mismatch.
func TestEveryBugDetected(t *testing.T) {
	opt, _ := cosim.ParseConfig("EBINSD")
	for _, b := range bugs.Library() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			prof := profileFor(b)
			prof.TargetInstrs = 120_000
			res, err := cosim.Run(cosim.Params{
				DUT:      dut.XiangShanDefault(),
				Platform: platform.Palladium(),
				Opt:      opt,
				Workload: prof,
				Seed:     21,
				Hooks:    b.Hooks(0),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Mismatch == nil {
				t.Fatalf("bug %s (%s) escaped detection", b.ID, b.PR)
			}
			if res.Replay == nil {
				t.Fatalf("bug %s: no replay report", b.ID)
			}
			if res.Replay.Detailed == nil {
				t.Errorf("bug %s: replay did not localize (fused-level only: %v)",
					b.ID, res.Mismatch)
			} else {
				t.Logf("detected at cycle %d: %v", res.Cycles, res.Replay.Detailed)
			}
		})
	}
}

// TestBugsAlsoDetectedByBaseline cross-checks a sample of bugs against the
// unoptimized per-event configuration: optimization must not change the
// verification verdict.
func TestBugsAlsoDetectedByBaseline(t *testing.T) {
	optZ, _ := cosim.ParseConfig("Z")
	sample := []string{"load-sign-extension", "mepc-misaligned-on-trap", "vadd-lane-drop"}
	for _, id := range sample {
		b, ok := bugs.ByID(id)
		if !ok {
			t.Fatalf("no bug %q", id)
		}
		prof := profileFor(b)
		prof.TargetInstrs = 120_000
		res, err := cosim.Run(cosim.Params{
			DUT:      dut.XiangShanDefault(),
			Platform: platform.Palladium(),
			Opt:      optZ,
			Workload: prof,
			Seed:     21,
			Hooks:    b.Hooks(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Mismatch == nil {
			t.Errorf("bug %s escaped the baseline checker", id)
		}
	}
}
