// Package bugs is an injectable library of microarchitectural defects
// modeled on the 151 bugs DiffTest-H uncovered in XiangShan (paper §6.5,
// Table 6): exception and interrupt handling errors, memory hierarchy and
// coherence issues, and vector/control logic errors. Each bug is latent
// until its trigger condition has occurred a configurable number of times,
// reproducing the paper's observation that real bugs manifest only after
// millions of cycles (Figure 14).
//
// Bugs are implemented as architectural hooks on the DUT's execution engine;
// the reference model never sees them, so every manifestation is a genuine
// DUT/REF divergence for the checker to catch.
package bugs

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
)

// Category groups bugs per Table 6.
type Category uint8

// Bug categories.
const (
	CatException Category = iota // exception and interrupt handling errors
	CatMemory                    // memory hierarchy and coherence issues
	CatVector                    // vector and control logic errors
	NumCategories
)

// String returns the Table-6 category label.
func (c Category) String() string {
	switch c {
	case CatException:
		return "Exception and interrupt handling errors"
	case CatMemory:
		return "Memory hierarchy and coherence issues"
	case CatVector:
		return "Vector and control logic errors"
	}
	return "Unknown"
}

// Bug describes one injectable defect.
type Bug struct {
	ID          string
	PR          string // upstream pull request that fixed the real-world analogue
	Category    Category
	Description string
	// DefaultTrigger is the number of trigger-condition occurrences before
	// the bug manifests (tunable per experiment).
	DefaultTrigger int

	make func(threshold int, fired *Fired) arch.Hooks
}

// Fired records when an instrumented bug manifested: the retired-instruction
// index at the moment of corruption (0 until it fires). Comparing it with
// the checker's mismatch position measures detection latency — the
// debuggability cost of fusion that Replay bounds (paper §4.4).
type Fired struct {
	Manifested bool
	Instr      uint64 // InstrRet at corruption
}

// Hooks builds the bug's injection hooks with the given latency threshold
// (0 uses DefaultTrigger). Each call returns independent trigger state.
func (b *Bug) Hooks(threshold int) arch.Hooks {
	h, _ := b.Instrument(threshold)
	return h
}

// Instrument is Hooks plus manifestation tracking.
func (b *Bug) Instrument(threshold int) (arch.Hooks, *Fired) {
	if threshold <= 0 {
		threshold = b.DefaultTrigger
	}
	fired := &Fired{}
	return b.make(threshold, fired), fired
}

// String renders the bug for inventories.
func (b *Bug) String() string {
	return fmt.Sprintf("%-24s %-6s %s", b.ID, b.PR, b.Description)
}

// counterHook wraps a predicate and a corruption: the corruption fires on
// exactly the threshold-th occurrence of the predicate.
func counterHook(pred func(*arch.Machine, *arch.Exec) bool,
	corrupt func(*arch.Machine, *arch.Exec)) func(int, *Fired) arch.Hooks {
	return func(threshold int, fired *Fired) arch.Hooks {
		n := 0
		return arch.Hooks{AfterExec: func(m *arch.Machine, ex *arch.Exec) {
			if !pred(m, ex) {
				return
			}
			n++
			if n == threshold {
				corrupt(m, ex)
				fired.Manifested = true
				fired.Instr = m.InstrRet
			}
		}}
	}
}

// Library returns the full bug library.
func Library() []*Bug {
	return []*Bug{
		// --- Exception and interrupt handling errors (paper PRs #3639,
		// #4239, #4263, #3991, #3778, #4157) ---
		{
			ID: "mepc-misaligned-on-trap", PR: "#3639", Category: CatException,
			Description:    "trap entry writes a byte-misaligned mepc (incorrect virtual address generation)",
			DefaultTrigger: 40,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Exception },
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(isa.CSRMepc, m.State.CSRVal(isa.CSRMepc)|2)
				}),
		},
		{
			ID: "mpie-lost-on-trap", PR: "#4239", Category: CatException,
			Description:    "mstatus.MPIE not saved on trap entry (improper interrupt response)",
			DefaultTrigger: 60,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Exception },
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(isa.CSRMstatus, m.State.CSRVal(isa.CSRMstatus)&^uint64(1<<7))
				}),
		},
		{
			ID: "ecall-cause-corrupt", PR: "#4263", Category: CatException,
			Description:    "ecall records the wrong mcause value",
			DefaultTrigger: 30,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.Exception && ex.Cause == isa.ExcEcallM
				},
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(isa.CSRMcause, isa.ExcBreakpoint)
					ex.Cause = isa.ExcBreakpoint
				}),
		},
		{
			ID: "mtval-wrong-guest-fault", PR: "#3991", Category: CatException,
			Description:    "guest page fault records a truncated mtval (TLB deadlock territory)",
			DefaultTrigger: 8,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.Exception && ex.Cause == isa.ExcGuestLoadPageFault
				},
				func(m *arch.Machine, ex *arch.Exec) {
					bad := ex.Tval & 0xFFFF
					m.State.SetCSR(isa.CSRMtval, bad)
					ex.Tval = bad
				}),
		},
		{
			ID: "mret-mie-restore-broken", PR: "#3778", Category: CatException,
			Description:    "mret fails to restore mstatus.MIE from MPIE",
			DefaultTrigger: 50,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Inst.Op == isa.OpMRET },
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(isa.CSRMstatus, m.State.CSRVal(isa.CSRMstatus)&^uint64(1<<3))
				}),
		},
		{
			ID: "trap-vector-offset", PR: "#4157", Category: CatException,
			Description:    "exception vectors to mtvec+4 instead of mtvec",
			DefaultTrigger: 70,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Exception },
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.PC += 4
					ex.NextPC = m.State.PC
				}),
		},

		// --- Memory hierarchy and coherence issues (paper PRs #3964,
		// #3685, #3621, #4037, #3719, #4442) ---
		{
			ID: "load-sign-extension", PR: "#3964", Category: CatMemory,
			Description:    "signed byte load zero-extends instead of sign-extending",
			DefaultTrigger: 300,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.Inst.Op == isa.OpLB && !ex.MMIO && int64(ex.Wdata) < 0
				},
				func(m *arch.Machine, ex *arch.Exec) {
					v := ex.Wdata & 0xFF
					m.State.GPR[ex.Wdest] = v
					ex.Wdata, ex.MemData = v, v
				}),
		},
		{
			ID: "store-byte-drop", PR: "#3685", Category: CatMemory,
			Description:    "store queue drops the top byte of a word store (StoreQueue condition mismatch)",
			DefaultTrigger: 400,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.Mem && !ex.IsLoad && !ex.MMIO && ex.MemSize == 4
				},
				func(m *arch.Machine, ex *arch.Exec) {
					old := m.Mem.Read(ex.MemAddr+3, 1)
					m.Mem.Write(ex.MemAddr+3, 1, ^old)
				}),
		},
		{
			ID: "amo-old-value-corrupt", PR: "#3621", Category: CatMemory,
			Description:    "AMO returns a stale old value (cache inconsistency under specific faults)",
			DefaultTrigger: 25,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Atomic },
				func(m *arch.Machine, ex *arch.Exec) {
					v := ex.AtomicOld ^ 0xFF00
					m.State.GPR[ex.Wdest] = v
					ex.AtomicOld, ex.Wdata = v, v
				}),
		},
		{
			ID: "sc-false-success", PR: "#4037", Category: CatMemory,
			Description:    "store-conditional reports success after a broken reservation",
			DefaultTrigger: 12,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.LrSc && ex.Inst.Op == isa.OpSCD && !ex.ScSuccess
				},
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.GPR[ex.Wdest] = 0 // claim success
					ex.Wdata = 0
					ex.ScSuccess = true
				}),
		},
		{
			ID: "misaligned-wakeup-data", PR: "#3719", Category: CatMemory,
			Description:    "misaligned load/store wakeup forwards a rotated value",
			DefaultTrigger: 500,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.Mem && ex.IsLoad && !ex.MMIO && ex.MemSize == 8 && ex.WroteInt
				},
				func(m *arch.Machine, ex *arch.Exec) {
					v := ex.Wdata<<8 | ex.Wdata>>56
					m.State.GPR[ex.Wdest] = v
					ex.Wdata, ex.MemData = v, v
				}),
		},
		{
			ID: "hyp-load-stale", PR: "#4442", Category: CatMemory,
			Description:    "hypervisor guest load returns stale data after a guest fault",
			DefaultTrigger: 20,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.Inst.Op == isa.OpHLVD && !ex.Exception
				},
				func(m *arch.Machine, ex *arch.Exec) {
					v := ex.MemData ^ 1
					m.State.GPR[ex.Wdest] = v
					ex.Wdata, ex.MemData = v, v
				}),
		},

		// --- Vector and control logic errors (paper PRs #3876, #3965,
		// #3690, #3643, #3646, #3664, #4361) ---
		{
			ID: "vstart-not-reset", PR: "#3876", Category: CatVector,
			Description:    "vector instruction leaves vstart nonzero (wrong vstart updates)",
			DefaultTrigger: 15,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Vec && ex.WroteVec },
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(isa.CSRVstart, 1)
				}),
		},
		{
			ID: "vadd-lane-drop", PR: "#3965", Category: CatVector,
			Description:    "vector add skips the last lane",
			DefaultTrigger: 30,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return ex.Inst.Op == isa.OpVADDVV && ex.Vl == 4
				},
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.VReg[ex.Wdest][3] ^= 0xDEAD
					ex.VData = m.State.VReg[ex.Wdest]
				}),
		},
		{
			ID: "vsetvli-overshoot", PR: "#3690", Category: CatVector,
			Description:    "vsetvli grants vl beyond VLMAX",
			DefaultTrigger: 10,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Inst.Op == isa.OpVSETVLI },
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(isa.CSRVl, 5)
					m.State.GPR[ex.Wdest] = 5
					ex.Wdata, ex.Vl = 5, 5
				}),
		},
		{
			ID: "branch-not-taken", PR: "#3643", Category: CatVector,
			Description:    "taken conditional branch falls through (control logic error)",
			DefaultTrigger: 2000,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					return isa.ClassOf(ex.Inst.Op) == isa.ClassBranch && ex.NextPC != ex.PC+4
				},
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.PC = ex.PC + 4
					ex.NextPC = m.State.PC
				}),
		},
		{
			ID: "fsgnj-sign-flip", PR: "#3646", Category: CatVector,
			Description:    "fsgnj.d copies the inverted sign bit",
			DefaultTrigger: 40,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Inst.Op == isa.OpFSGNJD },
				func(m *arch.Machine, ex *arch.Exec) {
					v := ex.Wdata ^ 1<<63
					m.State.FPR[ex.Wdest] = v
					ex.Wdata = v
				}),
		},
		{
			ID: "csr-set-bits-lost", PR: "#3664", Category: CatVector,
			Description:    "csrrs silently shifts the written CSR value (control logic error)",
			DefaultTrigger: 60,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool {
					if ex.Inst.Op != isa.OpCSRRS || ex.Inst.Rs1 == 0 {
						return false
					}
					switch ex.Inst.CSR {
					case isa.CSRMscratch, isa.CSRMedeleg, isa.CSRMideleg,
						isa.CSRHedeleg, isa.CSRHideleg:
						return true
					}
					return false
				},
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(ex.Inst.CSR, m.State.CSRVal(ex.Inst.CSR)>>1)
				}),
		},
		{
			ID: "vec-exception-tracking", PR: "#4361", Category: CatVector,
			Description:    "vector store path corrupts vxsat (faulty vector exception tracking)",
			DefaultTrigger: 25,
			make: counterHook(
				func(m *arch.Machine, ex *arch.Exec) bool { return ex.Inst.Op == isa.OpVSE },
				func(m *arch.Machine, ex *arch.Exec) {
					m.State.SetCSR(isa.CSRVxsat, 1)
				}),
		},
	}
}

// ByID returns the named bug, or false.
func ByID(id string) (*Bug, bool) {
	for _, b := range Library() {
		if b.ID == id {
			return b, true
		}
	}
	return nil, false
}

// ByCategory returns the library grouped per Table 6.
func ByCategory() map[Category][]*Bug {
	m := make(map[Category][]*Bug)
	for _, b := range Library() {
		m[b.Category] = append(m[b.Category], b)
	}
	return m
}
