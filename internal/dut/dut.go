package dut

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/derive"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// Core is one hart of the DUT.
type Core struct {
	ID  uint8
	M   *arch.Machine
	Seq uint64 // committed-instruction sequence number (order-tag source)
}

// DUT is the simulated design under test.
type DUT struct {
	Cfg   Config
	RAM   *mem.Memory
	Bus   *mem.Bus
	Cores []*Core

	CycleCount uint64
	Instrs     uint64

	// Monitor statistics (per event kind).
	EventCount [event.NumKinds]uint64
	EventBytes uint64

	enabled  [event.NumKinds]bool
	rng      *rand.Rand
	finished bool
	endGroup bool
	out      []event.Record
}

// New builds a DUT over its own clone of the program image. entries gives
// the per-core entry PCs (len ≥ Cfg.Cores); hooks, when non-nil, inject
// microarchitectural bugs into every core.
func New(cfg Config, image *mem.Memory, entries []uint64, hooks arch.Hooks) *DUT {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.BurstMax < 1 {
		cfg.BurstMax = 1
	}
	ram := image.Clone()
	d := &DUT{
		Cfg:     cfg,
		RAM:     ram,
		Bus:     mem.NewBus(ram),
		enabled: cfg.EnabledKinds(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.Cores; i++ {
		m := arch.NewMachine(ram)
		m.Bus = d.Bus
		m.Hooks = hooks
		if i < len(entries) {
			m.State.PC = entries[i]
		}
		m.State.SetCSR(isa.CSRMhartid, uint64(i))
		d.Cores = append(d.Cores, &Core{ID: uint8(i), M: m})
	}
	return d
}

// Finished reports whether the workload hit its exit trap.
func (d *DUT) Finished() bool { return d.finished }

// UARTOutput returns the console bytes the workload printed.
func (d *DUT) UARTOutput() []byte { return d.Bus.UART.Out }

func (d *DUT) emit(c *Core, seq uint64, ev event.Event) {
	k := ev.Kind()
	if !d.enabled[k] {
		return
	}
	d.EventCount[k]++
	d.EventBytes += uint64(event.SizeOf(k))
	d.out = append(d.out, event.Record{Seq: seq, Core: c.ID, Ev: ev})
}

func (d *DUT) pct(p int) bool { return p > 0 && d.rng.Intn(100) < p }

// StepCycle advances the DUT by one cycle and returns the verification
// events the monitor extracted, in checking order. done becomes true when
// the workload fires the exit device.
func (d *DUT) StepCycle() (records []event.Record, done bool) {
	if d.finished {
		return nil, true
	}
	d.out = d.out[:0]
	d.CycleCount++
	d.Bus.CLINT.Tick(1)

	for _, c := range d.Cores {
		d.stepCore(c)
		if d.finished {
			break
		}
	}
	return d.out, d.finished
}

func (d *DUT) stepCore(c *Core) {
	m := c.M

	// Reflect device interrupt lines into mip, then take a pending
	// interrupt at the cycle boundary. Interrupts are NDEs: the monitor
	// emits an Interrupt event carrying the order tag that tells the
	// checker exactly after which instruction the REF must take it.
	mip := uint64(0)
	if d.Cfg.TimerIntEnabled && d.Bus.CLINT.TimerPending() {
		mip |= 1 << isa.IntTimerM
	}
	if d.Bus.CLINT.SoftwarePending() {
		mip |= 1 << isa.IntSoftwareM
	}
	extNow := d.Cfg.ExtIntEvery > 0 &&
		(d.CycleCount+uint64(c.ID)*uint64(d.Cfg.ExtIntEvery/2))%uint64(d.Cfg.ExtIntEvery) == 0
	if extNow {
		mip |= 1 << isa.IntExternalM
	}
	virtNow := d.Cfg.VirtIntEvery > 0 && d.enabled[event.KindVirtualInterrupt] &&
		(d.CycleCount+uint64(c.ID)*uint64(d.Cfg.VirtIntEvery/2))%uint64(d.Cfg.VirtIntEvery) == 0
	if virtNow {
		mip |= 1 << isa.IntVirtual
	}
	m.State.SetCSR(isa.CSRMip, mip)

	if cause, ok := m.InterruptPendingEnabled(); ok {
		pc := m.State.PC
		if cause == isa.IntVirtual {
			d.emit(c, c.Seq, &event.VirtualInterrupt{Cause: cause, PC: pc, HartID: uint64(c.ID)})
		}
		d.emit(c, c.Seq, &event.Interrupt{Cause: cause, PC: pc})
		m.TakeInterrupt(cause)
		d.emitSnapshots(c, true)
		return // interrupt redirect consumes the cycle
	}

	if !d.pct(d.Cfg.StallPct) { // pipeline stall: no commits this cycle
		burst := 1 + d.rng.Intn(d.Cfg.BurstMax)
		for i := 0; i < burst; i++ {
			d.commitOne(c)
			if d.finished {
				return
			}
			// Exceptions and MMIO commits end the cycle's commit group.
			if d.endGroup {
				d.endGroup = false
				break
			}
		}
	}
	// Architectural-state snapshots are sampled every cycle (including
	// stall cycles), as DiffTest's per-cycle DPI state interfaces do.
	d.emitSnapshots(c, false)
}

// commitOne retires one instruction on core c, emitting its events.
func (d *DUT) commitOne(c *Core) bool {
	m := c.M
	vstartBefore := m.State.CSRVal(isa.CSRVstart)
	ex := m.Step()
	d.Instrs++
	c.Seq++
	seq := c.Seq

	flags := uint16(0)
	wdest, wdata := uint8(0), uint64(0)
	switch {
	case ex.WroteInt:
		flags |= event.CommitRfWen
		wdest, wdata = ex.Wdest, ex.Wdata
	case ex.WroteFp:
		flags |= event.CommitFpWen
		wdest, wdata = ex.Wdest, ex.Wdata
	case ex.WroteVec:
		flags |= event.CommitVecWen
		wdest = ex.Wdest
	}
	if ex.MMIO {
		flags |= event.CommitSkip
	}
	if ex.Special {
		flags |= event.CommitSpecial
	}
	d.emit(c, seq, &event.InstrCommit{
		PC: ex.PC, Instr: ex.Instr, Flags: flags, Wdest: wdest,
		FuType: uint8(isa.ClassOf(ex.Inst.Op)), Wdata: wdata,
		RobIdx: uint16(seq % 256),
	})

	// Deterministic, REF-derivable events come from the shared derivation
	// so the checker can recompute them bit-exactly (Squash digests).
	for _, ev := range derive.Events(m, &ex, vstartBefore) {
		d.emit(c, seq, ev)
	}
	if ex.Exception {
		d.endGroup = true
	}
	d.emitHierarchy(c, seq, &ex)

	if taken := !ex.Exception && ex.NextPC != ex.PC+4; taken {
		cl := isa.ClassOf(ex.Inst.Op)
		if cl == isa.ClassBranch || cl == isa.ClassJump {
			mp := uint8(0)
			if d.pct(8) {
				mp = 1
			}
			d.emit(c, seq, &event.Redirect{PC: ex.PC, Target: ex.NextPC, Taken: 1, Mispred: mp})
		}
	}

	if ex.MMIO {
		d.endGroup = true
	}
	if d.Bus.Exit.Fired {
		code := d.Bus.Exit.Code
		d.emit(c, seq, &event.Trap{PC: ex.PC, Code: code, Cycle: d.CycleCount, InstrCnt: d.Instrs})
		d.finished = true
	}
	return true
}

// emitHierarchy emits the timing-dependent memory hierarchy events (cache
// refills, TLB fills, store-buffer drains) for cacheable accesses. These are
// not REF-derivable; under Squash they travel ahead with order tags.
func (d *DUT) emitHierarchy(c *Core, seq uint64, ex *arch.Exec) {
	if !ex.Mem || ex.MMIO {
		return
	}
	if d.pct(d.Cfg.MissPct) {
		line := ex.MemAddr &^ 63
		rf := &event.Refill{Addr: line}
		var raw [64]byte
		d.RAM.ReadBytes(line, raw[:])
		for i := 0; i < 8; i++ {
			for j := 7; j >= 0; j-- {
				rf.Data[i] = rf.Data[i]<<8 | uint64(raw[i*8+j])
			}
		}
		d.emit(c, seq, rf)
		if d.pct(d.Cfg.CMOPct) {
			d.emit(c, seq, &event.CMO{Addr: line, Op: 1})
		}
	}
	if d.pct(d.Cfg.TLBPct) {
		vpn := ex.MemAddr >> 12
		d.emit(c, seq, &event.L1TLB{VPN: vpn, PPN: vpn, Satp: c.M.State.CSRVal(isa.CSRSatp), Perm: 0xF, Level: 2})
		if d.pct(25) {
			d.emit(c, seq, &event.L2TLB{
				VPN: vpn, PPN: vpn, GVPN: vpn, Satp: c.M.State.CSRVal(isa.CSRSatp),
				Perm: 0xF, Level: 2,
			})
		}
	}
	if !ex.IsLoad && d.pct(d.Cfg.SbufPct) {
		line := ex.MemAddr &^ 63
		sb := &event.Sbuffer{Addr: line, Mask: ^uint64(0)}
		d.RAM.ReadBytes(line, sb.Data[:])
		d.emit(c, seq, sb)
	}
}

// emitSnapshots emits the per-cycle architectural state events the checker
// compares against the REF. afterInterrupt forces the CSR snapshot so the
// trap CSR updates are validated immediately.
func (d *DUT) emitSnapshots(c *Core, afterInterrupt bool) {
	seq := c.Seq
	m := c.M
	d.emit(c, seq, snapshot.IntRegState(m))
	d.emit(c, seq, snapshot.CSRState(m))
	if afterInterrupt {
		return
	}
	cyc := int(d.CycleCount)
	if e := d.Cfg.FpStateEvery; e > 0 && cyc%e == 0 {
		d.emit(c, seq, snapshot.FpCSRState(m))
		d.emit(c, seq, snapshot.FpRegState(m))
	}
	if e := d.Cfg.VecStateEvery; e > 0 && cyc%e == 0 {
		d.emit(c, seq, snapshot.VecCSRState(m))
		if cyc%(e*8) == 0 {
			d.emit(c, seq, snapshot.VecRegState(m))
		}
	}
	if e := d.Cfg.HStateEvery; e > 0 && cyc%e == 0 {
		d.emit(c, seq, snapshot.HCSRState(m))
	}
	if e := d.Cfg.DbgStateEvery; e > 0 && cyc%e == 0 {
		d.emit(c, seq, snapshot.DebugCSRState(m))
		d.emit(c, seq, snapshot.TriggerCSRState(m))
	}
}

func sizeMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*size) - 1
}

// String summarizes the DUT.
func (d *DUT) String() string {
	return fmt.Sprintf("%s: %d-wide, %d core(s), %.1fM gates, %d event types",
		d.Cfg.Name, d.Cfg.CommitWidth, d.Cfg.Cores, d.Cfg.GatesM, d.Cfg.NumEventKinds())
}
