// Package dut simulates the design under test: a RISC-V processor with a
// configurable commit width, per-cycle timing model, and monitor probes that
// extract the 32 verification event types each cycle — the role XiangShan
// and NutShell RTL play on Palladium/FPGA in the paper.
//
// The DUT executes programs through the same architectural engine as the
// reference model, plus a device bus (MMIO, interrupts — the sources of
// non-determinism) and optional bug-injection hooks that model RTL defects.
package dut

import "repro/internal/event"

// Config describes a DUT: its scale (Table 4 of the paper), commit width,
// monitored event kinds, and the timing/eventing knobs that determine the
// per-cycle verification traffic.
type Config struct {
	Name        string
	CommitWidth int
	Cores       int
	GatesM      float64 // design size in millions of gates (Table 4)

	// EventKinds lists the monitored verification event types; nil means
	// all 32. NutShell monitors only 6 basic types (Table 4).
	EventKinds []event.Kind

	// Timing model.
	StallPct int // percent of cycles committing nothing
	BurstMax int // maximum commits per cycle (≤ CommitWidth)

	// Probabilities (percent) of hierarchy events per memory access.
	MissPct int // cache refill
	TLBPct  int // L1 TLB fill (L2 fill at 1/4 this rate)
	SbufPct int // store-buffer drain per store
	CMOPct  int // cache-maintenance op per refill

	// Snapshot cadences in cycles (0 disables).
	FpStateEvery  int
	VecStateEvery int
	HStateEvery   int
	DbgStateEvery int

	// Interrupt cadences in cycles (0 disables). These model the
	// DUT-specific asynchronous stimulus that makes NDE handling hard.
	TimerIntEnabled bool // CLINT timer (armed by the workload)
	ExtIntEvery     int  // external interrupt period
	VirtIntEvery    int  // virtual interrupt period (hypervisor workloads)

	Seed int64
}

// EnabledKinds returns the monitored-kind filter as a dense bitmap.
func (c *Config) EnabledKinds() [event.NumKinds]bool {
	var m [event.NumKinds]bool
	if len(c.EventKinds) == 0 {
		for i := range m {
			m[i] = true
		}
		return m
	}
	for _, k := range c.EventKinds {
		m[k] = true
	}
	return m
}

// NumEventKinds reports how many event types this DUT monitors.
func (c *Config) NumEventKinds() int {
	if len(c.EventKinds) == 0 {
		return int(event.NumKinds)
	}
	return len(c.EventKinds)
}

// NutShell returns the scalar in-order configuration (paper Table 4:
// 0.6M gates, 6 event types).
func NutShell() Config {
	return Config{
		Name:        "NutShell",
		CommitWidth: 1,
		Cores:       1,
		GatesM:      0.6,
		// Six basic event types; Interrupt and Exception are mandatory for
		// NDE synchronization and architectural-state alignment.
		EventKinds: []event.Kind{
			event.KindInstrCommit, event.KindTrap, event.KindInterrupt,
			event.KindException, event.KindArchIntRegState, event.KindCSRState,
		},
		StallPct:        40,
		BurstMax:        1,
		MissPct:         5,
		TimerIntEnabled: true,
		ExtIntEvery:     5000,
		Seed:            1,
	}
}

// XiangShanMinimal returns the 2-wide out-of-order configuration
// (39.4M gates, 32 event types).
func XiangShanMinimal() Config {
	return Config{
		Name:            "XiangShan (Minimal)",
		CommitWidth:     2,
		Cores:           1,
		GatesM:          39.4,
		StallPct:        50,
		BurstMax:        2,
		MissPct:         8,
		TLBPct:          12,
		SbufPct:         15,
		CMOPct:          10,
		FpStateEvery:    1,
		VecStateEvery:   2,
		HStateEvery:     4,
		DbgStateEvery:   4,
		TimerIntEnabled: true,
		ExtIntEvery:     4000,
		VirtIntEvery:    9000,
		Seed:            2,
	}
}

// XiangShanDefault returns the 6-wide out-of-order configuration
// (57.6M gates, 32 event types).
func XiangShanDefault() Config {
	return Config{
		Name:            "XiangShan (Default)",
		CommitWidth:     6,
		Cores:           1,
		GatesM:          57.6,
		StallPct:        45,
		BurstMax:        3,
		MissPct:         12,
		TLBPct:          20,
		SbufPct:         25,
		CMOPct:          10,
		FpStateEvery:    1,
		VecStateEvery:   1,
		HStateEvery:     2,
		DbgStateEvery:   2,
		TimerIntEnabled: true,
		ExtIntEvery:     4000,
		VirtIntEvery:    9000,
		Seed:            3,
	}
}

// XiangShanDefaultDual returns the dual-core 6-wide configuration
// (111.8M gates).
func XiangShanDefaultDual() Config {
	c := XiangShanDefault()
	c.Name = "XiangShan (Default, 2C)"
	c.Cores = 2
	c.GatesM = 111.8
	c.Seed = 4
	return c
}

// Configs returns the four evaluation DUTs of the paper in Table-4 order.
func Configs() []Config {
	return []Config{NutShell(), XiangShanMinimal(), XiangShanDefault(), XiangShanDefaultDual()}
}
