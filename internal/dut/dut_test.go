package dut_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/workload"
)

func runAll(t *testing.T, d *dut.DUT, maxCycles int) [][]event.Record {
	t.Helper()
	var cycles [][]event.Record
	for i := 0; i < maxCycles; i++ {
		recs, done := d.StepCycle()
		if len(recs) > 0 {
			cp := append([]event.Record(nil), recs...)
			cycles = append(cycles, cp)
		}
		if done {
			return cycles
		}
	}
	t.Fatalf("%s did not finish in %d cycles", d.Cfg.Name, maxCycles)
	return nil
}

func smallProg(cores int) *workload.Program {
	p := workload.Microbench()
	p.TargetInstrs = 5_000
	return workload.Generate(p, cores, 17)
}

func TestDUTIsDeterministic(t *testing.T) {
	cfg := dut.XiangShanDefault()
	prog := smallProg(1)
	a := runAll(t, dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{}), 1_000_000)
	b := runAll(t, dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{}), 1_000_000)
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("cycle %d: %d vs %d records", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j].Seq != b[i][j].Seq || !event.Equal(a[i][j].Ev, b[i][j].Ev) {
				t.Fatalf("cycle %d record %d differs", i, j)
			}
		}
	}
}

func TestDUTHonoursKindFilter(t *testing.T) {
	cfg := dut.NutShell()
	prog := smallProg(1)
	d := dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{})
	runAll(t, d, 1_000_000)
	enabled := cfg.EnabledKinds()
	for k := event.Kind(0); k < event.NumKinds; k++ {
		if !enabled[k] && d.EventCount[k] != 0 {
			t.Errorf("disabled kind %v emitted %d times", k, d.EventCount[k])
		}
	}
	if d.EventCount[event.KindInstrCommit] == 0 {
		t.Error("no commits monitored")
	}
}

func TestDUTSeqMonotonePerCore(t *testing.T) {
	cfg := dut.XiangShanDefaultDual()
	prog := smallProg(2)
	d := dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{})
	last := map[uint8]uint64{}
	for i := 0; i < 1_000_000; i++ {
		recs, done := d.StepCycle()
		for _, rec := range recs {
			if rec.Seq < last[rec.Core] {
				t.Fatalf("core %d seq went backwards: %d after %d", rec.Core, rec.Seq, last[rec.Core])
			}
			last[rec.Core] = rec.Seq
		}
		if done {
			break
		}
	}
	if last[0] == 0 || last[1] == 0 {
		t.Errorf("cores did not both commit: %v", last)
	}
}

func TestDUTDoesNotMutateImage(t *testing.T) {
	prog := smallProg(1)
	before := prog.Image.Read(prog.Entries[0], 4)
	d := dut.New(dut.NutShell(), prog.Image, prog.Entries, arch.Hooks{})
	runAll(t, d, 1_000_000)
	if prog.Image.Read(prog.Entries[0], 4) != before {
		t.Error("DUT wrote through to the shared image")
	}
}

func TestConfigsMatchTable4(t *testing.T) {
	cfgs := dut.Configs()
	if len(cfgs) != 4 {
		t.Fatalf("want the paper's 4 DUTs, got %d", len(cfgs))
	}
	wantGates := []float64{0.6, 39.4, 57.6, 111.8}
	wantKinds := []int{6, 32, 32, 32}
	for i, c := range cfgs {
		if c.GatesM != wantGates[i] {
			t.Errorf("%s gates = %v, want %v", c.Name, c.GatesM, wantGates[i])
		}
		if c.NumEventKinds() != wantKinds[i] {
			t.Errorf("%s kinds = %d, want %d", c.Name, c.NumEventKinds(), wantKinds[i])
		}
	}
}

func TestUARTCapturesWorkloadOutput(t *testing.T) {
	p := workload.LinuxBoot() // MMIO-heavy profile prints to the UART
	p.TargetInstrs = 20_000
	prog := workload.Generate(p, 1, 23)
	d := dut.New(dut.XiangShanDefault(), prog.Image, prog.Entries, arch.Hooks{})
	runAll(t, d, 3_000_000)
	if len(d.UARTOutput()) == 0 {
		t.Error("UART captured nothing on an MMIO-heavy workload")
	}
}
