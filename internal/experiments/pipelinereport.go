package experiments

import (
	"fmt"

	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// PipelineOccupancy reports the executed pipeline's measured queue behavior
// per configuration: transfers, backpressure stalls (producer found the
// in-flight queue full), peak and mean queue occupancy, and the achieved
// hardware/software overlap. This is the host-side companion to Table 5 —
// the modeled table predicts speedups, this one shows the concurrency and
// buffering the executed pipeline actually delivered on this machine.
func PipelineOccupancy(instrs uint64) *Report {
	r := &Report{
		ID: "Pipeline", Title: "Executed pipeline occupancy (XiangShan/Palladium)",
		Header: []string{"Config", "Transfers", "Backpressure", "Queue peak", "Queue mean", "Overlap", "Executed"},
	}
	wl := scale(workload.LinuxBoot(), instrs)
	var ps []cosim.Params
	for _, cfg := range cosim.ConfigNames() {
		p := baseParams(dut.XiangShanDefault(), platform.Palladium(), cfg, wl)
		p.Opt.Executed = true
		ps = append(ps, p)
	}
	rs := runAll(ps)
	for i, cfg := range cosim.ConfigNames() {
		m := rs[i].Exec
		if m == nil {
			continue
		}
		r.Rows = append(r.Rows, []string{
			cfg,
			fmt.Sprint(m.Transfers),
			fmt.Sprint(m.Backpressure),
			fmt.Sprint(m.QueuePeak),
			fmt.Sprintf("%.1f", m.MeanQueueDepth()),
			pct(m.OverlapShare()),
			speedStr(rs[i].ExecutedHz),
		})
	}
	r.Notes = append(r.Notes,
		"backpressure counts producer sends that found the bounded queue full (blocking configs: every transfer stalls on the ack instead)")
	return r
}
