package experiments

import (
	"fmt"

	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// PipelineOccupancy reports the executed pipeline's measured queue behavior
// per configuration: transfers, backpressure stalls (producer found the
// in-flight queue full), peak and mean queue occupancy, and the achieved
// hardware/software overlap. This is the host-side companion to Table 5 —
// the modeled table predicts speedups, this one shows the concurrency and
// buffering the executed pipeline actually delivered on this machine.
func PipelineOccupancy(instrs uint64) *Report {
	r := &Report{
		ID: "Pipeline", Title: "Executed pipeline occupancy (XiangShan/Palladium)",
		Header: []string{"Config", "Transfers", "Backpressure", "Queue peak", "Queue mean", "Overlap", "Executed"},
	}
	wl := scale(workload.LinuxBoot(), instrs)
	var ps []cosim.Params
	for _, cfg := range cosim.ConfigNames() {
		p := baseParams(dut.XiangShanDefault(), platform.Palladium(), cfg, wl)
		p.Opt.Executed = true
		ps = append(ps, p)
	}
	rs := runAll(ps)
	for i, cfg := range cosim.ConfigNames() {
		m := rs[i].Exec
		if m == nil {
			continue
		}
		r.Rows = append(r.Rows, []string{
			cfg,
			fmt.Sprint(m.Transfers),
			fmt.Sprint(m.Backpressure),
			fmt.Sprint(m.QueuePeak),
			fmt.Sprintf("%.1f", m.MeanQueueDepth()),
			pct(m.OverlapShare()),
			speedStr(rs[i].ExecutedHz),
		})
	}
	r.Notes = append(r.Notes,
		"backpressure counts producer sends that found the bounded queue full (blocking configs: every transfer stalls on the ack instead)")
	return r
}

// AutotuneOccupancy reports the AIMD controller's tuning trajectory per
// configuration: the fixed platform constants' throughput (round 0), the
// best-scoring settings the controller found, and every per-round decision
// as notes. This is PipelineOccupancy's closed-loop companion — the
// occupancy table shows what the fixed constants deliver, this one what
// steering QueueDepth/PacketBytes/window from the same live metrics buys.
func AutotuneOccupancy(instrs uint64, rounds int) *Report {
	r := &Report{
		ID: "Autotune", Title: "Auto-tuned pipeline settings (XiangShan/Palladium)",
		Header: []string{"Config", "Fixed instrs/s", "Tuned instrs/s", "Gain", "Best knobs", "Best round"},
	}
	wl := scale(workload.LinuxBoot(), instrs)
	p := baseParams(dut.XiangShanDefault(), platform.Palladium(), "EB", wl)
	reps, err := cosim.AutoTuneSweep(p, rounds, nil)
	if err != nil {
		r.Notes = append(r.Notes, "autotune failed: "+err.Error())
		return r
	}
	for _, rep := range reps {
		r.Rows = append(r.Rows, []string{
			rep.Config,
			fmt.Sprintf("%.0f", rep.FixedScore()),
			fmt.Sprintf("%.0f", rep.BestScore),
			fmt.Sprintf("%.2fx", rep.Gain()),
			rep.Best.String(),
			fmt.Sprint(rep.BestRound),
		})
		for _, round := range rep.Rounds {
			r.Notes = append(r.Notes, fmt.Sprintf("%s %s", rep.Config, round.Decision))
		}
	}
	r.Notes = append(r.Notes,
		"round 0 measures the fixed platform constants, so tuned ≥ fixed by construction")
	return r
}
