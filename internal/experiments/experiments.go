// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the implemented system: the command-line tools print
// these reports and the benchmark harness times them. Each experiment
// returns a Report whose rows mirror the paper's presentation; see
// EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Report is one regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	sb.WriteString(stats.Table(r.Header, r.Rows))
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// DefaultInstrs is the default dynamic instruction budget per run. The
// paper's runs are billions of instructions; reports scale linearly, so a
// few hundred thousand instructions reproduce the same shapes in seconds.
const DefaultInstrs = 120_000

func scale(p workload.Profile, instrs uint64) workload.Profile {
	if instrs == 0 {
		instrs = DefaultInstrs
	}
	p.TargetInstrs = instrs
	return p
}

// mustRun executes one co-simulation, panicking on harness errors (the
// experiment definitions are statically valid).
func mustRun(p cosim.Params) *cosim.Result {
	res, err := cosim.Run(p)
	if err != nil {
		panic(fmt.Sprintf("experiment run failed: %v", err))
	}
	return res
}

// Workers bounds the sweep parallelism of the experiments that fan out over
// configurations × platforms × DUTs (0 selects GOMAXPROCS). The perf and
// breakdown commands expose it as -workers.
var Workers = 0

// runAll executes a batch of independent runs on the sweep worker pool
// (cosim.RunConcurrent) and returns results in input order, panicking on
// harness errors like mustRun.
func runAll(ps []cosim.Params) []*cosim.Result {
	rs, err := cosim.RunConcurrent(ps, Workers)
	if err != nil {
		panic(fmt.Sprintf("experiment run failed: %v", err))
	}
	return rs
}

func kHz(hz float64) string {
	return fmt.Sprintf("%.1f KHz", hz/1e3)
}

func mHz(hz float64) string {
	return fmt.Sprintf("%.2f MHz", hz/1e6)
}

func speedStr(hz float64) string {
	if hz >= 1e6 {
		return mHz(hz)
	}
	return kHz(hz)
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// opt resolves a named configuration.
func opt(name string) cosim.Options {
	o, err := cosim.ParseConfig(name)
	if err != nil {
		panic(err)
	}
	return o
}

// baseParams builds the standard run setup for a named configuration.
func baseParams(d dut.Config, p platform.Platform, cfg string, wl workload.Profile) cosim.Params {
	return params(d, p, opt(cfg), wl)
}

// params builds a run setup with explicit options.
func params(d dut.Config, p platform.Platform, o cosim.Options, wl workload.Profile) cosim.Params {
	return cosim.Params{DUT: d, Platform: p, Opt: o, Workload: wl, Seed: 7}
}
