package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/area"
	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Table1 reproduces the verification-event taxonomy (paper Table 1).
func Table1() *Report {
	r := &Report{
		ID: "Table 1", Title: "Verification events",
		Header: []string{"Category", "Types", "Representative examples"},
	}
	byCat := map[event.Category][]event.Kind{}
	for k := event.Kind(0); k < event.NumKinds; k++ {
		c := event.CategoryOf(k)
		byCat[c] = append(byCat[c], k)
	}
	total := 0
	for c := event.Category(0); c < event.NumCategories; c++ {
		kinds := byCat[c]
		total += len(kinds)
		examples := make([]string, 0, 3)
		for _, k := range kinds[:min(3, len(kinds))] {
			examples = append(examples, k.String())
		}
		r.Rows = append(r.Rows, []string{
			c.String(), fmt.Sprint(len(kinds)), join(examples),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d event types total; aggregated interface width %d bytes per instance set",
			total, event.TotalSize()))
	return r
}

// Table2 reproduces the platform comparison (paper Table 2).
func Table2() *Report {
	r := &Report{
		ID: "Table 2", Title: "Co-simulation platforms (XiangShan default, 57.6M gates)",
		Header: []string{"Platform", "Debuggability", "Cost", "Optimal speed"},
	}
	v := platform.Verilator(16)
	p := platform.Palladium()
	f := platform.FPGA()
	r.Rows = [][]string{
		{"RTL Simulator (16t)", "Full visibility", "Free", speedStr(v.DUTOnlyHz(57.6))},
		{"Emulator (Palladium)", "Waveform", "Expensive", speedStr(p.DUTOnlyHz(57.6))},
		{"FPGA (VU19P)", "Limited", "Affordable", speedStr(f.DUTOnlyHz(57.6))},
	}
	return r
}

// Table4 reproduces the DUT scales and verification coverage (paper
// Table 4): gates, monitored event types, and measured bytes per retired
// instruction before optimization.
func Table4(instrs uint64) *Report {
	r := &Report{
		ID: "Table 4", Title: "Scales and verification coverage across DUTs",
		Header: []string{"DUT", "Gates", "Event types", "Avg bytes/instr", "Events/cycle", "IPC"},
	}
	for _, d := range dut.Configs() {
		prog := workload.Generate(scale(workload.LinuxBoot(), instrs), d.Cores, 7)
		sim := dut.New(d, prog.Image, prog.Entries, arch.Hooks{})
		for {
			if _, done := sim.StepCycle(); done {
				break
			}
		}
		var events uint64
		for _, n := range sim.EventCount {
			events += n
		}
		r.Rows = append(r.Rows, []string{
			d.Name,
			fmt.Sprintf("%.1f M", d.GatesM),
			fmt.Sprint(d.NumEventKinds()),
			fmt.Sprintf("%.0f", float64(sim.EventBytes)/float64(sim.Instrs)),
			fmt.Sprintf("%.1f", float64(events)/float64(sim.CycleCount)),
			fmt.Sprintf("%.2f", float64(sim.Instrs)/float64(sim.CycleCount)),
		})
	}
	return r
}

// Table5 reproduces the optimization breakdown (paper Table 5): incremental
// speeds applying Batch, NonBlock, and Squash on NutShell-Palladium,
// XiangShan-Palladium, and XiangShan-FPGA.
func Table5(instrs uint64) *Report {
	r := &Report{
		ID: "Table 5", Title: "Optimization breakdown across DUTs and platforms",
		Header: []string{"Setup", "NutShell/Palladium", "XiangShan/Palladium", "XiangShan/FPGA"},
	}
	type col struct {
		d dut.Config
		p platform.Platform
	}
	cols := []col{
		{dut.NutShell(), platform.Palladium()},
		{dut.XiangShanDefault(), platform.Palladium()},
		{dut.XiangShanDefault(), platform.FPGA()},
	}
	rows := []struct{ label, cfg string }{
		{"Baseline", "Z"}, {"+Batch", "EB"}, {"+NonBlock", "EBIN"}, {"+Squash", "EBINSD"},
	}
	var ps []cosim.Params
	for _, rowDef := range rows {
		for _, c := range cols {
			ps = append(ps, baseParams(c.d, c.p, rowDef.cfg, scale(workload.LinuxBoot(), instrs)))
		}
	}
	rs := runAll(ps)
	base := make([]float64, len(cols))
	for ri, rowDef := range rows {
		cells := []string{rowDef.label}
		for ci, c := range cols {
			res := rs[ri*len(cols)+ci]
			if ri == 0 {
				base[ci] = res.SpeedHz
			}
			cells = append(cells, fmt.Sprintf("%s (%.0fx)", speedStr(res.SpeedHz), res.SpeedHz/base[ci]))
			if rowDef.cfg == "EBINSD" {
				r.Notes = append(r.Notes, fmt.Sprintf("%s/%s: residual communication overhead %s",
					c.d.Name, c.p.Name, pct(res.CommOverheadShare)))
			}
		}
		r.Rows = append(r.Rows, cells)
	}
	return r
}

// Table6 reproduces the bug inventory grouped by category (paper Table 6).
func Table6() *Report {
	r := &Report{
		ID: "Table 6", Title: "Injectable bug library by category (modeled on the XiangShan fixes)",
		Header: []string{"Category", "Bug", "PR", "Description"},
	}
	byCat := bugs.ByCategory()
	for c := bugs.Category(0); c < bugs.NumCategories; c++ {
		for _, b := range byCat[c] {
			r.Rows = append(r.Rows, []string{c.String(), b.ID, b.PR, b.Description})
		}
	}
	return r
}

// Table7 reproduces the prior-work comparison (paper Table 7) by modeling
// each framework as a restricted configuration of this system: IBI-check and
// SBS-check monitor 2 event types on a slower emulator with static packing;
// Fromajo monitors 7 types on a 100 MHz FPGA.
func Table7(instrs uint64) *Report {
	r := &Report{
		ID: "Table 7", Title: "Comparison of hardware-accelerated co-simulation frameworks",
		Header: []string{"Work", "Platform", "States", "Comm ovh", "DUT-only", "Co-sim speed"},
	}
	wl := scale(workload.LinuxBoot(), instrs)

	// IBI-check: IBM AWAN-class emulator (~100 KHz), instruction-by-
	// instruction checking of commits + register state, fixed-offset packing.
	awan := platform.Palladium()
	awan.Name = "AWAN-class"
	awan.BaseHz = 100e3
	ibiDUT := dut.XiangShanDefault()
	ibiDUT.Name = "XiangShan (IBI states)"
	ibiDUT.EventKinds = []event.Kind{
		event.KindInstrCommit, event.KindTrap, event.KindInterrupt,
		event.KindException, event.KindArchIntRegState,
	}
	ibiOpt := opt("EB")
	ibiOpt.FixedOffset = true

	// Fromajo: FireSim at 100 MHz, 7 architectural state types, packed
	// transfers without fusion.
	firesim := platform.FPGA()
	firesim.Name = "FireSim-class"
	firesim.BaseHz = 100e6
	froDUT := dut.XiangShanDefault()
	froDUT.Name = "SonicBOOM-class"
	froDUT.EventKinds = []event.Kind{
		event.KindInstrCommit, event.KindTrap, event.KindInterrupt,
		event.KindException, event.KindArchIntRegState, event.KindCSRState,
		event.KindLoad,
	}
	// All five framework models are independent runs: sweep them on the
	// worker pool, then render rows in presentation order.
	rs := runAll([]cosim.Params{
		params(ibiDUT, awan, ibiOpt, wl),
		// SBS-check: same states, batched with hidden software latency.
		params(ibiDUT, awan, opt("EBIN"), wl),
		params(froDUT, firesim, opt("EB"), wl),
		// DiffTest-H: the full 32-state stack on both platforms.
		baseParams(dut.XiangShanDefault(), platform.Palladium(), "EBINSD", wl),
		baseParams(dut.XiangShanDefault(), platform.FPGA(), "EBINSD", wl),
	})
	ibi, sbs, fro, dth, dthF := rs[0], rs[1], rs[2], rs[3], rs[4]
	r.Rows = append(r.Rows, []string{
		"IBI-check [8]", awan.Name, "2+sync", pct(ibi.CommOverheadShare),
		speedStr(ibi.DUTOnlyHz), speedStr(ibi.SpeedHz),
	})
	r.Rows = append(r.Rows, []string{
		"SBS-check [19]", awan.Name, "2+sync", pct(sbs.CommOverheadShare),
		speedStr(sbs.DUTOnlyHz), speedStr(sbs.SpeedHz),
	})
	r.Rows = append(r.Rows, []string{
		"Fromajo [56,57]", firesim.Name, "7", pct(fro.CommOverheadShare),
		speedStr(fro.DUTOnlyHz), speedStr(fro.SpeedHz),
	})
	r.Rows = append(r.Rows, []string{
		"DiffTest-H", "Palladium", "32", pct(dth.CommOverheadShare),
		speedStr(dth.DUTOnlyHz), speedStr(dth.SpeedHz),
	})
	r.Rows = append(r.Rows, []string{
		"DiffTest-H", "FPGA", "32", pct(dthF.CommOverheadShare),
		speedStr(dthF.DUTOnlyHz), speedStr(dthF.SpeedHz),
	})
	r.Notes = append(r.Notes,
		"prior works are modeled as restricted configurations: fewer monitored states, no order-decoupled fusion")
	return r
}

// Figure15 reproduces the resource analysis (paper Figure 15 / §6.4).
func Figure15() *Report {
	r := &Report{
		ID: "Figure 15", Title: "Resource usage (millions of gates)",
		Header: []string{"DUT", "DUT gates", "Verif (no Batch)", "Overhead", "Verif (with Batch)", "Overhead"},
	}
	slim := area.DefaultConfig()
	slim.WithBatch = false
	for _, d := range dut.Configs()[1:] { // XiangShan configurations
		full := area.ForDUT(d, area.DefaultConfig())
		noBatch := area.ForDUT(d, slim)
		r.Rows = append(r.Rows, []string{
			d.Name,
			fmt.Sprintf("%.1f M", d.GatesM),
			fmt.Sprintf("%.2f M", noBatch.TotalM()),
			fmt.Sprintf("%.1f%%", noBatch.OverheadPct()),
			fmt.Sprintf("%.2f M", full.TotalM()),
			fmt.Sprintf("%.1f%%", full.OverheadPct()),
		})
	}
	r.Notes = append(r.Notes,
		"Batch's unified packing interface dominates the added area, as in the paper (~6% → ~25%)")
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
