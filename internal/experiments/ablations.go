package experiments

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/workload"
)

// hooksNone is the empty hook set shared by experiment helpers.
var hooksNone = arch.Hooks{}

// AblationPacketSize sweeps the Batch packet size (DESIGN.md decision 1):
// small packets pay more per-transfer startups, oversized packets add
// detection latency without further speedup.
func AblationPacketSize(instrs uint64) *Report {
	r := &Report{
		ID: "Ablation A", Title: "Batch packet size sweep (XiangShan/Palladium, EB)",
		Header: []string{"Packet bytes", "Speed", "Invokes/kcycle", "Utilization"},
	}
	for _, size := range []int{2048, 4096, 8192, 16384, 65536} {
		p := platform.Palladium()
		p.PacketBytes = size
		res := mustRun(baseParams(dut.XiangShanDefault(), p, "EB", scale(workload.LinuxBoot(), instrs)))
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(size),
			speedStr(res.SpeedHz),
			fmt.Sprintf("%.2f", float64(res.Invokes)/float64(res.Cycles)*1000),
			fmt.Sprintf("%.2f", res.PacketUtilation),
		})
	}
	return r
}

// AblationFusionWindow sweeps the Squash window size (DESIGN.md decision 3):
// longer windows fuse more but delay mismatch detection and grow replay
// ranges.
func AblationFusionWindow(instrs uint64) *Report {
	r := &Report{
		ID: "Ablation B", Title: "Squash fusion window sweep (XiangShan/Palladium, EBINSD)",
		Header: []string{"Window", "Speed", "Fusion ratio", "Wire bytes/kcycle"},
	}
	for _, window := range []int{8, 16, 32, 64, 128, 256} {
		o := opt("EBINSD")
		o.MaxFuse = window
		res := mustRun(params(dut.XiangShanDefault(), platform.Palladium(), o,
			scale(workload.LinuxBoot(), instrs)))
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(window),
			speedStr(res.SpeedHz),
			fmt.Sprintf("%.1f", res.Fusion.FusionRatio()),
			fmt.Sprintf("%.0f", float64(res.WireBytes)/float64(res.Cycles)*1000),
		})
	}
	return r
}

// AblationOrderCoupling compares order-decoupled fusion against the
// order-coupled baseline of existing schemes (paper Figure 8) across
// workloads with different NDE rates.
func AblationOrderCoupling(instrs uint64) *Report {
	r := &Report{
		ID: "Ablation C", Title: "Order-decoupled vs order-coupled fusion",
		Header: []string{"Workload", "Decoupled ratio", "Coupled ratio", "Breaks", "Wire-byte ratio"},
	}
	for _, prof := range []workload.Profile{workload.Microbench(), workload.SPEC(), workload.LinuxBoot(), workload.KVM()} {
		wl := scale(prof, instrs)
		dec := mustRun(baseParams(dut.XiangShanDefault(), platform.Palladium(), "EBINSD", wl))
		o := opt("EBINSD")
		o.CoupleOrder = true
		cpl := mustRun(params(dut.XiangShanDefault(), platform.Palladium(), o, wl))
		r.Rows = append(r.Rows, []string{
			prof.Name,
			fmt.Sprintf("%.1f", dec.Fusion.FusionRatio()),
			fmt.Sprintf("%.1f", cpl.Fusion.FusionRatio()),
			fmt.Sprint(cpl.Fusion.Breaks),
			fmt.Sprintf("%.2f", float64(cpl.WireBytes)/float64(dec.WireBytes)),
		})
	}
	r.Notes = append(r.Notes,
		"NDE-heavy workloads (linux, kvm) break coupled fusion hardest — the paper's §4.3 motivation")
	return r
}

// AblationReplayVsSnapshot compares Replay's compensation-log checkpointing
// against full reference-model snapshots (paper Figure 10): wall time and
// memory per checkpoint at a realistic cadence.
func AblationReplayVsSnapshot(instrs uint64) *Report {
	r := &Report{
		ID: "Ablation D", Title: "REF revert strategies: compensation log vs full snapshot",
		Header: []string{"Strategy", "Checkpoints", "Wall time", "Revert wall time", "Approx bytes held"},
	}
	prog := workload.Generate(scale(workload.Microbench(), instrs), 1, 7)
	const window = 64

	steps := int(instrs)
	if steps == 0 {
		steps = DefaultInstrs
	}

	// Compensation-log checkpoints at every fusion-window boundary.
	rc := ref.New(prog.Image)
	rc.M.State.PC = prog.Entries[0]
	start := time.Now()
	var marks []ref.Mark
	for i := 0; i < steps; i++ {
		if i%window == 0 {
			marks = append(marks, rc.Checkpoint())
			if len(marks) > 2 {
				rc.TrimBefore(marks[len(marks)-2])
			}
		}
		rc.Step()
	}
	compTime := time.Since(start)
	compBytes := rc.LogLen() * 24
	start = time.Now()
	rc.Revert(marks[len(marks)-1])
	compRevert := time.Since(start)

	// Full snapshots at the same cadence.
	rs := ref.New(prog.Image)
	rs.M.State.PC = prog.Entries[0]
	start = time.Now()
	var snap ref.Snapshot
	snaps := 0
	for i := 0; i < steps; i++ {
		if i%window == 0 {
			snap = rs.TakeSnapshot()
			snaps++
		}
		rs.Step()
	}
	snapTime := time.Since(start)
	snapBytes := snap.Mem.PageCount() * 4096
	start = time.Now()
	rs.RestoreSnapshot(snap)
	snapRevert := time.Since(start)

	r.Rows = append(r.Rows, []string{
		"Compensation log (Replay)", fmt.Sprint(len(marks)),
		compTime.Round(time.Microsecond).String(),
		compRevert.Round(time.Microsecond).String(),
		fmt.Sprint(compBytes),
	})
	r.Rows = append(r.Rows, []string{
		"Full snapshot", fmt.Sprint(snaps),
		snapTime.Round(time.Microsecond).String(),
		snapRevert.Round(time.Microsecond).String(),
		fmt.Sprint(snapBytes),
	})
	r.Notes = append(r.Notes,
		"snapshotting copies all mapped memory each checkpoint; the compensation log records only deltas (paper §4.4)")
	return r
}
