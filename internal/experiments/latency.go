package experiments

import (
	"fmt"

	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// DetectionLatency measures the debuggability cost of fusion: how many
// instructions pass between a bug's manifestation and its detection, under
// per-event checking (Z) versus the fully fused stack (EBINSD). Fusion
// defers detection to window/digest boundaries; Replay then recovers the
// exact faulting instruction, so the final localization is identical —
// the paper's "preserving instruction-level debuggability" claim in
// measurable form.
func DetectionLatency(instrs uint64) *Report {
	r := &Report{
		ID: "Ablation E", Title: "Bug detection latency: per-event vs fused checking",
		Header: []string{"Bug", "Manifest@", "Z detects@", "EBINSD detects@",
			"Fused extra latency", "Replay localizes@"},
	}
	sample := []string{"load-sign-extension", "amo-old-value-corrupt", "mepc-misaligned-on-trap"}
	for _, id := range sample {
		b, ok := bugs.ByID(id)
		if !ok {
			continue
		}
		runWith := func(cfg string) (*cosim.Result, *bugs.Fired) {
			hooks, fired := b.Instrument(0)
			res := mustRun(cosim.Params{
				DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
				Opt: opt(cfg), Workload: scale(workload.LinuxBoot(), instrs),
				Seed: 21, Hooks: hooks,
			})
			return res, fired
		}
		z, zFired := runWith("Z")
		f, fFired := runWith("EBINSD")
		if z.Mismatch == nil || f.Mismatch == nil || !zFired.Manifested || !fFired.Manifested {
			r.Rows = append(r.Rows, []string{b.ID, "-", "escaped", "escaped", "-", "-"})
			continue
		}
		extra := int64(f.Mismatch.Seq) - int64(z.Mismatch.Seq)
		localized := "-"
		if f.Replay != nil && f.Replay.Detailed != nil {
			localized = fmt.Sprint(f.Replay.Detailed.Seq)
		}
		r.Rows = append(r.Rows, []string{
			b.ID,
			fmt.Sprint(zFired.Instr),
			fmt.Sprint(z.Mismatch.Seq),
			fmt.Sprint(f.Mismatch.Seq),
			fmt.Sprintf("%+d instrs", extra),
			localized,
		})
	}
	r.Notes = append(r.Notes,
		"fused detection lags by up to one fusion window + state-flush period;",
		"Replay reprocesses the buffered unfused events and reports the same faulting instruction as Z")
	return r
}
