package experiments

import (
	"strings"
	"testing"
)

// Small instruction budget: these tests validate shapes, not magnitudes.
const testInstrs = 15_000

func checkReport(t *testing.T, r *Report, wantRows int) {
	t.Helper()
	if r.ID == "" || r.Title == "" || len(r.Header) == 0 {
		t.Fatalf("underspecified report: %+v", r)
	}
	if len(r.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want at least %d", r.ID, len(r.Rows), wantRows)
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Errorf("%s row %d: %d cells for %d columns", r.ID, i, len(row), len(r.Header))
		}
	}
	if s := r.String(); !strings.Contains(s, r.Title) {
		t.Errorf("%s: rendering lacks the title", r.ID)
	}
}

func TestTable1(t *testing.T)   { checkReport(t, Table1(), 5) }
func TestTable2(t *testing.T)   { checkReport(t, Table2(), 3) }
func TestTable6(t *testing.T)   { checkReport(t, Table6(), 15) }
func TestFigure15(t *testing.T) { checkReport(t, Figure15(), 3) }

func TestTable4(t *testing.T) {
	r := Table4(testInstrs)
	checkReport(t, r, 4)
	// NutShell must report far fewer bytes/instr than XiangShan.
	if r.Rows[0][3] >= r.Rows[2][3] && len(r.Rows[0][3]) >= len(r.Rows[2][3]) {
		t.Errorf("NutShell bytes/instr %s not below XiangShan %s", r.Rows[0][3], r.Rows[2][3])
	}
}

func TestTable5(t *testing.T) {
	r := Table5(testInstrs)
	checkReport(t, r, 4)
	if !strings.Contains(r.Rows[3][0], "Squash") {
		t.Errorf("last row = %v", r.Rows[3])
	}
}

func TestFigure2(t *testing.T) {
	r := Figure2(testInstrs)
	checkReport(t, r, 3)
	for _, row := range r.Rows {
		if !strings.Contains(row[4], "9") { // >90% comm share everywhere
			t.Errorf("%s: baseline comm share %s suspiciously low", row[0], row[4])
		}
	}
}

func TestFigure4(t *testing.T) {
	r := Figure4(testInstrs)
	checkReport(t, r, 32)
}

func TestFigure13(t *testing.T) {
	r := Figure13(testInstrs)
	checkReport(t, r, 4)
}

func TestFigure14(t *testing.T) {
	r := Figure14(60_000)
	checkReport(t, r, len(Figure14Bugs))
	for _, row := range r.Rows {
		if row[1] == "escaped" {
			t.Errorf("bug %s escaped in Figure 14 harness", row[0])
		}
	}
}

func TestTable7(t *testing.T) {
	r := Table7(testInstrs)
	checkReport(t, r, 5)
}

func TestAblations(t *testing.T) {
	checkReport(t, AblationPacketSize(testInstrs), 5)
	checkReport(t, AblationFusionWindow(testInstrs), 6)
	checkReport(t, AblationOrderCoupling(testInstrs), 4)
	checkReport(t, AblationReplayVsSnapshot(20_000), 2)
}

func TestDetectionLatency(t *testing.T) {
	r := DetectionLatency(120_000)
	checkReport(t, r, 3)
	for _, row := range r.Rows {
		if row[2] == "escaped" {
			t.Errorf("bug %s escaped in latency harness", row[0])
			continue
		}
		// Replay must localize to the same instruction the per-event
		// checker flags (or one adjacent to the manifestation point).
		if row[5] == "-" {
			t.Errorf("bug %s: replay produced no localization", row[0])
		}
	}
	t.Log("\n" + r.String())
}
