package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Figure2 reproduces the overhead breakdown across DUTs and platforms
// (paper Figure 2): the three LogGP phases of the unoptimized baseline.
func Figure2(instrs uint64) *Report {
	r := &Report{
		ID: "Figure 2", Title: "Overhead breakdown across DUTs and platforms (baseline)",
		Header: []string{"Setup", "Startup", "Transmission", "Software", "Comm share of total"},
	}
	setups := []struct {
		d dut.Config
		p platform.Platform
	}{
		{dut.NutShell(), platform.Palladium()},
		{dut.XiangShanDefault(), platform.Palladium()},
		{dut.XiangShanDefault(), platform.FPGA()},
	}
	for _, s := range setups {
		res := mustRun(baseParams(s.d, s.p, "Z", scale(workload.LinuxBoot(), instrs)))
		st, tr, sw := res.Breakdown.Shares()
		r.Rows = append(r.Rows, []string{
			s.d.Name + " / " + s.p.Name, pct(st), pct(tr), pct(sw), pct(res.CommOverheadShare),
		})
	}
	r.Notes = append(r.Notes,
		"XiangShan shows higher transmission+software shares than NutShell (richer events);",
		"the FPGA shows a higher startup share than Palladium (PCIe handshakes) with more bandwidth")
	return r
}

// Figure4 reproduces the event size and invocation census (paper Figure 4):
// per event kind, the wire size and the measured invocations per kilocycle
// on XiangShan-default running Linux boot.
func Figure4(instrs uint64) *Report {
	r := &Report{
		ID: "Figure 4", Title: "Verification event size and invocations (XiangShan default, linux)",
		Header: []string{"ID", "Event", "Size (B)", "Invocations/kcycle"},
	}
	res := mustRun(baseParams(dut.XiangShanDefault(), platform.Palladium(), "Z",
		scale(workload.LinuxBoot(), instrs)))
	_ = res

	// Re-run the monitor alone for per-kind counts.
	prog := workload.Generate(scale(workload.LinuxBoot(), instrs), 1, 7)
	sim := newMonitorRun(dut.XiangShanDefault(), prog)

	kinds := make([]event.Kind, 0, event.NumKinds)
	for k := event.Kind(0); k < event.NumKinds; k++ {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		return event.SizeOf(kinds[i]) < event.SizeOf(kinds[j])
	})
	for i, k := range kinds {
		perK := float64(sim.EventCount[k]) / float64(sim.CycleCount) * 1000
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(i + 1), k.String(), fmt.Sprint(event.SizeOf(k)),
			fmt.Sprintf("%.1f", perK),
		})
	}
	minSize := event.SizeOf(kinds[0])
	maxSize := event.SizeOf(kinds[len(kinds)-1])
	r.Notes = append(r.Notes, fmt.Sprintf("size spread %d–%d bytes (%d×)",
		minSize, maxSize, maxSize/minSize))
	return r
}

// Figure13 reproduces the performance comparison (paper Figure 13): for each
// DUT scale, 16-thread Verilator, the unoptimized Palladium baseline, the
// full DiffTest-H stack, and the DUT-only ceiling.
func Figure13(instrs uint64) *Report {
	r := &Report{
		ID: "Figure 13", Title: "Performance comparison (Linux boot)",
		Header: []string{"DUT", "Verilator-16t", "Baseline/PLDM", "DiffTest-H/PLDM", "DUT-only/PLDM", "vs base", "vs Verilator"},
	}
	wl := scale(workload.LinuxBoot(), instrs)
	var ps []cosim.Params
	for _, d := range dut.Configs() {
		ps = append(ps,
			baseParams(d, platform.Verilator(16), "Z", wl),
			baseParams(d, platform.Palladium(), "Z", wl),
			baseParams(d, platform.Palladium(), "EBINSD", wl))
	}
	rs := runAll(ps)
	for i, d := range dut.Configs() {
		veri, base, dth := rs[3*i], rs[3*i+1], rs[3*i+2]
		r.Rows = append(r.Rows, []string{
			d.Name,
			speedStr(veri.SpeedHz), speedStr(base.SpeedHz), speedStr(dth.SpeedHz),
			speedStr(dth.DUTOnlyHz),
			fmt.Sprintf("%.0fx", dth.SpeedHz/base.SpeedHz),
			fmt.Sprintf("%.0fx", dth.SpeedHz/veri.SpeedHz),
		})
	}
	return r
}

// Figure14Bugs is the bug sample used for the detection-time figure.
var Figure14Bugs = []string{
	"load-sign-extension", "store-byte-drop", "mepc-misaligned-on-trap",
	"branch-not-taken", "vadd-lane-drop", "misaligned-wakeup-data",
}

// Figure14 reproduces the bug detection time comparison (paper Figure 14):
// the simulated wall-clock time to reach each bug's manifestation on
// 16-thread Verilator versus DiffTest-H on Palladium.
func Figure14(instrs uint64) *Report {
	r := &Report{
		ID: "Figure 14", Title: "Bug detection time (simulated wall clock)",
		Header: []string{"Bug", "Detect cycle", "Verilator-16t", "DiffTest-H/PLDM", "Speedup"},
	}
	veriHz := platform.Verilator(16).DUTOnlyHz(57.6) * platform.Verilator(16).CosimEff
	for _, id := range Figure14Bugs {
		b, ok := bugs.ByID(id)
		if !ok {
			continue
		}
		prof := scale(workload.LinuxBoot(), instrs)
		res := mustRun(cosim.Params{
			DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
			Opt: opt("EBINSD"), Workload: prof, Seed: 21, Hooks: b.Hooks(0),
		})
		if res.Mismatch == nil {
			r.Rows = append(r.Rows, []string{b.ID, "escaped", "-", "-", "-"})
			continue
		}
		tVeri := float64(res.Cycles) / veriHz
		tDTH := float64(res.Cycles) / res.SpeedHz
		r.Rows = append(r.Rows, []string{
			b.ID,
			fmt.Sprint(res.Cycles),
			duration(tVeri),
			duration(tDTH),
			fmt.Sprintf("%.0fx", tVeri/tDTH),
		})
	}
	r.Notes = append(r.Notes,
		"the paper's bugs manifest after millions-to-billions of cycles: at these speed ratios",
		"a bug needing 2 months of Verilator time is reached in ~11 hours by DiffTest-H")
	return r
}

func duration(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.1f µs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1f ms", sec*1e3)
	case sec < 120:
		return fmt.Sprintf("%.1f s", sec)
	case sec < 7200:
		return fmt.Sprintf("%.1f min", sec/60)
	case sec < 48*3600:
		return fmt.Sprintf("%.1f h", sec/3600)
	default:
		return fmt.Sprintf("%.1f days", sec/86400)
	}
}

// newMonitorRun executes a DUT to completion without a checker, for monitor
// statistics.
func newMonitorRun(cfg dut.Config, prog *workload.Program) *dut.DUT {
	sim := dut.New(cfg, prog.Image, prog.Entries, hooksNone)
	for {
		if _, done := sim.StepCycle(); done {
			return sim
		}
	}
}
