package snapshot

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
)

func machine() *arch.Machine {
	m := arch.NewMachine(mem.New())
	m.State.GPR[5] = 0xAA
	m.State.FPR[2] = 0xBB
	m.State.VReg[1][3] = 0xCC
	m.State.SetCSR(isa.CSRMstatus, 0x1888)
	m.State.SetCSR(isa.CSRVl, 4)
	m.State.SetCSR(isa.CSRHgatp, 1)
	m.State.SetCSR(isa.CSRFcsr, 0xE0)
	return m
}

func TestBuildersReflectState(t *testing.T) {
	m := machine()
	if IntRegState(m).GPR[5] != 0xAA {
		t.Error("int reg snapshot wrong")
	}
	if FpRegState(m).FPR[2] != 0xBB {
		t.Error("fp reg snapshot wrong")
	}
	if VecRegState(m).VReg[1][3] != 0xCC {
		t.Error("vec reg snapshot wrong")
	}
	cs := CSRState(m)
	if cs.Mstatus != 0x1888 || cs.Priv != 3 {
		t.Errorf("csr snapshot: %+v", cs)
	}
	if VecCSRState(m).Vl != 4 || VecCSRState(m).Vlenb != isa.VLenBytes {
		t.Error("vec csr snapshot wrong")
	}
	if HCSRState(m).Hgatp != 1 {
		t.Error("hypervisor snapshot wrong")
	}
	if FpCSRState(m).Fcsr != 0xE0 {
		t.Error("fcsr snapshot wrong")
	}
}

func TestMipOmittedFromCSRState(t *testing.T) {
	// mip reflects live device state that the REF cannot reproduce; the
	// snapshot must report zero so interrupt wiring never causes spurious
	// mismatches (NDE synchronization handles delivery instead).
	m := machine()
	m.State.SetCSR(isa.CSRMip, 0x880)
	if CSRState(m).Mip != 0 {
		t.Error("mip leaked into the comparison snapshot")
	}
}

func TestBuildDispatch(t *testing.T) {
	m := machine()
	for _, k := range SnapshotKinds {
		ev := Build(k, m)
		if ev == nil || ev.Kind() != k {
			t.Errorf("Build(%v) = %v", k, ev)
		}
	}
	if Build(event.KindLoad, m) != nil {
		t.Error("Build produced a non-snapshot kind")
	}
	if len(SnapshotKinds) != 9 {
		t.Errorf("snapshot kinds = %d, want the 9 register-update kinds", len(SnapshotKinds))
	}
}

func TestSnapshotsAreValueCopies(t *testing.T) {
	m := machine()
	snap := IntRegState(m)
	m.State.GPR[5] = 0xDD
	if snap.GPR[5] != 0xAA {
		t.Error("snapshot aliases live state")
	}
}
