package snapshot

import (
	"testing"

	"repro/internal/event"
)

// TestBuildNonSnapshotKindsReturnNil pins the default arm added for
// kindswitch exhaustiveness: every non-snapshot kind builds nothing.
func TestBuildNonSnapshotKindsReturnNil(t *testing.T) {
	m := machine()
	snapshotKinds := make(map[event.Kind]bool, len(SnapshotKinds))
	for _, k := range SnapshotKinds {
		snapshotKinds[k] = true
	}
	for k := event.Kind(0); k < event.NumKinds; k++ {
		ev := Build(k, m)
		if snapshotKinds[k] {
			if ev == nil {
				t.Errorf("Build(%v) = nil, want a snapshot event", k)
			} else if ev.Kind() != k {
				t.Errorf("Build(%v) built kind %v", k, ev.Kind())
			}
		} else if ev != nil {
			t.Errorf("Build(%v) = %T, want nil for a non-snapshot kind", k, ev)
		}
	}
}
