// Package snapshot builds register/CSR-state verification events from an
// architectural machine. The DUT monitor and the software checker build
// snapshots with the same functions, so any state divergence between the two
// machines shows up as an event mismatch.
package snapshot

import (
	"repro/internal/arch"
	"repro/internal/event"
	"repro/internal/isa"
)

// IntRegState snapshots the integer register file.
func IntRegState(m *arch.Machine) *event.ArchIntRegState {
	return &event.ArchIntRegState{GPR: m.State.GPR}
}

// FpRegState snapshots the floating-point register file.
func FpRegState(m *arch.Machine) *event.ArchFpRegState {
	return &event.ArchFpRegState{FPR: m.State.FPR}
}

// CSRState snapshots the machine-mode CSR group.
//
// mip is deliberately omitted (reported as zero): it reflects live device
// state that the reference model cannot reproduce; interrupt delivery is
// instead verified through Interrupt NDE synchronization, as in DiffTest.
func CSRState(m *arch.Machine) *event.CSRState {
	s := &m.State
	return &event.CSRState{
		Mstatus:  s.CSRVal(isa.CSRMstatus),
		Mcause:   s.CSRVal(isa.CSRMcause),
		Mepc:     s.CSRVal(isa.CSRMepc),
		Mtval:    s.CSRVal(isa.CSRMtval),
		Mtvec:    s.CSRVal(isa.CSRMtvec),
		Mie:      s.CSRVal(isa.CSRMie),
		Mip:      0,
		Mscratch: s.CSRVal(isa.CSRMscratch),
		Medeleg:  s.CSRVal(isa.CSRMedeleg),
		Mideleg:  s.CSRVal(isa.CSRMideleg),
		Satp:     s.CSRVal(isa.CSRSatp),
		Misa:     s.CSRVal(isa.CSRMisa),
		Mcycle:   s.CSRVal(isa.CSRMcycle),
		Minstret: s.CSRVal(isa.CSRMinstret),
		Mhartid:  s.CSRVal(isa.CSRMhartid),
		Priv:     s.Priv,
	}
}

// VecRegState snapshots the vector register file.
func VecRegState(m *arch.Machine) *event.ArchVecRegState {
	ev := &event.ArchVecRegState{VReg: m.State.VReg}
	ev.Ctx[0] = m.State.CSRVal(isa.CSRVl)
	ev.Ctx[1] = m.State.CSRVal(isa.CSRVtype)
	ev.Ctx[2] = m.State.CSRVal(isa.CSRVstart)
	return ev
}

// VecCSRState snapshots the vector CSRs.
func VecCSRState(m *arch.Machine) *event.VecCSRState {
	s := &m.State
	return &event.VecCSRState{
		Vstart: s.CSRVal(isa.CSRVstart),
		Vxsat:  s.CSRVal(isa.CSRVxsat),
		Vxrm:   s.CSRVal(isa.CSRVxrm),
		Vcsr:   s.CSRVal(isa.CSRVcsr),
		Vl:     s.CSRVal(isa.CSRVl),
		Vtype:  s.CSRVal(isa.CSRVtype),
		Vlenb:  s.CSRVal(isa.CSRVlenb),
	}
}

// FpCSRState snapshots fcsr.
func FpCSRState(m *arch.Machine) *event.FpCSRState {
	return &event.FpCSRState{Fcsr: m.State.CSRVal(isa.CSRFcsr)}
}

// HCSRState snapshots the hypervisor CSR group.
func HCSRState(m *arch.Machine) *event.HCSRState {
	s := &m.State
	return &event.HCSRState{
		Hstatus:  s.CSRVal(isa.CSRHstatus),
		Hedeleg:  s.CSRVal(isa.CSRHedeleg),
		Hideleg:  s.CSRVal(isa.CSRHideleg),
		Htval:    s.CSRVal(isa.CSRHtval),
		Htinst:   s.CSRVal(isa.CSRHtinst),
		Hgatp:    s.CSRVal(isa.CSRHgatp),
		Vsstatus: s.CSRVal(isa.CSRVsstatus),
		Vstvec:   s.CSRVal(isa.CSRVstvec),
		Vsepc:    s.CSRVal(isa.CSRVsepc),
		Vscause:  s.CSRVal(isa.CSRVscause),
	}
}

// DebugCSRState snapshots the debug CSR group. The models implement no debug
// mode, so the snapshot is all-zero unless a bug corrupts it.
func DebugCSRState(m *arch.Machine) *event.DebugCSRState {
	return &event.DebugCSRState{}
}

// TriggerCSRState snapshots the trigger CSR group (all-zero, as above).
func TriggerCSRState(m *arch.Machine) *event.TriggerCSRState {
	return &event.TriggerCSRState{}
}

// Build constructs the snapshot event of the given kind, or nil for
// non-snapshot kinds.
func Build(k event.Kind, m *arch.Machine) event.Event {
	switch k {
	case event.KindArchIntRegState:
		return IntRegState(m)
	case event.KindArchFpRegState:
		return FpRegState(m)
	case event.KindCSRState:
		return CSRState(m)
	case event.KindArchVecRegState:
		return VecRegState(m)
	case event.KindVecCSRState:
		return VecCSRState(m)
	case event.KindFpCSRState:
		return FpCSRState(m)
	case event.KindHCSRState:
		return HCSRState(m)
	case event.KindDebugCSRState:
		return DebugCSRState(m)
	case event.KindTriggerCSRState:
		return TriggerCSRState(m)
	default:
		// Not an architectural-state snapshot kind.
		return nil
	}
}

// SnapshotKinds lists the event kinds that Build can construct.
var SnapshotKinds = []event.Kind{
	event.KindArchIntRegState, event.KindArchFpRegState, event.KindCSRState,
	event.KindArchVecRegState, event.KindVecCSRState, event.KindFpCSRState,
	event.KindHCSRState, event.KindDebugCSRState, event.KindTriggerCSRState,
}
