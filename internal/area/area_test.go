package area

import (
	"strings"
	"testing"

	"repro/internal/dut"
)

// TestFigure15Bands checks the paper's resource-analysis claims: ~6% area
// overhead without Batch, rising to ~25% (max 26%) with Batch, across the
// XiangShan configurations.
func TestFigure15Bands(t *testing.T) {
	noBatch := DefaultConfig()
	noBatch.WithBatch = false
	for _, d := range dut.Configs()[1:] { // XiangShan configs only
		full := ForDUT(d, DefaultConfig())
		slim := ForDUT(d, noBatch)
		if p := full.OverheadPct(); p < 15 || p > 32 {
			t.Errorf("%s with Batch = %.1f%%, want ~25%%", d.Name, p)
		}
		if p := slim.OverheadPct(); p < 3 || p > 10 {
			t.Errorf("%s without Batch = %.1f%%, want ~6%%", d.Name, p)
		}
		if full.TotalM() <= slim.TotalM() {
			t.Errorf("%s: Batch did not add area", d.Name)
		}
	}
}

func TestUnitsRespondToConfig(t *testing.T) {
	d := dut.XiangShanDefault()
	base := ForDUT(d, DefaultConfig())
	noSquash := DefaultConfig()
	noSquash.WithSquash = false
	if got := ForDUT(d, noSquash); got.SquashM != 0 || got.TotalM() >= base.TotalM() {
		t.Error("disabling Squash did not shrink the estimate")
	}
	deep := DefaultConfig()
	deep.ReplayDepth *= 4
	if got := ForDUT(d, deep); got.ReplayM <= base.ReplayM {
		t.Error("deeper replay buffer did not grow the estimate")
	}
}

func TestMonitorScalesWithKinds(t *testing.T) {
	nut := ForDUT(dut.NutShell(), DefaultConfig())
	xs := ForDUT(dut.XiangShanDefault(), DefaultConfig())
	if nut.MonitorM >= xs.MonitorM {
		t.Error("6-kind NutShell monitor not smaller than 32-kind XiangShan")
	}
}

func TestStringRendering(t *testing.T) {
	s := ForDUT(dut.XiangShanDefault(), DefaultConfig()).String()
	if !strings.Contains(s, "overhead") || !strings.Contains(s, "monitor") {
		t.Errorf("rendering: %s", s)
	}
}
