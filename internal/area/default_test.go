package area

import (
	"testing"

	"repro/internal/dut"
	"repro/internal/event"
)

// TestInterfaceBitsScalarKinds pins the default arm added for kindswitch
// exhaustiveness: state-snapshot and trap kinds get one monitor instance per
// cycle regardless of the commit burst width, while bursty kinds scale.
func TestInterfaceBitsScalarKinds(t *testing.T) {
	base := dut.XiangShanDefault()
	base.Cores = 1
	base.BurstMax = 6

	scalar := base
	scalar.EventKinds = []event.Kind{event.KindCSRState}
	if got, want := interfaceBits(scalar), float64(event.SizeOf(event.KindCSRState)*8); got != want {
		t.Errorf("interfaceBits(CSRState, burst=6) = %v bits, want %v (one instance)", got, want)
	}

	bursty := base
	bursty.EventKinds = []event.Kind{event.KindLoad}
	if got, want := interfaceBits(bursty), float64(event.SizeOf(event.KindLoad)*8*6); got != want {
		t.Errorf("interfaceBits(Load, burst=6) = %v bits, want %v (burst instances)", got, want)
	}
}
