// Package area estimates the gate-count cost of the DiffTest-H hardware
// units (monitor, Squash, Replay buffer, Batch packer, communication unit),
// reproducing the resource analysis of paper §6.4 / Figure 15: roughly 6%
// overhead over the DUT without Batch, rising to ~25% with Batch's unified
// packing interface.
//
// The model is analytical: unit areas scale with the monitored event widths,
// the fusion state, the replay buffer depth, and the packet-assembly
// crossbar, with gate-per-bit constants calibrated to the paper's reported
// overheads on XiangShan (Default).
package area

import (
	"fmt"
	"math"

	"repro/internal/dut"
	"repro/internal/event"
)

// Gate-per-bit calibration constants.
const (
	gatesPerMonitorBit = 4.0 // probe flops + valid/ready wiring
	gatesPerSquashBit  = 8.0 // fusion accumulators + differencing XOR trees
	gatesPerBufferBit  = 1.2 // replay ring (SRAM-dominated)
	gatesPerMuxStage   = 2.7 // packing barrel-shifter per bit and stage
	batchLaneFactor    = 7.0 // parallel packing lanes over the interface
	gatesPerCommBit    = 2.0 // send/receive queues
)

// Config sizes the verification hardware.
type Config struct {
	WithBatch    bool
	WithSquash   bool
	WithReplay   bool
	PacketBytes  int // Batch packet size
	ReplayDepth  int // replay ring entries
	CommQueue    int // communication queue entries
	AvgRecordLen int // mean buffered record size (bytes)
}

// DefaultConfig returns the deployment configuration used in the paper's
// resource analysis.
func DefaultConfig() Config {
	return Config{
		WithBatch: true, WithSquash: true, WithReplay: true,
		PacketBytes: 4096, ReplayDepth: 2048, CommQueue: 16, AvgRecordLen: 96,
	}
}

// Estimate breaks down verification-hardware area in millions of gates.
type Estimate struct {
	DUTGatesM float64

	MonitorM float64
	SquashM  float64
	ReplayM  float64
	BatchM   float64
	CommM    float64
}

// TotalM returns the verification hardware total in millions of gates.
func (e Estimate) TotalM() float64 {
	return e.MonitorM + e.SquashM + e.ReplayM + e.BatchM + e.CommM
}

// OverheadPct returns verification area as a percentage of the DUT.
func (e Estimate) OverheadPct() float64 {
	if e.DUTGatesM == 0 {
		return 0
	}
	return e.TotalM() / e.DUTGatesM * 100
}

// String renders a Figure-15-style row.
func (e Estimate) String() string {
	return fmt.Sprintf("DUT %.1fM + verif %.2fM (monitor %.2f, squash %.2f, replay %.2f, batch %.2f, comm %.2f) = %.1f%% overhead",
		e.DUTGatesM, e.TotalM(), e.MonitorM, e.SquashM, e.ReplayM, e.BatchM, e.CommM, e.OverheadPct())
}

// interfaceBits returns the per-cycle monitor interface width in bits for a
// DUT: every monitored kind with its worst-case instance count per cycle.
func interfaceBits(d dut.Config) float64 {
	kinds := d.EventKinds
	if len(kinds) == 0 {
		for k := event.Kind(0); k < event.NumKinds; k++ {
			kinds = append(kinds, k)
		}
	}
	burst := d.BurstMax
	if burst < 1 {
		burst = 1
	}
	bits := 0.0
	for _, k := range kinds {
		inst := 1
		switch k {
		case event.KindInstrCommit, event.KindLoad, event.KindStore,
			event.KindAtomic, event.KindVecMem, event.KindHLoad,
			event.KindLrSc, event.KindRefill, event.KindCMO,
			event.KindL1TLB, event.KindL2TLB, event.KindSbuffer,
			event.KindVecCommit, event.KindVecWriteback,
			event.KindVstartUpdate, event.KindRedirect:
			inst = burst
		default:
			// State snapshots and traps: at most one instance per cycle.
		}
		bits += float64(event.SizeOf(k)*8) * float64(inst)
	}
	return bits * float64(maxInt(1, d.Cores))
}

// stateBits returns the architectural-state width fused by Squash.
func stateBits(d dut.Config) float64 {
	enabled := d.EnabledKinds()
	bits := 0.0
	for k := event.Kind(0); k < event.NumKinds; k++ {
		if enabled[k] && event.CategoryOf(k) == event.CatRegisterUpdate {
			bits += float64(event.SizeOf(k) * 8)
		}
	}
	return bits * float64(maxInt(1, d.Cores))
}

// Estimate sizes the verification hardware for a DUT.
func ForDUT(d dut.Config, cfg Config) Estimate {
	e := Estimate{DUTGatesM: d.GatesM}
	ifBits := interfaceBits(d)

	e.MonitorM = ifBits * gatesPerMonitorBit / 1e6

	if cfg.WithSquash {
		e.SquashM = stateBits(d) * gatesPerSquashBit / 1e6
	}
	if cfg.WithReplay {
		bufBits := float64(cfg.ReplayDepth*cfg.AvgRecordLen*8) * float64(maxInt(1, d.Cores))
		e.ReplayM = bufBits * gatesPerBufferBit / 1e6
	}
	if cfg.WithBatch {
		// Tight packing needs a barrel-shifter crossbar sized by the
		// monitor interface width and the packet depth, plus
		// double-buffered packet staging — the cost of the unified
		// hardware-software interface (paper §6.4: enabling Batch raises
		// overhead to ~25%).
		pktBits := float64(cfg.PacketBytes * 8)
		stages := math.Log2(pktBits)
		e.BatchM = (ifBits*stages*gatesPerMuxStage*batchLaneFactor + 2*pktBits*gatesPerBufferBit) / 1e6
	}
	queueBits := float64(cfg.CommQueue * cfg.PacketBytes * 8)
	e.CommM = queueBits * gatesPerCommBit / 1e6

	return e
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
