// Package replay implements the Replay mechanism (paper §4.4): preserving
// instruction-level debuggability under fusion by reprocessing the original,
// unfused verification events around the failure point.
//
// The hardware side buffers every monitor record with a monotonically
// increasing token before fusion. When the software checker detects a
// mismatch on a fused event, the controller:
//
//  1. reverts the reference model to the checkpoint taken at the failing
//     window's start (compensation-log rollback, not a full snapshot);
//  2. uses the window's start token to request retransmission of exactly
//     the buffered records in range;
//  3. reprocesses them through the per-event checking path, pinpointing the
//     first mismatching instruction and producing a detailed report.
package replay

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/ref"
)

// Buffer is the hardware-side ring of original records awaiting potential
// replay. Tokens identify records globally; old records are evicted as the
// ring fills (they are only needed until their window checks clean).
// The buffer is internally synchronized: in the executed pipeline the
// hardware producer goroutine appends (Add) while the software consumer
// reads ranges for replay (Range), mirroring the hardware's dual-ported
// buffer RAM.
type Buffer struct {
	Cap int

	mu    sync.Mutex
	recs  []event.Record
	first uint64 // token of recs[0]
	next  uint64 // token of the next record to be added

	// Bytes counts buffered payload for resource accounting. Guarded by
	// mu; concurrent readers should use BufferedBytes.
	Bytes uint64
}

// NewBuffer returns a ring buffer holding up to cap records.
func NewBuffer(cap int) *Buffer {
	if cap <= 0 {
		cap = 1 << 16
	}
	return &Buffer{Cap: cap}
}

// Add buffers one cycle's records and returns the token of the first.
func (b *Buffer) Add(recs []event.Record) (startToken uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	startToken = b.next
	for _, r := range recs {
		b.recs = append(b.recs, r)
		b.next++
		b.Bytes += uint64(event.SizeOf(r.Ev.Kind()))
	}
	// Evict in quarter-capacity chunks so the amortized cost per record
	// stays O(1).
	if over := len(b.recs) - b.Cap; over >= b.Cap/4 {
		for _, r := range b.recs[:over] {
			b.Bytes -= uint64(event.SizeOf(r.Ev.Kind()))
		}
		b.recs = append(b.recs[:0], b.recs[over:]...)
		b.first += uint64(over)
	}
	return startToken
}

// Len reports the number of buffered records.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recs)
}

// NextToken returns the token the next added record will get.
func (b *Buffer) NextToken() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// BufferedBytes returns the buffered payload volume.
func (b *Buffer) BufferedBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.Bytes
}

// Range retransmits the buffered records for one core with tokens in
// [from, b.next). It reports an error if the range was evicted.
func (b *Buffer) Range(core uint8, from uint64) ([]event.Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < b.first {
		return nil, fmt.Errorf("replay: token %d evicted (buffer starts at %d)", from, b.first)
	}
	var out []event.Record
	for i := int(from - b.first); i < len(b.recs); i++ {
		if b.recs[i].Core == core {
			out = append(out, b.recs[i])
		}
	}
	return out, nil
}

// Report is the instruction-level debugging report Replay produces.
type Report struct {
	// Original is the fused-level mismatch that triggered replay.
	Original *checker.Mismatch
	// Detailed is the per-instruction mismatch found by reprocessing the
	// unfused events, or nil if the divergence did not reproduce (e.g. a
	// digest hash collision).
	Detailed *checker.Mismatch
	// Replayed counts retransmitted records; ReplayedBytes their payload.
	Replayed      int
	ReplayedBytes int
	// CheckpointSeq is the instruction count the REF was reverted to.
	CheckpointSeq uint64
	// Context holds the last records processed before the failure.
	Context []event.Record
}

// String renders the report as the co-simulation's final bug analysis.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Replay report ===\n")
	fmt.Fprintf(&sb, "fused-level detection : %v\n", r.Original)
	if r.Detailed != nil {
		fmt.Fprintf(&sb, "instruction-level root: %v\n", r.Detailed)
	} else {
		fmt.Fprintf(&sb, "instruction-level root: not reproduced\n")
	}
	fmt.Fprintf(&sb, "reverted REF to instruction %d; replayed %d events (%d bytes)\n",
		r.CheckpointSeq, r.Replayed, r.ReplayedBytes)
	if len(r.Context) > 0 {
		fmt.Fprintf(&sb, "context (last %d events before failure):\n", len(r.Context))
		for _, rec := range r.Context {
			fmt.Fprintf(&sb, "  %v\n", rec)
		}
	}
	return sb.String()
}

// Controller drives replay for one core: it owns the checkpoint mark taken
// at each fusion-window boundary.
type Controller struct {
	CC  *checker.CoreChecker
	Buf *Buffer

	mark      ref.Mark
	markToken uint64
	haveMark  bool
}

// NewController wires a core checker to the hardware buffer.
func NewController(cc *checker.CoreChecker, buf *Buffer) *Controller {
	return &Controller{CC: cc, Buf: buf}
}

// Checkpoint records the reference model's state at a fusion-window start
// (called by the co-simulation before each fused window is processed).
// startToken is the window's first buffered token.
func (c *Controller) Checkpoint(startToken uint64) {
	c.mark = c.CC.Ref.Checkpoint()
	// Everything before this mark checked clean; its compensation entries
	// are no longer needed (bounded-memory revert, paper §4.4).
	c.CC.Ref.TrimBefore(c.mark)
	c.markToken = startToken
	c.haveMark = true
}

// Run reverts the reference model and reprocesses the original unfused
// records, producing the instruction-level report.
func (c *Controller) Run(original *checker.Mismatch) *Report {
	rep := &Report{Original: original, CheckpointSeq: c.mark.InstrRet()}
	if !c.haveMark {
		rep.Detailed = original
		return rep
	}
	c.CC.Ref.Revert(c.mark)

	recs, err := c.Buf.Range(original.Core, c.markToken)
	if err != nil {
		rep.Detailed = &checker.Mismatch{
			Core: original.Core, Detail: "replay buffer overrun: " + err.Error(),
		}
		return rep
	}

	const contextLen = 8
	for _, rec := range recs {
		rep.Replayed++
		rep.ReplayedBytes += event.SizeOf(rec.Ev.Kind())
		if len(rep.Context) == contextLen {
			copy(rep.Context, rep.Context[1:])
			rep.Context = rep.Context[:contextLen-1]
		}
		rep.Context = append(rep.Context, rec)
		if m := c.CC.Process(rec); m != nil {
			rep.Detailed = m
			return rep
		}
	}
	return rep
}
