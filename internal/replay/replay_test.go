package replay

import (
	"testing"

	"repro/internal/event"
)

func rec(core uint8, seq uint64) event.Record {
	return event.Record{Seq: seq, Core: core, Ev: &event.InstrCommit{PC: seq * 4}}
}

func TestBufferTokensAndRange(t *testing.T) {
	b := NewBuffer(100)
	tok0 := b.Add([]event.Record{rec(0, 1), rec(1, 1), rec(0, 2)})
	if tok0 != 0 || b.NextToken() != 3 {
		t.Fatalf("tokens: start=%d next=%d", tok0, b.NextToken())
	}
	tok1 := b.Add([]event.Record{rec(0, 3)})
	if tok1 != 3 {
		t.Fatalf("second start token = %d", tok1)
	}
	got, err := b.Range(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Errorf("range = %v", got)
	}
}

func TestBufferEviction(t *testing.T) {
	b := NewBuffer(64)
	for i := 0; i < 100; i++ {
		b.Add([]event.Record{rec(0, uint64(i))})
	}
	if b.Len() > 64+16 {
		t.Errorf("buffer over capacity: %d", b.Len())
	}
	if _, err := b.Range(0, 0); err == nil {
		t.Error("evicted token still readable")
	}
	if _, err := b.Range(0, b.NextToken()-1); err != nil {
		t.Errorf("recent token unreadable: %v", err)
	}
}

func TestBufferBytesAccounting(t *testing.T) {
	b := NewBuffer(1000)
	b.Add([]event.Record{rec(0, 1)})
	want := uint64(event.SizeOf(event.KindInstrCommit))
	if b.Bytes != want {
		t.Errorf("bytes = %d, want %d", b.Bytes, want)
	}
}
