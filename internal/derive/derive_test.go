package derive

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
)

func machineWith(prog []isa.Inst) *arch.Machine {
	ram := mem.New()
	addr := mem.RAMBase
	for _, in := range prog {
		ram.Write(addr, 4, uint64(isa.MustEncode(in)))
		addr += 4
	}
	return arch.NewMachine(ram)
}

func kinds(evs []event.Event) []event.Kind {
	out := make([]event.Kind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind()
	}
	return out
}

func TestLoadDerivation(t *testing.T) {
	m := machineWith([]isa.Inst{{Op: isa.OpLD, Rd: 1, Rs1: 2, Imm: 0}})
	m.State.GPR[2] = mem.RAMBase + 0x100
	m.Mem.Write(mem.RAMBase+0x100, 8, 0xABCD)
	ex := m.Step()
	evs := Events(m, &ex, 0)
	if len(evs) != 1 {
		t.Fatalf("events = %v", kinds(evs))
	}
	ld, ok := evs[0].(*event.Load)
	if !ok || ld.Data != 0xABCD || ld.MMIO != 0 {
		t.Fatalf("load event = %+v", evs[0])
	}
}

func TestAtomicAndLrScDerivation(t *testing.T) {
	m := machineWith([]isa.Inst{
		{Op: isa.OpLRD, Rd: 1, Rs1: 2},
		{Op: isa.OpSCD, Rd: 3, Rs1: 2, Rs2: 4},
		{Op: isa.OpAMOADDD, Rd: 5, Rs1: 2, Rs2: 4},
	})
	m.State.GPR[2] = mem.RAMBase + 0x200
	ex := m.Step()
	got := kinds(Events(m, &ex, 0))
	if len(got) != 2 || got[0] != event.KindLoad || got[1] != event.KindLrSc {
		t.Errorf("lr.d derives %v", got)
	}
	ex = m.Step()
	got = kinds(Events(m, &ex, 0))
	if len(got) != 2 || got[0] != event.KindStore || got[1] != event.KindLrSc {
		t.Errorf("sc.d derives %v", got)
	}
	ex = m.Step()
	got = kinds(Events(m, &ex, 0))
	if len(got) != 1 || got[0] != event.KindAtomic {
		t.Errorf("amo derives %v", got)
	}
}

func TestExceptionDerivation(t *testing.T) {
	m := machineWith([]isa.Inst{{Op: isa.OpECALL}})
	ex := m.Step()
	got := kinds(Events(m, &ex, 0))
	if len(got) != 1 || got[0] != event.KindException {
		t.Errorf("ecall derives %v", got)
	}

	m = machineWith([]isa.Inst{{Op: isa.OpHLVD, Rd: 1, Rs1: 2}})
	ex = m.Step() // hgatp=0 → guest fault
	got = kinds(Events(m, &ex, 0))
	want := []event.Kind{event.KindException, event.KindGuestPageFault, event.KindHTrap}
	if len(got) != len(want) {
		t.Fatalf("guest fault derives %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("guest fault event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVectorDerivationWithVstart(t *testing.T) {
	m := machineWith([]isa.Inst{
		{Op: isa.OpVSETVLI, Rd: 1, Rs1: 0, Imm: 0xC1},
		{Op: isa.OpVADDVV, Rd: 1, Rs1: 2, Rs2: 3},
	})
	m.Step()
	m.State.SetCSR(isa.CSRVstart, 2)
	vb := m.State.CSRVal(isa.CSRVstart)
	ex := m.Step()
	got := kinds(Events(m, &ex, vb))
	want := []event.Kind{event.KindVecCommit, event.KindVecWriteback, event.KindVstartUpdate}
	if len(got) != len(want) {
		t.Fatalf("vadd derives %v", got)
	}
}

func TestDigestOrderInsensitive(t *testing.T) {
	a := &event.Load{PAddr: 1, Data: 2}
	b := &event.Store{Addr: 3, Data: 4}
	var d1, d2 Digest
	d1.Add(a)
	d1.Add(b)
	d2.Add(b)
	d2.Add(a)
	if !d1.Equal(d2) {
		t.Error("digest is order-sensitive")
	}
	var d3 Digest
	d3.Add(a)
	if d1.Equal(d3) {
		t.Error("digest ignores content")
	}
	var d4 Digest
	d4.Add(a)
	d4.Add(&event.Store{Addr: 3, Data: 5})
	if d1.Equal(d4) {
		t.Error("digest ignores field changes")
	}
}
