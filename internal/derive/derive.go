// Package derive builds the deterministic, reference-derivable verification
// events for one executed instruction. The DUT monitor uses it to emit
// events, and the software checker uses it to recompute the same events from
// the reference model's execution — which is what allows Squash to fuse
// these events into a digest without losing verification coverage: the
// checker reproduces the digest independently and compares (paper §4.3).
//
// Events with DUT-specific timing (cache refills, TLB fills, store-buffer
// drains, redirects) are not derivable and are transmitted with order tags
// instead.
package derive

import (
	"repro/internal/arch"
	"repro/internal/event"
	"repro/internal/isa"
)

// Events returns the derivable events for an executed instruction, in
// canonical checking order. vstartBefore is the vstart CSR value before the
// instruction executed.
func Events(m *arch.Machine, ex *arch.Exec, vstartBefore uint64) []event.Event {
	var out []event.Event

	if ex.Exception {
		out = append(out, &event.Exception{PC: ex.PC, Cause: ex.Cause, Tval: ex.Tval, Instr: ex.Instr})
		if ex.Cause == isa.ExcGuestLoadPageFault || ex.Cause == isa.ExcGuestStorePageFault {
			out = append(out,
				&event.GuestPageFault{GVA: ex.Tval, GPA: ex.Tval, Cause: ex.Cause, Instr: ex.Instr},
				&event.HTrap{
					PC: ex.PC, Cause: ex.Cause,
					Htval:   m.State.CSRVal(isa.CSRHtval),
					Htinst:  m.State.CSRVal(isa.CSRHtinst),
					Hstatus: m.State.CSRVal(isa.CSRHstatus),
				})
		}
	}

	if ex.Mem {
		mmio := uint8(0)
		if ex.MMIO {
			mmio = 1
		}
		cl := isa.ClassOf(ex.Inst.Op)
		switch {
		case ex.Atomic:
			out = append(out, &event.Atomic{
				Addr: ex.MemAddr, Data: ex.MemData, Result: ex.Wdata,
				Mask: ^uint64(0), FuOp: uint8(ex.Inst.Op), Old: ex.AtomicOld,
			})
		case cl == isa.ClassVecLoad || cl == isa.ClassVecStore:
			out = append(out, &event.VecMem{Addr: ex.MemAddr, Mask: ^uint64(0), Data: ex.VData, Stride: 8})
		case cl == isa.ClassHypLoad:
			out = append(out, &event.HLoad{VAddr: ex.MemAddr, GPAddr: ex.MemAddr, Data: ex.MemData, Size: uint8(ex.MemSize)})
		case ex.IsLoad:
			out = append(out, &event.Load{
				PAddr: ex.MemAddr, VAddr: ex.MemAddr, Data: ex.MemData,
				Mask: sizeMask(ex.MemSize), OpType: uint8(ex.Inst.Op),
				FuType: uint8(cl), MMIO: mmio,
			})
		default:
			out = append(out, &event.Store{
				Addr: ex.MemAddr, VAddr: ex.MemAddr, Data: ex.MemData,
				Mask: uint8(ex.MemSize), MMIO: mmio,
			})
		}
		if ex.LrSc {
			succ := uint8(0)
			if ex.ScSuccess {
				succ = 1
			}
			out = append(out, &event.LrSc{Valid: 1, Success: succ})
		}
	}

	if ex.Vec {
		out = append(out, &event.VecCommit{PC: ex.PC, Instr: ex.Instr, VdIdx: ex.Wdest, Vl: ex.Vl})
		if ex.WroteVec {
			out = append(out, &event.VecWriteback{VdIdx: ex.Wdest, Data: ex.VData})
		}
		if after := m.State.CSRVal(isa.CSRVstart); after != vstartBefore {
			out = append(out, &event.VstartUpdate{Old: vstartBefore, New: after})
		}
		if ex.Exception {
			out = append(out, &event.VecExceptionTrack{PC: ex.PC, Vstart: m.State.CSRVal(isa.CSRVstart), Cause: ex.Cause, Elem: 0})
		}
	}

	return out
}

func sizeMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*size) - 1
}

// Digest is an order-insensitive multiset digest over events: FNV-1a per
// event combined by XOR. Squash transmits one digest per fusion window; the
// checker recomputes it from derived events.
type Digest struct {
	Count uint32
	Sum   uint64
}

// Add folds one event into the digest.
func (d *Digest) Add(ev event.Event) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(ev.Kind())) * prime64
	buf := ev.AppendTo(event.GetBuf(ev.EncodedSize()))
	for _, b := range buf {
		h = (h ^ uint64(b)) * prime64
	}
	event.PutBuf(buf)
	d.Sum ^= h
	d.Count++
}

// Equal reports whether two digests match.
func (d Digest) Equal(o Digest) bool { return d.Count == o.Count && d.Sum == o.Sum }
