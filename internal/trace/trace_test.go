package trace_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]event.Record{
		{{Seq: 1, Core: 0, Ev: &event.InstrCommit{PC: 0x80000000, Wdata: 7}}},
		{
			{Seq: 2, Core: 1, Ev: &event.Load{PAddr: 0x1000, Data: 42}},
			{Seq: 2, Core: 1, Ev: &event.ArchIntRegState{GPR: [32]uint64{5: 99}}},
		},
	}
	for i, recs := range want {
		if err := w.WriteCycle(uint64(i+10), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantRecs := range want {
		cycle, recs, err := r.ReadCycle()
		if err != nil {
			t.Fatal(err)
		}
		if cycle != uint64(i+10) || len(recs) != len(wantRecs) {
			t.Fatalf("cycle %d: got cycle=%d n=%d", i, cycle, len(recs))
		}
		for j := range recs {
			if recs[j].Seq != wantRecs[j].Seq || recs[j].Core != wantRecs[j].Core ||
				!event.Equal(recs[j].Ev, wantRecs[j].Ev) {
				t.Fatalf("cycle %d record %d mismatch", i, j)
			}
		}
	}
	if _, _, err := r.ReadCycle(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, err := trace.NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := trace.NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

// TestTraceDrivesChecker is the iterative-debugging workflow (paper §5):
// dump a DUT run once, then re-drive the verification logic from the trace
// without the DUT.
func TestTraceDrivesChecker(t *testing.T) {
	prof := workload.Microbench()
	prof.TargetInstrs = 8_000
	prog := workload.Generate(prof, 1, 31)
	d := dut.New(dut.XiangShanDefault(), prog.Image, prog.Entries, arch.Hooks{})

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		recs, done := d.StepCycle()
		if err := w.WriteCycle(d.CycleCount, recs); err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay the trace into a fresh checker: no DUT needed.
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	chk := checker.New(prog.Image, prog.Entries, 1)
	for {
		_, recs, err := r.ReadCycle()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if m := chk.Process(rec); m != nil {
				t.Fatalf("trace-driven checking mismatched: %v", m)
			}
		}
	}
	if fin, code := chk.Finished(); !fin || code != 0 {
		t.Errorf("trace replay did not finish cleanly: %v %d", fin, code)
	}
	var monitored uint64
	for _, n := range d.EventCount {
		monitored += n
	}
	if r.Events != monitored {
		t.Errorf("trace carried %d events, monitor emitted %d", r.Events, monitored)
	}
}
