// Package trace implements DUT-trace dumping and reloading — the tuning
// toolkit's iterative-debugging support (paper §5): the verification events
// captured from a DUT run are dumped once, and the verification logic
// (Squash, Batch, checker) can then be re-driven from the trace without
// recompiling or re-running the DUT.
//
// The format is a simple framed binary stream:
//
//	header : magic "DTHT" | version u16 | reserved u16
//	frame  : cycle u64 | count u32 | records
//	record : kind u8 | core u8 | reserved u16 | seq u64 | payload (fixed size)
//	trailer: cycle = MaxUint64, count = 0
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/event"
)

var magic = [4]byte{'D', 'T', 'H', 'T'}

const version = 1

// Writer dumps per-cycle record batches.
type Writer struct {
	w       *bufio.Writer
	wrote   bool
	scratch []byte // reused payload encoding buffer
	Cycles  uint64
	Events  uint64
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteCycle appends one cycle's records.
func (t *Writer) WriteCycle(cycle uint64, recs []event.Record) error {
	if len(recs) == 0 {
		return nil
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], cycle)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(recs)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	for _, rec := range recs {
		var rh [12]byte
		rh[0] = uint8(rec.Ev.Kind())
		rh[1] = rec.Core
		binary.LittleEndian.PutUint64(rh[4:], rec.Seq)
		if _, err := t.w.Write(rh[:]); err != nil {
			return err
		}
		t.scratch = rec.Ev.AppendTo(t.scratch[:0])
		if _, err := t.w.Write(t.scratch); err != nil {
			return err
		}
		t.Events++
	}
	t.Cycles++
	t.wrote = true
	return nil
}

// Close writes the trailer and flushes.
func (t *Writer) Close() error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], math.MaxUint64)
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader replays a dumped trace cycle by cycle.
type Reader struct {
	r      *bufio.Reader
	done   bool
	Cycles uint64
	Events uint64
}

// NewReader opens a trace stream, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// ReadCycle returns the next cycle's records. io.EOF signals a clean end.
func (t *Reader) ReadCycle() (cycle uint64, recs []event.Record, err error) {
	if t.done {
		return 0, nil, io.EOF
	}
	var hdr [12]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("trace: truncated frame: %w", err)
	}
	cycle = binary.LittleEndian.Uint64(hdr[0:])
	if cycle == math.MaxUint64 {
		t.done = true
		return 0, nil, io.EOF
	}
	count := binary.LittleEndian.Uint32(hdr[8:])
	recs = make([]event.Record, 0, count)
	for i := uint32(0); i < count; i++ {
		var rh [12]byte
		if _, err := io.ReadFull(t.r, rh[:]); err != nil {
			return 0, nil, fmt.Errorf("trace: truncated record header: %w", err)
		}
		k := event.Kind(rh[0])
		if k >= event.NumKinds {
			return 0, nil, fmt.Errorf("trace: bad kind %d", rh[0])
		}
		buf := event.GetBuf(event.SizeOf(k))[:event.SizeOf(k)]
		if _, err := io.ReadFull(t.r, buf); err != nil {
			event.PutBuf(buf)
			return 0, nil, fmt.Errorf("trace: truncated payload: %w", err)
		}
		ev, err := event.Decode(k, buf) // copies buf into the fresh event
		event.PutBuf(buf)
		if err != nil {
			return 0, nil, err
		}
		recs = append(recs, event.Record{
			Seq: binary.LittleEndian.Uint64(rh[4:]), Core: rh[1], Ev: ev,
		})
		t.Events++
	}
	t.Cycles++
	return cycle, recs, nil
}
