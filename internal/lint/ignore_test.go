package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestIgnoreJustified: well-formed directives suppress exactly their line
// and nothing else.
func TestIgnoreJustified(t *testing.T) {
	linttest.Run(t, "testdata/ignore", lint.KindSwitch)
}

// TestIgnoreRejections: directives with no reason, an unknown analyzer, or
// nothing to suppress are findings themselves, and a rejected directive
// does not silence the underlying diagnostic. (These findings land on the
// directive's own comment line, where a `// want` comment cannot sit, so
// they are asserted programmatically.)
func TestIgnoreRejections(t *testing.T) {
	dir, err := filepath.Abs("testdata/ignorebad")
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(moduleRoot(t))
	pkg, err := loader.LoadDir(dir, "testdata/ignorebad")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.KindSwitch})
	if err != nil {
		t.Fatal(err)
	}

	wantSubstrings := map[string]string{
		"no reason":        "gives no reason",
		"unknown analyzer": `unknown analyzer "kindswich"`,
		"unused directive": "suppresses nothing",
	}
	for label, sub := range wantSubstrings {
		if countMatching(findings, lint.DriverName, sub) != 1 {
			t.Errorf("%s: want exactly one %q driver finding, got:\n%s",
				label, sub, dump(findings))
		}
	}
	// The rejected directives must not have suppressed the two partial
	// switches beneath them; the defaulted switch stays clean.
	if n := countMatching(findings, "kindswitch", "covers 1 of 32 kinds"); n != 2 {
		t.Errorf("want 2 surviving kindswitch findings, got %d:\n%s", n, dump(findings))
	}
	if len(findings) != 5 {
		t.Errorf("want 5 findings total, got %d:\n%s", len(findings), dump(findings))
	}
}

func countMatching(findings []lint.Finding, analyzer, sub string) int {
	n := 0
	for _, f := range findings {
		if f.Analyzer == analyzer && strings.Contains(f.Message, sub) {
			n++
		}
	}
	return n
}

func dump(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}
