package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Vettool-compatible plumbing: `go vet -vettool=$(which difftestlint)` drives
// the tool once per package with the unitchecker protocol —
//
//	difftestlint -V=full          → print a tool-version fingerprint
//	difftestlint -flags           → print the supported analyzer flags (JSON)
//	difftestlint <file>.cfg       → analyze one package described by the
//	                                JSON config, typechecking against the
//	                                compiler's export data, and print
//	                                findings
//
// This lets difftestlint reuse the go command's per-package action graph and
// caching instead of its own `go list` loader. The cfg schema mirrors
// x/tools' unitchecker.Config (the schema the go command emits).

// unitConfig is the subset of the go command's vet config this tool reads.
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool implements the protocol above for the given command-line args
// (os.Args[1:]). It returns true when it recognized and fully handled the
// invocation (the caller should exit with the returned code), false when the
// args are not a vettool handshake and the normal CLI should proceed.
func RunVetTool(progName string, args []string, stdout, stderr io.Writer) (handled bool, code int) {
	if len(args) == 1 && args[0] == "-V=full" {
		// The go command fingerprints the tool for its build cache with a
		// "name version ..." line.
		fmt.Fprintf(stdout, "%s version v1.0.0-difftestlint\n", filepath.Base(progName))
		return true, 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer-specific flags; an empty JSON list tells go vet so.
		fmt.Fprintln(stdout, "[]")
		return true, 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := runUnit(args[0], stdout)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", filepath.Base(progName), err)
			return true, 1
		}
		return true, code
	}
	return false, 0
}

func runUnit(cfgFile string, stdout io.Writer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// The go command caches the facts file; ours is always empty (the
	// analyzers are purely local) but must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependencies are analyzed only for facts; we have none.
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	// Typecheck against the compiler's export data, exactly as vet does.
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer:    &unitImporter{gc: gc, importMap: cfg.ImportMap},
		FakeImportC: true,
	}
	info := newInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Standard:   cfg.Standard[cfg.ImportPath],
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	findings, err := Run([]*Package{pkg}, All())
	if err != nil {
		return 0, err
	}
	// vet surfaces the tool's stdout/stderr verbatim on failure; the plain
	// file:line:col form keeps it consistent with the standalone CLI.
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		return 2, nil
	}
	return 0, nil
}

// unitImporter maps source import paths through the vet config's vendor map
// before consulting gc export data.
type unitImporter struct {
	gc        types.Importer
	importMap map[string]string
}

func (im *unitImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.gc.Import(path)
}
