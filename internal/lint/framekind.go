package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// FrameKind lifts kindswitch's exhaustiveness idea to the DTH1 protocol
// layer: every switch that dispatches on a transport frame type must
// explicitly name every Frame* kind the protocol declares. Unlike
// kindswitch, a default clause does not satisfy the rule — at a protocol
// dispatch site the default arm is the corruption/violation path, and
// letting a newly added control frame land there silently is exactly the bug
// class this exists to stop: the frame is checksummed, sequenced, delivered…
// and then dropped or misread by a dispatch site nobody updated.
//
// The frame-kind registry is derived from the transport package itself:
// every exported package-level uint8 constant named Frame<Kind>. A switch is
// a dispatch site when its tag is a uint8 and at least one case names a
// registry constant. Sites that deliberately reject a subset list the
// rejected kinds in a case arm that falls through to (or shares) the error
// path — the point is that `make lint` fails until every site has made a
// decision about the new kind.
var FrameKind = &Analyzer{
	Name: "framekind",
	Doc:  "every switch dispatching on a transport frame type must explicitly handle every declared Frame* kind; default only catches corruption",
	Run:  runFrameKind,
}

// transportPackage returns the project's transport package as seen from
// pass, or nil when not referenced.
func transportPackage(pass *Pass) *types.Package {
	if isTransportPath(pass.Pkg.Path()) {
		return pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if isTransportPath(imp.Path()) {
			return imp
		}
	}
	return nil
}

func isTransportPath(path string) bool {
	return path == "repro/internal/transport" || strings.HasSuffix(path, "/internal/transport")
}

func runFrameKind(pass *Pass) error {
	tp := transportPackage(pass)
	if tp == nil {
		return nil
	}
	kinds := frameKinds(tp)
	if len(kinds) == 0 {
		return nil
	}
	kindConsts := make(map[types.Object]bool, len(kinds))
	for _, c := range kinds {
		kindConsts[c] = true
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok || !isUint8(tv.Type) {
				return true
			}
			if !mentionsFrameKind(pass, sw, kindConsts) {
				return true
			}
			checkFrameSwitch(pass, sw, kinds)
			return true
		})
	}
	return nil
}

// frameKinds collects the frame-kind registry: exported uint8 constants
// named Frame<Kind> in the transport package, sorted by value.
func frameKinds(tp *types.Package) []*types.Const {
	scope := tp.Scope()
	var kinds []*types.Const
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Frame") || name == "Frame" {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isUint8(c.Type()) {
			continue
		}
		kinds = append(kinds, c)
	}
	sort.Slice(kinds, func(i, j int) bool {
		vi, _ := constant.Int64Val(constant.ToInt(kinds[i].Val()))
		vj, _ := constant.Int64Val(constant.ToInt(kinds[j].Val()))
		return vi < vj
	})
	return kinds
}

// isUint8 reports whether t's underlying type is uint8.
func isUint8(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// mentionsFrameKind reports whether any case expression resolves to a
// registry constant — the signal that this uint8 switch dispatches frames.
func mentionsFrameKind(pass *Pass, sw *ast.SwitchStmt, kindConsts map[types.Object]bool) bool {
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj := exprObj(pass.Info, e); obj != nil && kindConsts[obj] {
				return true
			}
		}
	}
	return false
}

// exprObj resolves an identifier or selector expression to its object.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

func checkFrameSwitch(pass *Pass, sw *ast.SwitchStmt, kinds []*types.Const) {
	covered := make(map[int64]bool)
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok || cc.List == nil {
			continue // default arm: corruption path, no coverage credit
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				covered[v] = true
			}
		}
	}

	var missing []string
	for _, c := range kinds {
		v, _ := constant.Int64Val(constant.ToInt(c.Val()))
		if !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	shown := missing
	const maxShown = 5
	suffix := ""
	if len(shown) > maxShown {
		suffix = fmt.Sprintf(", … %d more", len(shown)-maxShown)
		shown = shown[:maxShown]
	}
	pass.Reportf(sw.Pos(),
		"frame dispatch covers %d of %d frame kinds (missing %s%s); name every kind explicitly — the default arm is for corruption, not new control frames",
		len(kinds)-len(missing), len(kinds), strings.Join(shown, ", "), suffix)
}
