package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UseAfterRelease enforces the other half of the pool discipline: once a
// pooled buffer or Packet goes back to the pool, no alias of it may be
// touched. Two rules:
//
//  1. After `event.PutBuf(x)` or `pkt.Release()` at the top level of a
//     statement sequence, any later statement in that sequence reading x (or
//     pkt's payload) is a use-after-release — the pool may have handed the
//     bytes to a concurrent owner. Reassigning the variable re-arms it.
//  2. A local that is both released with PutBuf and stored into a struct
//     field, map/slice element, global, or channel in the same function is
//     an alias retained past release — the exact bug class the by-value
//     Packet transfer in internal/cosim/executed.go exists to prevent.
//
// Releases nested in conditionals only invalidate their own branch, so the
// common `if err != nil { event.PutBuf(buf); return err }` guard stays
// clean.
var UseAfterRelease = &Analyzer{
	Name: "useafterrelease",
	Doc:  "no read of a pooled buffer or Packet payload after PutBuf/Release, and no released buffer retained in a structure",
	Run:  runUseAfterRelease,
}

func runUseAfterRelease(pass *Pass) error {
	if eventPackage(pass) == nil {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				ua := &uarChecker{pass: pass}
				ua.block(body.List)
				ua.checkRetainedAliases(body)
			}
			return true
		})
	}
	return nil
}

type uarChecker struct {
	pass *Pass
}

// block scans one statement sequence. Releases performed by a top-level
// statement of this sequence poison the variable for the rest of the
// sequence; nested sequences are scanned recursively with a fresh horizon.
func (ua *uarChecker) block(list []ast.Stmt) {
	released := make(map[types.Object]token.Pos)
	for _, s := range list {
		if len(released) > 0 {
			ua.scanUses(s, released, rebindTargets(ua.pass.Info, s))
		}
		// Reassignment re-arms a variable.
		ua.clearRebinds(s, released)
		if obj, pos := ua.releaseTarget(s); obj != nil {
			released[obj] = pos
		}
		ua.nested(s)
	}
}

// rebindTargets returns the bare-identifier LHS idents of an assignment:
// writing a fresh value into a released variable is a rebind, not a read.
// (Writing *through* it, buf[0] = x, still reads the released pointer.)
func rebindTargets(info *types.Info, s ast.Stmt) map[*ast.Ident]bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok || as.Tok == token.ADD_ASSIGN {
		return nil
	}
	skip := make(map[*ast.Ident]bool)
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				skip[id] = true
			}
		}
	}
	return skip
}

// releaseTarget returns the local variable a top-level statement releases:
// event.PutBuf(x) or x.Release().
func (ua *uarChecker) releaseTarget(s ast.Stmt) (types.Object, token.Pos) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, token.NoPos
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return nil, token.NoPos
	}
	if eventFunc(calleeObj(ua.pass.Info, call), "PutBuf") && len(call.Args) == 1 {
		if obj := localVar(ua.pass.Info, call.Args[0]); obj != nil {
			return obj, call.Pos()
		}
	}
	if isPacketRelease(ua.pass.Info, call) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := localVar(ua.pass.Info, sel.X); obj != nil {
				return obj, call.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// scanUses reports reads of released variables anywhere inside s (including
// nested blocks and closures — the release dominates them all). Idents in
// skip are plain-assignment targets, not reads.
func (ua *uarChecker) scanUses(s ast.Stmt, released map[types.Object]token.Pos, skip map[*ast.Ident]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if skip[id] {
			return true
		}
		obj := ua.pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if relPos, ok := released[obj]; ok {
			ua.pass.Reportf(id.Pos(),
				"%s is used after being returned to the pool at %s — the pool may already have handed these bytes to another owner",
				id.Name, ua.pass.Fset.Position(relPos))
		}
		return true
	})
}

// clearRebinds re-arms variables fully reassigned by s at the top level.
func (ua *uarChecker) clearRebinds(s ast.Stmt, released map[types.Object]token.Pos) {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, l := range as.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if obj := objectOf(ua.pass.Info, id); obj != nil {
				delete(released, obj)
			}
		}
	}
}

// nested recurses into every statement sequence contained in s.
func (ua *uarChecker) nested(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		ua.block(s.List)
	case *ast.IfStmt:
		ua.block(s.Body.List)
		if s.Else != nil {
			ua.nested(s.Else)
		}
	case *ast.ForStmt:
		ua.block(s.Body.List)
	case *ast.RangeStmt:
		ua.block(s.Body.List)
	case *ast.SwitchStmt:
		ua.clauses(s.Body)
	case *ast.TypeSwitchStmt:
		ua.clauses(s.Body)
	case *ast.SelectStmt:
		ua.clauses(s.Body)
	case *ast.LabeledStmt:
		ua.nested(s.Stmt)
	}
}

func (ua *uarChecker) clauses(body *ast.BlockStmt) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			ua.block(c.Body)
		case *ast.CommClause:
			ua.block(c.Body)
		}
	}
}

// checkRetainedAliases applies rule 2 over the whole function body: a local
// that is both PutBuf'd and stored into something that outlives the call.
func (ua *uarChecker) checkRetainedAliases(body *ast.BlockStmt) {
	releasedVars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if eventFunc(calleeObj(ua.pass.Info, call), "PutBuf") && len(call.Args) == 1 {
			if obj := localVar(ua.pass.Info, call.Args[0]); obj != nil {
				releasedVars[obj] = true
			}
		}
		return true
	})
	if len(releasedVars) == 0 {
		return
	}

	report := func(id *ast.Ident, how string) {
		ua.pass.Reportf(id.Pos(),
			"%s is %s but also returned to the pool with PutBuf in this function — the retained alias outlives the release",
			id.Name, how)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				switch ast.Unparen(l).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if i < len(n.Rhs) || len(n.Rhs) == 1 {
						ri := 0
						if len(n.Rhs) == len(n.Lhs) {
							ri = i
						}
						if id := releasedIdent(ua.pass.Info, n.Rhs[ri], releasedVars); id != nil {
							report(id, "stored into a structure")
						}
					}
				}
			}
		case *ast.SendStmt:
			if id := releasedIdent(ua.pass.Info, n.Value, releasedVars); id != nil {
				report(id, "sent on a channel")
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if id := releasedIdent(ua.pass.Info, v, releasedVars); id != nil {
					report(id, "stored into a composite literal")
				}
			}
		}
		return true
	})
}

// releasedIdent returns the identifier if expr is (a slice of) a released
// local variable.
func releasedIdent(info *types.Info, expr ast.Expr, released map[types.Object]bool) *ast.Ident {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && released[obj] {
			return e
		}
	case *ast.SliceExpr:
		return releasedIdent(info, e.X, released)
	}
	return nil
}

// localVar resolves expr to a function-local *types.Var identifier.
func localVar(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}
