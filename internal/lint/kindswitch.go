package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// KindSwitch enforces exhaustiveness for switches over event.Kind: every
// such switch either carries a default clause or covers all NumKinds kinds.
// Without this, adding the 33rd event kind silently falls through the
// checker/squash/replay dispatch paths — the event is transmitted, counted,
// and never checked.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc:  "every switch over event.Kind must have a default clause or cover all event kinds",
	Run:  runKindSwitch,
}

func runKindSwitch(pass *Pass) error {
	evPkg := eventPackage(pass)
	if evPkg == nil {
		return nil
	}
	kindType := scopeType(evPkg, "Kind")
	if kindType == nil {
		return nil
	}
	numKinds, ok := kindCount(evPkg, kindType)
	if !ok {
		return nil
	}
	names := kindNamesByValue(evPkg, kindType, numKinds)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok || !types.Identical(tv.Type, kindType) {
				return true
			}
			checkKindSwitch(pass, sw, numKinds, names)
			return true
		})
	}
	return nil
}

// kindCount reads the NumKinds sentinel constant from the event package.
func kindCount(evPkg *types.Package, kindType types.Type) (int64, bool) {
	c, ok := evPkg.Scope().Lookup("NumKinds").(*types.Const)
	if !ok || !types.Identical(c.Type(), kindType) {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	return v, ok
}

// kindNamesByValue maps each kind value to its declared constant name.
func kindNamesByValue(evPkg *types.Package, kindType types.Type, numKinds int64) map[int64]string {
	names := make(map[int64]string)
	scope := evPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), kindType) || name == "NumKinds" {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok || v < 0 || v >= numKinds {
			continue
		}
		// Prefer the canonical Kind* spelling if several constants alias.
		if prev, exists := names[v]; !exists || (!strings.HasPrefix(prev, "Kind") && strings.HasPrefix(name, "Kind")) {
			names[v] = name
		}
	}
	return names
}

func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt, numKinds int64, names map[int64]string) {
	covered := make(map[int64]bool)
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: new kinds cannot fall through silently
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				continue // non-constant case expression proves nothing
			}
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				covered[v] = true
			}
		}
	}

	var missing []string
	for v := int64(0); v < numKinds; v++ {
		if !covered[v] {
			name := names[v]
			if name == "" {
				name = fmt.Sprintf("Kind(%d)", v)
			}
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	shown := missing
	const maxShown = 4
	suffix := ""
	if len(shown) > maxShown {
		suffix = fmt.Sprintf(", … %d more", len(shown)-maxShown)
		shown = shown[:maxShown]
	}
	pass.Reportf(sw.Pos(),
		"switch over event.Kind has no default clause and covers %d of %d kinds (missing %s%s) — a new kind would silently fall through",
		numKinds-int64(len(missing)), numKinds, strings.Join(shown, ", "), suffix)
}
