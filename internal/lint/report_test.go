package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// loadReport runs analyzers over one testdata package and returns the full
// report.
func loadReport(t *testing.T, dir string, analyzers ...*lint.Analyzer) lint.Report {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(moduleRoot(t))
	pkg, err := loader.LoadDir(abs, "testdata/"+filepath.Base(dir))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lint.RunReport([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunReportSuppressions: the ignore fixture's two justified directives
// surface as suppressions with their reasons, and the directive inventory
// marks both used.
func TestRunReportSuppressions(t *testing.T) {
	rep := loadReport(t, "testdata/ignore", lint.KindSwitch)

	if len(rep.Findings) != 1 {
		t.Fatalf("want 1 surviving finding, got %d:\n%s", len(rep.Findings), dump(rep.Findings))
	}
	if len(rep.Suppressed) != 2 {
		t.Fatalf("want 2 suppressed findings, got %d", len(rep.Suppressed))
	}
	reasons := []string{rep.Suppressed[0].Reason, rep.Suppressed[1].Reason}
	for _, want := range []string{"replay only routes memory kinds", "trace path only ever sees traps"} {
		found := false
		for _, r := range reasons {
			found = found || strings.Contains(r, want)
		}
		if !found {
			t.Errorf("no suppression carries reason %q (have %q)", want, reasons)
		}
	}
	for _, s := range rep.Suppressed {
		if s.Finding.Analyzer != "kindswitch" || s.DirectivePos.Line == 0 {
			t.Errorf("suppression %+v lacks analyzer or directive position", s)
		}
	}
	if len(rep.Directives) != 2 {
		t.Fatalf("want 2 directives, got %d", len(rep.Directives))
	}
	for _, d := range rep.Directives {
		if !d.Used {
			t.Errorf("directive at %s reported stale; both fixture directives suppress", d.Pos)
		}
	}
}

// TestRunReportStaleDirective: an unused directive is flagged stale in the
// inventory (and fails the plain run as a driver finding).
func TestRunReportStaleDirective(t *testing.T) {
	rep := loadReport(t, "testdata/ignorebad", lint.KindSwitch)
	stale := 0
	for _, d := range rep.Directives {
		if !d.Used {
			stale++
		}
	}
	if stale != 1 {
		t.Errorf("want exactly 1 stale directive, got %d of %d", stale, len(rep.Directives))
	}
	if countMatching(rep.Findings, lint.DriverName, "suppresses nothing") != 1 {
		t.Errorf("stale directive missing from findings:\n%s", dump(rep.Findings))
	}
}

// sarifFile mirrors the emitted SARIF subset for decoding in assertions.
type sarifFile struct {
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID string `json:"id"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
			Suppressions []struct {
				Kind          string `json:"kind"`
				Justification string `json:"justification"`
			} `json:"suppressions"`
		} `json:"results"`
	} `json:"runs"`
}

// TestWriteSARIF: findings and suppressions round-trip into a SARIF 2.1.0
// log with per-analyzer rules, error-level results, relative URIs, and
// inSource suppressions carrying the directive justifications.
func TestWriteSARIF(t *testing.T) {
	rep := loadReport(t, "testdata/ignore", lint.KindSwitch)

	var buf bytes.Buffer
	analyzers := []*lint.Analyzer{lint.KindSwitch}
	if err := lint.WriteSARIF(&buf, analyzers, rep, moduleRoot(t)); err != nil {
		t.Fatal(err)
	}
	var doc sarifFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v\n%s", err, buf.String())
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "difftestlint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the driver pseudo-rule.
	if len(run.Tool.Driver.Rules) != 2 ||
		run.Tool.Driver.Rules[0].ID != "kindswitch" || run.Tool.Driver.Rules[1].ID != lint.DriverName {
		t.Errorf("rules = %+v, want [kindswitch %s]", run.Tool.Driver.Rules, lint.DriverName)
	}

	if len(run.Results) != 3 { // 1 surviving + 2 suppressed
		t.Fatalf("want 3 results, got %d", len(run.Results))
	}
	suppressed := 0
	for _, r := range run.Results {
		if r.Level != "error" || r.RuleID != "kindswitch" || r.RuleIndex != 0 {
			t.Errorf("result %+v: want error-level kindswitch at rule index 0", r)
		}
		loc := r.Locations[0].PhysicalLocation
		if filepath.IsAbs(loc.ArtifactLocation.URI) || strings.Contains(loc.ArtifactLocation.URI, `\`) {
			t.Errorf("URI %q is not a relative slash path", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("result %+v has no start line", r)
		}
		for _, s := range r.Suppressions {
			suppressed++
			if s.Kind != "inSource" || s.Justification == "" {
				t.Errorf("suppression %+v: want inSource with a justification", s)
			}
		}
	}
	if suppressed != 2 {
		t.Errorf("want 2 suppressed results, got %d", suppressed)
	}
}

// TestWriteSARIFClean: a clean run still carries an (empty) results array —
// SARIF's "ran and found nothing", distinct from "did not run".
func TestWriteSARIFClean(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), lint.Report{}, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("clean report must emit an empty results array:\n%s", buf.String())
	}
	var doc sarifFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Runs[0].Tool.Driver.Rules); got != len(lint.All())+1 {
		t.Errorf("want %d rules, got %d", len(lint.All())+1, got)
	}
}

// TestLoadPatterns exercises the standalone `go list` loader the CLI uses
// (LoadDir, used everywhere else in these tests, bypasses it).
func TestLoadPatterns(t *testing.T) {
	loader := lint.NewLoader(moduleRoot(t))
	pkgs, err := loader.Load("repro/internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "repro/internal/wire" {
		t.Fatalf("Load(repro/internal/wire) = %d packages %+v", len(pkgs), pkgs)
	}
	if loader.Fset() == nil || len(pkgs[0].Files) == 0 || pkgs[0].Types == nil {
		t.Errorf("loaded package is missing fset, files, or types")
	}
	if _, err := lint.Run(pkgs, lint.All()); err != nil {
		t.Errorf("running the suite over the loaded package: %v", err)
	}
}

// TestVetToolHandshake covers the -V=full / -flags fingerprint protocol and
// the fall-through to the normal CLI.
func TestVetToolHandshake(t *testing.T) {
	var out, errw bytes.Buffer
	handled, code := lint.RunVetTool("difftestlint", []string{"-V=full"}, &out, &errw)
	if !handled || code != 0 || !strings.Contains(out.String(), "difftestlint version") {
		t.Errorf("-V=full: handled=%v code=%d out=%q", handled, code, out.String())
	}

	out.Reset()
	handled, code = lint.RunVetTool("difftestlint", []string{"-flags"}, &out, &errw)
	if !handled || code != 0 || strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-flags: handled=%v code=%d out=%q", handled, code, out.String())
	}

	if handled, _ := lint.RunVetTool("difftestlint", []string{"./..."}, &out, &errw); handled {
		t.Errorf("plain patterns must fall through to the CLI")
	}
}

// TestVetToolUnit drives the unitchecker path in-process with a real vet
// config: export data resolved through `go list -export`, a seeded
// kindswitch violation, and the vet exit-code convention (2 = findings).
func TestVetToolUnit(t *testing.T) {
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-f", "{{.ImportPath}}\t{{.Export}}", "repro/internal/event")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.Output()
	if err != nil {
		t.Skipf("go list -export: %v", err)
	}
	packageFile := make(map[string]string)
	importMap := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, export, ok := strings.Cut(line, "\t")
		if !ok || export == "" {
			continue
		}
		packageFile[path] = export
		importMap[path] = path
	}
	if packageFile["repro/internal/event"] == "" {
		t.Skip("no export data for repro/internal/event")
	}

	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	const body = `package p

import "repro/internal/event"

func partial(k event.Kind) bool {
	switch k {
	case event.KindTrap:
		return true
	}
	return false
}
`
	if err := os.WriteFile(src, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := map[string]any{
		"ImportPath":  "vettest/p",
		"GoFiles":     []string{src},
		"ImportMap":   importMap,
		"PackageFile": packageFile,
		"VetxOutput":  filepath.Join(dir, "p.vetx"),
	}
	cfgData, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgFile, cfgData, 0o666); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	handled, code := lint.RunVetTool("difftestlint", []string{cfgFile}, &stdout, &stderr)
	if !handled {
		t.Fatal("cfg invocation not handled")
	}
	if code != 2 || !strings.Contains(stdout.String(), "covers 1 of 32 kinds") {
		t.Errorf("unit run: code=%d stdout=%q stderr=%q (want code 2 with a kindswitch finding)",
			code, stdout.String(), stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "p.vetx")); err != nil {
		t.Errorf("facts file not written: %v", err)
	}

	// VetxOnly deps produce facts only — no analysis, exit 0.
	cfg["VetxOnly"] = true
	cfgData, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgFile, cfgData, 0o666); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if handled, code := lint.RunVetTool("difftestlint", []string{cfgFile}, &stdout, &stderr); !handled || code != 0 {
		t.Errorf("VetxOnly: handled=%v code=%d", handled, code)
	}

	// A file that fails to parse succeeds silently when the go command asks
	// for it (it reports the syntax error itself).
	if err := os.WriteFile(src, []byte("package p\nfunc {"), 0o666); err != nil {
		t.Fatal(err)
	}
	delete(cfg, "VetxOnly")
	cfg["SucceedOnTypecheckFailure"] = true
	cfgData, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgFile, cfgData, 0o666); err != nil {
		t.Fatal(err)
	}
	if handled, code := lint.RunVetTool("difftestlint", []string{cfgFile}, &stdout, &stderr); !handled || code != 0 {
		t.Errorf("SucceedOnTypecheckFailure: handled=%v code=%d stderr=%q", handled, code, stderr.String())
	}
}
