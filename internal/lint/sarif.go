package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// WriteSARIF encodes a lint Report as a SARIF 2.1.0 log — the interchange
// format CI annotation tooling and code-scanning dashboards consume. One run,
// one driver ("difftestlint"); every analyzer (plus the DriverName
// pseudo-analyzer for directive misuse) becomes a reportingDescriptor rule,
// every surviving finding an error-level result, and every suppressed
// finding a result carrying an inSource suppression with the directive's
// justification — so dashboards show what was silenced and why, not a hole.
//
// File URIs are made relative to baseDir when they fall under it (SARIF
// wants portable artifact locations, not build-host absolute paths).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, rep Report, baseDir string) error {
	doc := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "difftestlint",
				Rules: sarifRules(analyzers),
			}},
			Results: sarifResults(analyzers, rep, baseDir),
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func sarifRules(analyzers []*Analyzer) []sarifRule {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID:               DriverName,
		ShortDescription: sarifText{Text: "lint:ignore directives must name a known analyzer, give a reason, and suppress something"},
	})
	return rules
}

func sarifResults(analyzers []*Analyzer, rep Report, baseDir string) []sarifResult {
	ruleIndex := make(map[string]int, len(analyzers)+1)
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
	}
	ruleIndex[DriverName] = len(analyzers)

	// Empty slice, not nil: `"results": []` is the SARIF way to say "ran
	// clean", while a missing results array means "did not finish".
	results := make([]sarifResult, 0, len(rep.Findings)+len(rep.Suppressed))
	for _, f := range rep.Findings {
		results = append(results, findingResult(f, ruleIndex, baseDir, nil))
	}
	for _, s := range rep.Suppressed {
		results = append(results, findingResult(s.Finding, ruleIndex, baseDir, []sarifSuppression{{
			Kind:          "inSource",
			Justification: s.Reason,
		}}))
	}
	return results
}

func findingResult(f Finding, ruleIndex map[string]int, baseDir string, sup []sarifSuppression) sarifResult {
	idx, ok := ruleIndex[f.Analyzer]
	if !ok {
		idx = -1
	}
	return sarifResult{
		RuleID:    f.Analyzer,
		RuleIndex: idx,
		Level:     "error",
		Message:   sarifText{Text: f.Message},
		Locations: []sarifLocation{{
			PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: sarifURI(f.Pos.Filename, baseDir)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			},
		}},
		Suppressions: sup,
	}
}

// sarifURI renders filename relative to baseDir with forward slashes, or as
// given when it lies outside baseDir.
func sarifURI(filename, baseDir string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// The subset of the SARIF 2.1.0 object model difftestlint emits.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification"`
}
