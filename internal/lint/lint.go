// Package lint is a small, stdlib-only static-analysis framework plus the
// four project-specific analyzers behind cmd/difftestlint. It exists because
// the correctness of the Batch/Squash/Replay stack rests on invariants the
// compiler cannot see: every event payload struct must stay fixed-size and
// pointer-free (wirestruct), every pooled buffer must return to the pool on
// every control-flow path (poolcheck), no pooled bytes may be read after
// release (useafterrelease), and every switch over event.Kind must stay
// exhaustive as kinds are added (kindswitch).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Reportf — but is built only on go/parser, go/types and
// `go list -json`, so it works in a vendored-nothing module. If x/tools ever
// becomes available the analyzers port over mechanically.
//
// Intentional violations are suppressed with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line above it. A directive without a
// reason, naming an unknown analyzer, or suppressing nothing is itself a
// diagnostic, so ignores stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []rawDiag
}

type rawDiag struct {
	pos token.Pos
	msg string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, rawDiag{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// Finding is one resolved diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// DriverName is the pseudo-analyzer name under which the driver reports
// problems with ignore directives themselves.
const DriverName = "lint"

// Run applies the analyzers to each package, resolves //lint:ignore
// directives, and returns the surviving findings sorted by position.
// Directive misuse (no reason, unknown analyzer, nothing suppressed) is
// returned as a finding under DriverName.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	var findings []Finding
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range pass.diags {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.pos),
				Message:  d.msg,
			})
		}
	}

	dirs, bad := collectIgnores(pkg, known)
	findings = applyIgnores(findings, dirs)
	for _, d := range dirs {
		if !d.used {
			bad = append(bad, Finding{
				Analyzer: DriverName,
				Pos:      d.pos,
				Message:  fmt.Sprintf("lint:ignore directive for %q suppresses nothing", d.analyzer),
			})
		}
	}
	return append(findings, bad...), nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position // position of the directive comment
	trailing bool           // shares a line with code (applies to that line)
	used     bool
}

const ignorePrefix = "//lint:ignore "

// collectIgnores parses every //lint:ignore directive in the package,
// returning the well-formed directives and findings for malformed ones.
func collectIgnores(pkg *Package, known map[string]bool) ([]*ignoreDirective, []Finding) {
	var dirs []*ignoreDirective
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					bad = append(bad, Finding{Analyzer: DriverName, Pos: pos,
						Message: "lint:ignore directive names no analyzer"})
				case !known[name] && name != DriverName:
					bad = append(bad, Finding{Analyzer: DriverName, Pos: pos,
						Message: fmt.Sprintf("lint:ignore directive names unknown analyzer %q", name)})
				case reason == "":
					bad = append(bad, Finding{Analyzer: DriverName, Pos: pos,
						Message: fmt.Sprintf("lint:ignore %s directive gives no reason; unjustified ignores are rejected", name)})
				default:
					dirs = append(dirs, &ignoreDirective{
						analyzer: name,
						reason:   reason,
						pos:      pos,
						trailing: !startsLine(pkg, c),
					})
				}
			}
		}
	}
	return dirs, bad
}

// startsLine reports whether the comment is the first token on its line
// (a standalone directive applying to the next line).
func startsLine(pkg *Package, c *ast.Comment) bool {
	pos := pkg.Fset.Position(c.Pos())
	// A trailing comment follows code, so its column is past the code's
	// start. Directive comments written on their own line conventionally
	// start the line (possibly indented); treat a comment as standalone
	// unless some earlier AST token shares its line. Checking the file's
	// line offsets directly would need the source text, so approximate:
	// scan the file's decls for any node ending on the same line before
	// the comment.
	for _, f := range pkg.Files {
		if pkg.Fset.File(f.Pos()) != pkg.Fset.File(c.Pos()) {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || found {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if n.End() <= c.Pos() && pkg.Fset.Position(n.End()).Line == pos.Line {
				// Some code token ends on the directive's line before it.
				switch n.(type) {
				case *ast.File, *ast.CommentGroup:
				default:
					found = true
				}
			}
			return true
		})
		return !found
	}
	return true
}

// applyIgnores drops findings covered by a directive, marking directives
// used. A standalone directive covers the next line; a trailing directive
// covers its own line.
func applyIgnores(findings []Finding, dirs []*ignoreDirective) []Finding {
	if len(dirs) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range dirs {
			if d.analyzer != f.Analyzer || d.pos.Filename != f.Pos.Filename {
				continue
			}
			line := d.pos.Line
			if !d.trailing {
				line++
			}
			if f.Pos.Line == line {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// eventPackage returns the project's event package as seen from pass (the
// package itself or one of its imports), or nil if not referenced.
func eventPackage(pass *Pass) *types.Package {
	if isEventPath(pass.Pkg.Path()) {
		return pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if isEventPath(imp.Path()) {
			return imp
		}
	}
	return nil
}

func isEventPath(path string) bool {
	return path == "repro/internal/event" || strings.HasSuffix(path, "/internal/event")
}

func isBatchPath(path string) bool {
	return path == "repro/internal/batch" || strings.HasSuffix(path, "/internal/batch")
}

func isFaultnetPath(path string) bool {
	return path == "repro/internal/faultnet" || strings.HasSuffix(path, "/internal/faultnet")
}

func isShmringPath(path string) bool {
	return path == "repro/internal/transport/shmring" || strings.HasSuffix(path, "/transport/shmring")
}

// eventFunc reports whether obj is the named function from the event package.
func eventFunc(obj types.Object, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return isEventPath(fn.Pkg().Path())
}

// calleeObj resolves the object a call expression invokes, unwrapping
// parens; nil for indirect calls through non-identifiers.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
