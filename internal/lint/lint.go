// Package lint is a small, stdlib-only static-analysis framework plus the
// seven project-specific analyzers behind cmd/difftestlint. It exists
// because the correctness of the Batch/Squash/Replay stack rests on
// invariants the compiler cannot see: every event payload struct must stay
// fixed-size and pointer-free (wirestruct), every pooled buffer must return
// to the pool on every control-flow path (poolcheck), no pooled bytes may
// be read after release (useafterrelease), every switch over event.Kind
// must stay exhaustive as kinds are added (kindswitch), words accessed
// through sync/atomic must never be accessed non-atomically and unsafe
// overlays must prove their alignment (atomicfield), armed connection
// deadlines must be cleared, closed, or handed off on every path out
// (deadlinepair), and every transport frame dispatch must name every
// declared frame kind (framekind).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Reportf — but is built only on go/parser, go/types and
// `go list -json`, so it works in a vendored-nothing module. If x/tools ever
// becomes available the analyzers port over mechanically.
//
// Intentional violations are suppressed with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line above it. A directive without a
// reason, naming an unknown analyzer, or suppressing nothing is itself a
// diagnostic, so ignores stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []rawDiag
}

type rawDiag struct {
	pos token.Pos
	msg string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, rawDiag{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// Finding is one resolved diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// DriverName is the pseudo-analyzer name under which the driver reports
// problems with ignore directives themselves.
const DriverName = "lint"

// Suppression records one finding silenced by a //lint:ignore directive,
// keeping the justification attached to what it justified.
type Suppression struct {
	Finding Finding
	Reason  string
	// DirectivePos locates the directive comment that did the suppressing.
	DirectivePos token.Position
}

// Directive summarizes one well-formed //lint:ignore for the suppression
// audit. A directive with Used == false is stale: the code it excused has
// moved or been fixed, and the directive must be deleted.
type Directive struct {
	Analyzer string
	Reason   string
	Pos      token.Position
	Used     bool
}

// Report is the full outcome of a lint run: what fired, what was silenced
// and why, and every suppression directive seen — the raw material for the
// SARIF encoder and the audit mode.
type Report struct {
	Findings   []Finding
	Suppressed []Suppression
	Directives []Directive
}

// Run applies the analyzers to each package, resolves //lint:ignore
// directives, and returns the surviving findings sorted by position.
// Directive misuse (no reason, unknown analyzer, nothing suppressed) is
// returned as a finding under DriverName.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	rep, err := RunReport(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return rep.Findings, nil
}

// RunReport is Run keeping the whole story: suppressed findings with their
// justifications and the directive inventory ride along with the survivors.
func RunReport(pkgs []*Package, analyzers []*Analyzer) (Report, error) {
	var rep Report
	for _, pkg := range pkgs {
		if err := runPackage(pkg, analyzers, &rep); err != nil {
			return Report{}, err
		}
	}
	sortFindings(rep.Findings)
	sort.Slice(rep.Suppressed, func(i, j int) bool {
		return posLess(rep.Suppressed[i].Finding.Pos, rep.Suppressed[j].Finding.Pos)
	})
	sort.Slice(rep.Directives, func(i, j int) bool {
		return posLess(rep.Directives[i].Pos, rep.Directives[j].Pos)
	})
	return rep, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if !samePos(a.Pos, b.Pos) {
			return posLess(a.Pos, b.Pos)
		}
		return a.Analyzer < b.Analyzer
	})
}

func samePos(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func runPackage(pkg *Package, analyzers []*Analyzer, rep *Report) error {
	known := make(map[string]bool, len(analyzers))
	var findings []Finding
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range pass.diags {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.pos),
				Message:  d.msg,
			})
		}
	}

	dirs, bad := collectIgnores(pkg, known)
	findings, suppressed := applyIgnores(findings, dirs)
	for _, d := range dirs {
		if !d.used {
			bad = append(bad, Finding{
				Analyzer: DriverName,
				Pos:      d.pos,
				Message:  fmt.Sprintf("lint:ignore directive for %q suppresses nothing", d.analyzer),
			})
		}
		rep.Directives = append(rep.Directives, Directive{
			Analyzer: d.analyzer, Reason: d.reason, Pos: d.pos, Used: d.used,
		})
	}
	rep.Findings = append(rep.Findings, append(findings, bad...)...)
	rep.Suppressed = append(rep.Suppressed, suppressed...)
	return nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position // position of the directive comment
	trailing bool           // shares a line with code (applies to that line)
	used     bool
}

const ignorePrefix = "//lint:ignore "

// collectIgnores parses every //lint:ignore directive in the package,
// returning the well-formed directives and findings for malformed ones.
func collectIgnores(pkg *Package, known map[string]bool) ([]*ignoreDirective, []Finding) {
	var dirs []*ignoreDirective
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					bad = append(bad, Finding{Analyzer: DriverName, Pos: pos,
						Message: "lint:ignore directive names no analyzer"})
				case !known[name] && name != DriverName:
					bad = append(bad, Finding{Analyzer: DriverName, Pos: pos,
						Message: fmt.Sprintf("lint:ignore directive names unknown analyzer %q", name)})
				case reason == "":
					bad = append(bad, Finding{Analyzer: DriverName, Pos: pos,
						Message: fmt.Sprintf("lint:ignore %s directive gives no reason; unjustified ignores are rejected", name)})
				default:
					dirs = append(dirs, &ignoreDirective{
						analyzer: name,
						reason:   reason,
						pos:      pos,
						trailing: !startsLine(pkg, c),
					})
				}
			}
		}
	}
	return dirs, bad
}

// startsLine reports whether the comment is the first token on its line
// (a standalone directive applying to the next line).
func startsLine(pkg *Package, c *ast.Comment) bool {
	pos := pkg.Fset.Position(c.Pos())
	// A trailing comment follows code, so its column is past the code's
	// start. Directive comments written on their own line conventionally
	// start the line (possibly indented); treat a comment as standalone
	// unless some earlier AST token shares its line. Checking the file's
	// line offsets directly would need the source text, so approximate:
	// scan the file's decls for any node ending on the same line before
	// the comment.
	for _, f := range pkg.Files {
		if pkg.Fset.File(f.Pos()) != pkg.Fset.File(c.Pos()) {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || found {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if n.End() <= c.Pos() && pkg.Fset.Position(n.End()).Line == pos.Line {
				// Some code token ends on the directive's line before it.
				switch n.(type) {
				case *ast.File, *ast.CommentGroup:
				default:
					found = true
				}
			}
			return true
		})
		return !found
	}
	return true
}

// applyIgnores splits findings into survivors and suppressions, marking
// directives used. A standalone directive covers the next line; a trailing
// directive covers its own line.
func applyIgnores(findings []Finding, dirs []*ignoreDirective) ([]Finding, []Suppression) {
	if len(dirs) == 0 {
		return findings, nil
	}
	kept := findings[:0]
	var suppressed []Suppression
	for _, f := range findings {
		var by *ignoreDirective
		for _, d := range dirs {
			if d.analyzer != f.Analyzer || d.pos.Filename != f.Pos.Filename {
				continue
			}
			line := d.pos.Line
			if !d.trailing {
				line++
			}
			if f.Pos.Line == line {
				d.used = true
				if by == nil {
					by = d
				}
			}
		}
		if by == nil {
			kept = append(kept, f)
		} else {
			suppressed = append(suppressed, Suppression{
				Finding: f, Reason: by.reason, DirectivePos: by.pos,
			})
		}
	}
	return kept, suppressed
}

// eventPackage returns the project's event package as seen from pass (the
// package itself or one of its imports), or nil if not referenced.
func eventPackage(pass *Pass) *types.Package {
	if isEventPath(pass.Pkg.Path()) {
		return pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if isEventPath(imp.Path()) {
			return imp
		}
	}
	return nil
}

func isEventPath(path string) bool {
	return path == "repro/internal/event" || strings.HasSuffix(path, "/internal/event")
}

func isBatchPath(path string) bool {
	return path == "repro/internal/batch" || strings.HasSuffix(path, "/internal/batch")
}

func isFaultnetPath(path string) bool {
	return path == "repro/internal/faultnet" || strings.HasSuffix(path, "/internal/faultnet")
}

func isShmringPath(path string) bool {
	return path == "repro/internal/transport/shmring" || strings.HasSuffix(path, "/transport/shmring")
}

// eventFunc reports whether obj is the named function from the event package.
func eventFunc(obj types.Object, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return isEventPath(fn.Pkg().Path())
}

// calleeObj resolves the object a call expression invokes, unwrapping
// parens; nil for indirect calls through non-identifiers.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
