// Package linttest is the shared test harness for the difftestlint
// analyzers, in the style of x/tools' analysistest: a testdata package is
// typechecked for real (its imports of repro/internal/... resolve to the
// actual packages), the analyzers under test run over it, and the findings
// are matched against `// want "regexp"` expectation comments.
//
// A want comment expects one finding per quoted regexp on its own line:
//
//	buf := event.GetBuf(8) // want `not released`
//
// Every expectation must be matched by a finding and every finding by an
// expectation; anything else fails the test.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads the testdata package at dir (relative to the caller's package
// directory), applies the analyzers, and matches findings against want
// comments. The full driver runs, so //lint:ignore directives participate
// and driver findings match want comments too.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(moduleRoot(t))
	pkg, err := loader.LoadDir(abs, "testdata/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants := collectWants(t, abs)
	matched := make([]bool, len(wants))

	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: %s (%s)",
				filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message, f.Analyzer)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans every .go file in dir for want comments.
func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, pat := range parseWantPatterns(line[idx+len("// want "):]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// parseWantPatterns extracts the quoted (double-quote or backquote) regexps
// from the text after "// want ".
func parseWantPatterns(s string) []string {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return pats
			}
			pats = append(pats, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Re-quote through strconv to honor escapes.
			rest := s
			for i := 1; i < len(rest); i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					if unq, err := strconv.Unquote(rest[:i+1]); err == nil {
						pats = append(pats, unq)
					}
					s = rest[i+1:]
					break
				}
				if i == len(rest)-1 {
					return pats
				}
			}
		default:
			return pats
		}
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("linttest: no go.mod above working directory")
		}
		dir = parent
	}
}
