package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Loader loads and typechecks packages without golang.org/x/tools: package
// metadata comes from `go list -json -deps`, sources are parsed with
// go/parser, and go/types checks them in dependency (post-)order.
// Dependencies are checked with IgnoreFuncBodies — only their API surface is
// needed — while target packages get full bodies and a complete types.Info,
// which is what the analyzers consume.
type Loader struct {
	// Dir is the directory go list runs in (the module root). Defaults to
	// the current directory.
	Dir string

	fset    *token.FileSet
	checked map[string]*types.Package // by resolved import path
	meta    map[string]*listPackage
	sizes   types.Sizes
}

// NewLoader returns a loader rooted at dir ("" = current directory).
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		checked: make(map[string]*types.Package),
		meta:    make(map[string]*listPackage),
		sizes:   types.SizesFor("gc", runtime.GOARCH),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the patterns (e.g. "./...") and returns the matched
// packages, fully typechecked with bodies and info. Their dependencies are
// loaded as API-only shells and not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.listRoots(patterns)
	if err != nil {
		return nil, err
	}
	if err := l.listDeps(patterns); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range roots {
		pkg, err := l.loadTarget(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listRoots returns the import paths the patterns match.
func (l *Loader) listRoots(patterns []string) ([]string, error) {
	out, err := l.goList(append([]string{"list", "--"}, patterns...))
	if err != nil {
		return nil, err
	}
	var roots []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			roots = append(roots, line)
		}
	}
	return roots, nil
}

// listDeps populates l.meta with the patterns' full dependency graph.
func (l *Loader) listDeps(patterns []string) error {
	out, err := l.goList(append([]string{"list", "-json", "-deps", "--"}, patterns...))
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %w", err)
		}
		l.meta[p.ImportPath] = &p
	}
}

func (l *Loader) goList(args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// ensureMeta fetches go list metadata for path on demand (used when a
// testdata package imports something outside the preloaded graph).
func (l *Loader) ensureMeta(path string) (*listPackage, error) {
	if p, ok := l.meta[path]; ok {
		return p, nil
	}
	if err := l.listDeps([]string{path}); err != nil {
		return nil, err
	}
	p, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("lint: go list did not resolve %q", path)
	}
	return p, nil
}

// loadTarget typechecks path with full function bodies and analyzer info.
func (l *Loader) loadTarget(path string) (*Package, error) {
	meta, err := l.ensureMeta(path)
	if err != nil {
		return nil, err
	}
	if meta.Error != nil {
		return nil, fmt.Errorf("lint: %s: %s", path, meta.Error.Err)
	}
	files, err := l.parseDir(meta.Dir, meta.GoFiles, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	tpkg, err := l.check(path, meta, files, false, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", path, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        meta.Dir,
		Standard:   meta.Standard,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadDir parses and typechecks the .go files of a single directory that go
// list cannot see (an analyzer testdata tree), resolving its imports through
// the loader. importPath names the resulting package.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	files, err := l.parseDir(dir, names, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{
		Importer:    &loaderImporter{l: l},
		FakeImportC: true,
		Sizes:       l.sizes,
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func (l *Loader) parseDir(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importDep typechecks a dependency package (API only, bodies ignored),
// memoizing by resolved import path.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	meta, err := l.ensureMeta(path)
	if err != nil {
		return nil, err
	}
	// Cgo-using dependencies cannot be fully parsed without running cgo;
	// their Go files still declare the exported API we need, and any
	// resulting "undeclared name" errors are tolerated below.
	files, err := l.parseDir(meta.Dir, meta.GoFiles, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check(path, meta, files, true, nil)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("lint: typechecking dependency %s: %w", path, err)
	}
	pkg.MarkComplete()
	l.checked[path] = pkg
	return pkg, nil
}

func (l *Loader) check(path string, meta *listPackage, files []*ast.File, dep bool, info *types.Info) (*types.Package, error) {
	var firstErr error
	conf := types.Config{
		Importer:         &loaderImporter{l: l, importMap: meta.ImportMap},
		FakeImportC:      true,
		IgnoreFuncBodies: dep,
		Sizes:            l.sizes,
	}
	if dep {
		// API-only dependencies may reference symbols provided by assembly,
		// cgo, or linkname; collect instead of failing on the first error so
		// the exported surface still materializes.
		conf.Error = func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err == nil {
		err = firstErr
	}
	return pkg, err
}

// loaderImporter resolves imports against the loader, applying the importing
// package's vendor ImportMap first.
type loaderImporter struct {
	l         *Loader
	importMap map[string]string
}

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	return im.l.importDep(path)
}
