package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolCheck verifies the buffer-pool ownership discipline around
// event.GetBuf (see internal/event/pool.go): on every control-flow path a
// pooled buffer must either be returned with event.PutBuf (directly or via
// batch.Packet.Release), escape the function (returned, stored into a
// structure, sent, or captured — the documented "never returned" ownership
// transfer), or be handed to another owner. Leaks on early returns and error
// paths — the bug class `go test` only catches probabilistically — become
// diagnostics, in the style of vet's lostcancel.
//
// The analysis is intra-procedural and tracks ownership transfer through
// single-value assignments (`b := ev.AppendTo(event.GetBuf(n))` makes b the
// owner), slicing, append, and composite literals (`Packet{Buf: buf}` makes
// the packet the owner).
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "every event.GetBuf must be matched by PutBuf/Release or an ownership transfer on all control-flow paths",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	if eventPackage(pass) == nil {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncPool(pass, fn.Body)
				}
				return false // nested FuncLits are visited by checkFuncPool
			case *ast.FuncLit:
				checkFuncPool(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// poolState is the abstract state at one program point: the set of live
// (acquired, unreleased) pooled buffers, keyed by their current owner.
type poolState struct {
	live map[types.Object]token.Pos // owner var → GetBuf position
}

func newPoolState() *poolState {
	return &poolState{live: make(map[types.Object]token.Pos)}
}

func (s *poolState) clone() *poolState {
	c := newPoolState()
	for k, v := range s.live {
		c.live[k] = v
	}
	return c
}

// merge unions the live sets of states that can all reach this point.
func (s *poolState) merge(others ...*poolState) {
	for _, o := range others {
		if o == nil {
			continue
		}
		for k, v := range o.live {
			if _, ok := s.live[k]; !ok {
				s.live[k] = v
			}
		}
	}
}

type poolChecker struct {
	pass     *Pass
	reported map[token.Pos]bool // one diagnostic per acquisition
	// funcLits found while walking; each is analyzed independently after
	// the enclosing body (a pooled buffer captured by a closure escapes).
	lits []*ast.FuncLit
}

func checkFuncPool(pass *Pass, body *ast.BlockStmt) {
	pc := &poolChecker{pass: pass, reported: make(map[token.Pos]bool)}
	st := newPoolState()
	exits := pc.stmts(body.List, st)
	if !exits {
		pc.checkExit(st, body.End())
	}
	for _, lit := range pc.lits {
		checkFuncPool(pass, lit.Body)
	}
}

// stmts executes a statement list, mutating st. It returns true when control
// never falls off the end (every path returns, panics, or branches away).
func (pc *poolChecker) stmts(list []ast.Stmt, st *poolState) bool {
	for _, s := range list {
		if pc.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt interprets one statement; true means control does not continue to the
// next statement in sequence.
func (pc *poolChecker) stmt(s ast.Stmt, st *poolState) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		pc.assign(s, st)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				if len(vs.Names) == 1 && len(vs.Values) == 1 {
					pc.bindSingle(vs.Names[0], vs.Values[0], st)
				} else {
					for _, v := range vs.Values {
						pc.scanExpr(v, st)
					}
				}
			}
		}

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if pc.releaseCall(call, st) {
				return false
			}
			if eventFunc(calleeObj(pc.pass.Info, call), "GetBuf") {
				pc.pass.Reportf(call.Pos(), "result of event.GetBuf is discarded: the buffer can never be returned to the pool")
				return false
			}
			pc.scanExpr(s.X, st)
			return isTerminalCall(pc.pass.Info, call)
		}
		pc.scanExpr(s.X, st)

	case *ast.DeferStmt:
		pc.deferRelease(s.Call, st)

	case *ast.GoStmt:
		// A buffer handed to a goroutine escapes this function's paths.
		pc.escapeExpr(s.Call, st)

	case *ast.SendStmt:
		pc.escapeExpr(s.Value, st)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			pc.escapeExpr(r, st)
		}
		pc.checkExit(st, s.Pos())
		return true

	case *ast.BranchStmt:
		// break/continue/goto: conservatively stop following this path.
		return true

	case *ast.IfStmt:
		if s.Init != nil {
			pc.stmt(s.Init, st)
		}
		pc.scanExpr(s.Cond, st)
		thenSt := st.clone()
		elseSt := st.clone()
		// GetBuf never returns nil, so on the branch where the condition
		// proves an owner nil it cannot hold a live buffer: the nil-guarded
		// release `if buf != nil { event.PutBuf(buf) }` covers every path
		// the buffer was actually acquired on.
		if obj, nilInThen := nilComparedObj(pc.pass.Info, s.Cond); obj != nil {
			if nilInThen {
				delete(thenSt.live, obj)
			} else {
				delete(elseSt.live, obj)
			}
		}
		thenExits := pc.stmts(s.Body.List, thenSt)
		elseExits := false
		if s.Else != nil {
			elseExits = pc.stmt(s.Else, elseSt)
		}
		switch {
		case thenExits && elseExits:
			return true
		case thenExits:
			*st = *elseSt
		case elseExits:
			*st = *thenSt
		default:
			*st = *thenSt
			st.merge(elseSt)
		}

	case *ast.BlockStmt:
		return pc.stmts(s.List, st)

	case *ast.LabeledStmt:
		return pc.stmt(s.Stmt, st)

	case *ast.ForStmt:
		if s.Init != nil {
			pc.stmt(s.Init, st)
		}
		if s.Cond != nil {
			pc.scanExpr(s.Cond, st)
		}
		bodySt := st.clone()
		bodyExits := pc.stmts(s.Body.List, bodySt)
		if s.Post != nil {
			pc.stmt(s.Post, bodySt)
		}
		if !bodyExits {
			pc.checkLoopIteration(bodySt, s.Body)
		}
		st.merge(bodySt)
		pc.dropAcquiredWithin(st, s.Body)

	case *ast.RangeStmt:
		pc.scanExpr(s.X, st)
		bodySt := st.clone()
		bodyExits := pc.stmts(s.Body.List, bodySt)
		if !bodyExits {
			pc.checkLoopIteration(bodySt, s.Body)
		}
		st.merge(bodySt)
		pc.dropAcquiredWithin(st, s.Body)

	case *ast.SwitchStmt:
		if s.Init != nil {
			pc.stmt(s.Init, st)
		}
		if s.Tag != nil {
			pc.scanExpr(s.Tag, st)
		}
		return pc.caseBodies(s.Body, st, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			pc.stmt(s.Init, st)
		}
		return pc.caseBodies(s.Body, st, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		return pc.caseBodies(s.Body, st, false)
	}
	return false
}

// caseBodies merges the clause bodies of a switch/select. When no default
// clause exists the pre-state is one of the reachable outcomes.
func (pc *poolChecker) caseBodies(body *ast.BlockStmt, st *poolState, hasDefault bool) bool {
	pre := st.clone()
	var surviving []*poolState
	allExit := true
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				pc.scanExpr(e, pre)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				pc.stmt(c.Comm, pre.clone())
			}
			list = c.Body
		}
		cs := pre.clone()
		if !pc.stmts(list, cs) {
			allExit = false
			surviving = append(surviving, cs)
		}
	}
	if !hasDefault {
		allExit = false
		surviving = append(surviving, pre)
	}
	if allExit && len(body.List) > 0 {
		return true
	}
	clear(st.live)
	st.merge(surviving...)
	return false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// assign interprets an assignment, handling acquisition, ownership transfer,
// and escape through stores.
func (pc *poolChecker) assign(s *ast.AssignStmt, st *poolState) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		pc.bindSingle(s.Lhs[0], s.Rhs[0], st)
		return
	}
	// Multi-value assignment (x, err := f(buf)): owners passed as arguments
	// stay live — helpers like Unpacker.AddPacket copy, they do not adopt.
	// A GetBuf acquisition cannot appear usefully here; treat its presence
	// in any RHS as an immediate leak of an untrackable buffer.
	for _, r := range s.Rhs {
		if gb := findGetBufCall(pc.pass.Info, r); gb != nil {
			pc.pass.Reportf(gb.Pos(), "event.GetBuf result is consumed by a multi-value expression and cannot be tracked to a PutBuf")
		}
	}
	for _, l := range s.Lhs {
		pc.rebindLHS(l, st)
	}
}

func containsObj(owners []types.Object, obj types.Object) bool {
	for _, o := range owners {
		if o == obj {
			return true
		}
	}
	return false
}

// bindSingle handles `lhs := rhs` / `lhs = rhs` / `var lhs = rhs`.
func (pc *poolChecker) bindSingle(lhs, rhs ast.Expr, st *poolState) {
	owners, acquires := pc.carriers(rhs, st)

	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	var lobj types.Object
	if isIdent && id.Name != "_" {
		lobj = objectOf(pc.pass.Info, id)
	}

	if lobj == nil {
		if isIdent && id.Name == "_" {
			// `_ = buf` is a no-op, not a transfer; a fresh GetBuf into
			// the blank identifier can never be released.
			if acquires != token.NoPos {
				pc.pass.Reportf(acquires, "result of event.GetBuf is discarded: the buffer can never be returned to the pool")
			}
			return
		}
		// Store into a field, index, map, or global: ownership transfers
		// out of the function's control flow — the pool discipline's
		// documented "never returned" escape.
		for _, o := range owners {
			delete(st.live, o)
		}
		return
	}

	// Overwriting a live owner with an unrelated value loses the buffer.
	if pos, wasLive := st.live[lobj]; wasLive && acquires == token.NoPos && !containsObj(owners, lobj) {
		pc.report(pos, "pooled buffer from event.GetBuf is overwritten without PutBuf")
		delete(st.live, lobj)
	}

	transferred := false
	for _, o := range owners {
		if pos, ok := st.live[o]; ok {
			delete(st.live, o)
			st.live[lobj] = pos
			transferred = true
		}
	}
	// A fresh GetBuf binds lhs unless a transfer already did (e.g.
	// b = ev.AppendTo(event.GetBuf(n)) keeps the transferred position).
	if acquires != token.NoPos && !transferred {
		st.live[lobj] = acquires
	}
}

func (pc *poolChecker) rebindLHS(l ast.Expr, st *poolState) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
		if obj := objectOf(pc.pass.Info, id); obj != nil {
			if pos, ok := st.live[obj]; ok {
				pc.report(pos, "pooled buffer from event.GetBuf is overwritten without PutBuf")
				delete(st.live, obj)
			}
		}
	}
}

// carriers analyses an RHS expression: which live owners flow into its
// value (and would alias the result), and whether it contains a fresh
// GetBuf acquisition.
func (pc *poolChecker) carriers(e ast.Expr, st *poolState) (owners []types.Object, acquirePos token.Pos) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return pc.carriers(e.X, st)
	case *ast.Ident:
		if obj := objectOf(pc.pass.Info, e); obj != nil {
			if _, ok := st.live[obj]; ok {
				return []types.Object{obj}, token.NoPos
			}
		}
	case *ast.SliceExpr:
		return pc.carriers(e.X, st)
	case *ast.SelectorExpr:
		// pkt.Buf aliases the packet's payload.
		return pc.carriers(e.X, st)
	case *ast.IndexExpr:
		return pc.carriers(e.X, st)
	case *ast.StarExpr:
		return pc.carriers(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return pc.carriers(e.X, st)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			os, ap := pc.carriers(v, st)
			owners = append(owners, os...)
			if ap != token.NoPos {
				acquirePos = ap
			}
		}
		return owners, acquirePos
	case *ast.CallExpr:
		if eventFunc(calleeObj(pc.pass.Info, e), "GetBuf") {
			return nil, e.Pos()
		}
		// A single-value call with a live owner among its arguments may
		// return an alias of it (AppendTo, append, conversions): the result
		// adopts ownership — but only when the result type could actually
		// carry the buffer. Calls returning bool/int/string (bytes.Equal,
		// len) merely read it.
		if tv, ok := pc.pass.Info.Types[e]; ok {
			if _, basic := tv.Type.Underlying().(*types.Basic); basic {
				// Still surface any acquisition buried in the arguments.
				for _, arg := range e.Args {
					if _, ap := pc.carriers(arg, st); ap != token.NoPos {
						acquirePos = ap
					}
				}
				return nil, acquirePos
			}
		}
		for _, arg := range e.Args {
			os, ap := pc.carriers(arg, st)
			owners = append(owners, os...)
			if ap != token.NoPos {
				acquirePos = ap
			}
		}
		// Also look at the receiver of method calls (buf.Something()).
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			os, _ := pc.carriers(sel.X, st)
			owners = append(owners, os...)
		}
		return owners, acquirePos
	}
	return nil, token.NoPos
}

// releaseCall handles event.PutBuf(x) and pkt.Release(); true if the call
// was a release.
func (pc *poolChecker) releaseCall(call *ast.CallExpr, st *poolState) bool {
	obj := calleeObj(pc.pass.Info, call)
	if eventFunc(obj, "PutBuf") {
		for _, arg := range call.Args {
			owners, _ := pc.carriers(arg, st)
			for _, o := range owners {
				delete(st.live, o)
			}
		}
		return true
	}
	if isPacketRelease(pc.pass.Info, call) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			owners, _ := pc.carriers(sel.X, st)
			for _, o := range owners {
				delete(st.live, o)
			}
		}
		return true
	}
	if isAdoptCall(pc.pass.Info, call) {
		// faultnet's Adopt* methods take over pooled buffers passed as
		// arguments (Journal.AdoptFrame keeps the snapshot until Release);
		// ownership transfers to the receiver, so no PutBuf follows.
		for _, arg := range call.Args {
			owners, _ := pc.carriers(arg, st)
			for _, o := range owners {
				delete(st.live, o)
			}
		}
		return true
	}
	return false
}

// deferRelease marks owners released by a deferred PutBuf/Release (defers
// run on every exit path, so the buffer is safe from then on). Deferred
// closures are scanned for release calls too.
func (pc *poolChecker) deferRelease(call *ast.CallExpr, st *poolState) {
	if pc.releaseCall(call, st) {
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				pc.releaseCall(c, st)
			}
			return true
		})
		return
	}
	// Any other deferred call receiving a live owner: escape (cleanup
	// helpers own it now).
	pc.escapeExpr(call, st)
}

// scanExpr visits an expression only to find nested FuncLits (analyzed
// separately) and nested acquisition misuse like f(event.GetBuf(n)) in
// expression statements, where the result is untracked.
func (pc *poolChecker) scanExpr(e ast.Expr, st *poolState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pc.lits = append(pc.lits, n)
			return false
		}
		return true
	})
}

// escapeExpr removes from tracking every live owner whose value flows into
// e: ownership leaves this function (return value, channel send, goroutine,
// deferred cleanup). `return len(buf)` is not an escape — carriers already
// knows basic-typed results only read the buffer.
func (pc *poolChecker) escapeExpr(e ast.Expr, st *poolState) {
	if e == nil {
		return
	}
	owners, _ := pc.carriers(e, st)
	for _, o := range owners {
		delete(st.live, o)
	}
	// Closures capture by reference: every owner referenced inside an
	// escaping FuncLit escapes with it.
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		pc.lits = append(pc.lits, lit)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := objectOf(pc.pass.Info, id); obj != nil {
					delete(st.live, obj)
				}
			}
			return true
		})
		return false
	})
}

// checkExit reports every buffer still live when the function exits.
func (pc *poolChecker) checkExit(st *poolState, at token.Pos) {
	for _, pos := range st.live {
		pc.report(pos, "pooled buffer from event.GetBuf is not released with event.PutBuf on the exit path at %s",
			pc.pass.Fset.Position(at))
	}
}

// checkLoopIteration reports buffers whose owner variable is declared inside
// the loop body and still live when the iteration ends — they leak once per
// iteration. Ownership transferred to a variable declared outside the body
// (accumulators like `out = append(out, pkt)`) legitimately survives.
func (pc *poolChecker) checkLoopIteration(st *poolState, body *ast.BlockStmt) {
	for o, pos := range st.live {
		if o.Pos() >= body.Pos() && o.Pos() <= body.End() {
			pc.report(pos, "pooled buffer from event.GetBuf leaks across loop iterations (not released before the body ends)")
		}
	}
}

func (pc *poolChecker) report(acquire token.Pos, format string, args ...any) {
	if pc.reported[acquire] {
		return
	}
	pc.reported[acquire] = true
	pc.pass.Reportf(acquire, format, args...)
}

// dropAcquiredWithin forgets owners acquired inside node: loop-body
// acquisitions were already checked per-iteration and must not re-report at
// function exit.
func (pc *poolChecker) dropAcquiredWithin(st *poolState, node ast.Node) {
	for o, pos := range st.live {
		if pos >= node.Pos() && pos <= node.End() {
			delete(st.live, o)
		}
	}
}

// nilComparedObj recognizes the conditions `x == nil` and `x != nil` (either
// operand order) over a plain identifier. It returns the identifier's object
// and whether x is known nil on the then-branch (`== nil`) as opposed to the
// else-branch (`!= nil`); (nil, false) for any other condition shape.
func nilComparedObj(info *types.Info, cond ast.Expr) (obj types.Object, nilInThen bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	return objectOf(info, id), be.Op == token.EQL
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// findGetBufCall returns the first event.GetBuf call inside e, if any.
func findGetBufCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && eventFunc(calleeObj(info, c), "GetBuf") {
			found = c
			return false
		}
		return true
	})
	return found
}

// objectOf resolves an identifier to its object (use or def).
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isPacketRelease reports whether call is batch.Packet.Release.
func isPacketRelease(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Packet" || named.Obj().Pkg() == nil {
		return false
	}
	return isBatchPath(named.Obj().Pkg().Path())
}

// isAdoptCall reports whether call is an ownership-transferring Adopt*
// method on a faultnet or shmring type. The naming convention is
// load-bearing: any method of those packages whose name starts with "Adopt"
// takes over the pooled buffers among its arguments — faultnet's journal
// keeps the snapshot until Release, the ring's AdoptWriteFrame stages the
// payload and returns the buffer to the pool itself — so no PutBuf follows.
func isAdoptCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Adopt") {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return isFaultnetPath(path) || isShmringPath(path)
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit, testing's Fatal/Fatalf/FailNow/Skip*.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		name := fn.Name()
		if pkg := fn.Pkg(); pkg != nil && fn.Type().(*types.Signature).Recv() == nil {
			switch pkg.Path() {
			case "os":
				return name == "Exit"
			case "log":
				return name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
					name == "Panic" || name == "Panicf" || name == "Panicln"
			case "runtime":
				return name == "Goexit"
			}
			return false
		}
		switch name {
		case "Fatal", "Fatalf", "FailNow", "SkipNow", "Skipf", "Skip":
			if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "testing" {
				return true
			}
		}
	}
	return false
}
