package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// WireStruct verifies the structural contract every wire-format struct must
// satisfy for a zero-allocation codec to be sound: the struct is fixed-size
// and pointer-free (no slices, maps, strings, pointers, interfaces, chans,
// funcs, or platform-sized ints), and the size computed from its field
// layout (encoding/binary rules: packed little-endian, blank padding fields
// included) equals the constant its EncodedSize method returns.
//
// Two kinds of types are checked: registered event payloads (identified by
// the `Kind() event.Kind` marker method), whose codecs are emitted by
// `go generate`, and hand-maintained event.WireCodec implementors such as
// transport frame headers. For the former, a size mismatch means
// codec_gen.go has drifted from the struct definition; for the latter, that
// EncodedSize/AppendTo/DecodeFrom were not updated together with the fields.
// Either way it is caught here at the type level, before `go generate` or
// any runtime registration check runs.
var WireStruct = &Analyzer{
	Name: "wirestruct",
	Doc:  "wire-format structs (event payloads and WireCodec implementors) must be fixed-size, pointer-free, and agree with their EncodedSize",
	Run:  runWireStruct,
}

func runWireStruct(pass *Pass) error {
	evPkg := eventPackage(pass)
	if evPkg == nil {
		return nil
	}
	kindType := scopeType(evPkg, "Kind")
	codec := scopeIface(evPkg, "WireCodec")
	if kindType == nil && codec == nil {
		return nil
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		isEvent := kindType != nil && implementsEvent(named, kindType)
		isCodec := codec != nil && types.Implements(types.NewPointer(named), codec)
		if !isEvent && !isCodec {
			continue
		}
		checkWireStruct(pass, tn, named, st, isEvent)
	}
	return nil
}

// scopeIface looks up a named interface type in pkg's scope.
func scopeIface(pkg *types.Package, name string) *types.Interface {
	t := scopeType(pkg, name)
	if t == nil {
		return nil
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// scopeType looks up a named type in pkg's scope.
func scopeType(pkg *types.Package, name string) types.Type {
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	return tn.Type()
}

// implementsEvent reports whether *T declares the event marker method
// `Kind() event.Kind`, identifying T as a registered wire payload.
func implementsEvent(named *types.Named, kindType types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		fn := ms.At(i).Obj().(*types.Func)
		if fn.Name() != "Kind" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			types.Identical(sig.Results().At(0).Type(), kindType) {
			return true
		}
	}
	return false
}

func checkWireStruct(pass *Pass, tn *types.TypeName, named *types.Named, st *types.Struct, generated bool) {
	size, ok := checkFields(pass, tn, st, tn.Name())
	if !ok {
		return // field problems already reported; size is meaningless
	}

	got, decl, found := encodedSizeConst(pass, named)
	if !found {
		return // method generated elsewhere or embedded; nothing to compare
	}
	if decl == nil {
		return // non-constant body already reported by encodedSizeConst
	}
	if got != size {
		if generated {
			pass.Reportf(decl.Pos(),
				"wire struct %s: EncodedSize returns %d but the field layout is %d bytes — codec_gen.go drifted, rerun go generate ./...",
				tn.Name(), got, size)
		} else {
			pass.Reportf(decl.Pos(),
				"wire struct %s: EncodedSize returns %d but the field layout is %d bytes — the codec drifted, update EncodedSize/AppendTo/DecodeFrom together with the fields",
				tn.Name(), got, size)
		}
	}
}

// checkFields validates every field recursively and returns the packed wire
// size. ok is false if any field has a non-fixed-size type.
func checkFields(pass *Pass, tn *types.TypeName, st *types.Struct, path string) (int, bool) {
	total, ok := 0, true
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fpath := path + "." + f.Name()
		n, fixed := wireSizeOf(f.Type())
		if !fixed {
			pass.Reportf(f.Pos(),
				"wire struct %s: field %s has non-fixed-size type %s (slices, maps, strings, pointers, interfaces, and platform-sized ints are forbidden in event payloads)",
				tn.Name(), fpath, f.Type())
			ok = false
			continue
		}
		total += n
	}
	return total, ok
}

// wireSizeOf computes the packed encoding/binary size of t, or ok=false if t
// has no fixed wire size.
func wireSizeOf(t types.Type) (int, bool) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Bool, types.Int8, types.Uint8:
			return 1, true
		case types.Int16, types.Uint16:
			return 2, true
		case types.Int32, types.Uint32, types.Float32:
			return 4, true
		case types.Int64, types.Uint64, types.Float64, types.Complex64:
			return 8, true
		case types.Complex128:
			return 16, true
		}
		return 0, false // int, uint, uintptr, string, unsafe.Pointer
	case *types.Array:
		n, ok := wireSizeOf(u.Elem())
		return int(u.Len()) * n, ok
	case *types.Struct:
		total := 0
		for i := 0; i < u.NumFields(); i++ {
			n, ok := wireSizeOf(u.Field(i).Type())
			if !ok {
				return 0, false
			}
			total += n
		}
		return total, true
	}
	return 0, false
}

// encodedSizeConst finds T's EncodedSize method declaration in this package
// and extracts the constant it returns. found is false when the declaration
// is not in this package; a declaration with a non-constant body is reported
// and returned as (0, nil, true).
func encodedSizeConst(pass *Pass, named *types.Named) (size int, decl *ast.FuncDecl, found bool) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "EncodedSize" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !sameNamed(recv.Type(), named) {
				continue
			}
			v, ok := constReturn(pass, fd)
			if !ok {
				pass.Reportf(fd.Pos(),
					"wire struct %s: EncodedSize must return a single integer constant (generated codec contract)",
					named.Obj().Name())
				return 0, nil, true
			}
			return v, fd, true
		}
	}
	return 0, nil, false
}

func sameNamed(t types.Type, named *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// constReturn extracts the integer constant from a body of the exact form
// `return <const-expr>`.
func constReturn(pass *Pass, fd *ast.FuncDecl) (int, bool) {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return 0, false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return 0, false
	}
	tv, ok := pass.Info.Types[ret.Results[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return 0, false
	}
	return int(v), true
}
