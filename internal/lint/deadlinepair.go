package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeadlinePair enforces the arm/clear discipline on connection deadlines —
// the stale-deadline class where a bounded phase (a dial handshake) arms
// SetReadDeadline/SetReadTimeout and an early return leaks the armed
// deadline into a phase that expects an unbounded connection, killing it
// with a spurious timeout.
//
// Tracked calls are methods named SetReadDeadline/SetReadTimeout (kind
// "read") and SetWriteDeadline/SetWriteTimeout (kind "write") on a plain
// identifier receiver — a parameter or local connection. A call whose
// argument is not provably zero (the literal 0, or time.Time{}) arms the
// deadline; a zero argument clears it.
//
// The discipline is consistency-scoped per function and kind: a function
// that never clears a kind is presumed to arm it for a phase that outlives
// the function (a session-lifetime write bound, an idle-reap horizon) and is
// left alone. A function that clears the kind on some path has opted into
// local pairing, and then every path out of the function must leave the
// deadline disposed:
//
//   - cleared (a zero-argument Set of the same kind), or
//   - re-armed and then disposed later on the same path, or
//   - the connection Close()d, or
//   - the connection handed off — passed as an argument in a statement-level,
//     go, or defer call, transferring the discipline to the callee.
//
// The error return of a failed Set call itself is exempt: the deadline never
// took effect. Branches merge conservatively (armed on any branch is armed
// after the merge), so a path that forgets the clear is reported even when a
// sibling path remembers it.
var DeadlinePair = &Analyzer{
	Name: "deadlinepair",
	Doc:  "a function that clears a connection deadline must clear, close, or hand off on every path out — no early return may leak an armed deadline",
	Run:  runDeadlinePair,
}

// dlKind distinguishes the two deadline families.
type dlKind int

const (
	dlRead dlKind = iota
	dlWrite
)

func (k dlKind) String() string {
	if k == dlRead {
		return "read"
	}
	return "write"
}

// dlMethod resolves a tracked method name to its kind.
func dlMethod(name string) (dlKind, bool) {
	switch name {
	case "SetReadDeadline", "SetReadTimeout":
		return dlRead, true
	case "SetWriteDeadline", "SetWriteTimeout":
		return dlWrite, true
	}
	return 0, false
}

func runDeadlinePair(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkDeadlineFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkDeadlineFunc(pass, fn.Body)
				return false // the literal's own Inspect already covered nested bodies
			}
			return true
		})
	}
	return nil
}

// dlKey is one tracked (receiver, kind) obligation.
type dlKey struct {
	recv *types.Var
	kind dlKind
}

// dlState is the armed-deadline state along one control-flow path.
type dlState map[dlKey]token.Pos // key -> position of the live arm

func (s dlState) clone() dlState {
	c := make(dlState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge folds o into s: armed on either path is armed after the merge (the
// earlier arm position wins for stable diagnostics).
func (s dlState) merge(o dlState) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

type dlChecker struct {
	pass *Pass
	// active is the set of (receiver, kind) pairs this function clears
	// somewhere — the opt-in for local pairing.
	active map[dlKey]bool
	// deferred holds keys disposed by a defer (Close, clear, or handoff);
	// they are considered disposed at every return.
	deferred map[dlKey]bool
}

func checkDeadlineFunc(pass *Pass, body *ast.BlockStmt) {
	c := &dlChecker{pass: pass, active: make(map[dlKey]bool), deferred: make(map[dlKey]bool)}
	c.collectActive(body)
	if len(c.active) == 0 {
		return
	}
	c.walkStmts(body.List, make(dlState))
}

// collectActive finds the zero-argument Set calls that opt a (receiver,
// kind) pair into local pairing. Function literals keep their own scope.
func (c *dlChecker) collectActive(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, zero, ok := c.trackedCall(call)
		if ok && zero {
			c.active[key] = true
		}
		return true
	})
}

// trackedCall matches recv.SetXxx(arg) for a tracked method on an identifier
// receiver, reporting the obligation key and whether the argument is the
// provable zero (clear).
func (c *dlChecker) trackedCall(call *ast.CallExpr) (dlKey, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return dlKey{}, false, false
	}
	kind, ok := dlMethod(sel.Sel.Name)
	if !ok {
		return dlKey{}, false, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return dlKey{}, false, false
	}
	v, ok := c.pass.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return dlKey{}, false, false
	}
	return dlKey{recv: v, kind: kind}, isZeroDeadline(c.pass, call.Args[0]), true
}

// isZeroDeadline reports whether expr is a provable "no deadline" argument:
// the constant 0 or a zero time.Time composite literal.
func isZeroDeadline(pass *Pass, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil {
		return tv.Value.String() == "0"
	}
	if cl, ok := expr.(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
		if tv, ok := pass.Info.Types[cl]; ok {
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
			}
		}
	}
	return false
}

// walkStmts interprets a statement list, threading the armed state through
// and reporting at returns that leak an armed deadline. It returns the state
// at the fall-through exit of the list.
func (c *dlChecker) walkStmts(stmts []ast.Stmt, state dlState) dlState {
	for _, stmt := range stmts {
		state = c.walkStmt(stmt, state)
	}
	return state
}

func (c *dlChecker) walkStmt(stmt ast.Stmt, state dlState) dlState {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.applyExpr(s.X, state, true)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.applyExpr(rhs, state, false)
		}
	case *ast.GoStmt:
		c.applyExpr(s.Call, state, true)
	case *ast.DeferStmt:
		// A deferred disposal covers every later return; it does not change
		// the state at the point of the defer statement itself.
		if key, zero, ok := c.trackedCall(s.Call); ok && zero && c.active[key] {
			c.deferred[key] = true
		}
		for key := range c.disposedBy(s.Call) {
			c.deferred[key] = true
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.applyExpr(r, state, false)
		}
		for key, armPos := range state {
			if c.deferred[key] {
				continue
			}
			c.pass.Reportf(s.Pos(),
				"return leaks the %s deadline armed on %s at %s: clear it, close %s, or hand it off on this path (deadlinepair is opted in by the zero-clear elsewhere in this function)",
				key.kind, key.recv.Name(), c.pass.Fset.Position(armPos), key.recv.Name())
		}
	case *ast.IfStmt:
		if s.Init != nil {
			state = c.walkStmt(s.Init, state)
		}
		c.applyExpr(s.Cond, state, false)
		// The direct error-return of a failed Set is exempt: the arm never
		// took effect. Pattern: if err := recv.Set...; err != nil { return }.
		exempt := c.setErrGuard(s)
		thenState := state.clone()
		if exempt != (dlKey{}) {
			delete(thenState, exempt)
		}
		thenOut := c.walkStmts(s.Body.List, thenState)
		elseState := state.clone()
		var elseOut dlState
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseOut = c.walkStmts(e.List, elseState)
		case *ast.IfStmt:
			elseOut = c.walkStmt(e, elseState)
		default:
			elseOut = elseState
		}
		if endsInJump(s.Body) {
			return elseOut
		}
		thenOut.merge(elseOut)
		return thenOut
	case *ast.ForStmt:
		if s.Init != nil {
			state = c.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.applyExpr(s.Cond, state, false)
		}
		bodyOut := c.walkStmts(s.Body.List, state.clone())
		if s.Post != nil {
			bodyOut = c.walkStmt(s.Post, bodyOut)
		}
		state.merge(bodyOut)
		return state
	case *ast.RangeStmt:
		c.applyExpr(s.X, state, false)
		bodyOut := c.walkStmts(s.Body.List, state.clone())
		state.merge(bodyOut)
		return state
	case *ast.SwitchStmt:
		if s.Init != nil {
			state = c.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.applyExpr(s.Tag, state, false)
		}
		return c.walkClauses(s.Body, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state = c.walkStmt(s.Init, state)
		}
		return c.walkClauses(s.Body, state)
	case *ast.SelectStmt:
		return c.walkClauses(s.Body, state)
	case *ast.BlockStmt:
		return c.walkStmts(s.List, state)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, state)
	}
	return state
}

// walkClauses runs each case/comm clause from the pre-switch state and
// merges the survivors.
func (c *dlChecker) walkClauses(body *ast.BlockStmt, state dlState) dlState {
	out := state.clone()
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				stmts = append([]ast.Stmt{cl.Comm}, cl.Body...)
			} else {
				stmts = cl.Body
			}
		}
		out.merge(c.walkStmts(stmts, state.clone()))
	}
	return out
}

// applyExpr scans expr for tracked calls, closes, and handoffs, mutating
// state. statementLevel marks statement-position calls, where passing the
// receiver as an argument counts as a handoff.
func (c *dlChecker) applyExpr(expr ast.Expr, state dlState, statementLevel bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope, analyzed on its own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.applyCall(call, state, statementLevel)
		return true
	})
}

// applyCall folds one call's effect into state.
func (c *dlChecker) applyCall(call *ast.CallExpr, state dlState, statementLevel bool) {
	if key, zero, ok := c.trackedCall(call); ok {
		if !c.active[key] {
			return
		}
		if zero {
			delete(state, key)
		} else {
			state[key] = call.Pos()
		}
		return
	}
	for key := range c.disposedBy(call) {
		if statementLevel || isCloseCall(call) {
			delete(state, key)
		}
	}
}

// disposedBy reports the obligations call disposes of: a Close on the
// tracked receiver clears all its kinds; any call taking the receiver as an
// argument is a handoff candidate.
func (c *dlChecker) disposedBy(call *ast.CallExpr) map[dlKey]bool {
	out := make(map[dlKey]bool)
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
				for key := range c.active {
					if key.recv == v {
						out[key] = true
					}
				}
			}
		}
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
				for key := range c.active {
					if key.recv == v {
						out[key] = true
					}
				}
			}
		}
	}
	return out
}

// isCloseCall reports whether call is a method call named Close.
func isCloseCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Close"
}

// setErrGuard matches `if err := recv.SetXxx(d); err != nil {...}` and
// returns the obligation whose failed arm the then-branch may ignore.
func (c *dlChecker) setErrGuard(s *ast.IfStmt) dlKey {
	assign, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return dlKey{}
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return dlKey{}
	}
	key, zero, ok := c.trackedCall(call)
	if !ok || zero {
		return dlKey{}
	}
	return key
}

// endsInJump reports whether the block's last statement unconditionally
// leaves the enclosing flow (return, panic, continue, break, goto).
func endsInJump(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
