package lint

// All returns the project's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		WireStruct, PoolCheck, UseAfterRelease, KindSwitch,
		AtomicField, DeadlinePair, FrameKind,
	}
}

// ByName resolves a comma-separated analyzer selection; an empty selection
// means All. Unknown names return nil and the offending name.
func ByName(names []string) ([]*Analyzer, string) {
	if len(names) == 0 {
		return All(), ""
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
