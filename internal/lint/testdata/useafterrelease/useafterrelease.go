// Package useafterrelease holds fixtures for the useafterrelease analyzer:
// once a pooled buffer or Packet goes back to the pool, no alias of it may
// be read, written, or retained.
package useafterrelease

import (
	"repro/internal/batch"
	"repro/internal/event"
)

func work(b []byte) {}

// useAfterPut reads the buffer after returning it to the pool.
func useAfterPut() byte {
	buf := event.GetBuf(8)
	buf = append(buf, 1)
	event.PutBuf(buf)
	return buf[0] // want `used after being returned to the pool`
}

// writeAfterPut writes through the released buffer.
func writeAfterPut() {
	buf := event.GetBuf(8)
	event.PutBuf(buf)
	buf[0] = 1 // want `used after being returned to the pool`
}

// doubleRelease returns the same buffer twice.
func doubleRelease() {
	buf := event.GetBuf(8)
	event.PutBuf(buf)
	event.PutBuf(buf) // want `used after being returned to the pool`
}

// payloadAfterRelease reads a packet's payload after Release.
func payloadAfterRelease(pkt batch.Packet) int {
	pkt.Release()
	return len(pkt.Buf) // want `used after being returned to the pool`
}

// retained stores the buffer into a structure that outlives the call and
// still releases it.
type keeper struct {
	b []byte
}

func retained(k *keeper) {
	buf := event.GetBuf(8)
	k.b = buf // want `stored into a structure`
	event.PutBuf(buf)
}

// retainedChan sends the buffer away and still releases it.
func retainedChan(ch chan []byte) {
	buf := event.GetBuf(8)
	ch <- buf // want `sent on a channel`
	event.PutBuf(buf)
}

// retainedComposite wraps the buffer in a packet and also releases the raw
// slice — Release on the packet would then double-free.
func retainedComposite() batch.Packet {
	buf := event.GetBuf(8)
	p := batch.Packet{Buf: buf} // want `stored into a composite literal`
	event.PutBuf(buf)
	return p
}

// --- clean patterns below: no findings expected ---

// guardOK releases only on the error branch; the later use is on the other
// path.
func guardOK(ok bool) []byte {
	buf := event.GetBuf(8)
	if !ok {
		event.PutBuf(buf)
		return nil
	}
	return buf
}

// rebindOK reassigns the variable before reusing it.
func rebindOK() []byte {
	buf := event.GetBuf(8)
	event.PutBuf(buf)
	buf = event.GetBuf(16)
	return buf
}

// lastUseOK releases as the final touch.
func lastUseOK() {
	buf := event.GetBuf(8)
	work(buf)
	event.PutBuf(buf)
}

// transferOK stores without releasing — plain ownership transfer.
func transferOK(k *keeper) {
	k.b = event.GetBuf(8)
}

// loopOK releases at the end of each iteration; the next iteration's use
// follows a rebind.
func loopOK(n int) {
	for i := 0; i < n; i++ {
		buf := event.GetBuf(8)
		work(buf)
		event.PutBuf(buf)
	}
}
