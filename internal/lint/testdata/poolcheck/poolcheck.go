// Package poolcheck holds fixtures for the poolcheck analyzer: every
// event.GetBuf must be matched by PutBuf/Release or an ownership transfer
// on every control-flow path.
package poolcheck

import (
	"errors"

	"repro/internal/batch"
	"repro/internal/event"
	"repro/internal/faultnet"
	"repro/internal/transport/shmring"
)

var errBoom = errors.New("boom")

func cond() bool { return false }

func work(b []byte) {}

// leakOnEarlyReturn forgets the buffer on the error path — the exact bug
// class from internal/cosim's transport loop.
func leakOnEarlyReturn() error {
	buf := event.GetBuf(64) // want `not released`
	if cond() {
		return errBoom
	}
	event.PutBuf(buf)
	return nil
}

// leakAtEnd never releases at all.
func leakAtEnd() int {
	buf := event.GetBuf(8) // want `not released`
	return len(buf)
}

// discarded drops the result on the floor.
func discarded() {
	event.GetBuf(8) // want `discarded`
}

// discardedBlank can never be released either.
func discardedBlank() {
	_ = event.GetBuf(8) // want `discarded`
}

// overwritten loses the only reference to a live buffer.
func overwritten() {
	buf := event.GetBuf(8) // want `overwritten without PutBuf`
	buf = nil
	_ = buf
}

// loopLeak leaks one buffer per iteration.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		buf := event.GetBuf(8) // want `leaks across loop iterations`
		work(buf)
	}
}

// switchLeak releases in one arm but not the default.
func switchLeak(k int) {
	buf := event.GetBuf(8) // want `not released`
	switch k {
	case 0:
		event.PutBuf(buf)
	default:
	}
}

// multiValue buries the acquisition where no owner can be tracked.
func multiValue() {
	n, err := consume(event.GetBuf(8)) // want `multi-value`
	_, _ = n, err
}

func consume(b []byte) (int, error) { return len(b), nil }

// --- clean patterns below: no findings expected ---

// balanced is the canonical acquire/use/release sequence.
func balanced() {
	buf := event.GetBuf(32)
	work(buf)
	event.PutBuf(buf)
}

// branches releases on both arms.
func branches() {
	buf := event.GetBuf(8)
	if cond() {
		event.PutBuf(buf)
	} else {
		event.PutBuf(buf)
	}
}

// errorPath releases before every return, like internal/wire's decoders.
func errorPath() error {
	buf := event.GetBuf(16)
	if cond() {
		event.PutBuf(buf)
		return errBoom
	}
	event.PutBuf(buf)
	return nil
}

// deferred releases via defer, covering every exit path.
func deferred() {
	buf := event.GetBuf(16)
	defer event.PutBuf(buf)
	work(buf)
}

// deferClosure releases through a deferred closure.
func deferClosure() {
	buf := event.GetBuf(8)
	defer func() { event.PutBuf(buf) }()
	work(buf)
}

// appended follows ownership through append back into the same variable.
func appended() {
	buf := event.GetBuf(8)
	buf = append(buf, 1, 2, 3)
	event.PutBuf(buf)
}

// encoded follows ownership through an AppendTo-style call result.
func encoded(ev event.Event) {
	b := ev.AppendTo(event.GetBuf(ev.EncodedSize())[:0])
	event.PutBuf(b)
}

// transferred hands the buffer to a Packet; Release returns it to the pool.
func transferred() {
	buf := event.GetBuf(32)
	pkt := batch.Packet{Buf: buf}
	pkt.Release()
}

// escapes transfers ownership to the caller — the documented escape.
func escapes() []byte {
	return event.GetBuf(8)
}

// escapesVar transfers ownership to the caller through a local.
func escapesVar() []byte {
	buf := event.GetBuf(8)
	return buf
}

type holder struct {
	b []byte
}

// storedInField transfers ownership to a long-lived structure.
func storedInField(h *holder) {
	h.b = event.GetBuf(8)
}

// sentAway transfers ownership over a channel.
func sentAway(ch chan []byte) {
	buf := event.GetBuf(8)
	ch <- buf
}

// goroutineEscape hands the buffer to a goroutine.
func goroutineEscape() {
	buf := event.GetBuf(8)
	go work(buf)
}

// perIteration releases inside each iteration — the trace.ReadCycle shape.
func perIteration(rows [][]byte) {
	for range rows {
		buf := event.GetBuf(8)
		event.PutBuf(buf)
	}
}

// accumulator transfers loop-acquired buffers to an outer accumulator.
func accumulator(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		buf := event.GetBuf(8)
		out = append(out, buf)
	}
	return out
}

// reads only inspects the buffer; bool/int results do not adopt ownership.
func reads() {
	buf := event.GetBuf(8)
	n := len(buf)
	ok := cap(buf) >= n
	_ = ok
	event.PutBuf(buf)
}

// terminalPath: paths that cannot return need no release.
func terminalPath() {
	buf := event.GetBuf(8)
	if cond() {
		panic("unreachable state")
	}
	event.PutBuf(buf)
}

// adoptedByJournal hands the snapshot to faultnet's journal: Adopt* methods
// take over pooled arguments (released later by Journal.Release), so the
// fault-injection wrapper needs no PutBuf and no lint:ignore.
func adoptedByJournal(j *faultnet.Journal, p []byte) {
	snap := event.GetBuf(len(p))
	snap = append(snap, p...)
	j.AdoptFrame("write", 0, snap)
}

// adoptedByRing stages the payload through the shared-memory ring's
// AdoptWriteFrame: the ring copies the bytes into the mapped segment and
// returns the buffer to the pool itself, so — like faultnet's journal — the
// caller needs no PutBuf and no lint:ignore.
func adoptedByRing(c *shmring.Conn, p []byte) {
	buf := event.GetBuf(len(p))
	buf = append(buf, p...)
	c.AdoptWriteFrame(1, buf)
}

type sink struct{}

func (sink) AdoptBuf(b []byte) {}

// adoptNamesake: the Adopt* convention is scoped to faultnet and shmring
// types; a lookalike method elsewhere does not transfer ownership.
func adoptNamesake(s sink) {
	buf := event.GetBuf(8) // want `not released`
	s.AdoptBuf(buf)
}

// nilGuardedRelease acquires conditionally and releases under a nil guard —
// the transport.ReadFrame error-path shape. GetBuf never returns nil, so
// the guarded PutBuf covers every acquiring path.
func nilGuardedRelease(n int) {
	var buf []byte
	if n > 0 {
		buf = event.GetBuf(n)
	}
	if buf != nil {
		event.PutBuf(buf)
	}
}

// nilGuardedWrongBranch releases on the branch where the buffer is provably
// nil: the live paths still leak.
func nilGuardedWrongBranch(n int) {
	buf := event.GetBuf(n) // want `not released`
	if buf == nil {
		event.PutBuf(buf)
	}
}
