// Package atomicfield holds fixtures for the atomicfield analyzer: words
// accessed through sync/atomic must never be accessed non-atomically, and
// unsafe atomic overlays must prove their alignment.
package atomicfield

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"
)

// counters mixes an atomic field with plain accesses.
type counters struct {
	hits  uint64
	cold  uint64
	ready uint32
}

// bump accesses hits atomically — the canonical access.
func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreUint32(&c.ready, 1)
}

// snapshot reads hits without the atomic: a data race with bump.
func snapshot(c *counters) uint64 {
	return c.hits // want `non-atomic access to hits`
}

// reset writes both fields; only cold is clean (never accessed atomically).
func reset(c *counters) {
	c.hits = 0 // want `non-atomic access to hits`
	c.cold = 0
	c.ready = 0 // want `non-atomic access to ready`
}

// loadAll is fully atomic — no findings.
func loadAll(c *counters) (uint64, uint32) {
	return atomic.LoadUint64(&c.hits), atomic.LoadUint32(&c.ready)
}

// Control-word offsets within a mapped page. offSeq and offFlags are used as
// overlay offsets; offLen is plain data.
const (
	offSeq   = 0
	offFlags = 8
	offBad   = 12
	offLen   = 16
)

// u64at is an overlay helper in the shmring shape: the conversion obligation
// moves to its call sites.
func u64at(b []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&b[off]))
}

// words overlays the control page; offSeq and offFlags are aligned.
func words(mem []byte) (*atomic.Uint64, *atomic.Uint64) {
	return u64at(mem, offSeq), u64at(mem, offFlags)
}

// misaligned overlays a 64-bit word on a 4-byte boundary.
func misaligned(mem []byte) *atomic.Uint64 {
	return u64at(mem, offBad) // want `offset 12 breaks the %8 alignment`
}

// unproven passes a runtime offset the analyzer cannot check.
func unproven(mem []byte, off int) *atomic.Uint64 {
	return u64at(mem, off) // want `offset is not a constant`
}

// inline overlays without the helper; the aligned one is fine, the direct
// non-indexed one has no provable offset at all.
func inline(mem []byte, p *byte) (*atomic.Uint32, *atomic.Uint32) {
	a := (*atomic.Uint32)(unsafe.Pointer(&mem[offLen]))
	b := (*atomic.Uint32)(unsafe.Pointer(p)) // want `without a provable offset`
	return a, b
}

// sneakyRead reads the word behind offSeq with encoding/binary, bypassing
// the atomic the rest of the package uses for it.
func sneakyRead(mem []byte) uint64 {
	return binary.LittleEndian.Uint64(mem[offSeq:]) // want `offSeq names an atomic word`
}

// plainLen uses offLen outside an overlay; offLen is only an overlay offset
// via the aligned inline conversion above, so this is flagged too.
func plainLen(mem []byte) byte {
	return mem[offLen] // want `offLen names an atomic word`
}
