// Package framekind holds fixtures for the framekind analyzer: a switch
// dispatching on a transport frame type must name every declared Frame* kind
// explicitly — the default arm only catches corruption and earns no coverage
// credit.
package framekind

import (
	"fmt"

	"repro/internal/transport"
)

// partial handles the two data frames and trusts default for the rest: the
// classic latent bug — a new control frame would silently land in the
// corruption path.
func partial(kind uint8, payload []byte) error {
	switch kind { // want `covers 2 of 14 frame kinds`
	case transport.FramePacket:
		return nil
	case transport.FrameItems:
		return nil
	default:
		return fmt.Errorf("unexpected frame type %d", kind)
	}
}

// exhaustive names every kind; grouped case arms are fine, and the default
// arm stays as the corruption path.
func exhaustive(kind uint8) string {
	switch kind {
	case transport.FrameHello, transport.FrameWelcome:
		return "handshake"
	case transport.FramePacket, transport.FrameItems:
		return "data"
	case transport.FrameEnd, transport.FrameDone, transport.FrameVerdict:
		return "teardown"
	case transport.FrameCredit:
		return "flow"
	case transport.FrameErrorInfo:
		return "error"
	case transport.FrameResume, transport.FrameResumeOK:
		return "resume"
	case transport.FrameStats, transport.FrameDrain, transport.FrameRedirect:
		return "fleet"
	default:
		return "corrupt"
	}
}

// rejecting sites still name every kind: the rejected set shares the error
// arm, so adding a kind forces a decision here too.
func rejecting(kind uint8, payload []byte) ([]byte, error) {
	switch kind {
	case transport.FrameItems:
		return payload, nil
	case transport.FrameHello, transport.FrameWelcome, transport.FramePacket,
		transport.FrameEnd, transport.FrameCredit, transport.FrameVerdict,
		transport.FrameDone, transport.FrameErrorInfo, transport.FrameResume,
		transport.FrameResumeOK, transport.FrameStats, transport.FrameDrain,
		transport.FrameRedirect:
		return nil, fmt.Errorf("frame type %d not valid here", kind)
	default:
		return nil, fmt.Errorf("corrupt frame type %d", kind)
	}
}

// almostDone misses exactly one kind — the message names it.
func almostDone(kind uint8) bool {
	switch kind { // want `missing FrameRedirect`
	case transport.FrameHello, transport.FrameWelcome, transport.FramePacket,
		transport.FrameItems, transport.FrameEnd, transport.FrameCredit,
		transport.FrameVerdict, transport.FrameDone, transport.FrameErrorInfo,
		transport.FrameResume, transport.FrameResumeOK, transport.FrameStats,
		transport.FrameDrain:
		return true
	}
	return false
}

// notADispatch switches on a uint8 that never names a Frame constant: out of
// scope, even with sparse coverage.
func notADispatch(b uint8) bool {
	switch b {
	case 0x0a, 0x0d:
		return true
	}
	return false
}

// localByte switches on a byte alias with unrelated constants: also out of
// scope.
const sep byte = ';'

func localByte(b byte) bool {
	switch b {
	case sep:
		return true
	}
	return false
}
