// Package ignorebad holds fixtures for rejected //lint:ignore directives:
// no reason, unknown analyzer, and a directive that suppresses nothing. The
// driver reports each as a finding and the underlying diagnostics survive.
// (Checked programmatically — the driver findings land on the directive's
// own comment line, where a want comment cannot sit.)
package ignorebad

import "repro/internal/event"

// noReason: unjustified ignores are rejected and do not suppress.
func noReason(k event.Kind) bool {
	//lint:ignore kindswitch
	switch k {
	case event.KindTrap:
		return true
	}
	return false
}

// unknownAnalyzer: a typo'd analyzer name is rejected and does not suppress.
func unknownAnalyzer(k event.Kind) bool {
	//lint:ignore kindswich partial dispatch is fine here
	switch k {
	case event.KindTrap:
		return true
	}
	return false
}

// unused: a directive that matches no finding is itself a finding.
func unused(k event.Kind) bool {
	//lint:ignore kindswitch this switch has a default already
	switch k {
	case event.KindTrap:
		return true
	default:
		return false
	}
}
