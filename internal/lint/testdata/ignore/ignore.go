// Package ignore holds fixtures for justified //lint:ignore suppression:
// a well-formed directive with a reason silences exactly one line.
package ignore

import "repro/internal/event"

// justifiedStandalone suppresses the finding on the next line.
func justifiedStandalone(k event.Kind) bool {
	//lint:ignore kindswitch replay only routes memory kinds; others are filtered upstream
	switch k {
	case event.KindLoad, event.KindStore, event.KindAtomic:
		return true
	}
	return false
}

// justifiedTrailing suppresses the finding on its own line.
func justifiedTrailing(k event.Kind) bool {
	switch k { //lint:ignore kindswitch trace path only ever sees traps
	case event.KindTrap:
		return true
	}
	return false
}

// unsuppressed still reports: the directives above do not leak here.
func unsuppressed(k event.Kind) bool {
	switch k { // want `covers 1 of 32 kinds`
	case event.KindTrap:
		return true
	}
	return false
}
