// Package deadlinepair holds fixtures for the deadlinepair analyzer: a
// function that clears a connection deadline on one path must dispose of it
// (clear, close, or hand off) on every path out.
package deadlinepair

import (
	"errors"
	"time"
)

// conn is a stand-in for a net.Conn / FrameTransport: deadlinepair matches
// the Set{Read,Write}{Deadline,Timeout} method names on any receiver.
type conn struct{}

func (*conn) SetReadDeadline(t time.Time) error  { return nil }
func (*conn) SetWriteDeadline(t time.Time) error { return nil }
func (*conn) SetReadTimeout(d time.Duration)     {}
func (*conn) SetWriteTimeout(d time.Duration)    {}
func (*conn) Close() error                       { return nil }
func (*conn) Handshake() error                   { return nil }

func dial() *conn     { return &conn{} }
func serve(c *conn)   {}
func observe(c *conn) {}

// leakyHandshake arms the read deadline for the handshake and clears it on
// the success path — but the error return leaks it armed: the next,
// deliberately unbounded read on the same conn dies with a spurious timeout.
func leakyHandshake(timeout time.Duration) (*conn, error) {
	c := dial()
	c.SetReadDeadline(time.Now().Add(timeout))
	if err := c.Handshake(); err != nil {
		return nil, err // want `return leaks the read deadline`
	}
	c.SetReadDeadline(time.Time{})
	return c, nil
}

// pairedHandshake disposes on every path: clear on success, Close on error.
func pairedHandshake(timeout time.Duration) (*conn, error) {
	c := dial()
	c.SetReadDeadline(time.Now().Add(timeout))
	if err := c.Handshake(); err != nil {
		c.Close()
		return nil, err
	}
	c.SetReadDeadline(time.Time{})
	return c, nil
}

// timeoutKnob exercises the seam-style Set*Timeout form with a leak on one
// of three paths.
func timeoutKnob(c *conn, d time.Duration) error {
	c.SetReadTimeout(d)
	if err := c.Handshake(); err != nil {
		if errors.Is(err, errFatal) {
			c.Close()
			return err
		}
		return err // want `return leaks the read deadline`
	}
	c.SetReadTimeout(0)
	return nil
}

var errFatal = errors.New("fatal")

// handoff passes the armed conn to another function in statement position:
// the discipline transfers with it.
func handoff(c *conn, d time.Duration) error {
	c.SetReadTimeout(d)
	if err := c.Handshake(); err != nil {
		serve(c)
		return err
	}
	c.SetReadTimeout(0)
	return nil
}

// valueHandoff binds the call result, so the conn has not left this
// function's control — the leak is still reported.
func valueHandoff(c *conn, d time.Duration) error {
	c.SetReadTimeout(d)
	if err := c.Handshake(); err != nil {
		err2 := wrap(c, err)
		return err2 // want `return leaks the read deadline`
	}
	c.SetReadTimeout(0)
	return nil
}

func wrap(c *conn, err error) error { return err }

// deferredClose is disposed at every return by the defer.
func deferredClose(d time.Duration) error {
	c := dial()
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(d))
	if err := c.Handshake(); err != nil {
		return err
	}
	c.SetReadDeadline(time.Time{})
	return nil
}

// persistentArm never clears: the write bound deliberately outlives the
// function, so the pairing discipline is not engaged for it.
func persistentArm(c *conn, d time.Duration) error {
	c.SetWriteTimeout(d)
	return c.Handshake()
}

// failedArm: the error return of the Set call itself is exempt — the
// deadline never took effect.
func failedArm(c *conn, d time.Duration) error {
	if err := c.SetReadDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	if err := c.Handshake(); err != nil {
		c.Close()
		return err
	}
	c.SetReadDeadline(time.Time{})
	return nil
}

// switchPaths: two arms dispose (clear, Close) but the no-match path falls
// through still armed, and the conservative merge keeps that alive.
func switchPaths(c *conn, d time.Duration, mode int) error {
	c.SetReadTimeout(d)
	switch mode {
	case 0:
		c.SetReadTimeout(0)
	case 1:
		c.Close()
	}
	return nil // want `return leaks the read deadline`
}

// selectLoop re-arms per iteration; the stop case returns without clearing.
func selectLoop(c *conn, d time.Duration, stop chan struct{}) error {
	for {
		c.SetReadTimeout(d)
		select {
		case <-stop:
			return nil // want `return leaks the read deadline`
		default:
			c.SetReadTimeout(0)
		}
	}
}

// loopBreak arms and clears around a bounded retry; the break path is
// re-cleared after the loop, so every return is clean.
func loopBreak(c *conn, d time.Duration) error {
	for i := 0; i < 3; i++ {
		c.SetReadTimeout(d)
		if c.Handshake() == nil {
			break
		}
		c.SetReadTimeout(0)
	}
	c.SetReadTimeout(0)
	return nil
}

// mixedKinds: the write kind is active and leaks on the early return; the
// read kind is armed but never cleared anywhere, so it stays exempt.
func mixedKinds(c *conn, d time.Duration) error {
	c.SetReadTimeout(d)
	c.SetWriteTimeout(d)
	if err := c.Handshake(); err != nil {
		return err // want `return leaks the write deadline`
	}
	c.SetWriteTimeout(0)
	return nil
}
