package wirestruct

import "repro/internal/event"

// Hand-maintained event.WireCodec implementors (no Kind method — these model
// transport frame headers, not registered event payloads) are held to the
// same structural contract: fixed-size, pointer-free, and an EncodedSize
// constant that matches the packed field layout.

// FrameHdr mirrors the v2 transport frame header: 4+1+1+2+4+8+4 = 24 bytes
// with the blank padding field counted.
type FrameHdr struct {
	Magic  uint32
	Type   uint8
	Flags  uint8
	_      [2]uint8
	Length uint32
	Seq    uint64
	Check  uint32
}

func (*FrameHdr) EncodedSize() int               { return 24 }
func (*FrameHdr) AppendTo(dst []byte) []byte     { return dst }
func (*FrameHdr) DecodeFrom([]byte) (int, error) { return 24, nil }

// PointerHdr smuggles heap-shaped fields into a codec struct.
type PointerHdr struct {
	Payload []byte    // want `non-fixed-size type`
	Next    *FrameHdr // want `non-fixed-size type`
}

func (*PointerHdr) EncodedSize() int               { return 0 }
func (*PointerHdr) AppendTo(dst []byte) []byte     { return dst }
func (*PointerHdr) DecodeFrom([]byte) (int, error) { return 0, nil }

// DriftedHdr's fields are 12 bytes but EncodedSize still claims 16 — the
// codec methods were not updated together with the struct.
type DriftedHdr struct {
	Magic  uint32
	Length uint32
	Extra  uint32
}

func (*DriftedHdr) EncodedSize() int { return 16 } // want `drifted`

func (*DriftedHdr) AppendTo(dst []byte) []byte     { return dst }
func (*DriftedHdr) DecodeFrom([]byte) (int, error) { return 16, nil }

// PartialHdr implements only part of the WireCodec interface, so it is not a
// codec struct and its fields are unconstrained.
type PartialHdr struct {
	Data []byte
}

func (*PartialHdr) EncodedSize() int { return 0 }

// ValueHdr exercises the interface check through the value/pointer method
// set: value receivers satisfy the pointer method set too.
type ValueHdr struct {
	A uint16
	B uint16
}

func (ValueHdr) EncodedSize() int               { return 4 }
func (ValueHdr) AppendTo(dst []byte) []byte     { return dst }
func (ValueHdr) DecodeFrom([]byte) (int, error) { return 4, nil }

var _ event.WireCodec = (*FrameHdr)(nil)
