// Package wirestruct holds fixtures for the wirestruct analyzer: structs
// with a `Kind() event.Kind` method are wire payloads and must be
// fixed-size, pointer-free, and agree with their EncodedSize constant.
package wirestruct

import "repro/internal/event"

// Good is fixed-size (8+4+4 = 16 bytes, blank padding included) and its
// EncodedSize agrees.
type Good struct {
	Cycle uint64
	PC    uint32
	_     [4]uint8
}

func (*Good) Kind() event.Kind { return event.KindTrap }
func (*Good) EncodedSize() int { return 16 }

// BadSlice smuggles a variable-size payload.
type BadSlice struct {
	Data []byte // want `non-fixed-size type`
	N    uint32
}

func (*BadSlice) Kind() event.Kind { return event.KindTrap }

// BadFields collects the other forbidden field classes.
type BadFields struct {
	P *uint64 // want `non-fixed-size type`
	S string  // want `non-fixed-size type`
	N int     // want `non-fixed-size type`
}

func (*BadFields) Kind() event.Kind { return event.KindTrap }

// Drifted's layout is 12 bytes but the generated method says 16.
type Drifted struct {
	Cycle uint64
	PC    uint32
}

func (*Drifted) Kind() event.Kind { return event.KindTrap }

func (*Drifted) EncodedSize() int { return 16 } // want `drifted`

// NonConst's EncodedSize is not a single constant return.
type NonConst struct {
	Cycle uint64
}

func (*NonConst) Kind() event.Kind { return event.KindTrap }

func (*NonConst) EncodedSize() int { // want `single integer constant`
	s := 8
	return s
}

// Nested embeds fixed-size structs; arrays of structs count too.
type Inner struct {
	A uint16
	B uint16
}

type Nested struct {
	Head  Inner
	Tail  [3]Inner
	Valid bool
}

func (*Nested) Kind() event.Kind { return event.KindLrSc }
func (*Nested) EncodedSize() int { return 17 }

// NotAnEvent has no Kind method, so its slice field is fine.
type NotAnEvent struct {
	Data []byte
}
