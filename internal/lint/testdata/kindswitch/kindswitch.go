// Package kindswitch holds fixtures for the kindswitch analyzer: every
// switch over event.Kind needs a default clause or full coverage of the 32
// kinds.
package kindswitch

import "repro/internal/event"

// nonExhaustive misses 30 kinds and has no default.
func nonExhaustive(k event.Kind) int {
	switch k { // want `covers 2 of 32 kinds`
	case event.KindTrap:
		return 1
	case event.KindLoad:
		return 2
	}
	return 0
}

// methodTag switches on a Kind produced by a method call.
func methodTag(c *event.InstrCommit) bool {
	switch c.Kind() { // want `covers 1 of 32 kinds`
	case event.KindInstrCommit:
		return true
	}
	return false
}

// withDefault is exempt: new kinds land in the default arm.
func withDefault(k event.Kind) int {
	switch k {
	case event.KindTrap:
		return 1
	default:
		return 0
	}
}

// exhaustive covers every kind explicitly.
func exhaustive(k event.Kind) bool {
	switch k {
	case event.KindInstrCommit, event.KindTrap, event.KindException,
		event.KindInterrupt, event.KindRedirect:
		return true
	case event.KindArchIntRegState, event.KindArchFpRegState,
		event.KindCSRState, event.KindArchVecRegState, event.KindVecCSRState,
		event.KindFpCSRState, event.KindHCSRState, event.KindDebugCSRState,
		event.KindTriggerCSRState:
		return true
	case event.KindLoad, event.KindStore, event.KindAtomic:
		return true
	case event.KindSbuffer, event.KindL1TLB, event.KindL2TLB,
		event.KindRefill, event.KindLrSc, event.KindCMO:
		return true
	case event.KindVecCommit, event.KindVecWriteback, event.KindVecMem,
		event.KindHTrap, event.KindGuestPageFault, event.KindVstartUpdate,
		event.KindHLoad, event.KindVirtualInterrupt,
		event.KindVecExceptionTrack:
		return true
	}
	return false
}

// otherType switches over a plain uint8 — out of scope.
func otherType(n uint8) bool {
	switch n {
	case 1:
		return true
	}
	return false
}

// noTag is a tagless switch — out of scope.
func noTag(k event.Kind) bool {
	switch {
	case k == event.KindTrap:
		return true
	}
	return false
}
