package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AtomicField guards the lock-free paths: a word that is ever accessed
// through sync/atomic is an atomic word forever. The analyzer enforces three
// rules per package:
//
//  1. Mixed access: a variable or struct field whose address is passed to a
//     sync/atomic function (atomic.LoadUint64(&s.n), atomic.AddUint32(&c.f, 1),
//     …) must never be read or written non-atomically anywhere in the
//     package. The race detector only catches the interleavings a test
//     happens to schedule; this catches the pattern itself.
//
//  2. Overlay alignment: a conversion that overlays an atomic type on raw
//     bytes — (*atomic.Uint64)(unsafe.Pointer(&b[off])), the shape shmring
//     uses for its mmap'd control words — must carry a provable alignment
//     justification: the offset must be a constant with off % align == 0
//     (align 8 for 64-bit words, 4 for 32-bit). Helpers that wrap the
//     conversion (shmring's u64at/u32at: a function whose body returns the
//     overlay of its own slice and offset parameters) shift the obligation
//     to their call sites, which must pass aligned constants. Anything else
//     needs a //lint:ignore atomicfield with the alignment argument spelled
//     out.
//
//  3. Overlay word purity: a named constant used as an atomic overlay offset
//     designates an atomic word in the mapped region; any other use of that
//     constant (an encoding/binary read, an index expression, offset
//     arithmetic) bypasses the atomic and is reported.
//
// The byte slice's own base alignment (mmap page alignment, a uint64-backed
// heap allocation) cannot be proven here and stays a documented obligation
// of the segment constructors.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "words accessed through sync/atomic (including unsafe overlays) must never be accessed non-atomically, and overlays must prove their alignment",
	Run:  runAtomicField,
}

// atomicAligns maps sync/atomic overlay target types to their required
// byte alignment.
var atomicAligns = map[string]int64{
	"Uint64":  8,
	"Int64":   8,
	"Uintptr": 8,
	"Pointer": 8,
	"Uint32":  4,
	"Int32":   4,
	"Bool":    1,
}

func runAtomicField(pass *Pass) error {
	af := &atomicFieldPass{
		Pass:         pass,
		atomicVars:   make(map[*types.Var][]token.Pos),
		atomicUses:   make(map[*ast.Ident]bool),
		overlaySpan:  nil,
		offsetConsts: make(map[*types.Const]token.Pos),
	}
	af.collectHelpers()
	for _, file := range pass.Files {
		af.collectAtomicAccesses(file)
	}
	for _, file := range pass.Files {
		af.reportMixedAccesses(file)
		af.reportConstMisuse(file)
	}
	return nil
}

type atomicFieldPass struct {
	*Pass
	// atomicVars maps each variable/field whose address reached a
	// sync/atomic function to the positions of those atomic accesses.
	atomicVars map[*types.Var][]token.Pos
	// atomicUses marks identifiers that appear inside a sanctioned atomic
	// access (the &x.f argument itself) so the mixed-access scan skips them.
	atomicUses map[*ast.Ident]bool
	// overlaySpan records the source extents of overlay conversions and
	// overlay-helper calls; offset-constant uses inside them are sanctioned.
	overlaySpan []span
	// offsetConsts maps named constants used as overlay offsets to the
	// position of the overlay establishing them as atomic words.
	offsetConsts map[*types.Const]token.Pos
	// helpers maps overlay-helper functions to the helper's shape.
	helpers map[*types.Func]overlayHelper
}

type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.lo && p <= s.hi }

// overlayHelper describes a recognized overlay-wrapping function: which
// parameter is the offset and what alignment its atomic target needs.
type overlayHelper struct {
	offsetParam int // index into the call's arguments
	align       int64
	target      string // atomic type name, for diagnostics
}

// collectHelpers finds overlay-helper functions: a FuncDecl whose body is a
// single return of (*atomic.T)(unsafe.Pointer(&p[off])) with p and off both
// parameters of the function.
func (af *atomicFieldPass) collectHelpers() {
	af.helpers = make(map[*types.Func]overlayHelper)
	for _, file := range af.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || len(fd.Body.List) != 1 {
				continue
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			conv, target, inner := af.overlayConversion(ret.Results[0])
			if conv == nil {
				continue
			}
			slice, offset := indexOperands(inner)
			if slice == nil || offset == nil {
				continue
			}
			fnObj, ok := af.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sliceIdx := paramIndex(af.Info, fd, slice)
			offIdx := paramIndex(af.Info, fd, offset)
			if sliceIdx < 0 || offIdx < 0 {
				continue
			}
			af.helpers[fnObj] = overlayHelper{
				offsetParam: offIdx,
				align:       atomicAligns[target],
				target:      target,
			}
			// The helper's own conversion is sanctioned: its obligation
			// moves to the call sites.
			af.overlaySpan = append(af.overlaySpan, span{lo: conv.Pos(), hi: conv.End()})
		}
	}
}

// overlayConversion matches expr against (*atomic.T)(X) where X unwraps to
// unsafe.Pointer(Y); it returns the conversion call, the atomic type name,
// and Y. A non-overlay expression returns a nil call.
func (af *atomicFieldPass) overlayConversion(expr ast.Expr) (conv *ast.CallExpr, target string, inner ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, "", nil
	}
	// The conversion target must be *atomic.T for a known T.
	tv, ok := af.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, "", nil
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return nil, "", nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return nil, "", nil
	}
	name := named.Obj().Name()
	if _, known := atomicAligns[name]; !known {
		return nil, "", nil
	}
	// The argument must be unsafe.Pointer(Y).
	up, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || len(up.Args) != 1 {
		return nil, "", nil
	}
	utv, ok := af.Info.Types[up.Fun]
	if !ok || !utv.IsType() || utv.Type != types.Typ[types.UnsafePointer] {
		return nil, "", nil
	}
	return call, name, ast.Unparen(up.Args[0])
}

// indexOperands unwraps &b[off] into (b, off); anything else returns nils.
func indexOperands(expr ast.Expr) (slice, offset ast.Expr) {
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	ix, ok := ast.Unparen(un.X).(*ast.IndexExpr)
	if !ok {
		return nil, nil
	}
	return ast.Unparen(ix.X), ast.Unparen(ix.Index)
}

// paramIndex resolves expr to one of fd's parameters, returning its flat
// index, or -1.
func paramIndex(info *types.Info, fd *ast.FuncDecl, expr ast.Expr) int {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return -1
}

// collectAtomicAccesses walks one file recording (a) variables whose address
// reaches sync/atomic functions, (b) overlay conversions and helper calls,
// checking their alignment obligations as it goes.
func (af *atomicFieldPass) collectAtomicAccesses(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// sync/atomic free function taking &x: the word becomes atomic.
		if obj := calleeObj(af.Info, call); obj != nil {
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				for _, arg := range call.Args {
					af.recordAtomicArg(arg)
				}
				return true
			}
			// Overlay-helper call: the offset argument must be an aligned
			// constant.
			if fn, ok := obj.(*types.Func); ok {
				if h, isHelper := af.helpers[fn]; isHelper {
					af.overlaySpan = append(af.overlaySpan, span{lo: call.Pos(), hi: call.End()})
					af.checkHelperCall(call, h)
					return true
				}
			}
		}
		// Direct overlay conversion outside a helper.
		if conv, target, inner := af.overlayConversion(call); conv != nil && !af.inOverlaySpan(conv.Pos()) {
			af.overlaySpan = append(af.overlaySpan, span{lo: conv.Pos(), hi: conv.End()})
			af.checkDirectOverlay(conv, target, inner)
		}
		return true
	})
}

// recordAtomicArg notes the variable behind an &x or &x.f argument of a
// sync/atomic call.
func (af *atomicFieldPass) recordAtomicArg(arg ast.Expr) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return
	}
	var id *ast.Ident
	switch x := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return
	}
	v, ok := af.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	af.atomicVars[v] = append(af.atomicVars[v], un.Pos())
	af.atomicUses[id] = true
}

// checkHelperCall enforces the aligned-constant-offset obligation at an
// overlay-helper call site.
func (af *atomicFieldPass) checkHelperCall(call *ast.CallExpr, h overlayHelper) {
	if h.offsetParam >= len(call.Args) {
		return
	}
	arg := call.Args[h.offsetParam]
	af.checkOffset(arg, h.align, h.target)
}

// checkDirectOverlay enforces the obligation on an inline overlay: the inner
// expression must be &b[konst] with konst aligned.
func (af *atomicFieldPass) checkDirectOverlay(conv *ast.CallExpr, target string, inner ast.Expr) {
	_, offset := indexOperands(inner)
	if offset == nil {
		af.Reportf(conv.Pos(),
			"atomic.%s overlay on raw bytes without a provable offset: overlay &b[const] with const %% %d == 0, or justify with //lint:ignore atomicfield",
			target, atomicAligns[target])
		return
	}
	af.checkOffset(offset, atomicAligns[target], target)
}

// checkOffset requires expr to be a constant multiple of align.
func (af *atomicFieldPass) checkOffset(expr ast.Expr, align int64, target string) {
	tv, ok := af.Info.Types[expr]
	if !ok || tv.Value == nil {
		af.Reportf(expr.Pos(),
			"atomic.%s overlay offset is not a constant: alignment (%% %d == 0) cannot be proven — pass a named constant offset or justify with //lint:ignore atomicfield",
			target, align)
		return
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return
	}
	if align > 1 && v%align != 0 {
		af.Reportf(expr.Pos(),
			"atomic.%s overlay at offset %d breaks the %%%d alignment sync/atomic requires — a torn or faulting access on some platforms",
			target, v, align)
		return
	}
	// A well-aligned constant offset designates an atomic word; remember
	// named constants so stray non-atomic uses of the same word are caught.
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if c, ok := af.Info.Uses[id].(*types.Const); ok {
			if _, seen := af.offsetConsts[c]; !seen {
				af.offsetConsts[c] = expr.Pos()
			}
		}
	}
}

// inOverlaySpan reports whether pos falls inside a recorded overlay
// expression.
func (af *atomicFieldPass) inOverlaySpan(pos token.Pos) bool {
	for _, s := range af.overlaySpan {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

// reportMixedAccesses flags every non-atomic use of a variable the package
// also accesses atomically.
func (af *atomicFieldPass) reportMixedAccesses(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || af.atomicUses[id] {
			return true
		}
		v, ok := af.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		accesses, isAtomic := af.atomicVars[v]
		if !isAtomic {
			return true
		}
		af.Reportf(id.Pos(),
			"non-atomic access to %s, which is accessed with sync/atomic at %s — a data race the race detector only sees on the right interleaving",
			v.Name(), af.Fset.Position(accesses[0]))
		return true
	})
}

// reportConstMisuse flags uses of overlay-offset constants outside overlay
// expressions: reading the same word through encoding/binary or plain
// indexing bypasses the atomic.
func (af *atomicFieldPass) reportConstMisuse(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := af.Info.Uses[id].(*types.Const)
		if !ok {
			return true
		}
		overlayPos, isOffset := af.offsetConsts[c]
		if !isOffset || af.inOverlaySpan(id.Pos()) {
			return true
		}
		af.Reportf(id.Pos(),
			"offset %s names an atomic word (overlaid at %s); accessing it outside an atomic overlay bypasses the atomic",
			c.Name(), af.Fset.Position(overlayPos))
		return true
	})
}
