package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestWireStruct(t *testing.T) {
	linttest.Run(t, "testdata/wirestruct", lint.WireStruct)
}

func TestPoolCheck(t *testing.T) {
	linttest.Run(t, "testdata/poolcheck", lint.PoolCheck)
}

func TestUseAfterRelease(t *testing.T) {
	linttest.Run(t, "testdata/useafterrelease", lint.UseAfterRelease)
}

func TestKindSwitch(t *testing.T) {
	linttest.Run(t, "testdata/kindswitch", lint.KindSwitch)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/atomicfield", lint.AtomicField)
}

func TestDeadlinePair(t *testing.T) {
	linttest.Run(t, "testdata/deadlinepair", lint.DeadlinePair)
}

func TestFrameKind(t *testing.T) {
	linttest.Run(t, "testdata/framekind", lint.FrameKind)
}

func TestAllAndByName(t *testing.T) {
	all := lint.All()
	if len(all) != 7 {
		t.Fatalf("All() = %d analyzers, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc, or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}

	sub, unknown := lint.ByName([]string{"kindswitch", "poolcheck"})
	if unknown != "" || len(sub) != 2 {
		t.Fatalf("ByName(kindswitch,poolcheck) = %d analyzers, unknown=%q", len(sub), unknown)
	}
	if _, unknown := lint.ByName([]string{"nope"}); unknown != "nope" {
		t.Fatalf("ByName(nope) unknown = %q, want \"nope\"", unknown)
	}
	if def, unknown := lint.ByName(nil); unknown != "" || len(def) != len(all) {
		t.Fatalf("ByName(nil) = %d analyzers, unknown=%q; want all %d", len(def), unknown, len(all))
	}
}
