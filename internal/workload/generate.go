package workload

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Register discipline for generated code:
//
//	x1–x24  free for random instruction operands
//	x25     generator temp for multi-instruction sequences (guest faults)
//	x26,x27 MMIO/trap-handler temps (clobbered by the handler)
//	x30     loop counter
//	x31     data region base
const (
	regSeq  = 25
	regTmpA = 26
	regTmpB = 27
	regLoop = 30
	regData = 31
)

// Per-core memory layout.
const (
	coreCodeStride = 0x0040_0000 // 4 MiB of code space per core
	handlerOffset  = 0x0002_0000 // trap handler within the code region
	dataRegionBase = mem.RAMBase + 0x0800_0000
	coreDataStride = 0x0100_0000 // 16 MiB of private data per core
	dataSeedBytes  = 1 << 16     // pre-seeded random data per core
)

// Program is a generated workload: a memory image plus per-core entry PCs.
// The DUT and REF both execute clones of the same image.
type Program struct {
	Name    string
	Profile Profile
	Image   *mem.Memory
	Entries []uint64

	// StaticInstrs counts generated (static) instructions per core.
	StaticInstrs int
	// LoopIters is the main-loop trip count per core.
	LoopIters int
}

// Generate assembles a workload for the given number of cores. Generation is
// fully deterministic in (profile, cores, seed). The profile must satisfy
// Validate — an invalid one is a programmer error and panics; callers taking
// untrusted profiles (cosim.Run, the fuzzer's mutators, session handshakes)
// validate first and surface the error.
func Generate(p Profile, cores int, seed int64) *Program {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if cores < 1 {
		cores = 1
	}
	prog := &Program{Name: p.Name, Profile: p, Image: mem.New()}
	for c := 0; c < cores; c++ {
		g := &gen{
			prof: p,
			rng:  rand.New(rand.NewSource(seed + int64(c)*7919)),
			base: mem.RAMBase + uint64(c)*coreCodeStride,
			data: dataRegionBase + uint64(c)*coreDataStride,
		}
		g.buildCore(prog, c)
	}
	return prog
}

type gen struct {
	prof Profile
	rng  *rand.Rand
	base uint64 // code base for this core
	data uint64 // data region base for this core
	code []isa.Inst
}

func (g *gen) emit(in isa.Inst) { g.code = append(g.code, in) }

func (g *gen) reg() uint8 { return uint8(1 + g.rng.Intn(24)) }

// materialize loads a 32-bit constant into rd (1 or 2 instructions).
func (g *gen) materialize(rd uint8, v uint64) {
	sv := int64(int32(uint32(v)))
	if sv >= -2048 && sv < 2048 {
		g.emit(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: 0, Imm: sv})
		return
	}
	hi := (uint32(v) + 0x800) & 0xFFFFF000
	lo := int64(int32(uint32(v) - hi))
	g.emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: int64(int32(hi))})
	if lo != 0 {
		g.emit(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
	}
}

// addrParts splits an absolute address into a LUI constant and a signed
// 12-bit offset for a subsequent load/store.
func addrParts(addr uint64) (lui int64, off int64) {
	hi := (uint32(addr) + 0x800) & 0xFFFFF000
	return int64(int32(hi)), int64(int32(uint32(addr) - hi))
}

func (g *gen) buildCore(prog *Program, core int) {
	p := g.prof

	// --- init ---
	g.materialize(regData, g.data)
	mtvecLui, mtvecOff := addrParts(g.base + handlerOffset)
	g.emit(isa.Inst{Op: isa.OpLUI, Rd: regTmpA, Imm: mtvecLui})
	if mtvecOff != 0 {
		g.emit(isa.Inst{Op: isa.OpADDI, Rd: regTmpA, Rs1: regTmpA, Imm: mtvecOff})
	}
	g.emit(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: regTmpA, CSR: isa.CSRMtvec})

	// Enable timer, software, external, and virtual interrupt sources.
	g.materialize(regTmpA, 1<<isa.IntTimerM|1<<isa.IntSoftwareM|1<<isa.IntExternalM|1<<isa.IntVirtual)
	g.emit(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: regTmpA, CSR: isa.CSRMie})

	// Seed the integer registers with varied constants.
	for r := uint8(1); r <= 24; r++ {
		g.materialize(r, g.rng.Uint64()&0x7FFFFFFF)
	}
	// Vector length and a nonzero hgatp so guest accesses translate.
	g.emit(isa.Inst{Op: isa.OpVSETVLI, Rd: 0, Rs1: 0, Imm: 0xC1})
	if p.WHyp > 0 {
		g.emit(isa.Inst{Op: isa.OpADDI, Rd: regTmpA, Rs1: 0, Imm: 1})
		g.emit(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: regTmpA, CSR: isa.CSRHgatp})
	}
	if p.TimerInterval > 0 {
		g.emitTimerRearm()
	}
	// Global interrupt enable last.
	g.emit(isa.Inst{Op: isa.OpCSRRSI, Rd: 0, Rs1: 8, CSR: isa.CSRMstatus})

	// Loop counter set after we know the body length; reserve two slots.
	loopSetAt := len(g.code)
	g.emit(isa.Inst{Op: isa.OpADDI}) // placeholder (lui)
	g.emit(isa.Inst{Op: isa.OpADDI}) // placeholder (addi)

	// --- body ---
	bodyStart := len(g.code)
	slots := 1200
	for i := 0; i < slots; i++ {
		g.emitSlot()
	}
	bodyLen := len(g.code) - bodyStart

	iters := int(p.TargetInstrs / uint64(bodyLen+2))
	if iters < 1 {
		iters = 1
	}
	prog.LoopIters = iters
	// Patch the loop counter materialization.
	hi := (uint32(iters) + 0x800) & 0xFFFFF000
	lo := int64(int32(uint32(iters) - hi))
	g.code[loopSetAt] = isa.Inst{Op: isa.OpLUI, Rd: regLoop, Imm: int64(int32(hi))}
	g.code[loopSetAt+1] = isa.Inst{Op: isa.OpADDI, Rd: regLoop, Rs1: regLoop, Imm: lo}

	// Loop back-edge: decrement, skip-exit, long jump back.
	g.emit(isa.Inst{Op: isa.OpADDI, Rd: regLoop, Rs1: regLoop, Imm: -1})
	g.emit(isa.Inst{Op: isa.OpBEQ, Rs1: regLoop, Rs2: 0, Imm: 8})
	back := int64(bodyStart-len(g.code)) * 4
	g.emit(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: back})

	// --- epilogue: good trap ---
	//
	// The exit sequence must be interrupt-atomic: the trap handler clobbers
	// x26/x27, so a timer interrupt landing between the LUI and the SD would
	// redirect the exit store to the CLINT and the program would never signal
	// completion (found by the workload fuzzer: short timer intervals make
	// the one-instruction window near-certain; long ones make it a rare
	// timing-dependent hang). Clear mstatus.MIE first so no interrupt can
	// split the pair.
	g.emit(isa.Inst{Op: isa.OpCSRRCI, Rd: 0, Rs1: 8, CSR: isa.CSRMstatus})
	exitLui, exitOff := addrParts(mem.ExitBase)
	g.emit(isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: exitLui})
	g.emit(isa.Inst{Op: isa.OpSD, Rs1: regTmpB, Rs2: 0, Imm: exitOff})
	g.emit(isa.Inst{Op: isa.OpWFI})                // not reached
	g.emit(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 0}) // backstop: never fall off the code

	if len(g.code)*4 >= handlerOffset {
		panic("workload: body overflows into trap handler")
	}

	// Write the program and handler into the image.
	writeInsts(prog.Image, g.base, g.code)
	writeInsts(prog.Image, g.base+handlerOffset, g.handler())
	prog.StaticInstrs += len(g.code)

	// Seed the data region deterministically.
	buf := make([]byte, dataSeedBytes)
	g.rng.Read(buf)
	prog.Image.WriteBytes(g.data, buf)

	prog.Entries = append(prog.Entries, g.base)
}

func writeInsts(img *mem.Memory, addr uint64, code []isa.Inst) {
	for _, in := range code {
		img.Write(addr, 4, uint64(isa.MustEncode(in)))
		addr += 4
	}
}

// emitTimerRearm arms mtimecmp = mtime + TimerInterval using x26/x27.
func (g *gen) emitTimerRearm() {
	mtLui, mtOff := addrParts(mem.CLINTBase + 0xBFF8)
	g.emit(isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: mtLui})
	g.emit(isa.Inst{Op: isa.OpLD, Rd: regTmpA, Rs1: regTmpB, Imm: mtOff})
	for rem := g.prof.TimerInterval; rem > 0; {
		step := rem
		if step > 2000 {
			step = 2000
		}
		g.emit(isa.Inst{Op: isa.OpADDI, Rd: regTmpA, Rs1: regTmpA, Imm: int64(step)})
		rem -= step
	}
	cmpLui, cmpOff := addrParts(mem.CLINTBase + 0x4000)
	g.emit(isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: cmpLui})
	g.emit(isa.Inst{Op: isa.OpSD, Rs1: regTmpB, Rs2: regTmpA, Imm: cmpOff})
}

// handler emits the shared trap handler: interrupts re-arm the timer and
// return to the interrupted PC; exceptions advance mepc past the faulting
// instruction.
func (g *gen) handler() []isa.Inst {
	h := []isa.Inst{
		{Op: isa.OpCSRRS, Rd: regTmpA, Rs1: 0, CSR: isa.CSRMcause}, // 0
		{Op: isa.OpBGE, Rs1: regTmpA, Rs2: 0, Imm: 0},              // 1: → exc (patched)
		// Interrupt path: rearm timer only for the timer cause.
		{Op: isa.OpANDI, Rd: regTmpA, Rs1: regTmpA, Imm: 0x3F},           // 2
		{Op: isa.OpADDI, Rd: regTmpB, Rs1: 0, Imm: int64(isa.IntTimerM)}, // 3
		{Op: isa.OpBNE, Rs1: regTmpA, Rs2: regTmpB, Imm: 0},              // 4: → done (patched)
	}
	rearmStart := len(h)
	mtLui, mtOff := addrParts(mem.CLINTBase + 0xBFF8)
	h = append(h,
		isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: mtLui},
		isa.Inst{Op: isa.OpLD, Rd: regTmpA, Rs1: regTmpB, Imm: mtOff},
	)
	interval := g.prof.TimerInterval
	if interval == 0 {
		interval = 2000
	}
	for rem := interval; rem > 0; {
		step := rem
		if step > 2000 {
			step = 2000
		}
		h = append(h, isa.Inst{Op: isa.OpADDI, Rd: regTmpA, Rs1: regTmpA, Imm: int64(step)})
		rem -= step
	}
	cmpLui, cmpOff := addrParts(mem.CLINTBase + 0x4000)
	h = append(h,
		isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: cmpLui},
		isa.Inst{Op: isa.OpSD, Rs1: regTmpB, Rs2: regTmpA, Imm: cmpOff},
		isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 0}, // → done (patched)
	)
	jalAt := len(h) - 1
	excStart := len(h)
	h = append(h,
		isa.Inst{Op: isa.OpCSRRS, Rd: regTmpA, Rs1: 0, CSR: isa.CSRMepc},
		isa.Inst{Op: isa.OpADDI, Rd: regTmpA, Rs1: regTmpA, Imm: 4},
		isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: regTmpA, CSR: isa.CSRMepc},
	)
	done := len(h)
	h = append(h, isa.Inst{Op: isa.OpMRET})

	h[1].Imm = int64(excStart-1) * 4
	h[4].Imm = int64(done-4) * 4
	h[jalAt].Imm = int64(done-jalAt) * 4
	_ = rearmStart
	return h
}

// emitSlot emits one weighted-random instruction (or short sequence).
func (g *gen) emitSlot() {
	p := g.prof

	// Per-mille special sequences first.
	r := g.rng.Intn(1000)
	switch {
	case r < p.MMIOPerMille:
		g.emitMMIO()
		return
	case r < p.MMIOPerMille+p.EcallPerMille:
		g.emit(isa.Inst{Op: isa.OpECALL})
		return
	case r < p.MMIOPerMille+p.EcallPerMille+p.GuestFaultPM:
		g.emitGuestFault()
		return
	}

	total := p.WALU + p.WBranch + p.WLoad + p.WStore + p.WMulDiv + p.WCSR +
		p.WFP + p.WVec + p.WAtomic + p.WHyp
	if total == 0 {
		total, p.WALU = 1, 1
	}
	w := g.rng.Intn(total)
	switch {
	case w < p.WALU:
		g.emitALU()
	case w < p.WALU+p.WBranch:
		g.emitBranch()
	case w < p.WALU+p.WBranch+p.WLoad:
		g.emitLoad()
	case w < p.WALU+p.WBranch+p.WLoad+p.WStore:
		g.emitStore()
	case w < p.WALU+p.WBranch+p.WLoad+p.WStore+p.WMulDiv:
		g.emitMulDiv()
	case w < p.WALU+p.WBranch+p.WLoad+p.WStore+p.WMulDiv+p.WCSR:
		g.emitCSR()
	case w < p.WALU+p.WBranch+p.WLoad+p.WStore+p.WMulDiv+p.WCSR+p.WFP:
		g.emitFP()
	case w < p.WALU+p.WBranch+p.WLoad+p.WStore+p.WMulDiv+p.WCSR+p.WFP+p.WVec:
		g.emitVec()
	case w < p.WALU+p.WBranch+p.WLoad+p.WStore+p.WMulDiv+p.WCSR+p.WFP+p.WVec+p.WAtomic:
		g.emitAtomic()
	default:
		g.emitHyp()
	}
}

var aluOps = []isa.Opcode{
	isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpAND, isa.OpSLL, isa.OpSRL,
	isa.OpSRA, isa.OpSLT, isa.OpSLTU, isa.OpADDW, isa.OpSUBW, isa.OpSLLW,
}

var aluImmOps = []isa.Opcode{
	isa.OpADDI, isa.OpXORI, isa.OpORI, isa.OpANDI, isa.OpSLTI, isa.OpSLTIU, isa.OpADDIW,
}

func (g *gen) emitALU() {
	if g.rng.Intn(2) == 0 {
		op := aluOps[g.rng.Intn(len(aluOps))]
		g.emit(isa.Inst{Op: op, Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
		return
	}
	switch g.rng.Intn(4) {
	case 0:
		g.emit(isa.Inst{Op: isa.OpLUI, Rd: g.reg(), Imm: int64(int32(g.rng.Uint32() & 0xFFFFF000))})
	case 1:
		sh := []isa.Opcode{isa.OpSLLI, isa.OpSRLI, isa.OpSRAI}[g.rng.Intn(3)]
		g.emit(isa.Inst{Op: sh, Rd: g.reg(), Rs1: g.reg(), Imm: int64(g.rng.Intn(64))})
	default:
		op := aluImmOps[g.rng.Intn(len(aluImmOps))]
		g.emit(isa.Inst{Op: op, Rd: g.reg(), Rs1: g.reg(), Imm: int64(g.rng.Intn(4096) - 2048)})
	}
}

func (g *gen) emitBranch() {
	// A forward branch over k freshly generated ALU instructions, or an
	// auipc/jalr hop; both are well-formed whether or not taken.
	if g.rng.Intn(8) == 0 {
		// regSeq is never clobbered by the trap handler, so an interrupt
		// landing inside this sequence cannot corrupt the jump target.
		rd := g.reg()
		g.emit(isa.Inst{Op: isa.OpAUIPC, Rd: regSeq, Imm: 0})
		g.emit(isa.Inst{Op: isa.OpADDI, Rd: regSeq, Rs1: regSeq, Imm: 12})
		g.emit(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: regSeq, Imm: 0})
		return
	}
	k := 1 + g.rng.Intn(5)
	ops := []isa.Opcode{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	op := ops[g.rng.Intn(len(ops))]
	g.emit(isa.Inst{Op: op, Rs1: g.reg(), Rs2: g.reg(), Imm: int64(k+1) * 4})
	for i := 0; i < k; i++ {
		g.emitALU()
	}
}

func (g *gen) dataOff(align int) int64 {
	return int64(g.rng.Intn(2048/align)) * int64(align)
}

func (g *gen) emitLoad() {
	ops := []isa.Opcode{isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLD, isa.OpLBU, isa.OpLHU, isa.OpLWU}
	op := ops[g.rng.Intn(len(ops))]
	g.emit(isa.Inst{Op: op, Rd: g.reg(), Rs1: regData, Imm: g.dataOff(isa.MemSize(op))})
}

func (g *gen) emitStore() {
	ops := []isa.Opcode{isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD}
	op := ops[g.rng.Intn(len(ops))]
	g.emit(isa.Inst{Op: op, Rs1: regData, Rs2: g.reg(), Imm: g.dataOff(isa.MemSize(op))})
}

var mulDivOps = []isa.Opcode{
	isa.OpMUL, isa.OpMULH, isa.OpMULHU, isa.OpMULHSU, isa.OpDIV, isa.OpDIVU,
	isa.OpREM, isa.OpREMU, isa.OpMULW, isa.OpDIVW, isa.OpREMW,
}

func (g *gen) emitMulDiv() {
	op := mulDivOps[g.rng.Intn(len(mulDivOps))]
	g.emit(isa.Inst{Op: op, Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
}

var safeCSRs = []uint16{
	isa.CSRMscratch, isa.CSRFcsr, isa.CSRVxrm, isa.CSRVxsat, isa.CSRVstart,
	isa.CSRMedeleg, isa.CSRMideleg, isa.CSRHedeleg, isa.CSRHideleg,
	isa.CSRVsstatus, isa.CSRVstvec, isa.CSRVsepc, isa.CSRVscause,
	isa.CSRMcycle, isa.CSRMinstret, isa.CSRHtval, isa.CSRHtinst,
}

func (g *gen) emitCSR() {
	csr := safeCSRs[g.rng.Intn(len(safeCSRs))]
	switch g.rng.Intn(3) {
	case 0:
		g.emit(isa.Inst{Op: isa.OpCSRRW, Rd: g.reg(), Rs1: g.reg(), CSR: csr})
	case 1:
		g.emit(isa.Inst{Op: isa.OpCSRRS, Rd: g.reg(), Rs1: g.reg(), CSR: csr})
	default:
		g.emit(isa.Inst{Op: isa.OpCSRRCI, Rd: g.reg(), Rs1: uint8(g.rng.Intn(32)), CSR: csr})
	}
}

func (g *gen) emitFP() {
	switch g.rng.Intn(5) {
	case 0:
		g.emit(isa.Inst{Op: isa.OpFLD, Rd: uint8(g.rng.Intn(8)), Rs1: regData, Imm: g.dataOff(8)})
	case 1:
		g.emit(isa.Inst{Op: isa.OpFSD, Rs1: regData, Rs2: uint8(g.rng.Intn(8)), Imm: g.dataOff(8)})
	case 2:
		g.emit(isa.Inst{Op: isa.OpFMVDX, Rd: uint8(g.rng.Intn(8)), Rs1: g.reg()})
	case 3:
		g.emit(isa.Inst{Op: isa.OpFMVXD, Rd: g.reg(), Rs1: uint8(g.rng.Intn(8))})
	default:
		ops := []isa.Opcode{isa.OpFADDD, isa.OpFSUBD, isa.OpFMULD, isa.OpFSGNJD}
		op := ops[g.rng.Intn(len(ops))]
		g.emit(isa.Inst{Op: op, Rd: uint8(g.rng.Intn(8)), Rs1: uint8(g.rng.Intn(8)), Rs2: uint8(g.rng.Intn(8))})
	}
}

func (g *gen) emitVec() {
	switch g.rng.Intn(7) {
	case 0:
		g.emit(isa.Inst{Op: isa.OpVLE, Rd: uint8(g.rng.Intn(8)), Rs1: regData, Imm: g.dataOff(8)})
	case 1:
		g.emit(isa.Inst{Op: isa.OpVSE, Rs1: regData, Rs2: uint8(g.rng.Intn(8)), Imm: g.dataOff(8)})
	case 2:
		g.emit(isa.Inst{Op: isa.OpVMVVX, Rd: uint8(g.rng.Intn(8)), Rs1: g.reg()})
	case 3:
		// Re-negotiate the vector length (vl saturates at VLMAX=4 because
		// the seeded source registers hold large values).
		g.emit(isa.Inst{Op: isa.OpVSETVLI, Rd: g.reg(), Rs1: g.reg(), Imm: 0xC1})
	case 4:
		// Exercise VstartUpdate: write a nonzero vstart, then a vector op
		// resets it.
		g.emit(isa.Inst{Op: isa.OpCSRRSI, Rd: 0, Rs1: uint8(1 + g.rng.Intn(3)), CSR: isa.CSRVstart})
		g.emit(isa.Inst{Op: isa.OpVADDVV, Rd: uint8(g.rng.Intn(8)), Rs1: uint8(g.rng.Intn(8)), Rs2: uint8(g.rng.Intn(8))})
	default:
		ops := []isa.Opcode{isa.OpVADDVV, isa.OpVXORVV, isa.OpVANDVV}
		op := ops[g.rng.Intn(len(ops))]
		g.emit(isa.Inst{Op: op, Rd: uint8(g.rng.Intn(8)), Rs1: uint8(g.rng.Intn(8)), Rs2: uint8(g.rng.Intn(8))})
	}
}

func (g *gen) emitAtomic() {
	off := g.dataOff(8)
	g.emit(isa.Inst{Op: isa.OpADDI, Rd: regSeq, Rs1: regData, Imm: off})
	switch g.rng.Intn(4) {
	case 0, 1:
		g.emit(isa.Inst{Op: isa.OpLRD, Rd: g.reg(), Rs1: regSeq})
		g.emit(isa.Inst{Op: isa.OpSCD, Rd: g.reg(), Rs1: regSeq, Rs2: g.reg()})
	case 2:
		// Store-conditional without a reservation: architecturally fails,
		// exercising the LrSc failure path.
		g.emit(isa.Inst{Op: isa.OpSCD, Rd: g.reg(), Rs1: regSeq, Rs2: g.reg()})
	default:
		ops := []isa.Opcode{isa.OpAMOSWAPD, isa.OpAMOADDD, isa.OpAMOXORD, isa.OpAMOANDD, isa.OpAMOORD}
		op := ops[g.rng.Intn(len(ops))]
		g.emit(isa.Inst{Op: op, Rd: g.reg(), Rs1: regSeq, Rs2: g.reg()})
	}
}

func (g *gen) emitHyp() {
	if g.rng.Intn(2) == 0 {
		g.emit(isa.Inst{Op: isa.OpHLVD, Rd: g.reg(), Rs1: regData, Imm: g.dataOff(8)})
	} else {
		g.emit(isa.Inst{Op: isa.OpHSVD, Rs1: regData, Rs2: g.reg(), Imm: g.dataOff(8)})
	}
}

// emitGuestFault briefly zeroes hgatp so the next guest load takes a guest
// page fault, then restores it (paper §6.5 bug category 2 territory).
func (g *gen) emitGuestFault() {
	g.emit(isa.Inst{Op: isa.OpCSRRW, Rd: regSeq, Rs1: 0, CSR: isa.CSRHgatp})
	g.emit(isa.Inst{Op: isa.OpHLVD, Rd: g.reg(), Rs1: regData, Imm: g.dataOff(8)})
	g.emit(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: regSeq, CSR: isa.CSRHgatp})
}

// emitMMIO emits one device access: a UART write, an RNG read, or an mtime
// read — the non-deterministic events the REF must be synchronized with.
func (g *gen) emitMMIO() {
	switch g.rng.Intn(3) {
	case 0: // UART putc
		lui, off := addrParts(mem.UARTBase)
		g.emit(isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: lui})
		g.emit(isa.Inst{Op: isa.OpADDI, Rd: regTmpA, Rs1: 0, Imm: int64(32 + g.rng.Intn(95))})
		g.emit(isa.Inst{Op: isa.OpSB, Rs1: regTmpB, Rs2: regTmpA, Imm: off})
	case 1: // RNG read into a live register
		lui, off := addrParts(mem.RNGBase)
		g.emit(isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: lui})
		g.emit(isa.Inst{Op: isa.OpLD, Rd: g.reg(), Rs1: regTmpB, Imm: off})
	default: // mtime read
		lui, off := addrParts(mem.CLINTBase + 0xBFF8)
		g.emit(isa.Inst{Op: isa.OpLUI, Rd: regTmpB, Imm: lui})
		g.emit(isa.Inst{Op: isa.OpLD, Rd: g.reg(), Rs1: regTmpB, Imm: off})
	}
}
