// Package workload generates the benchmark programs the co-simulation runs:
// seeded synthetic equivalents of the paper's workloads (Linux boot,
// microbench, SPEC CPU, KVM, XVISOR, RVV_TEST — Table 3) with calibrated
// instruction mixes and non-deterministic-event rates.
//
// Programs are real machine code: the generator assembles RV64 instructions
// into a memory image that both the DUT and the reference model fetch,
// decode and execute. Each profile controls the rate of MMIO accesses,
// traps, and interrupts — the order-semantics stressors that break naive
// event fusion (paper §4.3).
package workload

// Profile describes a workload's instruction mix and NDE behaviour.
// Weights are relative; rates are per-mille of generated instructions.
type Profile struct {
	Name string

	// Instruction class weights.
	WALU, WBranch, WLoad, WStore, WMulDiv, WCSR int
	WFP, WVec, WAtomic, WHyp                    int

	// Non-determinism and trap rates (per mille of body instructions).
	MMIOPerMille  int // MMIO loads/stores (UART, RNG, CLINT)
	EcallPerMille int // ecall traps
	GuestFaultPM  int // hypervisor guest-page-fault sequences

	// TimerInterval arms the CLINT timer every so many time units;
	// 0 leaves the timer off.
	TimerInterval uint64

	// TargetInstrs is the approximate dynamic instruction count.
	TargetInstrs uint64
}

// LinuxBoot models an OS boot: heavy device interaction, frequent
// exceptions and timer interrupts (the paper's primary workload, ~1.7B
// instructions on real hardware; scaled down by TargetInstrs).
func LinuxBoot() Profile {
	return Profile{
		Name: "linux",
		WALU: 40, WBranch: 14, WLoad: 18, WStore: 10, WMulDiv: 4, WCSR: 6,
		WFP: 2, WVec: 2, WAtomic: 3, WHyp: 1,
		MMIOPerMille:  25,
		EcallPerMille: 8,
		GuestFaultPM:  2,
		TimerInterval: 1500,
		TargetInstrs:  300_000,
	}
}

// Microbench models a tight compute kernel with almost no device traffic.
func Microbench() Profile {
	return Profile{
		Name: "microbench",
		WALU: 52, WBranch: 12, WLoad: 18, WStore: 10, WMulDiv: 6, WCSR: 1,
		WFP: 1, WVec: 0, WAtomic: 0, WHyp: 0,
		MMIOPerMille:  1,
		EcallPerMille: 0,
		TimerInterval: 0,
		TargetInstrs:  200_000,
	}
}

// SPEC models a SPEC-CPU-like compute workload: long stretches of
// deterministic execution, rare traps.
func SPEC() Profile {
	return Profile{
		Name: "spec",
		WALU: 45, WBranch: 13, WLoad: 20, WStore: 11, WMulDiv: 6, WCSR: 1,
		WFP: 3, WVec: 0, WAtomic: 1, WHyp: 0,
		MMIOPerMille:  2,
		EcallPerMille: 1,
		TimerInterval: 8000,
		TargetInstrs:  400_000,
	}
}

// KVM models a hypervisor workload: heavy trap/CSR traffic and guest
// accesses.
func KVM() Profile {
	return Profile{
		Name: "kvm",
		WALU: 32, WBranch: 12, WLoad: 14, WStore: 8, WMulDiv: 2, WCSR: 12,
		WFP: 0, WVec: 0, WAtomic: 4, WHyp: 16,
		MMIOPerMille:  18,
		EcallPerMille: 20,
		GuestFaultPM:  8,
		TimerInterval: 2000,
		TargetInstrs:  250_000,
	}
}

// XVisor is a second virtualization workload with more device emulation.
func XVisor() Profile {
	p := KVM()
	p.Name = "xvisor"
	p.MMIOPerMille = 30
	p.WHyp = 12
	p.TargetInstrs = 250_000
	return p
}

// RVVTest models a vector-extension test suite.
func RVVTest() Profile {
	return Profile{
		Name: "rvv_test",
		WALU: 25, WBranch: 10, WLoad: 10, WStore: 8, WMulDiv: 2, WCSR: 8,
		WFP: 2, WVec: 33, WAtomic: 1, WHyp: 1,
		MMIOPerMille:  4,
		EcallPerMille: 4,
		TimerInterval: 4000,
		TargetInstrs:  250_000,
	}
}

// Profiles returns all built-in workload profiles.
func Profiles() []Profile {
	return []Profile{LinuxBoot(), Microbench(), SPEC(), KVM(), XVisor(), RVVTest()}
}

// ByName returns the named profile, or false.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
