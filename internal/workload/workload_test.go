package workload_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// runToCompletion executes a program on a bare machine with a device bus
// until the exit device fires.
func runToCompletion(t *testing.T, prog *workload.Program, core int, maxInstrs int) *arch.Machine {
	t.Helper()
	ram := prog.Image.Clone()
	bus := mem.NewBus(ram)
	m := arch.NewMachine(ram)
	m.Bus = bus
	m.State.PC = prog.Entries[core]
	for i := 0; i < maxInstrs; i++ {
		bus.CLINT.Tick(1)
		if cause, ok := m.InterruptPendingEnabled(); ok {
			m.TakeInterrupt(cause)
		}
		m.Step()
		if bus.Exit.Fired {
			if bus.Exit.Code != 0 {
				t.Fatalf("bad trap code %d", bus.Exit.Code)
			}
			return m
		}
	}
	t.Fatalf("%s core %d did not exit within %d instructions", prog.Name, core, maxInstrs)
	return nil
}

func TestEveryProfileRunsToGoodTrap(t *testing.T) {
	for _, p := range workload.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			p.TargetInstrs = 15_000
			prog := workload.Generate(p, 1, 3)
			runToCompletion(t, prog, 0, 10_000_000)
		})
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	p := workload.LinuxBoot()
	p.TargetInstrs = 10_000
	a := workload.Generate(p, 2, 42)
	b := workload.Generate(p, 2, 42)
	if a.StaticInstrs != b.StaticInstrs || a.LoopIters != b.LoopIters {
		t.Fatal("generation metadata differs for same seed")
	}
	for _, entry := range a.Entries {
		for off := uint64(0); off < 4096; off += 4 {
			if a.Image.Read(entry+off, 4) != b.Image.Read(entry+off, 4) {
				t.Fatalf("code differs at %#x", entry+off)
			}
		}
	}
	c := workload.Generate(p, 2, 43)
	same := true
	for off := uint64(0); off < 4096 && same; off += 4 {
		same = a.Image.Read(a.Entries[0]+off, 4) == c.Image.Read(c.Entries[0]+off, 4)
	}
	if same {
		t.Error("different seeds produced identical code prefixes")
	}
}

func TestDualCoreLayoutIsDisjoint(t *testing.T) {
	p := workload.SPEC()
	p.TargetInstrs = 10_000
	prog := workload.Generate(p, 2, 9)
	if len(prog.Entries) != 2 {
		t.Fatalf("entries = %v", prog.Entries)
	}
	if prog.Entries[0] == prog.Entries[1] {
		t.Error("cores share an entry point")
	}
	// Both cores must run to completion independently.
	runToCompletion(t, prog, 0, 10_000_000)
	runToCompletion(t, prog, 1, 10_000_000)
}

func TestProfileMixIsRespected(t *testing.T) {
	p := workload.RVVTest()
	p.TargetInstrs = 20_000
	prog := workload.Generate(p, 1, 5)
	// Count static vector instructions in the body.
	vec, total := 0, 0
	for off := uint64(0); off < uint64(prog.StaticInstrs)*4; off += 4 {
		w := uint32(prog.Image.Read(prog.Entries[0]+off, 4))
		in, err := isa.Decode(w)
		if err != nil {
			continue
		}
		total++
		switch isa.ClassOf(in.Op) {
		case isa.ClassVector, isa.ClassVecLoad, isa.ClassVecStore:
			vec++
		}
	}
	if total == 0 || float64(vec)/float64(total) < 0.15 {
		t.Errorf("rvv_test vector share = %d/%d, want a vector-heavy mix", vec, total)
	}

	micro := workload.Microbench()
	micro.TargetInstrs = 20_000
	mb := workload.Generate(micro, 1, 5)
	mmio := 0
	for off := uint64(0); off < uint64(mb.StaticInstrs)*4; off += 4 {
		w := uint32(mb.Image.Read(mb.Entries[0]+off, 4))
		if in, err := isa.Decode(w); err == nil && in.Op == isa.OpLUI &&
			uint32(in.Imm)&0xFFFFF000 == uint32(mem.UARTBase) {
			mmio++
		}
	}
	if mmio > 10 {
		t.Errorf("microbench has %d UART sequences, should be nearly none", mmio)
	}
}

func TestByName(t *testing.T) {
	if _, ok := workload.ByName("linux"); !ok {
		t.Error("linux profile missing")
	}
	if _, ok := workload.ByName("nope"); ok {
		t.Error("bogus profile found")
	}
}

func TestTargetInstrsScalesRuntime(t *testing.T) {
	short := workload.Microbench()
	short.TargetInstrs = 5_000
	long := workload.Microbench()
	long.TargetInstrs = 50_000
	ms := runToCompletion(t, workload.Generate(short, 1, 7), 0, 10_000_000)
	ml := runToCompletion(t, workload.Generate(long, 1, 7), 0, 10_000_000)
	ratio := float64(ml.InstrRet) / float64(ms.InstrRet)
	if ratio < 4 || ratio > 25 {
		t.Errorf("10x target gave %.1fx dynamic instructions (%d vs %d)",
			ratio, ml.InstrRet, ms.InstrRet)
	}
}
