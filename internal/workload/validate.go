package workload

import (
	"errors"
	"fmt"
)

// MaxTimerInterval bounds Profile.TimerInterval. The generator materializes
// an interval as a chain of ≤2000-unit ADDI steps (emitTimerRearm), so an
// unbounded interval would assemble interval/2000 instructions — a mutated
// profile could silently inflate the program by millions of instructions.
// 1M units keeps the rearm sequence under ~500 instructions.
const MaxTimerInterval = 1_000_000

// MaxPerMille is the upper bound for each per-mille rate and for their sum:
// emitSlot draws one number in [0,1000) and compares it against the
// cumulative rates, so a sum beyond 1000 would starve the weighted
// instruction mix entirely.
const MaxPerMille = 1000

// ErrInvalidProfile tags every Validate failure, so callers can distinguish
// a degenerate profile from other run-setup errors with errors.Is.
var ErrInvalidProfile = errors.New("workload: invalid profile")

// WeightNames labels the instruction-class weight fields in the canonical
// order WeightSlots returns them.
func WeightNames() []string {
	return []string{"alu", "branch", "load", "store", "muldiv", "csr",
		"fp", "vec", "atomic", "hyp"}
}

// WeightSlots returns pointers to the instruction-class weight fields in
// canonical order — the mutation hook the fuzzer's weight-jitter and splice
// operators use, and the single place Validate walks, so a new weight field
// added here is automatically validated and mutated.
func (p *Profile) WeightSlots() []*int {
	return []*int{&p.WALU, &p.WBranch, &p.WLoad, &p.WStore, &p.WMulDiv,
		&p.WCSR, &p.WFP, &p.WVec, &p.WAtomic, &p.WHyp}
}

// RateNames labels the per-mille NDE rate fields in the canonical order
// RateSlots returns them.
func RateNames() []string { return []string{"mmio", "ecall", "guestfault"} }

// RateSlots returns pointers to the per-mille rate fields in canonical
// order — the mutation hook for the fuzzer's rate-walk operator.
func (p *Profile) RateSlots() []*int {
	return []*int{&p.MMIOPerMille, &p.EcallPerMille, &p.GuestFaultPM}
}

// Validate rejects profiles that would generate degenerate programs:
// negative weights, an all-zero weight vector (no instruction mix to draw
// from), per-mille rates outside [0, MaxPerMille] or summing beyond it
// (starving the weighted mix), a zero TargetInstrs (no loop trip count), or
// a TimerInterval whose rearm sequence would dwarf the body (see
// MaxTimerInterval). The generator and the fuzzer's mutators both gate on
// it; cosim.Run surfaces the error before any machinery is built.
func (p *Profile) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidProfile, fmt.Sprintf(format, args...))
	}
	total := 0
	for i, w := range p.WeightSlots() {
		if *w < 0 {
			return fail("weight %s = %d is negative", WeightNames()[i], *w)
		}
		total += *w
	}
	if total == 0 {
		return fail("all instruction-class weights are zero")
	}
	rateSum := 0
	for i, r := range p.RateSlots() {
		if *r < 0 || *r > MaxPerMille {
			return fail("rate %s = %d outside [0, %d] per mille",
				RateNames()[i], *r, MaxPerMille)
		}
		rateSum += *r
	}
	if rateSum > MaxPerMille {
		return fail("rates sum to %d per mille (> %d)", rateSum, MaxPerMille)
	}
	if p.TargetInstrs == 0 {
		return fail("TargetInstrs is zero")
	}
	if p.TimerInterval > MaxTimerInterval {
		return fail("TimerInterval %d exceeds %d", p.TimerInterval, MaxTimerInterval)
	}
	return nil
}
