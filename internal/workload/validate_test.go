package workload

import (
	"errors"
	"strings"
	"testing"
)

// TestBuiltinProfilesValid pins that every shipped profile passes the
// validator — a floor change that invalidates a built-in must fail here.
func TestBuiltinProfilesValid(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %q invalid: %v", p.Name, err)
		}
	}
}

// TestValidateRejections drives every rejection class with a table of
// degenerate profiles the fuzzer's mutators could otherwise produce.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mut    func(*Profile)
		detail string // substring the error must carry
	}{
		{"negative weight", func(p *Profile) { p.WBranch = -1 }, "negative"},
		{"negative vec weight", func(p *Profile) { p.WVec = -7 }, "negative"},
		{"all-zero weights", func(p *Profile) {
			for _, w := range p.WeightSlots() {
				*w = 0
			}
		}, "all instruction-class weights are zero"},
		{"negative rate", func(p *Profile) { p.EcallPerMille = -1 }, "per mille"},
		{"rate above 1000", func(p *Profile) { p.MMIOPerMille = 1001 }, "per mille"},
		{"rates sum above 1000", func(p *Profile) {
			p.MMIOPerMille, p.EcallPerMille, p.GuestFaultPM = 400, 400, 400
		}, "sum to 1200"},
		{"zero target instrs", func(p *Profile) { p.TargetInstrs = 0 }, "TargetInstrs"},
		{"oversized timer interval", func(p *Profile) {
			p.TimerInterval = MaxTimerInterval + 1
		}, "TimerInterval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := LinuxBoot()
			tc.mut(&p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a profile with %s", tc.name)
			}
			if !errors.Is(err, ErrInvalidProfile) {
				t.Errorf("error %v is not ErrInvalidProfile", err)
			}
			if !strings.Contains(err.Error(), tc.detail) {
				t.Errorf("error %q does not mention %q", err, tc.detail)
			}
		})
	}
}

// TestGeneratePanicsOnInvalid pins the generator's programmer-error
// contract: feeding it an unvalidated degenerate profile must not silently
// assemble a degenerate program.
func TestGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate accepted a zero-TargetInstrs profile")
		}
	}()
	p := Microbench()
	p.TargetInstrs = 0
	Generate(p, 1, 1)
}

// TestMutationSlots pins the accessor contract the fuzzer depends on:
// slot order matches the names, and writing through a slot mutates the
// receiver field.
func TestMutationSlots(t *testing.T) {
	p := Microbench()
	ws := p.WeightSlots()
	if len(ws) != len(WeightNames()) {
		t.Fatalf("WeightSlots has %d entries, WeightNames %d", len(ws), len(WeightNames()))
	}
	*ws[0] = 99
	if p.WALU != 99 {
		t.Errorf("WeightSlots[0] does not alias WALU (got %d)", p.WALU)
	}
	rs := p.RateSlots()
	if len(rs) != len(RateNames()) {
		t.Fatalf("RateSlots has %d entries, RateNames %d", len(rs), len(RateNames()))
	}
	*rs[1] = 42
	if p.EcallPerMille != 42 {
		t.Errorf("RateSlots[1] does not alias EcallPerMille (got %d)", p.EcallPerMille)
	}
}
