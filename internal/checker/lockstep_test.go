package checker_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/workload"
)

// runLockstep drives a DUT cycle by cycle, feeding every verification event
// straight into the checker (the baseline, per-event co-simulation path),
// and returns the first mismatch, trap code, and cycle count.
func runLockstep(t *testing.T, cfg dut.Config, prof workload.Profile, hooks arch.Hooks, maxCycles uint64) (*checker.Mismatch, uint64, uint64) {
	t.Helper()
	prog := workload.Generate(prof, cfg.Cores, 99)
	d := dut.New(cfg, prog.Image, prog.Entries, hooks)
	chk := checker.New(prog.Image, prog.Entries, cfg.Cores)

	for cycle := uint64(0); cycle < maxCycles; cycle++ {
		recs, done := d.StepCycle()
		for _, rec := range recs {
			if m := chk.Process(rec); m != nil {
				return m, 0, d.CycleCount
			}
		}
		if done {
			fin, code := chk.Finished()
			if !fin {
				t.Fatalf("DUT finished but checker saw no trap")
			}
			return nil, code, d.CycleCount
		}
	}
	t.Fatalf("workload did not finish in %d cycles", maxCycles)
	return nil, 0, 0
}

func scaled(p workload.Profile, instrs uint64) workload.Profile {
	p.TargetInstrs = instrs
	return p
}

func TestLockstepAllDUTConfigs(t *testing.T) {
	for _, cfg := range dut.Configs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, code, cycles := runLockstep(t, cfg, scaled(workload.LinuxBoot(), 30_000), arch.Hooks{}, 3_000_000)
			if m != nil {
				t.Fatalf("spurious mismatch: %v", m)
			}
			if code != 0 {
				t.Fatalf("bad trap code %d", code)
			}
			if cycles == 0 {
				t.Fatal("no cycles simulated")
			}
		})
	}
}

func TestLockstepAllProfiles(t *testing.T) {
	cfg := dut.XiangShanDefault()
	for _, prof := range workload.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			m, code, _ := runLockstep(t, cfg, scaled(prof, 25_000), arch.Hooks{}, 3_000_000)
			if m != nil {
				t.Fatalf("spurious mismatch: %v", m)
			}
			if code != 0 {
				t.Fatalf("bad trap code %d", code)
			}
		})
	}
}

// TestLockstepDetectsInjectedBug verifies the checker actually catches a
// divergence: a hook that corrupts a load result after N occurrences.
func TestLockstepDetectsInjectedBug(t *testing.T) {
	count := 0
	hooks := arch.Hooks{AfterExec: func(m *arch.Machine, ex *arch.Exec) {
		if ex.IsLoad && !ex.MMIO && ex.WroteInt {
			count++
			if count == 500 {
				// Corrupt the destination register: a classic load-path bug.
				m.State.GPR[ex.Wdest] ^= 0x10
				ex.Wdata ^= 0x10
				ex.MemData ^= 0x10
			}
		}
	}}
	m, _, _ := runLockstep(t, dut.XiangShanDefault(), scaled(workload.LinuxBoot(), 50_000), hooks, 3_000_000)
	if m == nil {
		t.Fatal("injected bug was not detected")
	}
	if m.Kind != event.KindInstrCommit && m.Kind != event.KindLoad && m.Kind != event.KindArchIntRegState {
		t.Errorf("bug detected via unexpected event kind %v", m.Kind)
	}
}

// TestLockstepEventTraffic sanity-checks the monitor's per-cycle event
// volume against the paper's operating point (~15 events, ~1.2 KB per cycle
// on XiangShan default).
func TestLockstepEventTraffic(t *testing.T) {
	cfg := dut.XiangShanDefault()
	prog := workload.Generate(scaled(workload.LinuxBoot(), 30_000), 1, 5)
	d := dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{})
	for {
		_, done := d.StepCycle()
		if done {
			break
		}
	}
	var events uint64
	for _, n := range d.EventCount {
		events += n
	}
	perCycle := float64(events) / float64(d.CycleCount)
	bytesPerCycle := float64(d.EventBytes) / float64(d.CycleCount)
	if perCycle < 4 || perCycle > 40 {
		t.Errorf("events/cycle = %.1f, want roughly 15", perCycle)
	}
	if bytesPerCycle < 300 || bytesPerCycle > 4000 {
		t.Errorf("bytes/cycle = %.0f, want roughly 1200", bytesPerCycle)
	}
	if d.EventCount[event.KindInstrCommit] == 0 || d.EventCount[event.KindArchIntRegState] == 0 {
		t.Error("core event kinds never emitted")
	}
}
