package checker_test

import (
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/workload"
)

// runPerCoreConcurrent drives a multi-core DUT and checks each core from
// its own goroutine — the executed pipeline's consumer fan-out. Run under
// -race this proves the per-core independence contract of the checker.
func runPerCoreConcurrent(t *testing.T, cfg dut.Config, prof workload.Profile, hooks arch.Hooks) (*checker.Mismatch, uint64) {
	t.Helper()
	prog := workload.Generate(prof, cfg.Cores, 99)
	d := dut.New(cfg, prog.Image, prog.Entries, hooks)
	chk := checker.New(prog.Image, prog.Entries, cfg.Cores)

	var col checker.Collector
	chans := make([]chan event.Record, cfg.Cores)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Cores; i++ {
		ch := make(chan event.Record, 256)
		chans[i] = ch
		cc := chk.Cores[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			stopped := false
			for rec := range ch {
				if stopped {
					continue // drain after a mismatch, keep the router unblocked
				}
				if m := cc.Process(rec); m != nil {
					col.Offer(m)
					stopped = true
				}
			}
		}()
	}

	for cycle := uint64(0); cycle < 3_000_000; cycle++ {
		recs, done := d.StepCycle()
		for _, rec := range recs {
			chans[rec.Core] <- rec
		}
		if done || col.First() != nil {
			break
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	_, code := chk.Finished()
	return col.First(), code
}

// TestConcurrentPerCoreCheckClean: a bug-free dual-core DUT checked by two
// concurrent per-core goroutines must report no mismatch — and no data race.
func TestConcurrentPerCoreCheckClean(t *testing.T) {
	m, code := runPerCoreConcurrent(t, dut.XiangShanDefaultDual(),
		scaled(workload.LinuxBoot(), 25_000), arch.Hooks{})
	if m != nil {
		t.Fatalf("spurious mismatch from concurrent checking: %v", m)
	}
	if code != 0 {
		t.Fatalf("bad trap code %d", code)
	}
}

// TestConcurrentPerCoreDetectsBug: the concurrent consumer must catch the
// same class of divergence the sequential lockstep path catches.
func TestConcurrentPerCoreDetectsBug(t *testing.T) {
	count := 0
	hooks := arch.Hooks{AfterExec: func(m *arch.Machine, ex *arch.Exec) {
		if ex.IsLoad && !ex.MMIO && ex.WroteInt {
			count++
			if count == 500 {
				m.State.GPR[ex.Wdest] ^= 0x10
				ex.Wdata ^= 0x10
				ex.MemData ^= 0x10
			}
		}
	}}
	m, _ := runPerCoreConcurrent(t, dut.XiangShanDefault(),
		scaled(workload.LinuxBoot(), 50_000), hooks)
	if m == nil {
		t.Fatal("injected bug was not detected by the concurrent consumer")
	}

	seq, _, _ := runLockstep(t, dut.XiangShanDefault(), scaled(workload.LinuxBoot(), 50_000), arch.Hooks{
		AfterExec: func() func(*arch.Machine, *arch.Exec) {
			n := 0
			return func(m *arch.Machine, ex *arch.Exec) {
				if ex.IsLoad && !ex.MMIO && ex.WroteInt {
					n++
					if n == 500 {
						m.State.GPR[ex.Wdest] ^= 0x10
						ex.Wdata ^= 0x10
						ex.MemData ^= 0x10
					}
				}
			}
		}(),
	}, 3_000_000)
	if seq == nil {
		t.Fatal("sequential reference run did not detect the bug")
	}
	if m.Core != seq.Core || m.Kind != seq.Kind || m.PC != seq.PC {
		t.Errorf("concurrent mismatch %v differs from sequential %v", m, seq)
	}
}

// TestCollectorPicksEarliest: concurrent offers must resolve to the lowest
// (Seq, Core) mismatch regardless of arrival order.
func TestCollectorPicksEarliest(t *testing.T) {
	var col checker.Collector
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			col.Offer(&checker.Mismatch{Core: uint8(i), Seq: uint64(100 - i), Detail: "x"})
			col.Offer(nil)
		}()
	}
	wg.Wait()
	first := col.First()
	if first == nil || first.Seq != 93 || first.Core != 7 {
		t.Fatalf("winner = %+v, want Seq=93 Core=7", first)
	}
	if col.Count() != 8 {
		t.Errorf("Count = %d, want 8", col.Count())
	}
}
