package checker_test

import (
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// harness builds a checker over a tiny program:
//
//	addi x1, x0, 5
//	sd   x1, 0(x2)     (x2 preset to a data address)
//	ld   x3, 0(x2)
func harness(t *testing.T) *checker.Checker {
	t.Helper()
	img := mem.New()
	prog := []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: isa.OpSD, Rs1: 2, Rs2: 1, Imm: 0},
		{Op: isa.OpLD, Rd: 3, Rs1: 2, Imm: 0},
	}
	addr := mem.RAMBase
	for _, in := range prog {
		img.Write(addr, 4, uint64(isa.MustEncode(in)))
		addr += 4
	}
	chk := checker.New(img, []uint64{mem.RAMBase}, 1)
	chk.Cores[0].Ref.M.State.GPR[2] = mem.RAMBase + 0x1000
	return chk
}

func commitRec(seq uint64, pc uint64, wdest uint8, wdata uint64) event.Record {
	return event.Record{Seq: seq, Core: 0, Ev: &event.InstrCommit{
		PC: pc, Instr: instrAt(pc), Flags: event.CommitRfWen, Wdest: wdest, Wdata: wdata,
	}}
}

// instrAt recomputes the encodings used by harness (keeps records honest).
func instrAt(pc uint64) uint32 {
	prog := []isa.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: isa.OpSD, Rs1: 2, Rs2: 1, Imm: 0},
		{Op: isa.OpLD, Rd: 3, Rs1: 2, Imm: 0},
	}
	return isa.MustEncode(prog[(pc-mem.RAMBase)/4])
}

func TestCommitMatches(t *testing.T) {
	chk := harness(t)
	if m := chk.Process(commitRec(1, mem.RAMBase, 1, 5)); m != nil {
		t.Fatalf("clean commit flagged: %v", m)
	}
}

func TestCommitWrongWdata(t *testing.T) {
	chk := harness(t)
	m := chk.Process(commitRec(1, mem.RAMBase, 1, 6))
	if m == nil || !strings.Contains(m.Detail, "writeback") {
		t.Fatalf("wrong wdata not flagged: %v", m)
	}
}

func TestCommitWrongPC(t *testing.T) {
	chk := harness(t)
	m := chk.Process(commitRec(1, mem.RAMBase+8, 3, 0))
	if m == nil || !strings.Contains(m.Detail, "pc") {
		t.Fatalf("wrong pc not flagged: %v", m)
	}
}

func TestStoreEventChecked(t *testing.T) {
	chk := harness(t)
	chk.Process(commitRec(1, mem.RAMBase, 1, 5))
	// Store commit (no register write).
	st := &event.InstrCommit{PC: mem.RAMBase + 4, Instr: instrAt(mem.RAMBase + 4)}
	if m := chk.Process(event.Record{Seq: 2, Core: 0, Ev: st}); m != nil {
		t.Fatalf("store commit flagged: %v", m)
	}
	good := &event.Store{Addr: mem.RAMBase + 0x1000, VAddr: mem.RAMBase + 0x1000, Data: 5, Mask: 8}
	if m := chk.Process(event.Record{Seq: 2, Core: 0, Ev: good}); m != nil {
		t.Fatalf("good store flagged: %v", m)
	}
	bad := &event.Store{Addr: mem.RAMBase + 0x1000, Data: 7, Mask: 8}
	if m := chk.Process(event.Record{Seq: 2, Core: 0, Ev: bad}); m == nil {
		t.Fatal("bad store data not flagged")
	}
}

func TestLoadEventChecked(t *testing.T) {
	chk := harness(t)
	chk.Process(commitRec(1, mem.RAMBase, 1, 5))
	chk.Process(event.Record{Seq: 2, Core: 0,
		Ev: &event.InstrCommit{PC: mem.RAMBase + 4, Instr: instrAt(mem.RAMBase + 4)}})
	chk.Process(commitRec(3, mem.RAMBase+8, 3, 5))
	bad := &event.Load{PAddr: mem.RAMBase + 0x1000, Data: 99, Mask: ^uint64(0)}
	if m := chk.Process(event.Record{Seq: 3, Core: 0, Ev: bad}); m == nil {
		t.Fatal("bad load data not flagged")
	}
}

func TestSkipCommitSynchronizes(t *testing.T) {
	chk := harness(t)
	skip := &event.InstrCommit{
		PC: mem.RAMBase, Flags: event.CommitSkip | event.CommitRfWen, Wdest: 9, Wdata: 0xFEED,
	}
	if m := chk.Process(event.Record{Seq: 1, Core: 0, Ev: skip}); m != nil {
		t.Fatalf("skip flagged: %v", m)
	}
	cc := chk.Cores[0]
	if cc.Ref.M.State.GPR[9] != 0xFEED {
		t.Errorf("x9 = %#x after skip", cc.Ref.M.State.GPR[9])
	}
	if cc.InstrRet() != 1 {
		t.Errorf("instret = %d", cc.InstrRet())
	}
}

func TestInterruptWrongPC(t *testing.T) {
	chk := harness(t)
	m := chk.Process(event.Record{Seq: 0, Core: 0,
		Ev: &event.Interrupt{Cause: isa.IntTimerM, PC: 0xBAD}})
	if m == nil || !strings.Contains(m.Detail, "interrupt") {
		t.Fatalf("interrupt at wrong pc not flagged: %v", m)
	}
}

func TestSnapshotCompare(t *testing.T) {
	chk := harness(t)
	chk.Process(commitRec(1, mem.RAMBase, 1, 5))
	cc := chk.Cores[0]

	good := snapshot.IntRegState(cc.Ref.M)
	if m := chk.Process(event.Record{Seq: 1, Core: 0, Ev: good}); m != nil {
		t.Fatalf("matching snapshot flagged: %v", m)
	}
	bad := snapshot.IntRegState(cc.Ref.M)
	bad.GPR[4] ^= 1
	m := chk.Process(event.Record{Seq: 1, Core: 0, Ev: bad})
	if m == nil || m.Kind != event.KindArchIntRegState {
		t.Fatalf("diverged snapshot not flagged: %v", m)
	}
}

func TestRefillChecksMemory(t *testing.T) {
	chk := harness(t)
	cc := chk.Cores[0]
	line := mem.RAMBase + 0x1000&^uint64(63)
	var rf event.Refill
	rf.Addr = line
	for i := range rf.Data {
		rf.Data[i] = cc.Ref.M.Mem.Read(line+uint64(i)*8, 8)
	}
	if m := chk.Process(event.Record{Core: 0, Ev: &rf}); m != nil {
		t.Fatalf("matching refill flagged: %v", m)
	}
	rf.Data[3] ^= 0x40
	if m := chk.Process(event.Record{Core: 0, Ev: &rf}); m == nil {
		t.Fatal("corrupt refill not flagged")
	}
}

func TestTLBIdentityCheck(t *testing.T) {
	chk := harness(t)
	ok := &event.L1TLB{VPN: 0x80001, PPN: 0x80001, Perm: 0xF, Level: 2}
	if m := chk.Process(event.Record{Core: 0, Ev: ok}); m != nil {
		t.Fatalf("identity TLB fill flagged: %v", m)
	}
	bad := &event.L1TLB{VPN: 0x80001, PPN: 0x90001}
	if m := chk.Process(event.Record{Core: 0, Ev: bad}); m == nil {
		t.Fatal("wrong PPN not flagged")
	}
}

func TestTrapRecorded(t *testing.T) {
	chk := harness(t)
	chk.Process(event.Record{Core: 0, Ev: &event.Trap{Code: 0, PC: mem.RAMBase}})
	fin, code := chk.Finished()
	if !fin || code != 0 {
		t.Errorf("trap not recorded: %v %d", fin, code)
	}
}

func TestUnknownCoreRejected(t *testing.T) {
	chk := harness(t)
	if m := chk.Process(event.Record{Core: 5, Ev: &event.Trap{}}); m == nil {
		t.Error("record for unknown core accepted")
	}
}

func TestMismatchErrorString(t *testing.T) {
	m := &checker.Mismatch{Core: 1, Seq: 42, Kind: event.KindLoad, PC: 0x80000000, Detail: "boom"}
	s := m.Error()
	if !strings.Contains(s, "seq 42") || !strings.Contains(s, "Load") {
		t.Errorf("error string: %s", s)
	}
	m.Fused = true
	if !strings.Contains(m.Error(), "fused") {
		t.Error("fused flag not rendered")
	}
}
