package checker

import (
	"repro/internal/arch"
	"repro/internal/derive"
	"repro/internal/event"
	"repro/internal/isa"
)

// Support for fused checking (Squash, paper §4.3): under fusion the checker
// steps the reference model through a window of instructions without
// per-instruction events, accumulating a digest of the derivable events that
// the hardware fused away. The digest, final PC, and PC XOR are compared at
// window boundaries; Replay recovers instruction-level detail on mismatch.

// InstrRet returns the number of instructions the reference model has
// retired — the checker's position in the global commit sequence.
func (cc *CoreChecker) InstrRet() uint64 { return cc.Ref.InstrRet() }

// StepDigest executes one instruction on the reference model, folding its
// derivable events (filtered by the monitored-kind set) into dig, and
// returns the execution record.
func (cc *CoreChecker) StepDigest(enabled *[event.NumKinds]bool, dig *derive.Digest) arch.Exec {
	cc.EventsChecked++
	vstart := cc.Ref.M.State.CSRVal(isa.CSRVstart)
	cc.lastExec = cc.Ref.Step()
	for _, ev := range derive.Events(cc.Ref.M, &cc.lastExec, vstart) {
		if enabled[ev.Kind()] {
			dig.Add(ev)
		}
	}
	return cc.lastExec
}

// FailFused builds a fused-level mismatch (instruction detail lost; Replay
// re-checks the buffered unfused events).
func (cc *CoreChecker) FailFused(seq uint64, detail string) *Mismatch {
	return &Mismatch{
		Core: cc.Core, Seq: seq, Kind: event.KindInstrCommit,
		PC: cc.lastExec.PC, Detail: detail, Fused: true,
	}
}
