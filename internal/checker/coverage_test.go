package checker_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestCoverageKindCounts pins that every processed event lands in the
// per-kind counter, and consecutive plain commits land in the
// commit→commit interleaving-pair cell.
func TestCoverageKindCounts(t *testing.T) {
	chk := harness(t)
	chk.Process(commitRec(1, mem.RAMBase, 1, 5))
	st := &event.InstrCommit{PC: mem.RAMBase + 4, Instr: instrAt(mem.RAMBase + 4)}
	chk.Process(event.Record{Seq: 2, Ev: st})

	cov := chk.Coverage()
	if got := cov.Kind[event.KindInstrCommit]; got != 2 {
		t.Errorf("Kind[InstrCommit] = %d, want 2", got)
	}
	if got := cov.Events(); got != 2 {
		t.Errorf("Events() = %d, want 2", got)
	}
	cell := checker.ClsCommit*checker.NumSyncClasses + checker.ClsCommit
	if got := cov.Pair[cell]; got != 2 {
		t.Errorf("Pair[commit→commit] = %d, want 2 (initial cursor is commit)", got)
	}
}

// TestCoverageTrapMMIOAdjacency pins the trap/MMIO adjacency stressor
// counter and the interrupt/MMIO proximity counters: a machine timer
// interrupt followed closely by a skipped (device) commit must raise all
// three signals.
func TestCoverageTrapMMIOAdjacency(t *testing.T) {
	chk := harness(t)
	irq := &event.Interrupt{PC: mem.RAMBase, Cause: isa.IntTimerM}
	if m := chk.Process(event.Record{Seq: 1, Ev: irq}); m != nil {
		t.Fatalf("interrupt sync flagged: %v", m)
	}
	skip := &event.InstrCommit{PC: mem.RAMBase, Flags: event.CommitSkip}
	if m := chk.Process(event.Record{Seq: 2, Ev: skip}); m != nil {
		t.Fatalf("skipped commit flagged: %v", m)
	}

	cov := chk.Coverage()
	if cov.TrapMMIOAdj != 1 {
		t.Errorf("TrapMMIOAdj = %d, want 1", cov.TrapMMIOAdj)
	}
	if got := cov.Prox[checker.ProxTimerIrq]; got != 1 {
		t.Errorf("Prox[TimerIrq] = %d, want 1", got)
	}
	if got := cov.Prox[checker.ProxMMIOSkip]; got != 1 {
		t.Errorf("Prox[MMIOSkip] = %d, want 1", got)
	}
	cell := checker.ClsInterrupt*checker.NumSyncClasses + checker.ClsMMIO
	if got := cov.Pair[cell]; got != 1 {
		t.Errorf("Pair[interrupt→mmio] = %d, want 1", got)
	}
}

// TestCoverageAdjacencyWindowExpires pins the window bound: an MMIO event
// arriving after more than adjWindow intervening events no longer counts as
// trap-adjacent.
func TestCoverageAdjacencyWindowExpires(t *testing.T) {
	chk := harness(t)
	irq := &event.Interrupt{PC: mem.RAMBase, Cause: isa.IntTimerM}
	if m := chk.Process(event.Record{Seq: 1, Ev: irq}); m != nil {
		t.Fatalf("interrupt sync flagged: %v", m)
	}
	// Drain the window with informational events that carry no state.
	for i := 0; i < 10; i++ {
		chk.Process(event.Record{Seq: uint64(2 + i), Ev: &event.CMO{}})
	}
	skip := &event.InstrCommit{PC: mem.RAMBase, Flags: event.CommitSkip}
	chk.Process(event.Record{Seq: 20, Ev: skip})

	if cov := chk.Coverage(); cov.TrapMMIOAdj != 0 {
		t.Errorf("TrapMMIOAdj = %d after window expired, want 0", cov.TrapMMIOAdj)
	}
}

// TestCoverageExceptionProximity drives an ecall through the reference
// model and checks the exception-class proximity counters.
func TestCoverageExceptionProximity(t *testing.T) {
	img := mem.New()
	enc := isa.MustEncode(isa.Inst{Op: isa.OpECALL})
	img.Write(mem.RAMBase, 4, uint64(enc))
	chk := checker.New(img, []uint64{mem.RAMBase}, 1)

	ev := &event.InstrCommit{PC: mem.RAMBase, Instr: enc}
	if m := chk.Process(event.Record{Seq: 1, Ev: ev}); m != nil {
		t.Fatalf("ecall commit flagged: %v", m)
	}
	cov := chk.Coverage()
	if got := cov.Prox[checker.ProxException]; got != 1 {
		t.Errorf("Prox[Exception] = %d, want 1", got)
	}
	if got := cov.Prox[checker.ProxEcall]; got != 1 {
		t.Errorf("Prox[Ecall] = %d, want 1", got)
	}
}

// TestCoverageAddMerges pins the merge arithmetic Coverage.Add and the
// multi-core merge in Checker.Coverage rely on.
func TestCoverageAddMerges(t *testing.T) {
	var a, b checker.Coverage
	a.Kind[event.KindInstrCommit] = 3
	a.Prox[checker.ProxAmo] = 1
	a.TrapMMIOAdj = 2
	b.Kind[event.KindInstrCommit] = 4
	b.Pair[5] = 7
	b.Prox[checker.ProxAmo] = 2

	a.Add(&b)
	if a.Kind[event.KindInstrCommit] != 7 || a.Pair[5] != 7 ||
		a.Prox[checker.ProxAmo] != 3 || a.TrapMMIOAdj != 2 {
		t.Errorf("merge wrong: kind=%d pair=%d prox=%d adj=%d",
			a.Kind[event.KindInstrCommit], a.Pair[5], a.Prox[checker.ProxAmo], a.TrapMMIOAdj)
	}
	if a.Events() != 7 {
		t.Errorf("Events() = %d, want 7", a.Events())
	}
}
