package checker

import "sync"

// Concurrency contract: a Checker and its CoreCheckers are not internally
// synchronized, but cores are fully independent — each CoreChecker owns its
// reference model and counters and touches no shared state. A concurrent
// consumer (the executed pipeline) may therefore drive different cores from
// different goroutines, as long as each core's event stream stays on one
// goroutine and mismatch reporting goes through a Collector.

// Collector accumulates mismatches reported by concurrently-running
// per-core checkers and resolves the deterministic winner: the mismatch
// with the lowest sequence number (ties broken by core id). This makes a
// parallel consumer agree with the sequential checking order, where the
// earliest divergence in the stream always aborts the run first.
type Collector struct {
	mu    sync.Mutex
	first *Mismatch
	count int
}

// Offer reports one mismatch; nil is ignored. Safe for concurrent use.
func (c *Collector) Offer(m *Mismatch) {
	if m == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	if c.first == nil || m.Seq < c.first.Seq ||
		(m.Seq == c.first.Seq && m.Core < c.first.Core) {
		c.first = m
	}
}

// First returns the winning mismatch, or nil if none was offered.
func (c *Collector) First() *Mismatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.first
}

// Count returns how many mismatches were offered in total.
func (c *Collector) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}
