// Package checker implements the software-side ISA checker: it drives the
// reference model from the DUT's verification events, synchronizes
// non-deterministic events, and compares architectural state after each
// instruction (paper §2.2). A mismatch aborts co-simulation with a detailed
// failure context; under Squash, the Replay unit then re-checks the original
// unfused events at instruction granularity.
package checker

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/event"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/ref"
	"repro/internal/snapshot"
)

// Mismatch describes a detected divergence between DUT and REF.
type Mismatch struct {
	Core   uint8
	Seq    uint64
	Kind   event.Kind
	PC     uint64
	Detail string
	Fused  bool // detected on a fused event (instruction-level detail lost)
}

// Error implements error.
func (m *Mismatch) Error() string {
	where := "instruction"
	if m.Fused {
		where = "fused event"
	}
	return fmt.Sprintf("mismatch on %s: core %d seq %d pc %#x kind %v: %s",
		where, m.Core, m.Seq, m.PC, m.Kind, m.Detail)
}

// CoreChecker checks one hart against its own reference model.
type CoreChecker struct {
	Core uint8
	Ref  *ref.Ref

	lastExec arch.Exec // REF execution record for the current instruction
	trapSeen bool
	trapCode uint64

	// Coverage signal for the workload fuzzer (see coverage.go). covLast
	// and covAdj are the pair-tracking and trap-adjacency cursors.
	cov     Coverage
	covLast int
	covAdj  int

	// EventsChecked counts processed events (software-cost accounting).
	EventsChecked uint64
	BytesChecked  uint64
}

// Checker verifies a multi-core DUT, one reference model per hart.
type Checker struct {
	Cores []*CoreChecker
}

// New builds a checker whose reference models start from the given image
// and per-core entry PCs — the same initial state as the DUT.
func New(image *mem.Memory, entries []uint64, cores int) *Checker {
	c := &Checker{}
	for i := 0; i < cores; i++ {
		r := ref.New(image)
		if i < len(entries) {
			r.M.State.PC = entries[i]
		}
		r.M.State.SetCSR(isa.CSRMhartid, uint64(i))
		c.Cores = append(c.Cores, &CoreChecker{Core: uint8(i), Ref: r})
	}
	return c
}

// Process dispatches a record to its core's checker.
func (c *Checker) Process(rec event.Record) *Mismatch {
	if int(rec.Core) >= len(c.Cores) {
		return &Mismatch{Core: rec.Core, Seq: rec.Seq, Detail: "record for unknown core"}
	}
	return c.Cores[rec.Core].Process(rec)
}

// Finished reports whether a Trap event was observed and its code.
func (c *Checker) Finished() (bool, uint64) {
	for _, cc := range c.Cores {
		if cc.trapSeen {
			return true, cc.trapCode
		}
	}
	return false, 0
}

func (cc *CoreChecker) fail(rec event.Record, format string, args ...any) *Mismatch {
	seq := rec.Seq
	if seq == 0 {
		// Per-event transports do not carry sequence numbers; the checker's
		// own position identifies the instruction.
		seq = cc.Ref.InstrRet()
	}
	return &Mismatch{
		Core: cc.Core, Seq: seq, Kind: rec.Ev.Kind(), PC: cc.lastExec.PC,
		Detail: fmt.Sprintf(format, args...),
	}
}

// Process checks one verification event in program order. For InstrCommit
// events it advances the reference model; for state and memory events it
// compares against the model's current state.
func (cc *CoreChecker) Process(rec event.Record) *Mismatch {
	cc.EventsChecked++
	cc.BytesChecked += uint64(event.SizeOf(rec.Ev.Kind()))
	cc.observe(rec.Ev)

	switch ev := rec.Ev.(type) {
	case *event.InstrCommit:
		return cc.processCommit(rec, ev)

	case *event.Interrupt:
		if pc := cc.Ref.PC(); pc != ev.PC {
			return cc.fail(rec, "interrupt at REF pc %#x, DUT pc %#x", pc, ev.PC)
		}
		cc.Ref.TakeInterrupt(ev.Cause)
		return nil

	case *event.VirtualInterrupt:
		// Informational: the paired Interrupt event performs the sync.
		return nil

	case *event.Exception:
		le := &cc.lastExec
		if !le.Exception || le.Cause != ev.Cause || le.Tval != ev.Tval {
			return cc.fail(rec, "exception cause/tval: DUT (%d,%#x) REF (%v,%d,%#x)",
				ev.Cause, ev.Tval, le.Exception, le.Cause, le.Tval)
		}
		return nil

	case *event.Redirect:
		if ev.Taken != 0 && cc.lastExec.NextPC != ev.Target {
			return cc.fail(rec, "redirect target %#x, REF next pc %#x", ev.Target, cc.lastExec.NextPC)
		}
		return nil

	case *event.Trap:
		cc.trapSeen, cc.trapCode = true, ev.Code
		return nil

	case *event.Load:
		if ev.MMIO != 0 {
			return nil // value already synchronized through the skipped commit
		}
		le := &cc.lastExec
		if !le.Mem || !le.IsLoad {
			return cc.fail(rec, "load event but REF executed no load")
		}
		if le.MemAddr != ev.PAddr || le.MemData != ev.Data {
			return cc.fail(rec, "load addr/data: DUT (%#x,%#x) REF (%#x,%#x)",
				ev.PAddr, ev.Data, le.MemAddr, le.MemData)
		}
		return nil

	case *event.Store:
		if ev.MMIO != 0 {
			return nil
		}
		le := &cc.lastExec
		if !le.Mem || le.IsLoad {
			return cc.fail(rec, "store event but REF executed no store")
		}
		if le.MemAddr != ev.Addr || le.MemData != ev.Data {
			return cc.fail(rec, "store addr/data: DUT (%#x,%#x) REF (%#x,%#x)",
				ev.Addr, ev.Data, le.MemAddr, le.MemData)
		}
		return nil

	case *event.Atomic:
		le := &cc.lastExec
		if !le.Atomic {
			return cc.fail(rec, "atomic event but REF executed no AMO")
		}
		if le.AtomicOld != ev.Old || le.MemData != ev.Data {
			return cc.fail(rec, "amo old/new: DUT (%#x,%#x) REF (%#x,%#x)",
				ev.Old, ev.Data, le.AtomicOld, le.MemData)
		}
		return nil

	case *event.LrSc:
		le := &cc.lastExec
		if !le.LrSc {
			return cc.fail(rec, "lr/sc event but REF executed none")
		}
		succ := uint8(0)
		if le.ScSuccess {
			succ = 1
		}
		if ev.Success != succ {
			return cc.fail(rec, "sc success: DUT %d REF %d", ev.Success, succ)
		}
		return nil

	case *event.Refill:
		return cc.checkLine(rec, ev.Addr, func(i int, want uint64) *Mismatch {
			if ev.Data[i] != want {
				return cc.fail(rec, "refill data[%d] at %#x: DUT %#x REF %#x", i, ev.Addr, ev.Data[i], want)
			}
			return nil
		})

	case *event.Sbuffer:
		var line [64]byte
		cc.Ref.M.Mem.ReadBytes(ev.Addr, line[:])
		for i, b := range ev.Data {
			if ev.Mask&(1<<(i/8)) != 0 && b != line[i] {
				return cc.fail(rec, "sbuffer byte %d at %#x: DUT %#x REF %#x", i, ev.Addr, b, line[i])
			}
		}
		return nil

	case *event.L1TLB:
		if ev.PPN != ev.VPN { // identity translation (satp=0 bare mode)
			return cc.fail(rec, "L1 TLB fill vpn %#x → ppn %#x, want identity", ev.VPN, ev.PPN)
		}
		return nil

	case *event.L2TLB:
		if ev.PPN != ev.VPN || ev.GVPN != ev.VPN {
			return cc.fail(rec, "L2 TLB fill vpn %#x → (ppn %#x, gvpn %#x), want identity", ev.VPN, ev.PPN, ev.GVPN)
		}
		return nil

	case *event.CMO:
		return nil // maintenance ops carry no architectural state

	case *event.VecCommit:
		le := &cc.lastExec
		if !le.Vec || le.Vl != ev.Vl {
			return cc.fail(rec, "vector commit vl: DUT %d REF (%v,%d)", ev.Vl, le.Vec, le.Vl)
		}
		return nil

	case *event.VecWriteback:
		le := &cc.lastExec
		if !le.WroteVec || le.VData != ev.Data {
			return cc.fail(rec, "vector writeback v%d: DUT %x REF %x", ev.VdIdx, ev.Data, le.VData)
		}
		return nil

	case *event.VecMem:
		le := &cc.lastExec
		if !le.Mem {
			return cc.fail(rec, "vector mem event but REF executed no access")
		}
		if le.MemAddr != ev.Addr {
			return cc.fail(rec, "vector mem addr: DUT %#x REF %#x", ev.Addr, le.MemAddr)
		}
		return nil

	case *event.HLoad:
		le := &cc.lastExec
		if !le.Mem || !le.IsLoad || le.MemData != ev.Data {
			return cc.fail(rec, "hypervisor load: DUT %#x REF %#x", ev.Data, le.MemData)
		}
		return nil

	case *event.GuestPageFault:
		le := &cc.lastExec
		if !le.Exception || le.Cause != ev.Cause {
			return cc.fail(rec, "guest page fault cause: DUT %d REF (%v,%d)", ev.Cause, le.Exception, le.Cause)
		}
		return nil

	case *event.HTrap:
		le := &cc.lastExec
		if !le.Exception || le.Cause != ev.Cause {
			return cc.fail(rec, "hypervisor trap cause: DUT %d REF %d", ev.Cause, le.Cause)
		}
		return nil

	case *event.VstartUpdate:
		if got := cc.Ref.M.State.CSRVal(isa.CSRVstart); ev.New != got {
			return cc.fail(rec, "vstart: DUT %d REF %d", ev.New, got)
		}
		return nil

	case *event.VecExceptionTrack:
		le := &cc.lastExec
		if !le.Exception {
			return cc.fail(rec, "vector exception track without REF exception")
		}
		return nil

	default:
		// State snapshot events: rebuild from REF and compare bitwise.
		if want := snapshot.Build(rec.Ev.Kind(), cc.Ref.M); want != nil {
			if !event.Equal(rec.Ev, want) {
				return cc.fail(rec, "state snapshot diverged: %s", describeDiff(rec.Ev, want))
			}
			return nil
		}
		return cc.fail(rec, "unhandled event kind")
	}
}

func (cc *CoreChecker) checkLine(rec event.Record, addr uint64, cmp func(int, uint64) *Mismatch) *Mismatch {
	for i := 0; i < 8; i++ {
		want := cc.Ref.M.Mem.Read(addr+uint64(i)*8, 8)
		if m := cmp(i, want); m != nil {
			return m
		}
	}
	return nil
}

func (cc *CoreChecker) processCommit(rec event.Record, ev *event.InstrCommit) *Mismatch {
	if ev.Flags&event.CommitSkip != 0 {
		// MMIO instruction: synchronize the DUT-observed result instead of
		// executing (the REF has no devices).
		cc.Ref.Skip(ev.Flags&event.CommitRfWen != 0, ev.Wdest, ev.Wdata)
		cc.lastExec = arch.Exec{PC: ev.PC, NextPC: ev.PC + 4, Mem: true, IsLoad: true,
			MemAddr: 0, MemData: ev.Wdata, MMIO: true}
		return nil
	}
	if pc := cc.Ref.PC(); pc != ev.PC {
		m := cc.fail(rec, "commit pc: DUT %#x REF %#x", ev.PC, pc)
		m.PC = ev.PC
		return m
	}
	cc.lastExec = cc.Ref.Step()
	le := &cc.lastExec
	cc.observeExec(le)

	if le.Instr != ev.Instr {
		return cc.fail(rec, "instruction word: DUT %#x REF %#x", ev.Instr, le.Instr)
	}
	switch {
	case ev.Flags&event.CommitRfWen != 0:
		if !le.WroteInt || le.Wdest != ev.Wdest || le.Wdata != ev.Wdata {
			return cc.fail(rec, "int writeback x%d=%#x, REF (%v,x%d=%#x)",
				ev.Wdest, ev.Wdata, le.WroteInt, le.Wdest, le.Wdata)
		}
	case ev.Flags&event.CommitFpWen != 0:
		if !le.WroteFp || le.Wdest != ev.Wdest || le.Wdata != ev.Wdata {
			return cc.fail(rec, "fp writeback f%d=%#x, REF (%v,f%d=%#x)",
				ev.Wdest, ev.Wdata, le.WroteFp, le.Wdest, le.Wdata)
		}
	default:
		if le.WroteInt && le.Wdest != 0 || le.WroteFp {
			return cc.fail(rec, "DUT commit wrote nothing, REF wrote a register")
		}
	}
	return nil
}

func describeDiff(got, want event.Event) string {
	a := got.AppendTo(event.GetBuf(got.EncodedSize()))
	b := want.AppendTo(event.GetBuf(want.EncodedSize()))
	defer event.PutBuf(a)
	defer event.PutBuf(b)
	for i := range a {
		if a[i] != b[i] {
			word := i / 8 * 8
			return fmt.Sprintf("%v word at byte %d: DUT %x REF %x",
				got.Kind(), word, a[word:word+8], b[word:word+8])
		}
	}
	return "identical encodings"
}
