package checker

import (
	"repro/internal/arch"
	"repro/internal/event"
	"repro/internal/isa"
)

// Coverage is the checker's semantic feedback signal for the coverage-guided
// workload fuzzer (internal/fuzz): cheap counters the per-core checkers
// already have the data for, exported so a campaign can tell which regions
// of the order-semantics space a workload actually exercised. Everything is
// a plain counter — the fuzzer buckets them log-scale into features, so the
// checker stays allocation-free on the hot path.
//
// The struct is JSON-serializable: a difftestd session ships it back in the
// closing Verdict frame, so remote and fleet-fanned campaigns get the same
// signal as in-process runs.
type Coverage struct {
	// Kind counts checked events per verification-event kind — the
	// software-side mirror of the DUT monitor's per-kind traffic.
	Kind [event.NumKinds]uint64 `json:"kind"`
	// Pair counts consecutive sync-class transitions (NDE interleaving
	// pairs): Pair[from*NumSyncClasses+to]. An interrupt landing right after
	// an MMIO access and the reverse ordering are different cells — the
	// order-semantics corners Squash fusion must break on.
	Pair [NumSyncClasses * NumSyncClasses]uint64 `json:"pair"`
	// TrapMMIOAdj counts MMIO events observed within adjWindow events after
	// a trap (interrupt or exception) — the trap/MMIO adjacency stressor.
	TrapMMIOAdj uint64 `json:"trap_mmio_adj"`
	// Prox counts bug-trigger proximity conditions (see the Prox*
	// constants): occurrences of the architectural predicates the bug
	// library keys its latent corruptions on. A workload that raises a
	// proximity counter is closer to firing any bug gated on that
	// condition, even before one manifests.
	Prox [NumProx]uint64 `json:"prox"`
}

// Sync classes for interleaving-pair tracking: the coarse event classes
// whose relative order the checker must get right.
const (
	ClsCommit    = iota // plain instruction commits
	ClsMMIO             // skipped (device) commits and MMIO loads/stores
	ClsInterrupt        // asynchronous interrupts
	ClsException        // synchronous exceptions, guest faults, hyp traps
	ClsAtomic           // AMO and LR/SC events
	ClsVec              // vector commits, writebacks, vstart traffic
	ClsHyp              // hypervisor loads
	ClsOther            // state snapshots, hierarchy events, everything else
	NumSyncClasses
)

// Bug-trigger proximity counters. Each mirrors a predicate class the bug
// library (internal/bugs) arms its corruptions on; the fuzzer rewards
// workloads that push these up.
const (
	ProxException    = iota // any synchronous exception
	ProxEcall               // ecall traps
	ProxGuestFault          // guest load page faults
	ProxMret                // mret returns
	ProxTimerIrq            // machine timer interrupts
	ProxMMIOSkip            // skipped (device-synchronized) commits
	ProxLoadNegByte         // sign-extending byte loads of negative values
	ProxStoreWord           // 4-byte RAM stores
	ProxAmo                 // atomic read-modify-writes
	ProxScFail              // failed store-conditionals
	ProxLoadDouble          // 8-byte RAM loads into integer registers
	ProxHypLoad             // hypervisor guest loads
	ProxVecWriteback        // vector register writebacks
	ProxVecFullVl           // vector adds at saturated vl
	ProxVsetvli             // vector length renegotiations
	ProxBranchTaken         // taken conditional branches
	ProxFsgnj               // fp sign-injections
	ProxCsrSet              // csrrs set-bit writes to delegation/scratch CSRs
	ProxVecStore            // vector stores
	NumProx
)

// adjWindow is how many events after a trap still count as "adjacent" for
// the trap/MMIO adjacency counter.
const adjWindow = 8

// Add accumulates o into c (per-core merge).
func (c *Coverage) Add(o *Coverage) {
	for i := range c.Kind {
		c.Kind[i] += o.Kind[i]
	}
	for i := range c.Pair {
		c.Pair[i] += o.Pair[i]
	}
	c.TrapMMIOAdj += o.TrapMMIOAdj
	for i := range c.Prox {
		c.Prox[i] += o.Prox[i]
	}
}

// Events returns the total checked-event count baked into the kind counters.
func (c *Coverage) Events() uint64 {
	var n uint64
	for _, k := range c.Kind {
		n += k
	}
	return n
}

// Coverage merges the per-core coverage counters into one signal. Call it
// only after checking has quiesced (the run finished or the pipeline
// joined): per-core counters are owned by whichever goroutine drives that
// core's stream.
func (c *Checker) Coverage() *Coverage {
	cov := &Coverage{}
	for _, cc := range c.Cores {
		cov.Add(&cc.cov)
	}
	return cov
}

// syncClass maps an event to its interleaving class. MMIO is resolved from
// the event payload (skipped commits, device loads/stores), not the kind
// alone.
func syncClass(ev event.Event) int {
	switch e := ev.(type) {
	case *event.InstrCommit:
		if e.Flags&event.CommitSkip != 0 {
			return ClsMMIO
		}
		return ClsCommit
	case *event.Load:
		if e.MMIO != 0 {
			return ClsMMIO
		}
		return ClsOther
	case *event.Store:
		if e.MMIO != 0 {
			return ClsMMIO
		}
		return ClsOther
	case *event.Interrupt, *event.VirtualInterrupt:
		return ClsInterrupt
	case *event.Exception, *event.GuestPageFault, *event.HTrap:
		return ClsException
	case *event.Atomic, *event.LrSc:
		return ClsAtomic
	case *event.VecCommit, *event.VecWriteback, *event.VecMem,
		*event.VstartUpdate, *event.VecExceptionTrack:
		return ClsVec
	case *event.HLoad:
		return ClsHyp
	default:
		return ClsOther
	}
}

// observe tracks one checked event's contribution to the coverage signal.
// Called from Process before dispatch, so every event lands in the kind and
// pair counters regardless of which case handles it.
func (cc *CoreChecker) observe(ev event.Event) {
	cov := &cc.cov
	cov.Kind[ev.Kind()]++
	cls := syncClass(ev)
	cov.Pair[cc.covLast*NumSyncClasses+cls]++
	cc.covLast = cls

	switch cls {
	case ClsInterrupt, ClsException:
		cc.covAdj = adjWindow
	case ClsMMIO:
		if cc.covAdj > 0 {
			cov.TrapMMIOAdj++
		}
		fallthrough
	default:
		if cc.covAdj > 0 {
			cc.covAdj--
		}
	}

	switch e := ev.(type) {
	case *event.Interrupt:
		if e.Cause&0x3F == isa.IntTimerM {
			cov.Prox[ProxTimerIrq]++
		}
	case *event.InstrCommit:
		if e.Flags&event.CommitSkip != 0 {
			cov.Prox[ProxMMIOSkip]++
		}
	}
}

// observeExec bumps the bug-trigger proximity counters from the reference
// model's execution record for one committed instruction — the same
// architectural predicates the bug library's counterHook triggers key on.
func (cc *CoreChecker) observeExec(le *arch.Exec) {
	p := &cc.cov.Prox
	if le.Exception {
		p[ProxException]++
		switch le.Cause {
		case isa.ExcEcallM:
			p[ProxEcall]++
		case isa.ExcGuestLoadPageFault:
			p[ProxGuestFault]++
		}
	}
	switch le.Inst.Op {
	case isa.OpMRET:
		p[ProxMret]++
	case isa.OpLB:
		if !le.MMIO && int64(le.Wdata) < 0 {
			p[ProxLoadNegByte]++
		}
	case isa.OpHLVD:
		if !le.Exception {
			p[ProxHypLoad]++
		}
	case isa.OpVADDVV:
		if le.Vl == 4 {
			p[ProxVecFullVl]++
		}
	case isa.OpVSETVLI:
		p[ProxVsetvli]++
	case isa.OpFSGNJD:
		p[ProxFsgnj]++
	case isa.OpVSE:
		p[ProxVecStore]++
	case isa.OpSCD:
		if le.LrSc && !le.ScSuccess {
			p[ProxScFail]++
		}
	case isa.OpCSRRS:
		if le.Inst.Rs1 != 0 {
			switch le.Inst.CSR {
			case isa.CSRMscratch, isa.CSRMedeleg, isa.CSRMideleg,
				isa.CSRHedeleg, isa.CSRHideleg:
				p[ProxCsrSet]++
			}
		}
	}
	if le.Mem && !le.MMIO {
		switch {
		case !le.IsLoad && le.MemSize == 4:
			p[ProxStoreWord]++
		case le.IsLoad && le.MemSize == 8 && le.WroteInt:
			p[ProxLoadDouble]++
		}
	}
	if le.Atomic {
		p[ProxAmo]++
	}
	if le.Vec && le.WroteVec {
		p[ProxVecWriteback]++
	}
	if isa.ClassOf(le.Inst.Op) == isa.ClassBranch && le.NextPC != le.PC+4 {
		p[ProxBranchTaken]++
	}
}
