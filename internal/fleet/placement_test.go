package fleet

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestRankShardsDeterministic pins the HRW contract: the ranking is a pure
// function of (key, candidate set) — same inputs, same full order — and the
// load spreads across shards rather than piling on one.
func TestRankShardsDeterministic(t *testing.T) {
	shards := []string{"tcp://a:1", "tcp://b:1", "tcp://c:1"}
	tops := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tenant|dut|plat|EBINSD|boot|40000|%d", i)
		first := rankShards(key, shards)
		again := rankShards(key, shards)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("key %q: ranking not deterministic: %v vs %v", key, first, again)
		}
		if len(first) != len(shards) {
			t.Fatalf("key %q: ranking dropped candidates: %v", key, first)
		}
		tops[first[0]]++
	}
	for _, s := range shards {
		if tops[s] == 0 {
			t.Errorf("shard %s never ranked first over 200 keys: %v", s, tops)
		}
	}
}

// TestRankShardsRemovalStability is the rendezvous-hashing property the
// fleet's migration story rests on: removing one shard reassigns only the
// sessions that shard owned — everyone else keeps their top pick — and the
// displaced sessions land on their previous second choice.
func TestRankShardsRemovalStability(t *testing.T) {
	shards := []string{"tcp://a:1", "tcp://b:1", "tcp://c:1", "tcp://d:1"}
	const dead = "tcp://b:1"
	survivors := []string{"tcp://a:1", "tcp://c:1", "tcp://d:1"}
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := rankShards(key, shards)
		after := rankShards(key, survivors)
		if before[0] != dead {
			if after[0] != before[0] {
				t.Fatalf("key %q: losing %s moved an unrelated session %s → %s",
					key, dead, before[0], after[0])
			}
			continue
		}
		moved++
		if after[0] != before[1] {
			t.Fatalf("key %q: displaced session landed on %s, want previous runner-up %s",
				key, after[0], before[1])
		}
	}
	if moved == 0 {
		t.Fatal("no key ever placed on the removed shard; the test proved nothing")
	}
}

// TestHRWScoreSeparator: the key/shard boundary must be part of the hash, so
// ("a","bc") and ("ab","c") score differently.
func TestHRWScoreSeparator(t *testing.T) {
	if hrwScore("a", "bc") == hrwScore("ab", "c") {
		t.Fatal("hrwScore ignores the key/shard boundary")
	}
}

func TestParseShards(t *testing.T) {
	got, err := ParseShards(" localhost:9740 ,unix:/tmp/s.sock, shm:///dev/shm/d ")
	if err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	want := []string{"tcp://localhost:9740", "unix:///tmp/s.sock", "shm:///dev/shm/d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("canonicalization: got %v, want %v", got, want)
	}

	for _, bad := range []string{
		"",                            // empty list
		"   ",                         // blank list
		"tcp://a:1,",                  // trailing empty entry
		"tcp://",                      // empty address
		"://x",                        // empty scheme
		"tcp://h:1,h:1",               // duplicate after canonicalization
		"unix:/s.sock,unix:///s.sock", // duplicate across legacy/canonical forms
	} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}
}

func TestScaleWindow(t *testing.T) {
	cases := []struct {
		tokens int
		share  float64
		want   int
	}{
		{16, 0, 16},    // zero share = passthrough
		{16, 1, 16},    // full share = passthrough
		{16, 1.5, 16},  // shares never out-credit the shard
		{16, 0.5, 8},   // the fair-share case
		{16, 0.26, 4},  // rounds
		{16, 0.001, 1}, // clamps up to a usable window
		{1, 0.5, 1},    // never below one token
	}
	for _, c := range cases {
		if got := scaleWindow(c.tokens, c.share); got != c.want {
			t.Errorf("scaleWindow(%d, %v) = %d, want %d", c.tokens, c.share, got, c.want)
		}
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Error("router with no shards accepted")
	}
	if _, err := NewRouter(Config{Shards: []string{"tcp://"}}); err == nil {
		t.Error("router with an invalid shard spec accepted")
	}
	if _, err := NewRouter(Config{Shards: []string{"h:1", "tcp://h:1"}}); err == nil {
		t.Error("router with a duplicated shard (across spec forms) accepted")
	}
	r, err := NewRouter(Config{Shards: []string{"tcp://h:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.StatsInterval != time.Second || r.cfg.DialTimeout != 5*time.Second {
		t.Errorf("defaults not applied: %+v", r.cfg)
	}
	if r.cfg.ResumeWindow <= 0 {
		t.Error("a router must always keep a resume window — resume is the migration mechanism")
	}
}
