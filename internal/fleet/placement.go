package fleet

import (
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) placement: every router replica,
// given the same session key and the same live shard set, computes the same
// shard ranking with no coordination — the "consistent session placement"
// half of the fleet design. Unlike a hash ring, HRW needs no virtual nodes
// and removing one shard reassigns only that shard's sessions: everything
// else keeps its top-ranked shard.

// hrwScore hashes one (key, shard) pair with FNV-1a 64. The shard address
// is hashed after the key with a separator so "a"+"bc" and "ab"+"c" differ.
func hrwScore(key, shard string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(shard))
	return h.Sum64()
}

// rankShards orders candidates by descending HRW score for key, breaking
// exact score ties by address so the order is total and replica-stable. The
// caller walks the ranking and takes the first shard that is healthy and has
// capacity; the walk — not just the top pick — is what makes a drained or
// dead shard's sessions land deterministically on their next-best shard.
func rankShards(key string, candidates []string) []string {
	ranked := append([]string(nil), candidates...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := hrwScore(key, ranked[i]), hrwScore(key, ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}
