package fleet

import (
	"encoding/json"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fakeShard accepts framed connections and runs script on each — a shard
// that misbehaves in exactly the way a test needs. Scripts must answer
// FrameStats polls themselves (or not), since the router's health poller
// dials in too.
func fakeShard(t *testing.T, script func(conn transport.FrameTransport)) string {
	t.Helper()
	spec := "unix:" + filepath.Join(t.TempDir(), "fake.sock")
	l, err := transport.Listen(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.AcceptFrame()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				script(conn)
			}()
		}
	}()
	return spec
}

// healthyStats answers one inbound frame if it is a stats poll, so a fake
// shard stays in placement. Returns the frame for the script to handle and
// whether it was already consumed.
func answerStats(conn transport.FrameTransport) (transport.FrameHeader, []byte, bool) {
	h, payload, err := conn.ReadFrame()
	if err != nil {
		return h, nil, true
	}
	if h.Type == transport.FrameStats {
		conn.ReleasePayload(payload)
		b, _ := json.Marshal(&transport.StatsInfo{Window: 4})
		conn.WriteFrame(transport.FrameStats, b)
		return h, nil, true
	}
	return h, payload, false
}

// TestRouterDialHookAndLogf: a Config.DialShard hook carries every
// router→shard connection (sessions and health polls alike), and Logf sees
// lifecycle lines.
func TestRouterDialHookAndLogf(t *testing.T) {
	_, spec := startShard(t, transport.ServerConfig{NewSession: stubNewSession, Window: 4})
	var dials, logs atomic.Int64
	r, rspec, _ := startRouter(t, Config{
		Shards:        []string{spec},
		StatsInterval: 20 * time.Millisecond,
		DialTimeout:   2 * time.Second,
		DialShard: func(addr string) (net.Conn, error) {
			dials.Add(1)
			sp, err := transport.ParseSpec(addr)
			if err != nil {
				return nil, err
			}
			return net.DialTimeout(sp.Scheme, sp.Addr, 2*time.Second)
		},
		Logf: func(format string, args ...any) { logs.Add(1) },
	})

	conn, _ := openRaw(t, rspec, stubHello("", 9))
	sendPacket(t, conn, []byte("frame"))
	if err := conn.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	var fin transport.Verdict
	readCtl(t, conn, transport.FrameDone, &fin)
	if !fin.Finished || fin.Events != 1 {
		t.Fatalf("hooked-dial session verdict %+v", fin)
	}
	if logs.Load() == 0 {
		t.Error("Logf never called across a full session lifecycle")
	}
	// At least one health poll + the session backend, all through the hook.
	waitFor(t, 5*time.Second, "dial hook to carry a poll and the session", func() bool {
		return dials.Load() >= 2
	})
	waitFor(t, 5*time.Second, "hooked shard to be polled healthy", func() bool {
		rows := r.StatsInfo().Shards
		return len(rows) == 1 && rows[0].State == StateHealthy
	})
}

// TestRouterShardHandshakeFailures: shards that grant a zero-token window,
// answer the Hello with the wrong frame kind, or send a corrupt Welcome are
// all skipped over — and with no other shard, admission is refused.
func TestRouterShardHandshakeFailures(t *testing.T) {
	cases := []struct {
		name  string
		reply func(conn transport.FrameTransport)
	}{
		{"zero-token-window", func(conn transport.FrameTransport) {
			b, _ := json.Marshal(&transport.Welcome{Proto: transport.ProtoVersion, Session: 1, Tokens: 0})
			conn.WriteFrame(transport.FrameWelcome, b)
		}},
		{"wrong-frame-kind", func(conn transport.FrameTransport) {
			conn.WriteFrame(transport.FrameEnd, nil)
		}},
		{"corrupt-welcome", func(conn transport.FrameTransport) {
			conn.WriteFrame(transport.FrameWelcome, []byte("{"))
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec := fakeShard(t, func(conn transport.FrameTransport) {
				h, payload, done := answerStats(conn)
				if done {
					return
				}
				conn.ReleasePayload(payload)
				if h.Type == transport.FrameHello {
					c.reply(conn)
				}
			})
			_, rspec, _ := startRouter(t, Config{
				Shards: []string{spec}, StatsInterval: time.Second, DialTimeout: 2 * time.Second,
			})
			conn := dialRaw(t, rspec)
			writeCtl(t, conn, transport.FrameHello, stubHello("", 1))
			expectRefusal(t, conn, "overloaded")
		})
	}
}

// TestRouterShardStreamCorruption: a shard speaking garbage mid-session
// (a ResumeOK out of nowhere) is corruption-grade — the attachment dies and
// the session is dropped, not migrated onto another victim.
func TestRouterShardStreamCorruption(t *testing.T) {
	spec := fakeShard(t, func(conn transport.FrameTransport) {
		for {
			h, payload, done := answerStats(conn)
			if done {
				if payload == nil && h.Type != transport.FrameStats {
					return // read error
				}
				continue
			}
			conn.ReleasePayload(payload)
			//lint:ignore framekind scripted misbehaving shard answers only the frames the test sends
			switch h.Type {
			case transport.FrameHello:
				b, _ := json.Marshal(&transport.Welcome{Proto: transport.ProtoVersion, Session: 1, Tokens: 4})
				conn.WriteFrame(transport.FrameWelcome, b)
			case transport.FramePacket:
				conn.WriteFrame(transport.FrameResumeOK, []byte("{}"))
				return
			default:
				return
			}
		}
	})
	r, rspec, _ := startRouter(t, Config{
		Shards: []string{spec}, StatsInterval: time.Second, DialTimeout: 2 * time.Second,
	})
	conn, _ := openRaw(t, rspec, stubHello("", 1))
	if err := conn.WriteFrame(transport.FramePacket, []byte("frame")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.ReadFrame(); err == nil {
		t.Fatal("connection survived shard stream corruption")
	}
	waitFor(t, 5*time.Second, "corrupted session to be dropped", func() bool {
		return r.Sessions() == 0
	})
}

// TestRouterPollMarksBadStatsDown: a shard that answers health polls with
// the wrong frame kind is withdrawn from placement.
func TestRouterPollMarksBadStatsDown(t *testing.T) {
	spec := fakeShard(t, func(conn transport.FrameTransport) {
		if _, _, err := conn.ReadFrame(); err != nil {
			return
		}
		conn.WriteFrame(transport.FrameEnd, nil)
	})
	r, _, _ := startRouter(t, Config{
		Shards: []string{spec}, StatsInterval: 5 * time.Millisecond, DialTimeout: 2 * time.Second,
	})
	waitFor(t, 5*time.Second, "bad-stats shard to be marked down", func() bool {
		rows := r.StatsInfo().Shards
		return len(rows) == 1 && rows[0].State == StateDown
	})
}

// mismatchChecker is a stub whose second data frame diagnoses a fixed
// mismatch — deterministically re-diagnosable, which is exactly what a
// migrated session's journal replay must reproduce.
type mismatchChecker struct{ events uint64 }

var stubMismatch = &checker.Mismatch{Core: 1, Seq: 2, PC: 0x80000040, Detail: "stub drift"}

func (c *mismatchChecker) Packet(buf []byte) (*checker.Mismatch, error) {
	c.events++
	if c.events == 2 {
		return stubMismatch, nil
	}
	return nil, nil
}

func (c *mismatchChecker) Items(items []wire.Item) (*checker.Mismatch, error) {
	c.events += uint64(len(items))
	return nil, nil
}

func (c *mismatchChecker) Finish() (transport.Final, error) { return transport.Final{}, nil }
func (c *mismatchChecker) Events() uint64                   { return c.events }

// TestRouterVerdictSurvivesMigration: a mismatch diagnosed before the shard
// dies must come back identical after migration — re-diagnosed by the
// replayed journal, carried in the ResumeOK, and counted exactly once.
func TestRouterVerdictSurvivesMigration(t *testing.T) {
	newMismatch := func(transport.Hello) (transport.SessionChecker, error) {
		return &mismatchChecker{}, nil
	}
	servers := make(map[string]*transport.Server, 2)
	var shards []string
	for i := 0; i < 2; i++ {
		srv, spec := startShard(t, transport.ServerConfig{NewSession: newMismatch, Window: 4})
		shards = append(shards, spec)
		servers[canonSpec(t, spec)] = srv
	}
	r, rspec, _ := startRouter(t, Config{
		Shards: shards, StatsInterval: 20 * time.Millisecond,
		DialTimeout: 2 * time.Second, ResumeWindow: time.Minute,
	})

	conn, w := openRaw(t, rspec, stubHello("", 5))
	sendPacket(t, conn, []byte("frame"))
	sendPacket(t, conn, []byte("frame"))
	var v transport.Verdict
	readCtl(t, conn, transport.FrameVerdict, &v)
	if v.Mismatch == nil || v.Mismatch.Detail != stubMismatch.Detail {
		t.Fatalf("verdict %+v lost the diagnosis", v)
	}
	sendPacket(t, conn, []byte("frame"))

	killShard(servers[shardHosting(r)])
	readCtl(t, conn, transport.FrameRedirect, nil)
	conn.Close()

	conn2 := dialRaw(t, rspec)
	writeCtl(t, conn2, transport.FrameResume, &transport.Resume{
		Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken,
		Sent: 3, Acked: 3,
	})
	var ok transport.ResumeOK
	readCtl(t, conn2, transport.FrameResumeOK, &ok)
	if !ok.Migrated || ok.Verdict == nil || ok.Verdict.Mismatch == nil {
		t.Fatalf("migrated resume lost the verdict: %+v", ok)
	}
	if got := ok.Verdict.Mismatch.Detail; got != stubMismatch.Detail {
		t.Fatalf("replayed diagnosis %q, want %q", got, stubMismatch.Detail)
	}
	if err := conn2.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	// The fresh shard re-diagnosed the mismatch during journal replay, so
	// the stream carries the (byte-identical) verdict again before Done.
	var again transport.Verdict
	readCtl(t, conn2, transport.FrameVerdict, &again)
	if again.Mismatch == nil || again.Mismatch.Detail != stubMismatch.Detail {
		t.Fatalf("re-diagnosed verdict %+v diverged", again)
	}
	var fin transport.Verdict
	readCtl(t, conn2, transport.FrameDone, &fin)
	if fin.Mismatch == nil || fin.Mismatch.Detail != stubMismatch.Detail {
		t.Fatalf("final verdict %+v lost the diagnosis", fin)
	}
	if st := r.StatsInfo(); st.Mismatches != 1 {
		t.Errorf("mismatch counted %d times across the migration, want once", st.Mismatches)
	}
}

// TestRouterReplayBoundedByShardWindow: a journal longer than the shard's
// token window must replay under credit flow — the rebuild blocks on the
// fresh shard's credits instead of overrunning its window.
func TestRouterReplayBoundedByShardWindow(t *testing.T) {
	servers := make(map[string]*transport.Server, 2)
	var shards []string
	for i := 0; i < 2; i++ {
		srv, spec := startShard(t, transport.ServerConfig{NewSession: stubNewSession, Window: 2})
		shards = append(shards, spec)
		servers[canonSpec(t, spec)] = srv
	}
	r, rspec, _ := startRouter(t, Config{
		Shards: shards, StatsInterval: 20 * time.Millisecond,
		DialTimeout: 2 * time.Second, ResumeWindow: time.Minute,
	})

	conn, w := openRaw(t, rspec, stubHello("", 6))
	if w.Tokens != 2 {
		t.Fatalf("window %d, want the shard's 2", w.Tokens)
	}
	for i := 0; i < 5; i++ {
		sendPacket(t, conn, []byte("frame"))
	}
	killShard(servers[shardHosting(r)])
	readCtl(t, conn, transport.FrameRedirect, nil)
	conn.Close()

	conn2 := dialRaw(t, rspec)
	writeCtl(t, conn2, transport.FrameResume, &transport.Resume{
		Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken,
		Sent: 5, Acked: 5,
	})
	var ok transport.ResumeOK
	readCtl(t, conn2, transport.FrameResumeOK, &ok)
	if ok.Have != 5 || !ok.Migrated {
		t.Fatalf("resume %+v, want Have=5 Migrated=true", ok)
	}
	if ack := sendPacket(t, conn2, []byte("frame")); ack != 6 {
		t.Fatalf("post-replay credit acks %d, want 6", ack)
	}
	if err := conn2.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	var fin transport.Verdict
	readCtl(t, conn2, transport.FrameDone, &fin)
	if fin.Events != 6 {
		t.Fatalf("rebuilt session checked %d events, want 6", fin.Events)
	}
}
