package fleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/transport"
)

// placementKey derives the rendezvous key from a session's handshake: the
// fields that identify the run. Deterministic across router replicas — the
// same Hello always ranks the shards the same way.
func placementKey(h transport.Hello) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%d|%d",
		h.Tenant, h.DUT, h.Platform, h.Config, h.Workload, h.TargetInstrs, h.Seed)
}

// jframe is one journaled data frame: a pooled copy of the payload exactly
// as the client sent it, kept so a migrated session can be replayed into a
// fresh checker byte-for-byte.
type jframe struct {
	typ uint8
	buf []byte // pooled (event.GetBuf), exactly the payload bytes
}

// rsession is the router's record of one client session: identity, the
// original handshake (replayed to open a backend anywhere), and the data
// journal. The record outlives any single client or shard connection — it
// is parked between connections and reaped after the resume window.
type rsession struct {
	id     uint64
	token  uint64
	tenant string
	key    string
	hello  transport.Hello
	window int // tokens granted to the client (tenant fair share)

	// tenantHeld and placedAddr are guarded by Router.mu (admission and
	// shard bookkeeping live router-side).
	tenantHeld bool
	placedAddr string

	mu       sync.Mutex
	journal  []jframe
	released bool
	endSent  bool
	verdict  *transport.Verdict
	final    *transport.Verdict
	// shardAddr is the backend currently (or last) serving this session.
	shardAddr string
	// swallowUntil is the journal prefix the current backend received via
	// router replay rather than from the client: shard credits acking at or
	// below it return router replay tokens and are not forwarded.
	swallowUntil uint64
	attached     *proxy
	parkedAt     time.Time
	resumes      int
}

// journalAppend copies one client data frame into the journal, returning
// the new journal length (the session's received-frame count).
func (s *rsession) journalAppend(typ uint8, payload []byte) int {
	buf := event.GetBuf(len(payload))[:len(payload)]
	copy(buf, payload)
	s.mu.Lock()
	s.journal = append(s.journal, jframe{typ: typ, buf: buf})
	n := len(s.journal)
	s.mu.Unlock()
	return n
}

// releaseJournal drains the journal back to the buffer pool; idempotent.
func (s *rsession) releaseJournal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return
	}
	s.released = true
	for i := range s.journal {
		event.PutBuf(s.journal[i].buf)
		s.journal[i] = jframe{}
	}
	s.journal = nil
}

// setVerdict records the first mismatch verdict (rebuilt checkers
// re-diagnose the same one; only the first counts).
func (s *rsession) setVerdict(v *transport.Verdict, r *Router) {
	s.mu.Lock()
	fresh := s.verdict == nil
	if fresh {
		s.verdict = v
	}
	s.mu.Unlock()
	if fresh {
		r.mismatches.Add(1)
	}
}

// setFinal records the Done payload.
func (s *rsession) setFinal(v *transport.Verdict, r *Router) {
	s.mu.Lock()
	if s.final == nil {
		s.final = v
		if v.Mismatch != nil && s.verdict == nil {
			r.mismatches.Add(1)
		}
	}
	s.mu.Unlock()
}

// backend is one live router→shard session: the framed connection, the
// shard's grant, and the replay bookkeeping from opening it.
type backend struct {
	conn    transport.FrameTransport
	addr    string
	welcome transport.Welcome
	avail   int    // shard tokens not spent by the replay
	acked   uint64 // highest shard Credit.Ack seen during replay
}

// openSession handles a client Hello: admission, placement, backend open,
// rewritten Welcome, then the pump loop.
func (r *Router) openSession(conn transport.FrameTransport, h transport.FrameHeader, payload []byte) {
	var hello transport.Hello
	err := unmarshalFrame(h.Type, payload, &hello)
	conn.ReleasePayload(payload)
	if err != nil {
		r.refuse(conn, "handshake", err.Error())
		return
	}
	if hello.Proto != transport.ProtoVersion {
		r.refuse(conn, "handshake", fmt.Sprintf(
			"protocol version %d (router speaks %d)", hello.Proto, transport.ProtoVersion))
		return
	}
	r.reapSessions(time.Now())

	// Admission: reserve the tenant's quota slot before dialing out, so two
	// racing Hellos cannot both squeeze under the cap.
	tenant := hello.Tenant
	q := r.quotaFor(tenant)
	r.mu.Lock()
	if q.MaxSessions > 0 && r.tenants[tenant] >= q.MaxSessions {
		r.mu.Unlock()
		r.refused.Add(1)
		r.refuse(conn, "quota", fmt.Sprintf(
			"tenant %q is at its session quota (%d)", tenant, q.MaxSessions))
		return
	}
	r.tenants[tenant]++
	r.mu.Unlock()
	releaseSlot := func() {
		r.mu.Lock()
		if n := r.tenants[tenant]; n > 1 {
			r.tenants[tenant] = n - 1
		} else {
			delete(r.tenants, tenant)
		}
		r.mu.Unlock()
	}

	key := placementKey(hello)
	b, ei, addr := r.connectBackend(hello, nil, key)
	if b == nil {
		releaseSlot()
		r.refused.Add(1)
		if ei != nil {
			// The shard refused this client on its merits (digest drift, bad
			// DUT name); relay the diagnosis untouched.
			conn.WriteFrame(transport.FrameErrorInfo, marshalFrame(ei))
			return
		}
		r.refuse(conn, "overloaded", "no shard available")
		return
	}

	id := r.nextID.Add(1)
	s := &rsession{
		id:     id,
		token:  (id*0x9e3779b97f4a7c15 ^ r.tokenSalt) | 1,
		tenant: tenant,
		key:    key,
		hello:  hello,
		window: scaleWindow(b.welcome.Tokens, q.Share),
	}
	s.shardAddr = addr
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		releaseSlot()
		b.conn.Close()
		return
	}
	s.tenantHeld = true // the reservation above becomes the session's hold
	r.sessions[id] = s
	r.placeLocked(s, addr)
	r.mu.Unlock()

	w := transport.Welcome{
		Proto:       transport.ProtoVersion,
		WireDigest:  b.welcome.WireDigest,
		Session:     id,
		Tokens:      s.window,
		Resumable:   true,
		ResumeToken: s.token,
	}
	if err := conn.WriteFrame(transport.FrameWelcome, marshalFrame(&w)); err != nil {
		// The client never saw its session id, so it can never resume: drop.
		b.conn.Close()
		r.dropSession(s)
		return
	}
	r.logf("session %d: %s/%s/%s tenant=%q → %s (window %d of shard %d)",
		id, hello.DUT, hello.Config, hello.Workload, tenant, addr, s.window, b.welcome.Tokens)
	r.runProxy(conn, s, b)
}

// resumeSession handles a client Resume: find the record, kick any stale
// proxy, rebuild the backend by journal replay (same shard or — migration —
// a different one), answer ResumeOK, and pump.
func (r *Router) resumeSession(conn transport.FrameTransport, h transport.FrameHeader, payload []byte) {
	var req transport.Resume
	err := unmarshalFrame(h.Type, payload, &req)
	conn.ReleasePayload(payload)
	if err != nil {
		r.refuse(conn, "resume", err.Error())
		return
	}
	if req.Proto != transport.ProtoVersion {
		r.refuse(conn, "resume", fmt.Sprintf(
			"protocol version %d (router speaks %d)", req.Proto, transport.ProtoVersion))
		return
	}
	r.reapSessions(time.Now())
	r.mu.Lock()
	s := r.sessions[req.Session]
	if s != nil && s.token != req.Token {
		s = nil
	}
	r.mu.Unlock()
	if s == nil {
		r.refuse(conn, "resume", fmt.Sprintf("unknown or expired session %d", req.Session))
		return
	}

	// A silent-stall redial can race the proxy still serving the old
	// connection: the new connection wins, the old proxy is kicked.
	s.mu.Lock()
	old := s.attached
	s.mu.Unlock()
	if old != nil {
		old.finishWith(outcomeKicked, nil)
		select {
		case <-old.done:
		case <-time.After(r.cfg.DialTimeout):
			r.refuse(conn, "resume", "session busy")
			return
		}
		r.mu.Lock()
		_, alive := r.sessions[s.id]
		r.mu.Unlock()
		if !alive {
			r.refuse(conn, "resume", "session ended")
			return
		}
	}

	s.mu.Lock()
	jlen := uint64(len(s.journal))
	final := s.final
	oldAddr := s.shardAddr
	s.resumes++
	resumes := s.resumes
	s.mu.Unlock()
	if req.Sent < jlen {
		r.refuse(conn, "resume", fmt.Sprintf(
			"client sent %d data frames but session %d forwarded %d", req.Sent, s.id, jlen))
		return
	}
	r.resumed.Add(1)

	if final != nil {
		// The session already completed; replay the Done payload and park
		// again so even a lost ResumeOK can be retried until reap.
		ok := transport.ResumeOK{Have: jlen, Tokens: s.window, Final: final}
		conn.WriteFrame(transport.FrameResumeOK, marshalFrame(&ok))
		r.park(s, "completed, final verdict replayed")
		return
	}

	// Rebuild the backend. Same machinery either way: a fresh shard session
	// fed the full journal. The HRW walk decides where it lands — the same
	// shard if only the client link blipped, the next-ranked one if the
	// shard is down or draining. That second case is the live migration.
	b, ei, addr := r.connectBackend(s.hello, s, s.key)
	if b == nil {
		r.refused.Add(1)
		if ei != nil {
			conn.WriteFrame(transport.FrameErrorInfo, marshalFrame(ei))
		} else {
			r.refuse(conn, "resume", "no shard available to rebuild session")
		}
		r.park(s, "rebuild failed")
		return
	}
	migrated := addr != oldAddr
	if migrated {
		r.migrations.Add(1)
	}
	s.mu.Lock()
	s.shardAddr = addr
	s.swallowUntil = jlen
	verdict := s.verdict // the replay may have re-diagnosed a mismatch
	s.mu.Unlock()
	r.mu.Lock()
	r.placeLocked(s, addr)
	r.mu.Unlock()

	ok := transport.ResumeOK{Have: jlen, Tokens: s.window, Verdict: verdict, Migrated: migrated}
	if err := conn.WriteFrame(transport.FrameResumeOK, marshalFrame(&ok)); err != nil {
		b.conn.Close()
		r.park(s, "resume-ok write failed")
		return
	}
	r.logf("session %d: resumed (#%d) onto %s (migrated=%v, journal %d, shard window %d)",
		s.id, resumes, addr, migrated, jlen, b.welcome.Tokens)
	r.runProxy(conn, s, b)
}

// connectBackend walks the placement ranking and opens a shard session for
// hello, replaying s's journal when resuming. Returns the backend and its
// shard, or the shard's client-level refusal (to relay), or (nil, nil, "")
// when no shard would take the session. Dial and I/O failures mark the
// shard down and fall through to the next candidate; "overloaded" refusals
// fall through without the down mark.
func (r *Router) connectBackend(hello transport.Hello, s *rsession, key string) (*backend, *transport.ErrorInfo, string) {
	for _, addr := range r.candidates(key) {
		b, ei, err := r.openBackend(hello, s, addr)
		if err != nil {
			r.markDown(addr, err)
			continue
		}
		if ei != nil {
			if ei.Code == "overloaded" {
				r.logf("shard %s: refused placement: %s", addr, ei.Msg)
				continue
			}
			return nil, ei, ""
		}
		return b, nil, addr
	}
	return nil, nil, ""
}

// openBackend dials one shard, performs the Hello handshake with the
// client's original handshake frame, and — when s is non-nil — replays the
// session's journal into the fresh checker under the shard's token window.
func (r *Router) openBackend(hello transport.Hello, s *rsession, addr string) (*backend, *transport.ErrorInfo, error) {
	conn, err := r.dialShard(addr)
	if err != nil {
		return nil, nil, err
	}
	conn.SetWriteTimeout(r.cfg.WriteTimeout)
	conn.SetReadTimeout(r.cfg.DialTimeout)
	if err := conn.WriteFrame(transport.FrameHello, marshalFrame(&hello)); err != nil {
		conn.Close()
		return nil, nil, err
	}
	h, payload, err := conn.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	switch h.Type {
	case transport.FrameWelcome:
	case transport.FrameErrorInfo:
		var ei transport.ErrorInfo
		jerr := unmarshalFrame(h.Type, payload, &ei)
		conn.ReleasePayload(payload)
		conn.Close()
		if jerr != nil {
			return nil, nil, jerr
		}
		return nil, &ei, nil
	case transport.FrameHello, transport.FramePacket, transport.FrameItems,
		transport.FrameEnd, transport.FrameCredit, transport.FrameVerdict,
		transport.FrameDone, transport.FrameResume, transport.FrameResumeOK,
		transport.FrameStats, transport.FrameDrain, transport.FrameRedirect:
		// A Hello is answered with Welcome or ErrorInfo, nothing else.
		fallthrough
	default:
		conn.ReleasePayload(payload)
		conn.Close()
		return nil, nil, errUnexpectedFrame("shard handshake", h.Type)
	}
	var w transport.Welcome
	jerr := unmarshalFrame(h.Type, payload, &w)
	conn.ReleasePayload(payload)
	if jerr != nil {
		conn.Close()
		return nil, nil, jerr
	}
	if w.Tokens <= 0 {
		conn.Close()
		return nil, nil, fmt.Errorf("fleet: shard %s granted a %d-token window", addr, w.Tokens)
	}
	b := &backend{conn: conn, addr: addr, welcome: w, avail: w.Tokens}
	if s != nil {
		if err := b.replayJournal(r, s); err != nil {
			conn.Close()
			return nil, nil, err
		}
	}
	return b, nil, nil
}

// replayJournal feeds the session's journal into a freshly opened shard
// session, respecting the shard's token window: when the window is dry it
// blocks on the shard's credits (the handshake read deadline bounds the
// wait). The replayed prefix is byte-identical to what the client sent, so
// the rebuilt checker reaches the identical state — and re-diagnoses the
// identical mismatch, which is recorded, not forwarded twice.
func (b *backend) replayJournal(r *Router, s *rsession) error {
	s.mu.Lock()
	journal := s.journal // no proxy is attached during a rebuild
	s.mu.Unlock()
	for _, jf := range journal {
		for b.avail == 0 {
			h, payload, err := b.conn.ReadFrame()
			if err != nil {
				return err
			}
			switch h.Type {
			case transport.FrameCredit:
				var cr transport.Credit
				err := unmarshalFrame(h.Type, payload, &cr)
				b.conn.ReleasePayload(payload)
				if err != nil {
					return err
				}
				b.avail += cr.Tokens
				if cr.Ack > b.acked {
					b.acked = cr.Ack
				}
			case transport.FrameVerdict:
				var v transport.Verdict
				err := unmarshalFrame(h.Type, payload, &v)
				b.conn.ReleasePayload(payload)
				if err != nil {
					return err
				}
				s.setVerdict(&v, r)
			case transport.FrameErrorInfo:
				var ei transport.ErrorInfo
				err := unmarshalFrame(h.Type, payload, &ei)
				b.conn.ReleasePayload(payload)
				if err != nil {
					return err
				}
				return &ei
			case transport.FrameHello, transport.FrameWelcome, transport.FramePacket,
				transport.FrameItems, transport.FrameEnd, transport.FrameDone,
				transport.FrameResume, transport.FrameResumeOK, transport.FrameStats,
				transport.FrameDrain, transport.FrameRedirect:
				// Mid-replay a shard speaks only credits and verdicts (Done
				// needs an End the router has not sent).
				fallthrough
			default:
				b.conn.ReleasePayload(payload)
				return errUnexpectedFrame("journal replay", h.Type)
			}
		}
		if err := b.conn.WriteFrame(jf.typ, jf.buf); err != nil {
			return err
		}
		b.avail--
	}
	return nil
}

// Proxy outcomes, decided by whichever pump (or external event) ends the
// attachment first.
const (
	outcomeNone        = iota
	outcomeClientLost  // client conn broke: park, await resume
	outcomeBackendLost // shard conn broke: redirect client, park, mark down
	outcomeRedirected  // drain: redirect client, park
	outcomeFinal       // Done forwarded: park for final-verdict replay
	outcomeFatal       // protocol error or shard refusal: drop the session
	outcomeKicked      // a newer resume took the session; touch nothing
)

// proxy is one client-connection ↔ shard-connection attachment of a
// session: two pump goroutines and the shard-window token gate between
// them. Its lifetime is exactly the overlap of the two connections.
type proxy struct {
	r       *Router
	s       *rsession
	client  transport.FrameTransport
	backend transport.FrameTransport
	baddr   string

	// tokens gates client→shard data frames to the shard's granted window:
	// after a migration the replay may have left most of the window spent,
	// and the client's retransmitted tail must not overrun it.
	tokens chan struct{}

	quit chan struct{}
	once sync.Once
	done chan struct{}

	// cw serializes writes to the client conn: the backend pump forwards
	// credits/verdicts while drain or backend death may inject a Redirect.
	cw sync.Mutex

	mu      sync.Mutex
	outcome int
	cause   error
}

// finishWith records the first outcome and tears both connections down,
// unblocking both pumps. Idempotent; later callers lose.
func (p *proxy) finishWith(outcome int, cause error) {
	p.mu.Lock()
	if p.outcome == outcomeNone {
		p.outcome = outcome
		p.cause = cause
	}
	p.mu.Unlock()
	p.once.Do(func() {
		close(p.quit)
		p.client.Close()
		p.backend.Close()
	})
}

// clientWrite sends one frame to the client under the write lock.
func (p *proxy) clientWrite(typ uint8, payload []byte) error {
	p.cw.Lock()
	defer p.cw.Unlock()
	return p.client.WriteFrame(typ, payload)
}

// redirect tells the client to redial (it will resume, and placement will
// land it on a healthy shard), then ends the attachment.
func (p *proxy) redirect(reason string) {
	p.clientWrite(transport.FrameRedirect, marshalFrame(&transport.Redirect{Reason: reason}))
	p.finishWith(outcomeRedirected, nil)
}

// backendLost handles a dead shard connection mid-session: the shard is
// withdrawn from placement and the client is told to redial — the forced
// resume that triggers the migration.
func (p *proxy) backendLost(err error) {
	p.r.markDown(p.baddr, err)
	p.clientWrite(transport.FrameRedirect, marshalFrame(&transport.Redirect{
		Reason: fmt.Sprintf("shard %s lost: %v", p.baddr, err)}))
	p.finishWith(outcomeBackendLost, err)
}

// runProxy attaches a client connection and an open backend to the session
// and pumps frames both ways until either side ends the attachment.
func (r *Router) runProxy(conn transport.FrameTransport, s *rsession, b *backend) {
	p := &proxy{
		r:       r,
		s:       s,
		client:  conn,
		backend: b.conn,
		baddr:   b.addr,
		tokens:  make(chan struct{}, b.welcome.Tokens),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := 0; i < b.avail; i++ {
		p.tokens <- struct{}{}
	}
	s.mu.Lock()
	s.attached = p
	s.mu.Unlock()
	r.attached.Add(1)
	defer r.attached.Add(-1)
	defer close(p.done)

	// Both handshake deadlines are done; pumps block until traffic or quit.
	conn.SetReadTimeout(0)
	b.conn.SetReadTimeout(0)

	backendDone := make(chan struct{})
	go func() {
		defer close(backendDone)
		p.pumpBackend()
	}()
	p.pumpClient()
	<-backendDone
	p.finish()
}

// pumpClient forwards client frames to the shard: data frames are journaled
// (the migration record) and gated by the shard window; End passes through.
func (p *proxy) pumpClient() {
	for {
		h, payload, err := p.client.ReadFrame()
		if err != nil {
			p.finishWith(outcomeClientLost, err)
			return
		}
		switch h.Type {
		case transport.FramePacket, transport.FrameItems:
			p.s.journalAppend(h.Type, payload)
			select {
			case <-p.tokens:
			case <-p.quit:
				p.client.ReleasePayload(payload)
				return
			}
			werr := p.backend.WriteFrame(h.Type, payload)
			p.client.ReleasePayload(payload)
			if werr != nil {
				p.backendLost(werr)
				return
			}
		case transport.FrameEnd:
			p.client.ReleasePayload(payload)
			p.s.mu.Lock()
			p.s.endSent = true
			p.s.mu.Unlock()
			if werr := p.backend.WriteFrame(transport.FrameEnd, nil); werr != nil {
				p.backendLost(werr)
				return
			}
		case transport.FrameHello, transport.FrameWelcome, transport.FrameCredit,
			transport.FrameVerdict, transport.FrameDone, transport.FrameErrorInfo,
			transport.FrameResume, transport.FrameResumeOK, transport.FrameStats,
			transport.FrameDrain, transport.FrameRedirect:
			// Mid-session a client sends only data and End — anything else is
			// a protocol error, same as on a shard.
			fallthrough
		default:
			p.client.ReleasePayload(payload)
			err := errUnexpectedFrame("client stream", h.Type)
			p.clientWrite(transport.FrameErrorInfo, marshalFrame(&transport.ErrorInfo{
				Code: "decode", Msg: err.Error()}))
			p.finishWith(outcomeFatal, err)
			return
		}
	}
}

// pumpBackend forwards shard frames to the client: credits refill the token
// gate (and are swallowed while they acknowledge the router's own replay),
// verdicts and Done are recorded and relayed.
func (p *proxy) pumpBackend() {
	for {
		h, payload, err := p.backend.ReadFrame()
		if err != nil {
			select {
			case <-p.quit: // attachment already ended; not a shard failure
			default:
				p.backendLost(err)
			}
			return
		}
		switch h.Type {
		case transport.FrameCredit:
			var cr transport.Credit
			derr := unmarshalFrame(h.Type, payload, &cr)
			p.backend.ReleasePayload(payload)
			if derr != nil {
				p.backendLost(derr)
				return
			}
			for i := 0; i < cr.Tokens; i++ {
				select {
				case p.tokens <- struct{}{}:
				default: // over-credit; the shard window cap is authoritative
				}
			}
			p.s.mu.Lock()
			swallow := cr.Ack <= p.s.swallowUntil
			p.s.mu.Unlock()
			if !swallow {
				if werr := p.clientWrite(transport.FrameCredit, marshalFrame(&cr)); werr != nil {
					p.finishWith(outcomeClientLost, werr)
					return
				}
			}
		case transport.FrameVerdict:
			var v transport.Verdict
			derr := unmarshalFrame(h.Type, payload, &v)
			p.backend.ReleasePayload(payload)
			if derr != nil {
				p.backendLost(derr)
				return
			}
			p.s.setVerdict(&v, p.r)
			if werr := p.clientWrite(transport.FrameVerdict, marshalFrame(&v)); werr != nil {
				p.finishWith(outcomeClientLost, werr)
				return
			}
		case transport.FrameDone:
			var v transport.Verdict
			derr := unmarshalFrame(h.Type, payload, &v)
			p.backend.ReleasePayload(payload)
			if derr != nil {
				p.backendLost(derr)
				return
			}
			p.s.setFinal(&v, p.r)
			p.clientWrite(transport.FrameDone, marshalFrame(&v))
			p.finishWith(outcomeFinal, nil)
			return
		case transport.FrameErrorInfo:
			var ei transport.ErrorInfo
			derr := unmarshalFrame(h.Type, payload, &ei)
			p.backend.ReleasePayload(payload)
			if derr != nil {
				p.backendLost(derr)
				return
			}
			if ei.Code == "idle" {
				// The shard gave up the connection, not the session: it idles
				// a quiet link out (and says so on its way into a forced
				// shutdown). The stream is intact in the journal, so this is
				// a redirect — the client's resume rebuilds elsewhere or, if
				// the shard was merely bored, right back here.
				p.redirect("shard idled the connection: " + ei.Msg)
				return
			}
			// Everything else is the client's own protocol error (decode
			// failures survive the checksum, so they are client bugs): relay
			// the diagnosis and drop the session.
			p.clientWrite(transport.FrameErrorInfo, marshalFrame(&ei))
			p.finishWith(outcomeFatal, &ei)
			return
		case transport.FrameHello, transport.FrameWelcome, transport.FramePacket,
			transport.FrameItems, transport.FrameEnd, transport.FrameResume,
			transport.FrameResumeOK, transport.FrameStats, transport.FrameDrain,
			transport.FrameRedirect:
			// A shard mid-session speaks credits, verdicts, Done, and errors;
			// the rest is corruption-grade.
			fallthrough
		default:
			p.backend.ReleasePayload(payload)
			p.finishWith(outcomeFatal, errUnexpectedFrame("shard stream", h.Type))
			return
		}
	}
}

// finish settles the session record once both pumps have exited.
func (p *proxy) finish() {
	r, s := p.r, p.s
	p.mu.Lock()
	outcome, cause := p.outcome, p.cause
	p.mu.Unlock()

	s.mu.Lock()
	if s.attached == p {
		s.attached = nil
	}
	addr := s.shardAddr
	s.mu.Unlock()

	r.mu.Lock()
	draining := r.draining
	r.mu.Unlock()
	if draining {
		r.dropSession(s)
		return
	}

	switch outcome {
	case outcomeFinal:
		r.sessionDone(s)
		r.park(s, "completed")
	case outcomeClientLost:
		r.park(s, fmt.Sprintf("client connection lost: %v", cause))
	case outcomeBackendLost:
		r.park(s, fmt.Sprintf("shard %s lost, awaiting forced resume", addr))
	case outcomeRedirected:
		r.park(s, "redirected for drain")
	case outcomeKicked:
		// The resume that kicked this proxy owns the record now.
	case outcomeFatal:
		r.logf("session %d: fatal: %v", s.id, cause)
		r.dropSession(s)
	default:
		r.park(s, "attachment ended")
	}
}

// park shelves a session between connections; a Resume picks it up until
// the resume window reaps it.
func (r *Router) park(s *rsession, why string) {
	s.mu.Lock()
	s.parkedAt = time.Now()
	s.mu.Unlock()
	r.parkCount.Add(1)
	r.logf("session %d: parked (%s)", s.id, why)
}

// placeLocked moves a session's shard-occupancy count to addr. Callers
// hold r.mu.
func (r *Router) placeLocked(s *rsession, addr string) {
	if s.placedAddr == addr {
		return
	}
	if sh, ok := r.shards[s.placedAddr]; ok && sh.sessions > 0 {
		sh.sessions--
	}
	s.placedAddr = addr
	if sh, ok := r.shards[addr]; ok {
		sh.sessions++
	}
}

// unplaceLocked drops a session's shard-occupancy count. Callers hold r.mu.
func (r *Router) unplaceLocked(s *rsession) {
	if sh, ok := r.shards[s.placedAddr]; ok && sh.sessions > 0 {
		sh.sessions--
	}
	s.placedAddr = ""
}
