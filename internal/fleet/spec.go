package fleet

import (
	"fmt"
	"strings"

	"repro/internal/transport"
)

// ParseShards parses a comma-separated shard list ("tcp://a:1,tcp://b:2",
// any transport.ParseSpec form per element) into canonical specs. Elements
// are trimmed, validated individually, canonicalized (so "host:port" and
// "tcp://host:port" name the same shard), and must be unique — a duplicate
// shard would double its rendezvous weight silently.
func ParseShards(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("fleet: empty shard list")
	}
	parts := strings.Split(list, ",")
	shards := make([]string, 0, len(parts))
	seen := make(map[string]struct{}, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("fleet: empty shard entry in %q", list)
		}
		sp, err := transport.ParseSpec(part)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %q: %w", part, err)
		}
		canon := sp.String()
		if _, dup := seen[canon]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard %q in %q", canon, list)
		}
		seen[canon] = struct{}{}
		shards = append(shards, canon)
	}
	return shards, nil
}
