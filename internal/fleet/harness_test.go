package fleet

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The fleet tests run against two kinds of shard. Protocol-level tests use a
// stub checker — every data frame is accepted, End yields a fixed clean
// verdict — so each test drives exact frame sequences through the router
// without paying for a real co-simulation. The integration gates
// (fleet_test.go) use the production cosim.NewSession instead.

type stubChecker struct{ events uint64 }

func (c *stubChecker) Packet(buf []byte) (*checker.Mismatch, error) {
	c.events++
	return nil, nil
}

func (c *stubChecker) Items(items []wire.Item) (*checker.Mismatch, error) {
	c.events += uint64(len(items))
	return nil, nil
}

func (c *stubChecker) Finish() (transport.Final, error) {
	return transport.Final{TrapCode: stubTrapCode}, nil
}

func (c *stubChecker) Events() uint64 { return c.events }

const stubTrapCode = 5

func stubNewSession(transport.Hello) (transport.SessionChecker, error) {
	return &stubChecker{}, nil
}

// startShard runs one difftestd-equivalent server on a Unix socket in the
// test's temp dir and returns it with its dial spec. Shutdown is registered
// as cleanup and safe to trigger early (killShard).
func startShard(t testing.TB, cfg transport.ServerConfig) (*transport.Server, string) {
	t.Helper()
	srv := transport.NewServer(cfg)
	spec := "unix:" + filepath.Join(t.TempDir(), "shard.sock")
	l, err := transport.Listen(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, spec
}

// killShard force-stops a shard mid-session: an expired context makes
// Shutdown close every live connection instead of draining them. It still
// waits for the handlers, so by return the shard is fully dead.
func killShard(srv *transport.Server) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)
}

// startRouter serves a router over cfg's shards on its own Unix socket. The
// returned stop function is idempotent (cleanup runs it again) so tests can
// shut the router down early to check pool balance.
func startRouter(t testing.TB, cfg Config) (*Router, string, func()) {
	t.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := "unix:" + filepath.Join(t.TempDir(), "router.sock")
	l, err := transport.Listen(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Serve(l)
	}()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
		<-done
	}
	t.Cleanup(stop)
	return r, spec, stop
}

// waitFor polls cond until it holds or the deadline passes. Only call from
// the test goroutine (it fails the test on timeout).
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// stubHello is a handshake the stub shard accepts; the seed varies the
// placement key so tests control whether sessions share a shard.
func stubHello(tenant string, seed int64) transport.Hello {
	return transport.Hello{
		Proto: transport.ProtoVersion, WireDigest: event.FormatDigest(),
		DUT: "stub-dut", Platform: "stub-platform", Config: "EBINSD",
		Workload: "stub-boot", TargetInstrs: 1000, Seed: seed, Tenant: tenant,
	}
}

// dialRaw opens a framed connection to spec with test-friendly deadlines.
func dialRaw(t testing.TB, spec string) transport.FrameTransport {
	t.Helper()
	conn, err := transport.DialFrame(spec, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetWriteTimeout(5 * time.Second)
	conn.SetReadTimeout(5 * time.Second)
	t.Cleanup(func() { conn.Close() })
	return conn
}

// writeCtl sends one JSON control frame.
func writeCtl(t testing.TB, conn transport.FrameTransport, typ uint8, v any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteFrame(typ, b); err != nil {
		t.Fatalf("writing frame type %d: %v", typ, err)
	}
}

// readCtl reads one frame, requires its type, and decodes the payload into v
// (nil v skips decoding).
func readCtl(t testing.TB, conn transport.FrameTransport, want uint8, v any) {
	t.Helper()
	h, payload, err := conn.ReadFrame()
	if err != nil {
		t.Fatalf("reading frame (want type %d): %v", want, err)
	}
	defer conn.ReleasePayload(payload)
	if h.Type != want {
		t.Fatalf("frame type %d (payload %q), want type %d", h.Type, payload, want)
	}
	if v != nil {
		if err := json.Unmarshal(payload, v); err != nil {
			t.Fatalf("decoding frame type %d: %v", h.Type, err)
		}
	}
}

// expectRefusal reads an ErrorInfo frame and asserts its code.
func expectRefusal(t *testing.T, conn transport.FrameTransport, code string) transport.ErrorInfo {
	t.Helper()
	var ei transport.ErrorInfo
	readCtl(t, conn, transport.FrameErrorInfo, &ei)
	if ei.Code != code {
		t.Fatalf("refused with code %q (%s), want %q", ei.Code, ei.Msg, code)
	}
	return ei
}

// openRaw dials the router and completes a Hello handshake.
func openRaw(t testing.TB, spec string, hello transport.Hello) (transport.FrameTransport, transport.Welcome) {
	t.Helper()
	conn := dialRaw(t, spec)
	writeCtl(t, conn, transport.FrameHello, &hello)
	var w transport.Welcome
	readCtl(t, conn, transport.FrameWelcome, &w)
	return conn, w
}

// sendPacket writes one data frame and reads the credit acknowledging it,
// returning the credit's cumulative Ack.
func sendPacket(t testing.TB, conn transport.FrameTransport, payload []byte) uint64 {
	t.Helper()
	if err := conn.WriteFrame(transport.FramePacket, payload); err != nil {
		t.Fatalf("writing data frame: %v", err)
	}
	var cr transport.Credit
	readCtl(t, conn, transport.FrameCredit, &cr)
	return cr.Ack
}

// shardHosting returns the address of a shard the router has placed at least
// one live session on ("" if none).
func shardHosting(r *Router) string {
	for _, row := range r.StatsInfo().Shards {
		if row.Sessions > 0 {
			return row.Addr
		}
	}
	return ""
}

// canonSpec canonicalizes a dial spec the way the router keys shards.
func canonSpec(t testing.TB, spec string) string {
	t.Helper()
	sp, err := transport.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sp.String()
}
