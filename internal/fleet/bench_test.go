package fleet

import (
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/transport"
)

// benchjson's fleet area (BENCH_fleet.json) tracks what fronting difftestd
// with a router costs: full routed sessions against the direct-to-shard
// baseline, and the forwarding hot path's per-frame allocation bill.

// benchFleetSession measures a full co-simulation session — the production
// networked client against a production cosim shard — either through a
// one-shard router (routed=true) or straight at the shard. The delta between
// the two benchmarks is the router tax on the paper's loopback numbers.
func benchFleetSession(b *testing.B, routed bool) {
	_, shardSpec := startShard(b, transport.ServerConfig{NewSession: cosim.NewSession, Window: 8})
	addr := shardSpec
	if routed {
		_, rspec, _ := startRouter(b, Config{
			Shards:        []string{shardSpec},
			StatsInterval: time.Second,
			DialTimeout:   2 * time.Second,
			ResumeWindow:  time.Minute,
		})
		addr = rspec
	}
	p := fleetParams(b, "", addr, 3)
	p.Workload.TargetInstrs = 10_000
	b.ReportAllocs()
	b.ResetTimer()
	var got uint64
	for i := 0; i < b.N; i++ {
		res, err := cosim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Mismatch != nil {
			b.Fatalf("mismatch: %v", res.Mismatch)
		}
		got = res.Instrs
	}
	b.ReportMetric(float64(got)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkFleetRoutedSession: clean 10k-instruction run through the router.
func BenchmarkFleetRoutedSession(b *testing.B) { benchFleetSession(b, true) }

// BenchmarkFleetDirectSession: the same run straight at the shard — the
// baseline the routed number is judged against.
func BenchmarkFleetDirectSession(b *testing.B) { benchFleetSession(b, false) }

// BenchmarkFleetForward1k drives the router's forwarding hot path with raw
// frames: one op is 1000 data frames journaled, forwarded to a stub shard,
// and credited back. B/op and allocs/op are the per-1000-frame bill of the
// journal copy plus both pump directions — the number that must stay flat
// for the router to claim pooled, steady-state forwarding.
func BenchmarkFleetForward1k(b *testing.B) {
	_, spec := startShard(b, transport.ServerConfig{NewSession: stubNewSession, Window: 8})
	_, rspec, _ := startRouter(b, Config{
		Shards:        []string{spec},
		StatsInterval: time.Second,
		DialTimeout:   2 * time.Second,
		ResumeWindow:  time.Minute,
	})
	conn, _ := openRaw(b, rspec, stubHello("", 7))
	payload := make([]byte, 256)
	// Warm both pumps and the frame pools out of the measurement.
	for i := 0; i < 64; i++ {
		sendPacket(b, conn, payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			sendPacket(b, conn, payload)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*1000/b.Elapsed().Seconds(), "frames/s")
}
