package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/transport"
)

// stubFleet starts n stub shards and a router over them, returning the
// router, its spec, and the shards keyed by canonical address.
func stubFleet(t *testing.T, n int, cfg Config) (*Router, string, map[string]*transport.Server) {
	t.Helper()
	servers := make(map[string]*transport.Server, n)
	for i := 0; i < n; i++ {
		srv, spec := startShard(t, transport.ServerConfig{NewSession: stubNewSession, Window: 4})
		cfg.Shards = append(cfg.Shards, spec)
		servers[canonSpec(t, spec)] = srv
	}
	if cfg.StatsInterval == 0 {
		cfg.StatsInterval = 20 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	r, spec, _ := startRouter(t, cfg)
	return r, spec, servers
}

// TestRouterSessionEndToEnd drives one full session through the router at
// the frame level: Hello → rewritten Welcome, data frames journaled and
// credited with absolute acks, End → Done with the shard's verdict.
func TestRouterSessionEndToEnd(t *testing.T) {
	r, spec, _ := stubFleet(t, 2, Config{})
	conn, w := openRaw(t, spec, stubHello("", 1))
	if w.Proto != transport.ProtoVersion || w.Session == 0 {
		t.Fatalf("bad welcome: %+v", w)
	}
	if !w.Resumable || w.ResumeToken == 0 {
		t.Fatalf("router sessions must always be resumable (migration needs it): %+v", w)
	}
	if w.Tokens != 4 {
		t.Fatalf("unquota'd tenant got window %d, want the shard's 4", w.Tokens)
	}
	for i := uint64(1); i <= 3; i++ {
		if ack := sendPacket(t, conn, []byte("frame")); ack != i {
			t.Fatalf("credit ack %d after %d frames", ack, i)
		}
	}
	if err := conn.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	var v transport.Verdict
	readCtl(t, conn, transport.FrameDone, &v)
	if !v.Finished || v.TrapCode != stubTrapCode || v.Events != 3 {
		t.Fatalf("done verdict %+v, want finished trap=%d events=3", v, stubTrapCode)
	}
	if st := r.StatsInfo(); st.Served != 1 || st.Mismatches != 0 {
		t.Errorf("router stats after one clean session: %+v", st)
	}
}

// TestRouterQuotaAndFairShare pins the tenant policy end to end: the share
// scales the Welcome window, the session cap refuses the tenant's excess
// Hello while another tenant proceeds, and a delivered final verdict frees
// the slot.
func TestRouterQuotaAndFairShare(t *testing.T) {
	r, spec, _ := stubFleet(t, 2, Config{
		Quotas: map[string]Quota{"ci": {MaxSessions: 1, Share: 0.5}},
	})

	holder, w := openRaw(t, spec, stubHello("ci", 1))
	if w.Tokens != 2 {
		t.Fatalf("ci window %d, want 2 (share 0.5 of the shard's 4)", w.Tokens)
	}

	over := dialRaw(t, spec)
	writeCtl(t, over, transport.FrameHello, stubHello("ci", 2))
	ei := expectRefusal(t, over, "quota")
	if !strings.Contains(ei.Msg, `"ci"`) {
		t.Errorf("quota refusal does not name the tenant: %s", ei.Msg)
	}
	if r.Refused() != 1 {
		t.Errorf("Refused() = %d, want 1", r.Refused())
	}

	// Another tenant is not throttled by ci's quota, and with no policy of
	// its own gets the shard's full window.
	otherConn, ow := openRaw(t, spec, stubHello("dev", 3))
	if ow.Tokens != 4 {
		t.Fatalf("dev window %d, want the shard's 4", ow.Tokens)
	}
	otherConn.Close()

	// Completing the held session frees the quota slot immediately.
	sendPacket(t, holder, []byte("frame"))
	if err := holder.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	readCtl(t, holder, transport.FrameDone, nil)
	_, w3 := openRaw(t, spec, stubHello("ci", 4))
	if w3.Session == 0 {
		t.Fatal("ci refused after its previous session completed")
	}
}

// TestRouterMigrationRaw is the migration protocol pinned frame by frame:
// kill the hosting shard mid-session, the client is redirected, resumes, and
// the router rebuilds the stream on the other shard — with the credit acks
// still absolutely aligned (the first credit after migration acknowledges
// frame 4, because the router replayed frames 1–3 itself and swallowed their
// credits).
func TestRouterMigrationRaw(t *testing.T) {
	r, spec, servers := stubFleet(t, 2, Config{ResumeWindow: time.Minute})

	conn, w := openRaw(t, spec, stubHello("", 7))
	for i := uint64(1); i <= 3; i++ {
		sendPacket(t, conn, []byte("frame"))
	}
	host := shardHosting(r)
	if host == "" {
		t.Fatal("no shard reports the live session")
	}
	killShard(servers[host])

	var red transport.Redirect
	readCtl(t, conn, transport.FrameRedirect, &red)
	if red.Reason == "" {
		t.Error("redirect carries no reason")
	}
	conn.Close()

	conn2 := dialRaw(t, spec)
	writeCtl(t, conn2, transport.FrameResume, &transport.Resume{
		Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken,
		Sent: 3, Acked: 3,
	})
	var ok transport.ResumeOK
	readCtl(t, conn2, transport.FrameResumeOK, &ok)
	if ok.Have != 3 || !ok.Migrated {
		t.Fatalf("resume landed wrong: %+v, want Have=3 Migrated=true", ok)
	}
	if ack := sendPacket(t, conn2, []byte("frame")); ack != 4 {
		t.Fatalf("first post-migration credit acks %d, want 4 (replay credits must be swallowed)", ack)
	}
	if err := conn2.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	var v transport.Verdict
	readCtl(t, conn2, transport.FrameDone, &v)
	if !v.Finished || v.Events != 4 {
		t.Fatalf("post-migration verdict %+v, want finished with 4 events", v)
	}
	if r.Migrations() != 1 {
		t.Errorf("Migrations() = %d, want 1", r.Migrations())
	}
}

// TestRouterDrainRedirect: draining a shard redirects its live sessions,
// the resumed session migrates, and undrain hands the shard back to the
// health poller (down until a poll answers, healthy after).
func TestRouterDrainRedirect(t *testing.T) {
	r, spec, _ := stubFleet(t, 2, Config{ResumeWindow: time.Minute})
	conn, w := openRaw(t, spec, stubHello("", 9))
	sendPacket(t, conn, []byte("frame"))
	host := shardHosting(r)

	// Admin round trip over the wire, not the Go API: this is what the
	// difftest-fleet -drain verb sends.
	admin := dialRaw(t, spec)
	writeCtl(t, admin, transport.FrameDrain, &transport.DrainRequest{Shard: host})
	var reply transport.DrainReply
	readCtl(t, admin, transport.FrameDrain, &reply)
	if reply.State != StateDraining || reply.Redirected != 1 {
		t.Fatalf("drain reply %+v, want draining with 1 redirect", reply)
	}
	readCtl(t, conn, transport.FrameRedirect, nil)
	conn.Close()

	conn2 := dialRaw(t, spec)
	writeCtl(t, conn2, transport.FrameResume, &transport.Resume{
		Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken,
		Sent: 1, Acked: 1,
	})
	var ok transport.ResumeOK
	readCtl(t, conn2, transport.FrameResumeOK, &ok)
	if !ok.Migrated {
		t.Fatal("session resumed onto the draining shard")
	}
	if err := conn2.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	readCtl(t, conn2, transport.FrameDone, nil)

	admin2 := dialRaw(t, spec)
	writeCtl(t, admin2, transport.FrameDrain, &transport.DrainRequest{Shard: host, Undrain: true})
	var reply2 transport.DrainReply
	readCtl(t, admin2, transport.FrameDrain, &reply2)
	if reply2.State != StateDown {
		t.Fatalf("undrained shard is %q, want down until a poll answers", reply2.State)
	}
	waitFor(t, 5*time.Second, "health poll to restore the undrained shard", func() bool {
		for _, row := range r.StatsInfo().Shards {
			if row.Addr == host {
				return row.State == StateHealthy
			}
		}
		return false
	})

	// Unknown shards are refused by the admin path.
	admin3 := dialRaw(t, spec)
	writeCtl(t, admin3, transport.FrameDrain, &transport.DrainRequest{Shard: "tcp://nope:1"})
	expectRefusal(t, admin3, "decode")
}

// TestRouterFinalVerdictReplay: a client that completed its run but lost the
// Done frame resumes and receives the final verdict in the ResumeOK — as
// often as it needs to, until the resume window reaps the record.
func TestRouterFinalVerdictReplay(t *testing.T) {
	_, spec, _ := stubFleet(t, 1, Config{ResumeWindow: time.Minute})
	conn, w := openRaw(t, spec, stubHello("", 11))
	sendPacket(t, conn, []byte("frame"))
	if err := conn.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	readCtl(t, conn, transport.FrameDone, nil)
	conn.Close() // pretend the Done frame was lost on the way

	for try := 0; try < 2; try++ {
		c := dialRaw(t, spec)
		writeCtl(t, c, transport.FrameResume, &transport.Resume{
			Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken,
			Sent: 1, Acked: 1,
		})
		var ok transport.ResumeOK
		readCtl(t, c, transport.FrameResumeOK, &ok)
		if ok.Final == nil || !ok.Final.Finished || ok.Final.TrapCode != stubTrapCode {
			t.Fatalf("try %d: resume did not replay the final verdict: %+v", try, ok)
		}
		c.Close()
	}
}

// TestRouterResumeRefusals covers the resume sanity checks: wrong token,
// unknown session, and a client claiming fewer sent frames than the router
// journaled.
func TestRouterResumeRefusals(t *testing.T) {
	_, spec, _ := stubFleet(t, 1, Config{ResumeWindow: time.Minute})
	conn, w := openRaw(t, spec, stubHello("", 13))
	sendPacket(t, conn, []byte("frame"))
	sendPacket(t, conn, []byte("frame"))
	conn.Close()

	cases := []transport.Resume{
		{Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken ^ 2, Sent: 2},
		{Proto: transport.ProtoVersion, Session: w.Session + 77, Token: w.ResumeToken, Sent: 2},
		{Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken, Sent: 1},
	}
	for i, req := range cases {
		c := dialRaw(t, spec)
		writeCtl(t, c, transport.FrameResume, &req)
		expectRefusal(t, c, "resume")
		c.Close()
		_ = i
	}

	// A stale protocol version is refused before any lookup.
	c := dialRaw(t, spec)
	writeCtl(t, c, transport.FrameResume, &transport.Resume{Proto: 99, Session: w.Session, Token: w.ResumeToken})
	expectRefusal(t, c, "resume")
}

// TestRouterKicksStaleAttachment: a resume for a session that still has a
// live (but silently stalled) connection kicks the old attachment and the
// new connection carries on.
func TestRouterKicksStaleAttachment(t *testing.T) {
	_, spec, _ := stubFleet(t, 1, Config{ResumeWindow: time.Minute})
	conn, w := openRaw(t, spec, stubHello("", 15))
	sendPacket(t, conn, []byte("frame"))

	conn2 := dialRaw(t, spec)
	writeCtl(t, conn2, transport.FrameResume, &transport.Resume{
		Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken,
		Sent: 1, Acked: 1,
	})
	var ok transport.ResumeOK
	readCtl(t, conn2, transport.FrameResumeOK, &ok)
	if ok.Have != 1 {
		t.Fatalf("resume over a live attachment: %+v, want Have=1", ok)
	}
	if _, _, err := conn.ReadFrame(); err == nil {
		t.Fatal("kicked connection still readable")
	}
	if ack := sendPacket(t, conn2, []byte("frame")); ack != 2 {
		t.Fatalf("post-kick credit acks %d, want 2", ack)
	}
	if err := conn2.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	readCtl(t, conn2, transport.FrameDone, nil)
}

// TestRouterHandshakeRefusals: bad first frames and protocol drift are
// refused with diagnoses, exactly like a bare shard.
func TestRouterHandshakeRefusals(t *testing.T) {
	_, spec, _ := stubFleet(t, 1, Config{})

	c := dialRaw(t, spec)
	if err := c.WriteFrame(transport.FrameCredit, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	expectRefusal(t, c, "handshake")

	c2 := dialRaw(t, spec)
	h := stubHello("", 1)
	h.Proto = 99
	writeCtl(t, c2, transport.FrameHello, &h)
	expectRefusal(t, c2, "handshake")

	// The shard's own client-level refusal (wire-digest drift) is relayed
	// verbatim, not wrapped.
	c3 := dialRaw(t, spec)
	h3 := stubHello("", 1)
	h3.WireDigest++
	writeCtl(t, c3, transport.FrameHello, &h3)
	ei := expectRefusal(t, c3, "handshake")
	if !strings.Contains(ei.Msg, "digest") {
		t.Errorf("digest-drift refusal lost the shard's diagnosis: %s", ei.Msg)
	}
}

// TestRouterMidSessionProtocolError: a control frame where data belongs is
// fatal — diagnosed to the client and the session dropped, not parked.
func TestRouterMidSessionProtocolError(t *testing.T) {
	r, spec, _ := stubFleet(t, 1, Config{ResumeWindow: time.Minute})
	conn, w := openRaw(t, spec, stubHello("", 17))
	writeCtl(t, conn, transport.FrameVerdict, &transport.Verdict{})
	expectRefusal(t, conn, "decode")

	waitFor(t, 5*time.Second, "fatal session to be dropped", func() bool {
		return r.Sessions() == 0
	})
	c := dialRaw(t, spec)
	writeCtl(t, c, transport.FrameResume, &transport.Resume{
		Proto: transport.ProtoVersion, Session: w.Session, Token: w.ResumeToken, Sent: 0,
	})
	expectRefusal(t, c, "resume")
}

// TestRouterStatsOverWire: the FrameStats loop a load balancer or the
// difftest-fleet -stats verb polls, including the per-shard rows.
func TestRouterStatsOverWire(t *testing.T) {
	r, spec, _ := stubFleet(t, 2, Config{})
	waitFor(t, 5*time.Second, "first shard poll", func() bool {
		return r.StatsInfo().Window > 0
	})

	conn := dialRaw(t, spec)
	for poll := 0; poll < 2; poll++ {
		if err := conn.WriteFrame(transport.FrameStats, nil); err != nil {
			t.Fatal(err)
		}
		var st transport.StatsInfo
		readCtl(t, conn, transport.FrameStats, &st)
		if len(st.Shards) != 2 {
			t.Fatalf("poll %d: %d shard rows, want 2", poll, len(st.Shards))
		}
		for _, row := range st.Shards {
			if row.State != StateHealthy {
				t.Errorf("poll %d: shard %s is %s", poll, row.Addr, row.State)
			}
		}
		if st.Window != 4 {
			t.Errorf("poll %d: aggregated window %d, want the shards' 4", poll, st.Window)
		}
	}
	// A non-poll frame mid-loop is refused.
	if err := conn.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	expectRefusal(t, conn, "decode")
}

// TestRouterReapReleasesQuota: an abandoned session holds its tenant slot
// only until the resume window reaps it.
func TestRouterReapReleasesQuota(t *testing.T) {
	r, spec, _ := stubFleet(t, 1, Config{
		ResumeWindow: 50 * time.Millisecond,
		Quotas:       map[string]Quota{DefaultTenant: {MaxSessions: 1}},
	})
	conn, _ := openRaw(t, spec, stubHello("ci", 19))
	conn.Close() // abandon: parked, still holding ci's only slot

	waitFor(t, 5*time.Second, "abandoned session to be reaped", func() bool {
		return r.Sessions() == 0
	})
	_, w := openRaw(t, spec, stubHello("ci", 21))
	if w.Session == 0 {
		t.Fatal("slot not released by the reap")
	}
}
