package fleet

import (
	"time"

	"repro/internal/transport"
)

// Shard states. A shard leaves placement two ways: the router marks it down
// when dials or mid-session I/O fail (the health poll restores it when it
// answers again), and an admin drains it (only an explicit undrain restores
// it — a draining shard that answers polls stays out of placement).
const (
	StateHealthy  = "healthy"
	StateDraining = "draining"
	StateDown     = "down"
)

// shard is the router's view of one backend difftestd. All fields are
// guarded by Router.mu; the health poller and the placement walk both go
// through it.
type shard struct {
	addr  string
	state string

	// stats is the last FrameStats reply; zero until the first poll lands.
	stats    transport.StatsInfo
	lastPoll time.Time

	// sessions counts live sessions the router has placed here (its own
	// view, independent of the shard's Active — the shard also serves the
	// router's journal replays and any direct clients).
	sessions int
	served   uint64
	fails    uint64
}

// candidates returns the placement ranking for key over shards that are
// accepting sessions: healthy, and — when the last poll reported a capacity
// — not already at it. The full ranked walk is returned so a shard that
// refuses at dial time ("overloaded", dead since the poll) falls through to
// the next-best pick.
func (r *Router) candidates(key string) []string {
	r.mu.Lock()
	avail := make([]string, 0, len(r.order))
	for _, addr := range r.order {
		sh := r.shards[addr]
		if sh.state != StateHealthy {
			continue
		}
		if cap := sh.stats.Capacity; cap > 0 && sh.sessions >= cap {
			continue
		}
		avail = append(avail, addr)
	}
	r.mu.Unlock()
	return rankShards(key, avail)
}

// markDown withdraws a shard from placement after a dial or I/O failure.
// Draining shards keep their admin state; the poller restores a down shard
// to healthy when it answers again.
func (r *Router) markDown(addr string, why error) {
	r.mu.Lock()
	sh, ok := r.shards[addr]
	if ok {
		sh.fails++
		if sh.state == StateHealthy {
			sh.state = StateDown
			r.logf("shard %s: down (%v)", addr, why)
		}
	}
	r.mu.Unlock()
}

// pollLoop polls every shard each StatsInterval tick until stop closes. One
// in-flight poll per shard at a time: a shard timing out its dial must not
// pile up pollers behind it.
func (r *Router) pollLoop() {
	t := time.NewTicker(r.cfg.StatsInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.reapSessions(now)
			r.mu.Lock()
			for _, addr := range r.order {
				sh := r.shards[addr]
				if r.polling[addr] {
					continue
				}
				r.polling[addr] = true
				draining := sh.state == StateDraining
				r.pollWG.Add(1)
				go func(addr string, draining bool) {
					defer r.pollWG.Done()
					r.pollShard(addr, draining)
				}(addr, draining)
			}
			r.mu.Unlock()
		}
	}
}

// pollShard runs one FrameStats round trip against a shard and records the
// outcome: counters and healthy on success, down on any failure. A draining
// shard's stats are refreshed but its admin state is preserved.
func (r *Router) pollShard(addr string, draining bool) {
	defer func() {
		r.mu.Lock()
		delete(r.polling, addr)
		r.mu.Unlock()
	}()
	st, err := r.statsRoundTrip(addr)
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, ok := r.shards[addr]
	if !ok {
		return
	}
	if err != nil {
		sh.fails++
		if sh.state == StateHealthy {
			sh.state = StateDown
			r.logf("shard %s: down (poll: %v)", addr, err)
		}
		return
	}
	sh.stats = st
	sh.lastPoll = now
	if sh.state == StateDown && !draining {
		sh.state = StateHealthy
		r.logf("shard %s: healthy again", addr)
	}
}

// statsRoundTrip dials a shard, sends one empty FrameStats poll, and decodes
// the StatsInfo reply.
func (r *Router) statsRoundTrip(addr string) (transport.StatsInfo, error) {
	conn, err := r.dialShard(addr)
	if err != nil {
		return transport.StatsInfo{}, err
	}
	defer conn.Close()
	conn.SetWriteTimeout(r.cfg.WriteTimeout)
	conn.SetReadTimeout(r.cfg.DialTimeout)
	if err := conn.WriteFrame(transport.FrameStats, nil); err != nil {
		return transport.StatsInfo{}, err
	}
	h, payload, err := conn.ReadFrame()
	if err != nil {
		return transport.StatsInfo{}, err
	}
	defer conn.ReleasePayload(payload)
	if h.Type != transport.FrameStats {
		return transport.StatsInfo{}, errUnexpectedFrame("stats poll", h.Type)
	}
	var st transport.StatsInfo
	if err := unmarshalFrame(h.Type, payload, &st); err != nil {
		return transport.StatsInfo{}, err
	}
	return st, nil
}
