// Package fleet turns N independent difftestd shards into one verification
// service: a stateless router speaks the DTH1 framed protocol on both sides,
// places each inbound session on a shard by rendezvous hashing, enforces
// per-tenant admission quotas and fair-share token windows, and migrates
// live sessions off dead or draining shards without changing their verdicts.
//
// The router keeps no durable state and no placement table: where a session
// belongs is a pure function of its handshake key and the live shard set, so
// any router replica computes the same answer. What it does keep, per live
// session, is a journal — a pooled copy of every data frame it has forwarded.
// That journal is what makes migration honest: a checker is stateful, so a
// session moved to a new shard must replay its entire acknowledged prefix
// into a fresh checker there, and only the client's own replay window (the
// unacknowledged tail) rides in over the resume handshake. Migration is
// therefore literally a forced resume: the router redirects (or the client's
// stall detection fires), the client redials with its normal Resume frame,
// and the router answers it after rebuilding the backend — same machinery,
// different shard, byte-identical stream, byte-identical verdict.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Quota is one tenant's admission and fair-share policy.
type Quota struct {
	// MaxSessions caps the tenant's concurrent live sessions fleet-wide
	// (0 = unlimited). A session stops counting when its final verdict is
	// delivered, not when its record is reaped.
	MaxSessions int
	// Share scales the token window granted to the tenant's clients: the
	// shard grants W tokens, the client sees max(1, round(W*Share)). Zero
	// or ≥1 passes the shard's grant through unchanged — shares are for
	// throttling, never for out-crediting the shard.
	Share float64
}

// DefaultTenant keys the Quotas entry applied to tenants with no entry of
// their own (including the empty tenant).
const DefaultTenant = "*"

// Config tunes a Router.
type Config struct {
	// Shards lists the backend difftestd endpoints (transport.ParseSpec
	// forms; ParseShards builds the list from a comma-separated flag).
	// Required, at least one.
	Shards []string
	// Quotas maps tenant name → policy; the DefaultTenant entry covers
	// everyone else. Nil means no quotas and full shares.
	Quotas map[string]Quota

	// StatsInterval is the shard health-poll cadence (0 = 1s).
	StatsInterval time.Duration
	// DialTimeout bounds each backend dial + handshake read (0 = 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds every outbound frame flush (0 = transport default).
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for a connection's first frame
	// (0 = transport default).
	HandshakeTimeout time.Duration
	// ResumeWindow is how long a broken session's journal is kept for the
	// client to resume (0 = transport default). Unlike difftestd, a router
	// cannot disable it — resume is the migration mechanism.
	ResumeWindow time.Duration

	// DialShard, when set, replaces the backend network dial — the hook
	// fault-injection tests use to route router→shard connections through
	// faultnet. The router wraps the net.Conn in the socket framing.
	DialShard func(spec string) (net.Conn, error)
	// Logf, when set, receives one line per lifecycle step.
	Logf func(format string, args ...any)
}

// Router is the fleet front end: a session-aware frame proxy.
type Router struct {
	cfg Config

	mu        sync.Mutex
	shards    map[string]*shard
	order     []string // declared shard order, for stable listings
	sessions  map[uint64]*rsession
	tenants   map[string]int // live (not yet final) sessions per tenant
	listeners map[transport.FrameListener]struct{}
	conns     map[transport.FrameTransport]struct{}
	polling   map[string]bool
	draining  bool

	wg       sync.WaitGroup
	pollWG   sync.WaitGroup
	stop     chan struct{}
	pollOnce sync.Once

	nextID     atomic.Uint64
	tokenSalt  uint64
	attached   atomic.Int64 // sessions with a live client connection
	served     atomic.Uint64
	mismatches atomic.Uint64
	parkCount  atomic.Uint64
	resumed    atomic.Uint64
	migrations atomic.Uint64
	refused    atomic.Uint64 // admissions refused (quota or no shard)
}

// NewRouter builds a router over cfg.Shards.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("fleet: no shards configured")
	}
	if cfg.StatsInterval <= 0 {
		cfg.StatsInterval = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = transport.DefaultWriteTimeout
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = transport.DefaultHandshakeTimeout
	}
	if cfg.ResumeWindow <= 0 {
		cfg.ResumeWindow = transport.DefaultResumeWindow
	}
	r := &Router{
		cfg:       cfg,
		shards:    make(map[string]*shard, len(cfg.Shards)),
		sessions:  make(map[uint64]*rsession),
		tenants:   make(map[string]int),
		listeners: make(map[transport.FrameListener]struct{}),
		conns:     make(map[transport.FrameTransport]struct{}),
		polling:   make(map[string]bool),
		stop:      make(chan struct{}),
		tokenSalt: uint64(time.Now().UnixNano()),
	}
	for _, raw := range cfg.Shards {
		sp, err := transport.ParseSpec(raw)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %q: %w", raw, err)
		}
		addr := sp.String()
		if _, dup := r.shards[addr]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard %q", addr)
		}
		r.shards[addr] = &shard{addr: addr, state: StateHealthy}
		r.order = append(r.order, addr)
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// dialShard opens a framed transport to one backend, through the configured
// raw-dial hook or the scheme registry.
func (r *Router) dialShard(addr string) (transport.FrameTransport, error) {
	if r.cfg.DialShard != nil {
		nc, err := r.cfg.DialShard(addr)
		if err != nil {
			return nil, err
		}
		return transport.NewConn(nc), nil
	}
	return transport.DialFrame(addr, r.cfg.DialTimeout)
}

// quotaFor resolves a tenant's policy: its own entry, else the default.
func (r *Router) quotaFor(tenant string) Quota {
	if q, ok := r.cfg.Quotas[tenant]; ok {
		return q
	}
	return r.cfg.Quotas[DefaultTenant]
}

// scaleWindow applies a tenant's fair share to a shard's token grant.
func scaleWindow(shardTokens int, share float64) int {
	if share <= 0 || share >= 1 {
		return shardTokens
	}
	w := int(float64(shardTokens)*share + 0.5)
	if w < 1 {
		w = 1
	}
	if w > shardTokens {
		w = shardTokens
	}
	return w
}

// Serve accepts client connections on l until the listener closes
// (Shutdown). The health poller starts with the first Serve call.
func (r *Router) Serve(l transport.FrameListener) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		l.Close()
		return errors.New("fleet: router is shut down")
	}
	r.listeners[l] = struct{}{}
	r.mu.Unlock()
	r.pollOnce.Do(func() {
		r.pollWG.Add(1)
		go func() {
			defer r.pollWG.Done()
			r.pollLoop()
		}()
	})

	for {
		conn, err := l.AcceptFrame()
		if err != nil {
			r.mu.Lock()
			draining := r.draining
			delete(r.listeners, l)
			r.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
				conn.Close()
			}()
			r.handleConn(conn)
		}()
	}
}

// handleConn dispatches one inbound connection by its first frame.
func (r *Router) handleConn(conn transport.FrameTransport) {
	conn.SetWriteTimeout(r.cfg.WriteTimeout)
	conn.SetReadTimeout(r.cfg.HandshakeTimeout)

	h, payload, err := conn.ReadFrame()
	if err != nil {
		r.logf("conn from %s: first frame: %v", conn.RemoteAddr(), err)
		return
	}
	switch h.Type {
	case transport.FrameHello:
		r.openSession(conn, h, payload)
	case transport.FrameResume:
		r.resumeSession(conn, h, payload)
	case transport.FrameStats:
		conn.ReleasePayload(payload)
		r.serveStats(conn)
	case transport.FrameDrain:
		r.serveDrain(conn, h, payload)
	case transport.FrameWelcome, transport.FramePacket, transport.FrameItems,
		transport.FrameEnd, transport.FrameCredit, transport.FrameVerdict,
		transport.FrameDone, transport.FrameErrorInfo, transport.FrameResumeOK,
		transport.FrameRedirect:
		// A router accepts one more opener than a shard (Drain); the rest
		// are refused by name so a new control frame fails lint here.
		fallthrough
	default:
		conn.ReleasePayload(payload)
		r.refuse(conn, "handshake",
			fmt.Sprintf("expected Hello, Resume, Stats, or Drain, got frame type %d", h.Type))
	}
}

// refuse sends a FrameError and gives up on the connection.
func (r *Router) refuse(conn transport.FrameTransport, code, msg string) {
	r.logf("refused (%s): %s", code, msg)
	conn.WriteFrame(transport.FrameErrorInfo, marshalFrame(&transport.ErrorInfo{Code: code, Msg: msg}))
}

// StatsInfo aggregates the fleet's health: router-level counters plus the
// per-shard view placement works from.
func (r *Router) StatsInfo() transport.StatsInfo {
	st := transport.StatsInfo{
		Active:     int(r.attached.Load()),
		Parked:     r.parkCount.Load(),
		Resumed:    r.resumed.Load(),
		Served:     r.served.Load(),
		Mismatches: r.mismatches.Load(),
		Migrations: r.migrations.Load(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	unlimited := false
	for _, addr := range r.order {
		sh := r.shards[addr]
		row := transport.ShardStatus{
			Addr:     sh.addr,
			State:    sh.state,
			Active:   sh.stats.Active,
			Parked:   sh.stats.Parked,
			Resumed:  sh.stats.Resumed,
			Served:   sh.stats.Served,
			Capacity: sh.stats.Capacity,
			Sessions: sh.sessions,
		}
		if sh.stats.Window > st.Window {
			st.Window = sh.stats.Window
		}
		if sh.stats.Capacity <= 0 {
			unlimited = true
		} else {
			st.Capacity += sh.stats.Capacity
		}
		st.Shards = append(st.Shards, row)
	}
	if unlimited {
		st.Capacity = 0
	}
	return st
}

// serveStats answers health polls, shard-style: a reply per inbound poll
// frame until the peer hangs up or goes idle.
func (r *Router) serveStats(conn transport.FrameTransport) {
	for {
		if err := conn.WriteFrame(transport.FrameStats, marshalFrame(r.StatsInfo())); err != nil {
			return
		}
		conn.SetReadTimeout(r.cfg.HandshakeTimeout)
		h, payload, err := conn.ReadFrame()
		if err != nil {
			return
		}
		conn.ReleasePayload(payload)
		if h.Type != transport.FrameStats {
			r.refuse(conn, "decode", fmt.Sprintf("expected Stats poll, got frame type %d", h.Type))
			return
		}
	}
}

// serveDrain handles one admin drain/undrain request.
func (r *Router) serveDrain(conn transport.FrameTransport, h transport.FrameHeader, payload []byte) {
	var req transport.DrainRequest
	err := unmarshalFrame(h.Type, payload, &req)
	conn.ReleasePayload(payload)
	if err != nil {
		r.refuse(conn, "decode", err.Error())
		return
	}
	sp, perr := transport.ParseSpec(req.Shard)
	if perr != nil {
		r.refuse(conn, "decode", perr.Error())
		return
	}
	addr := sp.String()
	var reply transport.DrainReply
	var known bool
	if req.Undrain {
		reply, known = r.UndrainShard(addr)
	} else {
		reply, known = r.DrainShard(addr)
	}
	if !known {
		r.refuse(conn, "decode", fmt.Sprintf("unknown shard %q", addr))
		return
	}
	conn.WriteFrame(transport.FrameDrain, marshalFrame(&reply))
}

// DrainShard withdraws a shard from placement and redirects its live
// sessions; each resumes through the migration path onto another shard.
func (r *Router) DrainShard(addr string) (transport.DrainReply, bool) {
	r.mu.Lock()
	sh, ok := r.shards[addr]
	if !ok {
		r.mu.Unlock()
		return transport.DrainReply{}, false
	}
	if sh.state != StateDown {
		sh.state = StateDraining
	}
	var kick []*proxy
	for _, s := range r.sessions {
		s.mu.Lock()
		if s.attached != nil && s.shardAddr == addr {
			kick = append(kick, s.attached)
		}
		s.mu.Unlock()
	}
	state := sh.state
	r.mu.Unlock()

	for _, p := range kick {
		p.redirect("shard draining")
	}
	r.logf("shard %s: draining, %d session(s) redirected", addr, len(kick))
	return transport.DrainReply{Shard: addr, State: state, Redirected: len(kick)}, true
}

// UndrainShard returns a drained shard to placement (it re-enters as down
// until the next successful poll proves it answers).
func (r *Router) UndrainShard(addr string) (transport.DrainReply, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, ok := r.shards[addr]
	if !ok {
		return transport.DrainReply{}, false
	}
	if sh.state == StateDraining {
		sh.state = StateDown
	}
	return transport.DrainReply{Shard: addr, State: sh.state}, true
}

// Shutdown stops the router: listeners close, every live connection is torn
// down, and all session journals drain back to the buffer pool. Unlike a
// shard, a router has no work of its own to let finish — clients that lose
// it resume against another router or degrade — so Shutdown is immediate;
// ctx bounds the wait for in-flight handlers.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil
	}
	r.draining = true
	close(r.stop)
	for l := range r.listeners {
		l.Close()
	}
	for c := range r.conns {
		c.SetDeadlineNow()
		c.Close()
	}
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		r.pollWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		<-done
	}

	// Handlers are gone; whatever sessions remain release their journals.
	r.mu.Lock()
	sessions := make([]*rsession, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.sessions = make(map[uint64]*rsession)
	r.mu.Unlock()
	for _, s := range sessions {
		s.releaseJournal()
	}
	return err
}

// Sessions reports the router's live session-record count (attached plus
// parked, before reaping).
func (r *Router) Sessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Migrations reports how many resumes the router landed on a different
// shard than the session ran on before.
func (r *Router) Migrations() uint64 { return r.migrations.Load() }

// Refused reports admissions refused at the router (quota or no shard).
func (r *Router) Refused() uint64 { return r.refused.Load() }

// reapSessions drops parked session records past the resume window,
// returning their journals to the pool.
func (r *Router) reapSessions(now time.Time) {
	var expired []*rsession
	r.mu.Lock()
	for id, s := range r.sessions {
		s.mu.Lock()
		gone := s.attached == nil && now.Sub(s.parkedAt) > r.cfg.ResumeWindow
		s.mu.Unlock()
		if gone {
			delete(r.sessions, id)
			r.releaseTenantLocked(s)
			r.unplaceLocked(s)
			expired = append(expired, s)
		}
	}
	r.mu.Unlock()
	for _, s := range expired {
		s.releaseJournal()
		r.logf("session %d: resume window expired, reaped", s.id)
	}
}

// releaseTenantLocked returns a session's tenant admission slot. Callers
// hold r.mu; idempotent per session.
func (r *Router) releaseTenantLocked(s *rsession) {
	if !s.tenantHeld {
		return
	}
	s.tenantHeld = false
	if n := r.tenants[s.tenant]; n > 1 {
		r.tenants[s.tenant] = n - 1
	} else {
		delete(r.tenants, s.tenant)
	}
}

// dropSession removes a session record entirely (fatal protocol error) and
// releases everything it holds.
func (r *Router) dropSession(s *rsession) {
	r.mu.Lock()
	delete(r.sessions, s.id)
	r.releaseTenantLocked(s)
	r.unplaceLocked(s)
	r.mu.Unlock()
	s.releaseJournal()
}

// sessionDone marks a session's final verdict delivered: it stops counting
// against its tenant's quota and against its shard, but its record stays
// parked so a client that lost the Done frame can resume and replay it.
func (r *Router) sessionDone(s *rsession) {
	r.served.Add(1)
	r.mu.Lock()
	r.releaseTenantLocked(s)
	if sh, ok := r.shards[s.placedAddr]; ok {
		sh.served++
	}
	r.unplaceLocked(s)
	r.mu.Unlock()
}

// marshalFrame encodes a JSON control payload (transport keeps its helper
// private; control frames are rare, the allocation is irrelevant).
func marshalFrame(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("fleet: encoding control frame: %v", err))
	}
	return b
}

// unmarshalFrame decodes a JSON control payload with frame-type context.
func unmarshalFrame(typ uint8, buf []byte, v any) error {
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("fleet: corrupt control frame (type %d): %w", typ, err)
	}
	return nil
}

// errUnexpectedFrame reports a frame kind that has no business at this
// point of the protocol.
func errUnexpectedFrame(where string, typ uint8) error {
	return fmt.Errorf("fleet: %s: unexpected frame type %d", where, typ)
}
