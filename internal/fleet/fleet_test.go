package fleet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/platform"
	"repro/internal/transport"
	"repro/internal/workload"
)

// The integration gates: real co-simulation sessions (production
// cosim.NewSession shards, the production networked client) routed through
// the fleet, with verdict equivalence against in-process references as the
// pass condition — the same bar the cosim fault matrix sets, plus shard
// death and migration on top.

// fleetParams builds one routed run. The parameter set matches the cosim
// fault matrix (EBINSD, LinuxBoot at 40k instructions) so bug detection
// behaves identically; the seed both varies the stream and spreads the
// placement keys across shards.
func fleetParams(t testing.TB, bugID, addr string, seed int64) cosim.Params {
	t.Helper()
	opt, err := cosim.ParseConfig("EBINSD")
	if err != nil {
		t.Fatal(err)
	}
	opt.Executed = true
	wl := workload.LinuxBoot()
	wl.TargetInstrs = 40_000
	p := cosim.Params{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: opt,
		Workload: wl, Seed: seed,
	}
	if bugID != "" {
		b, ok := bugs.ByID(bugID)
		if !ok {
			t.Fatalf("bug %s not in the library", bugID)
		}
		p.Hooks = b.Hooks(0)
	}
	p.RemoteAddr = addr
	return p
}

// routedCfg is the resume-enabled client config every fleet run uses: the
// same machinery the fault matrix exercises, pointed at a router.
func routedCfg() transport.ClientConfig {
	return transport.ClientConfig{
		Resume:       true,
		MaxRetries:   6,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		StallTimeout: 2 * time.Second,
		JitterSeed:   17,
	}
}

// fleetVerdictEq asserts the routed verdict is byte-identical to the
// in-process reference (detection, trap code, and the checker's full
// mismatch identity and diagnosis).
func fleetVerdictEq(t *testing.T, ref, got *cosim.Result, context string) {
	t.Helper()
	if (ref.Mismatch == nil) != (got.Mismatch == nil) {
		t.Fatalf("%s: detection disagrees: in-process=%v routed=%v",
			context, ref.Mismatch, got.Mismatch)
	}
	if ref.Mismatch == nil {
		if !got.Finished || got.TrapCode != ref.TrapCode {
			t.Fatalf("%s: clean verdict drifted: finished=%v trap=%d, want trap=%d",
				context, got.Finished, got.TrapCode, ref.TrapCode)
		}
		return
	}
	rm, gm := ref.Mismatch, got.Mismatch
	if rm.Core != gm.Core || rm.Seq != gm.Seq || rm.PC != gm.PC || rm.Kind != gm.Kind {
		t.Fatalf("%s: mismatch identity differs:\n in-process: %v\n routed    : %v",
			context, rm, gm)
	}
	if rm.Detail != gm.Detail {
		t.Fatalf("%s: diagnosis differs:\n in-process: %s\n routed    : %s",
			context, rm.Detail, gm.Detail)
	}
}

// cosimFleet starts n production shards and a router over them.
func cosimFleet(t *testing.T, n int, cfg Config) (*Router, string, func(), map[string]*transport.Server, []*transport.Server) {
	t.Helper()
	servers := make(map[string]*transport.Server, n)
	var order []*transport.Server
	for i := 0; i < n; i++ {
		srv, spec := startShard(t, transport.ServerConfig{NewSession: cosim.NewSession, Window: 8})
		cfg.Shards = append(cfg.Shards, spec)
		servers[canonSpec(t, spec)] = srv
		order = append(order, srv)
	}
	if cfg.StatsInterval == 0 {
		cfg.StatsInterval = 20 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ResumeWindow == 0 {
		cfg.ResumeWindow = time.Minute
	}
	r, spec, stop := startRouter(t, cfg)
	return r, spec, stop, servers, order
}

// TestFleetChaosMigration is the headline gate: concurrent clean and buggy
// runs through a 3-shard fleet, one shard killed mid-run. Every session must
// reach its in-process verdict (no degradation — two healthy shards remain),
// at least one session must migrate, and the buffer pools must balance once
// the fleet is torn down.
func TestFleetChaosMigration(t *testing.T) {
	cells := []struct {
		bug  string
		seed int64
	}{
		{"", 3}, {"", 11}, {"", 19},
		{"store-byte-drop", 3}, {"branch-not-taken", 3},
	}

	// Params are built on the test goroutine (fleetParams may t.Fatal).
	refParams := make([]cosim.Params, len(cells))
	for i, c := range cells {
		refParams[i] = fleetParams(t, c.bug, "", c.seed)
	}
	refs := make([]*cosim.Result, len(cells))
	var refWG sync.WaitGroup
	refErrs := make([]error, len(cells))
	for i := range cells {
		refWG.Add(1)
		go func(i int) {
			defer refWG.Done()
			refs[i], refErrs[i] = cosim.Run(refParams[i])
		}(i)
	}
	refWG.Wait()
	for i, err := range refErrs {
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
	}

	r, spec, stopRouter, servers, order := cosimFleet(t, 3, Config{})
	gets0, puts0 := event.PoolStats()

	routedParams := make([]cosim.Params, len(cells))
	for i, c := range cells {
		p := fleetParams(t, c.bug, spec, c.seed)
		p.RemoteCfg = routedCfg()
		p.Tenant = "chaos"
		routedParams[i] = p
	}
	results := make([]*cosim.Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cosim.Run(routedParams[i])
		}(i)
	}

	// Kill whichever shard is hosting sessions, as soon as one is.
	var killed string
	waitFor(t, 10*time.Second, "a shard to host live sessions", func() bool {
		killed = shardHosting(r)
		return killed != ""
	})
	killShard(servers[killed])
	t.Logf("killed shard %s mid-run", killed)

	wg.Wait()
	migrations := uint64(0)
	for i, c := range cells {
		name := c.bug
		if name == "" {
			name = "clean"
		}
		if errs[i] != nil {
			t.Fatalf("routed run %s/seed=%d: %v", name, c.seed, errs[i])
		}
		if results[i].Degraded {
			t.Errorf("run %s/seed=%d degraded with two healthy shards left", name, c.seed)
		}
		fleetVerdictEq(t, refs[i], results[i], name)
		if results[i].Exec != nil {
			migrations += results[i].Exec.Migrations
		}
	}
	if r.Migrations() == 0 {
		t.Error("router recorded no migrations after losing a loaded shard")
	}
	if migrations == 0 {
		t.Error("no client observed a migrated resume (ResumeOK.Migrated never set)")
	}
	if migrations > 0 && r.Migrations() > 0 {
		t.Logf("%d client-visible migration(s), router counted %d", migrations, r.Migrations())
	}

	// Tear the whole fleet down and check both wire ends' pools balance:
	// every journaled frame the router copied must be back in the pool.
	stopRouter()
	for _, srv := range order {
		killShard(srv) // all sessions are done; this just closes them out
	}
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Errorf("pool imbalance across the fleet: %d gets vs %d puts",
			gets1-gets0, puts1-puts0)
	}
}

// TestFleetAllShardsDeadDegrades pins the satellite path: when no shard can
// take a forced resume, the router refuses it, the client surfaces
// ErrSessionLost, and cosim reruns in-process — identical verdict, Degraded
// marker, one degraded run.
func TestFleetAllShardsDeadDegrades(t *testing.T) {
	ref, err := cosim.Run(fleetParams(t, "", "", 3))
	if err != nil {
		t.Fatal(err)
	}

	r, spec, stopRouter, _, order := cosimFleet(t, 1, Config{})
	gets0, puts0 := event.PoolStats()

	type outcome struct {
		res *cosim.Result
		err error
	}
	p := fleetParams(t, "", spec, 3)
	p.RemoteCfg = routedCfg()
	ch := make(chan outcome, 1)
	go func() {
		res, err := cosim.Run(p)
		ch <- outcome{res, err}
	}()

	waitFor(t, 10*time.Second, "the session to attach", func() bool {
		return r.StatsInfo().Active >= 1
	})
	killShard(order[0])

	got := <-ch
	if got.err != nil {
		t.Fatalf("losing every shard must degrade, not fail: %v", got.err)
	}
	if !got.res.Degraded {
		t.Fatal("run not marked Degraded")
	}
	if got.res.Exec == nil || got.res.Exec.DegradedRuns != 1 {
		t.Fatalf("DegradedRuns != 1 (metrics %+v)", got.res.Exec)
	}
	fleetVerdictEq(t, ref, got.res, "degraded")
	if r.Migrations() != 0 {
		t.Errorf("Migrations() = %d with nowhere to migrate to", r.Migrations())
	}
	if r.Refused() == 0 {
		t.Error("the doomed resume was never refused at the router")
	}

	stopRouter()
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Errorf("pool imbalance after degradation: %d gets vs %d puts",
			gets1-gets0, puts1-puts0)
	}
}

// TestFleetTenantQuotaAdmission: a tenant at its cap is refused while
// another tenant's run proceeds through the same router — and the admitted
// run (a real cosim session with Params.Tenant set) completes normally.
func TestFleetTenantQuotaAdmission(t *testing.T) {
	r, spec, _, _, _ := cosimFleet(t, 2, Config{
		Quotas: map[string]Quota{"ci": {MaxSessions: 1}},
	})

	// A raw held-open session pins ci at its quota. The handshake must be
	// one the production shard accepts: real DUT, platform, and workload.
	hold := transport.Hello{
		Proto: transport.ProtoVersion, WireDigest: event.FormatDigest(),
		DUT: dut.XiangShanDefault().Name, Platform: platform.Palladium().Name,
		Config: "EBINSD", Workload: workload.LinuxBoot().Name,
		TargetInstrs: 1000, Seed: 1, Tenant: "ci",
	}
	holder, w := openRaw(t, spec, hold)
	if w.Session == 0 {
		t.Fatal("holder refused")
	}
	defer holder.Close()

	over := dialRaw(t, spec)
	h2 := hold
	h2.Seed = 2
	writeCtl(t, over, transport.FrameHello, &h2)
	expectRefusal(t, over, "quota")
	if r.Refused() == 0 {
		t.Error("quota refusal not counted")
	}

	p := fleetParams(t, "", spec, 7)
	p.Workload.TargetInstrs = 20_000
	p.RemoteCfg = routedCfg()
	p.Tenant = "dev"
	res, err := cosim.Run(p)
	if err != nil {
		t.Fatalf("dev run alongside a capped tenant: %v", err)
	}
	if !res.Finished || res.Mismatch != nil || res.Degraded {
		t.Fatalf("dev run verdict: finished=%v mismatch=%v degraded=%v",
			res.Finished, res.Mismatch, res.Degraded)
	}
}

// TestFleetBugLibraryEquivalence routes the whole bug library (plus a clean
// baseline) through a 3-shard fleet with no induced chaos: every verdict
// must be byte-identical to the in-process reference — the "difftest -remote
// via a router is still difftest" gate.
func TestFleetBugLibraryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bug-library sweep is long")
	}
	_, spec, _, _, _ := cosimFleet(t, 3, Config{})

	ids := []string{""}
	for _, b := range bugs.Library() {
		ids = append(ids, b.ID)
	}
	for _, id := range ids {
		id := id
		name := id
		if name == "" {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref, err := cosim.Run(fleetParams(t, id, "", 3))
			if err != nil {
				t.Fatal(err)
			}
			p := fleetParams(t, id, spec, 3)
			p.RemoteCfg = routedCfg()
			p.Tenant = "sweep"
			res, err := cosim.Run(p)
			if err != nil {
				t.Fatalf("routed run: %v", err)
			}
			if res.Degraded {
				t.Fatal("routed run degraded without any induced fault")
			}
			fleetVerdictEq(t, ref, res, name)
		})
	}
}
