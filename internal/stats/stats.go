// Package stats provides the performance counters and histograms of the
// DiffTest-H tuning toolkit (paper §5, "Performance evaluation support"):
// software-side counters for transmission counts and volumes, and
// hardware-side counters for fusion ratios and packet utilization.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonic counter.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.Value += n }

// Set is an ordered collection of counters.
type Set struct {
	names    []string
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Counter returns (creating if needed) the named counter.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.names = append(s.names, name)
	return c
}

// Add increments a named counter.
func (s *Set) Add(name string, n uint64) { s.Counter(name).Add(n) }

// Get returns a counter's value (0 if absent).
func (s *Set) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Names returns counter names in creation order.
func (s *Set) Names() []string { return append([]string(nil), s.names...) }

// String renders the set as an aligned report.
func (s *Set) String() string {
	var sb strings.Builder
	w := 0
	for _, n := range s.names {
		if len(n) > w {
			w = len(n)
		}
	}
	for _, n := range s.names {
		fmt.Fprintf(&sb, "%-*s %12d\n", w, n, s.counters[n].Value)
	}
	return sb.String()
}

// Histogram tracks a distribution with power-of-two buckets.
type Histogram struct {
	Name    string
	buckets [64]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name, min: math.MaxUint64}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) at
// power-of-two resolution.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum > target {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return h.max
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.1f min=%d p50≤%d p99≤%d max=%d",
		h.Name, h.count, h.Mean(), h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Table formats rows of columns with aligned widths — the report helper the
// experiment harnesses share.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	line(rule)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// SortedByValue returns counter names ordered by descending value.
func (s *Set) SortedByValue() []string {
	names := s.Names()
	sort.Slice(names, func(i, j int) bool {
		return s.Get(names[i]) > s.Get(names[j])
	})
	return names
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
