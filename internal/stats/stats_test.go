package stats

import (
	"strings"
	"testing"
)

func TestCounterSet(t *testing.T) {
	s := NewSet()
	s.Add("tx.packets", 3)
	s.Add("tx.bytes", 100)
	s.Add("tx.packets", 2)
	if s.Get("tx.packets") != 5 || s.Get("tx.bytes") != 100 {
		t.Errorf("counters: %d %d", s.Get("tx.packets"), s.Get("tx.bytes"))
	}
	if s.Get("missing") != 0 {
		t.Error("missing counter nonzero")
	}
	if names := s.Names(); len(names) != 2 || names[0] != "tx.packets" {
		t.Errorf("names = %v", names)
	}
	if !strings.Contains(s.String(), "tx.bytes") {
		t.Error("report missing counter")
	}
	s.Add("small", 1)
	if top := s.SortedByValue(); top[0] != "tx.bytes" || top[len(top)-1] != "small" {
		t.Errorf("sorted = %v", top)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("lat")
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("basic stats: n=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Errorf("mean = %v", m)
	}
	if q := h.Quantile(0.5); q < 255 || q > 1023 {
		t.Errorf("p50 bound = %d", q)
	}
	if h.Quantile(0.99) < h.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Min() != 0 || empty.Quantile(0.9) != 0 {
		t.Error("empty histogram not zero-valued")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"a", "1"}, {"bb", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("no rule line: %q", lines[1])
	}
}
