package event

import "hash/fnv"

// FormatDigest returns a stable fingerprint of the wire format this binary
// speaks: the number of event kinds and, per kind, its name and fixed wire
// size. Two processes agree on the digest exactly when their generated
// codecs (codec_gen.go) describe the same layout, so the networked transport
// exchanges it during the handshake — the runtime counterpart of the
// `go generate` drift gate, catching a client and server built from
// different codec revisions before any payload is decoded.
func FormatDigest() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		h.Write(scratch[:])
	}
	put(uint64(NumKinds))
	for k := Kind(0); k < NumKinds; k++ {
		in := InfoOf(k)
		h.Write([]byte(in.Name))
		put(uint64(in.Size))
	}
	return h.Sum64()
}
