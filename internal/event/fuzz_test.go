package event

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCodecRoundTrip checks, for arbitrary payload bytes of every kind, that
// decode→encode→decode is stable: the first encode canonicalizes padding, and
// from then on the bytes must round-trip exactly. Payloads of the wrong
// length must fail with the typed *DecodeError and never panic.
func FuzzCodecRoundTrip(f *testing.F) {
	for k := Kind(0); k < NumKinds; k++ {
		seed := make([]byte, SizeOf(k))
		for i := range seed {
			seed[i] = byte(i * 7)
		}
		f.Add(uint8(k), seed)
		f.Add(uint8(k), seed[:len(seed)-1]) // short payload
	}
	f.Add(uint8(NumKinds), []byte{1, 2, 3}) // unknown kind

	f.Fuzz(func(t *testing.T, kindByte uint8, payload []byte) {
		k := Kind(kindByte)
		ev, err := Decode(k, payload)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Decode(%d, %dB) error is not *DecodeError: %v", kindByte, len(payload), err)
			}
			if k < NumKinds && len(payload) == SizeOf(k) {
				t.Fatalf("Decode(%v) rejected an exact-size payload: %v", k, err)
			}
			return
		}
		if k >= NumKinds || len(payload) != SizeOf(k) {
			t.Fatalf("Decode(%d, %dB) accepted invalid input", kindByte, len(payload))
		}

		// First encode canonicalizes padding bytes to zero.
		enc1 := ev.AppendTo(nil)
		ev2, err := Decode(k, enc1)
		if err != nil {
			t.Fatalf("%v: re-decode failed: %v", k, err)
		}
		enc2 := ev2.AppendTo(nil)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%v: encode→decode→encode not byte-stable\n enc1 %x\n enc2 %x", k, enc1, enc2)
		}
		if !Equal(ev, ev2) {
			t.Fatalf("%v: round-tripped event differs", k)
		}
	})
}
