package event

//go:generate go run ./gen

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// WireCodec is the zero-allocation serialization contract every event kind
// implements. The per-kind implementations are hand-rolled little-endian
// encoders emitted by `go generate ./...` (see gen/ and codec_gen.go); they
// produce byte-for-byte the same layout as the reflective
// encoding/binary.Write path the registry cross-checks at init.
type WireCodec interface {
	// EncodedSize returns the fixed wire size in bytes.
	EncodedSize() int
	// AppendTo appends the wire encoding to dst and returns the extended
	// slice. It never allocates when dst has sufficient capacity.
	AppendTo(dst []byte) []byte
	// DecodeFrom fills the receiver from the prefix of src, returning the
	// number of bytes consumed. src may be longer than the wire size.
	DecodeFrom(src []byte) (int, error)
}

// Decode error causes, wrapped by DecodeError.
var (
	// ErrUnknownKind marks a kind outside the registered type space.
	ErrUnknownKind = errors.New("unknown event kind")
	// ErrShortPayload marks a payload shorter than the kind's wire size.
	ErrShortPayload = errors.New("payload shorter than wire size")
	// ErrPayloadSize marks a payload whose length does not equal the kind's
	// wire size exactly (Decode requires an exact-size slice).
	ErrPayloadSize = errors.New("payload length does not match wire size")
)

// DecodeError is the typed error every failed decode returns: it names the
// event kind, records the offending payload length, and wraps the structural
// cause so callers can errors.Is/As against it.
type DecodeError struct {
	Kind Kind
	Len  int // payload length that was offered
	Err  error
}

// Error implements error.
func (e *DecodeError) Error() string {
	want := 0
	if e.Kind < NumKinds {
		want = infos[e.Kind].Size
	}
	return fmt.Sprintf("event: decode %v: payload %dB (want %dB): %v", e.Kind, e.Len, want, e.Err)
}

// Unwrap exposes the structural cause.
func (e *DecodeError) Unwrap() error { return e.Err }

// decodeErr builds the typed decode error; the generated DecodeFrom methods
// call it on short input.
func decodeErr(k Kind, n int, cause error) error {
	return &DecodeError{Kind: k, Len: n, Err: cause}
}

// codecGrow extends dst by n bytes and returns the extended slice plus the
// writable window covering the new bytes. When dst has capacity the window
// is carved in place; the append(dst, make(...)...) grow form is recognized
// by the compiler and does not allocate a temporary.
func codecGrow(dst []byte, n int) ([]byte, []byte) {
	l := len(dst)
	if cap(dst)-l < n {
		dst = append(dst, make([]byte, n)...)
	} else {
		dst = dst[:l+n]
	}
	return dst, dst[l : l+n]
}

// Info describes one event kind's structural semantics: its name, Table-1
// category, fixed wire size, and constructor. This is the metadata the Batch
// parser uses to reconstruct events from tightly packed payloads.
type Info struct {
	Kind     Kind
	Name     string
	Category Category
	Size     int
	New      func() Event
}

var infos [NumKinds]Info

func register(k Kind, newFn func() Event) {
	ev := newFn()
	// The reflective layout is the authority the generated codecs must
	// match; a disagreement means codec_gen.go is stale.
	size := binary.Size(ev)
	if size <= 0 {
		panic(fmt.Sprintf("event: kind %v has no fixed binary size", k))
	}
	if g := ev.EncodedSize(); g != size {
		panic(fmt.Sprintf("event: generated codec for %v says %dB but the field layout is %dB — rerun go generate ./...", k, g, size))
	}
	infos[k] = Info{Kind: k, Name: k.String(), Category: CategoryOf(k), Size: size, New: newFn}
}

func init() {
	register(KindInstrCommit, func() Event { return new(InstrCommit) })
	register(KindTrap, func() Event { return new(Trap) })
	register(KindException, func() Event { return new(Exception) })
	register(KindInterrupt, func() Event { return new(Interrupt) })
	register(KindRedirect, func() Event { return new(Redirect) })
	register(KindArchIntRegState, func() Event { return new(ArchIntRegState) })
	register(KindArchFpRegState, func() Event { return new(ArchFpRegState) })
	register(KindCSRState, func() Event { return new(CSRState) })
	register(KindArchVecRegState, func() Event { return new(ArchVecRegState) })
	register(KindVecCSRState, func() Event { return new(VecCSRState) })
	register(KindFpCSRState, func() Event { return new(FpCSRState) })
	register(KindHCSRState, func() Event { return new(HCSRState) })
	register(KindDebugCSRState, func() Event { return new(DebugCSRState) })
	register(KindTriggerCSRState, func() Event { return new(TriggerCSRState) })
	register(KindLoad, func() Event { return new(Load) })
	register(KindStore, func() Event { return new(Store) })
	register(KindAtomic, func() Event { return new(Atomic) })
	register(KindSbuffer, func() Event { return new(Sbuffer) })
	register(KindL1TLB, func() Event { return new(L1TLB) })
	register(KindL2TLB, func() Event { return new(L2TLB) })
	register(KindRefill, func() Event { return new(Refill) })
	register(KindLrSc, func() Event { return new(LrSc) })
	register(KindCMO, func() Event { return new(CMO) })
	register(KindVecCommit, func() Event { return new(VecCommit) })
	register(KindVecWriteback, func() Event { return new(VecWriteback) })
	register(KindVecMem, func() Event { return new(VecMem) })
	register(KindHTrap, func() Event { return new(HTrap) })
	register(KindGuestPageFault, func() Event { return new(GuestPageFault) })
	register(KindVstartUpdate, func() Event { return new(VstartUpdate) })
	register(KindHLoad, func() Event { return new(HLoad) })
	register(KindVirtualInterrupt, func() Event { return new(VirtualInterrupt) })
	register(KindVecExceptionTrack, func() Event { return new(VecExceptionTrack) })
}

// InfoOf returns the structural metadata for kind k.
func InfoOf(k Kind) Info { return infos[k] }

// SizeOf returns the fixed wire size in bytes of kind k.
func SizeOf(k Kind) int { return infos[k].Size }

// TotalSize returns the aggregated size of one instance of every event kind,
// the figure the paper reports as the total interface width (§2.2).
func TotalSize() int {
	n := 0
	for _, in := range infos {
		n += in.Size
	}
	return n
}

// Encode appends ev's wire encoding to dst and returns the extended slice.
// It allocates only when dst lacks capacity.
func Encode(dst []byte, ev Event) []byte { return ev.AppendTo(dst) }

// EncodeValue returns ev's wire encoding as a fresh exact-size slice.
func EncodeValue(ev Event) []byte {
	return ev.AppendTo(make([]byte, 0, ev.EncodedSize()))
}

// Decode reconstructs an event of kind k from its wire encoding. The data
// slice must be exactly SizeOf(k) bytes. All failures are *DecodeError.
func Decode(k Kind, data []byte) (Event, error) {
	if k >= NumKinds {
		return nil, decodeErr(k, len(data), ErrUnknownKind)
	}
	if len(data) != infos[k].Size {
		return nil, decodeErr(k, len(data), ErrPayloadSize)
	}
	ev := infos[k].New()
	if _, err := ev.DecodeFrom(data); err != nil {
		return nil, err
	}
	return ev, nil
}

// Equal reports whether two events have the same kind and identical wire
// encodings (and therefore identical field values). It runs on the checker's
// state-compare hot path, so it encodes into pooled scratch buffers.
func Equal(a, b Event) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	ab := a.AppendTo(GetBuf(a.EncodedSize()))
	bb := b.AppendTo(GetBuf(b.EncodedSize()))
	eq := bytes.Equal(ab, bb)
	PutBuf(ab)
	PutBuf(bb)
	return eq
}

// Record is an event stamped with its order tag: the global instruction
// commit sequence number after which it must be checked. The tag is the
// order semantics Squash exploits to decouple transmission order from
// checking order (paper §4.3).
type Record struct {
	Seq  uint64
	Core uint8
	Ev   Event
}

// String renders a record for debug reports.
func (r Record) String() string {
	return fmt.Sprintf("c%d@%d %v%+v", r.Core, r.Seq, r.Ev.Kind(), r.Ev)
}
