package event

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Info describes one event kind's structural semantics: its name, Table-1
// category, fixed wire size, and constructor. This is the metadata the Batch
// parser uses to reconstruct events from tightly packed payloads.
type Info struct {
	Kind     Kind
	Name     string
	Category Category
	Size     int
	New      func() Event
}

var infos [NumKinds]Info

func register(k Kind, newFn func() Event) {
	size := binary.Size(newFn())
	if size <= 0 {
		panic(fmt.Sprintf("event: kind %v has no fixed binary size", k))
	}
	infos[k] = Info{Kind: k, Name: k.String(), Category: CategoryOf(k), Size: size, New: newFn}
}

func init() {
	register(KindInstrCommit, func() Event { return new(InstrCommit) })
	register(KindTrap, func() Event { return new(Trap) })
	register(KindException, func() Event { return new(Exception) })
	register(KindInterrupt, func() Event { return new(Interrupt) })
	register(KindRedirect, func() Event { return new(Redirect) })
	register(KindArchIntRegState, func() Event { return new(ArchIntRegState) })
	register(KindArchFpRegState, func() Event { return new(ArchFpRegState) })
	register(KindCSRState, func() Event { return new(CSRState) })
	register(KindArchVecRegState, func() Event { return new(ArchVecRegState) })
	register(KindVecCSRState, func() Event { return new(VecCSRState) })
	register(KindFpCSRState, func() Event { return new(FpCSRState) })
	register(KindHCSRState, func() Event { return new(HCSRState) })
	register(KindDebugCSRState, func() Event { return new(DebugCSRState) })
	register(KindTriggerCSRState, func() Event { return new(TriggerCSRState) })
	register(KindLoad, func() Event { return new(Load) })
	register(KindStore, func() Event { return new(Store) })
	register(KindAtomic, func() Event { return new(Atomic) })
	register(KindSbuffer, func() Event { return new(Sbuffer) })
	register(KindL1TLB, func() Event { return new(L1TLB) })
	register(KindL2TLB, func() Event { return new(L2TLB) })
	register(KindRefill, func() Event { return new(Refill) })
	register(KindLrSc, func() Event { return new(LrSc) })
	register(KindCMO, func() Event { return new(CMO) })
	register(KindVecCommit, func() Event { return new(VecCommit) })
	register(KindVecWriteback, func() Event { return new(VecWriteback) })
	register(KindVecMem, func() Event { return new(VecMem) })
	register(KindHTrap, func() Event { return new(HTrap) })
	register(KindGuestPageFault, func() Event { return new(GuestPageFault) })
	register(KindVstartUpdate, func() Event { return new(VstartUpdate) })
	register(KindHLoad, func() Event { return new(HLoad) })
	register(KindVirtualInterrupt, func() Event { return new(VirtualInterrupt) })
	register(KindVecExceptionTrack, func() Event { return new(VecExceptionTrack) })
}

// InfoOf returns the structural metadata for kind k.
func InfoOf(k Kind) Info { return infos[k] }

// SizeOf returns the fixed wire size in bytes of kind k.
func SizeOf(k Kind) int { return infos[k].Size }

// TotalSize returns the aggregated size of one instance of every event kind,
// the figure the paper reports as the total interface width (§2.2).
func TotalSize() int {
	n := 0
	for _, in := range infos {
		n += in.Size
	}
	return n
}

// Encode appends ev's wire encoding to dst and returns the extended slice.
func Encode(dst []byte, ev Event) []byte {
	var buf bytes.Buffer
	buf.Grow(SizeOf(ev.Kind()))
	if err := binary.Write(&buf, binary.LittleEndian, ev); err != nil {
		panic(fmt.Sprintf("event: encode %v: %v", ev.Kind(), err))
	}
	return append(dst, buf.Bytes()...)
}

// EncodeValue returns ev's wire encoding as a fresh slice.
func EncodeValue(ev Event) []byte { return Encode(nil, ev) }

// Decode reconstructs an event of kind k from its wire encoding. The data
// slice must be exactly SizeOf(k) bytes.
func Decode(k Kind, data []byte) (Event, error) {
	if k >= NumKinds {
		return nil, fmt.Errorf("event: unknown kind %d", k)
	}
	if len(data) != infos[k].Size {
		return nil, fmt.Errorf("event: kind %v wants %d bytes, got %d", k, infos[k].Size, len(data))
	}
	ev := infos[k].New()
	if err := binary.Read(bytes.NewReader(data), binary.LittleEndian, ev); err != nil {
		return nil, fmt.Errorf("event: decode %v: %w", k, err)
	}
	return ev, nil
}

// Equal reports whether two events have the same kind and identical wire
// encodings (and therefore identical field values).
func Equal(a, b Event) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	return bytes.Equal(EncodeValue(a), EncodeValue(b))
}

// Record is an event stamped with its order tag: the global instruction
// commit sequence number after which it must be checked. The tag is the
// order semantics Squash exploits to decouple transmission order from
// checking order (paper §4.3).
type Record struct {
	Seq  uint64
	Core uint8
	Ev   Event
}

// String renders a record for debug reports.
func (r Record) String() string {
	return fmt.Sprintf("c%d@%d %v%+v", r.Core, r.Seq, r.Ev.Kind(), r.Ev)
}
