package event

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures")

// reflectiveEncode is the pre-refactor serialization path: reflection-driven
// encoding/binary.Write into a fresh buffer. The generated codecs must match
// it byte for byte.
func reflectiveEncode(tb testing.TB, ev Event) []byte {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, ev); err != nil {
		tb.Fatalf("reflective encode %v: %v", ev.Kind(), err)
	}
	return buf.Bytes()
}

func reflectiveDecode(tb testing.TB, k Kind, data []byte) Event {
	ev := infos[k].New()
	if err := binary.Read(bytes.NewReader(data), binary.LittleEndian, ev); err != nil {
		tb.Fatalf("reflective decode %v: %v", k, err)
	}
	return ev
}

// TestCodecMatchesReflective pins the tentpole equivalence: for every kind,
// the generated AppendTo produces exactly the bytes encoding/binary.Write
// would, and DecodeFrom recovers exactly what encoding/binary.Read would.
func TestCodecMatchesReflective(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for k := Kind(0); k < NumKinds; k++ {
		for i := 0; i < 20; i++ {
			ev := randomized(t, k, r)

			want := reflectiveEncode(t, ev)
			got := ev.AppendTo(nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("%v: generated encoding differs from encoding/binary\n got %x\nwant %x", k, got, want)
			}
			if len(got) != ev.EncodedSize() || ev.EncodedSize() != binary.Size(ev) {
				t.Fatalf("%v: EncodedSize %d, len %d, binary.Size %d disagree",
					k, ev.EncodedSize(), len(got), binary.Size(ev))
			}

			dec := infos[k].New()
			n, err := dec.DecodeFrom(want)
			if err != nil || n != len(want) {
				t.Fatalf("%v: DecodeFrom = (%d, %v)", k, n, err)
			}
			ref := reflectiveDecode(t, k, want)
			if !Equal(dec, ref) {
				t.Fatalf("%v: DecodeFrom disagrees with encoding/binary.Read\n got %+v\nwant %+v", k, dec, ref)
			}
		}
	}
}

// TestAppendToClearsPadding guards the pooled-buffer contract: encoding into
// a dirty (reused) buffer must yield the same bytes as a fresh one, i.e. the
// generated encoders zero every padding byte instead of skipping it.
func TestAppendToClearsPadding(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for k := Kind(0); k < NumKinds; k++ {
		ev := randomized(t, k, r)
		clean := ev.AppendTo(nil)

		dirty := make([]byte, 0, ev.EncodedSize())
		for i := 0; i < cap(dirty); i++ {
			dirty = append(dirty, 0xFF)
		}
		dirty = ev.AppendTo(dirty[:0])
		if !bytes.Equal(clean, dirty) {
			t.Fatalf("%v: encoding into a dirty buffer leaked stale bytes\n clean %x\n dirty %x", k, clean, dirty)
		}
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	var de *DecodeError

	_, err := Decode(NumKinds, make([]byte, 8))
	if !errors.As(err, &de) || !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: got %v, want DecodeError wrapping ErrUnknownKind", err)
	}
	if de.Kind != NumKinds || de.Len != 8 {
		t.Fatalf("unknown kind: DecodeError = %+v", de)
	}

	_, err = Decode(KindTrap, make([]byte, 7))
	if !errors.As(err, &de) || !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("wrong length: got %v, want DecodeError wrapping ErrPayloadSize", err)
	}
	if de.Kind != KindTrap || de.Len != 7 {
		t.Fatalf("wrong length: DecodeError = %+v", de)
	}
	if msg := de.Error(); !strings.Contains(msg, "Trap") || !strings.Contains(msg, "7") {
		t.Fatalf("error message %q lacks kind name or payload length", msg)
	}

	var trap Trap
	if _, err := trap.DecodeFrom(make([]byte, 7)); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("DecodeFrom short: got %v, want ErrShortPayload", err)
	}

	// Oversized slices are exact-size errors for Decode but fine for
	// DecodeFrom, which consumes a prefix.
	if _, err := Decode(KindTrap, make([]byte, 33)); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("oversize Decode: got %v, want ErrPayloadSize", err)
	}
	if n, err := trap.DecodeFrom(make([]byte, 33)); err != nil || n != 32 {
		t.Fatalf("oversize DecodeFrom = (%d, %v), want (32, nil)", n, err)
	}
}

// goldenEvents returns one deterministic representative event per kind.
func goldenEvents(tb testing.TB) []Event {
	r := rand.New(rand.NewSource(1342)) // fixed seed: fixture is checked in
	evs := make([]Event, 0, NumKinds)
	for k := Kind(0); k < NumKinds; k++ {
		raw := make([]byte, SizeOf(k))
		r.Read(raw)
		ev, err := Decode(k, raw)
		if err != nil {
			tb.Fatalf("decode %v: %v", k, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestGoldenWireFormat fails loudly when the byte layout of any kind changes:
// a layout change silently breaks Squash XOR deltas against recorded traffic
// and invalidates checked-in traces. Regenerate with -update only for an
// intentional, versioned format change.
func TestGoldenWireFormat(t *testing.T) {
	path := filepath.Join("testdata", "golden_wire.txt")

	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# Golden wire encodings: one '<kind> <hex>' line per kind.\n")
		sb.WriteString("# Regenerate with: go test ./internal/event -run TestGoldenWireFormat -update\n")
		for _, ev := range goldenEvents(t) {
			fmt.Fprintf(&sb, "%v %s\n", ev.Kind(), hex.EncodeToString(EncodeValue(ev)))
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update to create): %v", err)
	}
	defer f.Close()

	want := map[string]string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexEnc, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed fixture line %q", line)
		}
		want[name] = hexEnc
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != int(NumKinds) {
		t.Fatalf("fixture covers %d kinds, want %d (rerun with -update after adding kinds)", len(want), NumKinds)
	}

	for _, ev := range goldenEvents(t) {
		name := ev.Kind().String()
		got := hex.EncodeToString(EncodeValue(ev))
		if want[name] != got {
			t.Errorf("%s: wire layout changed\n got  %s\n want %s\n"+
				"If intentional, bump the format consumers and regenerate with -update.",
				name, got, want[name])
		}
	}
}

// readAllocBudget parses a one-integer budget file.
func readAllocBudget(tb testing.TB, path string) float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatalf("alloc budget missing: %v", err)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(data)), 64)
	if err != nil {
		tb.Fatalf("alloc budget %s: %v", path, err)
	}
	return v
}

// TestAllocBudgetCodecRoundTrip enforces the checked-in allocs/op ceiling for
// a codec round trip (encode into a reused buffer, decode into a reused
// event). The budget is deliberately a file so raising it is a reviewed diff.
func TestAllocBudgetCodecRoundTrip(t *testing.T) {
	budget := readAllocBudget(t, filepath.Join("testdata", "alloc_budget.txt"))
	src := &InstrCommit{PC: 0x80000000, Instr: 0x13, Flags: CommitRfWen, Wdata: 42}
	var dst InstrCommit
	buf := make([]byte, 0, src.EncodedSize())
	allocs := testing.AllocsPerRun(1000, func() {
		buf = src.AppendTo(buf[:0])
		if _, err := dst.DecodeFrom(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("codec round trip allocates %.1f/op, budget %.0f (testdata/alloc_budget.txt)", allocs, budget)
	}
}

// BenchmarkCodecRoundTrip measures the steady-state hot path the ISSUE
// targets: encode into a reused buffer, decode into a reused event.
func BenchmarkCodecRoundTrip(b *testing.B) {
	src := &InstrCommit{PC: 0x80000000, Instr: 0x13, Flags: CommitRfWen, Wdata: 42}
	var dst InstrCommit
	buf := make([]byte, 0, src.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = src.AppendTo(buf[:0])
		if _, err := dst.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundTripReflective is the pre-refactor baseline the ≥10x
// allocs/op criterion is measured against.
func BenchmarkCodecRoundTripReflective(b *testing.B) {
	src := &InstrCommit{PC: 0x80000000, Instr: 0x13, Flags: CommitRfWen, Wdata: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := binary.Write(&buf, binary.LittleEndian, src); err != nil {
			b.Fatal(err)
		}
		var dst InstrCommit
		if err := binary.Read(bytes.NewReader(buf.Bytes()), binary.LittleEndian, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundTripLargest exercises the 1360-byte ArchVecRegState —
// the event whose reflective encode cost dominated snapshot cycles.
func BenchmarkCodecRoundTripLargest(b *testing.B) {
	src := &ArchVecRegState{}
	for i := range src.VReg {
		for j := range src.VReg[i] {
			src.VReg[i][j] = uint64(i*4 + j)
		}
	}
	var dst ArchVecRegState
	buf := make([]byte, 0, src.EncodedSize())
	b.ReportAllocs()
	b.SetBytes(int64(src.EncodedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = src.AppendTo(buf[:0])
		if _, err := dst.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}
