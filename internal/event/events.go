package event

// Event is a verification event extracted from the DUT. Every concrete
// implementation is a fixed-size struct whose wire encoding is its
// little-endian field layout, produced by the generated zero-allocation
// codec (see codec.go and codec_gen.go).
type Event interface {
	// Kind identifies the event type.
	Kind() Kind
	WireCodec
}

// NonDeterministic is implemented by events that may be NDEs: DUT-specific
// behaviour (MMIO access, interrupts) the reference model cannot reproduce
// and must be synchronized with (paper §2.1, §4.3).
type NonDeterministic interface {
	NDE() bool
}

// IsNDE reports whether ev is a non-deterministic event instance.
func IsNDE(ev Event) bool {
	if n, ok := ev.(NonDeterministic); ok {
		return n.NDE()
	}
	return false
}

// InstrCommit flags.
const (
	CommitRfWen   uint16 = 1 << 0 // writes an integer register
	CommitFpWen   uint16 = 1 << 1 // writes a floating-point register
	CommitVecWen  uint16 = 1 << 2 // writes a vector register
	CommitSkip    uint16 = 1 << 3 // REF must skip execution (MMIO result synced)
	CommitSpecial uint16 = 1 << 4 // trap-adjacent commit (mret, ecall, ...)
)

// InstrCommit reports one retired instruction. (32 bytes)
type InstrCommit struct {
	PC     uint64
	Instr  uint32
	Flags  uint16
	Wdest  uint8
	FuType uint8
	Wdata  uint64
	RobIdx uint16
	_      [6]uint8
}

// Trap reports simulation end (good/bad trap). (32 bytes)
type Trap struct {
	PC       uint64
	Code     uint64
	Cycle    uint64
	InstrCnt uint64
}

// Exception reports a synchronous exception taken by the DUT. (32 bytes)
type Exception struct {
	PC    uint64
	Cause uint64
	Tval  uint64
	Instr uint32
	_     uint32
}

// Interrupt reports an asynchronous interrupt taken by the DUT. It is always
// an NDE: the REF must be forced to take the same interrupt at the same
// instruction boundary. (16 bytes)
type Interrupt struct {
	Cause uint64
	PC    uint64
}

// Redirect reports a control-flow redirect (branch resolution). (24 bytes)
type Redirect struct {
	PC      uint64
	Target  uint64
	Taken   uint8
	Mispred uint8
	_       [6]uint8
}

// ArchIntRegState snapshots the 32 integer registers. (256 bytes)
type ArchIntRegState struct {
	GPR [32]uint64
}

// ArchFpRegState snapshots the 32 floating-point registers. (256 bytes)
type ArchFpRegState struct {
	FPR [32]uint64
}

// CSRState snapshots the machine-mode CSR group. The field order is the
// canonical comparison layout. (160 bytes)
type CSRState struct {
	Mstatus  uint64
	Mcause   uint64
	Mepc     uint64
	Mtval    uint64
	Mtvec    uint64
	Mie      uint64
	Mip      uint64
	Mscratch uint64
	Medeleg  uint64
	Mideleg  uint64
	Satp     uint64
	Misa     uint64
	Mcycle   uint64
	Minstret uint64
	Mhartid  uint64
	Priv     uint64
	_        [4]uint64
}

// ArchVecRegState snapshots the vector register file plus per-register
// version counters and vtype context. At 1360 bytes it is the largest event,
// 170× the smallest (LrSc, 8 bytes) — the structural diversity motivating
// Batch (paper Fig. 4).
type ArchVecRegState struct {
	VReg [32][4]uint64 // 32 regs × 256-bit
	Ver  [32]uint64    // per-register write version
	Ctx  [10]uint64    // vtype/vl/vstart context captured with the snapshot
}

// VecCSRState snapshots the vector CSRs. (56 bytes)
type VecCSRState struct {
	Vstart, Vxsat, Vxrm, Vcsr, Vl, Vtype, Vlenb uint64
}

// FpCSRState snapshots fcsr. (8 bytes)
type FpCSRState struct {
	Fcsr uint64
}

// HCSRState snapshots the hypervisor CSR group. (96 bytes)
type HCSRState struct {
	Hstatus, Hedeleg, Hideleg, Htval, Htinst, Hgatp uint64
	Vsstatus, Vstvec, Vsepc, Vscause                uint64
	_                                               [2]uint64
}

// DebugCSRState snapshots debug-mode CSRs. (48 bytes)
type DebugCSRState struct {
	Dcsr, Dpc, Dscratch0, Dscratch1, Tselect, Tdata uint64
}

// TriggerCSRState snapshots trigger CSRs. (64 bytes)
type TriggerCSRState struct {
	Tdata1, Tdata2, Tdata3, Tinfo, Tcontrol, Mcontext, Scontext, Hcontext uint64
}

// Load reports a committed load. MMIO loads are NDEs whose Data must be
// forced into the REF. (40 bytes)
type Load struct {
	PAddr  uint64
	VAddr  uint64
	Data   uint64
	Mask   uint64
	OpType uint8
	FuType uint8
	MMIO   uint8
	_      [5]uint8
}

// NDE implements NonDeterministic.
func (l *Load) NDE() bool { return l.MMIO != 0 }

// Store reports a committed store. (32 bytes)
type Store struct {
	Addr  uint64
	VAddr uint64
	Data  uint64
	Mask  uint8
	MMIO  uint8
	_     [6]uint8
}

// Atomic reports an AMO or LR/SC data path result. (48 bytes)
type Atomic struct {
	Addr   uint64
	Data   uint64
	Result uint64
	Mask   uint64
	FuOp   uint8
	_      [7]uint8
	Old    uint64
}

// Sbuffer reports a store-buffer line drain. (80 bytes)
type Sbuffer struct {
	Addr uint64
	Mask uint64
	Data [64]uint8
}

// L1TLB reports an L1 TLB fill. (32 bytes)
type L1TLB struct {
	VPN   uint64
	PPN   uint64
	Satp  uint64
	Perm  uint8
	Level uint8
	_     [6]uint8
}

// L2TLB reports an L2 TLB (page-walk) fill. (48 bytes)
type L2TLB struct {
	VPN   uint64
	PPN   uint64
	GVPN  uint64
	Satp  uint64
	Vmid  uint64
	Perm  uint8
	Level uint8
	GPerm uint8
	_     [5]uint8
}

// Refill reports a cache line refill with its data. (72 bytes)
type Refill struct {
	Addr uint64
	Data [8]uint64
}

// LrSc reports an LR/SC reservation outcome. At 8 bytes it is the smallest
// event. (8 bytes)
type LrSc struct {
	Valid   uint8
	Success uint8
	_       [6]uint8
}

// CMO reports a cache-maintenance operation. (16 bytes)
type CMO struct {
	Addr uint64
	Op   uint8
	_    [7]uint8
}

// VecCommit reports a retired vector instruction. (24 bytes)
type VecCommit struct {
	PC    uint64
	Instr uint32
	VdIdx uint8
	_     [3]uint8
	Vl    uint64
}

// VecWriteback reports a vector register writeback value. (40 bytes)
type VecWriteback struct {
	VdIdx uint8
	_     [7]uint8
	Data  [4]uint64
}

// VecMem reports a vector memory access. (56 bytes)
type VecMem struct {
	Addr   uint64
	Mask   uint64
	Data   [4]uint64
	Stride uint64
}

// HTrap reports a trap taken while virtualized. (40 bytes)
type HTrap struct {
	PC, Cause, Htval, Htinst, Hstatus uint64
}

// GuestPageFault reports a guest-stage translation fault. (32 bytes)
type GuestPageFault struct {
	GVA   uint64
	GPA   uint64
	Cause uint64
	Instr uint32
	_     uint32
}

// VstartUpdate reports a vstart CSR change from a vector trap. (16 bytes)
type VstartUpdate struct {
	Old uint64
	New uint64
}

// HLoad reports a hypervisor guest-load (hlv) result. (32 bytes)
type HLoad struct {
	VAddr  uint64
	GPAddr uint64
	Data   uint64
	Size   uint8
	_      [7]uint8
}

// VirtualInterrupt reports a virtual interrupt injection. Always an NDE.
// (24 bytes)
type VirtualInterrupt struct {
	Cause  uint64
	PC     uint64
	HartID uint64
}

// VecExceptionTrack reports vector exception bookkeeping. (32 bytes)
type VecExceptionTrack struct {
	PC     uint64
	Vstart uint64
	Cause  uint64
	Elem   uint32
	_      uint32
}

// Kind implementations.

// Kind implements Event.
func (*InstrCommit) Kind() Kind { return KindInstrCommit }

// Kind implements Event.
func (*Trap) Kind() Kind { return KindTrap }

// Kind implements Event.
func (*Exception) Kind() Kind { return KindException }

// Kind implements Event.
func (*Interrupt) Kind() Kind { return KindInterrupt }

// NDE implements NonDeterministic: interrupts are always NDEs.
func (*Interrupt) NDE() bool { return true }

// Kind implements Event.
func (*Redirect) Kind() Kind { return KindRedirect }

// Kind implements Event.
func (*ArchIntRegState) Kind() Kind { return KindArchIntRegState }

// Kind implements Event.
func (*ArchFpRegState) Kind() Kind { return KindArchFpRegState }

// Kind implements Event.
func (*CSRState) Kind() Kind { return KindCSRState }

// Kind implements Event.
func (*ArchVecRegState) Kind() Kind { return KindArchVecRegState }

// Kind implements Event.
func (*VecCSRState) Kind() Kind { return KindVecCSRState }

// Kind implements Event.
func (*FpCSRState) Kind() Kind { return KindFpCSRState }

// Kind implements Event.
func (*HCSRState) Kind() Kind { return KindHCSRState }

// Kind implements Event.
func (*DebugCSRState) Kind() Kind { return KindDebugCSRState }

// Kind implements Event.
func (*TriggerCSRState) Kind() Kind { return KindTriggerCSRState }

// Kind implements Event.
func (*Load) Kind() Kind { return KindLoad }

// Kind implements Event.
func (*Store) Kind() Kind { return KindStore }

// Kind implements Event.
func (*Atomic) Kind() Kind { return KindAtomic }

// Kind implements Event.
func (*Sbuffer) Kind() Kind { return KindSbuffer }

// Kind implements Event.
func (*L1TLB) Kind() Kind { return KindL1TLB }

// Kind implements Event.
func (*L2TLB) Kind() Kind { return KindL2TLB }

// Kind implements Event.
func (*Refill) Kind() Kind { return KindRefill }

// Kind implements Event.
func (*LrSc) Kind() Kind { return KindLrSc }

// Kind implements Event.
func (*CMO) Kind() Kind { return KindCMO }

// Kind implements Event.
func (*VecCommit) Kind() Kind { return KindVecCommit }

// Kind implements Event.
func (*VecWriteback) Kind() Kind { return KindVecWriteback }

// Kind implements Event.
func (*VecMem) Kind() Kind { return KindVecMem }

// Kind implements Event.
func (*HTrap) Kind() Kind { return KindHTrap }

// Kind implements Event.
func (*GuestPageFault) Kind() Kind { return KindGuestPageFault }

// Kind implements Event.
func (*VstartUpdate) Kind() Kind { return KindVstartUpdate }

// Kind implements Event.
func (*HLoad) Kind() Kind { return KindHLoad }

// Kind implements Event.
func (*VirtualInterrupt) Kind() Kind { return KindVirtualInterrupt }

// NDE implements NonDeterministic: virtual interrupts are always NDEs.
func (*VirtualInterrupt) NDE() bool { return true }

// Kind implements Event.
func (*VecExceptionTrack) Kind() Kind { return KindVecExceptionTrack }
