package event

import (
	"math/rand"
	"testing"
)

func TestKindCount(t *testing.T) {
	if NumKinds != 32 {
		t.Fatalf("NumKinds = %d, want 32 (paper Table 1)", NumKinds)
	}
}

func TestCategoryCensus(t *testing.T) {
	// Table 1: Control Flow 5, Register Updates 9, Memory Access 3,
	// Memory Hierarchy 6, Extensions 9.
	want := map[Category]int{
		CatControlFlow: 5, CatRegisterUpdate: 9, CatMemoryAccess: 3,
		CatMemoryHierarchy: 6, CatExtension: 9,
	}
	got := map[Category]int{}
	for k := Kind(0); k < NumKinds; k++ {
		got[CategoryOf(k)]++
	}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("%v: %d kinds, want %d", c, got[c], n)
		}
	}
}

func TestDeclaredSizes(t *testing.T) {
	want := map[Kind]int{
		KindInstrCommit: 32, KindTrap: 32, KindException: 32, KindInterrupt: 16,
		KindRedirect: 24, KindArchIntRegState: 256, KindArchFpRegState: 256,
		KindCSRState: 160, KindArchVecRegState: 1360, KindVecCSRState: 56,
		KindFpCSRState: 8, KindHCSRState: 96, KindDebugCSRState: 48,
		KindTriggerCSRState: 64, KindLoad: 40, KindStore: 32, KindAtomic: 48,
		KindSbuffer: 80, KindL1TLB: 32, KindL2TLB: 48, KindRefill: 72,
		KindLrSc: 8, KindCMO: 16, KindVecCommit: 24, KindVecWriteback: 40,
		KindVecMem: 56, KindHTrap: 40, KindGuestPageFault: 32,
		KindVstartUpdate: 16, KindHLoad: 32, KindVirtualInterrupt: 24,
		KindVecExceptionTrack: 32,
	}
	for k, n := range want {
		if SizeOf(k) != n {
			t.Errorf("%v size = %d, want %d", k, SizeOf(k), n)
		}
	}
}

func TestSizeSpreadIs170x(t *testing.T) {
	minSize, maxSize := 1<<30, 0
	for k := Kind(0); k < NumKinds; k++ {
		if s := SizeOf(k); s < minSize {
			minSize = s
		} else if s > maxSize {
			maxSize = s
		}
	}
	if maxSize/minSize != 170 {
		t.Errorf("size spread = %d×, want 170× (paper §4.2.1)", maxSize/minSize)
	}
}

// randomized returns a kind-k event with pseudo-random field contents by
// decoding random bytes; this exercises the full wire width.
func randomized(t *testing.T, k Kind, r *rand.Rand) Event {
	raw := make([]byte, SizeOf(k))
	r.Read(raw)
	// Padding bytes decode to nothing and re-encode as zero, so zero the
	// whole buffer's padding by a decode/encode cycle first.
	ev, err := Decode(k, raw)
	if err != nil {
		t.Fatalf("decode %v: %v", k, err)
	}
	return ev
}

func TestEncodeDecodeRoundTripAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for k := Kind(0); k < NumKinds; k++ {
		for i := 0; i < 50; i++ {
			ev := randomized(t, k, r)
			enc := EncodeValue(ev)
			if len(enc) != SizeOf(k) {
				t.Fatalf("%v: encoded %d bytes, want %d", k, len(enc), SizeOf(k))
			}
			back, err := Decode(k, enc)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if !Equal(ev, back) {
				t.Fatalf("%v: round trip mismatch", k)
			}
		}
	}
}

func TestDecodeWrongLength(t *testing.T) {
	if _, err := Decode(KindTrap, make([]byte, 7)); err == nil {
		t.Error("short decode did not fail")
	}
	if _, err := Decode(NumKinds, make([]byte, 8)); err == nil {
		t.Error("unknown kind did not fail")
	}
}

func TestNDEClassification(t *testing.T) {
	if !IsNDE(&Interrupt{}) {
		t.Error("Interrupt must be NDE")
	}
	if !IsNDE(&VirtualInterrupt{}) {
		t.Error("VirtualInterrupt must be NDE")
	}
	if IsNDE(&Load{}) {
		t.Error("RAM load must not be NDE")
	}
	if !IsNDE(&Load{MMIO: 1}) {
		t.Error("MMIO load must be NDE")
	}
	if IsNDE(&InstrCommit{}) {
		t.Error("commit must not be NDE")
	}
}

func TestEqualDiscriminates(t *testing.T) {
	a := &InstrCommit{PC: 0x1000, Wdata: 5}
	b := &InstrCommit{PC: 0x1000, Wdata: 5}
	c := &InstrCommit{PC: 0x1000, Wdata: 6}
	if !Equal(a, b) {
		t.Error("identical events not equal")
	}
	if Equal(a, c) {
		t.Error("different events equal")
	}
	if Equal(a, &Trap{}) {
		t.Error("cross-kind events equal")
	}
}

func TestTotalSizeReasonable(t *testing.T) {
	// One instance of each kind sums to ~3 KiB; the paper's 11.5 KB figure
	// counts multiple hardware instances per kind (8 commit slots etc.),
	// which cmd/events reports per DUT configuration.
	if ts := TotalSize(); ts < 2500 || ts > 4000 {
		t.Errorf("TotalSize = %d, want ~3112", ts)
	}
}

func TestInfoConsistency(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		in := InfoOf(k)
		if in.Kind != k || in.Name != k.String() || in.New == nil {
			t.Errorf("info for %v is inconsistent: %+v", k, in)
		}
		if in.New().Kind() != k {
			t.Errorf("constructor for %v builds %v", k, in.New().Kind())
		}
	}
}

func BenchmarkEncodeCommit(b *testing.B) {
	ev := &InstrCommit{PC: 0x80000000, Instr: 0x13, Wdata: 42}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], ev)
	}
}

func BenchmarkDecodeCommit(b *testing.B) {
	raw := EncodeValue(&InstrCommit{PC: 0x80000000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(KindInstrCommit, raw); err != nil {
			b.Fatal(err)
		}
	}
}
