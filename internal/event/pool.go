package event

import (
	"sync"
	"sync/atomic"
)

// Scratch-buffer pool shared by every layer that touches event bytes: the
// codec (Equal), wire differencing, the Batch packers, and the derivable
// event digest. Pooling discipline (see DESIGN.md "Wire codec"):
//
//   - GetBuf transfers ownership of the returned slice to the caller.
//   - PutBuf transfers it back; the caller must not retain any alias
//     (including sub-slices handed to other goroutines) afterwards.
//   - Buffers that escape into long-lived structures (item payloads, packets
//     a caller keeps) are simply never returned; the pool only ever sees
//     buffers whose lifetime ended.
//
// Two pools cooperate so the steady state allocates nothing: bufPool holds
// boxed slices with live backing arrays, boxPool recycles the empty *[]byte
// boxes left behind when GetBuf unwraps one.
var (
	bufPool sync.Pool // *[]byte with backing capacity
	boxPool sync.Pool // *[]byte boxes with nil contents
)

// minBufCap keeps tiny requests from seeding the pool with useless slivers.
const minBufCap = 512

// Ownership counters: every GetBuf hands out one buffer, every accepted
// PutBuf takes one back. The difference is the number of outstanding
// buffers, which leak-regression tests assert returns to its baseline.
var poolGets, poolPuts atomic.Uint64

// PoolStats reports the cumulative GetBuf and PutBuf call counts.
// gets-puts is the number of buffers currently owned outside the pool.
func PoolStats() (gets, puts uint64) {
	return poolGets.Load(), poolPuts.Load()
}

// GetBuf returns a zero-length scratch slice with capacity at least n. The
// caller owns it until PutBuf.
func GetBuf(n int) []byte {
	poolGets.Add(1)
	if v := bufPool.Get(); v != nil {
		p := v.(*[]byte)
		b := *p
		*p = nil
		boxPool.Put(p)
		if cap(b) >= n {
			return b[:0]
		}
	}
	if n < minBufCap {
		n = minBufCap
	}
	return make([]byte, 0, n)
}

// PutBuf returns a scratch slice to the pool. The slice (and every alias of
// it) must not be used afterwards.
func PutBuf(b []byte) {
	poolPuts.Add(1)
	if cap(b) == 0 {
		return
	}
	var p *[]byte
	if v := boxPool.Get(); v != nil {
		p = v.(*[]byte)
	} else {
		p = new([]byte)
	}
	*p = b[:0]
	bufPool.Put(p)
}
