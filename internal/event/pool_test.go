package event

import (
	"sync"
	"testing"
)

func TestGetBufLenAndCap(t *testing.T) {
	for _, n := range []int{0, 1, 8, minBufCap - 1, minBufCap, minBufCap + 1, 4096} {
		b := GetBuf(n)
		if len(b) != 0 {
			t.Errorf("GetBuf(%d): len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Errorf("GetBuf(%d): cap = %d, want >= %d", n, cap(b), n)
		}
		PutBuf(b)
	}
}

func TestGetBufMinimumCapacity(t *testing.T) {
	// Tiny requests must not seed the pool with sliver allocations.
	b := GetBuf(1)
	if cap(b) < minBufCap {
		t.Errorf("GetBuf(1): cap = %d, want >= minBufCap (%d)", cap(b), minBufCap)
	}
	PutBuf(b)
}

func TestGetBufAlwaysZeroLength(t *testing.T) {
	// A recycled buffer may keep its old backing bytes, but it must come
	// back with len 0 so stale contents are never visible through the
	// returned slice.
	b := GetBuf(64)
	b = append(b, 0xAB, 0xCD, 0xEF)
	PutBuf(b)
	c := GetBuf(32)
	if len(c) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(c))
	}
	c = append(c, 1)
	if c[0] != 1 {
		t.Fatalf("append after reuse read back %#x, want 1", c[0])
	}
	PutBuf(c)
}

func TestPutBufZeroCapIsNoop(t *testing.T) {
	PutBuf(nil)      // must not panic
	PutBuf([]byte{}) // zero-cap: nothing to recycle
	b := GetBuf(8)
	if len(b) != 0 {
		t.Fatalf("GetBuf after zero-cap PutBuf: len = %d, want 0", len(b))
	}
	PutBuf(b)
}

func TestPoolStatsCountsOwnershipTransfers(t *testing.T) {
	g0, p0 := PoolStats()
	const n = 17
	bufs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		bufs = append(bufs, GetBuf(128))
	}
	g1, p1 := PoolStats()
	if g1-g0 != n || p1-p0 != 0 {
		t.Fatalf("after %d gets: gets delta = %d, puts delta = %d", n, g1-g0, p1-p0)
	}
	for _, b := range bufs {
		PutBuf(b)
	}
	g2, p2 := PoolStats()
	if g2-g0 != n || p2-p0 != n {
		t.Fatalf("after releasing all: gets delta = %d, puts delta = %d, want %d each", g2-g0, p2-p0, n)
	}
}

// TestConcurrentGetPut hammers the pool from many goroutines; run under
// -race this is the data-race gate for the pool's sharing discipline.
func TestConcurrentGetPut(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b := GetBuf(64 + (i % 512))
				if len(b) != 0 {
					t.Errorf("worker %d: GetBuf returned len %d", w, len(b))
					PutBuf(b)
					return
				}
				b = append(b, byte(w), byte(i), byte(i>>8))
				if b[0] != byte(w) {
					t.Errorf("worker %d: wrote %d, read %d — buffer shared while owned", w, w, b[0])
					PutBuf(b)
					return
				}
				PutBuf(b)
			}
		}()
	}
	wg.Wait()
}
