// Package event defines the 32 verification event types extracted from the
// DUT and checked against the reference model, mirroring Table 1 of the
// DiffTest-H paper: control flow, register updates, memory access, memory
// hierarchy, and RISC-V extension events.
//
// Event sizes span a wide range (the paper reports up to 170×); here the
// smallest event (LrSc) is 8 bytes and the largest (ArchVecRegState) is
// 1360 bytes, a 170× spread. Every event kind has a fixed wire size, which
// is the structural semantics Batch exploits for tight packing.
package event

// Kind identifies one of the 32 verification event types.
type Kind uint8

// The 32 verification event kinds.
const (
	// Control flow (5).
	KindInstrCommit Kind = iota
	KindTrap
	KindException
	KindInterrupt
	KindRedirect

	// Register updates (9).
	KindArchIntRegState
	KindArchFpRegState
	KindCSRState
	KindArchVecRegState
	KindVecCSRState
	KindFpCSRState
	KindHCSRState
	KindDebugCSRState
	KindTriggerCSRState

	// Memory access (3).
	KindLoad
	KindStore
	KindAtomic

	// Memory hierarchy (6).
	KindSbuffer
	KindL1TLB
	KindL2TLB
	KindRefill
	KindLrSc
	KindCMO

	// RISC-V extensions (9).
	KindVecCommit
	KindVecWriteback
	KindVecMem
	KindHTrap
	KindGuestPageFault
	KindVstartUpdate
	KindHLoad
	KindVirtualInterrupt
	KindVecExceptionTrack

	// NumKinds is the number of verification event types (32).
	NumKinds
)

// Category groups kinds per Table 1 of the paper.
type Category uint8

// Event categories.
const (
	CatControlFlow Category = iota
	CatRegisterUpdate
	CatMemoryAccess
	CatMemoryHierarchy
	CatExtension
	NumCategories
)

var categoryNames = [NumCategories]string{
	"Control Flow", "Register Updates", "Memory Access", "Memory Hierarchy", "RISC-V Extensions",
}

// String returns the category's display name.
func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return "Unknown"
}

var kindNames = [NumKinds]string{
	"InstrCommit", "Trap", "Exception", "Interrupt", "Redirect",
	"ArchIntRegState", "ArchFpRegState", "CSRState", "ArchVecRegState",
	"VecCSRState", "FpCSRState", "HCSRState", "DebugCSRState", "TriggerCSRState",
	"Load", "Store", "Atomic",
	"Sbuffer", "L1TLB", "L2TLB", "Refill", "LrSc", "CMO",
	"VecCommit", "VecWriteback", "VecMem", "HTrap", "GuestPageFault",
	"VstartUpdate", "HLoad", "VirtualInterrupt", "VecExceptionTrack",
}

// String returns the kind's display name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "Kind?"
}

var kindCategories = [NumKinds]Category{
	KindInstrCommit: CatControlFlow, KindTrap: CatControlFlow,
	KindException: CatControlFlow, KindInterrupt: CatControlFlow, KindRedirect: CatControlFlow,

	KindArchIntRegState: CatRegisterUpdate, KindArchFpRegState: CatRegisterUpdate,
	KindCSRState: CatRegisterUpdate, KindArchVecRegState: CatRegisterUpdate,
	KindVecCSRState: CatRegisterUpdate, KindFpCSRState: CatRegisterUpdate,
	KindHCSRState: CatRegisterUpdate, KindDebugCSRState: CatRegisterUpdate,
	KindTriggerCSRState: CatRegisterUpdate,

	KindLoad: CatMemoryAccess, KindStore: CatMemoryAccess, KindAtomic: CatMemoryAccess,

	KindSbuffer: CatMemoryHierarchy, KindL1TLB: CatMemoryHierarchy,
	KindL2TLB: CatMemoryHierarchy, KindRefill: CatMemoryHierarchy,
	KindLrSc: CatMemoryHierarchy, KindCMO: CatMemoryHierarchy,

	KindVecCommit: CatExtension, KindVecWriteback: CatExtension,
	KindVecMem: CatExtension, KindHTrap: CatExtension,
	KindGuestPageFault: CatExtension, KindVstartUpdate: CatExtension,
	KindHLoad: CatExtension, KindVirtualInterrupt: CatExtension,
	KindVecExceptionTrack: CatExtension,
}

// CategoryOf returns the Table-1 category of k.
func CategoryOf(k Kind) Category { return kindCategories[k] }
