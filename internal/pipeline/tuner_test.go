package pipeline

import "testing"

func tunerLimits() Limits {
	return Limits{
		MinQueueDepth: 2, MaxQueueDepth: 64,
		MinPacketBytes: 1024, MaxPacketBytes: 32768,
		MinWindow: 2, MaxWindow: 64,
		QueueStep: 8, WindowStep: 8,
	}
}

// stalledSignal models a starved pipeline: heavy backpressure, queue pinned
// at its bound.
func stalledSignal(k Knobs, score float64) Signal {
	return Signal{
		Transfers: 1000, Backpressure: 200, TokenStalls: 50,
		QueuePeak: k.QueueDepth, MeanQueue: float64(k.QueueDepth) * 0.9,
		Score: score,
	}
}

// steadySignal models a balanced pipeline: a whiff of backpressure inside
// the hysteresis band, queue occupied but not saturated.
func steadySignal(k Knobs, score float64) Signal {
	return Signal{
		Transfers: 1000, Backpressure: 20, TokenStalls: 0,
		QueuePeak: k.QueueDepth - 1, MeanQueue: float64(k.QueueDepth) / 2,
		Score: score,
	}
}

func TestTunerGrowsUnderStall(t *testing.T) {
	start := Knobs{QueueDepth: 16, PacketBytes: 4096, Window: 16}
	tn := NewTuner(start, tunerLimits())
	d := tn.Observe(stalledSignal(start, 100))
	if d.Reason != "grow" {
		t.Fatalf("stalled round decided %q, want grow: %s", d.Reason, d)
	}
	k := tn.Knobs()
	if k.QueueDepth != 24 || k.Window != 24 || k.PacketBytes != 8192 {
		t.Fatalf("grow step wrong: %s", k)
	}
}

func TestTunerConvergesUnderPersistentStall(t *testing.T) {
	// A workload that stalls at every setting drives the knobs to their
	// maximums and then holds — the clamp must stop the climb, not wrap or
	// oscillate.
	lim := tunerLimits()
	tn := NewTuner(Knobs{QueueDepth: 16, PacketBytes: 4096, Window: 16}, lim)
	for i := 0; i < 20; i++ {
		tn.Observe(stalledSignal(tn.Knobs(), 100+float64(i)))
	}
	k := tn.Knobs()
	if k.QueueDepth != lim.MaxQueueDepth || k.Window != lim.MaxWindow || k.PacketBytes != lim.MaxPacketBytes {
		t.Fatalf("did not converge to the limits: %s", k)
	}
	last := tn.Decisions()[len(tn.Decisions())-1]
	if last.Reason != "hold" {
		t.Fatalf("at the limits the tuner still claims %q", last.Reason)
	}
}

func TestTunerShrinksIdleBound(t *testing.T) {
	tn := NewTuner(Knobs{QueueDepth: 64, PacketBytes: 32768, Window: 64}, tunerLimits())
	idle := Signal{Transfers: 1000, QueuePeak: 3, MeanQueue: 1.5, Score: 100}
	d := tn.Observe(idle)
	if d.Reason != "shrink" {
		t.Fatalf("idle round decided %q, want shrink: %s", d.Reason, d)
	}
	k := tn.Knobs()
	if k.QueueDepth != 32 || k.Window != 32 || k.PacketBytes != 16384 {
		t.Fatalf("shrink step wrong: %s", k)
	}
	// Persistent idleness bottoms out at the minimums without oscillating.
	for i := 0; i < 20; i++ {
		tn.Observe(Signal{Transfers: 1000, QueuePeak: 1, Score: 100})
	}
	k = tn.Knobs()
	lim := tunerLimits()
	if k.QueueDepth != lim.MinQueueDepth || k.Window != lim.MinWindow || k.PacketBytes != lim.MinPacketBytes {
		t.Fatalf("did not settle at the minimums: %s", k)
	}
}

func TestTunerHoldsSteadyWorkload(t *testing.T) {
	start := Knobs{QueueDepth: 16, PacketBytes: 4096, Window: 16}
	tn := NewTuner(start, tunerLimits())
	for i := 0; i < 10; i++ {
		d := tn.Observe(steadySignal(tn.Knobs(), 100))
		if d.Reason != "hold" {
			t.Fatalf("round %d moved (%s) on a steady workload", i, d)
		}
	}
	if tn.Knobs() != start {
		t.Fatalf("steady workload drifted the knobs: %s", tn.Knobs())
	}
}

func TestTunerBestTracksHighestScore(t *testing.T) {
	start := Knobs{QueueDepth: 16, PacketBytes: 4096, Window: 16}
	tn := NewTuner(start, tunerLimits())

	// Round 0 measures the fixed constants; later rounds score worse, so
	// Best must keep the round-0 settings — the tuned-≥-fixed guarantee.
	tn.Observe(stalledSignal(start, 500))
	tn.Observe(stalledSignal(tn.Knobs(), 400))
	tn.Observe(stalledSignal(tn.Knobs(), 300))
	best, score, round := tn.Best()
	if best != start || score != 500 || round != 0 {
		t.Fatalf("best = %s score %.0f round %d, want the round-0 constants", best, score, round)
	}

	// A later improvement takes over.
	tn.Observe(stalledSignal(tn.Knobs(), 900))
	_, score, round = tn.Best()
	if score != 900 || round != 3 {
		t.Fatalf("best score %.0f round %d, want 900 at round 3", score, round)
	}
}

func TestTunerClampsInitialKnobs(t *testing.T) {
	tn := NewTuner(Knobs{QueueDepth: 1000, PacketBytes: 1, Window: 0}, tunerLimits())
	k := tn.Knobs()
	if k.QueueDepth != 64 || k.PacketBytes != 1024 || k.Window != 2 {
		t.Fatalf("initial knobs not clamped: %s", k)
	}
}

func TestSignalFrom(t *testing.T) {
	m := &Metrics{Transfers: 100, Backpressure: 5, TokenStalls: 5, QueuePeak: 7}
	m.queueDepthSum = 300
	s := SignalFrom(m, 42)
	if s.StallRate() != 0.1 {
		t.Fatalf("stall rate %.3f, want 0.1", s.StallRate())
	}
	if s.QueuePeak != 7 || s.MeanQueue != 3 || s.Score != 42 {
		t.Fatalf("signal lost fields: %+v", s)
	}
	if (Signal{}).StallRate() != 0 {
		t.Fatal("zero-transfer stall rate not zero")
	}
}

func TestTunerSetBand(t *testing.T) {
	tn := NewTuner(Knobs{QueueDepth: 16, PacketBytes: 4096, Window: 16}, tunerLimits())
	tn.SetBand(0.2, 0.5)
	// 25% stall rate now sits inside the widened band: hold, not grow.
	d := tn.Observe(Signal{Transfers: 100, Backpressure: 25, QueuePeak: 15, Score: 1})
	if d.Reason != "hold" {
		t.Fatalf("widened band ignored: %s", d)
	}
	tn.SetBand(0.5, 0.2) // invalid, keeps previous band
	if tn.stallLo != 0.2 || tn.stallHi != 0.5 {
		t.Fatalf("invalid band applied: %v..%v", tn.stallLo, tn.stallHi)
	}
}

func TestDecisionString(t *testing.T) {
	tn := NewTuner(Knobs{QueueDepth: 16, PacketBytes: 4096, Window: 16}, tunerLimits())
	d := tn.Observe(stalledSignal(tn.Knobs(), 1))
	if d.String() == "" || d.Next.String() == "" {
		t.Fatal("empty decision rendering")
	}
}
