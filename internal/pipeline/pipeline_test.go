package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// stream returns a Next producing 0..n-1.
func stream(n int) Next[int] {
	i := 0
	return func() (int, bool, error) {
		if i >= n {
			return 0, false, nil
		}
		v := i
		i++
		return v, true, nil
	}
}

func TestDeliversAllInOrder(t *testing.T) {
	for _, nb := range []bool{false, true} {
		var got []int
		m, err := Run(stream(1000), func(v int) (bool, error) {
			got = append(got, v)
			return false, nil
		}, Config{NonBlocking: nb, QueueDepth: 8})
		if err != nil {
			t.Fatalf("nonblocking=%v: %v", nb, err)
		}
		if len(got) != 1000 || m.Transfers != 1000 {
			t.Fatalf("nonblocking=%v: delivered %d (link saw %d), want 1000", nb, len(got), m.Transfers)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("nonblocking=%v: out of order at %d: got %d", nb, i, v)
			}
		}
		if m.Stopped {
			t.Errorf("nonblocking=%v: spurious Stopped", nb)
		}
	}
}

// TestBlockingSerializes: with the step-and-compare handshake, at most one
// transfer may ever be past the producer and not yet fully checked.
func TestBlockingSerializes(t *testing.T) {
	var inflight, maxSeen atomic.Int64
	next := stream(200)
	wrapped := func() (int, bool, error) {
		v, ok, err := next()
		if ok {
			if n := inflight.Add(1); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
		}
		return v, ok, err
	}
	_, err := Run(wrapped, func(int) (bool, error) {
		defer inflight.Add(-1)
		return false, nil
	}, Config{NonBlocking: false})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen.Load() > 1 {
		t.Errorf("blocking mode had %d transfers in flight, want ≤1", maxSeen.Load())
	}
}

// TestNonBlockingBoundsInFlight: the queue bound must hold (QueueDepth plus
// the transfers held by the link and consumer stages), and a slow consumer
// must register backpressure.
func TestNonBlockingBoundsInFlight(t *testing.T) {
	const depth = 4
	var inflight, maxSeen atomic.Int64
	next := stream(300)
	wrapped := func() (int, bool, error) {
		v, ok, err := next()
		if ok {
			if n := inflight.Add(1); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
		}
		return v, ok, err
	}
	m, err := Run(wrapped, func(int) (bool, error) {
		time.Sleep(50 * time.Microsecond)
		inflight.Add(-1)
		return false, nil
	}, Config{NonBlocking: true, QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	// chA(depth) + chB(1) + link in hand + consumer in hand + producer in hand.
	if limit := int64(depth + 4); maxSeen.Load() > limit {
		t.Errorf("in-flight peaked at %d, want ≤ %d", maxSeen.Load(), limit)
	}
	if m.Backpressure == 0 {
		t.Error("slow consumer produced no backpressure")
	}
}

func TestEarlyStopCancelsProducer(t *testing.T) {
	produced := 0
	next := func() (int, bool, error) {
		produced++
		return produced, true, nil // endless stream
	}
	m, err := Run(next, func(v int) (bool, error) {
		return v >= 10, nil
	}, Config{NonBlocking: true, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Stopped {
		t.Fatal("consumer stop not reported")
	}
	if produced > 10+16 {
		t.Errorf("producer ran %d steps after a stop at 10", produced)
	}
}

func TestErrorPropagation(t *testing.T) {
	prodErr := errors.New("producer broke")
	_, err := Run(func() (int, bool, error) {
		return 0, false, prodErr
	}, func(int) (bool, error) { return false, nil }, Config{NonBlocking: true})
	if !errors.Is(err, prodErr) {
		t.Errorf("producer error: got %v", err)
	}

	consErr := errors.New("consumer broke")
	_, err = Run(stream(100), func(v int) (bool, error) {
		if v == 5 {
			return false, consErr
		}
		return false, nil
	}, Config{NonBlocking: true, QueueDepth: 2})
	if !errors.Is(err, consErr) {
		t.Errorf("consumer error: got %v", err)
	}
}

// TestMeasuredOverlap is the core executed-mode property: with real work on
// both sides, the non-blocking pipeline must overlap the stages (wall <
// producer busy + consumer busy), while the blocking handshake serializes
// them. Busy-spin work keeps the comparison scheduler-friendly.
func TestMeasuredOverlap(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 || runtime.NumCPU() < 2 {
		t.Skip("needs ≥2 CPUs to observe overlap")
	}
	spin := func(d time.Duration) {
		for end := time.Now().Add(d); time.Now().Before(end); {
		}
	}
	runWork := func(nb bool) *Metrics {
		next := stream(40)
		m, err := Run(func() (int, bool, error) {
			v, ok, err := next()
			if ok {
				spin(500 * time.Microsecond)
			}
			return v, ok, err
		}, func(int) (bool, error) {
			spin(500 * time.Microsecond)
			return false, nil
		}, Config{NonBlocking: nb, QueueDepth: 8})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	blocking := runWork(false)
	streaming := runWork(true)
	t.Logf("blocking: wall=%v prod=%v cons=%v overlap=%.0f%%",
		blocking.Wall, blocking.ProducerBusy, blocking.ConsumerBusy, blocking.OverlapShare()*100)
	t.Logf("streaming: wall=%v prod=%v cons=%v overlap=%.0f%% backpressure=%d",
		streaming.Wall, streaming.ProducerBusy, streaming.ConsumerBusy, streaming.OverlapShare()*100, streaming.Backpressure)

	if streaming.Overlap() == 0 {
		t.Error("non-blocking pipeline measured zero overlap")
	}
	if streaming.Wall >= blocking.Wall {
		t.Errorf("non-blocking wall %v not faster than blocking %v", streaming.Wall, blocking.Wall)
	}
}

func ExampleRun() {
	next := stream(3)
	sum := 0
	m, _ := Run(next, func(v int) (bool, error) {
		sum += v
		return false, nil
	}, Config{NonBlocking: true, QueueDepth: 2})
	fmt.Println(sum, m.Transfers)
	// Output: 3 3
}
