package pipeline

import (
	"testing"
)

// benchPipeline measures the three-stage pipeline's raw transfer overhead
// with no-op stages: what Run itself costs per transfer in each handshake
// mode, before any codec or checker work. benchjson's pipeline area tracks
// both modes so a scheduling regression in the stage plumbing is visible
// even when the heavier executed benchmarks hide it.
func benchPipeline(b *testing.B, nonBlocking bool) {
	const transfers = 4096
	cfg := Config{NonBlocking: nonBlocking, QueueDepth: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		next := func() (int, bool, error) {
			if n >= transfers {
				return 0, false, nil
			}
			n++
			return n, true, nil
		}
		got := 0
		sink := func(int) (bool, error) {
			got++
			return false, nil
		}
		m, err := Run(next, sink, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if got != transfers || m.Transfers != transfers {
			b.Fatalf("consumed %d transfers (metrics %d), want %d", got, m.Transfers, transfers)
		}
	}
	b.ReportMetric(float64(transfers)*float64(b.N)/b.Elapsed().Seconds(), "transfers/s")
}

func BenchmarkPipelineBlocking(b *testing.B)    { benchPipeline(b, false) }
func BenchmarkPipelineNonBlocking(b *testing.B) { benchPipeline(b, true) }
