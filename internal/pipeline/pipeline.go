// Package pipeline implements the executed co-simulation pipeline: the DUT
// event producer, the communication link, and the REF+checker consumer run
// as concurrent stages connected by bounded channels, so the NonBlock
// overlap of paper §4.5 is *measured* from real wall-clock concurrency
// instead of assumed by the analytic cost model.
//
// The stage graph mirrors the hardware:
//
//	producer ──chA──▶ link ──chB──▶ consumer
//
// In blocking mode (the traditional step-and-compare handshake) every
// transfer carries an ack that the consumer closes only after checking
// completes; the producer stalls on it, serializing the two sides exactly
// like a blocking DPI-C call. In non-blocking mode the producer streams
// into a bounded queue and stalls only when QueueDepth transfers are in
// flight — the same backpressure semantics as internal/comm's modeled
// in-flight queue, but enforced by real channel capacity.
//
// Run reports Metrics with per-stage busy times, so callers can compute the
// achieved hardware/software overlap from wall-clock measurements.
package pipeline

import (
	"sync"
	"time"
)

// Config selects the handshake mode and queue bound.
type Config struct {
	// NonBlocking streams transfers through a bounded queue; false gives
	// the per-transfer blocking handshake.
	NonBlocking bool
	// QueueDepth bounds in-flight transfers in non-blocking mode (≤0 = 1).
	// The effective in-flight bound is QueueDepth plus the handful of
	// transfers held by the link and consumer stages themselves.
	QueueDepth int
}

// Drop receives every produced transfer the consumer never saw when a run
// stops early (mismatch or error): transfers stranded in the stage queues
// and in stage hands. Callers whose transfers own pooled resources release
// them here — without it, an early stop leaks every in-flight buffer.
type Drop[T any] func(t T)

// Next produces the next transfer. ok=false ends the stream cleanly; a
// non-nil error aborts the whole pipeline.
type Next[T any] func() (t T, ok bool, err error)

// Sink consumes one transfer. stop=true aborts the stream early (the
// checker analog: a mismatch); a non-nil error aborts the pipeline.
type Sink[T any] func(t T) (stop bool, err error)

// Metrics reports one pipeline run's wall-clock accounting. Stage busy
// times are accumulated inside the stage goroutines and must be read only
// after Run returns.
type Metrics struct {
	Wall         time.Duration // end-to-end elapsed time
	ProducerBusy time.Duration // time spent inside Next calls
	ConsumerBusy time.Duration // time spent inside Sink calls

	Transfers    uint64 // transfers forwarded by the link stage
	Backpressure uint64 // producer sends that found the queue full
	Stopped      bool   // the consumer aborted the stream (stop=true)

	// TokenStalls counts sends that found the remote server's credit window
	// exhausted (networked runs only; internal/transport measures it and
	// internal/cosim copies it here after Run returns). It is the
	// wire-level analogue of Backpressure: Backpressure measures the local
	// in-flight queue filling up, TokenStalls the server-granted window.
	TokenStalls uint64

	// Reconnects counts successful session resumes after broken connections
	// (networked runs with a resume-enabled client; copied from the
	// transport client like TokenStalls).
	Reconnects uint64
	// ReplayedFrames counts data frames retransmitted from the client's
	// replay window across those resumes.
	ReplayedFrames uint64
	// Migrations counts the resumes that moved the session to a different
	// backend shard — a fleet router's live migration (ResumeOK.Migrated).
	// Always ≤ Reconnects; zero against a single difftestd server.
	Migrations uint64
	// DegradedRuns is 1 when the networked session was lost beyond the
	// retry budget and the run was redone with in-process checking
	// (cosim's graceful degradation), 0 otherwise.
	DegradedRuns uint64

	// RingParks counts spin-phase exhaustions on a shared-memory ring
	// transport — how often either side of the link outlasted its yield
	// burst and slept (copied from transport.LinkStats after Run returns;
	// zero on socket transports, which park in the kernel instead). A high
	// count against low Backpressure/TokenStalls means the ring itself, not
	// the protocol window, is the pacing bottleneck.
	RingParks uint64

	// QueuePeak is the largest in-flight queue occupancy the link stage
	// observed (non-blocking mode; always ≤ Config.QueueDepth).
	QueuePeak int
	// queueDepthSum accumulates per-transfer occupancy samples for
	// MeanQueueDepth.
	queueDepthSum uint64
}

// MeanQueueDepth returns the average in-flight queue occupancy sampled at
// each link-stage forward — how full the bounded queue ran, 0..QueueDepth.
func (m *Metrics) MeanQueueDepth() float64 {
	if m.Transfers == 0 {
		return 0
	}
	return float64(m.queueDepthSum) / float64(m.Transfers)
}

// Overlap returns the wall-clock time during which producer and consumer
// were provably busy simultaneously: busy time that did not fit into the
// elapsed window must have been concurrent.
func (m *Metrics) Overlap() time.Duration {
	over := m.ProducerBusy + m.ConsumerBusy - m.Wall
	if over < 0 {
		return 0
	}
	return over
}

// OverlapShare returns Overlap as a fraction of wall-clock time.
func (m *Metrics) OverlapShare() float64 {
	if m.Wall <= 0 {
		return 0
	}
	return float64(m.Overlap()) / float64(m.Wall)
}

// envelope carries one transfer through the stages; ack is non-nil only in
// blocking mode.
type envelope[T any] struct {
	t   T
	ack chan struct{}
}

// Run drives the three-stage pipeline to completion and returns its
// metrics. It returns the first stage error, if any; an early consumer stop
// is not an error (Metrics.Stopped reports it). An optional Drop callback
// receives the transfers stranded in flight by an early stop.
func Run[T any](next Next[T], sink Sink[T], cfg Config, drop ...Drop[T]) (*Metrics, error) {
	var dropFn Drop[T]
	if len(drop) > 0 {
		dropFn = drop[0]
	}
	discard := func(e envelope[T]) {
		if dropFn != nil {
			dropFn(e.t)
		}
	}
	depth := cfg.QueueDepth
	if depth < 1 {
		depth = 1
	}
	var chA, chB chan envelope[T]
	if cfg.NonBlocking {
		chA = make(chan envelope[T], depth)
		chB = make(chan envelope[T], 1)
	} else {
		chA = make(chan envelope[T])
		chB = make(chan envelope[T])
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	m := &Metrics{}
	start := time.Now()
	var wg sync.WaitGroup

	// Stage 1: producer (the DUT + acceleration unit analog).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chA)
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			t, ok, err := next()
			m.ProducerBusy += time.Since(t0)
			if err != nil {
				fail(err)
				return
			}
			if !ok {
				return
			}
			e := envelope[T]{t: t}
			if !cfg.NonBlocking {
				e.ack = make(chan struct{})
			}
			if cfg.NonBlocking {
				select {
				case chA <- e:
				default:
					m.Backpressure++
					select {
					case chA <- e:
					case <-stop:
						discard(e)
						return
					}
				}
			} else {
				select {
				case chA <- e:
				case <-stop:
					discard(e)
					return
				}
			}
			if e.ack != nil {
				// Step-and-compare: stall until the software side is done.
				select {
				case <-e.ack:
				case <-stop:
					return
				}
			}
		}
	}()

	// Stage 2: link (forwards transfers; its bounded output is the
	// in-flight queue's tail).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chB)
		for e := range chA {
			m.Transfers++
			// Occupancy left behind in the queue is backlog the producer
			// built up — sampled per forward so the mean reflects how full
			// the window ran over the whole stream.
			if q := len(chA); true {
				m.queueDepthSum += uint64(q)
				if q > m.QueuePeak {
					m.QueuePeak = q
				}
			}
			select {
			case chB <- e:
			case <-stop:
				discard(e)
				return
			}
		}
	}()

	// Stage 3: consumer (unpacker + checker analog).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := range chB {
			t0 := time.Now()
			stopReq, err := sink(e.t)
			m.ConsumerBusy += time.Since(t0)
			if e.ack != nil {
				close(e.ack)
			}
			if err != nil {
				fail(err)
				return
			}
			if stopReq {
				m.Stopped = true
				cancel()
				return
			}
		}
	}()

	wg.Wait()
	// Teardown drain: every stage has returned and both channels are closed,
	// so anything still queued was produced but never consumed.
	for e := range chA {
		discard(e)
	}
	for e := range chB {
		discard(e)
	}
	m.Wall = time.Since(start)
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	return m, err
}
