package pipeline

import "fmt"

// Tuner closes the loop between the measured pipeline and its configuration:
// instead of fixed per-platform constants (platform.Palladium's QueueDepth 16
// / PacketBytes 4096, FPGA's 64 / 16384), an additive-increase / halving
// controller adjusts the in-flight queue depth, the batch packet size, and
// the requested token window between rounds, driven by the same Metrics the
// executed pipeline already measures.
//
// The controller reads one signal per round:
//
//   - stall rate — (Backpressure + TokenStalls) / Transfers. Backpressure is
//     the local in-flight queue filling, TokenStalls the server credit window
//     running dry; both mean the producer waited.
//   - queue occupancy — QueuePeak and MeanQueueDepth say whether the bound
//     was ever approached.
//
// and applies classic AIMD with a hysteresis band:
//
//   - stall rate above StallHigh: the pipeline is starved for buffering —
//     grow additively (QueueDepth += QueueStep, Window += WindowStep) and
//     double PacketBytes so per-frame overhead amortizes over more events.
//   - stall rate below StallLow with the queue never half full: the bounds
//     are oversized for the workload — halve all three knobs toward their
//     minimums, reclaiming latency and memory.
//   - anything between, or a full-but-not-stalling queue: hold. The gap
//     between StallLow and StallHigh is what keeps a steady workload from
//     oscillating.
//
// Every round's score (instructions per second, but any higher-is-better
// figure works) is recorded against the knobs that produced it, and Best
// returns the highest-scoring settings seen. Callers measure the fixed
// platform constants as round zero, so Best never returns settings worse
// than the fixed configuration it replaces.
type Tuner struct {
	limits  Limits
	cur     Knobs
	best    Knobs
	bestAt  int
	bestSc  float64
	scored  bool
	rounds  []Decision
	stallHi float64
	stallLo float64
}

// Knobs are the tunable pipeline settings one round runs with.
type Knobs struct {
	// QueueDepth bounds in-flight transfers (Config.QueueDepth).
	QueueDepth int
	// PacketBytes is the batch packet capacity handed to the packers.
	PacketBytes int
	// Window is the token window the client requests from the server
	// (0 = accept the server's default; local runs ignore it).
	Window int
}

func (k Knobs) String() string {
	return fmt.Sprintf("queue=%d packet=%dB window=%d", k.QueueDepth, k.PacketBytes, k.Window)
}

// Limits clamp the tuner's movement and size its additive steps.
type Limits struct {
	MinQueueDepth, MaxQueueDepth   int
	MinPacketBytes, MaxPacketBytes int
	MinWindow, MaxWindow           int
	// QueueStep and WindowStep are the additive-increase increments.
	QueueStep, WindowStep int
}

// DefaultLimits spans the fixed platform constants (Palladium queue 16 /
// packet 4096, FPGA queue 64 / packet 16384) with room on both sides.
func DefaultLimits() Limits {
	return Limits{
		MinQueueDepth: 2, MaxQueueDepth: 256,
		MinPacketBytes: 1024, MaxPacketBytes: 1 << 17,
		MinWindow: 2, MaxWindow: 256,
		QueueStep: 8, WindowStep: 8,
	}
}

// Signal is one round's measurement, taken from the pipeline Metrics of the
// run that used the tuner's current knobs.
type Signal struct {
	Transfers    uint64
	Backpressure uint64
	TokenStalls  uint64
	QueuePeak    int
	MeanQueue    float64
	// Score is the round's figure of merit (instrs/s); higher is better.
	Score float64
}

// SignalFrom extracts the tuner's inputs from a pipeline run's metrics.
func SignalFrom(m *Metrics, score float64) Signal {
	return Signal{
		Transfers:    m.Transfers,
		Backpressure: m.Backpressure,
		TokenStalls:  m.TokenStalls,
		QueuePeak:    m.QueuePeak,
		MeanQueue:    m.MeanQueueDepth(),
		Score:        score,
	}
}

// StallRate is the fraction of transfers that waited for buffering.
func (s Signal) StallRate() float64 {
	if s.Transfers == 0 {
		return 0
	}
	return float64(s.Backpressure+s.TokenStalls) / float64(s.Transfers)
}

// Decision records one controller step for reporting: the signal observed,
// the knobs chosen for the next round, and why.
type Decision struct {
	Round     int
	Observed  Signal
	StallRate float64
	Next      Knobs
	Reason    string // "grow", "shrink", or "hold"
}

func (d Decision) String() string {
	return fmt.Sprintf("round %d: stall %.1f%% peak %d -> %s (%s)",
		d.Round, d.StallRate*100, d.Observed.QueuePeak, d.Next, d.Reason)
}

// NewTuner starts a controller at the given knobs (normally the fixed
// platform constants, so round zero measures the status quo).
func NewTuner(initial Knobs, lim Limits) *Tuner {
	t := &Tuner{limits: lim, cur: initial, best: initial, stallHi: 0.05, stallLo: 0.01}
	t.cur = t.clamp(t.cur)
	t.best = t.cur
	return t
}

// SetBand overrides the hysteresis band (defaults 0.01..0.05). low must be
// below high; values outside (0,1) keep the defaults.
func (t *Tuner) SetBand(low, high float64) {
	if low > 0 && high < 1 && low < high {
		t.stallLo, t.stallHi = low, high
	}
}

// Knobs returns the settings the next round should run with.
func (t *Tuner) Knobs() Knobs { return t.cur }

// Observe feeds one round's signal to the controller. It records the score
// against the knobs that produced it, steps the knobs for the next round,
// and returns the decision.
func (t *Tuner) Observe(sig Signal) Decision {
	if sig.Score > t.bestSc || !t.scored {
		t.bestSc, t.best, t.bestAt = sig.Score, t.cur, len(t.rounds)
		t.scored = true
	}

	stall := sig.StallRate()
	next := t.cur
	reason := "hold"
	switch {
	case stall > t.stallHi:
		// Starved: additive increase, packet doubling.
		next.QueueDepth += t.limits.QueueStep
		next.Window += t.limits.WindowStep
		next.PacketBytes *= 2
		reason = "grow"
	case stall < t.stallLo && sig.QueuePeak*2 <= t.cur.QueueDepth:
		// Idle bound: halve toward the minimums.
		next.QueueDepth /= 2
		next.Window /= 2
		next.PacketBytes /= 2
		reason = "shrink"
	}
	next = t.clamp(next)
	if next == t.cur {
		reason = "hold" // clamped into place counts as holding
	}

	d := Decision{
		Round: len(t.rounds), Observed: sig, StallRate: stall,
		Next: next, Reason: reason,
	}
	t.rounds = append(t.rounds, d)
	t.cur = next
	return d
}

// clamp bounds the knobs to the limits.
func (t *Tuner) clamp(k Knobs) Knobs {
	clampInt := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if hi > 0 && v > hi {
			return hi
		}
		return v
	}
	k.QueueDepth = clampInt(k.QueueDepth, t.limits.MinQueueDepth, t.limits.MaxQueueDepth)
	k.PacketBytes = clampInt(k.PacketBytes, t.limits.MinPacketBytes, t.limits.MaxPacketBytes)
	k.Window = clampInt(k.Window, t.limits.MinWindow, t.limits.MaxWindow)
	return k
}

// Best returns the highest-scoring knobs observed, their score, and the
// round that produced them. Before any Observe it returns the initial knobs.
func (t *Tuner) Best() (Knobs, float64, int) { return t.best, t.bestSc, t.bestAt }

// Decisions returns every controller step taken so far, oldest first.
func (t *Tuner) Decisions() []Decision { return t.rounds }
