package cosim

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/workload"
)

// TestCoverageLocalRuns pins the fuzzer's local feedback channel: every
// in-process run carries a non-empty coverage snapshot whose event total
// matches a second identical run (the signal is deterministic in the run
// parameters).
func TestCoverageLocalRuns(t *testing.T) {
	p := executedParams("EBINSD", false)
	a := run(t, p)
	b := run(t, p)
	if a.Coverage == nil || b.Coverage == nil {
		t.Fatal("local run carried no coverage snapshot")
	}
	if a.Coverage.Events() == 0 {
		t.Fatal("coverage snapshot is empty after a 20k-instruction run")
	}
	if *a.Coverage != *b.Coverage {
		t.Error("identical runs produced different coverage signatures")
	}
}

// TestCoverageRemoteMatchesLocal pins the remote feedback channel: a session
// streamed to the in-process server over the shm ring must come back with
// the identical coverage snapshot the in-process checker produces — the
// server's counters travel in the closing verdict.
func TestCoverageRemoteMatchesLocal(t *testing.T) {
	_, spec := startShmServer(t, transport.ServerConfig{})
	local := run(t, executedParams("EBINSD", true))
	remote := run(t, remoteParams("EBINSD", spec))
	if remote.Coverage == nil {
		t.Fatal("remote run carried no coverage in the closing verdict")
	}
	if *remote.Coverage != *local.Coverage {
		t.Error("remote coverage snapshot differs from the in-process checker's")
	}
}

// TestRunRejectsInvalidProfile pins that a degenerate profile is refused
// before any machinery is built, with the typed validation error.
func TestRunRejectsInvalidProfile(t *testing.T) {
	p := executedParams("EBINSD", false)
	p.Workload.TargetInstrs = 0
	if _, err := Run(p); err == nil {
		t.Fatal("Run accepted a zero-TargetInstrs profile")
	}
	p = executedParams("EBINSD", false)
	p.Workload.WALU = -3
	_, err := Run(p)
	if err == nil {
		t.Fatal("Run accepted a negative-weight profile")
	}
}

// TestSessionRejectsInvalidProfile pins the server-side validation of a
// full profile arriving in the handshake.
func TestSessionRejectsInvalidProfile(t *testing.T) {
	bad := workload.LinuxBoot()
	bad.MMIOPerMille = 2000
	h := transport.Hello{DUT: "xiangshan", Config: "EBINSD", Profile: &bad, Seed: 1}
	if _, err := NewSession(h); err == nil {
		t.Fatal("NewSession accepted an out-of-range MMIO rate")
	}
}
