package cosim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/batch"
	"repro/internal/checker"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Executed co-simulation (Options.Executed): instead of the single-threaded
// loop that models hardware/software overlap analytically, the run is
// staged onto internal/pipeline — the DUT producer (monitor + acceleration
// unit + modeled link accounting), the link, and the checker consumer run
// in separate goroutines. Blocking configurations use the per-transfer
// handshake; NonBlocking streams through a bounded queue sized by the
// platform's QueueDepth. On multi-core DUTs the NonBlocking consumer
// additionally fans items out to one checking goroutine per core (the
// checker's per-core independence contract, see internal/checker).
//
// The modeled simulated-time accounting is unchanged — the producer still
// drives comm.Link — so an executed run reports both the analytic speed
// (SpeedHz) and the measured wall-clock concurrency (Exec, ExecutedHz).

// xfer is one transfer crossing the executed pipeline: a packed packet
// (Batch/fixed-offset modes, pkt.Buf != nil) or bare wire items (per-event
// baseline). The packet is held by value: a pointer into the producer's
// packet slice would alias storage the producer may reuse while the consumer
// goroutine is still reading.
type xfer struct {
	pkt   batch.Packet
	items []wire.Item
}

// hwProducer is the hardware-side pipeline stage: it steps the DUT,
// applies the acceleration unit, accounts the modeled link, and emits one
// transfer per call.
type hwProducer struct {
	r        *runner
	pending  []xfer
	finished bool // the DUT reached its trap
}

func (p *hwProducer) next() (xfer, bool, error) {
	r := p.r
	for len(p.pending) == 0 {
		if p.finished {
			return xfer{}, false, nil
		}
		if err := r.cancelled(); err != nil {
			return xfer{}, false, err
		}
		if r.d.CycleCount >= r.p.MaxCycles {
			return xfer{}, false, fmt.Errorf("cosim: %s did not finish within %d cycles: %w", r.p.DUT.Name, r.p.MaxCycles, ErrCycleLimit)
		}
		recs, done := r.d.StepCycle()
		r.link.AdvanceCycle()
		if r.p.Trace != nil {
			if err := r.p.Trace.WriteCycle(r.d.CycleCount, recs); err != nil {
				return xfer{}, false, err
			}
		}
		items, err := r.hardwareSide(recs)
		if err != nil {
			return xfer{}, false, err
		}
		xs, err := p.pack(items, false)
		if err != nil {
			return xfer{}, false, err
		}
		p.pending = xs
		if done {
			p.finished = true
			var tail []wire.Item
			for _, f := range r.fusers {
				tail = append(tail, f.Flush()...)
			}
			xs, err := p.pack(tail, true)
			if err != nil {
				return xfer{}, false, err
			}
			p.pending = append(p.pending, xs...)
		}
	}
	x := p.pending[0]
	p.pending = p.pending[1:]
	return x, true, nil
}

// releasePending returns the pooled buffers of packed-but-untransferred
// packets (the pipeline stopped early on a mismatch or an error).
func (p *hwProducer) releasePending() {
	for _, x := range p.pending {
		dropXfer(x)
	}
	p.pending = nil
}

// dropXfer releases a transfer the consumer never saw — the pipeline's Drop
// callback for transfers stranded in flight by an early stop.
func dropXfer(x xfer) {
	if x.pkt.Buf != nil {
		x.pkt.Release()
	}
}

// pack applies the configured transport packing and the modeled link cost,
// mirroring runner.transport's hardware half.
func (p *hwProducer) pack(items []wire.Item, flush bool) ([]xfer, error) {
	r := p.r
	var out []xfer
	switch {
	case r.opt.Batch && r.opt.FixedOffset:
		pkts, err := r.fixed.AddCycle(items)
		if err != nil {
			return nil, err
		}
		if flush {
			pkts = append(pkts, r.fixed.Flush()...)
		}
		for i := range pkts {
			r.link.Send(len(pkts[i].Buf), pkts[i].Events, pkts[i].Instrs)
			out = append(out, xfer{pkt: pkts[i]})
		}
	case r.opt.Batch:
		pkts := r.packer.AddCycle(items)
		if flush {
			pkts = append(pkts, r.packer.Flush()...)
		}
		for i := range pkts {
			r.link.Send(len(pkts[i].Buf), pkts[i].Events, pkts[i].Instrs)
			out = append(out, xfer{pkt: pkts[i]})
		}
	default:
		for _, it := range items {
			r.link.Send(it.BaselineWireSize(), 1, it.InstrCount())
			out = append(out, xfer{items: []wire.Item{it}})
		}
	}
	return out, nil
}

// swConsumer is the software-side pipeline stage: unpacking plus checking,
// with per-core fan-out on multi-core NonBlocking runs. Mismatches from any
// checking goroutine go through a checker.Collector, which resolves the
// same winner the sequential stream order would.
type swConsumer struct {
	r   *runner
	col checker.Collector

	fanout  bool
	chans   []chan wire.Item
	wg      sync.WaitGroup
	stopped atomic.Bool

	errMu sync.Mutex
	err   error
}

func newSWConsumer(r *runner) *swConsumer {
	c := &swConsumer{r: r}
	if r.p.DUT.Cores > 1 && r.opt.NonBlocking {
		c.fanout = true
		c.chans = make([]chan wire.Item, r.p.DUT.Cores)
		for i := range c.chans {
			ch := make(chan wire.Item, 1024)
			c.chans[i] = ch
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				for it := range ch {
					if c.stopped.Load() {
						continue // drain so the router never blocks
					}
					m, err := c.r.checkItem(it)
					if err != nil {
						c.fail(err)
						continue
					}
					if m != nil {
						c.col.Offer(m)
						c.stopped.Store(true)
					}
				}
			}()
		}
	}
	return c
}

func (c *swConsumer) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.stopped.Store(true)
}

func (c *swConsumer) firstErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// sink consumes one transfer: unpack, then check (inline or fanned out).
func (c *swConsumer) sink(x xfer) (bool, error) {
	items, err := c.decode(x)
	if err != nil {
		return false, err
	}
	if !c.fanout {
		return c.checkInline(items)
	}
	for _, it := range items {
		if c.stopped.Load() {
			break
		}
		if int(it.Core) >= len(c.chans) {
			c.col.Offer(&checker.Mismatch{Core: it.Core, Detail: "item for unknown core"})
			c.stopped.Store(true)
			break
		}
		c.chans[it.Core] <- it
	}
	return c.stopped.Load(), c.firstErr()
}

// decode recovers wire items from a transfer, mirroring runner.transport's
// software half (meta-guided unpacking or fixed-frame reassembly).
func (c *swConsumer) decode(x xfer) ([]wire.Item, error) {
	r := c.r
	switch {
	case x.pkt.Buf == nil:
		return x.items, nil
	case r.opt.FixedOffset:
		frames, err := r.fixedFrames(x.pkt)
		if err != nil {
			return nil, err
		}
		var items []wire.Item
		for _, f := range frames {
			items = append(items, f...)
		}
		return items, nil
	default:
		items, err := r.unpacker.AddPacket(x.pkt.Buf)
		// Payloads were copied into the unpacker's arena; recycle the buffer.
		x.pkt.Release()
		return items, err
	}
}

func (c *swConsumer) checkInline(items []wire.Item) (bool, error) {
	for _, it := range items {
		m, err := c.r.checkItem(it)
		if err != nil {
			return false, err
		}
		if m != nil {
			c.col.Offer(m)
			return true, nil
		}
	}
	return false, nil
}

// close joins the per-core checking goroutines.
func (c *swConsumer) close() {
	for _, ch := range c.chans {
		close(ch)
	}
	c.wg.Wait()
}

// finish runs the software-side end-of-stream flush (unpacker tail, then
// the reorderer's held-back checks), mirroring runner.flushAll.
func (c *swConsumer) finish() error {
	r := c.r
	if r.opt.Batch && !r.opt.FixedOffset {
		if _, err := c.checkInline(r.unpacker.Flush()); err != nil {
			return err
		}
	}
	if r.opt.Squash && c.col.First() == nil {
		if m := r.desq.Flush(); m != nil {
			c.col.Offer(m)
		}
	}
	return nil
}

// loopExecuted is the executed-mode counterpart of runner.loop: it drives
// the concurrent pipeline to completion, then applies mismatch/replay and
// verdict accounting exactly as the sequential path would.
func (r *runner) loopExecuted() error {
	prod := &hwProducer{r: r}
	cons := newSWConsumer(r)
	m, err := pipeline.Run(prod.next, cons.sink, pipeline.Config{
		NonBlocking: r.opt.NonBlocking,
		QueueDepth:  r.p.Platform.QueueDepth,
	}, dropXfer)
	cons.close()
	prod.releasePending()
	if err == nil {
		err = cons.firstErr()
	}
	if err != nil {
		return err
	}
	r.res.Exec = m

	if mm := cons.col.First(); mm != nil {
		// The producer has joined: replay's buffer reads and the link's
		// replay-traffic accounting are single-threaded again.
		r.onMismatch(mm)
		return nil
	}
	if !prod.finished {
		return fmt.Errorf("cosim: %s did not finish within %d cycles: %w", r.p.DUT.Name, r.p.MaxCycles, ErrCycleLimit)
	}
	if err := cons.finish(); err != nil {
		return err
	}
	r.res.Finished = true
	_, r.res.TrapCode = r.chk.Finished()
	if mm := cons.col.First(); mm != nil {
		r.onMismatch(mm)
	}
	return nil
}
