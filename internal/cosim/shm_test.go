package cosim

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/event"
	"repro/internal/transport"
	"repro/internal/workload"
)

// startShmServer is startLoopbackServer over the shared-memory ring
// transport: the same production server (cosim.NewSession wired into
// transport.Server), listening on an shm rendezvous directory in the test's
// temp dir. Skips on platforms without mmap.
func startShmServer(t testing.TB, cfg transport.ServerConfig) (*transport.Server, string) {
	t.Helper()
	spec := "shm://" + filepath.Join(t.TempDir(), "rings") + "?ring=1048576"
	l, err := transport.Listen(spec)
	if err != nil {
		t.Skipf("shm transport unavailable: %v", err)
	}
	cfg.NewSession = NewSession
	srv := transport.NewServer(cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
		<-done
	})
	return srv, spec
}

// TestShmLoopbackSession drives one clean session and one injected-bug
// session over the shared-memory ring: the clean run must finish, the bug
// must come back with the checker's diagnosis, and the pooled-buffer balance
// must hold across both ends — the shm twin of the Unix-socket loopback
// gate.
func TestShmLoopbackSession(t *testing.T) {
	srv, spec := startShmServer(t, transport.ServerConfig{})
	gets0, puts0 := event.PoolStats()

	clean := run(t, remoteParams("EBINSD", spec))
	if !clean.Finished || clean.Mismatch != nil {
		t.Errorf("clean session: finished=%v mismatch=%v", clean.Finished, clean.Mismatch)
	}
	if clean.Exec == nil {
		t.Fatal("shm run carried no pipeline metrics")
	}

	b, ok := bugs.ByID("store-byte-drop")
	if !ok {
		t.Fatal("bug store-byte-drop not in the library")
	}
	p := remoteParams("EBINSD", spec)
	p.Workload = scaled(workload.LinuxBoot(), 40_000)
	p.Seed = 3
	p.Hooks = b.Hooks(0)
	buggy := run(t, p)
	if buggy.Mismatch == nil {
		t.Error("injected bug escaped over the shm ring")
	} else if buggy.Mismatch.Detail == "" {
		t.Error("shm mismatch verdict lost the checker's diagnosis")
	}

	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Errorf("pool imbalance across the shm link: %d gets vs %d puts",
			gets1-gets0, puts1-puts0)
	}
	served, mismatches, _ := srv.Stats()
	if served < 2 || mismatches != 1 {
		t.Errorf("server stats: served=%d mismatches=%d", served, mismatches)
	}
}

// TestShmBugEquivalence is the shared-memory half of the verdict-equivalence
// gate: for every bug in the library, a run streamed over the shm ring to
// the in-process server must agree with the in-process executed pipeline —
// same detection outcome, same mismatch identity, same diagnosis text.
func TestShmBugEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bug sweep is long")
	}
	if raceEnabled {
		// The full-library sweep alone would blow the package's race-mode
		// time budget; the race detector still covers the shm path through
		// the loopback, CompareModes, and transport conformance gates, and
		// the sweep itself runs in every plain `go test ./...`.
		t.Skip("bug sweep exceeds the race-mode time budget")
	}
	_, spec := startShmServer(t, transport.ServerConfig{})
	for _, cfg := range []string{"Z", "EBINSD"} {
		for _, b := range bugs.Library() {
			b := b
			cfg := cfg
			t.Run(cfg+"/"+b.ID, func(t *testing.T) {
				mk := func(remote bool) *Result {
					p := executedParams(cfg, true)
					if remote {
						p.RemoteAddr = spec
					}
					p.Workload = scaled(workload.LinuxBoot(), 40_000)
					p.Seed = 3
					p.Hooks = b.Hooks(0)
					return run(t, p)
				}
				local := mk(false)
				shm := mk(true)
				if (local.Mismatch == nil) != (shm.Mismatch == nil) {
					t.Fatalf("detection disagrees: in-process=%v shm=%v",
						local.Mismatch, shm.Mismatch)
				}
				if local.Mismatch == nil {
					t.Skipf("bug %s escapes this workload in both modes", b.ID)
				}
				lm, sm := local.Mismatch, shm.Mismatch
				if lm.Core != sm.Core || lm.Kind != sm.Kind || lm.Seq != sm.Seq || lm.PC != sm.PC {
					t.Errorf("mismatch identity differs:\n in-process: %v\n shm       : %v", lm, sm)
				}
				if lm.Detail != sm.Detail {
					t.Errorf("diagnosis differs:\n in-process: %s\n shm       : %s", lm.Detail, sm.Detail)
				}
			})
		}
	}
}

// TestCompareModesShmLoopback pins the -shm comparison column: with
// ShmLoopback set, every configuration row carries a finished shm result and
// the optimized configurations beat the shm baseline.
func TestCompareModesShmLoopback(t *testing.T) {
	p := executedParams("EBINSD", true)
	p.Workload = scaled(workload.LinuxBoot(), 10_000)
	p.ShmLoopback = true
	cmp, err := CompareModes(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != len(ConfigNames()) {
		t.Fatalf("%d rows, want %d", len(cmp.Rows), len(ConfigNames()))
	}
	for i, row := range cmp.Rows {
		if row.Shm == nil {
			t.Fatalf("row %s has no shm result", row.Config)
		}
		if !row.Shm.Finished || row.Shm.Mismatch != nil {
			t.Errorf("shm row %s: finished=%v mismatch=%v",
				row.Config, row.Shm.Finished, row.Shm.Mismatch)
		}
		if row.Shm.Exec == nil {
			t.Errorf("shm row %s carried no pipeline metrics", row.Config)
		}
		if i > 0 && cmp.ShmSpeedup(i) <= 0 {
			t.Errorf("shm speedup for %s = %v, want > 0", row.Config, cmp.ShmSpeedup(i))
		}
	}
}
