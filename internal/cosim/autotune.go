package cosim

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/transport"
)

// Auto-tuning closes the loop between the executed pipeline's measured
// metrics and its configuration. A fixed platform ships one QueueDepth /
// PacketBytes pair for every DUT and workload; AutoTune instead runs the
// same co-simulation for a few short rounds, feeds each round's
// pipeline.Metrics into the AIMD controller (pipeline.Tuner), and reports
// the best-scoring settings. Round zero always measures the fixed platform
// constants, so the reported best is never worse than the configuration it
// replaces.

// TuneRound records one auto-tuning round: the knobs it ran with, the run's
// result, the achieved score (instrs/s of executed wall clock), and the
// controller's decision for the next round.
type TuneRound struct {
	Knobs    pipeline.Knobs
	Result   *Result
	Score    float64 // instrs/s over executed wall clock
	Decision pipeline.Decision
}

// AutoTuneReport is one configuration's tuning trajectory.
type AutoTuneReport struct {
	Config   string
	Platform string
	Rounds   []TuneRound
	// Best is the highest-scoring knobs observed, BestScore its instrs/s,
	// and BestRound the round that produced it (0 = the fixed constants).
	Best      pipeline.Knobs
	BestScore float64
	BestRound int
}

// FixedKnobs returns the round-0 settings (the platform constants).
func (t *AutoTuneReport) FixedKnobs() pipeline.Knobs { return t.Rounds[0].Knobs }

// FixedScore returns the fixed-constant round's instrs/s.
func (t *AutoTuneReport) FixedScore() float64 { return t.Rounds[0].Score }

// Gain returns BestScore / FixedScore; ≥ 1 by construction (round 0 is a
// candidate for best).
func (t *AutoTuneReport) Gain() float64 {
	if t.FixedScore() == 0 {
		return 0
	}
	return t.BestScore / t.FixedScore()
}

// AutoTune runs one configuration through `rounds` executed co-simulations
// (rounds < 1 = 4), steering QueueDepth, PacketBytes, and the requested
// token window with the AIMD controller between rounds. The workload must
// verify cleanly — tuning measures throughput, and a mismatch stops a run
// early, which would poison the score.
func AutoTune(p Params, rounds int) (*AutoTuneReport, error) {
	if rounds < 1 {
		rounds = 4
	}
	p.Opt.Executed = true

	fixed := pipeline.Knobs{
		QueueDepth:  p.Platform.QueueDepth,
		PacketBytes: p.Platform.PacketBytes,
		Window:      transport.DefaultWindow,
	}
	tn := pipeline.NewTuner(fixed, pipeline.DefaultLimits())
	rep := &AutoTuneReport{Config: p.Opt.Name(), Platform: p.Platform.Name}

	for i := 0; i < rounds; i++ {
		k := tn.Knobs()
		p.Tuning = &k
		res, err := Run(p)
		if err != nil {
			return nil, fmt.Errorf("cosim: autotune round %d (%s): %w", i, k, err)
		}
		if res.Mismatch != nil {
			return nil, fmt.Errorf("cosim: autotune round %d: workload mismatched (%v) — tune with a clean workload", i, res.Mismatch)
		}
		if res.Exec == nil || res.Exec.Wall <= 0 {
			return nil, fmt.Errorf("cosim: autotune round %d: no executed metrics", i)
		}
		score := float64(res.Instrs) / res.Exec.Wall.Seconds()
		d := tn.Observe(pipeline.SignalFrom(res.Exec, score))
		rep.Rounds = append(rep.Rounds, TuneRound{Knobs: k, Result: res, Score: score, Decision: d})
	}
	rep.Best, rep.BestScore, rep.BestRound = tn.Best()
	return rep, nil
}

// TunedConfigNames lists the configurations worth tuning: the blocking
// baseline Z has no queue or packet to steer.
func TunedConfigNames() []string { return []string{"EB", "EBIN", "EBINSD"} }

// AutoTuneSweep tunes every named configuration (nil = TunedConfigNames)
// with the same budget, for the before/after comparison table.
func AutoTuneSweep(p Params, rounds int, configs []string) ([]*AutoTuneReport, error) {
	if len(configs) == 0 {
		configs = TunedConfigNames()
	}
	var reps []*AutoTuneReport
	for _, name := range configs {
		opt, err := ParseConfig(name)
		if err != nil {
			return nil, err
		}
		opt.CoupleOrder = p.Opt.CoupleOrder
		opt.FixedOffset = p.Opt.FixedOffset
		opt.MaxFuse = p.Opt.MaxFuse
		sp := p
		sp.Opt = opt
		rep, err := AutoTune(sp, rounds)
		if err != nil {
			return nil, err
		}
		reps = append(reps, rep)
	}
	return reps, nil
}
