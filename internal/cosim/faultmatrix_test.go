package cosim

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/event"
	"repro/internal/faultnet"
	"repro/internal/transport"
	"repro/internal/workload"
)

// The fault matrix: every injectable network fault crossed with a clean run
// and three library bugs, over a loopback difftestd with session resume.
// The gate is verdict equivalence — whatever the link does, the networked
// verdict must be byte-identical to the in-process one (core, seq, pc, kind,
// detail), with a balanced buffer pool across both wire ends. Failures print
// the faultnet seed and event journal, which replay the run exactly.

// faultCell describes one row of the matrix: how to mangle the link.
type faultCell struct {
	name      string
	seed      int64
	plan      faultnet.Plan // applied per the scope below
	firstOnly bool          // fault only the first connection; redials are clean
	wantRetry bool          // the clean workload must need at least one resume
}

func matrixCells() []faultCell {
	return []faultCell{
		// Benign chaos on every connection: traffic is delayed, split, or
		// slivered but never lost, so no resume is needed.
		{name: "delay", seed: 101, plan: faultnet.Plan{Seed: 101, PDelay: 0.3, MaxDelay: time.Millisecond}},
		{name: "partial-write", seed: 102, plan: faultnet.Plan{Seed: 102, PPartial: 0.5}},
		{name: "short-read", seed: 103, plan: faultnet.Plan{Seed: 103, PShortRead: 0.7}},
		// Destructive faults on the first connection (after the handshake);
		// the session must resume onto a clean redial.
		{name: "corrupt", seed: 104, firstOnly: true, wantRetry: true,
			plan: faultnet.Plan{Seed: 104, Script: []faultnet.Op{{Index: 5, Kind: faultnet.Corrupt, Offset: 37}}}},
		{name: "reset-mid-frame", seed: 105, firstOnly: true, wantRetry: true,
			plan: faultnet.Plan{Seed: 105, Script: []faultnet.Op{{Index: 4, Kind: faultnet.Reset, Offset: 9}}}},
		{name: "stall", seed: 106, firstOnly: true, wantRetry: true,
			plan: faultnet.Plan{Seed: 106, Script: []faultnet.Op{{Index: 4, Kind: faultnet.Stall}}}},
	}
}

// matrixWorkloads: the clean baseline plus three library bugs from distinct
// categories, all at a scale the checker detects them at.
func matrixWorkloads(t *testing.T) []string {
	t.Helper()
	ids := []string{"", "store-byte-drop", "mepc-misaligned-on-trap", "branch-not-taken"}
	for _, id := range ids[1:] {
		if _, ok := bugs.ByID(id); !ok {
			t.Fatalf("bug %s not in the library", id)
		}
	}
	return ids
}

// matrixParams builds the run for one (workload, remote) cell. Every
// parameter that shapes the event stream is pinned so the in-process
// reference and the networked run check the identical stream.
func matrixParams(t *testing.T, bugID, addr string) Params {
	t.Helper()
	p := executedParams("EBINSD", true)
	p.Workload = scaled(workload.LinuxBoot(), 40_000)
	p.Seed = 3
	if bugID != "" {
		b, ok := bugs.ByID(bugID)
		if !ok {
			t.Fatalf("bug %s not in the library", bugID)
		}
		p.Hooks = b.Hooks(0)
	}
	p.RemoteAddr = addr
	return p
}

// faultDialer routes connections through faultnet per the cell's scope and
// keeps every journal for failure output.
type faultDialer struct {
	cell faultCell

	mu       sync.Mutex
	dials    int
	journals []*faultnet.Journal
}

func (d *faultDialer) dial(spec string) (net.Conn, error) {
	sp, _ := transport.ParseSpec(spec)
	nc, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	idx := d.dials
	d.dials++
	d.mu.Unlock()
	if d.cell.firstOnly && idx > 0 {
		return nc, nil
	}
	j := faultnet.NewJournal(d.cell.seed)
	d.mu.Lock()
	d.journals = append(d.journals, j)
	d.mu.Unlock()
	return faultnet.New(nc, d.cell.plan, j), nil
}

// log renders every journal for a failing cell: the seeds and fault
// sequences that replay the run.
func (d *faultDialer) log() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := ""
	for _, j := range d.journals {
		out += "\n" + j.String()
	}
	return out
}

func (d *faultDialer) release() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, j := range d.journals {
		j.Release()
	}
}

// matrixClientConfig is the resume-enabled client every matrix cell uses.
// StallTimeout must exceed the server's idle horizon so a stalled session is
// parked (and resumable) before the client gives up on the dead link.
func matrixClientConfig(d *faultDialer) transport.ClientConfig {
	return transport.ClientConfig{
		Resume:       true,
		MaxRetries:   4,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		StallTimeout: 900 * time.Millisecond,
		JitterSeed:   11,
		Dial:         d.dial,
	}
}

// verdictEq asserts the networked verdict is byte-identical to the
// in-process reference.
func verdictEq(t *testing.T, ref, got *Result, context string) {
	t.Helper()
	if (ref.Mismatch == nil) != (got.Mismatch == nil) {
		t.Fatalf("%s: detection disagrees: in-process=%v networked=%v",
			context, ref.Mismatch, got.Mismatch)
	}
	if ref.Mismatch == nil {
		if !got.Finished || got.TrapCode != ref.TrapCode {
			t.Fatalf("%s: clean verdict drifted: finished=%v trap=%d, want trap=%d",
				context, got.Finished, got.TrapCode, ref.TrapCode)
		}
		return
	}
	rm, gm := ref.Mismatch, got.Mismatch
	if rm.Core != gm.Core || rm.Seq != gm.Seq || rm.PC != gm.PC || rm.Kind != gm.Kind {
		t.Fatalf("%s: mismatch identity differs:\n in-process: %v\n networked : %v",
			context, rm, gm)
	}
	if rm.Detail != gm.Detail {
		t.Fatalf("%s: diagnosis differs:\n in-process: %s\n networked : %s",
			context, rm.Detail, gm.Detail)
	}
}

// TestFaultMatrixVerdictEquivalence is the fault-matrix integration gate:
// {delay, partial-write, short-read, corrupt, reset-mid-frame, stall} ×
// {clean, 3 library bugs}, each networked run resuming through the injected
// faults and reaching the in-process verdict with a balanced pool.
func TestFaultMatrixVerdictEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is long")
	}
	_, spec := startLoopbackServer(t, transport.ServerConfig{
		IdleTimeout:  300 * time.Millisecond,
		ResumeWindow: time.Minute,
	})

	// In-process references, one per workload.
	refs := map[string]*Result{}
	for _, bugID := range matrixWorkloads(t) {
		refs[bugID] = run(t, matrixParams(t, bugID, ""))
	}

	for _, cell := range matrixCells() {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			for _, bugID := range matrixWorkloads(t) {
				bugID := bugID
				wl := bugID
				if wl == "" {
					wl = "clean"
				}
				t.Run(wl, func(t *testing.T) {
					gets0, puts0 := event.PoolStats()
					d := &faultDialer{cell: cell}
					p := matrixParams(t, bugID, spec)
					p.RemoteCfg = matrixClientConfig(d)
					res, err := Run(p)
					if err != nil {
						t.Fatalf("networked run: %v%s", err, d.log())
					}
					if res.Degraded {
						t.Fatalf("run degraded to in-process inside the matrix (faults should be survivable)%s", d.log())
					}
					verdictEq(t, refs[bugID], res, cell.name+"/"+wl+d.log())
					if cell.wantRetry && bugID == "" {
						if res.Exec == nil || res.Exec.Reconnects == 0 {
							t.Fatalf("destructive fault never forced a resume (metrics %+v)%s", res.Exec, d.log())
						}
					}
					d.release()
					gets1, puts1 := event.PoolStats()
					if gets1-gets0 != puts1-puts0 {
						t.Fatalf("pool imbalance across both wire ends: %d gets vs %d puts%s",
							gets1-gets0, puts1-puts0, d.log())
					}
				})
			}
		})
	}
}

// TestDegradedRunAfterBudgetExhaustion pins graceful degradation: the first
// connection dies mid-frame, every redial fails, and instead of erroring out
// the run is redone with in-process checking — correct verdict, Degraded
// marker, DegradedRuns=1, and a balanced pool.
func TestDegradedRunAfterBudgetExhaustion(t *testing.T) {
	_, spec := startLoopbackServer(t, transport.ServerConfig{
		ResumeWindow: time.Minute,
	})
	gets0, puts0 := event.PoolStats()

	var mu sync.Mutex
	dials := 0
	j := faultnet.NewJournal(42)
	dial := func(spec string) (net.Conn, error) {
		mu.Lock()
		idx := dials
		dials++
		mu.Unlock()
		if idx > 0 {
			return nil, errDialRefused
		}
		sp, _ := transport.ParseSpec(spec)
		nc, err := net.Dial(sp.Scheme, sp.Addr)
		if err != nil {
			return nil, err
		}
		return faultnet.New(nc, faultnet.Plan{
			Seed:   42,
			Script: []faultnet.Op{{Index: 4, Kind: faultnet.Reset, Offset: 11}},
		}, j), nil
	}

	p := matrixParams(t, "", spec)
	p.RemoteCfg = transport.ClientConfig{
		Resume:      true,
		MaxRetries:  2,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		JitterSeed:  13,
		Dial:        dial,
	}
	res, err := Run(p)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v\n%s", err, j)
	}
	if !res.Degraded {
		t.Fatalf("run not marked Degraded\n%s", j)
	}
	if res.Exec == nil || res.Exec.DegradedRuns != 1 {
		t.Fatalf("DegradedRuns != 1 (metrics %+v)\n%s", res.Exec, j)
	}
	ref := run(t, matrixParams(t, "", ""))
	verdictEq(t, ref, res, "degraded")

	j.Release()
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance after degradation: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

var errDialRefused = &net.OpError{Op: "dial", Err: &net.AddrError{Err: "induced dial failure"}}
