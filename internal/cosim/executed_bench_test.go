package cosim

import (
	"testing"

	"repro/internal/workload"
)

// benchExecuted measures wall-clock throughput of the executed concurrent
// pipeline (producer + link + consumer goroutines) for one configuration.
// DESIGN.md's "Wire codec" section tracks these numbers across codec work:
// the executed path exercises the full encode→pack→transfer→unpack→check
// stack per instruction.
func benchExecuted(b *testing.B, cfg string) {
	p := executedParams(cfg, true)
	p.Workload = scaled(workload.LinuxBoot(), 15_000)
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Mismatch != nil {
			b.Fatalf("mismatch: %v", res.Mismatch)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkExecutedBatchEB(b *testing.B)      { benchExecuted(b, "EB") }
func BenchmarkExecutedNonBlockEBIN(b *testing.B) { benchExecuted(b, "EBIN") }
func BenchmarkExecutedSquashEBINSD(b *testing.B) { benchExecuted(b, "EBINSD") }
