package cosim

import (
	"testing"

	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Calibration-band regression tests: the platform constants are tuned so the
// measured operating points land near the paper's published numbers
// (EXPERIMENTS.md). These tests pin each anchor inside a band so future
// changes to the DUT timing model, event cadences, or transport cannot
// silently drift the reproduction away from the paper.

type band struct {
	cfg      string
	minHz    float64
	maxHz    float64
	paperHz  float64
	paperRef string
}

func checkBands(t *testing.T, d dut.Config, p platform.Platform, bands []band) {
	t.Helper()
	wl := scaled(workload.LinuxBoot(), 40_000)
	for _, bd := range bands {
		opt, _ := ParseConfig(bd.cfg)
		res := run(t, Params{DUT: d, Platform: p, Opt: opt, Workload: wl, Seed: 7})
		if res.Mismatch != nil {
			t.Fatalf("%s: mismatch %v", bd.cfg, res.Mismatch)
		}
		if res.SpeedHz < bd.minHz || res.SpeedHz > bd.maxHz {
			t.Errorf("%s/%s/%s = %.1f KHz, outside calibration band [%.1f, %.1f] KHz (paper: %.1f KHz, %s)",
				d.Name, p.Name, bd.cfg, res.SpeedHz/1e3, bd.minHz/1e3, bd.maxHz/1e3,
				bd.paperHz/1e3, bd.paperRef)
		}
	}
}

func TestCalibrationXiangShanPalladium(t *testing.T) {
	checkBands(t, dut.XiangShanDefault(), platform.Palladium(), []band{
		{"Z", 4e3, 10e3, 6e3, "Table 5"},
		{"EB", 20e3, 45e3, 24e3, "Table 5"},
		{"EBIN", 50e3, 100e3, 71e3, "Table 5"},
		{"EBINSD", 430e3, 480e3, 478e3, "Table 5"},
	})
}

func TestCalibrationNutShellPalladium(t *testing.T) {
	checkBands(t, dut.NutShell(), platform.Palladium(), []band{
		{"Z", 10e3, 30e3, 14e3, "Table 5"},
		{"EBINSD", 900e3, 1035e3, 1030e3, "Table 5"},
	})
}

func TestCalibrationXiangShanFPGA(t *testing.T) {
	checkBands(t, dut.XiangShanDefault(), platform.FPGA(), []band{
		{"Z", 60e3, 160e3, 100e3, "Table 5"},
		{"EB", 0.8e6, 1.6e6, 1.3e6, "Table 5"},
		{"EBIN", 1.8e6, 3.5e6, 2.2e6, "Table 5"},
		{"EBINSD", 6.5e6, 10e6, 7.8e6, "Table 5"},
	})
}

// TestCalibrationOverheadShares pins the paper's §6.3/Table 7 overhead
// claims: >98% baseline, <1% optimized on Palladium, ~84% residual on FPGA.
func TestCalibrationOverheadShares(t *testing.T) {
	wl := scaled(workload.LinuxBoot(), 40_000)
	optZ, _ := ParseConfig("Z")
	optSD, _ := ParseConfig("EBINSD")

	base := run(t, Params{DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
		Opt: optZ, Workload: wl, Seed: 7})
	if base.CommOverheadShare < 0.98 {
		t.Errorf("Palladium baseline overhead %.3f, paper >0.98", base.CommOverheadShare)
	}
	full := run(t, Params{DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
		Opt: optSD, Workload: wl, Seed: 7})
	if full.CommOverheadShare > 0.01 {
		t.Errorf("Palladium optimized overhead %.4f, paper ~0.004", full.CommOverheadShare)
	}
	fpga := run(t, Params{DUT: dut.XiangShanDefault(), Platform: platform.FPGA(),
		Opt: optSD, Workload: wl, Seed: 7})
	if fpga.CommOverheadShare < 0.7 || fpga.CommOverheadShare > 0.92 {
		t.Errorf("FPGA optimized overhead %.3f, paper ~0.84", fpga.CommOverheadShare)
	}
}

// TestCalibrationMonitorTraffic pins the Table 4 / §2.2 operating point:
// ~1.2 KB and on the order of ten events per cycle on XiangShan-default.
func TestCalibrationMonitorTraffic(t *testing.T) {
	optZ, _ := ParseConfig("Z")
	res := run(t, Params{DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
		Opt: optZ, Workload: scaled(workload.LinuxBoot(), 40_000), Seed: 7})
	if res.BytesPerCycle < 700 || res.BytesPerCycle > 1700 {
		t.Errorf("bytes/cycle = %.0f, paper ~1200", res.BytesPerCycle)
	}
	if res.EventsPerCycle < 5 || res.EventsPerCycle > 20 {
		t.Errorf("events/cycle = %.1f, paper ~15", res.EventsPerCycle)
	}
}
