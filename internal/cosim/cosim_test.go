package cosim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

func scaled(p workload.Profile, n uint64) workload.Profile {
	p.TargetInstrs = n
	return p
}

func run(t *testing.T, p Params) *Result {
	t.Helper()
	res, err := Run(p)
	if err != nil {
		t.Fatalf("run %s/%s/%s: %v", p.DUT.Name, p.Platform.Name, p.Opt.Name(), err)
	}
	return res
}

func TestParseConfig(t *testing.T) {
	for _, name := range []string{"Z", "EB", "EBIN", "EBINSD", "ebinsd"} {
		if _, err := ParseConfig(name); err != nil {
			t.Errorf("ParseConfig(%q): %v", name, err)
		}
	}
	if _, err := ParseConfig("bogus"); err == nil {
		t.Error("bogus config accepted")
	}
}

// TestAllConfigsCheckClean is the central end-to-end property: every
// optimization level must reproduce the exact same verification verdict
// (clean run, good trap) as the baseline.
func TestAllConfigsCheckClean(t *testing.T) {
	for _, cfgName := range []string{"Z", "EB", "EBIN", "EBINSD"} {
		opt, _ := ParseConfig(cfgName)
		t.Run(cfgName, func(t *testing.T) {
			res := run(t, Params{
				DUT:      dut.XiangShanDefault(),
				Platform: platform.Palladium(),
				Opt:      opt,
				Workload: scaled(workload.LinuxBoot(), 25_000),
				Seed:     7,
			})
			if res.Mismatch != nil {
				t.Fatalf("spurious mismatch: %v", res.Mismatch)
			}
			if !res.Finished || res.TrapCode != 0 {
				t.Fatalf("did not hit good trap: finished=%v code=%d", res.Finished, res.TrapCode)
			}
			if res.SpeedHz <= 0 {
				t.Fatal("no speed computed")
			}
		})
	}
}

func TestSquashCleanAcrossDUTsAndProfiles(t *testing.T) {
	opt, _ := ParseConfig("EBINSD")
	for _, cfg := range dut.Configs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			res := run(t, Params{
				DUT: cfg, Platform: platform.Palladium(), Opt: opt,
				Workload: scaled(workload.LinuxBoot(), 20_000), Seed: 11,
			})
			if res.Mismatch != nil {
				t.Fatalf("spurious mismatch: %v", res.Mismatch)
			}
		})
	}
	for _, prof := range workload.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			res := run(t, Params{
				DUT: dut.XiangShanDefault(), Platform: platform.FPGA(), Opt: opt,
				Workload: scaled(prof, 20_000), Seed: 13,
			})
			if res.Mismatch != nil {
				t.Fatalf("spurious mismatch: %v", res.Mismatch)
			}
		})
	}
}

// TestOptimizationLadder verifies the Table-5 shape: each optimization level
// is faster than the previous, and the full stack approaches DUT-only speed.
func TestOptimizationLadder(t *testing.T) {
	wl := scaled(workload.LinuxBoot(), 25_000)
	var speeds []float64
	for _, cfgName := range []string{"Z", "EB", "EBIN", "EBINSD"} {
		opt, _ := ParseConfig(cfgName)
		res := run(t, Params{
			DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
			Opt: opt, Workload: wl, Seed: 7,
		})
		speeds = append(speeds, res.SpeedHz)
		t.Logf("%-7s %8.1f KHz (util %.2f, fusion ratio %.1f, overhead %.2f%%)",
			cfgName, res.SpeedHz/1e3, res.PacketUtilation, res.Fusion.FusionRatio(),
			res.CommOverheadShare*100)
	}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] <= speeds[i-1] {
			t.Errorf("level %d (%.1f KHz) not faster than level %d (%.1f KHz)",
				i, speeds[i]/1e3, i-1, speeds[i-1]/1e3)
		}
	}
	// Full-stack speedup over baseline should be in the paper's 74-80×
	// territory (allowing a generous band for workload scaling).
	total := speeds[3] / speeds[0]
	if total < 20 || total > 300 {
		t.Errorf("EBINSD/Z speedup = %.1f×, expected the paper's order of magnitude (~80×)", total)
	}
}

// TestInjectedBugDetectedAndReplayed checks the Squash+Replay loop: a bug
// detected on a fused event must be localized to the exact instruction by
// reprocessing the buffered unfused events.
func TestInjectedBugDetectedAndReplayed(t *testing.T) {
	count := 0
	hooks := arch.Hooks{AfterExec: func(m *arch.Machine, ex *arch.Exec) {
		if ex.WroteInt && !ex.MMIO && ex.Wdest == 5 {
			count++
			if count == 500 {
				m.State.GPR[5] ^= 0x4
				ex.Wdata ^= 0x4
			}
		}
	}}
	opt, _ := ParseConfig("EBINSD")
	res := run(t, Params{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: opt,
		Workload: scaled(workload.LinuxBoot(), 60_000), Seed: 3, Hooks: hooks,
	})
	if res.Mismatch == nil {
		t.Fatal("injected bug not detected under EBINSD")
	}
	if res.Replay == nil {
		t.Fatal("no replay report produced")
	}
	if res.Replay.Detailed == nil {
		t.Fatalf("replay did not localize the bug:\n%s", res.Replay)
	}
	if res.Replay.Detailed.Fused {
		t.Error("replay result still fused-level")
	}
	t.Logf("replay localized: %v (replayed %d events)", res.Replay.Detailed, res.Replay.Replayed)

	// The same bug must also be caught by the baseline config.
	count = 0
	optZ, _ := ParseConfig("Z")
	resZ := run(t, Params{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: optZ,
		Workload: scaled(workload.LinuxBoot(), 60_000), Seed: 3, Hooks: hooks,
	})
	if resZ.Mismatch == nil {
		t.Fatal("injected bug not detected under Z")
	}
}

// TestOrderCoupledAblation: order-coupled fusion must show more fusion
// breaks and a lower fusion ratio on an NDE-heavy workload.
func TestOrderCoupledAblation(t *testing.T) {
	base := Params{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
		Workload: scaled(workload.LinuxBoot(), 25_000), Seed: 7,
	}
	opt, _ := ParseConfig("EBINSD")
	base.Opt = opt
	decoupled := run(t, base)

	base.Opt.CoupleOrder = true
	coupled := run(t, base)

	if coupled.Fusion.Breaks == 0 {
		t.Error("order-coupled fusion recorded no breaks on an NDE-heavy workload")
	}
	if decoupled.Fusion.FusionRatio() <= coupled.Fusion.FusionRatio() {
		t.Errorf("decoupled fusion ratio %.1f not better than coupled %.1f",
			decoupled.Fusion.FusionRatio(), coupled.Fusion.FusionRatio())
	}
	// On this platform both variants are DUT-clock-bound, so the win shows
	// as reduced data volume (the paper's "less data transmitted").
	if decoupled.WireBytes >= coupled.WireBytes {
		t.Errorf("order decoupling did not reduce data volume: %d vs %d bytes",
			decoupled.WireBytes, coupled.WireBytes)
	}
	if decoupled.SpeedHz < coupled.SpeedHz*0.99 {
		t.Errorf("order decoupling slower: %.3f vs %.3f KHz",
			decoupled.SpeedHz/1e3, coupled.SpeedHz/1e3)
	}
	t.Logf("fusion ratio: decoupled %.1f vs coupled %.1f (breaks %d)",
		decoupled.Fusion.FusionRatio(), coupled.Fusion.FusionRatio(), coupled.Fusion.Breaks)
}

// TestFixedOffsetAblation: fixed-offset packing must need more transfers
// than tight packing for the same run.
func TestFixedOffsetAblation(t *testing.T) {
	base := Params{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
		Workload: scaled(workload.LinuxBoot(), 25_000), Seed: 7,
	}
	opt, _ := ParseConfig("EB")
	base.Opt = opt
	tight := run(t, base)

	base.Opt.FixedOffset = true
	fixed := run(t, base)

	if fixed.Mismatch != nil {
		t.Fatalf("fixed-offset run mismatch: %v", fixed.Mismatch)
	}
	ratio := float64(fixed.Invokes) / float64(tight.Invokes)
	if ratio < 1.3 {
		t.Errorf("fixed-offset invokes only %.2f× tight packing, paper reports ~1.67×", ratio)
	}
	t.Logf("communication ratio fixed/tight = %.2f×", ratio)
}

func TestVerilatorPlatform(t *testing.T) {
	optZ, _ := ParseConfig("Z")
	res := run(t, Params{
		DUT: dut.XiangShanDefault(), Platform: platform.Verilator(16), Opt: optZ,
		Workload: scaled(workload.Microbench(), 10_000), Seed: 5,
	})
	if res.Mismatch != nil {
		t.Fatalf("verilator run mismatch: %v", res.Mismatch)
	}
	if res.SpeedHz < 1e3 || res.SpeedHz > 10e3 {
		t.Errorf("16-thread Verilator on XiangShan = %.1f KHz, want ~4 KHz", res.SpeedHz/1e3)
	}
}
