//go:build race

package cosim

// raceEnabled reports whether this test binary runs under the race
// detector, so the longest sweeps can trade exhaustiveness for fitting the
// package's race-mode time budget.
const raceEnabled = true
