package cosim

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/workload"
)

// benchRemoteLoopback measures a full networked verification session —
// dial, handshake, framed data stream under the server's token window,
// checking in the difftestd session, verdict — against a loopback Unix
// socket. benchjson's remote area tracks it in BENCH_remote.json.
func benchRemoteLoopback(b *testing.B, cfg transport.ServerConfig, instrs uint64) {
	_, spec := startLoopbackServer(b, cfg)
	p := remoteParams("EBINSD", spec)
	p.Workload = scaled(workload.LinuxBoot(), instrs)
	b.ReportAllocs()
	b.ResetTimer()
	var got uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Mismatch != nil {
			b.Fatalf("mismatch: %v", res.Mismatch)
		}
		got = res.Instrs
	}
	b.ReportMetric(float64(got)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkRemoteLoopbackSession is the steady-state number: the default
// token window keeps the link streaming, so per-session cost amortizes over
// the workload and throughput approaches the executed in-process path.
func BenchmarkRemoteLoopbackSession(b *testing.B) {
	benchRemoteLoopback(b, transport.ServerConfig{}, 10_000)
}

// BenchmarkRemoteLoopbackRTT pins the server's credit window to one token,
// forcing a full send→credit round trip per data frame — the worst-case
// flow-control RTT the paper's token-managed buffering exists to hide. The
// gap between this and BenchmarkRemoteLoopbackSession is what the window
// buys.
func BenchmarkRemoteLoopbackRTT(b *testing.B) {
	benchRemoteLoopback(b, transport.ServerConfig{Window: 1}, 2_000)
}
