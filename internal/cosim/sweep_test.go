package cosim

import (
	"testing"

	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestSeedSweepNoSpuriousMismatch stress-tests the full pipeline: across
// many workload seeds and profiles, the fully fused configuration must never
// report a divergence on a bug-free DUT. This is the property the paper's
// six months of XiangShan deployment rests on.
func TestSeedSweepNoSpuriousMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is long")
	}
	opt, _ := ParseConfig("EBINSD")
	profiles := workload.Profiles()
	for seed := int64(100); seed < 112; seed++ {
		prof := profiles[int(seed)%len(profiles)]
		prof.TargetInstrs = 15_000
		res, err := Run(Params{
			DUT: dut.XiangShanDefault(), Platform: platform.FPGA(),
			Opt: opt, Workload: prof, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, prof.Name, err)
		}
		if res.Mismatch != nil {
			t.Fatalf("seed %d (%s): spurious mismatch: %v", seed, prof.Name, res.Mismatch)
		}
		if !res.Finished || res.TrapCode != 0 {
			t.Fatalf("seed %d (%s): bad verdict", seed, prof.Name)
		}
	}
}

// TestSeedSweepDualCore repeats the sweep on the dual-core DUT, where
// per-core sequence spaces, fusers, and checkers must stay independent.
func TestSeedSweepDualCore(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is long")
	}
	opt, _ := ParseConfig("EBINSD")
	for seed := int64(200); seed < 206; seed++ {
		prof := workload.LinuxBoot()
		prof.TargetInstrs = 12_000
		res, err := Run(Params{
			DUT: dut.XiangShanDefaultDual(), Platform: platform.Palladium(),
			Opt: opt, Workload: prof, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Mismatch != nil {
			t.Fatalf("seed %d: spurious dual-core mismatch: %v", seed, res.Mismatch)
		}
	}
}
