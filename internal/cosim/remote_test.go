package cosim

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/event"
	"repro/internal/transport"
	"repro/internal/workload"
)

// startLoopbackServer runs a difftestd-equivalent server (the production
// cosim.NewSession wired into transport.Server) on a Unix socket in the
// test's temp dir, returning the server and its dial spec. testing.TB so
// the remote loopback benchmarks share it.
func startLoopbackServer(t testing.TB, cfg transport.ServerConfig) (*transport.Server, string) {
	t.Helper()
	cfg.NewSession = NewSession
	srv := transport.NewServer(cfg)
	spec := "unix:" + filepath.Join(t.TempDir(), "difftestd.sock")
	l, err := transport.Listen(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
		<-done
	})
	return srv, spec
}

// remoteParams is executedParams pointed at a loopback server.
func remoteParams(cfg, addr string) Params {
	p := executedParams(cfg, true)
	p.RemoteAddr = addr
	return p
}

// TestLoopbackCleanAndBugSessions is the integration gate from the issue:
// one clean session and one injected-bug session run concurrently against a
// single server over a Unix socket; the clean one must finish, the buggy one
// must carry the checker's diagnosis back, and the buffer pool must balance
// across both ends (client and server live in this one process, so a single
// PoolStats delta covers both sides of the wire).
func TestLoopbackCleanAndBugSessions(t *testing.T) {
	srv, spec := startLoopbackServer(t, transport.ServerConfig{})
	gets0, puts0 := event.PoolStats()

	var wg sync.WaitGroup
	var clean, buggy *Result
	var cleanErr, buggyErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := remoteParams("EBINSD", spec)
		clean, cleanErr = Run(p)
	}()
	go func() {
		defer wg.Done()
		b, ok := bugs.ByID("store-byte-drop")
		if !ok {
			buggyErr = errBugMissing
			return
		}
		p := remoteParams("EBINSD", spec)
		p.Workload = scaled(workload.LinuxBoot(), 40_000)
		p.Seed = 3
		p.Hooks = b.Hooks(0)
		buggy, buggyErr = Run(p)
	}()
	wg.Wait()

	if cleanErr != nil {
		t.Fatalf("clean session: %v", cleanErr)
	}
	if buggyErr != nil {
		t.Fatalf("bug session: %v", buggyErr)
	}
	if !clean.Finished || clean.Mismatch != nil {
		t.Errorf("clean session: finished=%v mismatch=%v", clean.Finished, clean.Mismatch)
	}
	if buggy.Mismatch == nil {
		t.Error("injected bug escaped over the loopback")
	} else if buggy.Mismatch.Detail == "" {
		t.Error("remote mismatch verdict lost the checker's diagnosis")
	}

	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Errorf("pool imbalance across both wire ends: %d gets vs %d puts",
			gets1-gets0, puts1-puts0)
	}
	served, mismatches, _ := srv.Stats()
	if served < 1 || mismatches != 1 {
		t.Errorf("server stats: served=%d mismatches=%d", served, mismatches)
	}
}

var errBugMissing = errors.New("bug store-byte-drop not in the library")

// TestLoopbackConcurrentSessions drives at least four concurrent DUT
// sessions through one server — the multi-session acceptance criterion —
// with per-session verdicts and a balanced pool at the end.
func TestLoopbackConcurrentSessions(t *testing.T) {
	const sessions = 5
	srv, spec := startLoopbackServer(t, transport.ServerConfig{Window: 8})
	gets0, puts0 := event.PoolStats()

	var wg sync.WaitGroup
	results := make([]*Result, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := remoteParams([]string{"Z", "EB", "EBIN", "EBINSD", "EBINSD"}[i], spec)
			p.Seed = int64(7 + i) // distinct programs per session
			results[i], errs[i] = Run(p)
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !results[i].Finished || results[i].Mismatch != nil {
			t.Errorf("session %d: finished=%v mismatch=%v",
				i, results[i].Finished, results[i].Mismatch)
		}
		if results[i].Exec == nil {
			t.Errorf("session %d: no pipeline metrics from the remote run", i)
		}
	}

	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Errorf("pool imbalance after %d sessions: %d gets vs %d puts",
			sessions, gets1-gets0, puts1-puts0)
	}
	served, _, _ := srv.Stats()
	if served != sessions {
		t.Errorf("server served %d sessions, want %d", served, sessions)
	}
}

// TestLoopbackTokenWindowStalls pins the backpressure measurement: with a
// one-token window every in-flight frame must wait for its credit, so a
// multi-packet stream necessarily records token stalls.
func TestLoopbackTokenWindowStalls(t *testing.T) {
	_, spec := startLoopbackServer(t, transport.ServerConfig{Window: 1})
	p := remoteParams("EB", spec)
	res := run(t, p)
	if !res.Finished {
		t.Fatal("session did not finish")
	}
	if res.Exec == nil || res.Exec.TokenStalls == 0 {
		t.Fatalf("1-token window recorded no stalls (metrics %+v)", res.Exec)
	}
}

// TestRemoteBugEquivalence is the networked half of the verdict-equivalence
// gate: for every bug in the library, a loopback remote run must agree with
// the in-process executed pipeline — same detection outcome, and on
// detection the same instruction (core, kind, seq, pc) and the same
// diagnosis text, since the wire carries the checker's full report.
func TestRemoteBugEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bug sweep is long")
	}
	_, spec := startLoopbackServer(t, transport.ServerConfig{})
	for _, cfg := range []string{"Z", "EBINSD"} {
		for _, b := range bugs.Library() {
			b := b
			cfg := cfg
			t.Run(cfg+"/"+b.ID, func(t *testing.T) {
				mk := func(remote bool) *Result {
					p := executedParams(cfg, true)
					if remote {
						p.RemoteAddr = spec
					}
					p.Workload = scaled(workload.LinuxBoot(), 40_000)
					p.Seed = 3
					p.Hooks = b.Hooks(0)
					return run(t, p)
				}
				local := mk(false)
				rem := mk(true)
				if (local.Mismatch == nil) != (rem.Mismatch == nil) {
					t.Fatalf("detection disagrees: in-process=%v remote=%v",
						local.Mismatch, rem.Mismatch)
				}
				if local.Mismatch == nil {
					t.Skipf("bug %s escapes this workload in both modes", b.ID)
				}
				lm, rm := local.Mismatch, rem.Mismatch
				if lm.Core != rm.Core || lm.Kind != rm.Kind || lm.Seq != rm.Seq || lm.PC != rm.PC {
					t.Errorf("mismatch identity differs:\n in-process: %v\n remote    : %v", lm, rm)
				}
				if lm.Detail != rm.Detail {
					t.Errorf("diagnosis differs:\n in-process: %s\n remote    : %s", lm.Detail, rm.Detail)
				}
			})
		}
	}
}

// TestRemoteCancellation pins the cooperative-cancel satellite: a cancelled
// context stops a remote run mid-stream, the run surfaces the context error,
// and every pooled buffer drains through the release paths.
func TestRemoteCancellation(t *testing.T) {
	_, spec := startLoopbackServer(t, transport.ServerConfig{})
	gets0, puts0 := event.PoolStats()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must stop on its first poll
	p := remoteParams("EBINSD", spec)
	p.Ctx = ctx
	if _, err := Run(p); err == nil {
		t.Fatal("cancelled run reported success")
	}

	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Errorf("pool imbalance after cancellation: %d gets vs %d puts",
			gets1-gets0, puts1-puts0)
	}
}
