package cosim

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/transport"
	"repro/internal/workload"

	// Register the shm:// scheme: any RemoteAddr a run is pointed at may
	// name a shared-memory rendezvous, so the same-host fast path is always
	// dialable wherever a socket spec is.
	_ "repro/internal/transport/shmring"
)

// Remote co-simulation (Params.RemoteAddr): the hardware side — DUT monitor,
// acceleration unit, modeled link accounting — runs locally exactly as in
// the executed pipeline, but the software side lives in a difftestd server
// across a real socket. The pipeline's consumer stage becomes the network
// send under the server's token window, so Result.Exec measures networked
// wall-clock throughput (ExecutedHz) and the token-window stalls surface as
// pipeline.Metrics.TokenStalls.
//
// The mismatch verdict comes back as a typed report frame carrying the
// checker's full diagnosis; the Replay round trip is skipped (the replay
// buffer is client-side hardware, the checker server-side), so remote runs
// report Mismatch but never Replay.

// helloFor builds the session handshake from run parameters.
func (r *runner) helloFor() transport.Hello {
	h := transport.Hello{
		DUT:          r.p.DUT.Name,
		Platform:     r.p.Platform.Name,
		Config:       r.opt.Name(),
		CoupleOrder:  r.opt.CoupleOrder,
		FixedOffset:  r.opt.FixedOffset,
		MaxFuse:      r.opt.MaxFuse,
		Workload:     r.p.Workload.Name,
		TargetInstrs: r.p.Workload.TargetInstrs,
		Seed:         r.p.Seed,
		Tenant:       r.p.Tenant,
	}
	bi, builtin := workload.ByName(r.p.Workload.Name)
	bi.TargetInstrs = r.p.Workload.TargetInstrs
	if !builtin || bi != r.p.Workload {
		// Not a profile the server can rebuild from (name, TargetInstrs) —
		// a fuzzer-mutated parameter vector: ship it whole in the handshake.
		wl := r.p.Workload
		h.Profile = &wl
	}
	if r.p.Tuning != nil {
		h.WindowRequest = r.p.Tuning.Window
	}
	return h
}

// loopRemote drives the concurrent pipeline with the networked consumer:
// the producer stage is the local hardware side, the sink streams each
// transfer to the server and stops when a verdict frame arrives.
func (r *runner) loopRemote() error {
	cl, err := transport.Dial(r.p.RemoteAddr, r.helloFor(), r.p.RemoteCfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	// Snapshot the link's recovery history on the way out — even when the
	// run fails (a degraded rerun reports how many resumes the session
	// survived before the budget ran out), and again after Finish, which
	// can itself trigger resumes while awaiting the verdict.
	defer func() {
		r.remoteReconnects = cl.Reconnects()
		r.remoteReplayed = cl.ReplayedFrames()
		r.remoteMigrations = cl.Migrations()
		if r.res.Exec != nil {
			r.res.Exec.Reconnects = r.remoteReconnects
			r.res.Exec.ReplayedFrames = r.remoteReplayed
			r.res.Exec.Migrations = r.remoteMigrations
		}
	}()

	prod := &hwProducer{r: r}
	sink := func(x xfer) (bool, error) {
		if x.pkt.Buf != nil {
			return cl.SendPacket(x.pkt)
		}
		return cl.SendItems(x.items)
	}
	m, err := pipeline.Run(prod.next, sink, pipeline.Config{
		NonBlocking: r.opt.NonBlocking,
		QueueDepth:  r.p.Platform.QueueDepth,
	}, dropXfer)
	prod.releasePending()
	if err != nil {
		return err
	}
	m.TokenStalls = cl.Stalls()
	m.Reconnects = cl.Reconnects()
	m.ReplayedFrames = cl.ReplayedFrames()
	m.Migrations = cl.Migrations()
	ls := cl.LinkStats()
	m.RingParks = ls.WriterParks + ls.ReaderParks
	r.res.Exec = m

	v, err := cl.Finish()
	if err != nil {
		return err
	}
	r.res.Coverage = v.Coverage
	if v.Mismatch != nil {
		// Remote diagnosis, no replay (see package comment above).
		r.res.Mismatch = v.Mismatch.ToChecker()
		return nil
	}
	if !prod.finished {
		return fmt.Errorf("cosim: %s did not finish within %d cycles: %w", r.p.DUT.Name, r.p.MaxCycles, ErrCycleLimit)
	}
	if !v.Finished {
		return fmt.Errorf("cosim: server closed session %d without finishing", cl.Session())
	}
	r.res.Finished = true
	r.res.TrapCode = v.TrapCode
	return nil
}
