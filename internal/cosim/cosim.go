// Package cosim orchestrates hardware-accelerated co-simulation: it wires
// the DUT monitor through the acceleration unit (Squash fusion, Batch
// packing), the non-blocking communication unit, the software unpacker and
// reorderer, the ISA checker, and the Replay debugging unit — the complete
// DiffTest-H framework of paper Figure 3/12.
//
// The four optimization levels match the paper's artifact configurations:
//
//	Z       baseline: one blocking transfer per verification event
//	EB      +Batch:   tight packing into fixed-size packets
//	EBIN    +NonBlock: hardware-software parallelism
//	EBINSD  +Squash:  order-decoupled fusion and differencing
package cosim

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/checker"
	"repro/internal/comm"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/loggp"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/squash"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Options selects the communication optimizations.
type Options struct {
	Batch       bool
	NonBlocking bool
	Squash      bool

	// Executed runs the co-simulation as a real concurrent pipeline
	// (internal/pipeline): DUT producer, link, and checker consumer in
	// separate goroutines, with NonBlocking mapped to a bounded in-flight
	// queue and blocking mode to a per-transfer handshake. The analytic
	// (modeled) time accounting still runs; Result.Exec additionally
	// reports the measured wall-clock overlap.
	Executed bool

	// Ablations.
	CoupleOrder bool // order-coupled fusion (existing schemes)
	FixedOffset bool // fixed-offset packing instead of tight packing
	MaxFuse     int  // fusion window size (0 = default 64)
}

// Named configurations per the paper's artifact appendix (§A.5.2).
var namedConfigs = map[string]Options{
	"Z":      {},
	"EB":     {Batch: true},
	"EBIN":   {Batch: true, NonBlocking: true},
	"EBINSD": {Batch: true, NonBlocking: true, Squash: true},
}

// ParseConfig resolves a DIFF_CONFIG name (Z, EB, EBIN, EBINSD).
func ParseConfig(name string) (Options, error) {
	o, ok := namedConfigs[strings.ToUpper(name)]
	if !ok {
		return Options{}, fmt.Errorf("cosim: unknown config %q (want Z, EB, EBIN, or EBINSD)", name)
	}
	return o, nil
}

// Name returns the artifact-style configuration name.
func (o Options) Name() string {
	switch {
	case o.Squash:
		return "EBINSD"
	case o.NonBlocking:
		return "EBIN"
	case o.Batch:
		return "EB"
	default:
		return "Z"
	}
}

// Params describes one co-simulation run.
type Params struct {
	DUT      dut.Config
	Platform platform.Platform
	Opt      Options
	Workload workload.Profile

	// Ctx, when set, cancels the run cooperatively: the cycle loop (and the
	// executed producer stage) checks it and aborts with ctx.Err(), so
	// pooled packet buffers drain through the same release paths a mismatch
	// stop uses. cmd/difftest wires SIGINT/SIGTERM here.
	Ctx context.Context

	// RemoteAddr, when non-empty, streams the hardware side to a difftestd
	// verification server at this address instead of checking in-process.
	// It accepts the unified transport spec forms — "tcp://host:port",
	// "unix:///path", "shm:///dir" (same-host shared-memory ring) — plus the
	// legacy "host:port" and "unix:<path>" shorthands. Remote runs are
	// always executed (concurrent pipeline); Result.Exec reports the
	// networked wall clock.
	RemoteAddr string
	// ShmLoopback, used by CompareModes only, adds a fourth pass per
	// configuration: an in-process difftestd served over a shared-memory
	// ring rendezvous, so the comparison table reports the same-host fast
	// path next to the modeled, executed, and (optionally) socket-remote
	// numbers without an external server.
	ShmLoopback bool
	// RemoteCfg tunes the networked client for RemoteAddr runs: session
	// resume, reconnect budget, backoff, stall detection. The zero value
	// gives a non-resuming client (protocol v1 behavior): any connection
	// loss ends the run with an error.
	RemoteCfg transport.ClientConfig
	// Tenant names the accounting principal for RemoteAddr runs. A fleet
	// router enforces per-tenant admission quotas and fair-share token
	// windows from it; a bare difftestd ignores it.
	Tenant string

	// Seed controls workload generation (DUT timing has its own seed).
	Seed int64
	// MaxCycles aborts runaway simulations (0 = 100M).
	MaxCycles uint64
	// Hooks injects bugs into the DUT.
	Hooks arch.Hooks
	// ReplayBufCap sizes the hardware replay buffer (0 = 1<<16 records).
	ReplayBufCap int
	// DisableReplay turns off replay-on-mismatch (for ablation).
	DisableReplay bool
	// Trace, when set, receives every monitor cycle (tuning toolkit §5:
	// dump once, re-drive the verification logic without the DUT).
	Trace *trace.Writer

	// Tuning, when set, overrides the platform's fixed pipeline constants:
	// QueueDepth and PacketBytes replace the Platform values, and Window is
	// requested from a remote server via Hello.WindowRequest. The
	// auto-tuner (AutoTune) sets it per round; fixed-constant runs leave it
	// nil. Zero fields keep the platform value.
	Tuning *pipeline.Knobs
}

// Result reports a run's outcome and performance accounting.
type Result struct {
	Config   string
	DUTName  string
	Platform string

	Finished bool
	TrapCode uint64
	Mismatch *checker.Mismatch
	Replay   *replay.Report

	// Coverage is the checker's semantic coverage signal for this run — the
	// fuzzer's feedback channel. Local runs snapshot it from the in-process
	// checker; remote runs receive it in the closing verdict (nil when the
	// server predates the field).
	Coverage *checker.Coverage

	// Degraded marks a remote run whose session was lost beyond the retry
	// budget and was redone with in-process checking: the verdict below is
	// authoritative (the DUT and workload are deterministic), but no
	// networked throughput was measured.
	Degraded bool

	Cycles uint64
	Instrs uint64

	// Simulated-time accounting.
	SimSeconds float64 // total co-simulation time
	SpeedHz    float64 // Cycles / SimSeconds
	DUTOnlyHz  float64 // the platform's DUT-only speed for this design

	// Communication accounting.
	Invokes           uint64
	WireBytes         uint64
	SWSeconds         float64
	Breakdown         loggp.Breakdown
	CommOverheadShare float64 // fraction of SimSeconds beyond pure DUT time

	// Monitor traffic (pre-optimization, Table 4).
	MonitorEvents   uint64
	MonitorBytes    uint64
	EventsPerCycle  float64
	BytesPerCycle   float64
	BytesPerInstr   float64
	PacketUtilation float64

	// Squash counters (§5 tuning toolkit).
	Fusion squash.Stats

	// Executed-pipeline measurements (Options.Executed only): real
	// wall-clock concurrency of the producer/link/consumer goroutines.
	Exec *pipeline.Metrics
	// ExecutedHz is Cycles divided by measured wall-clock time — the
	// host-side throughput of the executed pipeline (not simulated time).
	ExecutedHz float64
}

// Speedup returns this result's speed relative to a baseline.
func (r *Result) Speedup(base *Result) float64 {
	if base == nil || base.SpeedHz == 0 {
		return 0
	}
	return r.SpeedHz / base.SpeedHz
}

// ErrCycleLimit is wrapped by the error a run returns when it reaches
// Params.MaxCycles without finishing. Callers that treat runaway workloads as
// data rather than failures — the fuzzer counts them as hung evaluations —
// test for it with errors.Is.
var ErrCycleLimit = errors.New("cycle limit exceeded")

// Run executes one co-simulation end to end.
func Run(p Params) (*Result, error) {
	if p.MaxCycles == 0 {
		p.MaxCycles = 100_000_000
	}
	if p.Tuning != nil {
		// Params carries the platform by value, so the override is local to
		// this run.
		if p.Tuning.QueueDepth > 0 {
			p.Platform.QueueDepth = p.Tuning.QueueDepth
		}
		if p.Tuning.PacketBytes > 0 {
			p.Platform.PacketBytes = p.Tuning.PacketBytes
		}
	}
	opt := p.Opt
	if opt.FixedOffset && p.DUT.Cores > 1 {
		return nil, fmt.Errorf("cosim: fixed-offset packing supports a single core")
	}

	if err := p.Workload.Validate(); err != nil {
		return nil, fmt.Errorf("cosim: %w", err)
	}
	prog := workload.Generate(p.Workload, p.DUT.Cores, p.Seed)
	d := dut.New(p.DUT, prog.Image, prog.Entries, p.Hooks)
	chk := checker.New(prog.Image, prog.Entries, p.DUT.Cores)
	enabled := p.DUT.EnabledKinds()

	dutHz := p.Platform.DUTOnlyHz(p.DUT.GatesM)
	link := comm.NewLink(p.Platform, dutHz, opt.NonBlocking)

	res := &Result{
		Config:   opt.Name(),
		DUTName:  p.DUT.Name,
		Platform: p.Platform.Name,
	}

	r := &runner{p: p, opt: opt, d: d, chk: chk, link: link, res: res, enabled: enabled}
	r.setup()
	loop := r.loop
	switch {
	case p.RemoteAddr != "":
		loop = r.loopRemote
	case opt.Executed:
		loop = r.loopExecuted
	}
	if err := loop(); err != nil {
		if p.RemoteAddr != "" && errors.Is(err, transport.ErrSessionLost) {
			return degrade(p, r, err)
		}
		return nil, err
	}
	r.finish(dutHz)
	return res, nil
}

// degrade reruns a remote co-simulation in-process after its session was
// lost beyond recovery. The workload generator and DUT are deterministic
// functions of Params, so the rerun reaches the identical verdict the
// networked session would have — only the networked throughput measurement
// is lost. The failed attempt's reconnect accounting is carried over so the
// comparison table shows what the link went through before giving up.
func degrade(p Params, failed *runner, cause error) (*Result, error) {
	fp := p
	fp.RemoteAddr = ""
	res, err := Run(fp)
	if err != nil {
		return nil, fmt.Errorf("cosim: in-process rerun after session loss (%v): %w", cause, err)
	}
	res.Degraded = true
	if res.Exec == nil {
		res.Exec = &pipeline.Metrics{}
	}
	res.Exec.DegradedRuns = 1
	res.Exec.Reconnects = failed.remoteReconnects
	res.Exec.ReplayedFrames = failed.remoteReplayed
	res.Exec.Migrations = failed.remoteMigrations
	return res, nil
}

type runner struct {
	p       Params
	opt     Options
	d       *dut.DUT
	chk     *checker.Checker
	link    *comm.Link
	res     *Result
	enabled [event.NumKinds]bool

	fusers []*squash.Fuser
	desq   *squash.Desquasher
	rbuf   *replay.Buffer
	rctls  []*replay.Controller

	packer   *batch.Packer
	unpacker *batch.Unpacker
	fixed    *batch.FixedPacker
	fixedRx  []byte

	// Remote-client accounting snapshotted by loopRemote even when the run
	// fails, so a degraded rerun can report the failed link's history.
	remoteReconnects uint64
	remoteReplayed   uint64
	remoteMigrations uint64

	stop bool
}

func (r *runner) setup() {
	if r.opt.Squash {
		scfg := squash.DefaultConfig()
		scfg.CoupleOrder = r.opt.CoupleOrder
		if r.opt.MaxFuse > 0 {
			scfg.MaxFuse = r.opt.MaxFuse
		}
		for i := 0; i < r.p.DUT.Cores; i++ {
			r.fusers = append(r.fusers, squash.NewFuser(scfg, uint8(i)))
		}
		r.rbuf = replay.NewBuffer(r.p.ReplayBufCap)
		r.desq = squash.NewDesquasher(r.chk, r.enabled)
		for _, cc := range r.chk.Cores {
			r.rctls = append(r.rctls, replay.NewController(cc, r.rbuf))
		}
		r.desq.OnWindow = func(core uint8, fc wire.FusedCommit) {
			r.rctls[core].Checkpoint(fc.StartToken)
		}
	}
	if r.opt.Batch {
		if r.opt.FixedOffset {
			layout := batch.NewFixedLayout(r.p.DUT.EventKinds, maxInt(1, r.p.DUT.BurstMax))
			r.fixed = batch.NewFixedPacker(layout, r.p.Platform.PacketBytes)
		} else {
			r.packer = batch.NewPacker(r.p.Platform.PacketBytes)
			r.unpacker = &batch.Unpacker{}
		}
	}
}

// cancelled reports the run's cooperative-cancellation state (Params.Ctx):
// nil while the run may continue, ctx.Err() once cancelled. Both the
// sequential cycle loop and the executed producer stage poll it, so an
// interrupt drains pooled packet buffers through the normal release paths.
func (r *runner) cancelled() error {
	if r.p.Ctx == nil {
		return nil
	}
	select {
	case <-r.p.Ctx.Done():
		return r.p.Ctx.Err()
	default:
		return nil
	}
}

func (r *runner) loop() error {
	for cycle := uint64(0); cycle < r.p.MaxCycles && !r.stop; cycle++ {
		if err := r.cancelled(); err != nil {
			return err
		}
		recs, done := r.d.StepCycle()
		r.link.AdvanceCycle()
		if r.p.Trace != nil {
			if err := r.p.Trace.WriteCycle(r.d.CycleCount, recs); err != nil {
				return err
			}
		}

		items, err := r.hardwareSide(recs)
		if err != nil {
			return err
		}
		if err := r.transport(items, false); err != nil {
			return err
		}
		if done {
			if err := r.flushAll(); err != nil {
				return err
			}
			r.res.Finished = true
			_, r.res.TrapCode = r.chk.Finished()
			return nil
		}
	}
	if !r.stop {
		return fmt.Errorf("cosim: %s did not finish within %d cycles: %w", r.p.DUT.Name, r.p.MaxCycles, ErrCycleLimit)
	}
	return nil
}

// hardwareSide applies the acceleration unit: Squash fusion or plain item
// conversion, with replay buffering of the original unfused events.
func (r *runner) hardwareSide(recs []event.Record) ([]wire.Item, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	if !r.opt.Squash {
		return wire.FromRecords(recs), nil
	}
	startTok := r.rbuf.Add(recs)
	// Split per core, preserving order and token alignment.
	var items []wire.Item
	for core := 0; core < r.p.DUT.Cores; core++ {
		var coreRecs []event.Record
		var toks []uint64
		for i, rec := range recs {
			if int(rec.Core) == core {
				coreRecs = append(coreRecs, rec)
				toks = append(toks, startTok+uint64(i))
			}
		}
		if len(coreRecs) > 0 {
			items = append(items, r.fusers[core].Cycle(coreRecs, toks)...)
		}
	}
	return items, nil
}

// transport moves items across the link per the configured mode and hands
// them to the software side. Once a mismatch stops the run, nothing further
// is transferred or checked: the co-simulation aborts at the first
// divergence, like the lockstep path and the executed pipeline.
func (r *runner) transport(items []wire.Item, flush bool) error {
	if r.stop {
		return nil
	}
	switch {
	case r.opt.Batch && r.opt.FixedOffset:
		pkts, err := r.fixed.AddCycle(items)
		if err != nil {
			releaseAll(pkts)
			return err
		}
		if flush {
			pkts = append(pkts, r.fixed.Flush()...)
		}
		for i, pkt := range pkts {
			if r.stop {
				// The run already diverged: the unsent packets still own
				// pooled buffers and must go back.
				releaseAll(pkts[i:])
				return nil
			}
			r.link.Send(len(pkt.Buf), pkt.Events, pkt.Instrs)
			if err := r.fixedReceive(pkt); err != nil {
				releaseAll(pkts[i+1:])
				return err
			}
		}
	case r.opt.Batch:
		pkts := r.packer.AddCycle(items)
		if flush {
			pkts = append(pkts, r.packer.Flush()...)
		}
		for i, pkt := range pkts {
			if r.stop {
				// The run already diverged: the unsent packets still own
				// pooled buffers and must go back.
				releaseAll(pkts[i:])
				return nil
			}
			r.link.Send(len(pkt.Buf), pkt.Events, pkt.Instrs)
			rx, err := r.unpacker.AddPacket(pkt.Buf)
			// The unpacker copied every payload into its own arena, so the
			// packet buffer can go back to the pool immediately.
			pkt.Release()
			if err != nil {
				releaseAll(pkts[i+1:])
				return err
			}
			if err := r.software(rx); err != nil {
				releaseAll(pkts[i+1:])
				return err
			}
		}
		if flush && !r.stop {
			if err := r.software(r.unpacker.Flush()); err != nil {
				return err
			}
		}
	default:
		// Per-event transfers (one DPI-C call per event, paper §2.2).
		for _, it := range items {
			if r.stop {
				return nil
			}
			r.link.Send(it.BaselineWireSize(), 1, it.InstrCount())
			if err := r.software([]wire.Item{it}); err != nil {
				return err
			}
		}
	}
	return nil
}

// releaseAll returns every packet's pooled buffer. Used on early exits
// (mismatch stop, decode error) where packed packets were never handed to
// the software side.
func releaseAll(pkts []batch.Packet) {
	for i := range pkts {
		pkts[i].Release()
	}
}

func (r *runner) fixedReceive(pkt batch.Packet) error {
	frames, err := r.fixedFrames(pkt)
	if err != nil {
		return err
	}
	for _, items := range frames {
		if r.stop {
			return nil
		}
		if err := r.software(items); err != nil {
			return err
		}
	}
	return nil
}

// fixedFrames appends one fixed-offset packet to the reassembly buffer and
// returns the frames it completes.
func (r *runner) fixedFrames(pkt batch.Packet) ([][]wire.Item, error) {
	r.fixedRx = append(r.fixedRx, pkt.Buf[:pkt.Used]...)
	pkt.Release() // reassembly copied the bytes; recycle the packet buffer
	frameSize := r.fixed.Layout.FrameSize
	n := len(r.fixedRx) / frameSize * frameSize
	if n == 0 {
		return nil, nil
	}
	frames, err := batch.UnpackFixedStream(r.fixed.Layout, r.fixedRx[:n])
	if err != nil {
		return nil, err
	}
	r.fixedRx = append(r.fixedRx[:0], r.fixedRx[n:]...)
	return frames, nil
}

// checkItem runs one wire item through the software checking path — the
// Squash reorderer or the direct per-event checker.
func (r *runner) checkItem(it wire.Item) (*checker.Mismatch, error) {
	if r.opt.Squash {
		return r.desq.Process(it), nil
	}
	rec, err := wire.ToRecord(it)
	if err != nil {
		return nil, err
	}
	return r.chk.Process(rec), nil
}

// software runs the checker (directly or through the Squash reorderer) and
// triggers Replay on mismatch.
func (r *runner) software(items []wire.Item) error {
	for _, it := range items {
		m, err := r.checkItem(it)
		if err != nil {
			return err
		}
		if m != nil {
			r.onMismatch(m)
			return nil
		}
	}
	return nil
}

func (r *runner) onMismatch(m *checker.Mismatch) {
	r.res.Mismatch = m
	r.stop = true
	if r.opt.Squash && !r.p.DisableReplay && int(m.Core) < len(r.rctls) {
		// Replay round trip: notify hardware, retransmit the buffered
		// range, reprocess at instruction granularity (paper Fig. 11).
		rep := r.rctls[m.Core].Run(m)
		r.link.Send(rep.ReplayedBytes+64, rep.Replayed, 0)
		r.res.Replay = rep
	}
}

func (r *runner) flushAll() error {
	if r.opt.Squash {
		for _, f := range r.fusers {
			if err := r.transport(f.Flush(), false); err != nil {
				return err
			}
		}
	}
	if err := r.transport(nil, true); err != nil {
		return err
	}
	if r.opt.Squash && !r.stop {
		if m := r.desq.Flush(); m != nil {
			r.onMismatch(m)
		}
	}
	return nil
}

func (r *runner) finish(dutHz float64) {
	res, d, link := r.res, r.d, r.link
	res.Cycles = d.CycleCount
	res.Instrs = d.Instrs
	res.DUTOnlyHz = dutHz
	if r.p.RemoteAddr == "" {
		// In-process checking: snapshot the coverage signal directly. Remote
		// runs already copied it from the closing verdict in loopRemote.
		res.Coverage = r.chk.Coverage()
	}

	for _, n := range d.EventCount {
		res.MonitorEvents += n
	}
	res.MonitorBytes = d.EventBytes
	if d.CycleCount > 0 {
		res.EventsPerCycle = float64(res.MonitorEvents) / float64(d.CycleCount)
		res.BytesPerCycle = float64(res.MonitorBytes) / float64(d.CycleCount)
	}
	if d.Instrs > 0 {
		res.BytesPerInstr = float64(res.MonitorBytes) / float64(d.Instrs)
	}

	if r.p.Platform.IsSoftware() {
		// Same-process co-simulation (Verilator): no cross-platform link;
		// DiffTest costs a fixed efficiency factor.
		res.SimSeconds = float64(res.Cycles) / (dutHz * r.p.Platform.CosimEff)
	} else {
		res.SimSeconds = link.Drain()
	}
	if res.SimSeconds > 0 {
		res.SpeedHz = float64(res.Cycles) / res.SimSeconds
	}

	res.Invokes = link.Invokes
	res.WireBytes = link.Bytes
	res.SWSeconds = link.SWTime

	tsync := r.p.Platform.TSyncBlocking
	if r.opt.NonBlocking {
		tsync = r.p.Platform.TSyncNonBlock
	}
	res.Breakdown = loggp.Model(loggp.Inputs{
		Invokes: link.Invokes, Bytes: link.Bytes,
		TSync: tsync, BWBps: r.p.Platform.BandwidthBps, TSw: link.SWTime,
	})
	pureDUT := float64(res.Cycles) / dutHz
	if res.SimSeconds > 0 && !r.p.Platform.IsSoftware() {
		res.CommOverheadShare = (res.SimSeconds - pureDUT) / res.SimSeconds
		if res.CommOverheadShare < 0 {
			res.CommOverheadShare = 0
		}
	}
	if r.packer != nil {
		res.PacketUtilation = r.packer.Utilization()
	}
	if res.Exec != nil && res.Exec.Wall > 0 {
		res.ExecutedHz = float64(res.Cycles) / res.Exec.Wall.Seconds()
	}
	for _, f := range r.fusers {
		res.Fusion.Windows += f.Stats.Windows
		res.Fusion.FusedCommits += f.Stats.FusedCommits
		res.Fusion.Breaks += f.Stats.Breaks
		res.Fusion.NDEsAhead += f.Stats.NDEsAhead
		res.Fusion.Diffs += f.Stats.Diffs
		res.Fusion.DiffBytes += f.Stats.DiffBytes
		res.Fusion.RawState += f.Stats.RawState
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Summary renders the artifact-style one-line result.
func (r *Result) Summary() string {
	status := "HIT GOOD TRAP"
	switch {
	case r.Mismatch != nil:
		status = "MISMATCH: " + r.Mismatch.Error()
	case !r.Finished:
		status = "ABORTED"
	case r.TrapCode != 0:
		status = fmt.Sprintf("HIT BAD TRAP (code %d)", r.TrapCode)
	}
	if r.Degraded {
		status += " [degraded: remote session lost, checked in-process]"
	}
	return fmt.Sprintf("[%s/%s/%s] %s — Simulation speed: %.2f KHz (%d cycles, %d instrs)",
		r.DUTName, r.Platform, r.Config, status, r.SpeedHz/1e3, r.Cycles, r.Instrs)
}
