package cosim

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/pipeline"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestAutoTuneTunedNotWorseThanFixed is the acceptance gate for the tuner
// wiring: round 0 measures the fixed platform constants, so the reported
// best settings can never score below them.
func TestAutoTuneTunedNotWorseThanFixed(t *testing.T) {
	p := executedParams("EBIN", true)
	p.Workload = scaled(workload.LinuxBoot(), 8_000)
	rep, err := AutoTune(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 3 {
		t.Fatalf("ran %d rounds, want 3", len(rep.Rounds))
	}
	fixed := rep.FixedKnobs()
	if fixed.QueueDepth != p.Platform.QueueDepth || fixed.PacketBytes != p.Platform.PacketBytes {
		t.Fatalf("round 0 knobs %s are not the platform constants (%d/%d)",
			fixed, p.Platform.QueueDepth, p.Platform.PacketBytes)
	}
	if rep.BestScore < rep.FixedScore() || rep.Gain() < 1 {
		t.Fatalf("best %.0f instrs/s (round %d) below fixed %.0f — the round-0 guarantee broke",
			rep.BestScore, rep.BestRound, rep.FixedScore())
	}
	for i, r := range rep.Rounds {
		if r.Result == nil || r.Score <= 0 {
			t.Fatalf("round %d has no score: %+v", i, r)
		}
		if r.Decision.Reason == "" {
			t.Fatalf("round %d decision has no reason", i)
		}
	}
}

// TestAutoTuneSweepRemote drives the tuner over the networked path: every
// configuration against one loopback server, the token window steered per
// round via Hello.WindowRequest.
func TestAutoTuneSweepRemote(t *testing.T) {
	_, spec := startLoopbackServer(t, transport.ServerConfig{Window: 64})
	p := remoteParams("EB", spec)
	p.Workload = scaled(workload.LinuxBoot(), 5_000)
	reps, err := AutoTuneSweep(p, 2, []string{"EB", "EBINSD"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Config != "EB" || reps[1].Config != "EBINSD" {
		t.Fatalf("sweep configs wrong: %+v", reps)
	}
	for _, rep := range reps {
		if rep.Gain() < 1 {
			t.Fatalf("%s tuned below fixed: %+v", rep.Config, rep)
		}
	}
}

// TestAutoTuneRejectsMismatch: a buggy DUT stops runs early, which would
// poison throughput scores, so the tuner refuses.
func TestAutoTuneRejectsMismatch(t *testing.T) {
	b, ok := bugs.ByID("store-byte-drop")
	if !ok {
		t.Fatal("bug library lost store-byte-drop")
	}
	p := executedParams("EBINSD", true)
	p.Workload = scaled(workload.LinuxBoot(), 40_000)
	p.Seed = 3
	p.Hooks = b.Hooks(0)
	if _, err := AutoTune(p, 1); err == nil {
		t.Fatal("autotune accepted a mismatching workload")
	}
}

// TestTuningOverridesPlatform: Params.Tuning must replace the platform's
// fixed constants for the run.
func TestTuningOverridesPlatform(t *testing.T) {
	p := executedParams("EBIN", true)
	p.Workload = scaled(workload.LinuxBoot(), 4_000)
	// A queue bound of 1 forces near-lockstep pipelining; the run must still
	// verify cleanly and report the tightened queue in its metrics.
	p.Tuning = &pipeline.Knobs{QueueDepth: 1, PacketBytes: 2048}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("mismatch under tuned knobs: %v", res.Mismatch)
	}
	if res.Exec.QueuePeak > 1 {
		t.Fatalf("queue peak %d with QueueDepth tuned to 1", res.Exec.QueuePeak)
	}
}
