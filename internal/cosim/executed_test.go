package cosim

import (
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/bugs"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// executedParams builds one executed-mode run setup.
func executedParams(cfg string, executed bool) Params {
	opt, err := ParseConfig(cfg)
	if err != nil {
		panic(err)
	}
	opt.Executed = executed
	return Params{
		DUT: dut.XiangShanDefault(), Platform: platform.Palladium(), Opt: opt,
		Workload: scaled(workload.LinuxBoot(), 20_000), Seed: 7,
	}
}

// TestExecutedCleanAllConfigs: every configuration must finish cleanly in
// executed mode with the same verdict and cycle count as the modeled loop —
// the two loops consume the identical event stream.
func TestExecutedCleanAllConfigs(t *testing.T) {
	for _, cfg := range ConfigNames() {
		cfg := cfg
		t.Run(cfg, func(t *testing.T) {
			seq := run(t, executedParams(cfg, false))
			exe := run(t, executedParams(cfg, true))
			if exe.Mismatch != nil {
				t.Fatalf("spurious executed mismatch: %v", exe.Mismatch)
			}
			if !exe.Finished || exe.TrapCode != seq.TrapCode {
				t.Fatalf("executed verdict (fin=%v code=%d) != modeled (fin=%v code=%d)",
					exe.Finished, exe.TrapCode, seq.Finished, seq.TrapCode)
			}
			if exe.Cycles != seq.Cycles || exe.Instrs != seq.Instrs {
				t.Errorf("executed ran %d cycles/%d instrs, modeled %d/%d",
					exe.Cycles, exe.Instrs, seq.Cycles, seq.Instrs)
			}
			if exe.Invokes != seq.Invokes || exe.WireBytes != seq.WireBytes {
				t.Errorf("executed link traffic (%d invokes, %d B) != modeled (%d, %d B)",
					exe.Invokes, exe.WireBytes, seq.Invokes, seq.WireBytes)
			}
			if exe.Exec == nil || exe.Exec.Transfers == 0 {
				t.Fatal("executed run reported no pipeline metrics")
			}
			if exe.ExecutedHz <= 0 {
				t.Error("ExecutedHz not computed")
			}
			if seq.Exec != nil {
				t.Error("modeled run unexpectedly carries pipeline metrics")
			}
		})
	}
}

// TestExecutedDualCoreFanout exercises the per-core consumer fan-out with
// the full Squash stack under a multi-core DUT (run with -race in CI).
func TestExecutedDualCoreFanout(t *testing.T) {
	opt, _ := ParseConfig("EBINSD")
	opt.Executed = true
	res := run(t, Params{
		DUT: dut.XiangShanDefaultDual(), Platform: platform.Palladium(), Opt: opt,
		Workload: scaled(workload.LinuxBoot(), 16_000), Seed: 11,
	})
	if res.Mismatch != nil {
		t.Fatalf("spurious dual-core mismatch: %v", res.Mismatch)
	}
	if !res.Finished {
		t.Fatal("dual-core executed run did not finish")
	}
}

// TestExecutedBugEquivalence is the concurrent-checking gate: for every bug
// in the library, the executed pipeline must report the same mismatch as
// the sequential loop — same core, kind, and program counter — under both
// the per-event baseline and the fully fused configuration.
func TestExecutedBugEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bug sweep is long")
	}
	for _, cfg := range []string{"Z", "EBINSD"} {
		for _, b := range bugs.Library() {
			b := b
			cfg := cfg
			t.Run(cfg+"/"+b.ID, func(t *testing.T) {
				mk := func(executed bool) *Result {
					p := executedParams(cfg, executed)
					p.Workload = scaled(workload.LinuxBoot(), 40_000)
					p.Seed = 3
					p.Hooks = b.Hooks(0)
					return run(t, p)
				}
				seq := mk(false)
				exe := mk(true)
				if (seq.Mismatch == nil) != (exe.Mismatch == nil) {
					t.Fatalf("detection disagrees: modeled=%v executed=%v", seq.Mismatch, exe.Mismatch)
				}
				if seq.Mismatch == nil {
					t.Skipf("bug %s escapes this workload in both modes", b.ID)
				}
				sm, em := seq.Mismatch, exe.Mismatch
				if sm.Core != em.Core || sm.Kind != em.Kind || sm.Seq != em.Seq || sm.PC != em.PC {
					t.Errorf("mismatch identity differs:\n modeled : %v\n executed: %v", sm, em)
				}
				if cfg == "EBINSD" && (seq.Replay == nil) != (exe.Replay == nil) {
					t.Errorf("replay disagreement: modeled=%v executed=%v", seq.Replay != nil, exe.Replay != nil)
				}
			})
		}
	}
}

// TestExecutedOverlapSpeedup is the acceptance measurement: with real
// concurrency, the non-blocking configuration (EBIN) must beat its
// blocking counterpart (EB) on wall-clock time, because DUT emulation and
// reference checking genuinely overlap.
func TestExecutedOverlapSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 || runtime.NumCPU() < 2 {
		t.Skip("needs ≥2 CPUs to observe overlap")
	}
	mk := func(cfg string) *Result {
		p := executedParams(cfg, true)
		p.Workload = scaled(workload.LinuxBoot(), 60_000)
		return run(t, p)
	}
	best := 0.0
	for attempt := 0; attempt < 3 && best <= 1.0; attempt++ {
		eb := mk("EB")
		ebin := mk("EBIN")
		if ebin.Exec == nil || eb.Exec == nil {
			t.Fatal("missing pipeline metrics")
		}
		speedup := eb.Exec.Wall.Seconds() / ebin.Exec.Wall.Seconds()
		t.Logf("attempt %d: EB wall %v, EBIN wall %v, speedup %.2fx (overlap %.0f%%, backpressure %d)",
			attempt, eb.Exec.Wall, ebin.Exec.Wall, speedup,
			ebin.Exec.OverlapShare()*100, ebin.Exec.Backpressure)
		if speedup > best {
			best = speedup
		}
		if ebin.Exec.Overlap() == 0 {
			t.Error("EBIN executed run measured zero overlap")
		}
	}
	if best <= 1.0 {
		t.Errorf("executed EBIN never beat blocking EB (best %.2fx)", best)
	}
}

// TestCompareModesFreshHooks: bug triggers are stateful counters, so the
// comparison must rebuild the hooks before every one of its eight runs —
// with fresh hooks, every configuration detects the bug in both modes.
func TestCompareModesFreshHooks(t *testing.T) {
	if testing.Short() {
		t.Skip("bug comparison is long")
	}
	b, ok := bugs.ByID("load-sign-extension")
	if !ok {
		t.Fatal("bug missing from library")
	}
	p := executedParams("Z", false)
	p.Workload = scaled(workload.LinuxBoot(), 120_000)
	p.Seed = 21
	cmp, err := CompareModes(p, func() arch.Hooks { return b.Hooks(0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range cmp.Rows {
		if row.Modeled.Mismatch == nil || row.Executed.Mismatch == nil {
			t.Errorf("%s: bug undetected (modeled=%v executed=%v)",
				row.Config, row.Modeled.Mismatch, row.Executed.Mismatch)
		}
	}
}

// TestRunConcurrentMatchesSequential: the sweep runner must return the
// same results as running each configuration inline, in input order.
func TestRunConcurrentMatchesSequential(t *testing.T) {
	var ps []Params
	for _, cfg := range ConfigNames() {
		ps = append(ps, executedParams(cfg, false))
	}
	got, err := RunConcurrent(ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		want := run(t, p)
		if got[i] == nil {
			t.Fatalf("row %d missing", i)
		}
		if got[i].Config != want.Config || got[i].SpeedHz != want.SpeedHz ||
			got[i].Cycles != want.Cycles || got[i].WireBytes != want.WireBytes {
			t.Errorf("row %d (%s): concurrent result diverges from sequential", i, want.Config)
		}
	}
}

// TestRunConcurrentPropagatesError: a failing run must surface its error.
func TestRunConcurrentPropagatesError(t *testing.T) {
	bad := executedParams("Z", false)
	bad.MaxCycles = 10 // guaranteed to abort
	_, err := RunConcurrent([]Params{executedParams("Z", false), bad}, 2)
	if err == nil {
		t.Fatal("expected an error from the aborted run")
	}
}

// TestCompareModes: the comparison helper must produce all four rows with
// executed metrics and agreeing verdicts.
func TestCompareModes(t *testing.T) {
	p := executedParams("Z", false)
	p.Workload = scaled(workload.LinuxBoot(), 8_000)
	cmp, err := CompareModes(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(cmp.Rows))
	}
	for i, row := range cmp.Rows {
		if row.Modeled.Mismatch != nil || row.Executed.Mismatch != nil {
			t.Errorf("%s: spurious mismatch", row.Config)
		}
		if row.Executed.Exec == nil {
			t.Errorf("%s: executed row missing metrics", row.Config)
		}
		if i > 0 && cmp.ModeledSpeedup(i) <= 0 {
			t.Errorf("%s: no modeled speedup computed", row.Config)
		}
		if cmp.ExecutedSpeedup(i) <= 0 {
			t.Errorf("%s: no executed speedup computed", row.Config)
		}
	}
}
