package cosim

import (
	"fmt"
	"strings"

	"repro/internal/batch"
	"repro/internal/checker"
	"repro/internal/dut"
	"repro/internal/squash"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// CheckerSession is the server-side software half of one networked DUT
// session: meta-guided unpacking (or fixed-frame reassembly), the Squash
// reorderer, and one REF+checker — everything runner's software side does,
// minus the Replay round trip (the replay buffer lives in the client's
// hardware, so remote mismatches report the diagnosis without replay).
// It implements transport.SessionChecker; difftestd builds one per session.
type CheckerSession struct {
	opt     Options
	chk     *checker.Checker
	desq    *squash.Desquasher
	unpack  *batch.Unpacker
	layout  *batch.FixedLayout
	fixedRx []byte

	mismatch *checker.Mismatch
	events   uint64
}

// NewSession resolves a handshake into a fresh checker session. Both ends
// derive the program image from the same (workload, cores, seed) triple, so
// the server's reference models start from exactly the client DUT's state.
// This is transport.NewSessionFunc for difftestd.
func NewSession(h transport.Hello) (transport.SessionChecker, error) {
	d, ok := dutByName(h.DUT)
	if !ok {
		return nil, fmt.Errorf("unknown DUT %q", h.DUT)
	}
	opt, err := ParseConfig(h.Config)
	if err != nil {
		return nil, err
	}
	opt.CoupleOrder = h.CoupleOrder
	opt.FixedOffset = h.FixedOffset
	opt.MaxFuse = h.MaxFuse
	var wl workload.Profile
	if h.Profile != nil {
		// Full profile on the wire (fuzzing campaigns): the handshake carries
		// an arbitrary — possibly mutated — parameter vector, so validate it
		// before the generator sees it.
		wl = *h.Profile
	} else {
		var ok bool
		wl, ok = workload.ByName(h.Workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", h.Workload)
		}
		wl.TargetInstrs = h.TargetInstrs
	}
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	if opt.FixedOffset && d.Cores > 1 {
		return nil, fmt.Errorf("fixed-offset packing supports a single core")
	}

	prog := workload.Generate(wl, d.Cores, h.Seed)
	s := &CheckerSession{
		opt: opt,
		chk: checker.New(prog.Image, prog.Entries, d.Cores),
	}
	if opt.Squash {
		s.desq = squash.NewDesquasher(s.chk, d.EnabledKinds())
	}
	if opt.Batch {
		if opt.FixedOffset {
			s.layout = batch.NewFixedLayout(d.EventKinds, maxInt(1, d.BurstMax))
		} else {
			s.unpack = &batch.Unpacker{}
		}
	}
	return s, nil
}

// dutByName resolves a handshake DUT name against the configured designs.
func dutByName(name string) (dut.Config, bool) {
	for _, d := range dut.Configs() {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return dut.Config{}, false
}

// Packet consumes one batch-packed packet from a pooled frame buffer. The
// unpacker (or the fixed-frame reassembly) copies every payload it keeps, so
// the caller releases buf immediately after return.
func (s *CheckerSession) Packet(buf []byte) (*checker.Mismatch, error) {
	if !s.opt.Batch {
		return nil, fmt.Errorf("cosim: packet frame on a per-event (%s) session", s.opt.Name())
	}
	if s.opt.FixedOffset {
		return s.fixedPacket(buf)
	}
	items, err := s.unpack.AddPacket(buf)
	if err != nil {
		return nil, err
	}
	return s.check(items)
}

// fixedPacket mirrors runner.fixedFrames: append to the reassembly buffer,
// unpack every complete frame.
func (s *CheckerSession) fixedPacket(buf []byte) (*checker.Mismatch, error) {
	s.fixedRx = append(s.fixedRx, buf...)
	frameSize := s.layout.FrameSize
	n := len(s.fixedRx) / frameSize * frameSize
	if n == 0 {
		return nil, nil
	}
	frames, err := batch.UnpackFixedStream(s.layout, s.fixedRx[:n])
	if err != nil {
		return nil, err
	}
	s.fixedRx = append(s.fixedRx[:0], s.fixedRx[n:]...)
	for _, items := range frames {
		if m, err := s.check(items); m != nil || err != nil {
			return m, err
		}
	}
	return nil, nil
}

// Items consumes bare wire items (the per-event baseline config).
func (s *CheckerSession) Items(items []wire.Item) (*checker.Mismatch, error) {
	return s.check(items)
}

// check runs items through the Squash reorderer or the direct checker,
// stopping at the first divergence like every other checking path.
func (s *CheckerSession) check(items []wire.Item) (*checker.Mismatch, error) {
	if s.mismatch != nil {
		return nil, nil // stream already diverged; drain without checking
	}
	for _, it := range items {
		s.events++
		var m *checker.Mismatch
		if s.opt.Squash {
			m = s.desq.Process(it)
		} else {
			rec, err := wire.ToRecord(it)
			if err != nil {
				return nil, err
			}
			m = s.chk.Process(rec)
		}
		if m != nil {
			s.mismatch = m
			return m, nil
		}
	}
	return nil, nil
}

// Finish flushes the unpacker tail and the reorderer's held-back checks,
// then reports the final verdict — runner.flushAll's software half.
func (s *CheckerSession) Finish() (transport.Final, error) {
	if s.opt.Batch && !s.opt.FixedOffset {
		if m, err := s.check(s.unpack.Flush()); m != nil || err != nil {
			return transport.Final{Mismatch: m}, err
		}
	}
	if s.opt.Squash && s.mismatch == nil {
		if m := s.desq.Flush(); m != nil {
			s.mismatch = m
			return transport.Final{Mismatch: m}, nil
		}
	}
	if s.mismatch != nil {
		return transport.Final{Mismatch: s.mismatch}, nil
	}
	_, code := s.chk.Finished()
	return transport.Final{TrapCode: code}, nil
}

// Events reports how many wire items this session checked.
func (s *CheckerSession) Events() uint64 { return s.events }

// CoverageSnapshot merges the per-core coverage counters — the server
// attaches it to the closing verdict (transport.CoverageReporter).
func (s *CheckerSession) CoverageSnapshot() *checker.Coverage { return s.chk.Coverage() }
