package cosim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/checker"
	"repro/internal/comm"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/platform"
	"repro/internal/wire"
	"repro/internal/workload"
)

// injectBit flips one GPR bit after the n-th write to x5, so the run
// mismatches mid-stream — while the transport loop still holds packed
// packets it has not sent yet.
func injectBit(n int) arch.Hooks {
	count := 0
	return arch.Hooks{AfterExec: func(m *arch.Machine, ex *arch.Exec) {
		if ex.WroteInt && !ex.MMIO && ex.Wdest == 5 {
			count++
			if count == n {
				m.State.GPR[5] ^= 0x4
				ex.Wdata ^= 0x4
			}
		}
	}}
}

// TestTransportStopReleasesRemainingPackets drives transport() directly
// into the leaked state: a multi-packet burst whose first packet's check
// mismatches. Every packet after the stop was packed (owning a pooled
// buffer) but never sent; the stop path must release them all.
//
// The unpacker holds a cycle group until a newer cycle tag proves it
// complete, so the mismatch can only surface mid-burst if the burst's first
// packet crosses a cycle boundary. The test arranges exactly that: a small
// bogus cycle primes the open packet (no packet emitted), then a large
// second cycle fills many packets. Packet 0 carries the bogus cycle plus
// the start of the next one; its newer tag releases the bogus group, the
// check diverges, and the rest of the burst is still queued at the stop.
func TestTransportStopReleasesRemainingPackets(t *testing.T) {
	prog := workload.Generate(scaled(workload.LinuxBoot(), 1_000), 1, 1)
	plat := platform.Palladium()
	p := Params{DUT: dut.XiangShanDefault(), Platform: plat}
	r := &runner{
		p:    p,
		opt:  Options{Batch: true},
		chk:  checker.New(prog.Image, prog.Entries, 1),
		link: comm.NewLink(plat, plat.DUTOnlyHz(p.DUT.GatesM), false),
		res:  &Result{},
	}
	r.packer = batch.NewPacker(batch.MinPacketBytes)
	r.unpacker = &batch.Unpacker{}

	bogus := func(n, base int) []event.Record {
		var recs []event.Record
		for i := 0; i < n; i++ {
			recs = append(recs, event.Record{Seq: uint64(base + i), Core: 0, Ev: &event.InstrCommit{
				PC: 0xdead0000 + uint64(base+i)*4, Instr: 0x13, Wdest: 5, Wdata: uint64(i),
			}})
		}
		return recs
	}

	gets0, puts0 := event.PoolStats()
	// Cycle 1: three bogus commits — too small to close a packet, so they
	// sit in the packer's open packet and no check runs yet.
	if err := r.transport(wire.FromRecords(bogus(3, 0)), false); err != nil {
		t.Fatalf("transport (priming cycle): %v", err)
	}
	if r.stop {
		t.Fatal("priming cycle emitted a packet and stopped the run early; test setup is wrong")
	}
	// Cycle 2: enough commits to fill several minimum-size packets behind
	// the mismatch.
	if err := r.transport(wire.FromRecords(bogus(400, 3)), true); err != nil {
		t.Fatalf("transport: %v", err)
	}
	if !r.stop || r.res.Mismatch == nil {
		t.Fatal("bogus commits did not stop the run; the abort path was never exercised")
	}
	gets1, puts1 := event.PoolStats()
	gets, puts := gets1-gets0, puts1-puts0
	t.Logf("pool traffic across aborted burst: %d gets, %d puts", gets, puts)
	if gets < 3 {
		t.Fatalf("burst packed only %d packet(s); need >= 3 to exercise the stop path", gets)
	}
	if gets != puts {
		t.Fatalf("transport leaked %d of %d packet buffer(s) on the mismatch stop path",
			int64(gets)-int64(puts), gets)
	}
}

// TestMismatchAbortReleasesPacketBuffers is the regression test for the
// transport-loop leak caught by the poolcheck/useafterrelease review: when a
// run stops at the first divergence, the packets that were packed but never
// handed to the software side must still return their pooled buffers. The
// pool's get/put counters must balance across the whole run — this fails if
// any early-return path in transport() drops a packet without Release.
func TestMismatchAbortReleasesPacketBuffers(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"EB", Options{Batch: true}},
		{"EBIN", Options{Batch: true, NonBlocking: true}},
		{"EBINSD", Options{Batch: true, NonBlocking: true, Squash: true}},
		{"EB-fixed", Options{Batch: true, FixedOffset: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Minimum-size packets force multi-packet bursts, so the
			// mismatch reliably lands while later packets are still queued
			// in the transport loop — the exact leaked state.
			plat := platform.Palladium()
			plat.PacketBytes = batch.MinPacketBytes
			gets0, puts0 := event.PoolStats()
			res := run(t, Params{
				DUT: dut.XiangShanDefault(), Platform: plat,
				Opt: tc.opt, Workload: scaled(workload.LinuxBoot(), 60_000),
				Seed: 3, Hooks: injectBit(500),
			})
			if res.Mismatch == nil {
				t.Fatal("injected bug not detected; the abort path was never exercised")
			}
			gets1, puts1 := event.PoolStats()
			gets, puts := gets1-gets0, puts1-puts0
			if gets != puts {
				t.Fatalf("pool imbalance after mismatch abort: %d GetBuf vs %d PutBuf (%d buffer(s) leaked)",
					gets, puts, int64(gets)-int64(puts))
			}
		})
	}
}
