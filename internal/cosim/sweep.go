package cosim

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/transport"
)

// RunConcurrent executes a batch of independent co-simulations on a bounded
// worker pool and returns their results in input order. Every run owns its
// full state (workload image clones, DUT, reference models), so runs never
// share memory — this is the sweep runner behind multi-configuration
// experiments (configs × workloads × DUTs), scaling them across host cores.
//
// workers ≤ 0 selects GOMAXPROCS. The first error encountered is returned;
// remaining queued runs are skipped (in-flight ones complete).
func RunConcurrent(ps []Params, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) {
		workers = len(ps)
	}
	results := make([]*Result, len(ps))
	if len(ps) == 0 {
		return results, nil
	}

	jobs := make(chan int)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := Run(ps[i])
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					results[i] = res
				}
				mu.Unlock()
			}
		}()
	}
	for i := range ps {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, firstErr
}

// RunConcurrentAll executes the whole batch on a bounded worker pool and
// reports per-index outcomes: results[i] and errs[i] are index i's result and
// error, exactly one of them non-nil. Unlike RunConcurrent, an error never
// skips the remaining runs — every index is evaluated — so the outcome set is
// independent of scheduling order and worker count. This is the runner for
// callers that treat failures as data, like a fuzzing campaign where a hung
// candidate (ErrCycleLimit) is itself a deterministic observation.
func RunConcurrentAll(ps []Params, workers int) (results []*Result, errs []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) {
		workers = len(ps)
	}
	results = make([]*Result, len(ps))
	errs = make([]error, len(ps))
	if len(ps) == 0 {
		return results, errs
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(ps[i])
			}
		}()
	}
	for i := range ps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errs
}

// ModeRow pairs the analytic (modeled) and executed results of one named
// configuration. Remote is non-nil only when the comparison ran against a
// difftestd server (Params.RemoteAddr set): the same hardware producer
// streaming over a real socket instead of an in-process channel. Shm is
// non-nil only with Params.ShmLoopback: the same networked protocol, but
// over the shared-memory ring transport to an in-process server — the
// same-host fast-path operating point.
type ModeRow struct {
	Config   string
	Modeled  *Result
	Executed *Result
	Remote   *Result
	Shm      *Result
}

// ModeComparison reports modeled-vs-executed behavior across the artifact
// configurations for one DUT/platform/workload setup.
type ModeComparison struct {
	Rows []ModeRow
}

// ConfigNames lists the artifact configurations in optimization order.
func ConfigNames() []string { return []string{"Z", "EB", "EBIN", "EBINSD"} }

// CompareModes runs every named configuration twice — once through the
// analytic model and once through the executed concurrent pipeline — and
// reports both. The modeled runs predict the speedup from the platform cost
// model; the executed runs measure the wall-clock overlap the concurrency
// actually achieves on this host. When p.RemoteAddr is set, each
// configuration additionally runs a third time with the software side on the
// difftestd server at that address, so one table compares modeled SpeedHz,
// in-process ExecutedHz, and networked ExecutedHz. When p.ShmLoopback is
// set, a fourth pass per configuration streams over the shared-memory ring
// transport to an in-process server (startShmLoopback), adding the
// same-host fast path to the same table.
//
// freshHooks, when non-nil, rebuilds the injection hooks before every run
// and overrides p.Hooks. Bug triggers are stateful counters, so sharing one
// hooks value across the eight runs would fire the corruption in only the
// first run to reach the trigger threshold.
func CompareModes(p Params, freshHooks func() arch.Hooks) (*ModeComparison, error) {
	cmp := &ModeComparison{}
	ablations := p.Opt
	remoteAddr := p.RemoteAddr
	shmSpec := ""
	if p.ShmLoopback {
		spec, stop, err := startShmLoopback(p.Platform.ShmRingBytes)
		if err != nil {
			return nil, err
		}
		defer stop()
		shmSpec = spec
	}
	for _, name := range ConfigNames() {
		opt, err := ParseConfig(name)
		if err != nil {
			return nil, err
		}
		opt.CoupleOrder = ablations.CoupleOrder
		opt.FixedOffset = ablations.FixedOffset
		opt.MaxFuse = ablations.MaxFuse

		p.Opt = opt
		p.RemoteAddr = ""
		if freshHooks != nil {
			p.Hooks = freshHooks()
		}
		modeled, err := Run(p)
		if err != nil {
			return nil, err
		}
		p.Opt.Executed = true
		if freshHooks != nil {
			p.Hooks = freshHooks()
		}
		executed, err := Run(p)
		if err != nil {
			return nil, err
		}
		row := ModeRow{Config: name, Modeled: modeled, Executed: executed}
		if remoteAddr != "" {
			p.RemoteAddr = remoteAddr
			if freshHooks != nil {
				p.Hooks = freshHooks()
			}
			if row.Remote, err = Run(p); err != nil {
				return nil, err
			}
		}
		if shmSpec != "" {
			p.RemoteAddr = shmSpec
			if freshHooks != nil {
				p.Hooks = freshHooks()
			}
			if row.Shm, err = Run(p); err != nil {
				return nil, err
			}
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	return cmp, nil
}

// startShmLoopback serves an in-process difftestd over a shared-memory ring
// rendezvous in a fresh temp directory, returning the dial spec and a stop
// function that shuts the server down and removes the directory. ringBytes ≤
// 0 takes the transport default.
func startShmLoopback(ringBytes int) (spec string, stop func(), err error) {
	dir, err := os.MkdirTemp("", "difftest-shm-*")
	if err != nil {
		return "", nil, err
	}
	spec = "shm://" + dir
	if ringBytes > 0 {
		spec = fmt.Sprintf("%s?ring=%d", spec, ringBytes)
	}
	l, err := transport.Listen(spec)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("cosim: shm loopback: %w", err)
	}
	srv := transport.NewServer(transport.ServerConfig{NewSession: NewSession})
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
		os.RemoveAll(dir)
	}
	return spec, stop, nil
}

// ModeledSpeedup returns row i's modeled (simulated-time) speedup over the
// modeled baseline (row 0).
func (c *ModeComparison) ModeledSpeedup(i int) float64 {
	if len(c.Rows) == 0 || c.Rows[0].Modeled.SpeedHz == 0 {
		return 0
	}
	return c.Rows[i].Modeled.SpeedHz / c.Rows[0].Modeled.SpeedHz
}

// ExecutedSpeedup returns row i's measured wall-clock speedup over the
// executed baseline (row 0): baselineWall / rowWall.
func (c *ModeComparison) ExecutedSpeedup(i int) float64 {
	if len(c.Rows) == 0 {
		return 0
	}
	base, row := c.Rows[0].Executed.Exec, c.Rows[i].Executed.Exec
	if base == nil || row == nil || row.Wall <= 0 {
		return 0
	}
	return base.Wall.Seconds() / row.Wall.Seconds()
}

// RemoteSpeedup returns row i's measured networked wall-clock speedup over
// the networked baseline (row 0), or 0 when the comparison ran without a
// difftestd server.
func (c *ModeComparison) RemoteSpeedup(i int) float64 {
	if len(c.Rows) == 0 || c.Rows[0].Remote == nil || c.Rows[i].Remote == nil {
		return 0
	}
	base, row := c.Rows[0].Remote.Exec, c.Rows[i].Remote.Exec
	if base == nil || row == nil || row.Wall <= 0 {
		return 0
	}
	return base.Wall.Seconds() / row.Wall.Seconds()
}

// ShmSpeedup returns row i's measured shared-memory wall-clock speedup over
// the shared-memory baseline (row 0), or 0 when the comparison ran without
// Params.ShmLoopback.
func (c *ModeComparison) ShmSpeedup(i int) float64 {
	if len(c.Rows) == 0 || c.Rows[0].Shm == nil || c.Rows[i].Shm == nil {
		return 0
	}
	base, row := c.Rows[0].Shm.Exec, c.Rows[i].Shm.Exec
	if base == nil || row == nil || row.Wall <= 0 {
		return 0
	}
	return base.Wall.Seconds() / row.Wall.Seconds()
}
