package transport

import (
	"encoding/json"
	"fmt"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/workload"
)

// Hello is the client's session request: everything the server needs to
// rebuild the matching software side — the DUT and workload (by name, with
// the generation seed, so both ends derive the identical program image), the
// optimization configuration, and the wire-format digest that proves both
// binaries speak the same generated codec.
type Hello struct {
	Proto      uint16 `json:"proto"`
	WireDigest uint64 `json:"wire_digest"`

	DUT      string `json:"dut"`
	Platform string `json:"platform"`
	Config   string `json:"config"` // Z, EB, EBIN, EBINSD

	// Ablation switches riding on the named config.
	CoupleOrder bool `json:"couple_order,omitempty"`
	FixedOffset bool `json:"fixed_offset,omitempty"`
	MaxFuse     int  `json:"max_fuse,omitempty"`

	Workload     string `json:"workload"`
	TargetInstrs uint64 `json:"target_instrs"`
	Seed         int64  `json:"seed"`

	// Profile, when set, carries a full workload profile instead of a
	// built-in name — how a fuzzing campaign runs mutated parameter vectors
	// on a remote shard. Both ends still derive the identical program from
	// (profile, cores, seed); Workload/TargetInstrs above are ignored when
	// Profile is present.
	Profile *workload.Profile `json:"profile,omitempty"`

	// Tenant names the accounting principal this session bills to. A fleet
	// router enforces per-tenant admission quotas and scales the granted
	// token window by the tenant's fair share; a bare difftestd shard
	// ignores it. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`

	// WindowRequest, when positive, asks for at most this many tokens
	// instead of the server's configured window; the server grants
	// min(ServerConfig.Window, WindowRequest). The auto-tuner uses it to
	// steer the credit window from the client side without reconfiguring
	// the server. Zero keeps the server's default.
	WindowRequest int `json:"window_request,omitempty"`
}

// Welcome is the server's session grant: the negotiated protocol, the
// server's wire digest (echoed so the client can diagnose a drift in either
// direction), the session id, and the initial token window. When the server
// parks broken sessions for resume, Resumable is set and ResumeToken is the
// capability a later Resume frame must present.
type Welcome struct {
	Proto       uint16 `json:"proto"`
	WireDigest  uint64 `json:"wire_digest"`
	Session     uint64 `json:"session"`
	Tokens      int    `json:"tokens"`
	Resumable   bool   `json:"resumable,omitempty"`
	ResumeToken uint64 `json:"resume_token,omitempty"`
}

// Credit returns tokens to the client's window. Ack is the cumulative count
// of data frames the server has consumed this session; the client prunes its
// replay window up to it, so the unacknowledged tail stays bounded by the
// token window.
type Credit struct {
	Tokens int    `json:"tokens"`
	Ack    uint64 `json:"ack,omitempty"`
}

// Resume reopens a parked session on a fresh connection: it is the first
// frame the client sends instead of Hello. Sent/Acked are the last
// contiguous data-frame counts each direction saw — Sent is how many data
// frames the client has transmitted this session, Acked the highest Credit
// acknowledgement it received — so the server can sanity-check the client's
// view against its own before replaying anything.
type Resume struct {
	Proto   uint16 `json:"proto"`
	Session uint64 `json:"session"`
	Token   uint64 `json:"token"`
	Sent    uint64 `json:"sent"`
	Acked   uint64 `json:"acked"`
}

// ResumeOK accepts a resume. Have is the server's consumed data-frame count:
// the client prunes its replay window to Have and retransmits everything
// after it. Tokens regrants the window. Verdict replays an early mismatch
// verdict the broken connection may have lost; Final, when set, means the
// session already completed and carries the Done payload — nothing needs
// retransmission.
type ResumeOK struct {
	Have    uint64   `json:"have"`
	Tokens  int      `json:"tokens"`
	Verdict *Verdict `json:"verdict,omitempty"`
	Final   *Verdict `json:"final,omitempty"`
	// Migrated marks a resume that landed the session on a different backend
	// shard than before: the fleet router replayed the acknowledged prefix
	// into a fresh checker there and this resume supplies the rest. A bare
	// difftestd shard never sets it; the client counts it as a migration.
	Migrated bool `json:"migrated,omitempty"`
}

// MismatchReport is the typed mismatch-report payload: the checker's full
// diagnosis, serialized field-for-field so the client reconstructs the exact
// checker.Mismatch an in-process run would have produced.
type MismatchReport struct {
	Core   uint8  `json:"core"`
	Seq    uint64 `json:"seq"`
	Kind   uint8  `json:"kind"`
	PC     uint64 `json:"pc"`
	Detail string `json:"detail"`
	Fused  bool   `json:"fused,omitempty"`
}

// NewMismatchReport converts a checker diagnosis for the wire.
func NewMismatchReport(m *checker.Mismatch) *MismatchReport {
	if m == nil {
		return nil
	}
	return &MismatchReport{Core: m.Core, Seq: m.Seq, Kind: uint8(m.Kind),
		PC: m.PC, Detail: m.Detail, Fused: m.Fused}
}

// ToChecker reconstructs the checker diagnosis.
func (r *MismatchReport) ToChecker() *checker.Mismatch {
	if r == nil {
		return nil
	}
	return &checker.Mismatch{Core: r.Core, Seq: r.Seq, Kind: event.Kind(r.Kind),
		PC: r.PC, Detail: r.Detail, Fused: r.Fused}
}

// Verdict is the server's checking outcome, sent in a FrameVerdict as soon
// as a mismatch is diagnosed and in the FrameDone that closes every session.
type Verdict struct {
	Mismatch *MismatchReport `json:"mismatch,omitempty"`
	Finished bool            `json:"finished"`
	TrapCode uint64          `json:"trap_code,omitempty"`
	Events   uint64          `json:"events,omitempty"` // items checked server-side

	// Coverage is the checker's semantic coverage signal, attached to the
	// closing Done verdict when the session checker implements
	// CoverageReporter — the feedback channel for remotely-evaluated fuzzing
	// campaigns.
	Coverage *checker.Coverage `json:"coverage,omitempty"`
}

// StatsInfo is the FrameStats reply: an endpoint's health and occupancy
// counters. difftestd fills the session counters from its own state; a fleet
// router fills them with fleet-wide aggregates and adds the per-shard view.
type StatsInfo struct {
	Active     int    `json:"active"`               // sessions being served now
	Parked     uint64 `json:"parked"`               // sessions parked for resume (lifetime)
	Resumed    uint64 `json:"resumed"`              // successful resumes (lifetime)
	Served     uint64 `json:"served"`               // sessions run to completion
	Mismatches uint64 `json:"mismatches"`           // mismatch verdicts delivered
	Window     int    `json:"window"`               // configured token window
	Capacity   int    `json:"capacity,omitempty"`   // max concurrent sessions (0 = unlimited)
	Migrations uint64 `json:"migrations,omitempty"` // sessions moved between shards (router only)

	// Shards is the router's per-shard occupancy view (routers only).
	Shards []ShardStatus `json:"shards,omitempty"`
}

// Occupancy returns the load fraction Active/Capacity, or -1 when capacity
// is unlimited — the router's "prefer lightly loaded shards" signal.
func (s *StatsInfo) Occupancy() float64 {
	if s.Capacity <= 0 {
		return -1
	}
	return float64(s.Active) / float64(s.Capacity)
}

// ShardStatus is one backend's row in a router's StatsInfo.
type ShardStatus struct {
	Addr     string `json:"addr"`
	State    string `json:"state"` // "healthy", "draining", "down"
	Active   int    `json:"active"`
	Parked   uint64 `json:"parked"`
	Resumed  uint64 `json:"resumed"`
	Served   uint64 `json:"served"`
	Capacity int    `json:"capacity,omitempty"`
	Sessions int    `json:"sessions"` // sessions the router has placed here
}

// DrainRequest asks a fleet router to withdraw one shard from placement and
// migrate its sessions elsewhere (FrameDrain payload, admin → router).
type DrainRequest struct {
	Shard string `json:"shard"`
	// Undrain returns a previously drained shard to the placement set
	// instead of withdrawing one.
	Undrain bool `json:"undrain,omitempty"`
}

// DrainReply reports a drain's effect (FrameDrain payload, router → admin).
type DrainReply struct {
	Shard string `json:"shard"`
	State string `json:"state"`
	// Redirected counts the active sessions that were told to redial; each
	// resumes onto a different shard through the migration path.
	Redirected int `json:"redirected"`
}

// Redirect tells a mid-session client to redial and resume elsewhere
// (FrameRedirect payload). The client treats it like a lost connection: the
// existing backoff/resume machinery redials, and the router places the
// resumed session on a healthy shard.
type Redirect struct {
	Reason string `json:"reason"`
}

// ErrorInfo is the FrameError payload.
type ErrorInfo struct {
	Code string `json:"code"` // "handshake", "decode", "idle", "overloaded", "quota", "internal", "resume"
	Msg  string `json:"msg"`
}

// Error implements error so a surfaced ErrorInfo reads naturally.
func (e *ErrorInfo) Error() string {
	return fmt.Sprintf("transport: server error (%s): %s", e.Code, e.Msg)
}

// encodeJSON marshals a control payload; control frames are tiny and rare,
// so the allocation is irrelevant.
func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All control payloads are plain structs; a marshal failure is a
		// programming error.
		panic(fmt.Sprintf("transport: encoding control frame: %v", err))
	}
	return b
}

// decodeJSON unmarshals a control payload with frame-type context.
func decodeJSON(typ uint8, buf []byte, v any) error {
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("transport: corrupt control frame (type %d): %w", typ, err)
	}
	return nil
}
